// Tests for the real-valued related-work summarizations (src/numeric):
// per-method projection/reconstruction correctness, the GEMINI
// lower-bounding invariant as a parameterized sweep over method × length ×
// budget × data family, exactness cases where the projection is lossless,
// and the numeric TLB harness.

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/dataset.h"
#include "core/distance.h"
#include "core/znorm.h"
#include "numeric/apca_summary.h"
#include "numeric/cheby_summary.h"
#include "numeric/dft_summary.h"
#include "numeric/haar_summary.h"
#include "numeric/numeric_tlb.h"
#include "numeric/paa_summary.h"
#include "numeric/pla_summary.h"
#include "numeric/registry.h"
#include "test_data.h"
#include "util/rng.h"

namespace sofa {
namespace numeric {
namespace {

using testing_data::Noise;
using testing_data::Walk;

// ---------------------------------------------------------------------------
// PAA

TEST(PaaSummaryTest, MeansOfDivisibleSegments) {
  const float series[8] = {1, 1, 2, 2, 3, 3, 10, 20};
  PaaSummary paa(8, 4);
  float values[4];
  paa.Project(series, values);
  EXPECT_FLOAT_EQ(values[0], 1.0f);
  EXPECT_FLOAT_EQ(values[1], 2.0f);
  EXPECT_FLOAT_EQ(values[2], 3.0f);
  EXPECT_FLOAT_EQ(values[3], 15.0f);
}

TEST(PaaSummaryTest, NonDivisibleLengthCoversAllPoints) {
  // n = 10, l = 4: integer partitions [0,2) [2,5) [5,7) [7,10).
  std::vector<float> series(10);
  for (std::size_t t = 0; t < 10; ++t) {
    series[t] = static_cast<float>(t);
  }
  PaaSummary paa(10, 4);
  float values[4];
  paa.Project(series.data(), values);
  EXPECT_FLOAT_EQ(values[0], 0.5f);   // (0+1)/2
  EXPECT_FLOAT_EQ(values[1], 3.0f);   // (2+3+4)/3
  EXPECT_FLOAT_EQ(values[2], 5.5f);   // (5+6)/2
  EXPECT_FLOAT_EQ(values[3], 8.0f);   // (7+8+9)/3
}

TEST(PaaSummaryTest, FullResolutionBoundEqualsEuclidean) {
  const Dataset data = Noise(2, 32, 0xA0);
  PaaSummary paa(32, 32);  // one point per segment: projection is lossless
  const float lbd = paa.LowerBoundSquaredRaw(data.row(0), data.row(1));
  const float ed = SquaredEuclidean(data.row(0), data.row(1), 32);
  EXPECT_NEAR(lbd, ed, 1e-4f * ed);
}

TEST(PaaSummaryTest, ReconstructIsPiecewiseConstant) {
  const Dataset data = Walk(1, 64, 0xA1);
  PaaSummary paa(64, 8);
  float values[8];
  std::vector<float> approx(64);
  paa.Project(data.row(0), values);
  paa.Reconstruct(values, approx.data());
  for (std::size_t i = 0; i < 8; ++i) {
    for (std::size_t t = 8 * i; t < 8 * (i + 1); ++t) {
      EXPECT_FLOAT_EQ(approx[t], values[i]);
    }
  }
}

// ---------------------------------------------------------------------------
// DFT

TEST(DftSummaryTest, FullBandBoundEqualsEuclideanForZNormalized) {
  // n = 16, l = 16 keeps k = 1…8 — every non-DC coefficient of a
  // z-normalized series — so the Parseval bound is the exact distance.
  Dataset data = Noise(2, 16, 0xB0);
  DftSummary dft(16, 16);
  const float lbd = dft.LowerBoundSquaredRaw(data.row(0), data.row(1));
  const float ed = SquaredEuclidean(data.row(0), data.row(1), 16);
  EXPECT_NEAR(lbd, ed, 1e-3f * ed);
}

TEST(DftSummaryTest, ReconstructionErrorDecreasesWithBudget) {
  const Dataset data = Walk(1, 128, 0xB1);
  double previous = 1e30;
  for (std::size_t l : {4, 8, 16, 32}) {
    DftSummary dft(128, l);
    const double err = dft.ReconstructionError(data.row(0));
    EXPECT_LE(err, previous + 1e-9);
    previous = err;
  }
}

TEST(DftSummaryTest, ProjectionMatchesPlanCoefficients) {
  const Dataset data = Noise(1, 64, 0xB2);
  DftSummary dft(64, 8);
  float values[8];
  dft.Project(data.row(0), values);

  dft::RealDftPlan plan(64);
  std::vector<std::complex<float>> coeffs(plan.num_coefficients());
  plan.Transform(data.row(0), coeffs.data());
  for (std::size_t k = 1; k <= 4; ++k) {
    EXPECT_FLOAT_EQ(values[2 * (k - 1)], coeffs[k].real());
    EXPECT_FLOAT_EQ(values[2 * (k - 1) + 1], coeffs[k].imag());
  }
}

// ---------------------------------------------------------------------------
// APCA

TEST(ApcaSummaryTest, BoundariesAreStrictlyIncreasingAndEndAtN) {
  const Dataset data = Noise(8, 100, 0xC0);
  ApcaSummary apca(100, 16);
  float values[16];
  for (std::size_t i = 0; i < data.size(); ++i) {
    apca.Project(data.row(i), values);
    std::size_t previous = 0;
    for (std::size_t s = 0; s < 8; ++s) {
      const auto end = static_cast<std::size_t>(values[2 * s + 1]);
      EXPECT_GT(end, previous);
      previous = end;
    }
    EXPECT_EQ(previous, 100u);
  }
}

TEST(ApcaSummaryTest, SegmentValuesAreMeansOverTheirSpans) {
  const Dataset data = Walk(1, 64, 0xC1);
  ApcaSummary apca(64, 8);
  float values[8];
  apca.Project(data.row(0), values);
  std::size_t begin = 0;
  for (std::size_t s = 0; s < 4; ++s) {
    const auto end = static_cast<std::size_t>(values[2 * s + 1]);
    double sum = 0.0;
    for (std::size_t t = begin; t < end; ++t) {
      sum += data.row(0)[t];
    }
    EXPECT_NEAR(values[2 * s], sum / static_cast<double>(end - begin), 1e-4);
    begin = end;
  }
}

TEST(ApcaSummaryTest, AdaptiveSegmentsNailOffGridPlateaus) {
  // Four plateaus with boundaries at 5, 19, 40 — none on the uniform
  // 4-segment grid of a 64-point series. APCA recovers them exactly;
  // equal-width PAA with the same float budget cannot.
  std::vector<float> series(64);
  for (std::size_t t = 0; t < 64; ++t) {
    series[t] = t < 5 ? 3.0f : t < 19 ? -1.0f : t < 40 ? 2.0f : -2.0f;
  }
  ApcaSummary apca(64, 8);  // 4 adaptive segments
  EXPECT_NEAR(apca.ReconstructionError(series.data()), 0.0, 1e-8);
  PaaSummary paa(64, 4);
  EXPECT_GT(paa.ReconstructionError(series.data()), 0.1);
}

// ---------------------------------------------------------------------------
// PLA

TEST(PlaSummaryTest, RecoversLinearSeriesExactly) {
  std::vector<float> series(96);
  for (std::size_t t = 0; t < 96; ++t) {
    series[t] = 0.25f * static_cast<float>(t) - 3.0f;
  }
  PlaSummary pla(96, 8);
  EXPECT_NEAR(pla.ReconstructionError(series.data()), 0.0, 1e-6);
}

TEST(PlaSummaryTest, BoundIsExactBetweenTwoLinearSeries) {
  // Both series live in the per-segment span{1, t} subspace, so the
  // projection loses nothing and the lower bound is the exact distance.
  std::vector<float> a(64), b(64);
  for (std::size_t t = 0; t < 64; ++t) {
    a[t] = 0.5f * static_cast<float>(t) + 1.0f;
    b[t] = -0.2f * static_cast<float>(t) + 4.0f;
  }
  PlaSummary pla(64, 8);
  const float lbd = pla.LowerBoundSquaredRaw(a.data(), b.data());
  const float ed = SquaredEuclidean(a.data(), b.data(), 64);
  EXPECT_NEAR(lbd, ed, 1e-3f * ed);
}

TEST(PlaSummaryTest, TighterThanPaaAtTheSameBudgetOnTrends) {
  // On a smooth trending series the line fit dominates the constant fit
  // at the same float budget (4 lines vs 8 means).
  const Dataset data = Walk(4, 128, 0xD0);
  const Dataset queries = Walk(4, 128, 0xD1);
  PlaSummary pla(128, 8);
  PaaSummary paa(128, 8);
  EXPECT_GT(MeanTlb(pla, data, queries), MeanTlb(paa, data, queries) - 0.05);
}

// ---------------------------------------------------------------------------
// Chebyshev

TEST(ChebySummaryTest, BasisIsOrthonormal) {
  ChebySummary cheby(100, 12);
  for (std::size_t i = 0; i < 12; ++i) {
    for (std::size_t j = i; j < 12; ++j) {
      double dot = 0.0;
      for (std::size_t t = 0; t < 100; ++t) {
        dot += static_cast<double>(cheby.basis_row(i)[t]) *
               cheby.basis_row(j)[t];
      }
      EXPECT_NEAR(dot, i == j ? 1.0 : 0.0, 1e-4) << "rows " << i << "," << j;
    }
  }
}

TEST(ChebySummaryTest, RecoversLowDegreePolynomialsExactly) {
  // A cubic lies in the span of T_0…T_3, so l = 4 reconstructs it.
  std::vector<float> series(64);
  for (std::size_t t = 0; t < 64; ++t) {
    const double x = -1.0 + (2.0 * t + 1.0) / 64.0;
    series[t] = static_cast<float>(1.5 * x * x * x - 0.5 * x + 0.25);
  }
  ChebySummary cheby(64, 4);
  EXPECT_NEAR(cheby.ReconstructionError(series.data()), 0.0, 1e-8);
}

TEST(ChebySummaryTest, FullBasisBoundEqualsEuclidean) {
  const Dataset data = Noise(2, 24, 0xE0);
  ChebySummary cheby(24, 24);  // complete orthonormal basis
  const float lbd = cheby.LowerBoundSquaredRaw(data.row(0), data.row(1));
  const float ed = SquaredEuclidean(data.row(0), data.row(1), 24);
  EXPECT_NEAR(lbd, ed, 1e-3f * ed);
}

// ---------------------------------------------------------------------------
// Haar

TEST(HaarSummaryTest, TransformPreservesEnergyOverThePrefix) {
  const Dataset data = Noise(1, 128, 0xF0);
  HaarSummary haar(128, 128);
  std::vector<float> values(128);
  haar.Project(data.row(0), values.data());
  double energy_in = 0.0, energy_out = 0.0;
  for (std::size_t t = 0; t < 128; ++t) {
    energy_in += static_cast<double>(data.row(0)[t]) * data.row(0)[t];
    energy_out += static_cast<double>(values[t]) * values[t];
  }
  EXPECT_NEAR(energy_out, energy_in, 1e-3 * energy_in);
}

TEST(HaarSummaryTest, PerfectReconstructionWithAllCoefficients) {
  const Dataset data = Walk(1, 64, 0xF1);
  HaarSummary haar(64, 64);
  EXPECT_NEAR(haar.ReconstructionError(data.row(0)), 0.0, 1e-8);
}

TEST(HaarSummaryTest, NonDyadicLengthUsesLongestPrefix) {
  HaarSummary haar(100, 16);
  EXPECT_EQ(haar.transform_length(), 64u);
  const Dataset data = Noise(2, 100, 0xF2);
  // Bound over the 64-prefix can never exceed the full distance.
  const float lbd = haar.LowerBoundSquaredRaw(data.row(0), data.row(1));
  const float ed = SquaredEuclidean(data.row(0), data.row(1), 100);
  EXPECT_LE(lbd, ed * (1.0f + 1e-4f));
}

// ---------------------------------------------------------------------------
// Registry

TEST(NumericRegistryTest, ComparisonSetHasFixedOrderAndBudget) {
  const auto set = MakeComparisonSet(128, 16);
  ASSERT_EQ(set.size(), 6u);
  const char* expected[] = {"PAA", "APCA", "PLA", "CHEBY", "DHWT", "DFT"};
  for (std::size_t i = 0; i < set.size(); ++i) {
    EXPECT_EQ(set[i]->name(), expected[i]);
    EXPECT_EQ(set[i]->num_values(), 16u);
    EXPECT_EQ(set[i]->series_length(), 128u);
  }
}

TEST(NumericRegistryTest, NamesAreCaseInsensitive) {
  EXPECT_EQ(MakeNumericSummary("paa", 64, 8)->name(), "PAA");
  EXPECT_EQ(MakeNumericSummary("haar", 64, 8)->name(), "DHWT");
  EXPECT_EQ(MakeNumericSummary("Dft", 64, 8)->name(), "DFT");
}

// ---------------------------------------------------------------------------
// TLB harness

TEST(NumericTlbTest, TlbIsInUnitInterval) {
  const Dataset data = Walk(64, 96, 0x10);
  const Dataset queries = Walk(8, 96, 0x11);
  for (const auto& summary : MakeComparisonSet(96, 8)) {
    const double tlb = MeanTlb(*summary, data, queries);
    EXPECT_GE(tlb, 0.0) << summary->name();
    EXPECT_LE(tlb, 1.0 + 1e-6) << summary->name();
  }
}

// Series whose energy sits in a narrow high-frequency band (k ≈ 20–30 of
// 128) — the regime of the paper's Fig. 1 where mean-based summaries
// flat-line.
Dataset HighBand(std::size_t count, std::size_t length, std::uint64_t seed) {
  Rng rng(seed);
  Dataset ds(length);
  std::vector<float> row(length);
  for (std::size_t i = 0; i < count; ++i) {
    const double f = 20.0 + rng.Uniform() * 10.0;
    const double phase = rng.Uniform() * 6.2831853;
    for (std::size_t t = 0; t < length; ++t) {
      row[t] = static_cast<float>(
          std::sin(6.2831853 * f * static_cast<double>(t) /
                       static_cast<double>(length) +
                   phase) +
          0.1 * rng.Gaussian());
    }
    ZNormalize(row.data(), length);
    ds.Append(row.data());
  }
  return ds;
}

TEST(NumericTlbTest, AllMethodsAgreeOnSmoothDataDftAmongTheBest) {
  // The Schäfer & Högqvist result the paper cites: on ordinary
  // low-frequency series no numeric method outperforms DFT, and the whole
  // field is within a few TLB points of each other.
  const Dataset data = Walk(256, 128, 0x12);
  const Dataset queries = Walk(16, 128, 0x13);
  std::vector<double> tlbs;
  double dft_tlb = 0.0;
  for (const auto& summary : MakeComparisonSet(128, 16)) {
    const double tlb = MeanTlb(*summary, data, queries);
    EXPECT_GT(tlb, 0.8) << summary->name();
    if (summary->name() == "DFT") {
      dft_tlb = tlb;
    }
    tlbs.push_back(tlb);
  }
  for (const double tlb : tlbs) {
    EXPECT_GE(dft_tlb, tlb - 0.06);  // nothing clearly beats DFT
  }
}

TEST(NumericTlbTest, EveryFixedMethodCollapsesOnHighFrequencyBands) {
  // Fig. 1's failure mode, quantified: with energy at k ≈ 20–30, every
  // fixed-band/fixed-grid method loses most of its tightness. First-band
  // DFT is hit hardest of all — the kept band holds almost no energy —
  // which is exactly why SOFA selects coefficients by variance instead.
  const Dataset data = HighBand(256, 128, 0x14);
  const Dataset queries = HighBand(16, 128, 0x15);
  double dft_tlb = 0.0;
  for (const auto& summary : MakeComparisonSet(128, 16)) {
    const double tlb = MeanTlb(*summary, data, queries);
    EXPECT_LT(tlb, 0.4) << summary->name();
    if (summary->name() == "DFT") {
      dft_tlb = tlb;
    }
  }
  EXPECT_LT(dft_tlb, 0.15);
}

TEST(NumericTlbTest, VarianceSelectionRescuesDftOnHighFrequencyBands) {
  // The un-quantized core of the paper's Section IV-E2 contribution:
  // selecting coefficients by variance instead of position restores the
  // bound on band-concentrated data.
  const Dataset data = HighBand(256, 128, 0x16);
  const Dataset queries = HighBand(16, 128, 0x17);
  DftSummary first_band(128, 16);
  DftSummary by_variance(128, DftSummary::SelectByVariance(data, 8));
  EXPECT_EQ(by_variance.name(), "DFT +VAR");
  const double tlb_first = MeanTlb(first_band, data, queries);
  const double tlb_var = MeanTlb(by_variance, data, queries);
  EXPECT_GT(tlb_var, tlb_first + 0.3);
  EXPECT_GT(tlb_var, 0.5);
}

TEST(NumericTlbTest, VarianceSelectionPicksTheEnergeticBand) {
  const Dataset data = HighBand(128, 128, 0x18);
  const auto ks = DftSummary::SelectByVariance(data, 8);
  ASSERT_EQ(ks.size(), 8u);
  // All selected indices must fall inside (or hug) the generated band.
  for (const std::size_t k : ks) {
    EXPECT_GE(k, 18u);
    EXPECT_LE(k, 32u);
  }
}

TEST(NumericTlbTest, PruningPowerIsAFraction) {
  const Dataset data = Walk(128, 64, 0x14);
  const Dataset queries = Walk(8, 64, 0x15);
  for (const auto& summary : MakeComparisonSet(64, 8)) {
    const double power = MeanPruningPower(*summary, data, queries);
    EXPECT_GE(power, 0.0) << summary->name();
    EXPECT_LE(power, 1.0) << summary->name();
  }
}

// ---------------------------------------------------------------------------
// Budget extremes and contract violations

TEST(NumericEdgeTest, SingleValueBudgetsOnZNormalizedData) {
  // l = 1 (or one pair): the projections of z-normalized series collapse
  // to (near-)zero means, and the bound must stay valid and tiny.
  const Dataset data = Noise(4, 64, 0x40);
  PaaSummary paa(64, 1);
  ChebySummary cheby(64, 1);
  HaarSummary haar(64, 1);
  for (std::size_t i = 0; i + 1 < data.size(); ++i) {
    const float ed = SquaredEuclidean(data.row(i), data.row(i + 1), 64);
    for (const NumericSummary* summary :
         {static_cast<const NumericSummary*>(&paa),
          static_cast<const NumericSummary*>(&cheby),
          static_cast<const NumericSummary*>(&haar)}) {
      const float lbd =
          summary->LowerBoundSquaredRaw(data.row(i), data.row(i + 1));
      EXPECT_LE(lbd, ed * (1.0f + 1e-4f)) << summary->name();
      EXPECT_NEAR(lbd, 0.0f, 1e-3f) << summary->name();
    }
  }
}

TEST(NumericEdgeTest, FullResolutionApcaAndPlaAreLossless) {
  const Dataset data = Noise(2, 32, 0x41);
  ApcaSummary apca(32, 64);  // 32 unit segments
  PlaSummary pla(32, 64);    // 32 one-point lines
  EXPECT_NEAR(apca.ReconstructionError(data.row(0)), 0.0, 1e-8);
  EXPECT_NEAR(pla.ReconstructionError(data.row(0)), 0.0, 1e-8);
  const float ed = SquaredEuclidean(data.row(0), data.row(1), 32);
  EXPECT_NEAR(apca.LowerBoundSquaredRaw(data.row(0), data.row(1)), ed,
              1e-3f * ed);
}

TEST(NumericEdgeTest, OddLengthFullSpectrumDftIsExact) {
  // n = 33: coefficients 1…16 carry the whole non-DC spectrum, so the
  // bound equals the distance for z-normalized series.
  const Dataset data = Noise(2, 33, 0x42);
  DftSummary dft(33, 32);
  const float ed = SquaredEuclidean(data.row(0), data.row(1), 33);
  EXPECT_NEAR(dft.LowerBoundSquaredRaw(data.row(0), data.row(1)), ed,
              2e-3f * ed);
}

TEST(NumericEdgeDeathTest, InfeasibleBudgetsAbort) {
  EXPECT_DEATH(PaaSummary(8, 9), "");       // more segments than points
  EXPECT_DEATH(DftSummary(8, 3), "");       // odd float budget
  EXPECT_DEATH(DftSummary(8, 16), "");      // beyond the spectrum
  EXPECT_DEATH(HaarSummary(100, 65), "");   // beyond the dyadic prefix
  EXPECT_DEATH(MakeNumericSummary("nope", 64, 8), "unknown");
}

TEST(NumericEdgeDeathTest, VarianceSelectionRejectsBadCounts) {
  const Dataset data = Noise(4, 32, 0x43);
  EXPECT_DEATH(DftSummary::SelectByVariance(data, 0), "");
  EXPECT_DEATH(DftSummary::SelectByVariance(data, 17), "");
}

TEST(NumericEdgeDeathTest, ExplicitCoefficientsValidated) {
  EXPECT_DEATH(DftSummary(32, std::vector<std::size_t>{0}), "");   // DC
  EXPECT_DEATH(DftSummary(32, std::vector<std::size_t>{17}), "");  // range
  EXPECT_DEATH(DftSummary(32, std::vector<std::size_t>{3, 3}),
               "duplicate");
}

// ---------------------------------------------------------------------------
// The lower-bounding invariant, swept over method × length × budget ×
// data family (the GEMINI correctness property every method must satisfy).

struct LowerBoundCase {
  const char* method;
  std::size_t n;
  std::size_t l;
};

void PrintTo(const LowerBoundCase& param, std::ostream* os) {
  *os << param.method << "_n" << param.n << "_l" << param.l;
}

class NumericLowerBoundTest
    : public ::testing::TestWithParam<LowerBoundCase> {};

TEST_P(NumericLowerBoundTest, NeverExceedsEuclideanDistance) {
  const LowerBoundCase param = GetParam();
  const auto summary = MakeNumericSummary(param.method, param.n, param.l);

  for (std::uint64_t family = 0; family < 2; ++family) {
    const Dataset data = family == 0 ? Noise(24, param.n, 0x20 + param.n)
                                     : Walk(24, param.n, 0x21 + param.n);
    const Dataset queries = family == 0 ? Noise(4, param.n, 0x22 + param.n)
                                        : Walk(4, param.n, 0x23 + param.n);

    std::vector<float> values(summary->num_values());
    auto state = summary->NewQueryState();
    for (std::size_t q = 0; q < queries.size(); ++q) {
      summary->PrepareQuery(queries.row(q), state.get());
      for (std::size_t c = 0; c < data.size(); ++c) {
        summary->Project(data.row(c), values.data());
        const float lbd = summary->LowerBoundSquared(*state, values.data());
        const float ed =
            SquaredEuclidean(queries.row(q), data.row(c), param.n);
        EXPECT_LE(lbd, ed * (1.0f + 1e-4f) + 1e-4f)
            << summary->name() << " family=" << family << " q=" << q
            << " c=" << c;
      }
    }
  }
}

TEST_P(NumericLowerBoundTest, SelfBoundIsZero) {
  const LowerBoundCase param = GetParam();
  const auto summary = MakeNumericSummary(param.method, param.n, param.l);
  const Dataset data = Noise(8, param.n, 0x30 + param.n);
  for (std::size_t i = 0; i < data.size(); ++i) {
    const float lbd = summary->LowerBoundSquaredRaw(data.row(i), data.row(i));
    EXPECT_NEAR(lbd, 0.0f, 1e-4f) << summary->name() << " i=" << i;
  }
}

std::vector<LowerBoundCase> AllLowerBoundCases() {
  std::vector<LowerBoundCase> cases;
  for (const char* method : {"PAA", "APCA", "PLA", "CHEBY", "DHWT", "DFT"}) {
    for (std::size_t n : {32, 96, 100, 128, 256}) {
      for (std::size_t l : {4, 8, 16}) {
        cases.push_back({method, n, l});
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    AllMethods, NumericLowerBoundTest,
    ::testing::ValuesIn(AllLowerBoundCases()),
    [](const ::testing::TestParamInfo<LowerBoundCase>& info) {
      return std::string(info.param.method) + "_n" +
             std::to_string(info.param.n) + "_l" +
             std::to_string(info.param.l);
    });

}  // namespace
}  // namespace numeric
}  // namespace sofa
