// Tests for the durable generation store (src/persist/) and its wiring
// through the ingest path: atomic persist-at-publish (write-temp + fsync
// + rename), newest-valid-manifest recovery with fallback across torn
// commits, bounded WAL-tail replay (restart cost = mutations since the
// last compaction, not all mutations ever), hardlink slice reuse, GC
// gating, the WAL v2 record-seqno chain (interior loss detected as
// sequence_gap, torn tails stay benign), group-commit correctness under
// concurrent mutators, and the end-to-end restart proof: a serving
// process killed at a random point recovers from (latest manifest + WAL
// tail) to answers bit-identical to a from-scratch build over
// base ∪ inserts \ deletes — with the on-disk WAL provably truncated.

#include <dirent.h>
#include <signal.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <unordered_set>
#include <vector>

#include <gtest/gtest.h>

#include "harness/oracle.h"
#include "harness/workload.h"
#include "ingest/compactor.h"
#include "ingest/wal.h"
#include "persist/generation_store.h"
#include "service/search_service.h"
#include "service/snapshot.h"
#include "shard/sharded_index.h"
#include "test_data.h"
#include "util/thread_pool.h"

namespace sofa {
namespace persist {
namespace {

using testing_data::Walk;
using testing_harness::BitIdentical;
using testing_harness::MakeSearchRequest;
using testing_harness::ReadFileBytes;
using testing_harness::WriteFileBytes;

// The deterministic mutation stream + from-scratch oracle shared with
// the other restart/exactness suites.
using Workload = testing_harness::MutationWorkload;

std::string TestDir(const std::string& name) {
  return "/tmp/sofa_persist_" + name + "_" + std::to_string(::getpid());
}

// rm -rf (two levels: store roots hold generation directories).
void RemoveTree(const std::string& path) {
  DIR* handle = ::opendir(path.c_str());
  if (handle != nullptr) {
    while (const dirent* entry = ::readdir(handle)) {
      const std::string name = entry->d_name;
      if (name == "." || name == "..") {
        continue;
      }
      const std::string child = path + "/" + name;
      struct stat info;
      if (::lstat(child.c_str(), &info) == 0 && S_ISDIR(info.st_mode)) {
        RemoveTree(child);
      } else {
        ::unlink(child.c_str());
      }
    }
    ::closedir(handle);
  }
  ::rmdir(path.c_str());
}

// Flat-directory copy (generation directories have no subdirectories) —
// used to stash a generation GC would otherwise remove.
void CopyTree(const std::string& from, const std::string& to) {
  ::mkdir(to.c_str(), 0755);
  DIR* handle = ::opendir(from.c_str());
  ASSERT_NE(handle, nullptr);
  while (const dirent* entry = ::readdir(handle)) {
    const std::string name = entry->d_name;
    if (name == "." || name == "..") {
      continue;
    }
    std::FILE* in = std::fopen((from + "/" + name).c_str(), "rb");
    ASSERT_NE(in, nullptr);
    std::FILE* out = std::fopen((to + "/" + name).c_str(), "wb");
    ASSERT_NE(out, nullptr);
    unsigned char chunk[4096];
    std::size_t got;
    while ((got = std::fread(chunk, 1, sizeof(chunk), in)) > 0) {
      ASSERT_EQ(std::fwrite(chunk, 1, got, out), got);
    }
    std::fclose(in);
    std::fclose(out);
  }
  ::closedir(handle);
}

std::string GenDirName(std::uint64_t seq) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%010llu",
                static_cast<unsigned long long>(seq));
  return "gen-" + std::string(buf);
}

ingest::IngestConfig DurableConfig(const std::string& root,
                                   GenerationStore* store,
                                   std::size_t threshold = 60,
                                   bool auto_compact = true) {
  ingest::IngestConfig config;
  config.wal_dir = root + "/wal";
  config.wal.sync_every = 4;
  config.compact_threshold = threshold;
  config.auto_compact = auto_compact;
  config.store = store;
  return config;
}

// ---------------------------------------------------- store primitives

TEST(GenerationStoreTest, PersistLoadRoundTripAndGc) {
  const std::string root = TestDir("roundtrip");
  RemoveTree(root);
  Workload w;
  ThreadPool pool(2);
  auto store = GenerationStore::Open(root + "/generations");
  ASSERT_NE(store, nullptr);
  const auto sharded = w.BuildSharded(&pool);
  {
    service::SearchService svc(service::WrapShardedIndex(sharded), &pool);
    ingest::Compactor compactor(
        &svc, sharded,
        DurableConfig(root, store.get(), /*threshold=*/60,
                      /*auto_compact=*/false));
    ASSERT_TRUE(compactor.Recover().ok);
    // Mutations → Flush: every pending row/tombstone folds into trees,
    // each compaction publish persists a generation.
    w.Apply(&compactor, 0, 300);
    compactor.Flush();
    const ingest::IngestMetrics metrics = compactor.Metrics();
    EXPECT_GT(metrics.compactions, 0u);
    EXPECT_GT(metrics.persisted, 0u);
    EXPECT_EQ(metrics.persist_failures, 0u);
  }
  // GC retains the newest committed generation (older ones go once no
  // publish can still reference them — by destruction, all retired).
  const std::vector<std::uint64_t> seqs = store->ListGenerations();
  ASSERT_FALSE(seqs.empty());
  const std::optional<LoadedGeneration> loaded =
      store->LoadLatest(&pool);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->manifest.generation_seq, seqs.back());
  EXPECT_EQ(loaded->manifest.route_total, Workload::kBase);
  EXPECT_EQ(loaded->sharded->num_shards(), Workload::kShards);
  EXPECT_EQ(loaded->manifest.next_id,
            Workload::kBase + Workload::InsertsBefore(300));
  // After Flush every mutation is in the trees: no buffered tails, and
  // the WAL on disk holds no tail records past the fold point.
  for (std::size_t s = 0; s < Workload::kShards; ++s) {
    EXPECT_TRUE(loaded->buffer_ids[s].empty());
  }
  EXPECT_EQ(loaded->sharded->size(),
            Workload::kBase + Workload::InsertsBefore(300) - 300 / 5);
  RemoveTree(root);
}

TEST(GenerationStoreTest, RestartReplaysOnlyTheWalTail) {
  const std::string root = TestDir("tail");
  RemoveTree(root);
  Workload w;
  ThreadPool pool(2);
  auto store = GenerationStore::Open(root + "/generations");
  ASSERT_NE(store, nullptr);
  const Dataset queries = Walk(6, Workload::kLength, 77);
  std::vector<std::vector<Neighbor>> pre_crash;
  {
    const auto sharded = w.BuildSharded(&pool);
    service::SearchService svc(service::WrapShardedIndex(sharded), &pool);
    ingest::Compactor compactor(
        &svc, sharded,
        DurableConfig(root, store.get(), /*threshold=*/60,
                      /*auto_compact=*/false));
    ASSERT_TRUE(compactor.Recover().ok);
    w.Apply(&compactor, 0, 500);
    compactor.Flush();  // compacts + persists everything so far
    ASSERT_GT(compactor.Metrics().persisted, 0u);
    // The tail: mutations after the last persist stay WAL-only.
    w.Apply(&compactor, 500, 620);
    for (std::size_t q = 0; q < queries.size(); ++q) {
      const service::SearchResponse response =
          svc.Search(MakeSearchRequest(queries, q, 10));
      ASSERT_EQ(response.status, service::RequestStatus::kOk);
      pre_crash.push_back(response.neighbors);
    }
  }  // crash: everything in memory gone

  // The WAL on disk was truncated at the last fold point: every retained
  // segment is at or past the manifest's tail segment — replay work is
  // bounded by mutations since the last compaction, asserted below.
  const std::optional<LoadedGeneration> loaded = store->LoadLatest(&pool);
  ASSERT_TRUE(loaded.has_value());
  ASSERT_GT(loaded->manifest.wal_segment_seq, 0u);
  {
    std::uint64_t tail_records = 0;
    const ingest::WalReplayStats replayed = ingest::WriteAheadLog::Replay(
        root + "/wal", Workload::kLength,
        [&](const ingest::WalRecord&) { ++tail_records; });
    EXPECT_FALSE(replayed.sequence_gap);
    // 120 tail mutations (steps 500..620), not the 620 of the full
    // history: the pre-fold segments are gone from disk.
    EXPECT_EQ(tail_records, 120u);
  }

  const ingest::RecoveredBase recovered_base =
      ingest::MakeRecoveredBase(*loaded);
  service::SearchService svc(service::WrapShardedIndex(loaded->sharded),
                             &pool);
  ingest::Compactor compactor(
      &svc, loaded->sharded,
      DurableConfig(root, store.get(), /*threshold=*/60,
                    /*auto_compact=*/false),
      &recovered_base);
  const ingest::RecoverStats stats = compactor.Recover();
  EXPECT_TRUE(stats.ok);
  EXPECT_FALSE(stats.sequence_gap);
  // Bounded replay, the acceptance criterion: only the 120 tail steps
  // are applied (96 inserts, 24 deletes), nothing is re-read from the
  // persisted prefix.
  EXPECT_EQ(stats.inserts_applied, Workload::InsertsBefore(620) -
                                       Workload::InsertsBefore(500));
  EXPECT_EQ(stats.deletes_applied, 620 / 5 - 500 / 5);
  EXPECT_EQ(stats.records_skipped, 0u);

  // Bit-identity with the pre-crash process AND the from-scratch oracle.
  const Workload::Oracle oracle(w, 620, &pool);
  for (std::size_t q = 0; q < queries.size(); ++q) {
    const service::SearchResponse response =
        svc.Search(MakeSearchRequest(queries, q, 10));
    ASSERT_EQ(response.status, service::RequestStatus::kOk);
    EXPECT_TRUE(BitIdentical(response.neighbors, pre_crash[q]));
    EXPECT_TRUE(BitIdentical(response.neighbors,
                             oracle.SearchKnn(queries.row(q), 10)));
  }
  RemoveTree(root);
}

// ------------------------------------------------- recovery edge cases

TEST(GenerationStoreTest, TornCommitFallsBackToPreviousGeneration) {
  const std::string root = TestDir("torn");
  RemoveTree(root);
  Workload w;
  ThreadPool pool(2);
  auto store = GenerationStore::Open(root + "/generations");
  ASSERT_NE(store, nullptr);
  {
    const auto sharded = w.BuildSharded(&pool);
    service::SearchService svc(service::WrapShardedIndex(sharded), &pool);
    ingest::Compactor compactor(
        &svc, sharded,
        DurableConfig(root, store.get(), 60, /*auto_compact=*/false));
    ASSERT_TRUE(compactor.Recover().ok);
    w.Apply(&compactor, 0, 300);
    compactor.Flush();
    w.Apply(&compactor, 300, 380);  // tail
  }
  const std::vector<std::uint64_t> seqs = store->ListGenerations();
  ASSERT_FALSE(seqs.empty());
  const std::uint64_t good = seqs.back();

  // A torn commit: a newer generation whose manifest never finished. A
  // real crash leaves this as a .tmp staging dir (ignored outright) or a
  // directory whose manifest fails its CRC — both must fall back.
  const std::string good_dir = root + "/generations/" + GenDirName(good);
  const std::string torn_dir = root + "/generations/gen-9999999999";
  ASSERT_EQ(::mkdir(torn_dir.c_str(), 0755), 0);
  std::vector<unsigned char> manifest =
      ReadFileBytes(good_dir + "/MANIFEST");
  ASSERT_FALSE(manifest.empty());
  manifest.resize(manifest.size() / 2);  // torn mid-write
  WriteFileBytes(torn_dir + "/MANIFEST", manifest);
  ::mkdir((root + "/generations/gen-9999999998.tmp").c_str(), 0755);

  const std::optional<LoadedGeneration> loaded = store->LoadLatest(&pool);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->manifest.generation_seq, good);

  // And the fallback generation still recovers the full state: its WAL
  // tail was never truncated past its own fold point.
  const ingest::RecoveredBase recovered_base =
      ingest::MakeRecoveredBase(*loaded);
  service::SearchService svc(service::WrapShardedIndex(loaded->sharded),
                             &pool);
  ingest::Compactor compactor(
      &svc, loaded->sharded,
      DurableConfig(root, store.get(), 60, /*auto_compact=*/false),
      &recovered_base);
  const ingest::RecoverStats stats = compactor.Recover();
  EXPECT_TRUE(stats.ok);
  const Workload::Oracle oracle(w, 380, &pool);
  const Dataset queries = Walk(4, Workload::kLength, 78);
  for (std::size_t q = 0; q < queries.size(); ++q) {
    const service::SearchResponse response =
        svc.Search(MakeSearchRequest(queries, q, 10));
    ASSERT_EQ(response.status, service::RequestStatus::kOk);
    EXPECT_TRUE(BitIdentical(response.neighbors,
                             oracle.SearchKnn(queries.row(q), 10)));
  }
  RemoveTree(root);
}

TEST(GenerationStoreTest, MissingOrCorruptShardFileFailsValidation) {
  const std::string root = TestDir("slice");
  RemoveTree(root);
  Workload w;
  ThreadPool pool(2);
  auto store = GenerationStore::Open(root + "/generations");
  ASSERT_NE(store, nullptr);
  {
    const auto sharded = w.BuildSharded(&pool);
    service::SearchService svc(service::WrapShardedIndex(sharded), &pool);
    ingest::Compactor compactor(
        &svc, sharded,
        DurableConfig(root, store.get(), 60, /*auto_compact=*/false));
    ASSERT_TRUE(compactor.Recover().ok);
    w.Apply(&compactor, 0, 200);
    compactor.Flush();
  }
  const std::vector<std::uint64_t> seqs = store->ListGenerations();
  ASSERT_FALSE(seqs.empty());
  const std::string dir = root + "/generations/" + GenDirName(seqs.back());

  // Bit rot: flip one byte inside a slice — the manifest CRC check
  // refuses the generation instead of serving silently wrong rows.
  const std::string rows = dir + "/shard-0000.rows";
  std::vector<unsigned char> bytes = ReadFileBytes(rows);
  ASSERT_FALSE(bytes.empty());
  bytes[bytes.size() / 2] ^= 0x40;
  WriteFileBytes(rows, bytes);
  EXPECT_FALSE(store->LoadGeneration(seqs.back(), &pool).has_value());

  // Missing file entirely: same refusal.
  ASSERT_EQ(::unlink(rows.c_str()), 0);
  EXPECT_FALSE(store->LoadGeneration(seqs.back(), &pool).has_value());
  EXPECT_FALSE(store->LoadLatest(&pool).has_value());  // only generation
  RemoveTree(root);
}

TEST(GenerationStoreTest, ManifestWalMismatchIsRefused) {
  const std::string root = TestDir("mismatch");
  RemoveTree(root);
  Workload w;
  ThreadPool pool(2);
  auto store = GenerationStore::Open(root + "/generations");
  ASSERT_NE(store, nullptr);
  std::uint64_t first_gen = 0;
  const std::string stash = root + "/stash";
  {
    const auto sharded = w.BuildSharded(&pool);
    service::SearchService svc(service::WrapShardedIndex(sharded), &pool);
    ingest::Compactor compactor(
        &svc, sharded,
        DurableConfig(root, store.get(), 60, /*auto_compact=*/false));
    ASSERT_TRUE(compactor.Recover().ok);
    w.Apply(&compactor, 0, 200);
    compactor.Flush();  // generation A; WAL truncated to A's fold point
    first_gen = store->ListGenerations().back();
    // Stash A before generation B's commit garbage-collects it.
    CopyTree(root + "/generations/" + GenDirName(first_gen), stash);
    w.Apply(&compactor, 200, 400);
    compactor.Flush();  // generation B; WAL truncated PAST A's tail
    ASSERT_GT(store->ListGenerations().back(), first_gen);
  }
  // Losing generation B (operator error, disk loss) forces fallback to
  // A — but A's WAL tail is gone (B's commit truncated it). The record
  // seqno chain proves the hole: recovery must refuse, not resurrect.
  for (const std::uint64_t seq : store->ListGenerations()) {
    if (seq > first_gen) {
      RemoveTree(root + "/generations/" + GenDirName(seq));
    }
  }
  CopyTree(stash, root + "/generations/" + GenDirName(first_gen));
  const std::optional<LoadedGeneration> loaded = store->LoadLatest(&pool);
  ASSERT_TRUE(loaded.has_value());
  ASSERT_EQ(loaded->manifest.generation_seq, first_gen);
  const ingest::RecoveredBase recovered_base =
      ingest::MakeRecoveredBase(*loaded);
  service::SearchService svc(service::WrapShardedIndex(loaded->sharded),
                             &pool);
  ingest::Compactor compactor(
      &svc, loaded->sharded,
      DurableConfig(root, store.get(), 60, /*auto_compact=*/false),
      &recovered_base);
  const ingest::RecoverStats stats = compactor.Recover();
  EXPECT_FALSE(stats.ok);
  EXPECT_TRUE(stats.sequence_gap);
  RemoveTree(root);
}

TEST(GenerationStoreTest, LostWalDirectoryIsRefused) {
  const std::string root = TestDir("lostwal");
  RemoveTree(root);
  Workload w;
  ThreadPool pool(2);
  auto store = GenerationStore::Open(root + "/generations");
  ASSERT_NE(store, nullptr);
  {
    const auto sharded = w.BuildSharded(&pool);
    service::SearchService svc(service::WrapShardedIndex(sharded), &pool);
    ingest::Compactor compactor(
        &svc, sharded,
        DurableConfig(root, store.get(), 60, /*auto_compact=*/false));
    ASSERT_TRUE(compactor.Recover().ok);
    w.Apply(&compactor, 0, 200);
    compactor.Flush();
  }
  // The whole WAL directory vanishes (fs loss, operator rm). A fresh
  // writer would restart seqnos at 1 — below the manifest's fold point —
  // so recovery must refuse even though zero records remain to replay.
  RemoveTree(root + "/wal");
  const std::optional<LoadedGeneration> loaded = store->LoadLatest(&pool);
  ASSERT_TRUE(loaded.has_value());
  ASSERT_GT(loaded->manifest.wal_last_seqno, 0u);
  const ingest::RecoveredBase recovered_base =
      ingest::MakeRecoveredBase(*loaded);
  service::SearchService svc(service::WrapShardedIndex(loaded->sharded),
                             &pool);
  ingest::Compactor compactor(
      &svc, loaded->sharded,
      DurableConfig(root, store.get(), 60, /*auto_compact=*/false),
      &recovered_base);
  const ingest::RecoverStats stats = compactor.Recover();
  EXPECT_FALSE(stats.ok);
  EXPECT_TRUE(stats.sequence_gap);
  RemoveTree(root);
}

TEST(GenerationStoreTest, GcRacesInFlightRecovery) {
  const std::string root = TestDir("gcrace");
  RemoveTree(root);
  Workload w;
  ThreadPool pool(2);
  auto store = GenerationStore::Open(root + "/generations");
  ASSERT_NE(store, nullptr);
  {
    // This test drives Persist/GC by hand to stage multiple retained
    // generations of one base index.
    const auto sharded = w.BuildSharded(&pool);
    PersistRequest request;
    request.route_total = Workload::kBase;
    request.next_id = Workload::kBase;
    request.sharded = sharded;
    request.buffer_rows.reserve(Workload::kShards);
    for (std::size_t s = 0; s < Workload::kShards; ++s) {
      request.buffer_rows.emplace_back(Workload::kLength);
    }
    request.buffer_ids.resize(Workload::kShards);
    for (std::uint64_t seq = 1; seq <= 6; ++seq) {
      request.generation_seq = seq;
      ASSERT_TRUE(store->Persist(request));
    }
  }
  // Loader vs collector: GC may sweep anything below the newest while
  // LoadLatest walks the directory — the newest always survives, a
  // half-deleted older generation just fails validation and is skipped.
  std::atomic<bool> stop(false);
  std::atomic<std::uint64_t> loads(0);
  std::thread loader([&] {
    ThreadPool loader_pool(2);
    while (!stop.load()) {
      const std::optional<LoadedGeneration> loaded =
          store->LoadLatest(&loader_pool);
      ASSERT_TRUE(loaded.has_value());
      EXPECT_EQ(loaded->manifest.generation_seq, 6u);
      ++loads;
    }
  });
  for (std::uint64_t keep = 2; keep <= 6; ++keep) {
    store->RemoveGenerationsBelow(keep);
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  stop.store(true);
  loader.join();
  EXPECT_GT(loads.load(), 0u);
  EXPECT_EQ(store->ListGenerations(), std::vector<std::uint64_t>{6});
  RemoveTree(root);
}

// ------------------------------------------------- rowq sidecar persist

// Rowq-enabled compactions persist one shard-<s>.rq sidecar per shard
// alongside the slices, and a rowq-enabled load reattaches them: the
// reloaded service answers bit-identical to a rowq-off load of the same
// generation AND to the from-scratch oracle, with the tier provably
// engaged (profile counters). Downgrading the manifest to v1 — exactly
// what a pre-rowq build would have written — must still load with
// enable_rowq: the sidecar is rebuilt on the fly, still bit-identical.
TEST(GenerationStoreTest, RowqSidecarsPersistReloadAndRebuild) {
  const std::string root = TestDir("rowq");
  RemoveTree(root);
  Workload w;
  ThreadPool pool(2);
  auto store = GenerationStore::Open(root + "/generations");
  ASSERT_NE(store, nullptr);
  const auto sharded = w.BuildSharded(&pool, /*enable_rowq=*/true);
  {
    service::SearchService svc(service::WrapShardedIndex(sharded), &pool);
    ingest::Compactor compactor(
        &svc, sharded,
        DurableConfig(root, store.get(), /*threshold=*/60,
                      /*auto_compact=*/false));
    ASSERT_TRUE(compactor.Recover().ok);
    w.Apply(&compactor, 0, 300);
    compactor.Flush();
    EXPECT_EQ(compactor.Metrics().persist_failures, 0u);
  }
  const std::vector<std::uint64_t> seqs = store->ListGenerations();
  ASSERT_FALSE(seqs.empty());
  const std::string dir = root + "/generations/" + GenDirName(seqs.back());
  for (std::size_t s = 0; s < Workload::kShards; ++s) {
    char name[32];
    std::snprintf(name, sizeof(name), "/shard-%04zu.rq", s);
    EXPECT_FALSE(ReadFileBytes(dir + name).empty()) << name;
  }

  const Dataset queries = Walk(12, Workload::kLength, 4242);
  const Workload::Oracle oracle(w, 300, &pool);

  // Reload twice — with and without the tier — and compare both against
  // the oracle query-for-query, bit for bit.
  const std::optional<LoadedGeneration> with_rowq =
      store->LoadLatest(&pool, /*enable_rowq=*/true);
  ASSERT_TRUE(with_rowq.has_value());
  const std::optional<LoadedGeneration> without_rowq =
      store->LoadLatest(&pool, /*enable_rowq=*/false);
  ASSERT_TRUE(without_rowq.has_value());
  service::SearchService svc_on(service::WrapShardedIndex(with_rowq->sharded),
                                &pool);
  service::SearchService svc_off(
      service::WrapShardedIndex(without_rowq->sharded), &pool);
  std::uint64_t on_checked = 0;
  std::uint64_t off_checked = 0;
  for (std::size_t q = 0; q < queries.size(); ++q) {
    const std::vector<Neighbor> expected = oracle.SearchKnn(queries.row(q), 10);
    const service::SearchResponse on =
        svc_on.Search(MakeSearchRequest(queries, q, 10, /*profile=*/true));
    const service::SearchResponse off =
        svc_off.Search(MakeSearchRequest(queries, q, 10, /*profile=*/true));
    ASSERT_EQ(on.status, service::RequestStatus::kOk);
    ASSERT_EQ(off.status, service::RequestStatus::kOk);
    EXPECT_TRUE(BitIdentical(on.neighbors, expected)) << "query " << q;
    EXPECT_TRUE(BitIdentical(off.neighbors, expected)) << "query " << q;
    on_checked += on.profile.rowq_checked;
    off_checked += off.profile.rowq_checked;
  }
  EXPECT_GT(on_checked, 0u);   // the persisted tier actually engaged
  EXPECT_EQ(off_checked, 0u);  // the off path never consulted it

  // Legacy generation: rewrite the manifest as format v1 (no .rq
  // accounting) and reload with the tier requested — the sidecar is
  // rebuilt from the row slices on the fly, answers unchanged.
  ASSERT_TRUE(GenerationStore::DowngradeManifestForTesting(dir));
  const std::optional<LoadedGeneration> rebuilt =
      store->LoadLatest(&pool, /*enable_rowq=*/true);
  ASSERT_TRUE(rebuilt.has_value());
  service::SearchService svc_rebuilt(
      service::WrapShardedIndex(rebuilt->sharded), &pool);
  std::uint64_t rebuilt_checked = 0;
  for (std::size_t q = 0; q < queries.size(); ++q) {
    const service::SearchResponse response =
        svc_rebuilt.Search(MakeSearchRequest(queries, q, 10, /*profile=*/true));
    ASSERT_EQ(response.status, service::RequestStatus::kOk);
    EXPECT_TRUE(
        BitIdentical(response.neighbors, oracle.SearchKnn(queries.row(q), 10)))
        << "query " << q;
    rebuilt_checked += response.profile.rowq_checked;
  }
  EXPECT_GT(rebuilt_checked, 0u);
  RemoveTree(root);
}

// An unchanged shard's .rq sidecar is hardlinked into the next
// generation, not rewritten — same inode across consecutive commits.
TEST(GenerationStoreTest, RowqSidecarHardlinkedAcrossGenerations) {
  const std::string root = TestDir("rowqlink");
  RemoveTree(root);
  Workload w;
  ThreadPool pool(2);
  auto store = GenerationStore::Open(root + "/generations");
  ASSERT_NE(store, nullptr);
  const auto sharded = w.BuildSharded(&pool, /*enable_rowq=*/true);
  PersistRequest request;
  request.route_total = Workload::kBase;
  request.next_id = Workload::kBase;
  request.sharded = sharded;
  request.buffer_rows.reserve(Workload::kShards);
  for (std::size_t s = 0; s < Workload::kShards; ++s) {
    request.buffer_rows.emplace_back(Workload::kLength);
  }
  request.buffer_ids.resize(Workload::kShards);
  for (std::uint64_t seq = 1; seq <= 2; ++seq) {
    request.generation_seq = seq;
    ASSERT_TRUE(store->Persist(request));
  }
  for (std::size_t s = 0; s < Workload::kShards; ++s) {
    char name[32];
    std::snprintf(name, sizeof(name), "/shard-%04zu.rq", s);
    struct stat first;
    struct stat second;
    ASSERT_EQ(::stat((root + "/generations/" + GenDirName(1) + name).c_str(),
                     &first),
              0);
    ASSERT_EQ(::stat((root + "/generations/" + GenDirName(2) + name).c_str(),
                     &second),
              0);
    EXPECT_EQ(first.st_ino, second.st_ino) << name;
    EXPECT_GE(first.st_nlink, 2u) << name;
  }
  RemoveTree(root);
}

// ------------------------------------------------------- group commit

TEST(GroupCommitTest, ConcurrentMutatorsAllDurableAndOrdered) {
  const std::string root = TestDir("group");
  RemoveTree(root);
  Workload w;
  ThreadPool pool(4);
  const auto sharded = w.BuildSharded(&pool);
  service::SearchService svc(service::WrapShardedIndex(sharded), &pool);
  constexpr std::size_t kThreads = 4;
  constexpr std::size_t kPerThread = 120;
  {
    ingest::IngestConfig config;
    config.wal_dir = root + "/wal";
    config.wal.sync_every = 16;
    config.compact_threshold = 100;
    ingest::Compactor compactor(&svc, sharded, config);
    ASSERT_TRUE(compactor.Recover().ok);
    // kThreads concurrent inserters (disjoint row ranges of the insert
    // set) race one deleter; every mutation must group-commit durably.
    std::vector<std::thread> mutators;
    for (std::size_t t = 0; t < kThreads; ++t) {
      mutators.emplace_back([&, t] {
        for (std::size_t i = 0; i < kPerThread; ++i) {
          StatusCode status;
          do {
            status = compactor
                         .Insert(w.inserts.row(t * kPerThread + i),
                                 Workload::kLength)
                         .code();
            std::this_thread::yield();
          } while (status == StatusCode::kRejected);
          ASSERT_EQ(status, StatusCode::kOk);
        }
      });
    }
    std::thread deleter([&] {
      for (std::uint32_t d = 0; d < 50; ++d) {
        const Status status =
            compactor.Delete(Workload::DeleteTarget(d));
        ASSERT_EQ(status, StatusCode::kOk);
        std::this_thread::yield();
      }
    });
    for (std::thread& m : mutators) {
      m.join();
    }
    deleter.join();
    const ingest::IngestMetrics metrics = compactor.Metrics();
    EXPECT_EQ(metrics.inserted, kThreads * kPerThread);
    EXPECT_EQ(metrics.deleted, 50u);
    EXPECT_EQ(metrics.io_errors, 0u);
  }
  // The log's record-seqno chain is contiguous across the whole run and
  // replays exactly the accepted mutations with dense ascending ids.
  std::uint64_t inserts = 0;
  std::uint64_t deletes = 0;
  std::uint32_t expected_id = Workload::kBase;
  const ingest::WalReplayStats replayed = ingest::WriteAheadLog::Replay(
      root + "/wal", Workload::kLength, [&](const ingest::WalRecord& r) {
        if (r.type == ingest::WalRecordType::kInsert) {
          EXPECT_EQ(r.id, expected_id++);  // dense id sequence
          ++inserts;
        } else if (r.type == ingest::WalRecordType::kDelete) {
          ++deletes;
        }
      });
  EXPECT_FALSE(replayed.tail_truncated);
  EXPECT_FALSE(replayed.sequence_gap);
  EXPECT_EQ(inserts, kThreads * kPerThread);
  EXPECT_EQ(deletes, 50u);
  EXPECT_EQ(replayed.last_seqno, inserts + deletes);
  RemoveTree(root);
}

// ------------------------------------------------------ WAL v2 seqnos

TEST(WalSeqnoTest, ReopenContinuesTheChain) {
  const std::string dir = TestDir("waL_reopen");
  RemoveTree(dir);
  const std::size_t length = 8;
  const Dataset rows = Walk(5, length, 501);
  {
    auto wal = ingest::WriteAheadLog::Open(dir, length);
    ASSERT_NE(wal, nullptr);
    for (std::size_t i = 0; i < 3; ++i) {
      ASSERT_TRUE(wal->AppendInsert(static_cast<std::uint32_t>(i),
                                    rows.row(i)));
    }
    EXPECT_EQ(wal->last_seqno(), 3u);
  }
  {
    auto wal = ingest::WriteAheadLog::Open(dir, length);
    ASSERT_NE(wal, nullptr);
    EXPECT_EQ(wal->last_seqno(), 3u);  // scanned from the retained log
    ASSERT_TRUE(wal->AppendInsert(3, rows.row(3)));
    ASSERT_TRUE(wal->AppendInsert(4, rows.row(4)));
  }
  std::vector<std::uint64_t> seqnos;
  const ingest::WalReplayStats stats = ingest::WriteAheadLog::Replay(
      dir, length,
      [&](const ingest::WalRecord& r) { seqnos.push_back(r.seqno); });
  EXPECT_FALSE(stats.sequence_gap);
  EXPECT_FALSE(stats.tail_truncated);
  ASSERT_EQ(seqnos.size(), 5u);
  for (std::size_t i = 0; i < seqnos.size(); ++i) {
    EXPECT_EQ(seqnos[i], i + 1);
  }
  RemoveTree(dir);
}

TEST(WalSeqnoTest, LostInteriorSegmentIsASequenceGapNotATornTail) {
  const std::string dir = TestDir("wal_gap");
  RemoveTree(dir);
  const std::size_t length = 8;
  const Dataset rows = Walk(12, length, 503);
  {
    ingest::WalConfig config;
    config.segment_bytes = 100;  // a couple of records per segment
    auto wal = ingest::WriteAheadLog::Open(dir, length, config);
    ASSERT_NE(wal, nullptr);
    for (std::size_t i = 0; i < rows.size(); ++i) {
      ASSERT_TRUE(wal->AppendInsert(static_cast<std::uint32_t>(i),
                                    rows.row(i)));
    }
  }
  std::vector<std::string> segments =
      ingest::WriteAheadLog::ListSegments(dir);
  ASSERT_GE(segments.size(), 3u);
  // Interior loss: a middle segment vanishes (bit rot, operator error).
  ASSERT_EQ(::unlink(segments[segments.size() / 2].c_str()), 0);
  const ingest::WalReplayStats stats = ingest::WriteAheadLog::Replay(
      dir, length, [](const ingest::WalRecord&) {});
  EXPECT_TRUE(stats.sequence_gap);  // acknowledged records are GONE

  // Contrast: a torn final record is the benign crash pattern — flagged
  // tail_truncated, chain intact.
  RemoveTree(dir);
  {
    auto wal = ingest::WriteAheadLog::Open(dir, length);
    ASSERT_NE(wal, nullptr);
    for (std::size_t i = 0; i < 4; ++i) {
      ASSERT_TRUE(wal->AppendInsert(static_cast<std::uint32_t>(i),
                                    rows.row(i)));
    }
  }
  segments = ingest::WriteAheadLog::ListSegments(dir);
  ASSERT_EQ(segments.size(), 1u);
  std::vector<unsigned char> bytes = ReadFileBytes(segments[0]);
  bytes.resize(bytes.size() - 7);
  WriteFileBytes(segments[0], bytes);
  const ingest::WalReplayStats torn = ingest::WriteAheadLog::Replay(
      dir, length, [](const ingest::WalRecord&) {});
  EXPECT_TRUE(torn.tail_truncated);
  EXPECT_FALSE(torn.sequence_gap);
  RemoveTree(dir);
}

// ------------------------------------------- end-to-end crash loop

// TSan and fork-then-thread do not mix reliably; every other persist
// test still runs under TSan via the concurrency label.
#if defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define SOFA_SKIP_FORK_TESTS 1
#endif
#endif
#if defined(__SANITIZE_THREAD__)
#define SOFA_SKIP_FORK_TESTS 1
#endif

#ifndef SOFA_SKIP_FORK_TESTS
// The serving child: bootstraps (round 1) or resumes (later rounds) the
// durable deployment, touches `marker` once at least one compaction has
// persisted and progress passed `marker_step`, then keeps mutating —
// slowly — until the parent kills it (or the stream ends: Flush + clean
// exit). Runs in a forked process: SOFA_CHECK aborts, no gtest.
void CrashVictim(const std::string& root, const std::string& marker) {
  Workload w;
  ThreadPool pool(2);
  auto store = GenerationStore::Open(root + "/generations");
  SOFA_CHECK(store != nullptr);
  const std::optional<LoadedGeneration> loaded = store->LoadLatest(&pool);
  std::shared_ptr<const shard::ShardedIndex> sharded;
  std::optional<ingest::RecoveredBase> recovered;
  if (loaded.has_value()) {
    sharded = loaded->sharded;
    recovered = ingest::MakeRecoveredBase(*loaded);
  } else {
    sharded = w.BuildSharded(&pool);
  }
  service::SearchService svc(service::WrapShardedIndex(sharded), &pool);
  ingest::Compactor compactor(
      &svc, sharded,
      DurableConfig(root, store.get(), /*threshold=*/60),
      recovered.has_value() ? &recovered.value() : nullptr);
  const ingest::RecoverStats stats = compactor.Recover();
  SOFA_CHECK(stats.ok);
  // Resume position: the smallest stream position consistent with the
  // recovered id watermark (a re-run delete is idempotent).
  const std::size_t applied_inserts =
      compactor.Metrics().total_rows - Workload::kBase;
  std::size_t from = 0;
  while (Workload::InsertsBefore(from) < applied_inserts) {
    ++from;
  }
  bool marked = false;
  for (std::size_t step = from; step < Workload::kSteps; ++step) {
    if (Workload::IsDelete(step)) {
      const Status status =
          compactor.Delete(Workload::DeleteTarget(step / 5));
      SOFA_CHECK(status == StatusCode::kOk ||
                 status == StatusCode::kAlreadyDeleted);
    } else {
      StatusCode status;
      do {
        status = compactor
                     .Insert(w.inserts.row(Workload::InsertsBefore(step)),
                             Workload::kLength)
                     .code();
      } while (status == StatusCode::kRejected);
      SOFA_CHECK(status == StatusCode::kOk);
    }
    if (!marked && compactor.Metrics().persisted > 0 && step > from + 100) {
      std::FILE* f = std::fopen(marker.c_str(), "wb");
      SOFA_CHECK(f != nullptr);
      std::fclose(f);
      marked = true;
    }
    if (marked) {
      // Slow down so the parent's kill lands mid-stream, possibly
      // mid-compaction or mid-persist.
      std::this_thread::sleep_for(std::chrono::microseconds(300));
    }
  }
  compactor.Flush();
}

// The acceptance-criterion test: a serving process is killed at a random
// point after ≥1 compaction persisted, and recovery from (latest intact
// manifest + WAL tail) must answer bit-identically to a from-scratch
// build over base ∪ applied-inserts \ applied-deletes — across several
// kill-resume rounds, with a clean final round proving the on-disk WAL
// was truncated to the post-checkpoint tail.
TEST(CrashRecoveryTest, KillAtRandomPointRecoversBitIdentical) {
  const std::string root = TestDir("crash");
  RemoveTree(root);
  ASSERT_EQ(::mkdir(root.c_str(), 0755), 0);
  Workload w;
  ThreadPool pool(2);
  const Dataset queries = Walk(5, Workload::kLength, 91);
  unsigned delay_seed = 0xc0ffee;

  for (int round = 0; round < 3; ++round) {
    const bool final_round = round == 2;
    const std::string marker =
        root + "/marker_" + std::to_string(round);
    const pid_t child = ::fork();
    ASSERT_GE(child, 0);
    if (child == 0) {
      // Forked serving process: no gtest, no parent state.
      CrashVictim(root, marker);
      ::_exit(0);
    }
    if (final_round) {
      int status = 0;
      ASSERT_EQ(::waitpid(child, &status, 0), child);
      ASSERT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0)
          << "final round victim did not exit cleanly";
    } else {
      // Kill only after ≥1 compaction has persisted (the marker), at a
      // pseudo-random delay past it. A victim fast enough to finish the
      // whole stream first just exits cleanly — recovery is verified
      // either way.
      bool exited = false;
      while (::access(marker.c_str(), F_OK) != 0) {
        int status = 0;
        const pid_t done = ::waitpid(child, &status, WNOHANG);
        if (done == child) {
          ASSERT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0);
          exited = true;
          break;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
      if (!exited) {
        const int delay_ms = static_cast<int>(rand_r(&delay_seed) % 40);
        std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms));
        ASSERT_EQ(::kill(child, SIGKILL), 0);
        int status = 0;
        ASSERT_EQ(::waitpid(child, &status, 0), child);
        ASSERT_TRUE(WIFSIGNALED(status) ||
                    (WIFEXITED(status) && WEXITSTATUS(status) == 0));
      }
    }

    // Recover in-process and prove bit-identity against the oracle over
    // the durable prefix.
    auto store = GenerationStore::Open(root + "/generations");
    ASSERT_NE(store, nullptr);
    const std::optional<LoadedGeneration> loaded = store->LoadLatest(&pool);
    ASSERT_TRUE(loaded.has_value())
        << "round " << round << ": no intact generation";
    const ingest::RecoveredBase recovered_base =
        ingest::MakeRecoveredBase(*loaded);
    service::SearchService svc(service::WrapShardedIndex(loaded->sharded),
                               &pool);
    ingest::Compactor compactor(
        &svc, loaded->sharded,
        DurableConfig(root, store.get(), /*threshold=*/60,
                      /*auto_compact=*/false),
        &recovered_base);
    const ingest::RecoverStats stats = compactor.Recover();
    ASSERT_TRUE(stats.ok) << "round " << round;
    ASSERT_FALSE(stats.sequence_gap);

    // The durable prefix length, derived from the recovered state alone:
    // the id watermark gives the applied inserts; the live answerable
    // row count (slices + seeded tails + replayed tail inserts − live
    // tombstones) gives the applied deletes, purged or not. The WAL is
    // written and fflushed in mutation order, so the durable set is
    // always a prefix of the stream.
    const ingest::IngestMetrics metrics = compactor.Metrics();
    const std::size_t applied_inserts =
        metrics.total_rows - Workload::kBase;
    std::size_t live_rows = loaded->sharded->size() +
                            static_cast<std::size_t>(stats.inserts_applied);
    for (std::size_t s = 0; s < Workload::kShards; ++s) {
      live_rows += loaded->buffer_ids[s].size();
    }
    ASSERT_GE(live_rows, metrics.tombstones);
    live_rows -= metrics.tombstones;
    ASSERT_GE(Workload::kBase + applied_inserts, live_rows);
    const std::size_t applied_deletes =
        Workload::kBase + applied_inserts - live_rows;
    // Map (inserts, deletes) back to the unique stream position.
    std::size_t position = 0;
    while (Workload::InsertsBefore(position) < applied_inserts) {
      ++position;
    }
    while (position < Workload::kSteps && Workload::IsDelete(position) &&
           position / 5 < applied_deletes) {
      ++position;
    }
    ASSERT_EQ(position / 5, applied_deletes)
        << "round " << round << ": recovered deletes (" << applied_deletes
        << ") do not match any prefix of the mutation stream at insert "
           "count "
        << applied_inserts;
    if (final_round) {
      // Clean shutdown after Flush: everything was compacted and
      // persisted, so the WAL tail replays nothing...
      EXPECT_EQ(stats.inserts_applied, 0u) << "unbounded replay";
      EXPECT_EQ(applied_inserts, Workload::InsertsBefore(Workload::kSteps));
      // ...and the pre-fold segments are physically gone: every
      // retained segment is at or past the manifest's tail segment.
      EXPECT_GT(loaded->manifest.wal_segment_seq, 0u);
      std::uint64_t tail_records = 0;
      ingest::WriteAheadLog::Replay(
          root + "/wal", Workload::kLength,
          [&](const ingest::WalRecord&) { ++tail_records; });
      EXPECT_EQ(tail_records, 0u)
          << "WAL not truncated to the post-checkpoint tail";
    }

    const Workload::Oracle oracle(w, position, &pool);
    for (std::size_t q = 0; q < queries.size(); ++q) {
      const service::SearchResponse response =
          svc.Search(MakeSearchRequest(queries, q, 10));
      ASSERT_EQ(response.status, service::RequestStatus::kOk);
      EXPECT_TRUE(BitIdentical(response.neighbors,
                               oracle.SearchKnn(queries.row(q), 10)))
          << "round " << round << ", query " << q << " (position "
          << position << ")";
    }
  }
  RemoveTree(root);
}
#endif  // SOFA_SKIP_FORK_TESTS

}  // namespace
}  // namespace persist
}  // namespace sofa
