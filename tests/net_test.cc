// Tests for the network serving tier (src/net): byte-level goldens for
// the wire protocol (framing, CRC, payload codecs) and refusal of
// truncated/corrupt frames; and live loopback-server behavior — answers
// over TCP bit-identical to in-process submission with INSERT/DELETE
// arriving over the wire, strict-priority scheduling with the
// anti-starvation reserve observable end to end, per-tenant quota
// shedding, the admin + stats surface, graceful drain completing
// in-flight requests, and a mid-query client disconnect leaving the
// server serving.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstring>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include <gtest/gtest.h>

#include "harness/oracle.h"
#include "ingest/compactor.h"
#include "net/client.h"
#include "net/protocol.h"
#include "net/server.h"
#include "obs/exposition.h"
#include "obs/registry.h"
#include "service/search_service.h"
#include "service/snapshot.h"
#include "shard/sharded_index.h"
#include "test_data.h"
#include "util/crc32.h"
#include "util/thread_pool.h"

namespace sofa {
namespace net {
namespace {

using testing_data::BruteForceKnn;
using testing_data::SameDistances;
using testing_data::Walk;
using testing_harness::BitIdentical;
using testing_harness::MakeSearchRequest;

// ------------------------------------------------------ protocol goldens

TEST(WireProtocolTest, Crc32MatchesTheIeeeCheckValue) {
  // The standard CRC-32 check vector; pinning it pins the polynomial,
  // reflection and init/final xor the frame CRC field depends on.
  EXPECT_EQ(Crc32("123456789", 9), 0xCBF43926u);
}

TEST(WireProtocolTest, FrameLayoutGolden) {
  const std::vector<std::uint8_t> payload = {0xAA, 0xBB, 0xCC};
  const std::vector<std::uint8_t> frame =
      EncodeFrame(static_cast<std::uint8_t>(MessageType::kSearch),
                  0x1122334455667788ull, payload);
  ASSERT_EQ(frame.size(), kHeaderSize + payload.size());
  const std::uint8_t expected_head[20] = {
      0x53, 0x4F, 0x46, 0x41,  // magic "SOFA"
      0x02,                    // protocol version
      0x01,                    // type = SEARCH request
      0x00, 0x00,              // flags (reserved)
      0x88, 0x77, 0x66, 0x55, 0x44, 0x33, 0x22, 0x11,  // request_id, LE
      0x03, 0x00, 0x00, 0x00,  // payload_size = 3
  };
  EXPECT_EQ(0, std::memcmp(frame.data(), expected_head, sizeof(expected_head)));
  const std::uint32_t wire_crc =
      static_cast<std::uint32_t>(frame[20]) |
      (static_cast<std::uint32_t>(frame[21]) << 8) |
      (static_cast<std::uint32_t>(frame[22]) << 16) |
      (static_cast<std::uint32_t>(frame[23]) << 24);
  EXPECT_EQ(wire_crc, Crc32(payload.data(), payload.size()));

  FrameHeader header;
  ASSERT_TRUE(DecodeHeader(frame.data(), frame.size(), &header).ok());
  EXPECT_EQ(header.version, kProtocolVersion);
  EXPECT_EQ(header.type, static_cast<std::uint8_t>(MessageType::kSearch));
  EXPECT_EQ(header.request_id, 0x1122334455667788ull);
  EXPECT_EQ(header.payload_size, 3u);
  EXPECT_TRUE(VerifyPayload(header, frame.data() + kHeaderSize, 3).ok());
}

TEST(WireProtocolTest, Version1FramesStillDecode) {
  // Compatibility floor: a v1 peer's frames must keep decoding, with the
  // actual version reported so the responder can answer in kind.
  const std::vector<std::uint8_t> payload = {0x01, 0x02};
  const std::vector<std::uint8_t> frame =
      EncodeFrame(static_cast<std::uint8_t>(MessageType::kSearch), 7, payload,
                  /*version=*/1);
  EXPECT_EQ(frame[4], 0x01);
  FrameHeader header;
  ASSERT_TRUE(DecodeHeader(frame.data(), frame.size(), &header).ok());
  EXPECT_EQ(header.version, 1);
  EXPECT_TRUE(VerifyPayload(header, frame.data() + kHeaderSize, 2).ok());
}

TEST(WireProtocolTest, SearchRequestPayloadGolden) {
  service::SearchRequest request;
  request.k = 3;
  request.epsilon = 0.5;
  request.priority = service::Priority::kBatch;
  request.collect_profile = true;
  request.collect_trace = false;
  request.deadline_ms = 250.0;
  request.tenant = "t0";
  request.query = {1.0f, -2.0f};
  const std::vector<std::uint8_t> payload = EncodeSearchRequest(request);
  const std::uint8_t expected[] = {
      0x03, 0x00, 0x00, 0x00,                          // k = 3 (u32)
      0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0xE0, 0x3F,  // epsilon 0.5 (f64)
      0x01,                                            // priority = batch
      0x01,                                            // bit 0: profile
      0x00, 0x00, 0x00, 0x00, 0x00, 0x40, 0x6F, 0x40,  // 250.0 ms (f64)
      0x02, 0x00, 0x74, 0x30,                          // tenant "t0"
      0x02, 0x00, 0x00, 0x00,                          // 2 query points
      0x00, 0x00, 0x80, 0x3F,                          // 1.0f
      0x00, 0x00, 0x00, 0xC0,                          // -2.0f
  };
  ASSERT_EQ(payload.size(), sizeof(expected));
  EXPECT_EQ(0, std::memcmp(payload.data(), expected, sizeof(expected)));

  service::SearchRequest decoded;
  ASSERT_TRUE(
      DecodeSearchRequest(payload.data(), payload.size(), &decoded).ok());
  EXPECT_EQ(decoded.k, 3u);
  EXPECT_EQ(decoded.epsilon, 0.5);
  EXPECT_EQ(decoded.priority, service::Priority::kBatch);
  EXPECT_TRUE(decoded.collect_profile);
  EXPECT_FALSE(decoded.collect_trace);
  EXPECT_EQ(decoded.deadline_ms, 250.0);
  EXPECT_EQ(decoded.tenant, "t0");
  EXPECT_EQ(decoded.query, request.query);
}

TEST(WireProtocolTest, SearchResponseRoundTripsEveryWireField) {
  service::SearchResponse response;
  response.status = StatusCode::kOk;
  response.neighbors = {{7, 0.25f}, {19, 1.5f}};
  response.latency_ms = 3.75;
  response.index_version = 42;
  response.profile.nodes_visited = 11;
  response.profile.series_ed_computed = 101;
  response.profile.rowq_checked = 55;
  response.profile.rowq_pruned = 44;
  const std::vector<std::uint8_t> payload =
      EncodeSearchResponse(response, OkStatus(), "trace text", "blob!");

  service::SearchResponse decoded;
  std::string message, trace, blob;
  ASSERT_TRUE(DecodeSearchResponse(payload.data(), payload.size(), &decoded,
                                   &message, &trace, &blob)
                  .ok());
  EXPECT_EQ(decoded.status, StatusCode::kOk);
  EXPECT_TRUE(BitIdentical(decoded.neighbors, response.neighbors));
  EXPECT_EQ(decoded.latency_ms, 3.75);
  EXPECT_EQ(decoded.index_version, 42u);
  EXPECT_EQ(decoded.profile.nodes_visited, 11u);
  EXPECT_EQ(decoded.profile.series_ed_computed, 101u);
  EXPECT_EQ(decoded.profile.rowq_checked, 55u);
  EXPECT_EQ(decoded.profile.rowq_pruned, 44u);
  EXPECT_EQ(trace, "trace text");
  EXPECT_EQ(blob, "blob!");
  EXPECT_TRUE(message.empty());
}

TEST(WireProtocolTest, SearchResponseVersion1KeepsTheFrozenLayout) {
  // A v1 peer gets exactly the original bytes: 8-counter profile, trace
  // text, no structured trace section — and its decoder leaves the rowq
  // counters zero.
  service::SearchResponse response;
  response.status = StatusCode::kOk;
  response.neighbors = {{3, 0.5f}};
  response.profile.candidates_filtered = 9;
  response.profile.rowq_checked = 123;  // must NOT reach a v1 peer
  const std::vector<std::uint8_t> v1 = EncodeSearchResponse(
      response, OkStatus(), "text", "should never appear", /*version=*/1);
  const std::vector<std::uint8_t> v2 =
      EncodeSearchResponse(response, OkStatus(), "text", "");
  // v2 adds exactly the two rowq u64s plus the (empty) blob's u32 length.
  EXPECT_EQ(v2.size(), v1.size() + 2 * 8 + 4);

  service::SearchResponse decoded;
  std::string message, trace, blob = "sentinel";
  ASSERT_TRUE(DecodeSearchResponse(v1.data(), v1.size(), &decoded, &message,
                                   &trace, &blob, /*version=*/1)
                  .ok());
  EXPECT_EQ(decoded.profile.candidates_filtered, 9u);
  EXPECT_EQ(decoded.profile.rowq_checked, 0u);
  EXPECT_EQ(trace, "text");
  EXPECT_TRUE(blob.empty());  // cleared, not left stale
  // A v1 payload does not parse as v2 (the v2 decoder wants more bytes).
  EXPECT_FALSE(DecodeSearchResponse(v1.data(), v1.size(), &decoded, &message,
                                    &trace, &blob)
                   .ok());
}

TEST(WireProtocolTest, SideChannelCodecsRoundTrip) {
  // INSERT
  const std::vector<float> row = {0.5f, -1.0f, 2.0f};
  std::vector<float> row_out;
  std::vector<std::uint8_t> bytes = EncodeInsertRequest(row);
  ASSERT_TRUE(DecodeInsertRequest(bytes.data(), bytes.size(), &row_out).ok());
  EXPECT_EQ(row_out, row);
  Status status;
  std::uint32_t id = 0;
  bytes = EncodeInsertResponse(RejectedError("backpressure"), 9);
  ASSERT_TRUE(
      DecodeInsertResponse(bytes.data(), bytes.size(), &status, &id).ok());
  EXPECT_EQ(status.code(), StatusCode::kRejected);
  EXPECT_EQ(status.message(), "backpressure");

  // DELETE
  std::uint32_t delete_id = 0;
  bytes = EncodeDeleteRequest(1234567);
  ASSERT_TRUE(
      DecodeDeleteRequest(bytes.data(), bytes.size(), &delete_id).ok());
  EXPECT_EQ(delete_id, 1234567u);
  bytes = EncodeDeleteResponse(AlreadyDeletedError());
  ASSERT_TRUE(DecodeDeleteResponse(bytes.data(), bytes.size(), &status).ok());
  EXPECT_EQ(status.code(), StatusCode::kAlreadyDeleted);

  // STATS
  StatsFormat format = StatsFormat::kJson;
  bytes = EncodeStatsRequest(StatsFormat::kPrometheus);
  ASSERT_TRUE(DecodeStatsRequest(bytes.data(), bytes.size(), &format).ok());
  EXPECT_EQ(format, StatsFormat::kPrometheus);
  std::string text;
  bytes = EncodeStatsResponse(OkStatus(), "{\"x\": 1}");
  ASSERT_TRUE(
      DecodeStatsResponse(bytes.data(), bytes.size(), &status, &text).ok());
  EXPECT_EQ(text, "{\"x\": 1}");

  // ADMIN
  AdminOp op = AdminOp::kCheckpoint;
  bytes = EncodeAdminRequest(AdminOp::kSwap);
  ASSERT_TRUE(DecodeAdminRequest(bytes.data(), bytes.size(), &op).ok());
  EXPECT_EQ(op, AdminOp::kSwap);
  std::uint64_t version = 0;
  bytes = EncodeAdminResponse(UnavailableError("no WAL attached"), 5);
  ASSERT_TRUE(
      DecodeAdminResponse(bytes.data(), bytes.size(), &status, &version)
          .ok());
  EXPECT_EQ(status.code(), StatusCode::kUnavailable);
  EXPECT_EQ(status.message(), "no WAL attached");
  EXPECT_EQ(version, 5u);
}

TEST(WireProtocolTest, RefusesTruncatedAndCorruptFrames) {
  service::SearchRequest request;
  request.k = 5;
  request.query = {1.0f, 2.0f, 3.0f};
  const std::vector<std::uint8_t> payload = EncodeSearchRequest(request);
  std::vector<std::uint8_t> frame =
      EncodeFrame(static_cast<std::uint8_t>(MessageType::kSearch), 1, payload);

  // Intact frame passes.
  FrameHeader header;
  ASSERT_TRUE(DecodeHeader(frame.data(), frame.size(), &header).ok());
  ASSERT_TRUE(VerifyPayload(header, frame.data() + kHeaderSize,
                            header.payload_size)
                  .ok());

  // Bad magic.
  {
    std::vector<std::uint8_t> bad = frame;
    bad[0] ^= 0xFF;
    EXPECT_FALSE(DecodeHeader(bad.data(), bad.size(), &header).ok());
  }
  // Unsupported versions: above the ceiling and below the floor.
  {
    std::vector<std::uint8_t> bad = frame;
    bad[4] = kProtocolVersion + 1;
    EXPECT_FALSE(DecodeHeader(bad.data(), bad.size(), &header).ok());
    bad[4] = 0;
    EXPECT_FALSE(DecodeHeader(bad.data(), bad.size(), &header).ok());
  }
  // Absurd payload_size.
  {
    std::vector<std::uint8_t> bad = frame;
    bad[16] = 0xFF;
    bad[17] = 0xFF;
    bad[18] = 0xFF;
    bad[19] = 0xFF;
    EXPECT_FALSE(DecodeHeader(bad.data(), bad.size(), &header).ok());
  }
  // Any flipped payload byte fails the CRC.
  {
    std::vector<std::uint8_t> bad = frame;
    bad[kHeaderSize + 2] ^= 0x01;
    ASSERT_TRUE(DecodeHeader(bad.data(), bad.size(), &header).ok());
    EXPECT_FALSE(VerifyPayload(header, bad.data() + kHeaderSize,
                               header.payload_size)
                     .ok());
  }
  // Truncated payload fails the decoder, not the process.
  {
    service::SearchRequest out;
    for (std::size_t cut = 0; cut < payload.size(); ++cut) {
      EXPECT_FALSE(DecodeSearchRequest(payload.data(), cut, &out).ok())
          << "decoded from a " << cut << "-byte prefix";
    }
  }
  // Trailing garbage is refused too (AtEnd rule).
  {
    std::vector<std::uint8_t> padded = payload;
    padded.push_back(0x00);
    service::SearchRequest out;
    EXPECT_FALSE(
        DecodeSearchRequest(padded.data(), padded.size(), &out).ok());
  }
  // A response whose neighbor count lies about the remaining bytes.
  {
    service::SearchResponse response;
    response.status = StatusCode::kOk;
    response.neighbors = {{1, 1.0f}, {2, 2.0f}};
    std::vector<std::uint8_t> bytes =
        EncodeSearchResponse(response, OkStatus(), "");
    // status u16 + empty message u16 + index_version u64 + latency f64
    // puts the neighbor count at offset 20.
    bytes[20] = 0xE8;
    bytes[21] = 0x03;  // claims 1000 neighbors
    service::SearchResponse out;
    std::string message, trace;
    EXPECT_FALSE(DecodeSearchResponse(bytes.data(), bytes.size(), &out,
                                      &message, &trace)
                     .ok());
  }
}

// ---------------------------------------------------- live server tests

// A sharded generation with the service + ingest path + server over it,
// everything wired to one registry — the full network serving stack on a
// loopback ephemeral port.
struct ServerFixture {
  ThreadPool pool;
  Dataset base;
  std::shared_ptr<const quant::SummaryScheme> scheme;
  std::shared_ptr<const shard::ShardedIndex> sharded;
  obs::Registry registry;
  std::unique_ptr<service::SearchService> service;
  std::optional<ingest::Compactor> compactor;
  std::unique_ptr<SofaServer> server;

  explicit ServerFixture(service::ServiceConfig config = {},
                         ServerConfig server_config = {},
                         std::size_t base_count = 1200,
                         std::size_t length = 64, std::uint64_t seed = 97,
                         bool enable_rowq = false)
      : pool(4), base(Walk(base_count, length, seed)) {
    scheme = testing_harness::TrainTestScheme(base, &pool);
    sharded = testing_harness::BuildTestSharded(
        base, /*num_shards=*/2, shard::ShardAssignment::kContiguous, scheme,
        &pool, enable_rowq);
    config.registry = &registry;
    service = std::make_unique<service::SearchService>(
        service::WrapShardedIndex(sharded), &pool, config);
    ingest::IngestConfig ingest_config;
    ingest_config.compact_threshold = 64;
    ingest_config.registry = &registry;
    compactor.emplace(service.get(), sharded, ingest_config);
    server = std::make_unique<SofaServer>(service.get(), &*compactor,
                                          server_config);
  }

  std::uint16_t Start() {
    const Status status = server->Start();
    EXPECT_TRUE(status.ok()) << status.ToString();
    return server->port();
  }

  // Spin until the server has framed at least `n` requests — the gap
  // between a client's send() returning and the reader thread parsing.
  bool WaitForFrames(std::uint64_t n) {
    for (int spin = 0; spin < 2000; ++spin) {
      if (server->Stats().frames_received >= n) {
        return true;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    return false;
  }
};

TEST(NetServerTest, NetworkAnswersAreBitIdenticalUnderWireMutations) {
  ServerFixture fx;
  const std::uint16_t port = fx.Start();
  SofaClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", port).ok());

  // Mutations arrive over the wire: 80 inserts, then deletes of base and
  // freshly inserted rows.
  const Dataset inserts = Walk(80, 64, 98);
  for (std::size_t i = 0; i < inserts.size(); ++i) {
    const StatusOr<std::uint32_t> id = client.Insert(std::vector<float>(
        inserts.row(i), inserts.row(i) + inserts.length()));
    ASSERT_TRUE(id.ok()) << id.status().ToString();
    EXPECT_EQ(id.value(), fx.base.size() + i);
  }
  const std::vector<std::uint32_t> deleted = {3, 17, 256,
                                              static_cast<std::uint32_t>(
                                                  fx.base.size() + 5)};
  for (const std::uint32_t id : deleted) {
    ASSERT_EQ(client.Delete(id).code(), StatusCode::kOk);
  }
  // The status vocabulary survives the wire unchanged.
  EXPECT_EQ(client.Delete(3).code(), StatusCode::kAlreadyDeleted);
  EXPECT_EQ(client.Delete(10000000).code(), StatusCode::kNotFound);
  // A wrong-length insert is an application error, not a dead socket.
  const StatusOr<std::uint32_t> bad_insert =
      client.Insert(std::vector<float>(3, 0.0f));
  EXPECT_EQ(bad_insert.code(), StatusCode::kInvalidArgument);
  EXPECT_TRUE(client.connected());

  // Quiesce the background compaction the inserts triggered: without
  // this, its publish can land between the over-wire search and the
  // in-process search below and the index_version comparison races.
  fx.compactor->Flush();

  // Oracle: base ∪ inserts \ deletes, in global-id order.
  Dataset combined(fx.base.length());
  for (std::size_t i = 0; i < fx.base.size(); ++i) {
    combined.Append(fx.base.row(i));
  }
  for (std::size_t i = 0; i < inserts.size(); ++i) {
    combined.Append(inserts.row(i));
  }
  const std::unordered_set<std::uint32_t> tombstones(deleted.begin(),
                                                     deleted.end());

  const Dataset queries = Walk(12, 64, 99);
  for (std::size_t q = 0; q < queries.size(); ++q) {
    service::SearchResponse over_wire;
    ASSERT_TRUE(client.Search(MakeSearchRequest(queries, q, 5), &over_wire).ok());
    ASSERT_EQ(over_wire.status, StatusCode::kOk);

    const service::SearchResponse in_process =
        fx.service->Search(MakeSearchRequest(queries, q, 5));
    ASSERT_EQ(in_process.status, StatusCode::kOk);
    EXPECT_TRUE(BitIdentical(over_wire.neighbors, in_process.neighbors))
        << "query " << q << ": network != in-process";
    EXPECT_EQ(over_wire.index_version, in_process.index_version);

    std::vector<Neighbor> expected =
        BruteForceKnn(combined, queries.row(q), 5 + deleted.size());
    expected.erase(std::remove_if(expected.begin(), expected.end(),
                                  [&](const Neighbor& neighbor) {
                                    return tombstones.count(neighbor.id) > 0;
                                  }),
                   expected.end());
    expected.resize(5);
    EXPECT_TRUE(SameDistances(over_wire.neighbors, expected))
        << "query " << q << ": network != brute force";
  }
  client.Close();
  fx.server->Shutdown();
}

// The compressed pruning tier must be invisible over the wire: a server
// whose shards carry the rowq tier, fed mutations through TCP, answers
// bit-identical to a rowq-off in-process service fed the same mutations
// directly. Profile counters prove the tier engaged on the server side
// and never on the baseline.
TEST(NetServerTest, RowqTierAnswersBitIdenticalOverTheWire) {
  ServerFixture with_rowq({}, {}, /*base_count=*/1200, /*length=*/64,
                          /*seed=*/97, /*enable_rowq=*/true);
  ServerFixture baseline({}, {}, /*base_count=*/1200, /*length=*/64,
                         /*seed=*/97, /*enable_rowq=*/false);
  const std::uint16_t port = with_rowq.Start();
  SofaClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", port).ok());

  // Same mutation stream on both sides — over the wire for the rowq
  // server, straight into the compactor for the baseline.
  const Dataset inserts = Walk(90, 64, 206);
  for (std::size_t i = 0; i < inserts.size(); ++i) {
    const StatusOr<std::uint32_t> id = client.Insert(std::vector<float>(
        inserts.row(i), inserts.row(i) + inserts.length()));
    ASSERT_TRUE(id.ok()) << id.status().ToString();
    while (baseline.compactor->Insert(inserts.row(i), inserts.length()) ==
           StatusCode::kRejected) {
      std::this_thread::yield();
    }
  }
  const std::vector<std::uint32_t> deleted = {7, 42, 1100,
                                              static_cast<std::uint32_t>(
                                                  1200 + 11)};
  for (const std::uint32_t id : deleted) {
    ASSERT_EQ(client.Delete(id).code(), StatusCode::kOk);
    ASSERT_EQ(baseline.compactor->Delete(id), StatusCode::kOk);
  }
  with_rowq.compactor->Flush();
  baseline.compactor->Flush();

  const Dataset queries = Walk(15, 64, 207);
  std::uint64_t rowq_checked = 0;
  std::uint64_t baseline_checked = 0;
  for (std::size_t q = 0; q < queries.size(); ++q) {
    for (const std::size_t k : {1u, 10u}) {
      service::SearchResponse over_wire;
      ASSERT_TRUE(
          client.Search(MakeSearchRequest(queries, q, k), &over_wire).ok());
      ASSERT_EQ(over_wire.status, StatusCode::kOk);
      const service::SearchResponse expected =
          baseline.service->Search(MakeSearchRequest(queries, q, k));
      ASSERT_EQ(expected.status, StatusCode::kOk);
      EXPECT_TRUE(BitIdentical(over_wire.neighbors, expected.neighbors))
          << "query " << q << " k=" << k
          << ": rowq-on over-wire != rowq-off in-process";
    }
    // Engagement proof travels over the wire: protocol v2 carries the
    // rowq counters, so the client sees the server's index consult the
    // tier — and the baseline's never does. The wire copy must match the
    // in-process profile of the same deterministic search exactly.
    service::SearchResponse profiled;
    ASSERT_TRUE(client
                    .Search(MakeSearchRequest(queries, q, 10, /*profile=*/true),
                            &profiled)
                    .ok());
    const service::SearchResponse in_process = with_rowq.service->Search(
        MakeSearchRequest(queries, q, 10, /*profile=*/true));
    EXPECT_EQ(profiled.profile.rowq_checked, in_process.profile.rowq_checked);
    EXPECT_EQ(profiled.profile.rowq_pruned, in_process.profile.rowq_pruned);
    rowq_checked += profiled.profile.rowq_checked;
    const service::SearchResponse off_profiled = baseline.service->Search(
        MakeSearchRequest(queries, q, 10, /*profile=*/true));
    baseline_checked += off_profiled.profile.rowq_checked;
  }
  EXPECT_GT(rowq_checked, 0u);
  EXPECT_EQ(baseline_checked, 0u);
  client.Close();
  with_rowq.server->Shutdown();
}

// ------------------------------------------------ wire-trace propagation

// Span-for-span equality of two trace records: every name (by content —
// the decoded copy's names live at interned addresses), parent link,
// exact timestamp double, perf counter and work counter must match.
void ExpectSameTraceRecord(const obs::TraceRecord& actual,
                           const obs::TraceRecord& expected) {
  EXPECT_EQ(actual.query_id, expected.query_id);
  EXPECT_EQ(actual.total_ms, expected.total_ms);
  EXPECT_EQ(actual.deadline_expired, expected.deadline_expired);
  ASSERT_EQ(actual.spans.size(), expected.spans.size());
  for (std::size_t i = 0; i < expected.spans.size(); ++i) {
    const obs::TraceSpan& a = actual.spans[i];
    const obs::TraceSpan& e = expected.spans[i];
    EXPECT_STREQ(a.name, e.name) << "span " << i;
    EXPECT_EQ(a.parent, e.parent) << "span " << i;
    EXPECT_EQ(a.start_ms, e.start_ms) << "span " << i;
    EXPECT_EQ(a.end_ms, e.end_ms) << "span " << i;
    EXPECT_EQ(a.perf.cycles, e.perf.cycles) << "span " << i;
    EXPECT_EQ(a.perf.instructions, e.perf.instructions) << "span " << i;
    EXPECT_EQ(a.perf.llc_misses, e.perf.llc_misses) << "span " << i;
    EXPECT_EQ(a.perf.stalled_cycles, e.perf.stalled_cycles) << "span " << i;
    EXPECT_EQ(a.perf.hardware, e.perf.hardware) << "span " << i;
  }
  ASSERT_EQ(actual.counters.size(), expected.counters.size());
  for (std::size_t i = 0; i < expected.counters.size(); ++i) {
    EXPECT_STREQ(actual.counters[i].name, expected.counters[i].name)
        << "counter " << i;
    EXPECT_EQ(actual.counters[i].value, expected.counters[i].value)
        << "counter " << i;
  }
}

// The slow-log record with `query_id` — the in-process ground truth a
// wire copy is judged against (the fixtures below set slow_query_ms so
// low that every traced query lands there).
const obs::TraceRecord* FindRecord(const std::vector<obs::TraceRecord>& dump,
                                   std::uint64_t query_id) {
  for (const obs::TraceRecord& record : dump) {
    if (record.query_id == query_id) {
      return &record;
    }
  }
  return nullptr;
}

TEST(NetServerTest, TracedSearchCarriesTheServersExactTraceOverTheWire) {
  service::ServiceConfig config;
  config.trace.slow_query_ms = 1e-9;  // every traced query → slow log
  ServerFixture fx(config);
  const std::uint16_t port = fx.Start();
  SofaClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", port).ok());

  const Dataset queries = Walk(4, 64, 301);
  for (std::size_t q = 0; q < queries.size(); ++q) {
    service::SearchRequest request = MakeSearchRequest(queries, q, 5);
    request.collect_trace = true;
    request.collect_profile = true;
    service::SearchResponse response;
    std::string trace_text, message;
    WireTrace wire;
    ASSERT_TRUE(
        client.Search(request, &response, &trace_text, &message, &wire).ok());
    ASSERT_EQ(response.status, StatusCode::kOk);

    // The structured trace decoded, and the response handle points at it.
    ASSERT_TRUE(wire.has_server_trace);
    ASSERT_NE(response.trace, nullptr);
    ExpectSameTraceRecord(*response.trace, wire.server);

    // The decoded record IS the server's record: the slow-query log kept
    // the in-process original under the same query_id.
    const std::vector<obs::TraceRecord> dump =
        fx.service->slow_query_log().Dump();
    const obs::TraceRecord* original = FindRecord(dump, wire.server.query_id);
    ASSERT_NE(original, nullptr) << "query_id " << wire.server.query_id;
    ExpectSameTraceRecord(wire.server, *original);

    // The scan spans were executed under hardware counters (or the tsc
    // fallback): at least one span carries a nonzero perf sample.
    bool any_perf = false;
    for (const obs::TraceSpan& span : wire.server.spans) {
      any_perf = any_perf || span.perf.Any();
    }
    EXPECT_TRUE(any_perf) << "no span carried a perf sample";

    // The rendered text the server sent is exactly what the decoded
    // record renders to — blob and text describe the same trace.
    EXPECT_EQ(trace_text, obs::FormatTrace(wire.server));

    // The joined timeline wraps the server record in the seven client
    // spans: client, serialize, send, server_queue, server, receive,
    // decode — with the server spans re-based, structure intact.
    ASSERT_EQ(wire.joined.spans.size(), wire.server.spans.size() + 7);
    EXPECT_STREQ(wire.joined.spans[0].name, "client");
    EXPECT_STREQ(wire.joined.spans[1].name, "serialize");
    EXPECT_STREQ(wire.joined.spans[2].name, "send");
    EXPECT_STREQ(wire.joined.spans[3].name, "server_queue");
    EXPECT_STREQ(wire.joined.spans[4].name, "server");
    EXPECT_STREQ(wire.joined.spans[wire.joined.spans.size() - 2].name,
                 "receive");
    EXPECT_STREQ(wire.joined.spans.back().name, "decode");
    const double base = wire.joined.spans[4].start_ms;
    EXPECT_GE(base, wire.joined.spans[2].end_ms);  // after send_end
    for (std::size_t i = 0; i < wire.server.spans.size(); ++i) {
      const obs::TraceSpan& rebased = wire.joined.spans[5 + i];
      const obs::TraceSpan& span = wire.server.spans[i];
      EXPECT_STREQ(rebased.name, span.name);
      EXPECT_EQ(rebased.start_ms, span.start_ms + base);
      EXPECT_EQ(rebased.end_ms, span.end_ms + base);
      EXPECT_EQ(rebased.parent, span.parent < 0 ? 4 : span.parent + 5);
    }
    // Spans the client timed itself cover the whole round trip in order.
    EXPECT_LE(wire.joined.spans[1].end_ms, wire.joined.spans[2].start_ms +
                                               1e-9);
    EXPECT_LE(wire.joined.spans[2].end_ms, wire.joined.spans[3].start_ms +
                                               1e-9);
    EXPECT_LE(wire.joined.spans[wire.joined.spans.size() - 2].end_ms,
              wire.joined.spans.back().start_ms + 1e-9);
    EXPECT_EQ(wire.joined.total_ms, wire.joined.spans[0].end_ms);
  }
  client.Close();
  fx.server->Shutdown();
}

TEST(NetServerTest, PipelinedTracedSearchesKeepTheirOwnTraces) {
  service::ServiceConfig config;
  config.trace.slow_query_ms = 1e-9;
  ServerFixture fx(config);
  const std::uint16_t port = fx.Start();
  SofaClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", port).ok());

  // Eight traced requests in flight at once, each with a distinct k so a
  // response is attributable to its request by answer size alone.
  const Dataset queries = Walk(8, 64, 302);
  constexpr std::size_t kInFlight = 8;
  std::unordered_map<std::uint64_t, std::size_t> expected_k;
  for (std::size_t i = 0; i < kInFlight; ++i) {
    service::SearchRequest request = MakeSearchRequest(queries, i, i + 1);
    request.collect_trace = true;
    std::uint64_t request_id = 0;
    ASSERT_TRUE(client.SendSearch(request, &request_id).ok());
    expected_k[request_id] = i + 1;
  }

  std::unordered_set<std::uint64_t> seen_query_ids;
  for (std::size_t i = 0; i < kInFlight; ++i) {
    service::SearchResponse response;
    std::string trace_text, message;
    WireTrace wire;
    std::uint64_t request_id = 0;
    ASSERT_TRUE(client
                    .ReceiveSearchResponse(&request_id, &response, &trace_text,
                                           &message, &wire)
                    .ok());
    ASSERT_EQ(response.status, StatusCode::kOk);
    ASSERT_EQ(expected_k.count(request_id), 1u);
    // The response matched its request...
    EXPECT_EQ(response.neighbors.size(), expected_k[request_id]);
    // ...and carries that request's own server trace, not a neighbor's:
    // each decoded record matches the slow-log original with its
    // query_id, and no two responses share one.
    ASSERT_TRUE(wire.has_server_trace);
    EXPECT_TRUE(seen_query_ids.insert(wire.server.query_id).second)
        << "two responses decoded the same trace";
    const std::vector<obs::TraceRecord> dump =
        fx.service->slow_query_log().Dump();
    const obs::TraceRecord* original = FindRecord(dump, wire.server.query_id);
    ASSERT_NE(original, nullptr);
    ExpectSameTraceRecord(wire.server, *original);
    EXPECT_EQ(trace_text, obs::FormatTrace(wire.server));
    // Send-side timing was kept per request_id, so the joined timeline
    // is well-formed even with eight sends before the first receive.
    ASSERT_EQ(wire.joined.spans.size(), wire.server.spans.size() + 7);
    EXPECT_GT(wire.joined.spans[2].end_ms, 0.0);  // a real send window
    expected_k.erase(request_id);
  }
  EXPECT_TRUE(expected_k.empty());
  client.Close();
  fx.server->Shutdown();
}

TEST(NetServerTest, UntracedSearchCarriesNoTraceOverTheWire) {
  // collect_trace off: no blob, no server record, and the joined
  // timeline degrades to the client-only spans.
  service::ServiceConfig config;
  config.trace.slow_query_ms = 1e-9;  // server traces internally...
  ServerFixture fx(config);
  const std::uint16_t port = fx.Start();
  SofaClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", port).ok());

  const Dataset queries = Walk(1, 64, 303);
  service::SearchResponse response;
  std::string trace_text, message;
  WireTrace wire;
  ASSERT_TRUE(client
                  .Search(MakeSearchRequest(queries, 0, 3), &response,
                          &trace_text, &message, &wire)
                  .ok());
  ASSERT_EQ(response.status, StatusCode::kOk);
  // ...but the response carries none of it: the client never opted in.
  EXPECT_FALSE(wire.has_server_trace);
  EXPECT_EQ(response.trace, nullptr);
  EXPECT_TRUE(trace_text.empty());
  EXPECT_EQ(wire.joined.spans.size(), 5u);  // client/serialize/send/recv/decode
  client.Close();
  fx.server->Shutdown();
}

TEST(NetServerTest, PrioritySchedulingIsVisibleOverTheWire) {
  // Stage everything while the dispatcher is paused so scheduling order
  // (not arrival timing) decides completion order.
  service::ServiceConfig config;
  config.start_paused = true;
  config.latency_mode_threshold = 0;  // throughput mode
  config.max_batch = 4;
  config.priority_reserve = 1;
  ServerFixture fx(config);
  const std::uint16_t port = fx.Start();

  // Part 1 — strict priority: a backlog of background queries must not
  // delay interactive ones that arrive after them.
  SofaClient background_client, interactive_client;
  ASSERT_TRUE(background_client.Connect("127.0.0.1", port).ok());
  ASSERT_TRUE(interactive_client.Connect("127.0.0.1", port).ok());
  const Dataset queries = Walk(8, 64, 111);
  constexpr std::size_t kBackground = 60;
  std::uint64_t request_id = 0;
  for (std::size_t i = 0; i < kBackground; ++i) {
    service::SearchRequest request = MakeSearchRequest(queries, i % 8, 3);
    request.priority = service::Priority::kBackground;
    ASSERT_TRUE(background_client.SendSearch(request, &request_id).ok());
  }
  constexpr std::size_t kInteractive = 2;
  for (std::size_t i = 0; i < kInteractive; ++i) {
    service::SearchRequest request = MakeSearchRequest(queries, i, 3);
    request.priority = service::Priority::kInteractive;
    ASSERT_TRUE(interactive_client.SendSearch(request, &request_id).ok());
  }
  ASSERT_TRUE(fx.WaitForFrames(kBackground + kInteractive));
  fx.service->Resume();

  double max_interactive = 0.0, max_background = 0.0;
  for (std::size_t i = 0; i < kInteractive; ++i) {
    service::SearchResponse response;
    ASSERT_TRUE(
        interactive_client.ReceiveSearchResponse(&request_id, &response)
            .ok());
    ASSERT_EQ(response.status, StatusCode::kOk);
    max_interactive = std::max(max_interactive, response.latency_ms);
  }
  for (std::size_t i = 0; i < kBackground; ++i) {
    service::SearchResponse response;
    ASSERT_TRUE(
        background_client.ReceiveSearchResponse(&request_id, &response)
            .ok());
    ASSERT_EQ(response.status, StatusCode::kOk);
    max_background = std::max(max_background, response.latency_ms);
  }
  // The interactive pair ran in the first dispatch round; the background
  // tail waited for ~kBackground/max_batch rounds behind it.
  EXPECT_LT(max_interactive, max_background);

  const service::MetricsSnapshot metrics = fx.service->Metrics();
  EXPECT_EQ(metrics.completed_by_priority[0], kInteractive);
  EXPECT_EQ(metrics.completed_by_priority[2], kBackground);

  // Part 2 — anti-starvation: under an interactive flood, the reserve
  // slot keeps background queries flowing instead of starving them.
  fx.service->Pause();
  constexpr std::size_t kFlood = 40;
  for (std::size_t i = 0; i < kFlood; ++i) {
    service::SearchRequest request = MakeSearchRequest(queries, i % 8, 3);
    request.priority = service::Priority::kInteractive;
    ASSERT_TRUE(interactive_client.SendSearch(request, &request_id).ok());
  }
  constexpr std::size_t kStarved = 4;
  for (std::size_t i = 0; i < kStarved; ++i) {
    service::SearchRequest request = MakeSearchRequest(queries, i, 3);
    request.priority = service::Priority::kBackground;
    ASSERT_TRUE(background_client.SendSearch(request, &request_id).ok());
  }
  ASSERT_TRUE(fx.WaitForFrames(kBackground + kInteractive + kFlood + kStarved));
  fx.service->Resume();
  double starved_max = 0.0, flood_max = 0.0;
  for (std::size_t i = 0; i < kStarved; ++i) {
    service::SearchResponse response;
    ASSERT_TRUE(
        background_client.ReceiveSearchResponse(&request_id, &response)
            .ok());
    ASSERT_EQ(response.status, StatusCode::kOk);
    starved_max = std::max(starved_max, response.latency_ms);
  }
  for (std::size_t i = 0; i < kFlood; ++i) {
    service::SearchResponse response;
    ASSERT_TRUE(
        interactive_client.ReceiveSearchResponse(&request_id, &response)
            .ok());
    ASSERT_EQ(response.status, StatusCode::kOk);
    flood_max = std::max(flood_max, response.latency_ms);
  }
  // One reserved slot per 4-query batch drains all 4 background queries
  // within 4 rounds, while the 40-query interactive flood takes ~13 —
  // without the reserve the background max would exceed the flood max.
  EXPECT_LT(starved_max, flood_max);
  fx.server->Shutdown();
}

TEST(NetServerTest, TenantQuotaShedsOverTheWire) {
  service::ServiceConfig config;
  config.start_paused = true;
  config.tenant_max_in_flight = 1;
  ServerFixture fx(config);
  const std::uint16_t port = fx.Start();
  SofaClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", port).ok());

  const Dataset queries = Walk(3, 64, 5);
  std::uint64_t request_id = 0;
  for (std::size_t i = 0; i < 3; ++i) {
    service::SearchRequest request = MakeSearchRequest(queries, i, 3);
    request.tenant = "acme";
    ASSERT_TRUE(client.SendSearch(request, &request_id).ok());
  }
  ASSERT_TRUE(fx.WaitForFrames(3));
  fx.service->Resume();

  // Request 1 held the only "acme" slot while paused, so 2 and 3 shed
  // with kQuotaExceeded — visible in the response payloads, in order.
  StatusCode statuses[3];
  for (auto& status : statuses) {
    service::SearchResponse response;
    ASSERT_TRUE(client.ReceiveSearchResponse(&request_id, &response).ok());
    status = response.status;
  }
  EXPECT_EQ(statuses[0], StatusCode::kOk);
  EXPECT_EQ(statuses[1], StatusCode::kQuotaExceeded);
  EXPECT_EQ(statuses[2], StatusCode::kQuotaExceeded);
  EXPECT_EQ(fx.service->Metrics().quota_rejected, 2u);
  fx.server->Shutdown();
}

TEST(NetServerTest, AdminAndStatsSurface) {
  ServerFixture fx;
  const std::uint16_t port = fx.Start();
  SofaClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", port).ok());
  const Dataset queries = Walk(1, 64, 7);

  service::SearchResponse before;
  ASSERT_TRUE(client.Search(MakeSearchRequest(queries, 0, 3), &before).ok());
  ASSERT_EQ(before.status, StatusCode::kOk);

  // kSwap republishes the current generation: the version bump must be
  // visible to the very next search on the same connection.
  const StatusOr<std::uint64_t> swapped = client.Admin(AdminOp::kSwap);
  ASSERT_TRUE(swapped.ok()) << swapped.status().ToString();
  EXPECT_EQ(swapped.value(), before.index_version + 1);
  service::SearchResponse after;
  ASSERT_TRUE(client.Search(MakeSearchRequest(queries, 0, 3), &after).ok());
  EXPECT_EQ(after.index_version, before.index_version + 1);
  EXPECT_TRUE(BitIdentical(after.neighbors, before.neighbors));

  // kCompact folds pending mutations (a no-op backlog here).
  EXPECT_TRUE(client.Admin(AdminOp::kCompact).ok());
  // Checkpoint/persist need a WAL / generation store this fixture does
  // not attach; the taxonomy crosses the wire intact.
  EXPECT_EQ(client.Admin(AdminOp::kCheckpoint).code(),
            StatusCode::kUnavailable);
  EXPECT_EQ(client.Admin(AdminOp::kPersist).code(), StatusCode::kUnavailable);

  // STATS: the JSON dump parses and carries the serving-tier instruments.
  const StatusOr<std::string> stats = client.Stats(StatsFormat::kJson);
  ASSERT_TRUE(stats.ok());
  std::vector<obs::InstrumentSnapshot> snapshot;
  std::string parse_error;
  ASSERT_TRUE(obs::ParseStatsJson(stats.value(), &snapshot, &parse_error))
      << parse_error;
  const bool has_net_instruments =
      std::any_of(snapshot.begin(), snapshot.end(),
                  [](const obs::InstrumentSnapshot& instrument) {
                    return instrument.name.rfind("sofa_net_", 0) == 0;
                  });
  EXPECT_TRUE(has_net_instruments);
  EXPECT_FALSE(client.Stats(StatsFormat::kPrometheus).value().empty());
  EXPECT_FALSE(client.Stats(StatsFormat::kPretty).value().empty());
  fx.server->Shutdown();
}

TEST(NetServerTest, GracefulDrainCompletesInFlightRequests) {
  service::ServiceConfig config;
  config.start_paused = true;  // holds the request in flight past drain
  ServerFixture fx(config);
  const std::uint16_t port = fx.Start();
  SofaClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", port).ok());

  const Dataset queries = Walk(1, 64, 13);
  std::uint64_t request_id = 0;
  ASSERT_TRUE(client.SendSearch(MakeSearchRequest(queries, 0, 5), &request_id).ok());
  ASSERT_TRUE(fx.WaitForFrames(1));

  // Drain starts with the query still queued; it must complete and its
  // response flush before the connection closes.
  fx.server->RequestDrain();
  fx.service->Resume();
  service::SearchResponse response;
  ASSERT_TRUE(client.ReceiveSearchResponse(&request_id, &response).ok());
  ASSERT_EQ(response.status, StatusCode::kOk);
  EXPECT_TRUE(SameDistances(response.neighbors,
                            BruteForceKnn(fx.base, queries.row(0), 5)));

  // The drained connection then closes from the server side.
  service::SearchResponse eof_probe;
  EXPECT_FALSE(client.ReceiveSearchResponse(&request_id, &eof_probe).ok());
  for (int spin = 0; spin < 2000 && !fx.server->Drained(); ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_TRUE(fx.server->Drained());
  fx.server->Shutdown();
  EXPECT_EQ(fx.server->Stats().active_connections, 0u);
}

TEST(NetServerTest, ClientDisconnectMidQueryLeavesTheServerServing) {
  service::ServiceConfig config;
  config.start_paused = true;
  ServerFixture fx(config);
  const std::uint16_t port = fx.Start();

  const Dataset queries = Walk(2, 64, 17);
  {
    SofaClient doomed;
    ASSERT_TRUE(doomed.Connect("127.0.0.1", port).ok());
    std::uint64_t request_id = 0;
    ASSERT_TRUE(
        doomed.SendSearch(MakeSearchRequest(queries, 0, 5), &request_id).ok());
    ASSERT_TRUE(fx.WaitForFrames(1));
    doomed.Close();  // vanish with the query still in flight
  }
  fx.service->Resume();

  // The server must absorb the dead connection and keep serving.
  SofaClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", port).ok());
  service::SearchResponse response;
  ASSERT_TRUE(client.Search(MakeSearchRequest(queries, 1, 5), &response).ok());
  ASSERT_EQ(response.status, StatusCode::kOk);
  EXPECT_TRUE(SameDistances(response.neighbors,
                            BruteForceKnn(fx.base, queries.row(1), 5)));
  fx.server->Shutdown();
}

// Raw-socket helpers for byte-level misbehavior a well-formed client
// cannot produce.
int RawConnect(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return -1;
  }
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

bool RawSend(int fd, const std::vector<std::uint8_t>& bytes) {
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n = ::send(fd, bytes.data() + sent, bytes.size() - sent, 0);
    if (n <= 0) {
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

// Reads until EOF (or error); returns the number of bytes seen.
std::size_t RawDrain(int fd) {
  std::uint8_t buffer[4096];
  std::size_t total = 0;
  for (;;) {
    const ssize_t n = ::recv(fd, buffer, sizeof(buffer), 0);
    if (n <= 0) {
      return total;
    }
    total += static_cast<std::size_t>(n);
  }
}

TEST(NetServerTest, FramingErrorsCloseTheConnectionTypedErrorsDoNot) {
  ServerFixture fx;
  const std::uint16_t port = fx.Start();

  // Garbage header → the server closes the byte stream without replying.
  {
    const int fd = RawConnect(port);
    ASSERT_GE(fd, 0);
    ASSERT_TRUE(RawSend(fd, std::vector<std::uint8_t>(kHeaderSize, 0x5A)));
    EXPECT_EQ(RawDrain(fd), 0u);
    ::close(fd);
  }
  // Valid framing, corrupt CRC → same refusal.
  {
    const int fd = RawConnect(port);
    ASSERT_GE(fd, 0);
    std::vector<std::uint8_t> frame = EncodeFrame(
        static_cast<std::uint8_t>(MessageType::kDelete), 9,
        EncodeDeleteRequest(1));
    frame.back() ^= 0x01;  // payload no longer matches the header CRC
    ASSERT_TRUE(RawSend(fd, frame));
    EXPECT_EQ(RawDrain(fd), 0u);
    ::close(fd);
  }
  // Well-framed but malformed payload → a typed kProtocolError response
  // on a connection that stays open; an unknown type answers the same
  // way. Prove liveness by following up with a valid DELETE.
  {
    SofaClient client;
    ASSERT_TRUE(client.Connect("127.0.0.1", port).ok());
    EXPECT_GE(fx.server->Stats().protocol_errors, 2u);
    service::SearchResponse response;
    std::uint64_t request_id = 0;
    // A SEARCH whose payload is one stray byte: SofaClient cannot send
    // that, so splice it through a raw socket instead.
    const int fd = RawConnect(port);
    ASSERT_GE(fd, 0);
    ASSERT_TRUE(RawSend(fd, EncodeFrame(
        static_cast<std::uint8_t>(MessageType::kSearch), 77, {0x01})));
    std::uint8_t header_bytes[kHeaderSize];
    std::size_t got = 0;
    while (got < kHeaderSize) {
      const ssize_t n = ::recv(fd, header_bytes + got, kHeaderSize - got, 0);
      ASSERT_GT(n, 0);
      got += static_cast<std::size_t>(n);
    }
    FrameHeader header;
    ASSERT_TRUE(DecodeHeader(header_bytes, kHeaderSize, &header).ok());
    EXPECT_EQ(header.type, static_cast<std::uint8_t>(MessageType::kSearch) |
                               kResponseBit);
    EXPECT_EQ(header.request_id, 77u);
    std::vector<std::uint8_t> payload(header.payload_size);
    got = 0;
    while (got < payload.size()) {
      const ssize_t n =
          ::recv(fd, payload.data() + got, payload.size() - got, 0);
      ASSERT_GT(n, 0);
      got += static_cast<std::size_t>(n);
    }
    std::string message, trace;
    ASSERT_TRUE(DecodeSearchResponse(payload.data(), payload.size(),
                                     &response, &message, &trace)
                    .ok());
    EXPECT_EQ(response.status, StatusCode::kProtocolError);
    ::close(fd);

    // The well-behaved connection was never affected.
    EXPECT_EQ(client.Delete(1).code(), StatusCode::kOk);
    (void)request_id;
  }
  fx.server->Shutdown();
}

TEST(NetServerTest, DeadlinesExpireOverTheWire) {
  service::ServiceConfig config;
  config.start_paused = true;
  ServerFixture fx(config);
  const std::uint16_t port = fx.Start();
  SofaClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", port).ok());
  const Dataset queries = Walk(1, 64, 23);
  service::SearchRequest request = MakeSearchRequest(queries, 0, 3);
  request.deadline_ms = 0.01;  // expires while the dispatcher is paused
  std::uint64_t request_id = 0;
  ASSERT_TRUE(client.SendSearch(request, &request_id).ok());
  ASSERT_TRUE(fx.WaitForFrames(1));
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  fx.service->Resume();
  service::SearchResponse response;
  ASSERT_TRUE(client.ReceiveSearchResponse(&request_id, &response).ok());
  EXPECT_EQ(response.status, StatusCode::kDeadlineExpired);
  fx.server->Shutdown();
}

}  // namespace
}  // namespace net
}  // namespace sofa
