// Tests for the two baselines: the UCR Suite-P parallel scan and the
// FAISS-style IndexFlatL2 — plus cross-engine agreement with the tree
// index.

#include <cmath>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "flat/index_flat_l2.h"
#include "index/tree_index.h"
#include "scan/ucr_scan.h"
#include "sax/sax_scheme.h"
#include "sfa/mcb.h"
#include "test_data.h"
#include "util/thread_pool.h"

namespace sofa {
namespace {

using testing_data::BruteForceKnn;
using testing_data::Noise;
using testing_data::SameDistances;
using testing_data::Walk;

// ---------------------------------------------------------------- scan

TEST(UcrScanTest, OneNnMatchesBruteForce) {
  ThreadPool pool(4);
  const Dataset data = Noise(3000, 128, 1);
  const Dataset queries = Noise(10, 128, 2);
  scan::UcrScan scanner(&data, &pool);
  for (std::size_t q = 0; q < queries.size(); ++q) {
    const auto expected = BruteForceKnn(data, queries.row(q), 1);
    const Neighbor actual = scanner.Search1Nn(queries.row(q));
    ASSERT_TRUE(SameDistances({actual}, expected)) << "query " << q;
  }
}

TEST(UcrScanTest, KnnMatchesBruteForce) {
  ThreadPool pool(4);
  const Dataset data = Walk(2500, 96, 3);
  const Dataset queries = Walk(8, 96, 4);
  scan::UcrScan scanner(&data, &pool);
  for (const std::size_t k : {1u, 3u, 10u, 50u}) {
    for (std::size_t q = 0; q < queries.size(); ++q) {
      const auto expected = BruteForceKnn(data, queries.row(q), k);
      const auto actual = scanner.SearchKnn(queries.row(q), k);
      ASSERT_TRUE(SameDistances(actual, expected))
          << "k=" << k << " query " << q;
    }
  }
}

TEST(UcrScanTest, ThreadCountsAgree) {
  const Dataset data = Noise(3000, 128, 5);
  const Dataset queries = Noise(5, 128, 6);
  std::vector<float> reference;
  for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
    ThreadPool pool(threads);
    scan::UcrScan scanner(&data, &pool);
    std::vector<float> distances;
    for (std::size_t q = 0; q < queries.size(); ++q) {
      for (const Neighbor& nb : scanner.SearchKnn(queries.row(q), 7)) {
        distances.push_back(nb.distance);
      }
    }
    if (reference.empty()) {
      reference = distances;
    } else {
      ASSERT_EQ(distances.size(), reference.size());
      for (std::size_t i = 0; i < distances.size(); ++i) {
        ASSERT_NEAR(distances[i], reference[i], 1e-4f);
      }
    }
  }
}

TEST(UcrScanTest, MemberQueryFindsItself) {
  ThreadPool pool(2);
  const Dataset data = Noise(500, 64, 7);
  scan::UcrScan scanner(&data, &pool);
  const Neighbor nn = scanner.Search1Nn(data.row(123));
  EXPECT_EQ(nn.id, 123u);
  EXPECT_NEAR(nn.distance, 0.0f, 1e-4f);
}

TEST(UcrScanTest, EmptyAndClampedK) {
  ThreadPool pool(2);
  Dataset empty(64);
  scan::UcrScan empty_scanner(&empty, &pool);
  std::vector<float> query(64, 0.0f);
  EXPECT_TRUE(empty_scanner.SearchKnn(query.data(), 5).empty());

  const Dataset small = Noise(10, 64, 8);
  scan::UcrScan scanner(&small, &pool);
  EXPECT_EQ(scanner.SearchKnn(small.row(0), 100).size(), 10u);
  EXPECT_TRUE(scanner.SearchKnn(small.row(0), 0).empty());
}

// ---------------------------------------------------------------- flat

TEST(IndexFlatL2Test, SingleQueryMatchesBruteForce) {
  ThreadPool pool(4);
  const Dataset data = Noise(3000, 128, 9);
  const Dataset queries = Noise(10, 128, 10);
  flat::IndexFlatL2 flat_index(&data, &pool);
  for (std::size_t q = 0; q < queries.size(); ++q) {
    const auto expected = BruteForceKnn(data, queries.row(q), 5);
    const auto actual = flat_index.SearchKnn(queries.row(q), 5);
    ASSERT_TRUE(SameDistances(actual, expected)) << "query " << q;
  }
}

TEST(IndexFlatL2Test, OneNnFastPathMatchesKnn) {
  ThreadPool pool(2);
  const Dataset data = Walk(2000, 96, 11);
  const Dataset queries = Walk(10, 96, 12);
  flat::IndexFlatL2 flat_index(&data, &pool);
  for (std::size_t q = 0; q < queries.size(); ++q) {
    const Neighbor fast = flat_index.Search1Nn(queries.row(q));
    const auto via_knn = flat_index.SearchKnn(queries.row(q), 1);
    ASSERT_EQ(via_knn.size(), 1u);
    ASSERT_NEAR(fast.distance, via_knn[0].distance, 1e-5f);
  }
}

TEST(IndexFlatL2Test, BatchEqualsIndividualQueries) {
  ThreadPool pool(4);
  const Dataset data = Noise(2000, 128, 13);
  const Dataset queries = Noise(16, 128, 14);
  flat::IndexFlatL2 flat_index(&data, &pool);
  const auto batch = flat_index.SearchBatch(queries, 5);
  ASSERT_EQ(batch.size(), queries.size());
  for (std::size_t q = 0; q < queries.size(); ++q) {
    const auto individual = flat_index.SearchKnn(queries.row(q), 5);
    ASSERT_EQ(batch[q].size(), individual.size());
    for (std::size_t i = 0; i < individual.size(); ++i) {
      ASSERT_EQ(batch[q][i].id, individual[i].id);
      ASSERT_EQ(batch[q][i].distance, individual[i].distance);
    }
  }
}

TEST(IndexFlatL2Test, DistancesNonNegativeAndSorted) {
  ThreadPool pool(2);
  const Dataset data = Noise(1000, 64, 15);
  flat::IndexFlatL2 flat_index(&data, &pool);
  const auto result = flat_index.SearchKnn(data.row(42), 20);
  ASSERT_EQ(result.size(), 20u);
  EXPECT_NEAR(result[0].distance, 0.0f, 1e-2f);  // the member itself
  for (std::size_t i = 1; i < result.size(); ++i) {
    ASSERT_GE(result[i].distance, result[i - 1].distance);
    ASSERT_GE(result[i].distance, 0.0f);
  }
}

TEST(IndexFlatL2Test, BuildSecondsRecorded) {
  ThreadPool pool(2);
  const Dataset data = Noise(500, 64, 16);
  flat::IndexFlatL2 flat_index(&data, &pool);
  EXPECT_GE(flat_index.build_seconds(), 0.0);
}

// ------------------------------------------------------- cross-engine

TEST(CrossEngineTest, AllEnginesAgreeOnOneNn) {
  ThreadPool pool(4);
  const std::size_t n = 128;
  const Dataset data = Noise(3000, n, 17);
  const Dataset queries = Noise(10, n, 18);

  sfa::SfaConfig sfa_config;
  sfa_config.word_length = 16;
  sfa_config.alphabet = 256;
  sfa_config.sampling_ratio = 0.2;
  const auto sfa_scheme = sfa::TrainSfa(data, sfa_config, &pool);
  sax::SaxScheme sax_scheme(n, 16, 256);

  index::TreeIndex sofa_index(&data, sfa_scheme.get(), index::IndexConfig{},
                              &pool);
  index::TreeIndex messi_index(&data, &sax_scheme, index::IndexConfig{},
                               &pool);
  scan::UcrScan scanner(&data, &pool);
  flat::IndexFlatL2 flat_index(&data, &pool);

  for (std::size_t q = 0; q < queries.size(); ++q) {
    const float d_sofa = sofa_index.Search1Nn(queries.row(q)).distance;
    const float d_messi = messi_index.Search1Nn(queries.row(q)).distance;
    const float d_scan = scanner.Search1Nn(queries.row(q)).distance;
    const float d_flat = flat_index.Search1Nn(queries.row(q)).distance;
    ASSERT_NEAR(d_sofa, d_scan, 2e-3f * (1.0f + d_scan));
    ASSERT_NEAR(d_messi, d_scan, 2e-3f * (1.0f + d_scan));
    ASSERT_NEAR(d_flat, d_scan, 2e-3f * (1.0f + d_scan));
  }
}

}  // namespace
}  // namespace sofa
