// Tests for the SFA summarization: MCB training (sampling, variance
// selection, bin learning), the SFA transform, the lower-bounding
// invariant across all ablation variants, and the TLB metric.

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "core/dataset.h"
#include "core/distance.h"
#include "core/znorm.h"
#include "quant/lbd.h"
#include "sax/sax_scheme.h"
#include "sfa/mcb.h"
#include "sfa/sfa_scheme.h"
#include "sfa/tlb.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace sofa {
namespace sfa {
namespace {

// A z-normalized random-walk dataset (low frequency energy).
Dataset RandomWalkDataset(std::size_t count, std::size_t length,
                          std::uint64_t seed) {
  Rng rng(seed);
  Dataset ds(length);
  std::vector<float> row(length);
  for (std::size_t i = 0; i < count; ++i) {
    double level = 0.0;
    for (auto& x : row) {
      level += rng.Gaussian();
      x = static_cast<float>(level);
    }
    ZNormalize(row.data(), length);
    ds.Append(row.data());
  }
  return ds;
}

// A z-normalized white-noise dataset (flat spectrum, high-frequency energy).
Dataset NoiseDataset(std::size_t count, std::size_t length,
                     std::uint64_t seed) {
  Rng rng(seed);
  Dataset ds(length);
  std::vector<float> row(length);
  for (std::size_t i = 0; i < count; ++i) {
    for (auto& x : row) {
      x = static_cast<float>(rng.Gaussian());
    }
    ZNormalize(row.data(), length);
    ds.Append(row.data());
  }
  return ds;
}

SfaConfig SmallConfig() {
  SfaConfig config;
  config.word_length = 8;
  config.alphabet = 16;
  config.candidate_coefficients = 16;
  config.sampling_ratio = 1.0;  // use everything for the small test sets
  return config;
}

// ---------------------------------------------------------------- training

TEST(McbTest, ConfigNames) {
  SfaConfig config;
  config.binning = quant::BinningMethod::kEquiWidth;
  config.variance_selection = true;
  EXPECT_EQ(SfaConfigName(config), "SFA EW +VAR");
  config.variance_selection = false;
  EXPECT_EQ(SfaConfigName(config), "SFA EW");
  config.binning = quant::BinningMethod::kEquiDepth;
  EXPECT_EQ(SfaConfigName(config), "SFA ED");
  config.variance_selection = true;
  EXPECT_EQ(SfaConfigName(config), "SFA ED +VAR");
}

TEST(McbTest, TrainedSchemeHasRequestedShape) {
  const auto data = RandomWalkDataset(500, 128, 1);
  const auto scheme = TrainSfa(data, SmallConfig());
  EXPECT_EQ(scheme->word_length(), 8u);
  EXPECT_EQ(scheme->alphabet(), 16u);
  EXPECT_EQ(scheme->series_length(), 128u);
  EXPECT_EQ(scheme->selected_values().size(), 8u);
}

TEST(McbTest, SelectionIsDeterministicGivenSeed) {
  const auto data = RandomWalkDataset(300, 96, 2);
  const auto a = TrainSfa(data, SmallConfig());
  const auto b = TrainSfa(data, SmallConfig());
  EXPECT_EQ(a->selected_values().size(), b->selected_values().size());
  for (std::size_t i = 0; i < a->selected_values().size(); ++i) {
    EXPECT_TRUE(a->selected_values()[i] == b->selected_values()[i]);
  }
}

TEST(McbTest, ParallelTrainingMatchesSerial) {
  const auto data = RandomWalkDataset(400, 128, 3);
  ThreadPool pool(4);
  const auto serial = TrainSfa(data, SmallConfig());
  const auto parallel = TrainSfa(data, SmallConfig(), &pool);
  ASSERT_EQ(serial->selected_values().size(),
            parallel->selected_values().size());
  for (std::size_t i = 0; i < serial->selected_values().size(); ++i) {
    EXPECT_TRUE(serial->selected_values()[i] == parallel->selected_values()[i]);
  }
  // Identical bins too.
  for (std::size_t d = 0; d < serial->word_length(); ++d) {
    for (std::uint32_t s = 0; s < serial->alphabet(); ++s) {
      ASSERT_EQ(
          serial->table().lower_bounds()[d * serial->alphabet() + s],
          parallel->table().lower_bounds()[d * parallel->alphabet() + s]);
    }
  }
}

TEST(McbTest, VarianceSelectionPrefersLowFrequenciesOnRandomWalk) {
  // Random walks concentrate variance in the lowest coefficients.
  const auto data = RandomWalkDataset(500, 256, 4);
  SfaConfig config = SmallConfig();
  config.candidate_coefficients = 32;
  const auto scheme = TrainSfa(data, config);
  EXPECT_LT(scheme->MeanSelectedCoefficientIndex(), 8.0);
}

TEST(McbTest, VarianceSelectionReachesHighFrequenciesOnNoise) {
  // White noise spreads variance evenly: the mean selected index on noise
  // must exceed the random-walk one (the Fig. 13 mechanism).
  SfaConfig config = SmallConfig();
  config.candidate_coefficients = 32;
  const auto walk = TrainSfa(RandomWalkDataset(400, 256, 5), config);
  const auto noise = TrainSfa(NoiseDataset(400, 256, 6), config);
  EXPECT_GT(noise->MeanSelectedCoefficientIndex(),
            walk->MeanSelectedCoefficientIndex());
}

TEST(McbTest, LowPassModeTakesFirstValuesInOrder) {
  const auto data = NoiseDataset(300, 128, 7);
  SfaConfig config = SmallConfig();
  config.variance_selection = false;
  const auto scheme = TrainSfa(data, config);
  const auto& sel = scheme->selected_values();
  // Expect (1,re),(1,im),(2,re),(2,im),(3,re),(3,im),(4,re),(4,im).
  ASSERT_EQ(sel.size(), 8u);
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_EQ(sel[i].coeff, 1 + i / 2);
    EXPECT_EQ(sel[i].imag, i % 2 == 1);
  }
}

TEST(McbTest, SelectedValuesAreDistinct) {
  const auto data = NoiseDataset(300, 96, 8);
  SfaConfig config = SmallConfig();
  config.word_length = 16;
  const auto scheme = TrainSfa(data, config);
  std::set<std::pair<int, int>> seen;
  for (const auto ref : scheme->selected_values()) {
    seen.insert({ref.coeff, ref.imag ? 1 : 0});
  }
  EXPECT_EQ(seen.size(), 16u);
}

TEST(McbTest, VarianceOrderIsDescending) {
  // The trainer orders selected values by descending sample variance so
  // early abandoning touches the widest-spread values first. Verify via the
  // learned equi-width bin spans, which are proportional to value range.
  const auto data = NoiseDataset(500, 256, 9);
  SfaConfig config = SmallConfig();
  config.word_length = 8;
  config.binning = quant::BinningMethod::kEquiWidth;
  const auto scheme = TrainSfa(data, config);
  // Compute per-dimension total finite span from the table.
  std::vector<double> spans;
  const std::size_t alphabet = scheme->alphabet();
  for (std::size_t d = 0; d < scheme->word_length(); ++d) {
    const float lo = scheme->table().lower_bounds()[d * alphabet + 1];
    const float hi =
        scheme->table().upper_bounds()[d * alphabet + alphabet - 2];
    spans.push_back(hi - lo);
  }
  // Spans need not be strictly sorted (variance != range), but the first
  // must not be dramatically smaller than the last.
  EXPECT_GT(spans.front(), 0.5 * spans.back());
}

TEST(McbTest, SmallDatasetUsesAllSeries) {
  // min_sample larger than the dataset: trainer must not crash and must
  // use every series.
  const auto data = RandomWalkDataset(50, 64, 10);
  SfaConfig config = SmallConfig();
  config.sampling_ratio = 0.001;
  config.min_sample = 256;
  const auto scheme = TrainSfa(data, config);
  EXPECT_EQ(scheme->word_length(), 8u);
}

// ---------------------------------------------------------------- scheme

TEST(SfaSchemeTest, ProjectExtractsSelectedCoefficients) {
  const auto data = NoiseDataset(200, 64, 11);
  const auto scheme = TrainSfa(data, SmallConfig());
  // Manually transform one series and compare.
  dft::RealDftPlan plan(64);
  std::vector<std::complex<float>> coeffs(plan.num_coefficients());
  plan.Transform(data.row(0), coeffs.data());
  std::vector<float> values(scheme->word_length());
  scheme->Project(data.row(0), values.data());
  for (std::size_t d = 0; d < scheme->word_length(); ++d) {
    const ValueRef ref = scheme->selected_values()[d];
    const float expected =
        ref.imag ? coeffs[ref.coeff].imag() : coeffs[ref.coeff].real();
    ASSERT_NEAR(values[d], expected, 1e-4f);
  }
}

TEST(SfaSchemeTest, WeightsAreParsevalFactors) {
  const auto data = NoiseDataset(200, 64, 12);
  const auto scheme = TrainSfa(data, SmallConfig());
  for (std::size_t d = 0; d < scheme->word_length(); ++d) {
    const ValueRef ref = scheme->selected_values()[d];
    const float expected =
        scheme->dft_plan().IsUnpaired(ref.coeff) ? 1.0f : 2.0f;
    EXPECT_EQ(scheme->weights()[d], expected);
  }
}

TEST(SfaSchemeTest, MeanSelectedCoefficientIndex) {
  SfaSpec spec;
  spec.series_length = 64;
  spec.alphabet = 4;
  spec.selected = {{1, false}, {3, false}, {5, true}, {7, true}};
  spec.edges.assign(4, {-1.0f, 0.0f, 1.0f});
  SfaScheme scheme(spec);
  EXPECT_DOUBLE_EQ(scheme.MeanSelectedCoefficientIndex(), 4.0);
}

TEST(SfaSchemeTest, RejectsImaginaryPartOfNyquist) {
  SfaSpec spec;
  spec.series_length = 64;
  spec.alphabet = 4;
  spec.selected = {{32, true}};  // Nyquist imaginary — identically zero
  spec.edges.assign(1, {-1.0f, 0.0f, 1.0f});
  EXPECT_DEATH(SfaScheme scheme(spec), "identically zero");
}

// The central invariant, swept over every paper ablation variant
// (binning × variance selection) and series lengths incl. non-pow2.
struct SfaVariant {
  quant::BinningMethod binning;
  bool variance;
  std::size_t series_length;
};

class SfaLowerBoundTest : public ::testing::TestWithParam<SfaVariant> {};

TEST_P(SfaLowerBoundTest, SfaLbdLowerBoundsEuclidean) {
  const SfaVariant variant = GetParam();
  const std::size_t n = variant.series_length;
  // Train on one distribution, evaluate LBD vs ED on *fresh* series — the
  // bound must hold for out-of-sample data too (values beyond the learned
  // range fall into the unbounded outer bins).
  const auto train = NoiseDataset(300, n, 13);
  SfaConfig config;
  config.word_length = 16;
  config.alphabet = 16;
  config.binning = variant.binning;
  config.variance_selection = variant.variance;
  config.sampling_ratio = 1.0;
  const auto scheme = TrainSfa(train, config);

  Rng rng(14);
  auto scratch = scheme->NewScratch();
  std::vector<float> projection(16);
  std::vector<float> values(16);
  std::vector<std::uint8_t> word(16);
  for (int trial = 0; trial < 200; ++trial) {
    // Mix of in-distribution and wilder out-of-distribution series.
    const double scale = (trial % 3 == 0) ? 4.0 : 1.0;
    std::vector<float> query(n);
    std::vector<float> candidate(n);
    for (std::size_t t = 0; t < n; ++t) {
      query[t] = static_cast<float>(rng.Gaussian(0.0, scale));
      candidate[t] = static_cast<float>(rng.Gaussian(0.0, scale));
    }
    ZNormalize(query.data(), n);
    ZNormalize(candidate.data(), n);
    scheme->Project(query.data(), projection.data(), scratch.get());
    scheme->Symbolize(candidate.data(), word.data(), scratch.get(),
                      values.data());
    const float lbd_sq = quant::LbdSquared(scheme->table(), scheme->weights(),
                                           projection.data(), word.data());
    const float ed_sq = SquaredEuclidean(query.data(), candidate.data(), n);
    ASSERT_LE(lbd_sq, ed_sq * (1.0f + 1e-4f) + 1e-4f)
        << "variant " << SfaConfigName(config) << " n=" << n;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Variants, SfaLowerBoundTest,
    ::testing::Values(
        SfaVariant{quant::BinningMethod::kEquiWidth, true, 128},
        SfaVariant{quant::BinningMethod::kEquiWidth, false, 128},
        SfaVariant{quant::BinningMethod::kEquiDepth, true, 128},
        SfaVariant{quant::BinningMethod::kEquiDepth, false, 128},
        SfaVariant{quant::BinningMethod::kEquiWidth, true, 96},
        SfaVariant{quant::BinningMethod::kEquiDepth, true, 100},
        SfaVariant{quant::BinningMethod::kEquiWidth, true, 256}));

// ---------------------------------------------------------------- TLB

TEST(TlbTest, TlbWithinUnitInterval) {
  const auto data = NoiseDataset(300, 128, 15);
  const auto queries = NoiseDataset(20, 128, 16);
  const auto scheme = TrainSfa(data, SmallConfig());
  const double tlb = MeanTlb(*scheme, data, queries);
  EXPECT_GT(tlb, 0.0);
  EXPECT_LE(tlb, 1.0);
}

TEST(TlbTest, LargerAlphabetImprovesTlb) {
  // The Table V/VI trend: TLB grows with alphabet size.
  const auto data = NoiseDataset(400, 128, 17);
  const auto queries = NoiseDataset(20, 128, 18);
  SfaConfig small = SmallConfig();
  small.alphabet = 4;
  SfaConfig large = SmallConfig();
  large.alphabet = 256;
  const double tlb_small = MeanTlb(*TrainSfa(data, small), data, queries);
  const double tlb_large = MeanTlb(*TrainSfa(data, large), data, queries);
  EXPECT_GT(tlb_large, tlb_small);
}

TEST(TlbTest, SfaBeatsSaxOnHighFrequencyData) {
  // The paper's headline ablation: on high-frequency data the SFA lower
  // bound is tighter than the iSAX one.
  const std::size_t n = 256;
  const auto data = NoiseDataset(500, n, 19);
  const auto queries = NoiseDataset(20, n, 20);
  SfaConfig config;
  config.word_length = 16;
  config.alphabet = 256;
  config.sampling_ratio = 1.0;
  const auto sfa = TrainSfa(data, config);
  sax::SaxScheme sax_scheme(n, 16, 256);
  const double tlb_sfa = MeanTlb(*sfa, data, queries);
  const double tlb_sax = MeanTlb(sax_scheme, data, queries);
  EXPECT_GT(tlb_sfa, tlb_sax);
}

TEST(TlbTest, DeterministicGivenSeed) {
  const auto data = NoiseDataset(200, 96, 21);
  const auto queries = NoiseDataset(10, 96, 22);
  const auto scheme = TrainSfa(data, SmallConfig());
  TlbOptions options;
  options.seed = 99;
  EXPECT_DOUBLE_EQ(MeanTlb(*scheme, data, queries, options),
                   MeanTlb(*scheme, data, queries, options));
}

}  // namespace
}  // namespace sfa
}  // namespace sofa
