// Tests for the concurrent query-serving subsystem: exactness under
// concurrency (service answers == sequential engine answers), scheduling
// modes, admission control (saturation + rejection), deadline expiry,
// index hot-swap during in-flight traffic, the serialization → hot-swap
// path, and serving-metrics accounting.

#include <atomic>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "index/query_engine.h"
#include "index/serialization.h"
#include "index/tree_index.h"
#include "sax/sax_scheme.h"
#include "service/executor.h"
#include "service/search_service.h"
#include "service/snapshot.h"
#include "sfa/mcb.h"
#include "test_data.h"
#include "util/thread_pool.h"

namespace sofa {
namespace service {
namespace {

using testing_data::BruteForceKnn;
using testing_data::Noise;
using testing_data::SameDistances;
using testing_data::Walk;

std::vector<float> QueryVector(const Dataset& queries, std::size_t q) {
  return std::vector<float>(queries.row(q), queries.row(q) + queries.length());
}

// A built index with everything it depends on.
struct Engine {
  ThreadPool pool;
  Dataset data;
  std::unique_ptr<quant::SummaryScheme> scheme;
  std::unique_ptr<index::TreeIndex> tree;

  Engine(std::size_t count, std::size_t length, std::uint64_t seed,
         std::size_t threads = 4, bool sax = false)
      : pool(threads), data(Walk(count, length, seed)) {
    if (sax) {
      scheme = std::make_unique<sax::SaxScheme>(length, 16, 256);
    } else {
      sfa::SfaConfig config;
      config.word_length = 16;
      config.alphabet = 256;
      config.sampling_ratio = 0.2;
      scheme = sfa::TrainSfa(data, config, &pool);
    }
    index::IndexConfig config;
    config.leaf_capacity = 100;
    tree = std::make_unique<index::TreeIndex>(&data, scheme.get(), config,
                                              &pool);
  }
};

// ------------------------------------------------------------- exactness

TEST(SearchServiceTest, SingleQueriesMatchSequentialSearch) {
  Engine engine(2000, 96, 41);
  SearchService service(WrapIndex(engine.tree.get()), &engine.pool);
  const Dataset queries = Walk(15, 96, 42);
  const index::QueryEngine sequential(engine.tree.get());
  for (std::size_t q = 0; q < queries.size(); ++q) {
    SearchRequest request;
    request.query = QueryVector(queries, q);
    request.k = 10;
    const SearchResponse response = service.Search(std::move(request));
    ASSERT_EQ(response.status, RequestStatus::kOk);
    const auto expected = sequential.Search(queries.row(q), 10);
    EXPECT_TRUE(SameDistances(response.neighbors, expected)) << "query " << q;
    EXPECT_GT(response.latency_ms, 0.0);
    EXPECT_EQ(response.index_version, 1u);
  }
}

TEST(SearchServiceTest, ConcurrentClientsStayExact) {
  Engine engine(2000, 96, 43);
  ServiceConfig config;
  config.latency_mode_threshold = 2;  // mixed-mode under load
  config.max_batch = 8;
  SearchService service(WrapIndex(engine.tree.get()), &engine.pool, config);
  const Dataset queries = Walk(24, 96, 44);

  constexpr std::size_t kClients = 3;
  std::vector<std::thread> clients;
  std::atomic<std::size_t> failures(0);
  for (std::size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (std::size_t q = c; q < queries.size(); q += kClients) {
        SearchRequest request;
        request.query = QueryVector(queries, q);
        request.k = 5;
        const SearchResponse response = service.Search(std::move(request));
        const auto expected = BruteForceKnn(engine.data, queries.row(q), 5);
        if (response.status != RequestStatus::kOk ||
            !SameDistances(response.neighbors, expected)) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (auto& client : clients) {
    client.join();
  }
  EXPECT_EQ(failures.load(), 0u);
  const MetricsSnapshot metrics = service.Metrics();
  EXPECT_EQ(metrics.completed, queries.size());
}

TEST(SearchServiceTest, ThroughputModeMatchesSequential) {
  Engine engine(2000, 96, 45);
  ServiceConfig config;
  config.latency_mode_threshold = 0;  // force cross-query mode
  config.start_paused = true;         // stage a backlog → real batches
  SearchService service(WrapIndex(engine.tree.get()), &engine.pool, config);
  const Dataset queries = Walk(20, 96, 46);

  std::vector<std::future<SearchResponse>> futures;
  for (std::size_t q = 0; q < queries.size(); ++q) {
    SearchRequest request;
    request.query = QueryVector(queries, q);
    request.k = 10;
    futures.push_back(service.Submit(std::move(request)));
  }
  EXPECT_EQ(service.PendingCount(), queries.size());
  service.Resume();
  const index::QueryEngine sequential(engine.tree.get());
  for (std::size_t q = 0; q < queries.size(); ++q) {
    const SearchResponse response = futures[q].get();
    ASSERT_EQ(response.status, RequestStatus::kOk);
    const auto expected = sequential.Search(queries.row(q), 10);
    EXPECT_TRUE(SameDistances(response.neighbors, expected)) << "query " << q;
  }
  const MetricsSnapshot metrics = service.Metrics();
  EXPECT_EQ(metrics.latency_queries, 0u);
  EXPECT_GT(metrics.throughput_batches, 0u);
  EXPECT_EQ(metrics.throughput_queries, queries.size());
}

TEST(SearchServiceTest, BatchEntryPointDelegatesAndStaysExact) {
  Engine engine(2000, 96, 47);
  const Dataset queries = Walk(12, 96, 48);
  const auto batch = engine.tree->SearchKnnBatch(queries, 7);
  ASSERT_EQ(batch.size(), queries.size());
  for (std::size_t q = 0; q < queries.size(); ++q) {
    const auto expected = engine.tree->SearchKnn(queries.row(q), 7);
    EXPECT_TRUE(SameDistances(batch[q], expected)) << "query " << q;
  }
}

TEST(SearchServiceTest, EpsilonApproximateWithinBound) {
  Engine engine(2000, 96, 49);
  SearchService service(WrapIndex(engine.tree.get()), &engine.pool);
  const Dataset queries = Walk(8, 96, 50);
  const double epsilon = 0.1;
  for (std::size_t q = 0; q < queries.size(); ++q) {
    SearchRequest request;
    request.query = QueryVector(queries, q);
    request.k = 5;
    request.epsilon = epsilon;
    const SearchResponse response = service.Search(std::move(request));
    ASSERT_EQ(response.status, RequestStatus::kOk);
    const auto exact = BruteForceKnn(engine.data, queries.row(q), 5);
    ASSERT_EQ(response.neighbors.size(), exact.size());
    for (std::size_t i = 0; i < exact.size(); ++i) {
      EXPECT_LE(response.neighbors[i].distance,
                exact[i].distance * (1.0 + epsilon) + 1e-4);
    }
  }
}

// ------------------------------------------- admission control, deadlines

TEST(SearchServiceTest, QueueSaturationRejects) {
  Engine engine(1000, 64, 51, /*threads=*/2);
  ServiceConfig config;
  config.max_pending = 2;
  config.start_paused = true;
  SearchService service(WrapIndex(engine.tree.get()), &engine.pool, config);
  const Dataset queries = Noise(3, 64, 52);

  std::vector<std::future<SearchResponse>> futures;
  for (std::size_t q = 0; q < 3; ++q) {
    SearchRequest request;
    request.query = QueryVector(queries, q);
    futures.push_back(service.Submit(std::move(request)));
  }
  // Third submit overflowed the bounded queue and was shed immediately.
  const SearchResponse rejected = futures[2].get();
  EXPECT_EQ(rejected.status, RequestStatus::kRejected);
  EXPECT_TRUE(rejected.neighbors.empty());

  service.Resume();
  EXPECT_EQ(futures[0].get().status, RequestStatus::kOk);
  EXPECT_EQ(futures[1].get().status, RequestStatus::kOk);
  const MetricsSnapshot metrics = service.Metrics();
  EXPECT_EQ(metrics.submitted, 3u);
  EXPECT_EQ(metrics.completed, 2u);
  EXPECT_EQ(metrics.rejected, 1u);
}

TEST(SearchServiceTest, ExpiredDeadlineIsDroppedWithoutRunning) {
  Engine engine(1000, 64, 53, /*threads=*/2);
  SearchService service(WrapIndex(engine.tree.get()), &engine.pool);
  const Dataset queries = Noise(2, 64, 54);

  SearchRequest expired;
  expired.query = QueryVector(queries, 0);
  expired.deadline = std::chrono::steady_clock::now() -
                     std::chrono::milliseconds(10);
  const SearchResponse dropped = service.Search(std::move(expired));
  EXPECT_EQ(dropped.status, RequestStatus::kDeadlineExpired);
  EXPECT_TRUE(dropped.neighbors.empty());

  SearchRequest fresh;
  fresh.query = QueryVector(queries, 1);
  fresh.SetDeadlineMs(60000.0);
  EXPECT_EQ(service.Search(std::move(fresh)).status, RequestStatus::kOk);
  const MetricsSnapshot metrics = service.Metrics();
  EXPECT_EQ(metrics.expired, 1u);
  EXPECT_EQ(metrics.completed, 1u);
}

TEST(SearchServiceTest, InvalidQueryLengthIsRefused) {
  Engine engine(1000, 64, 55, /*threads=*/2);
  SearchService service(WrapIndex(engine.tree.get()), &engine.pool);
  SearchRequest request;
  request.query.assign(32, 0.0f);  // wrong length
  EXPECT_EQ(service.Search(std::move(request)).status,
            RequestStatus::kInvalidArgument);
  const MetricsSnapshot metrics = service.Metrics();
  EXPECT_EQ(metrics.invalid, 1u);
  EXPECT_EQ(metrics.rejected, 0u);  // not an admission-control event
}

TEST(SearchServiceTest, ShutdownFailsQueuedRequests) {
  Engine engine(1000, 64, 56, /*threads=*/2);
  ServiceConfig config;
  config.start_paused = true;
  SearchService service(WrapIndex(engine.tree.get()), &engine.pool, config);
  const Dataset queries = Noise(2, 64, 57);
  std::vector<std::future<SearchResponse>> futures;
  for (std::size_t q = 0; q < 2; ++q) {
    SearchRequest request;
    request.query = QueryVector(queries, q);
    futures.push_back(service.Submit(std::move(request)));
  }
  service.Shutdown();
  EXPECT_EQ(futures[0].get().status, RequestStatus::kShutdown);
  EXPECT_EQ(futures[1].get().status, RequestStatus::kShutdown);
  // Submitting after shutdown is shed as well.
  SearchRequest late;
  late.query = QueryVector(queries, 0);
  EXPECT_EQ(service.Search(std::move(late)).status, RequestStatus::kShutdown);
}

// ------------------------------------------------------------- hot swap

TEST(SearchServiceTest, HotSwapDuringInFlightTrafficStaysExact) {
  // Two generations over the *same* collection (SFA and SAX summarization):
  // whichever generation answers, the exact k-NN is the same, so a swap
  // mid-traffic must never change any answer.
  Engine sofa_engine(2000, 96, 58);
  Engine sax_engine(1, 96, 58, /*threads=*/2, /*sax=*/true);
  sax_engine.data = Walk(2000, 96, 58);  // identical collection
  index::IndexConfig sax_config;
  sax_config.leaf_capacity = 100;
  sax_engine.tree = std::make_unique<index::TreeIndex>(
      &sax_engine.data, sax_engine.scheme.get(), sax_config,
      &sax_engine.pool);

  ServiceConfig config;
  config.latency_mode_threshold = 1;
  SearchService service(WrapIndex(sofa_engine.tree.get()), &sofa_engine.pool,
                        config);
  const Dataset queries = Walk(30, 96, 59);

  std::atomic<bool> stop_swapping(false);
  std::thread swapper([&] {
    bool use_sax = true;
    std::size_t swaps = 0;
    while (!stop_swapping.load() || swaps < 4) {
      service.Publish(WrapIndex(use_sax ? sax_engine.tree.get()
                                        : sofa_engine.tree.get()));
      use_sax = !use_sax;
      ++swaps;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });

  std::atomic<std::size_t> failures(0);
  std::vector<std::thread> clients;
  for (std::size_t c = 0; c < 2; ++c) {
    clients.emplace_back([&, c] {
      for (std::size_t q = c; q < queries.size(); q += 2) {
        SearchRequest request;
        request.query = QueryVector(queries, q);
        request.k = 5;
        const SearchResponse response = service.Search(std::move(request));
        const auto expected =
            BruteForceKnn(sofa_engine.data, queries.row(q), 5);
        if (response.status != RequestStatus::kOk ||
            !SameDistances(response.neighbors, expected)) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (auto& client : clients) {
    client.join();
  }
  stop_swapping.store(true);
  swapper.join();
  EXPECT_EQ(failures.load(), 0u);
  const MetricsSnapshot metrics = service.Metrics();
  EXPECT_GE(metrics.swaps, 4u);
  EXPECT_EQ(service.version(), 1 + metrics.swaps);
}

TEST(SearchServiceTest, PublishedGenerationAnswersSubsequentQueries) {
  // Swap to an index over a *different* collection and verify follow-up
  // answers come from the new generation.
  Engine first(1500, 64, 60, /*threads=*/2);
  Engine second(1500, 64, 61, /*threads=*/2);
  SearchService service(WrapIndex(first.tree.get()), &first.pool);
  const Dataset queries = Walk(5, 64, 62);

  for (std::size_t q = 0; q < queries.size(); ++q) {
    SearchRequest request;
    request.query = QueryVector(queries, q);
    request.k = 3;
    const SearchResponse response = service.Search(std::move(request));
    ASSERT_EQ(response.status, RequestStatus::kOk);
    EXPECT_EQ(response.index_version, 1u);
    EXPECT_TRUE(SameDistances(response.neighbors,
                              BruteForceKnn(first.data, queries.row(q), 3)));
  }

  const std::uint64_t version = service.Publish(WrapIndex(second.tree.get()));
  EXPECT_EQ(version, 2u);
  service.Drain();
  for (std::size_t q = 0; q < queries.size(); ++q) {
    SearchRequest request;
    request.query = QueryVector(queries, q);
    request.k = 3;
    const SearchResponse response = service.Search(std::move(request));
    ASSERT_EQ(response.status, RequestStatus::kOk);
    EXPECT_EQ(response.index_version, 2u);
    EXPECT_TRUE(SameDistances(response.neighbors,
                              BruteForceKnn(second.data, queries.row(q), 3)));
  }
}

// -------------------------------------------- serialization → hot swap

TEST(SearchServiceTest, SerializedReloadPublishesBitIdenticalAnswers) {
  Engine engine(2000, 96, 63);
  SearchService service(WrapIndex(engine.tree.get()), &engine.pool);
  const Dataset queries = Walk(10, 96, 64);

  // Answers of the original generation.
  std::vector<std::vector<Neighbor>> original;
  for (std::size_t q = 0; q < queries.size(); ++q) {
    SearchRequest request;
    request.query = QueryVector(queries, q);
    request.k = 8;
    const SearchResponse response = service.Search(std::move(request));
    ASSERT_EQ(response.status, RequestStatus::kOk);
    original.push_back(response.neighbors);
  }

  // Save → load → publish the loaded generation into the running service.
  const std::string path = ::testing::TempDir() + "/service_swap.sofa";
  ASSERT_TRUE(index::SaveIndex(*engine.tree, path));
  auto loaded = index::LoadIndex(path, &engine.data, &engine.pool);
  ASSERT_TRUE(loaded.has_value());
  service.Publish(AdoptLoadedIndex(std::move(*loaded)));
  service.Drain();

  // The reloaded index is the same tree over the same data: every answer
  // must be bit-identical (same ids, same float distances).
  for (std::size_t q = 0; q < queries.size(); ++q) {
    SearchRequest request;
    request.query = QueryVector(queries, q);
    request.k = 8;
    const SearchResponse response = service.Search(std::move(request));
    ASSERT_EQ(response.status, RequestStatus::kOk);
    EXPECT_EQ(response.index_version, 2u);
    ASSERT_EQ(response.neighbors.size(), original[q].size());
    for (std::size_t i = 0; i < original[q].size(); ++i) {
      EXPECT_EQ(response.neighbors[i].id, original[q][i].id)
          << "query " << q << " rank " << i;
      EXPECT_EQ(response.neighbors[i].distance, original[q][i].distance)
          << "query " << q << " rank " << i;
    }
  }
}

// --------------------------------------------------------------- metrics

TEST(SearchServiceTest, MetricsAccountingAndProfiles) {
  Engine engine(2000, 96, 65);
  SearchService service(WrapIndex(engine.tree.get()), &engine.pool);
  const Dataset queries = Walk(10, 96, 66);
  for (std::size_t q = 0; q < queries.size(); ++q) {
    SearchRequest request;
    request.query = QueryVector(queries, q);
    request.k = 5;
    request.collect_profile = true;
    const SearchResponse response = service.Search(std::move(request));
    ASSERT_EQ(response.status, RequestStatus::kOk);
    EXPECT_GT(response.profile.nodes_visited, 0u);
    EXPECT_GT(response.profile.series_ed_computed, 0u);
  }
  const MetricsSnapshot metrics = service.Metrics();
  EXPECT_EQ(metrics.submitted, queries.size());
  EXPECT_EQ(metrics.completed, queries.size());
  EXPECT_EQ(metrics.rejected, 0u);
  EXPECT_EQ(metrics.expired, 0u);
  EXPECT_GT(metrics.qps, 0.0);
  EXPECT_GT(metrics.latency_p50_ms, 0.0);
  EXPECT_GE(metrics.latency_p95_ms, metrics.latency_p50_ms);
  EXPECT_GE(metrics.latency_p99_ms, metrics.latency_p95_ms);
  EXPECT_GE(metrics.latency_max_ms, metrics.latency_p99_ms);
  EXPECT_GT(metrics.profile.nodes_visited, 0u);
  EXPECT_GT(metrics.profile.series_lbd_checked, 0u);
}

// ------------------------------------------------------------- executor

TEST(ExecutorTest, ThroughputBatchMatchesSequentialEngine) {
  Engine engine(2000, 96, 67);
  const Dataset queries = Walk(16, 96, 68);
  std::vector<std::vector<Neighbor>> results(queries.size());
  std::vector<index::QueryProfile> profiles(queries.size());
  std::vector<QueryTask> tasks(queries.size());
  for (std::size_t q = 0; q < queries.size(); ++q) {
    tasks[q].query = queries.row(q);
    tasks[q].k = 5;
    tasks[q].profile = &profiles[q];
    tasks[q].result = &results[q];
  }
  RunThroughputBatch(*engine.tree, &tasks, &engine.pool);
  const index::QueryEngine sequential(engine.tree.get());
  for (std::size_t q = 0; q < queries.size(); ++q) {
    const auto expected = sequential.Search(queries.row(q), 5);
    EXPECT_TRUE(SameDistances(results[q], expected)) << "query " << q;
    EXPECT_GT(profiles[q].series_ed_computed, 0u);
  }
}

TEST(ExecutorTest, TasksExpiringMidBatchAreSkippedAndFlagged) {
  Engine engine(1000, 64, 69, /*threads=*/2);
  const Dataset queries = Walk(4, 64, 70);
  std::vector<std::vector<Neighbor>> results(queries.size());
  std::vector<QueryTask> tasks(queries.size());
  for (std::size_t q = 0; q < queries.size(); ++q) {
    tasks[q].query = queries.row(q);
    tasks[q].k = 3;
    tasks[q].result = &results[q];
  }
  // One task is already past its drop-dead time when a worker reaches it.
  tasks[2].deadline =
      std::chrono::steady_clock::now() - std::chrono::milliseconds(1);
  RunThroughputBatch(*engine.tree, &tasks, &engine.pool);
  for (std::size_t q = 0; q < queries.size(); ++q) {
    if (q == 2) {
      EXPECT_TRUE(tasks[q].expired);
      EXPECT_TRUE(results[q].empty());
    } else {
      EXPECT_FALSE(tasks[q].expired);
      EXPECT_EQ(results[q].size(), 3u);
    }
  }
}

}  // namespace
}  // namespace service
}  // namespace sofa
