// Shared synthetic data helpers for the engine tests (index, scan, flat).

#ifndef SOFA_TESTS_TEST_DATA_H_
#define SOFA_TESTS_TEST_DATA_H_

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "core/dataset.h"
#include "core/distance.h"
#include "core/neighbor.h"
#include "core/znorm.h"
#include "util/rng.h"

namespace sofa {
namespace testing_data {

/// Z-normalized white-noise dataset (flat spectrum).
inline Dataset Noise(std::size_t count, std::size_t length,
                     std::uint64_t seed) {
  Rng rng(seed);
  Dataset ds(length);
  std::vector<float> row(length);
  for (std::size_t i = 0; i < count; ++i) {
    for (auto& x : row) {
      x = static_cast<float>(rng.Gaussian());
    }
    ZNormalize(row.data(), length);
    ds.Append(row.data());
  }
  return ds;
}

/// Z-normalized random-walk dataset (energy in low frequencies).
inline Dataset Walk(std::size_t count, std::size_t length,
                    std::uint64_t seed) {
  Rng rng(seed);
  Dataset ds(length);
  std::vector<float> row(length);
  for (std::size_t i = 0; i < count; ++i) {
    double level = 0.0;
    for (auto& x : row) {
      level += rng.Gaussian();
      x = static_cast<float>(level);
    }
    ZNormalize(row.data(), length);
    ds.Append(row.data());
  }
  return ds;
}

/// Dataset with many exact duplicates (stresses unsplittable leaves).
inline Dataset Duplicates(std::size_t count, std::size_t length,
                          std::size_t distinct, std::uint64_t seed) {
  const Dataset base = Noise(distinct, length, seed);
  Dataset ds(length);
  Rng rng(seed + 1);
  for (std::size_t i = 0; i < count; ++i) {
    ds.Append(base.row(rng.Below(distinct)));
  }
  return ds;
}

/// Exact k-NN by brute force (float arithmetic, same kernels as the
/// engines) — the test oracle.
inline std::vector<Neighbor> BruteForceKnn(const Dataset& data,
                                           const float* query,
                                           std::size_t k) {
  std::vector<Neighbor> all(data.size());
  for (std::size_t i = 0; i < data.size(); ++i) {
    all[i] = Neighbor{
        static_cast<std::uint32_t>(i),
        std::sqrt(SquaredEuclidean(query, data.row(i), data.length()))};
  }
  std::sort(all.begin(), all.end(), [](const Neighbor& a, const Neighbor& b) {
    return a.distance < b.distance || (a.distance == b.distance && a.id < b.id);
  });
  all.resize(std::min(k, all.size()));
  return all;
}

/// Asserts distance-level equality of two k-NN answers (ids may differ on
/// exact ties).
inline ::testing::AssertionResult SameDistances(
    const std::vector<Neighbor>& actual, const std::vector<Neighbor>& expected,
    float tolerance = 2e-3f) {
  if (actual.size() != expected.size()) {
    return ::testing::AssertionFailure()
           << "size mismatch: " << actual.size() << " vs " << expected.size();
  }
  for (std::size_t i = 0; i < actual.size(); ++i) {
    const float scale = std::max(1.0f, expected[i].distance);
    if (std::fabs(actual[i].distance - expected[i].distance) >
        tolerance * scale) {
      return ::testing::AssertionFailure()
             << "rank " << i << ": " << actual[i].distance << " (id "
             << actual[i].id << ") vs expected " << expected[i].distance
             << " (id " << expected[i].id << ")";
    }
  }
  return ::testing::AssertionSuccess();
}

}  // namespace testing_data
}  // namespace sofa

#endif  // SOFA_TESTS_TEST_DATA_H_
