// Tests for the elastic (DTW) substrate: the recurrence against a naive
// reference, band semantics, the early-abandoning contract, envelope
// correctness vs a brute-force window sweep, the LB_Kim/LB_Keogh ≤ DTW
// invariant as a parameterized sweep, and the cascade scan against a
// naive DTW oracle.

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "core/dataset.h"
#include "core/distance.h"
#include "elastic/dtw.h"
#include "elastic/dtw_scan.h"
#include "elastic/envelope.h"
#include "elastic/lower_bounds.h"
#include "test_data.h"
#include "util/thread_pool.h"

namespace sofa {
namespace elastic {
namespace {

using testing_data::Noise;
using testing_data::Walk;

constexpr double kInf = std::numeric_limits<double>::infinity();

// Reference DTW: full O(an·bn) matrix, no rolling buffers, no band.
double NaiveDtw(const float* a, std::size_t an, const float* b,
                std::size_t bn) {
  std::vector<std::vector<double>> dp(an + 1,
                                      std::vector<double>(bn + 1, kInf));
  dp[0][0] = 0.0;
  for (std::size_t i = 1; i <= an; ++i) {
    for (std::size_t j = 1; j <= bn; ++j) {
      const double cost = (static_cast<double>(a[i - 1]) - b[j - 1]) *
                          (static_cast<double>(a[i - 1]) - b[j - 1]);
      dp[i][j] = cost + std::min({dp[i - 1][j - 1], dp[i - 1][j],
                                  dp[i][j - 1]});
    }
  }
  return dp[an][bn];
}

// ---------------------------------------------------------------------------
// DTW recurrence

TEST(DtwTest, IdenticalSeriesHaveZeroDistance) {
  const Dataset data = Walk(4, 64, 0x41);
  for (std::size_t i = 0; i < data.size(); ++i) {
    EXPECT_DOUBLE_EQ(Dtw(data.row(i), 64, data.row(i), 64), 0.0);
    EXPECT_DOUBLE_EQ(Dtw(data.row(i), 64, data.row(i), 64, 3), 0.0);
  }
}

TEST(DtwTest, MatchesNaiveReferenceUnconstrained) {
  const Dataset a = Noise(6, 48, 0x42);
  const Dataset b = Walk(6, 48, 0x43);
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double expected = NaiveDtw(a.row(i), 48, b.row(i), 48);
    EXPECT_NEAR(Dtw(a.row(i), 48, b.row(i), 48), expected,
                1e-9 * (1.0 + expected));
  }
}

TEST(DtwTest, HandlesUnequalLengths) {
  const Dataset a = Walk(3, 40, 0x44);
  const Dataset b = Walk(3, 64, 0x45);
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double expected = NaiveDtw(a.row(i), 40, b.row(i), 64);
    EXPECT_NEAR(Dtw(a.row(i), 40, b.row(i), 64), expected,
                1e-9 * (1.0 + expected));
  }
}

TEST(DtwTest, BandZeroEqualsSquaredEuclidean) {
  const Dataset a = Noise(4, 96, 0x46);
  const Dataset b = Noise(4, 96, 0x47);
  for (std::size_t i = 0; i < a.size(); ++i) {
    const float ed = SquaredEuclidean(a.row(i), b.row(i), 96);
    EXPECT_NEAR(Dtw(a.row(i), 96, b.row(i), 96, 0), ed, 1e-3 * (1.0 + ed));
  }
}

TEST(DtwTest, WideningTheBandNeverIncreasesTheDistance) {
  const Dataset a = Walk(4, 64, 0x48);
  const Dataset b = Walk(4, 64, 0x49);
  for (std::size_t i = 0; i < a.size(); ++i) {
    double previous = kInf;
    for (const std::size_t band : {0, 1, 2, 4, 8, 16, 32, 64}) {
      const double d = Dtw(a.row(i), 64, b.row(i), 64, band);
      EXPECT_LE(d, previous + 1e-9) << "band " << band;
      previous = d;
    }
    EXPECT_NEAR(previous, Dtw(a.row(i), 64, b.row(i), 64), 1e-9);
  }
}

TEST(DtwTest, WarpingInvarianceOnShiftedSpikes) {
  // Two unit spikes three steps apart: ED² sees both, DTW aligns them.
  std::vector<float> a(32, 0.0f), b(32, 0.0f);
  a[10] = 1.0f;
  b[13] = 1.0f;
  EXPECT_GT(SquaredEuclidean(a.data(), b.data(), 32), 1.9f);
  EXPECT_NEAR(Dtw(a.data(), 32, b.data(), 32), 0.0, 1e-12);
  // A band of 3 still reaches the alignment; a band of 2 cannot.
  EXPECT_NEAR(Dtw(a.data(), 32, b.data(), 32, 3), 0.0, 1e-12);
  EXPECT_GT(Dtw(a.data(), 32, b.data(), 32, 2), 0.5);
}

TEST(DtwTest, EarlyAbandonAgreesWhenNotAbandoned) {
  const Dataset a = Noise(6, 64, 0x4a);
  const Dataset b = Noise(6, 64, 0x4b);
  DtwScratch scratch;
  for (std::size_t i = 0; i < a.size(); ++i) {
    for (const std::size_t band : {std::size_t{5}, kFullBand}) {
      const double exact = Dtw(a.row(i), 64, b.row(i), 64, band);
      const double with_inf =
          DtwEarlyAbandon(a.row(i), b.row(i), 64, band, kInf, &scratch);
      EXPECT_NEAR(with_inf, exact, 1e-9 * (1.0 + exact));
    }
  }
}

TEST(DtwTest, EarlyAbandonReturnsValueAboveBoundWhenAbandoned) {
  const Dataset a = Noise(4, 64, 0x4c);
  const Dataset b = Walk(4, 64, 0x4d);
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double exact = Dtw(a.row(i), 64, b.row(i), 64, 8);
    const double bound = exact / 4.0;
    const double result =
        DtwEarlyAbandon(a.row(i), b.row(i), 64, 8, bound);
    EXPECT_GT(result, bound);
  }
}

TEST(DtwTest, SinglePointSeries) {
  const float a = 1.5f;
  const float b = -0.5f;
  EXPECT_DOUBLE_EQ(Dtw(&a, 1, &b, 1), 4.0);
  EXPECT_DOUBLE_EQ(Dtw(&a, 1, &b, 1, 0), 4.0);
  EXPECT_DOUBLE_EQ(DtwEarlyAbandon(&a, &b, 1, kFullBand,
                                   std::numeric_limits<double>::infinity()),
                   4.0);
}

TEST(DtwTest, BandWiderThanSeriesEqualsUnconstrained) {
  const Dataset a = Walk(2, 48, 0x4e);
  const Dataset b = Noise(2, 48, 0x4f);
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double full = Dtw(a.row(i), 48, b.row(i), 48);
    EXPECT_NEAR(Dtw(a.row(i), 48, b.row(i), 48, 48), full, 1e-9);
    EXPECT_NEAR(Dtw(a.row(i), 48, b.row(i), 48, 1000), full, 1e-9);
  }
}

TEST(DtwDeathTest, BandNarrowerThanLengthGapAborts) {
  const Dataset a = Walk(1, 10, 0x50);
  const Dataset b = Walk(1, 20, 0x51);
  EXPECT_DEATH(Dtw(a.row(0), 10, b.row(0), 20, 5), "no path");
}

TEST(DtwScanTest, SingleSeriesCollection) {
  ThreadPool pool(2);
  const Dataset data = Walk(1, 32, 0x52);
  const Dataset queries = Walk(1, 32, 0x53);
  DtwScan::Options options;
  options.band = 3;
  const DtwScan scanner(&data, &pool, options);
  const Neighbor nn = scanner.Search1Nn(queries.row(0));
  EXPECT_EQ(nn.id, 0u);
  const double expected = Dtw(queries.row(0), 32, data.row(0), 32, 3);
  EXPECT_NEAR(nn.distance, std::sqrt(expected), 1e-4);
}

// ---------------------------------------------------------------------------
// Envelopes

TEST(EnvelopeTest, MatchesBruteForceWindows) {
  const Dataset data = Noise(4, 100, 0x50);
  for (std::size_t i = 0; i < data.size(); ++i) {
    const float* series = data.row(i);
    for (const std::size_t radius : {0, 1, 5, 10, 99, 200}) {
      const Envelope envelope = ComputeEnvelope(series, 100, radius);
      for (std::size_t t = 0; t < 100; ++t) {
        const std::size_t begin = t >= radius ? t - radius : 0;
        const std::size_t end = std::min<std::size_t>(100, t + radius + 1);
        float lo = series[begin];
        float hi = series[begin];
        for (std::size_t u = begin; u < end; ++u) {
          lo = std::min(lo, series[u]);
          hi = std::max(hi, series[u]);
        }
        ASSERT_FLOAT_EQ(envelope.lower[t], lo)
            << "radius " << radius << " t " << t;
        ASSERT_FLOAT_EQ(envelope.upper[t], hi)
            << "radius " << radius << " t " << t;
      }
    }
  }
}

TEST(EnvelopeTest, HugeRadiusIsGlobalMinMax) {
  // kFullBand as radius must not overflow the window arithmetic.
  const Dataset data = Noise(2, 50, 0x52);
  for (std::size_t i = 0; i < data.size(); ++i) {
    const float* series = data.row(i);
    const Envelope envelope = ComputeEnvelope(series, 50, kFullBand);
    const float lo = *std::min_element(series, series + 50);
    const float hi = *std::max_element(series, series + 50);
    for (std::size_t t = 0; t < 50; ++t) {
      EXPECT_FLOAT_EQ(envelope.lower[t], lo);
      EXPECT_FLOAT_EQ(envelope.upper[t], hi);
    }
  }
}

TEST(EnvelopeTest, RadiusZeroIsTheSeriesItself) {
  const Dataset data = Walk(1, 64, 0x51);
  const Envelope envelope = ComputeEnvelope(data.row(0), 64, 0);
  for (std::size_t t = 0; t < 64; ++t) {
    EXPECT_FLOAT_EQ(envelope.lower[t], data.row(0)[t]);
    EXPECT_FLOAT_EQ(envelope.upper[t], data.row(0)[t]);
  }
}

// ---------------------------------------------------------------------------
// Lower bounds: the cascade invariant LB ≤ DTW, swept over band × family.

struct LbCase {
  std::size_t n;
  std::size_t band;
  bool noisy;
};

class DtwLowerBoundTest : public ::testing::TestWithParam<LbCase> {};

TEST_P(DtwLowerBoundTest, KimAndKeoghNeverExceedBandedDtw) {
  const LbCase param = GetParam();
  const Dataset queries = param.noisy ? Noise(4, param.n, 0x60)
                                      : Walk(4, param.n, 0x61);
  const Dataset data = param.noisy ? Noise(16, param.n, 0x62)
                                   : Walk(16, param.n, 0x63);
  for (std::size_t q = 0; q < queries.size(); ++q) {
    const Envelope query_envelope =
        ComputeEnvelope(queries.row(q), param.n, param.band);
    for (std::size_t c = 0; c < data.size(); ++c) {
      const double dtw =
          Dtw(queries.row(q), param.n, data.row(c), param.n, param.band);
      const double kim = LbKim(queries.row(q), data.row(c), param.n);
      EXPECT_LE(kim, dtw * (1.0 + 1e-9) + 1e-9) << "LB_Kim q=" << q;

      const double keogh_qc =
          LbKeogh(data.row(c), query_envelope.lower.data(),
                  query_envelope.upper.data(), param.n);
      EXPECT_LE(keogh_qc, dtw * (1.0 + 1e-9) + 1e-9)
          << "LB_Keogh(Q,C) q=" << q << " c=" << c;

      const Envelope candidate_envelope =
          ComputeEnvelope(data.row(c), param.n, param.band);
      const double keogh_cq =
          LbKeogh(queries.row(q), candidate_envelope.lower.data(),
                  candidate_envelope.upper.data(), param.n);
      EXPECT_LE(keogh_cq, dtw * (1.0 + 1e-9) + 1e-9)
          << "LB_Keogh(C,Q) q=" << q << " c=" << c;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DtwLowerBoundTest,
    ::testing::Values(LbCase{32, 0, false}, LbCase{32, 3, true},
                      LbCase{64, 6, false}, LbCase{64, 6, true},
                      LbCase{96, 9, false}, LbCase{128, 12, true},
                      LbCase{128, 64, false}),
    [](const ::testing::TestParamInfo<LbCase>& info) {
      std::string name = "n";
      name += std::to_string(info.param.n);
      name += "_band";
      name += std::to_string(info.param.band);
      name += info.param.noisy ? "_noise" : "_walk";
      return name;
    });

TEST(LbKeoghTest, EarlyAbandonPrefixIsStillALowerBound) {
  const Dataset a = Noise(4, 64, 0x64);
  const Dataset b = Walk(4, 64, 0x65);
  for (std::size_t i = 0; i < a.size(); ++i) {
    const Envelope envelope = ComputeEnvelope(a.row(i), 64, 5);
    const double full = LbKeogh(b.row(i), envelope.lower.data(),
                                envelope.upper.data(), 64);
    const double abandoned = LbKeogh(b.row(i), envelope.lower.data(),
                                     envelope.upper.data(), 64, full / 3.0);
    EXPECT_LE(abandoned, full + 1e-9);
    if (full > 0.0) {
      EXPECT_GT(abandoned, full / 3.0);
    }
  }
}

#if defined(SOFA_HAVE_AVX2)
TEST(LbKeoghTest, SimdAgreesWithScalar) {
  // Odd lengths exercise the scalar tail after the 8-lane body.
  for (const std::size_t n : {7, 8, 16, 63, 96, 100, 128, 256}) {
    const Dataset a = Noise(4, n, 0x67);
    const Dataset b = Walk(4, n, 0x68);
    for (std::size_t i = 0; i < a.size(); ++i) {
      const Envelope envelope = ComputeEnvelope(a.row(i), n, 5);
      const double scalar_sum =
          scalar::LbKeogh(b.row(i), envelope.lower.data(),
                          envelope.upper.data(), n, kInf);
      const double simd_sum =
          avx2::LbKeogh(b.row(i), envelope.lower.data(),
                        envelope.upper.data(), n, kInf);
      EXPECT_NEAR(simd_sum, scalar_sum, 1e-7 * (1.0 + scalar_sum))
          << "n=" << n << " i=" << i;
    }
  }
}

TEST(LbKeoghTest, SimdEarlyAbandonStillLowerBounds) {
  const Dataset a = Noise(4, 128, 0x69);
  const Dataset b = Walk(4, 128, 0x6a);
  for (std::size_t i = 0; i < a.size(); ++i) {
    const Envelope envelope = ComputeEnvelope(a.row(i), 128, 6);
    const double full = avx2::LbKeogh(b.row(i), envelope.lower.data(),
                                      envelope.upper.data(), 128, kInf);
    const double abandoned =
        avx2::LbKeogh(b.row(i), envelope.lower.data(),
                      envelope.upper.data(), 128, full / 4.0);
    EXPECT_LE(abandoned, full + 1e-9);
    if (full > 0.0) {
      EXPECT_GT(abandoned, full / 4.0);
    }
  }
}
#endif  // SOFA_HAVE_AVX2

TEST(LbKeoghTest, ZeroWhenInsideTheEnvelope) {
  const Dataset data = Walk(1, 64, 0x66);
  const Envelope envelope = ComputeEnvelope(data.row(0), 64, 4);
  // The series sits inside its own envelope by construction.
  EXPECT_DOUBLE_EQ(LbKeogh(data.row(0), envelope.lower.data(),
                           envelope.upper.data(), 64),
                   0.0);
}

// ---------------------------------------------------------------------------
// Cascade scan vs naive oracle

std::vector<Neighbor> NaiveDtwKnn(const Dataset& data, const float* query,
                                  std::size_t k, std::size_t band) {
  std::vector<Neighbor> all(data.size());
  for (std::size_t i = 0; i < data.size(); ++i) {
    const double d = Dtw(query, data.length(), data.row(i), data.length(),
                         band);
    all[i] = Neighbor{static_cast<std::uint32_t>(i),
                      static_cast<float>(std::sqrt(d))};
  }
  std::sort(all.begin(), all.end(),
            [](const Neighbor& a, const Neighbor& b) {
              return a.distance < b.distance ||
                     (a.distance == b.distance && a.id < b.id);
            });
  all.resize(std::min(k, all.size()));
  return all;
}

class DtwScanTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(DtwScanTest, MatchesNaiveOracleOn1Nn) {
  const std::size_t threads = GetParam();
  ThreadPool pool(threads);
  const Dataset data = Walk(300, 64, 0x70);
  const Dataset queries = Walk(6, 64, 0x71);
  DtwScan::Options options;
  options.band = 6;
  const DtwScan scanner(&data, &pool, options);
  for (std::size_t q = 0; q < queries.size(); ++q) {
    const Neighbor got = scanner.Search1Nn(queries.row(q));
    const auto expected = NaiveDtwKnn(data, queries.row(q), 1, 6);
    EXPECT_NEAR(got.distance, expected[0].distance, 1e-4f)
        << "threads=" << threads << " q=" << q;
  }
}

TEST_P(DtwScanTest, MatchesNaiveOracleOnKnn) {
  const std::size_t threads = GetParam();
  ThreadPool pool(threads);
  const Dataset data = Noise(200, 48, 0x72);
  const Dataset queries = Noise(4, 48, 0x73);
  DtwScan::Options options;
  options.band = 5;
  const DtwScan scanner(&data, &pool, options);
  for (std::size_t q = 0; q < queries.size(); ++q) {
    const auto got = scanner.SearchKnn(queries.row(q), 10);
    const auto expected = NaiveDtwKnn(data, queries.row(q), 10, 5);
    ASSERT_EQ(got.size(), expected.size());
    EXPECT_TRUE(testing_data::SameDistances(got, expected));
  }
}

INSTANTIATE_TEST_SUITE_P(Threads, DtwScanTest, ::testing::Values(1, 2, 4),
                         [](const ::testing::TestParamInfo<std::size_t>&
                                info) {
                           std::string name = "t";
                           name += std::to_string(info.param);
                           return name;
                         });

TEST(DtwScanTest, ReverseKeoghTierOffStillExact) {
  ThreadPool pool(2);
  const Dataset data = Walk(250, 64, 0x74);
  const Dataset queries = Walk(4, 64, 0x75);
  DtwScan::Options options;
  options.band = 6;
  options.use_reverse_keogh = false;
  const DtwScan scanner(&data, &pool, options);
  for (std::size_t q = 0; q < queries.size(); ++q) {
    const Neighbor got = scanner.Search1Nn(queries.row(q));
    const auto expected = NaiveDtwKnn(data, queries.row(q), 1, 6);
    EXPECT_NEAR(got.distance, expected[0].distance, 1e-4f);
  }
}

TEST(DtwScanTest, ProfileAccountsForEveryCandidate) {
  ThreadPool pool(2);
  const Dataset data = Walk(400, 64, 0x76);
  const Dataset queries = Walk(3, 64, 0x77);
  DtwScan::Options options;
  options.band = 6;
  const DtwScan scanner(&data, &pool, options);
  for (std::size_t q = 0; q < queries.size(); ++q) {
    DtwScanProfile profile;
    scanner.Search1Nn(queries.row(q), &profile);
    EXPECT_EQ(profile.candidates, data.size());
    EXPECT_EQ(profile.pruned_kim + profile.pruned_keogh_qc +
                  profile.pruned_keogh_cq + profile.dtw_abandoned +
                  profile.dtw_full,
              profile.candidates);
    // On clustered smooth data the cascade must prune something.
    EXPECT_GT(profile.pruned_kim + profile.pruned_keogh_qc +
                  profile.pruned_keogh_cq,
              0u);
  }
}

TEST(DtwScanTest, KnnClampsAndHandlesEdgeCases) {
  ThreadPool pool(2);
  const Dataset data = Noise(5, 32, 0x78);
  const Dataset queries = Noise(1, 32, 0x79);
  DtwScan::Options options;
  options.band = 3;
  const DtwScan scanner(&data, &pool, options);
  EXPECT_TRUE(scanner.SearchKnn(queries.row(0), 0).empty());
  EXPECT_EQ(scanner.SearchKnn(queries.row(0), 50).size(), 5u);
  const auto knn = scanner.SearchKnn(queries.row(0), 5);
  for (std::size_t i = 1; i < knn.size(); ++i) {
    EXPECT_LE(knn[i - 1].distance, knn[i].distance);
  }
}

}  // namespace
}  // namespace elastic
}  // namespace sofa
