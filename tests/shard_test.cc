// Tests for the scatter-gather sharding layer: the partition covers the
// collection exactly once, sharded answers are bit-identical to the
// single-index engine (ids and float distances) — standalone, under
// concurrent service traffic, in both scheduling modes, and across a
// mid-traffic single-shard hot-swap — and the per-shard republish shares
// untouched shards instead of copying them.

#include <atomic>
#include <cstdio>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "index/query_engine.h"
#include "index/serialization.h"
#include "index/tree_index.h"
#include "service/search_service.h"
#include "service/snapshot.h"
#include "sfa/mcb.h"
#include "shard/sharded_index.h"
#include "test_data.h"
#include "util/thread_pool.h"

namespace sofa {
namespace shard {
namespace {

using testing_data::BruteForceKnn;
using testing_data::Walk;

// One collection, its single-index engine, and the shared scheme sharded
// builds reuse (trained once over the full collection, as Build expects).
struct Fixture {
  ThreadPool pool;
  Dataset data;
  std::shared_ptr<const quant::SummaryScheme> scheme;
  std::unique_ptr<index::TreeIndex> single;

  explicit Fixture(std::size_t count = 2000, std::size_t length = 96,
                   std::uint64_t seed = 71, std::size_t threads = 4)
      : pool(threads), data(Walk(count, length, seed)) {
    sfa::SfaConfig config;
    config.word_length = 16;
    config.alphabet = 256;
    config.sampling_ratio = 0.2;
    scheme = sfa::TrainSfa(data, config, &pool);
    index::IndexConfig index_config;
    index_config.leaf_capacity = 100;
    single = std::make_unique<index::TreeIndex>(&data, scheme.get(),
                                                index_config, &pool);
  }

  std::shared_ptr<const ShardedIndex> MakeSharded(
      std::size_t num_shards,
      ShardAssignment assignment = ShardAssignment::kContiguous) {
    ShardingConfig config;
    config.num_shards = num_shards;
    config.assignment = assignment;
    config.index.leaf_capacity = 100;
    return ShardedIndex::Build(data, config, scheme, &pool);
  }
};

// Bit-exact comparison: same ids AND same float distances at every rank.
::testing::AssertionResult BitIdentical(const std::vector<Neighbor>& actual,
                                        const std::vector<Neighbor>& expected) {
  if (actual.size() != expected.size()) {
    return ::testing::AssertionFailure()
           << "size mismatch: " << actual.size() << " vs " << expected.size();
  }
  for (std::size_t i = 0; i < actual.size(); ++i) {
    if (actual[i].id != expected[i].id ||
        actual[i].distance != expected[i].distance) {
      return ::testing::AssertionFailure()
             << "rank " << i << ": " << actual[i].id << "(" << actual[i].distance
             << ") vs expected " << expected[i].id << "("
             << expected[i].distance << ")";
    }
  }
  return ::testing::AssertionSuccess();
}

// ------------------------------------------------------------ partition

TEST(ShardPartitionTest, CoversEveryIdExactlyOnce) {
  const Dataset data = Walk(533, 32, 11);
  for (const ShardAssignment assignment :
       {ShardAssignment::kContiguous, ShardAssignment::kHash}) {
    for (const std::size_t shards : {1u, 2u, 3u, 7u}) {
      const ShardPartition partition =
          ShardedIndex::Partition(data, shards, assignment);
      ASSERT_EQ(partition.data.size(), shards);
      ASSERT_EQ(partition.global_ids.size(), shards);
      std::vector<int> seen(data.size(), 0);
      for (std::size_t s = 0; s < shards; ++s) {
        ASSERT_EQ(partition.data[s]->size(), partition.global_ids[s]->size());
        for (std::size_t r = 0; r < partition.global_ids[s]->size(); ++r) {
          const std::uint32_t id = (*partition.global_ids[s])[r];
          ASSERT_LT(id, data.size());
          ++seen[id];
          // The shard row is a verbatim copy of the global row.
          for (std::size_t d = 0; d < data.length(); ++d) {
            ASSERT_EQ(partition.data[s]->row(r)[d], data.row(id)[d]);
          }
        }
      }
      for (std::size_t i = 0; i < data.size(); ++i) {
        EXPECT_EQ(seen[i], 1) << "id " << i;
      }
    }
  }
}

TEST(ShardPartitionTest, AssignShardClampsIdsBeyondBuildTimeTotal) {
  // Regression: contiguous assignment of an id at or beyond the
  // build-time total used to compute a shard index >= num_shards (the
  // ingest path routes freshly inserted ids through this). The tail range
  // belongs to the last shard; hash ids always land in range.
  for (const std::size_t total : {0u, 1u, 7u, 100u, 101u}) {
    for (const std::size_t shards : {1u, 2u, 3u, 8u}) {
      for (const std::uint32_t id :
           {static_cast<std::uint32_t>(total),
            static_cast<std::uint32_t>(total + 1),
            static_cast<std::uint32_t>(total + 1000), 0xffffffffu}) {
        EXPECT_EQ(ShardedIndex::AssignShard(ShardAssignment::kContiguous, id,
                                            total, shards),
                  shards - 1)
            << "total=" << total << " shards=" << shards << " id=" << id;
        EXPECT_LT(ShardedIndex::AssignShard(ShardAssignment::kHash, id, total,
                                            shards),
                  shards);
      }
      // In-range ids are untouched: the partition still covers exactly.
      for (std::uint32_t id = 0; id < total; ++id) {
        EXPECT_LT(ShardedIndex::AssignShard(ShardAssignment::kContiguous, id,
                                            total, shards),
                  shards);
      }
    }
  }
}

TEST(ShardPartitionTest, ContiguousSplitIsBalanced) {
  const Dataset data = Walk(100, 32, 12);
  const ShardPartition partition =
      ShardedIndex::Partition(data, 3, ShardAssignment::kContiguous);
  std::size_t min_size = data.size(), max_size = 0;
  for (const auto& slice : partition.data) {
    min_size = std::min(min_size, slice->size());
    max_size = std::max(max_size, slice->size());
  }
  EXPECT_LE(max_size - min_size, 1u);
  // Contiguous: global ids of shard s all precede those of shard s+1.
  EXPECT_LT(partition.global_ids[0]->back(), partition.global_ids[1]->front());
  EXPECT_LT(partition.global_ids[1]->back(), partition.global_ids[2]->front());
}

// ---------------------------------------------- scatter-gather exactness

TEST(ShardedIndexTest, MatchesSingleIndexBitExact) {
  Fixture fx;
  const Dataset queries = Walk(15, 96, 72);
  for (const ShardAssignment assignment :
       {ShardAssignment::kContiguous, ShardAssignment::kHash}) {
    for (const std::size_t shards : {1u, 2u, 3u, 5u}) {
      const auto sharded = fx.MakeSharded(shards, assignment);
      EXPECT_EQ(sharded->size(), fx.data.size());
      for (std::size_t q = 0; q < queries.size(); ++q) {
        const auto expected = fx.single->SearchKnn(queries.row(q), 10);
        const auto actual = sharded->SearchKnn(queries.row(q), 10);
        EXPECT_TRUE(BitIdentical(actual, expected))
            << "shards=" << shards << " query " << q;
      }
    }
  }
}

TEST(ShardedIndexTest, KLargerThanAnyShardStaysExact) {
  Fixture fx(600, 64, 73);
  const auto sharded = fx.MakeSharded(4);
  const Dataset queries = Walk(5, 64, 74);
  // k = 200 exceeds every ~150-series shard; the merge must still produce
  // the global top-k, and clamp at the collection size for k > N.
  for (std::size_t q = 0; q < queries.size(); ++q) {
    EXPECT_TRUE(BitIdentical(sharded->SearchKnn(queries.row(q), 200),
                             fx.single->SearchKnn(queries.row(q), 200)));
    EXPECT_EQ(sharded->SearchKnn(queries.row(q), 10000).size(), fx.data.size());
  }
}

TEST(ShardedIndexTest, EmptyShardsAreHarmless) {
  // More shards than series: the surplus shards are empty and contribute
  // nothing to the merge.
  Fixture fx(40, 64, 75, /*threads=*/2);
  const auto sharded = fx.MakeSharded(8, ShardAssignment::kHash);
  const Dataset queries = Walk(4, 64, 76);
  for (std::size_t q = 0; q < queries.size(); ++q) {
    EXPECT_TRUE(BitIdentical(sharded->SearchKnn(queries.row(q), 5),
                             fx.single->SearchKnn(queries.row(q), 5)));
  }
}

TEST(ShardedIndexTest, MergedProfileAccountsAllShards) {
  Fixture fx;
  const auto sharded = fx.MakeSharded(3);
  const Dataset queries = Walk(5, 96, 77);
  for (std::size_t q = 0; q < queries.size(); ++q) {
    // The scatter profile merged over shards equals the sum of per-shard
    // profiles — exactness accounting still holds shard by shard. The
    // oracle runs each shard single-threaded, exactly like the scatter
    // tasks (multi-threaded counters depend on BSF races).
    index::QueryProfile merged;
    (void)sharded->SearchKnn(queries.row(q), 5, 0.0, &merged);
    index::QueryProfile summed;
    for (std::size_t s = 0; s < sharded->num_shards(); ++s) {
      const index::QueryEngine engine(sharded->shard(s).tree.get());
      (void)engine.Search(queries.row(q), 5, 0.0, &summed, /*num_threads=*/1);
    }
    EXPECT_EQ(merged.series_ed_computed, summed.series_ed_computed);
    EXPECT_EQ(merged.series_lbd_checked, summed.series_lbd_checked);
    EXPECT_EQ(merged.nodes_visited, summed.nodes_visited);
    EXPECT_GT(merged.series_ed_computed, 0u);
  }
}

TEST(ShardedIndexTest, EpsilonApproximateWithinBound) {
  Fixture fx;
  const auto sharded = fx.MakeSharded(3);
  const Dataset queries = Walk(6, 96, 78);
  const double epsilon = 0.1;
  for (std::size_t q = 0; q < queries.size(); ++q) {
    const auto exact = BruteForceKnn(fx.data, queries.row(q), 5);
    const auto approx = sharded->SearchKnn(queries.row(q), 5, epsilon);
    ASSERT_EQ(approx.size(), exact.size());
    // Per-shard (1+ε) guarantees survive the merge (each global exact
    // rank-i distance bounds some shard's local rank, see sharded_index.h).
    for (std::size_t i = 0; i < exact.size(); ++i) {
      EXPECT_LE(approx[i].distance, exact[i].distance * (1.0 + epsilon) + 1e-4);
    }
  }
}

// ----------------------------------------------- persistence round trip

// Satellite regression: hash assignment over a tiny collection leaves
// some shards empty. Build → per-shard SaveIndex → Partition →
// per-shard LoadIndex → FromShards (the `sofa_cli build/serve --shards`
// path) must round-trip cleanly — empty shards build, save as loadable
// files, reload, and contribute nothing to the merge.
TEST(ShardPersistenceTest, TinyHashCollectionRoundTripsThroughEmptyShards) {
  ThreadPool pool(2);
  const Dataset data = Walk(5, 64, 86);
  sfa::SfaConfig sfa_config;
  sfa_config.word_length = 16;
  sfa_config.alphabet = 256;
  sfa_config.sampling_ratio = 1.0;
  const std::shared_ptr<const quant::SummaryScheme> scheme =
      sfa::TrainSfa(data, sfa_config, &pool);
  ShardingConfig config;
  config.num_shards = 8;  // 5 series in 8 shards: >= 3 empty by pigeonhole
  config.assignment = ShardAssignment::kHash;
  config.index.leaf_capacity = 100;
  const auto built = ShardedIndex::Build(data, config, scheme, &pool);
  std::size_t empty_shards = 0;
  for (std::size_t s = 0; s < built->num_shards(); ++s) {
    empty_shards += built->shard(s).data->empty() ? 1 : 0;
  }
  ASSERT_GE(empty_shards, 3u);

  // Save every shard — including the empty ones — and reload against the
  // deterministic re-partition, exactly as the CLI does.
  std::vector<std::string> paths;
  for (std::size_t s = 0; s < built->num_shards(); ++s) {
    paths.push_back(::testing::TempDir() + "/tiny_hash.shard" +
                    std::to_string(s));
    ASSERT_TRUE(index::SaveIndex(*built->shard(s).tree, paths[s]))
        << "shard " << s;
  }
  const ShardPartition partition =
      ShardedIndex::Partition(data, config.num_shards, config.assignment);
  std::vector<Shard> reloaded(config.num_shards);
  for (std::size_t s = 0; s < config.num_shards; ++s) {
    auto loaded = index::LoadIndex(paths[s], partition.data[s].get(), &pool);
    ASSERT_TRUE(loaded.has_value()) << "shard " << s << " failed to reload";
    reloaded[s].data = partition.data[s];
    reloaded[s].scheme = std::move(loaded->scheme);
    reloaded[s].tree = std::move(loaded->tree);
    reloaded[s].global_ids = partition.global_ids[s];
  }
  const auto round_tripped = ShardedIndex::FromShards(
      std::move(reloaded), config, data.length(), &pool);
  ASSERT_EQ(round_tripped->size(), data.size());

  // Answers bit-identical to the single-index engine over the same rows.
  index::IndexConfig single_config;
  single_config.leaf_capacity = 100;
  const index::TreeIndex single(&data, scheme.get(), single_config, &pool);
  const Dataset queries = Walk(4, 64, 87);
  for (std::size_t q = 0; q < queries.size(); ++q) {
    EXPECT_TRUE(BitIdentical(round_tripped->SearchKnn(queries.row(q), 3),
                             single.SearchKnn(queries.row(q), 3)))
        << "query " << q;
    EXPECT_EQ(round_tripped->SearchKnn(queries.row(q), 100).size(),
              data.size());
  }
  for (const std::string& path : paths) {
    std::remove(path.c_str());
  }
}

// ------------------------------------------------- per-shard republish

TEST(ShardedIndexTest, RebuiltShardSharesUntouchedShards) {
  Fixture fx;
  const auto original = fx.MakeSharded(3);
  const auto rebuilt = original->WithShardRebuilt(1);
  EXPECT_EQ(rebuilt->num_shards(), 3u);
  EXPECT_EQ(rebuilt->size(), original->size());
  // Untouched shards alias the originals; shard 1 is a new generation.
  EXPECT_EQ(rebuilt->shard(0).tree.get(), original->shard(0).tree.get());
  EXPECT_EQ(rebuilt->shard(2).tree.get(), original->shard(2).tree.get());
  EXPECT_NE(rebuilt->shard(1).tree.get(), original->shard(1).tree.get());
  EXPECT_EQ(rebuilt->shard(1).data.get(), original->shard(1).data.get());
  EXPECT_EQ(rebuilt->shard(0).generation, 1u);
  EXPECT_EQ(rebuilt->shard(1).generation, 2u);
  // The deterministic rebuild answers bit-identically.
  const Dataset queries = Walk(8, 96, 79);
  for (std::size_t q = 0; q < queries.size(); ++q) {
    EXPECT_TRUE(BitIdentical(rebuilt->SearchKnn(queries.row(q), 7),
                             original->SearchKnn(queries.row(q), 7)));
  }
}

// -------------------------------------------------- service integration

TEST(ShardedServiceTest, LatencyModeBitExact) {
  Fixture fx;
  const auto sharded = fx.MakeSharded(3);
  service::SearchService svc(service::WrapShardedIndex(sharded), &fx.pool);
  const Dataset queries = Walk(10, 96, 80);
  for (std::size_t q = 0; q < queries.size(); ++q) {
    service::SearchRequest request;
    request.query.assign(queries.row(q), queries.row(q) + 96);
    request.k = 10;
    request.collect_profile = true;
    const service::SearchResponse response = svc.Search(std::move(request));
    ASSERT_EQ(response.status, service::RequestStatus::kOk);
    EXPECT_TRUE(
        BitIdentical(response.neighbors, fx.single->SearchKnn(queries.row(q), 10)));
    EXPECT_GT(response.profile.series_ed_computed, 0u);
  }
  const service::MetricsSnapshot metrics = svc.Metrics();
  EXPECT_EQ(metrics.completed, queries.size());
  EXPECT_GT(metrics.profile.series_ed_computed, 0u);
}

TEST(ShardedServiceTest, ThroughputModeBitExact) {
  Fixture fx;
  const auto sharded = fx.MakeSharded(4, ShardAssignment::kHash);
  service::ServiceConfig config;
  config.latency_mode_threshold = 0;  // force the flattened scatter
  config.start_paused = true;         // stage a backlog → real batches
  service::SearchService svc(service::WrapShardedIndex(sharded), &fx.pool,
                             config);
  const Dataset queries = Walk(20, 96, 81);
  std::vector<std::future<service::SearchResponse>> futures;
  for (std::size_t q = 0; q < queries.size(); ++q) {
    service::SearchRequest request;
    request.query.assign(queries.row(q), queries.row(q) + 96);
    request.k = 10;
    futures.push_back(svc.Submit(std::move(request)));
  }
  svc.Resume();
  for (std::size_t q = 0; q < queries.size(); ++q) {
    const service::SearchResponse response = futures[q].get();
    ASSERT_EQ(response.status, service::RequestStatus::kOk);
    EXPECT_TRUE(BitIdentical(response.neighbors,
                             fx.single->SearchKnn(queries.row(q), 10)))
        << "query " << q;
  }
  const service::MetricsSnapshot metrics = svc.Metrics();
  EXPECT_EQ(metrics.latency_queries, 0u);
  EXPECT_GT(metrics.throughput_batches, 0u);
  EXPECT_EQ(metrics.throughput_queries, queries.size());
}

TEST(ShardedServiceTest, ConcurrentClientsStayBitExact) {
  Fixture fx;
  const auto sharded = fx.MakeSharded(3);
  service::ServiceConfig config;
  config.latency_mode_threshold = 2;  // mixed-mode under load
  config.max_batch = 8;
  service::SearchService svc(service::WrapShardedIndex(sharded), &fx.pool,
                             config);
  const Dataset queries = Walk(24, 96, 82);
  // Precompute expected answers so client threads only compare.
  std::vector<std::vector<Neighbor>> expected;
  for (std::size_t q = 0; q < queries.size(); ++q) {
    expected.push_back(fx.single->SearchKnn(queries.row(q), 5));
  }
  constexpr std::size_t kClients = 3;
  std::atomic<std::size_t> failures(0);
  std::vector<std::thread> clients;
  for (std::size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (std::size_t q = c; q < queries.size(); q += kClients) {
        service::SearchRequest request;
        request.query.assign(queries.row(q), queries.row(q) + 96);
        request.k = 5;
        const service::SearchResponse response = svc.Search(std::move(request));
        if (response.status != service::RequestStatus::kOk ||
            !BitIdentical(response.neighbors, expected[q])) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (auto& client : clients) {
    client.join();
  }
  EXPECT_EQ(failures.load(), 0u);
  EXPECT_EQ(svc.Metrics().completed, queries.size());
}

TEST(ShardedServiceTest, SingleShardHotSwapMidTrafficStaysBitExact) {
  Fixture fx;
  auto sharded = fx.MakeSharded(3);
  service::ServiceConfig config;
  config.latency_mode_threshold = 1;
  service::SearchService svc(service::WrapShardedIndex(sharded), &fx.pool,
                             config);
  const Dataset queries = Walk(30, 96, 83);
  std::vector<std::vector<Neighbor>> expected;
  for (std::size_t q = 0; q < queries.size(); ++q) {
    expected.push_back(fx.single->SearchKnn(queries.row(q), 5));
  }

  // Republish one rebuilt shard at a time (round-robin) under live
  // traffic: every published generation shares two shards with its
  // predecessor and answers identically, so no client may ever observe a
  // different result.
  std::atomic<bool> stop_swapping(false);
  std::thread swapper([&] {
    std::size_t swaps = 0;
    while (!stop_swapping.load() || swaps < 6) {
      sharded = sharded->WithShardRebuilt(swaps % sharded->num_shards());
      svc.Publish(service::WrapShardedIndex(sharded));
      ++swaps;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });

  std::atomic<std::size_t> failures(0);
  std::vector<std::thread> clients;
  for (std::size_t c = 0; c < 2; ++c) {
    clients.emplace_back([&, c] {
      for (std::size_t q = c; q < queries.size(); q += 2) {
        service::SearchRequest request;
        request.query.assign(queries.row(q), queries.row(q) + 96);
        request.k = 5;
        const service::SearchResponse response = svc.Search(std::move(request));
        if (response.status != service::RequestStatus::kOk ||
            !BitIdentical(response.neighbors, expected[q])) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (auto& client : clients) {
    client.join();
  }
  stop_swapping.store(true);
  swapper.join();
  EXPECT_EQ(failures.load(), 0u);
  const service::MetricsSnapshot metrics = svc.Metrics();
  EXPECT_GE(metrics.swaps, 6u);
  // The last published generation carries per-shard generation counters.
  std::uint64_t max_generation = 0;
  for (std::size_t s = 0; s < sharded->num_shards(); ++s) {
    max_generation = std::max(max_generation, sharded->shard(s).generation);
  }
  EXPECT_GE(max_generation, 2u);
}

TEST(ShardedServiceTest, DeadlinePressureDropsExpiredOnly) {
  Fixture fx(1000, 64, 84, /*threads=*/2);
  const auto sharded = fx.MakeSharded(2);
  service::ServiceConfig config;
  config.latency_mode_threshold = 0;  // exercise the flattened scatter
  service::SearchService svc(service::WrapShardedIndex(sharded), &fx.pool,
                             config);
  const Dataset queries = Walk(2, 64, 85);

  service::SearchRequest expired;
  expired.query.assign(queries.row(0), queries.row(0) + 64);
  expired.deadline =
      std::chrono::steady_clock::now() - std::chrono::milliseconds(10);
  const service::SearchResponse dropped = svc.Search(std::move(expired));
  EXPECT_EQ(dropped.status, service::RequestStatus::kDeadlineExpired);
  EXPECT_TRUE(dropped.neighbors.empty());

  service::SearchRequest fresh;
  fresh.query.assign(queries.row(1), queries.row(1) + 64);
  fresh.SetDeadlineMs(60000.0);
  fresh.k = 5;
  const service::SearchResponse answered = svc.Search(std::move(fresh));
  ASSERT_EQ(answered.status, service::RequestStatus::kOk);
  EXPECT_TRUE(
      BitIdentical(answered.neighbors, fx.single->SearchKnn(queries.row(1), 5)));
  const service::MetricsSnapshot metrics = svc.Metrics();
  EXPECT_EQ(metrics.expired, 1u);
  EXPECT_EQ(metrics.completed, 1u);

  // Wrong-length queries are refused by the sharded generation too.
  service::SearchRequest invalid;
  invalid.query.assign(32, 0.0f);
  EXPECT_EQ(svc.Search(std::move(invalid)).status,
            service::RequestStatus::kInvalidArgument);
}

}  // namespace
}  // namespace shard
}  // namespace sofa
