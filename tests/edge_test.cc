// Edge-case and configuration-space tests across modules: contract-check
// death tests, extreme alphabet sizes, unusual engine configurations, and
// documented boundary behaviours.

#include <cstdio>
#include <filesystem>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "core/io.h"
#include "datagen/datasets.h"
#include "index/tree_index.h"
#include "quant/binning.h"
#include "quant/lbd.h"
#include "sax/sax_scheme.h"
#include "sfa/mcb.h"
#include "sfa/tlb.h"
#include "test_data.h"
#include "util/check.h"
#include "util/thread_pool.h"

namespace sofa {
namespace {

using testing_data::BruteForceKnn;
using testing_data::Noise;
using testing_data::SameDistances;

// ---------------------------------------------------------------- checks

TEST(CheckDeathTest, CheckFailureAborts) {
  EXPECT_DEATH(SOFA_CHECK(1 == 2) << "doom", "check failed");
}

TEST(CheckDeathTest, CheckComparatorsAbortWithContext) {
  EXPECT_DEATH(SOFA_CHECK_EQ(3, 4), "check failed");
  EXPECT_DEATH(SOFA_CHECK_LT(4, 3), "check failed");
}

TEST(CheckDeathTest, PassingChecksAreSilent) {
  SOFA_CHECK(true);
  SOFA_CHECK_EQ(1, 1);
  SOFA_CHECK_LE(1, 2);
}

// ----------------------------------------------------------- alphabet 2

TEST(SmallAlphabetTest, SaxAlphabetTwoStillLowerBounds) {
  Rng rng(1);
  sax::SaxScheme scheme(64, 8, 2);
  EXPECT_EQ(scheme.bits(), 1u);
  auto scratch = scheme.NewScratch();
  std::vector<float> projection(8);
  std::vector<std::uint8_t> word(8);
  float values[8];
  const Dataset data = Noise(50, 64, 2);
  const Dataset queries = Noise(10, 64, 3);
  for (std::size_t q = 0; q < queries.size(); ++q) {
    scheme.Project(queries.row(q), projection.data(), scratch.get());
    for (std::size_t c = 0; c < data.size(); ++c) {
      scheme.Symbolize(data.row(c), word.data(), scratch.get(), values);
      const float lbd_sq = quant::LbdSquared(
          scheme.table(), scheme.weights(), projection.data(), word.data());
      const float ed_sq =
          SquaredEuclidean(queries.row(q), data.row(c), 64);
      ASSERT_LE(lbd_sq, ed_sq * 1.0001f + 1e-4f);
    }
  }
}

TEST(SmallAlphabetTest, IndexWithAlphabetTwoIsExact) {
  ThreadPool pool(2);
  const Dataset data = Noise(1000, 64, 4);
  sax::SaxScheme scheme(64, 16, 2);
  index::IndexConfig config;
  config.leaf_capacity = 64;
  const index::TreeIndex index(&data, &scheme, config, &pool);
  const Dataset queries = Noise(5, 64, 5);
  for (std::size_t q = 0; q < queries.size(); ++q) {
    const auto expected = BruteForceKnn(data, queries.row(q), 3);
    ASSERT_TRUE(
        SameDistances(index.SearchKnn(queries.row(q), 3), expected));
  }
}

TEST(SmallAlphabetTest, SfaAlphabetTwoTrains) {
  const Dataset data = Noise(200, 96, 6);
  sfa::SfaConfig config;
  config.alphabet = 2;
  config.word_length = 8;
  config.sampling_ratio = 1.0;
  const auto scheme = sfa::TrainSfa(data, config);
  EXPECT_EQ(scheme->alphabet(), 2u);
  const Dataset queries = Noise(5, 96, 7);
  const double tlb = sfa::MeanTlb(*scheme, data, queries);
  EXPECT_GE(tlb, 0.0);
  EXPECT_LE(tlb, 1.0);
}

// ------------------------------------------------------ engine configs

TEST(EngineConfigTest, MoreQueuesThanThreadsIsExact) {
  ThreadPool pool(2);
  const Dataset data = Noise(3000, 128, 8);
  sfa::SfaConfig sfa_config;
  sfa_config.sampling_ratio = 0.2;
  const auto scheme = sfa::TrainSfa(data, sfa_config, &pool);
  index::IndexConfig config;
  config.num_threads = 2;
  config.num_queues = 7;
  config.leaf_capacity = 150;
  const index::TreeIndex index(&data, scheme.get(), config, &pool);
  const Dataset queries = Noise(6, 128, 9);
  for (std::size_t q = 0; q < queries.size(); ++q) {
    const auto expected = BruteForceKnn(data, queries.row(q), 5);
    ASSERT_TRUE(
        SameDistances(index.SearchKnn(queries.row(q), 5), expected));
  }
}

TEST(EngineConfigTest, MoreThreadsThanPoolWorkersIsExact) {
  // Oversubscription: config asks for more workers than the pool has.
  ThreadPool pool(2);
  const Dataset data = Noise(2000, 96, 10);
  sax::SaxScheme scheme(96, 16, 256);
  index::IndexConfig config;
  config.num_threads = 8;
  const index::TreeIndex index(&data, &scheme, config, &pool);
  const auto expected = BruteForceKnn(data, data.row(3), 4);
  EXPECT_TRUE(SameDistances(index.SearchKnn(data.row(3), 4), expected));
}

TEST(EngineConfigTest, FullRootFanoutOnSmallDataIsExact) {
  // The paper's constant: root_bits = 16 even when nearly every root child
  // holds a single series.
  ThreadPool pool(2);
  const Dataset data = Noise(2000, 128, 11);
  sax::SaxScheme scheme(128, 16, 256);
  index::IndexConfig config;
  config.root_bits = 16;
  const index::TreeIndex index(&data, &scheme, config, &pool);
  EXPECT_EQ(index.root_bits(), 16u);
  const Dataset queries = Noise(4, 128, 12);
  for (std::size_t q = 0; q < queries.size(); ++q) {
    const auto expected = BruteForceKnn(data, queries.row(q), 2);
    ASSERT_TRUE(
        SameDistances(index.SearchKnn(queries.row(q), 2), expected));
  }
}

TEST(EngineConfigTest, RoundRobinSplitIsExact) {
  ThreadPool pool(2);
  const Dataset data = Noise(3000, 128, 13);
  sfa::SfaConfig sfa_config;
  sfa_config.sampling_ratio = 0.2;
  const auto scheme = sfa::TrainSfa(data, sfa_config, &pool);
  index::IndexConfig config;
  config.split_policy = index::SplitPolicy::kRoundRobin;
  config.leaf_capacity = 100;
  const index::TreeIndex index(&data, scheme.get(), config, &pool);
  const Dataset queries = Noise(5, 128, 14);
  for (std::size_t q = 0; q < queries.size(); ++q) {
    const auto expected = BruteForceKnn(data, queries.row(q), 5);
    ASSERT_TRUE(
        SameDistances(index.SearchKnn(queries.row(q), 5), expected));
  }
}

// ------------------------------------------------------------ datagen

TEST(ClusterStructureTest, MixZeroGivesNoContrast) {
  // Without cluster structure, i.i.d. high-dimensional data concentrates:
  // the NN is nearly as far as the average — documented behaviour that
  // motivates the cluster templates.
  datagen::GenerateOptions options;
  options.count = 800;
  options.num_queries = 5;
  options.cluster_mix = 0.0;
  const LabeledDataset ds = datagen::MakeDatasetByName("SCEDC", options);
  for (std::size_t q = 0; q < ds.queries.size(); ++q) {
    const auto all = testing_data::BruteForceKnn(
        ds.data, ds.queries.row(q), ds.data.size());
    const float nn = all.front().distance;
    const float median = all[all.size() / 2].distance;
    // Seismic traces share event morphology, so the ratio is not 1.0 even
    // i.i.d.; clustered data drives it below 0.6 (next test).
    EXPECT_GT(nn / median, 0.7f) << "unexpected contrast at mix 0";
  }
}

TEST(ClusterStructureTest, DefaultMixGivesContrast) {
  datagen::GenerateOptions options;
  options.count = 800;
  options.num_queries = 5;
  const LabeledDataset ds = datagen::MakeDatasetByName("SCEDC", options);
  std::size_t contrasted = 0;
  for (std::size_t q = 0; q < ds.queries.size(); ++q) {
    const auto all = testing_data::BruteForceKnn(
        ds.data, ds.queries.row(q), ds.data.size());
    const float nn = all.front().distance;
    const float median = all[all.size() / 2].distance;
    contrasted += (nn / median < 0.6f) ? 1 : 0;
  }
  EXPECT_GE(contrasted, 4u);  // nearly every query has a near cluster
}

// ---------------------------------------------------------------- io

TEST(IoEdgeTest, EmptyFvecsFileYieldsNullopt) {
  const auto dir = std::filesystem::temp_directory_path();
  const std::string path = (dir / "sofa_empty.fvecs").string();
  {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fclose(f);
  }
  // An empty file has no dimension header at all: treated as unreadable.
  EXPECT_FALSE(io::ReadFvecs(path).has_value());
  std::remove(path.c_str());
}

TEST(IoEdgeTest, NegativeDimensionRejected) {
  const auto dir = std::filesystem::temp_directory_path();
  const std::string path = (dir / "sofa_negdim.fvecs").string();
  {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    const std::int32_t dim = -4;
    std::fwrite(&dim, sizeof(dim), 1, f);
    std::fclose(f);
  }
  EXPECT_FALSE(io::ReadFvecs(path).has_value());
  std::remove(path.c_str());
}

TEST(IoEdgeTest, InconsistentDimensionsRejected) {
  const auto dir = std::filesystem::temp_directory_path();
  const std::string path = (dir / "sofa_mixed.fvecs").string();
  {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    const float values[4] = {1, 2, 3, 4};
    std::int32_t dim = 4;
    std::fwrite(&dim, sizeof(dim), 1, f);
    std::fwrite(values, sizeof(float), 4, f);
    dim = 3;
    std::fwrite(&dim, sizeof(dim), 1, f);
    std::fwrite(values, sizeof(float), 3, f);
    std::fclose(f);
  }
  EXPECT_FALSE(io::ReadFvecs(path).has_value());
  std::remove(path.c_str());
}

// ------------------------------------------------------------- binning

TEST(BinningEdgeTest, SingleValueSampleEquiDepth) {
  const auto edges = quant::EquiDepthBreakpoints({5.0f}, 4);
  ASSERT_EQ(edges.size(), 3u);
  for (float e : edges) {
    EXPECT_EQ(e, 5.0f);
  }
  // Quantize still produces a legal symbol for anything.
  EXPECT_LT(quant::Quantize(-100.0f, edges.data(), 4), 4);
  EXPECT_LT(quant::Quantize(100.0f, edges.data(), 4), 4);
}

TEST(BinningEdgeTest, ExtremeValuesQuantizeToOuterBins) {
  const std::vector<float> edges = {-1.0f, 0.0f, 1.0f};
  constexpr float kMax = std::numeric_limits<float>::max();
  EXPECT_EQ(quant::Quantize(-kMax, edges.data(), 4), 0);
  EXPECT_EQ(quant::Quantize(kMax, edges.data(), 4), 3);
}

}  // namespace
}  // namespace sofa
