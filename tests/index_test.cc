// Tests for the tree index: structural build invariants, and above all the
// exactness property — the index answer equals brute force for every
// scheme, dataset profile, thread count and k.

#include <cmath>
#include <memory>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "index/tree_index.h"
#include "sax/isax.h"
#include "sax/sax_scheme.h"
#include "sfa/mcb.h"
#include "test_data.h"
#include "util/thread_pool.h"

namespace sofa {
namespace index {
namespace {

using testing_data::BruteForceKnn;
using testing_data::Duplicates;
using testing_data::Noise;
using testing_data::SameDistances;
using testing_data::Walk;

std::unique_ptr<quant::SummaryScheme> MakeSfaScheme(const Dataset& data,
                                                    ThreadPool* pool) {
  sfa::SfaConfig config;
  config.word_length = 16;
  config.alphabet = 256;
  config.sampling_ratio = 0.2;
  return sfa::TrainSfa(data, config, pool);
}

std::unique_ptr<quant::SummaryScheme> MakeSaxScheme(const Dataset& data) {
  return std::make_unique<sax::SaxScheme>(data.length(), 16, 256);
}

// ------------------------------------------------------- build invariants

class BuildInvariantsTest : public ::testing::Test {
 protected:
  void CheckInvariants(const TreeIndex& index) {
    const Dataset& data = index.data();
    const auto& scheme = index.scheme();
    const std::size_t l = scheme.word_length();
    const std::uint32_t bits = scheme.bits();

    // Every series in exactly one leaf; leaf words match node prefixes.
    std::set<std::uint32_t> seen;
    std::size_t total = 0;
    std::vector<const Node*> stack;
    for (const auto& [key, node] : index.subtrees()) {
      stack.push_back(node);
    }
    while (!stack.empty()) {
      const Node* node = stack.back();
      stack.pop_back();
      if (!node->is_leaf()) {
        ASSERT_NE(node->left, nullptr);
        ASSERT_NE(node->right, nullptr);
        ASSERT_LT(node->split_dim, l);
        // Children extend the parent prefix on the split dimension.
        const std::size_t d = node->split_dim;
        ASSERT_EQ(node->left->cards[d], node->cards[d] + 1);
        ASSERT_EQ(node->right->cards[d], node->cards[d] + 1);
        ASSERT_EQ(node->left->prefixes[d] >> 1, node->prefixes[d]);
        ASSERT_EQ(node->right->prefixes[d] >> 1, node->prefixes[d]);
        ASSERT_EQ(node->left->prefixes[d] & 1, 0);
        ASSERT_EQ(node->right->prefixes[d] & 1, 1);
        stack.push_back(node->left.get());
        stack.push_back(node->right.get());
        continue;
      }
      ASSERT_GT(node->leaf_size(), 0u) << "empty leaf";
      total += node->leaf_size();
      for (std::size_t i = 0; i < node->leaf_size(); ++i) {
        const std::uint32_t id = node->series_ids[i];
        ASSERT_TRUE(seen.insert(id).second) << "series " << id << " twice";
        // Stored word matches the dataset series.
        std::vector<std::uint8_t> expected(l);
        scheme.Symbolize(data.row(id), expected.data());
        for (std::size_t dim = 0; dim < l; ++dim) {
          ASSERT_EQ(node->words[i * l + dim], expected[dim]);
        }
        // And falls under the node's variable-cardinality summary.
        ASSERT_TRUE(sax::WordMatchesPrefix(node->words.data() + i * l,
                                           node->prefixes.data(),
                                           node->cards.data(), l, bits));
      }
    }
    ASSERT_EQ(total, data.size());
    ASSERT_EQ(seen.size(), data.size());
  }
};

TEST_F(BuildInvariantsTest, SfaIndexOnNoise) {
  ThreadPool pool(4);
  const Dataset data = Noise(3000, 128, 1);
  const auto scheme = MakeSfaScheme(data, &pool);
  IndexConfig config;
  config.leaf_capacity = 100;
  TreeIndex index(&data, scheme.get(), config, &pool);
  CheckInvariants(index);
}

TEST_F(BuildInvariantsTest, SaxIndexOnWalk) {
  ThreadPool pool(4);
  const Dataset data = Walk(3000, 128, 2);
  const auto scheme = MakeSaxScheme(data);
  IndexConfig config;
  config.leaf_capacity = 100;
  TreeIndex index(&data, scheme.get(), config, &pool);
  CheckInvariants(index);
}

TEST_F(BuildInvariantsTest, RoundRobinPolicy) {
  ThreadPool pool(2);
  const Dataset data = Noise(2000, 96, 3);
  const auto scheme = MakeSfaScheme(data, &pool);
  IndexConfig config;
  config.leaf_capacity = 64;
  config.split_policy = SplitPolicy::kRoundRobin;
  TreeIndex index(&data, scheme.get(), config, &pool);
  CheckInvariants(index);
}

TEST_F(BuildInvariantsTest, LeafCapacityRespectedWhenSplittable) {
  ThreadPool pool(4);
  const Dataset data = Noise(5000, 128, 4);
  const auto scheme = MakeSfaScheme(data, &pool);
  IndexConfig config;
  config.leaf_capacity = 200;
  TreeIndex index(&data, scheme.get(), config, &pool);
  std::vector<const Node*> stack;
  for (const auto& [key, node] : index.subtrees()) {
    stack.push_back(node);
  }
  while (!stack.empty()) {
    const Node* node = stack.back();
    stack.pop_back();
    if (node->is_leaf()) {
      // Distinct noise words are splittable down to capacity.
      EXPECT_LE(node->leaf_size(), config.leaf_capacity);
    } else {
      stack.push_back(node->left.get());
      stack.push_back(node->right.get());
    }
  }
}

TEST_F(BuildInvariantsTest, DuplicateHeavyDataBuildsOversizedLeaves) {
  ThreadPool pool(2);
  // 2000 copies drawn from only 5 distinct series: unsplittable beyond 5
  // groups, leaves must legally exceed capacity.
  const Dataset data = Duplicates(2000, 64, 5, 5);
  const auto scheme = MakeSaxScheme(data);
  IndexConfig config;
  config.leaf_capacity = 10;
  TreeIndex index(&data, scheme.get(), config, &pool);
  CheckInvariants(index);
  // Search still exact.
  const auto expected = BruteForceKnn(data, data.row(0), 3);
  const auto actual = index.SearchKnn(data.row(0), 3);
  EXPECT_TRUE(SameDistances(actual, expected));
}

TEST_F(BuildInvariantsTest, StatsAreConsistent) {
  ThreadPool pool(4);
  const Dataset data = Noise(4000, 128, 6);
  const auto scheme = MakeSfaScheme(data, &pool);
  IndexConfig config;
  config.leaf_capacity = 128;
  TreeIndex index(&data, scheme.get(), config, &pool);
  const TreeStats stats = index.ComputeStats();
  EXPECT_EQ(stats.total_series, data.size());
  EXPECT_EQ(stats.num_subtrees, index.subtrees().size());
  EXPECT_GT(stats.num_leaves, 0u);
  EXPECT_GE(stats.avg_leaf_size, 1.0);
  EXPECT_LE(stats.avg_depth, static_cast<double>(stats.max_depth));
  // Binary tree: inner = leaves - subtrees (every subtree is a binary tree).
  EXPECT_EQ(stats.num_inner + stats.num_subtrees, stats.num_leaves);
  const BuildStats& bs = index.build_stats();
  EXPECT_GE(bs.symbolize_seconds, 0.0);
  EXPECT_GE(bs.partition_seconds, 0.0);
  EXPECT_GE(bs.tree_seconds, 0.0);
  EXPECT_GE(bs.total_seconds, 0.0);
}

TEST_F(BuildInvariantsTest, EmptyDatasetBuildsAndAnswersEmpty) {
  ThreadPool pool(2);
  Dataset data(128);
  sax::SaxScheme scheme(128, 16, 256);
  TreeIndex index(&data, &scheme, IndexConfig{}, &pool);
  EXPECT_TRUE(index.subtrees().empty());
  std::vector<float> query(128, 0.0f);
  EXPECT_TRUE(index.SearchKnn(query.data(), 5).empty());
}

// Regression: root_child(key) used to index the dense fan-out array with
// no bounds check — an out-of-range key (externally derived, e.g. from a
// stale word length) was undefined behavior. It must answer "no child".
TEST_F(BuildInvariantsTest, RootChildOutOfRangeKeyIsNull) {
  ThreadPool pool(2);
  const Dataset data = Noise(500, 64, 21);
  sax::SaxScheme scheme(64, 16, 256);
  TreeIndex index(&data, &scheme, IndexConfig{}, &pool);
  const std::size_t fan_out = std::size_t{1} << index.root_bits();
  // Every in-range key answers (possibly null for empty children)...
  std::size_t non_null = 0;
  for (std::size_t key = 0; key < fan_out; ++key) {
    non_null +=
        index.root_child(static_cast<std::uint32_t>(key)) != nullptr ? 1 : 0;
  }
  EXPECT_EQ(non_null, index.subtrees().size());
  // ...and out-of-range keys answer null instead of reading out of bounds.
  EXPECT_EQ(index.root_child(static_cast<std::uint32_t>(fan_out)), nullptr);
  EXPECT_EQ(index.root_child(0xffffffffu), nullptr);
}

// ------------------------------------------------------------- exactness

enum class SchemeKind { kSfaEwVar, kSfaEd, kSax };
enum class DataKind { kNoise, kWalk };

struct ExactnessCase {
  SchemeKind scheme;
  DataKind data;
  std::size_t threads;
  std::size_t leaf_capacity;
};

class ExactnessTest : public ::testing::TestWithParam<ExactnessCase> {};

TEST_P(ExactnessTest, IndexMatchesBruteForce) {
  const ExactnessCase c = GetParam();
  ThreadPool pool(c.threads);
  const std::size_t n = 128;
  const Dataset data = c.data == DataKind::kNoise ? Noise(4000, n, 7)
                                                  : Walk(4000, n, 8);
  std::unique_ptr<quant::SummaryScheme> scheme;
  switch (c.scheme) {
    case SchemeKind::kSfaEwVar:
      scheme = MakeSfaScheme(data, &pool);
      break;
    case SchemeKind::kSfaEd: {
      sfa::SfaConfig config;
      config.word_length = 16;
      config.alphabet = 256;
      config.binning = quant::BinningMethod::kEquiDepth;
      config.sampling_ratio = 0.2;
      scheme = sfa::TrainSfa(data, config, &pool);
      break;
    }
    case SchemeKind::kSax:
      scheme = MakeSaxScheme(data);
      break;
  }
  IndexConfig config;
  config.leaf_capacity = c.leaf_capacity;
  config.num_threads = c.threads;
  TreeIndex index(&data, scheme.get(), config, &pool);

  const Dataset queries = c.data == DataKind::kNoise ? Noise(20, n, 9)
                                                     : Walk(20, n, 10);
  for (std::size_t q = 0; q < queries.size(); ++q) {
    const auto expected1 = BruteForceKnn(data, queries.row(q), 1);
    const Neighbor actual1 = index.Search1Nn(queries.row(q));
    ASSERT_TRUE(SameDistances({actual1}, expected1)) << "query " << q;

    const auto expected10 = BruteForceKnn(data, queries.row(q), 10);
    const auto actual10 = index.SearchKnn(queries.row(q), 10);
    ASSERT_TRUE(SameDistances(actual10, expected10)) << "query " << q;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ExactnessTest,
    ::testing::Values(
        ExactnessCase{SchemeKind::kSfaEwVar, DataKind::kNoise, 4, 200},
        ExactnessCase{SchemeKind::kSfaEwVar, DataKind::kWalk, 4, 200},
        ExactnessCase{SchemeKind::kSfaEwVar, DataKind::kNoise, 1, 200},
        ExactnessCase{SchemeKind::kSfaEwVar, DataKind::kNoise, 4, 50},
        ExactnessCase{SchemeKind::kSfaEd, DataKind::kNoise, 4, 200},
        ExactnessCase{SchemeKind::kSfaEd, DataKind::kWalk, 2, 100},
        ExactnessCase{SchemeKind::kSax, DataKind::kNoise, 4, 200},
        ExactnessCase{SchemeKind::kSax, DataKind::kWalk, 4, 200},
        ExactnessCase{SchemeKind::kSax, DataKind::kWalk, 1, 50}));

TEST(IndexSearchTest, MemberQueryFindsItself) {
  ThreadPool pool(4);
  const Dataset data = Noise(2000, 96, 11);
  const auto scheme = MakeSfaScheme(data, &pool);
  IndexConfig config;
  config.leaf_capacity = 100;
  TreeIndex index(&data, scheme.get(), config, &pool);
  for (const std::size_t id : {0u, 500u, 1999u}) {
    const Neighbor nn = index.Search1Nn(data.row(id));
    EXPECT_NEAR(nn.distance, 0.0f, 1e-3f);
  }
}

TEST(IndexSearchTest, KnnIsSortedAscending) {
  ThreadPool pool(4);
  const Dataset data = Noise(3000, 128, 12);
  const auto scheme = MakeSfaScheme(data, &pool);
  TreeIndex index(&data, scheme.get(), IndexConfig{}, &pool);
  const Dataset queries = Noise(5, 128, 13);
  for (std::size_t q = 0; q < queries.size(); ++q) {
    const auto result = index.SearchKnn(queries.row(q), 25);
    ASSERT_EQ(result.size(), 25u);
    for (std::size_t i = 1; i < result.size(); ++i) {
      ASSERT_GE(result[i].distance, result[i - 1].distance);
    }
    // No duplicate ids.
    std::set<std::uint32_t> ids;
    for (const Neighbor& nb : result) {
      ASSERT_TRUE(ids.insert(nb.id).second) << "duplicate id " << nb.id;
    }
  }
}

TEST(IndexSearchTest, KLargerThanCollectionClamps) {
  ThreadPool pool(2);
  const Dataset data = Noise(50, 64, 14);
  const auto scheme = MakeSaxScheme(data);
  TreeIndex index(&data, scheme.get(), IndexConfig{}, &pool);
  const auto result = index.SearchKnn(data.row(0), 500);
  EXPECT_EQ(result.size(), 50u);
  const auto expected = BruteForceKnn(data, data.row(0), 50);
  EXPECT_TRUE(SameDistances(result, expected));
}

TEST(IndexSearchTest, RepeatedQueriesAreDeterministic) {
  ThreadPool pool(4);
  const Dataset data = Noise(3000, 128, 15);
  const auto scheme = MakeSfaScheme(data, &pool);
  TreeIndex index(&data, scheme.get(), IndexConfig{}, &pool);
  const Dataset queries = Noise(3, 128, 16);
  for (std::size_t q = 0; q < queries.size(); ++q) {
    const auto first = index.SearchKnn(queries.row(q), 10);
    const auto second = index.SearchKnn(queries.row(q), 10);
    ASSERT_EQ(first.size(), second.size());
    for (std::size_t i = 0; i < first.size(); ++i) {
      ASSERT_EQ(first[i].distance, second[i].distance);
    }
  }
}

TEST(IndexSearchTest, ThreadCountsAgree) {
  // The answer must be identical (in distances) regardless of parallelism.
  const Dataset data = Noise(4000, 128, 17);
  const Dataset queries = Noise(10, 128, 18);
  std::vector<std::vector<float>> distances_by_threads;
  for (const std::size_t threads : {1u, 2u, 4u}) {
    ThreadPool pool(threads);
    const auto scheme = MakeSfaScheme(data, &pool);
    IndexConfig config;
    config.num_threads = threads;
    TreeIndex index(&data, scheme.get(), config, &pool);
    std::vector<float> distances;
    for (std::size_t q = 0; q < queries.size(); ++q) {
      for (const Neighbor& nb : index.SearchKnn(queries.row(q), 5)) {
        distances.push_back(nb.distance);
      }
    }
    distances_by_threads.push_back(std::move(distances));
  }
  for (std::size_t v = 1; v < distances_by_threads.size(); ++v) {
    ASSERT_EQ(distances_by_threads[v].size(), distances_by_threads[0].size());
    for (std::size_t i = 0; i < distances_by_threads[v].size(); ++i) {
      ASSERT_NEAR(distances_by_threads[v][i], distances_by_threads[0][i],
                  2e-3f);
    }
  }
}

TEST(IndexSearchTest, SingleSeriesCollection) {
  ThreadPool pool(2);
  const Dataset data = Noise(1, 64, 19);
  const auto scheme = MakeSaxScheme(data);
  TreeIndex index(&data, scheme.get(), IndexConfig{}, &pool);
  const Dataset queries = Noise(1, 64, 20);
  const Neighbor nn = index.Search1Nn(queries.row(0));
  EXPECT_EQ(nn.id, 0u);
  const auto expected = BruteForceKnn(data, queries.row(0), 1);
  EXPECT_NEAR(nn.distance, expected[0].distance, 1e-4f);
}

TEST(IndexSearchTest, NonPowerOfTwoSeriesLength) {
  ThreadPool pool(4);
  const Dataset data = Noise(2000, 100, 21);
  sfa::SfaConfig config;
  config.word_length = 16;
  config.alphabet = 256;
  config.sampling_ratio = 0.5;
  const auto scheme = sfa::TrainSfa(data, config, &pool);
  TreeIndex index(&data, scheme.get(), IndexConfig{}, &pool);
  const Dataset queries = Noise(10, 100, 22);
  for (std::size_t q = 0; q < queries.size(); ++q) {
    const auto expected = BruteForceKnn(data, queries.row(q), 5);
    const auto actual = index.SearchKnn(queries.row(q), 5);
    ASSERT_TRUE(SameDistances(actual, expected)) << "query " << q;
  }
}

TEST(IndexSearchTest, RootBitsClampToWordLength) {
  ThreadPool pool(2);
  const Dataset data = Noise(1000, 64, 23);
  sax::SaxScheme scheme(64, 8, 256);  // 8 dims -> at most 256 root children
  IndexConfig config;
  config.root_bits = 16;  // requested above the word length
  TreeIndex index(&data, &scheme, config, &pool);
  EXPECT_EQ(index.root_bits(), 8u);
  const auto expected = BruteForceKnn(data, data.row(7), 3);
  const auto actual = index.SearchKnn(data.row(7), 3);
  EXPECT_TRUE(SameDistances(actual, expected));
}

TEST(IndexSearchTest, AutoRootBitsAdaptToCollectionSize) {
  ThreadPool pool(2);
  const Dataset small = Noise(100, 64, 24);
  sax::SaxScheme scheme(64, 16, 256);
  IndexConfig config;
  config.leaf_capacity = 100;
  TreeIndex small_index(&small, &scheme, config, &pool);
  EXPECT_EQ(small_index.root_bits(), 1u);
  const Dataset larger = Noise(4000, 64, 25);
  TreeIndex larger_index(&larger, &scheme, config, &pool);
  // 2^bits * 100 >= 4000 -> bits >= 6.
  EXPECT_GE(larger_index.root_bits(), 6u);
  // Both remain exact.
  const auto expected = BruteForceKnn(larger, larger.row(3), 5);
  EXPECT_TRUE(SameDistances(larger_index.SearchKnn(larger.row(3), 5),
                            expected));
}

}  // namespace
}  // namespace index
}  // namespace sofa
