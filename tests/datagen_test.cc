// Tests for the dataset substrate: determinism, normalization, the
// per-dataset spectral profiles that drive the paper's results, and the
// UCR-like archive.

#include <cmath>
#include <complex>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "core/znorm.h"
#include "datagen/datasets.h"
#include "datagen/seismic.h"
#include "datagen/spectral.h"
#include "datagen/ucr_archive.h"
#include "datagen/vector_data.h"
#include "dft/real_dft.h"
#include "util/stats.h"
#include "util/thread_pool.h"

namespace sofa {
namespace datagen {
namespace {

// Mean spectral centroid (power-weighted mean normalized frequency) over a
// dataset — the "how high-frequency is this data" statistic.
double SpectralCentroid(const Dataset& data, std::size_t max_series = 200) {
  const std::size_t n = data.length();
  dft::RealDftPlan plan(n);
  dft::RealDftPlan::Scratch scratch;
  std::vector<std::complex<float>> coeffs(plan.num_coefficients());
  double weighted = 0.0;
  double total = 0.0;
  const std::size_t count = std::min(max_series, data.size());
  for (std::size_t i = 0; i < count; ++i) {
    plan.Transform(data.row(i), coeffs.data(), &scratch);
    for (std::size_t k = 1; k < plan.num_coefficients(); ++k) {
      const double power = std::norm(std::complex<double>(
          coeffs[k].real(), coeffs[k].imag()));
      const double f = static_cast<double>(k) / static_cast<double>(n);
      weighted += f * power;
      total += power;
    }
  }
  return total > 0.0 ? weighted / total : 0.0;
}

// ---------------------------------------------------------------- spectral

TEST(SpectralShaperTest, OutputIsZNormalized) {
  SpectralShaper shaper(128);
  Rng rng(1);
  std::vector<float> series(128);
  shaper.Generate(FlatEnvelope(), &rng, series.data());
  const MeanStd ms = ComputeMeanStd(series.data(), 128);
  EXPECT_NEAR(ms.mean, 0.0f, 1e-5f);
  EXPECT_NEAR(ms.std, 1.0f, 1e-4f);
}

TEST(SpectralShaperTest, BandPassConcentratesEnergy) {
  const std::size_t n = 256;
  SpectralShaper shaper(n);
  Rng rng(2);
  Dataset ds(n);
  std::vector<float> series(n);
  for (int i = 0; i < 50; ++i) {
    shaper.Generate(BandPassEnvelope(0.3, 0.02), &rng, series.data());
    ds.Append(series.data());
  }
  EXPECT_NEAR(SpectralCentroid(ds), 0.3, 0.03);
}

TEST(SpectralShaperTest, PowerLawSkewsLow) {
  const std::size_t n = 256;
  SpectralShaper shaper(n);
  Rng rng(3);
  Dataset red(n);
  Dataset white(n);
  std::vector<float> series(n);
  for (int i = 0; i < 50; ++i) {
    shaper.Generate(PowerLawEnvelope(2.0), &rng, series.data());
    red.Append(series.data());
    shaper.Generate(FlatEnvelope(), &rng, series.data());
    white.Append(series.data());
  }
  EXPECT_LT(SpectralCentroid(red), 0.1);
  EXPECT_NEAR(SpectralCentroid(white), 0.25, 0.05);
}

TEST(SpectralShaperTest, HighPassSkewsHigh) {
  const std::size_t n = 128;
  SpectralShaper shaper(n);
  Rng rng(4);
  Dataset ds(n);
  std::vector<float> series(n);
  for (int i = 0; i < 50; ++i) {
    shaper.Generate(HighPassEnvelope(0.3, 0.03), &rng, series.data());
    ds.Append(series.data());
  }
  EXPECT_GT(SpectralCentroid(ds), 0.3);
}

TEST(SpectralShaperTest, NonPowerOfTwoLengths) {
  for (const std::size_t n : {96u, 100u}) {
    SpectralShaper shaper(n);
    Rng rng(5);
    std::vector<float> series(n);
    shaper.Generate(PowerLawEnvelope(1.0), &rng, series.data());
    const MeanStd ms = ComputeMeanStd(series.data(), n);
    EXPECT_NEAR(ms.std, 1.0f, 1e-3f);
  }
}

// ---------------------------------------------------------------- seismic

TEST(SeismicTest, RickerWaveletShape) {
  float wavelet[21];
  RickerWavelet(0.25, 10, wavelet);
  // Peak of 1 at the center, symmetric, negative side lobes.
  EXPECT_FLOAT_EQ(wavelet[10], 1.0f);
  for (int i = 0; i < 10; ++i) {
    EXPECT_NEAR(wavelet[i], wavelet[20 - i], 1e-6f);
  }
  EXPECT_LT(wavelet[13], 0.0f);  // side lobe
}

TEST(SeismicTest, TraceIsZNormalized) {
  SeismicParams params;
  SeismicGenerator gen(256, params);
  Rng rng(6);
  std::vector<float> trace(256);
  gen.Generate(&rng, false, trace.data());
  const MeanStd ms = ComputeMeanStd(trace.data(), 256);
  EXPECT_NEAR(ms.mean, 0.0f, 1e-5f);
  EXPECT_NEAR(ms.std, 1.0f, 1e-4f);
}

TEST(SeismicTest, DominantFrequencyControlsSpectrum) {
  Dataset low(256);
  Dataset high(256);
  std::vector<float> trace(256);
  {
    SeismicParams p;
    p.dominant_freq = 0.05;
    SeismicGenerator gen(256, p);
    Rng rng(7);
    for (int i = 0; i < 60; ++i) {
      gen.Generate(&rng, false, trace.data());
      low.Append(trace.data());
    }
  }
  {
    SeismicParams p;
    p.dominant_freq = 0.38;
    p.noise_beta = 0.2;
    SeismicGenerator gen(256, p);
    Rng rng(8);
    for (int i = 0; i < 60; ++i) {
      gen.Generate(&rng, false, trace.data());
      high.Append(trace.data());
    }
  }
  EXPECT_GT(SpectralCentroid(high), SpectralCentroid(low) + 0.1);
}

TEST(SeismicTest, AlignedOnsetIsDeterministicPosition) {
  // With aligned_onset the energy burst must sit at the same place in
  // every trace; measure via the position of the maximum |amplitude|.
  SeismicParams p;
  p.noise_level = 0.05;  // make the arrival dominate
  SeismicGenerator gen(256, p);
  Rng rng(9);
  std::vector<float> trace(256);
  std::vector<double> peak_positions;
  for (int i = 0; i < 20; ++i) {
    gen.Generate(&rng, true, trace.data());
    std::size_t arg_max = 0;
    for (std::size_t t = 1; t < 256; ++t) {
      if (std::fabs(trace[t]) > std::fabs(trace[arg_max])) {
        arg_max = t;
      }
    }
    peak_positions.push_back(static_cast<double>(arg_max));
  }
  // S arrival (the strongest) varies with its random delay but stays in a
  // narrow band after the fixed P onset at 0.25·n = 64.
  EXPECT_GT(stats::Min(peak_positions), 60.0);
  EXPECT_LT(stats::Max(peak_positions), 160.0);
}

// ---------------------------------------------------------------- vectors

TEST(VectorDataTest, SiftLikeIsZNormalizedAndSkewed) {
  SiftLikeGenerator gen(128, 8);
  Rng rng(10);
  std::vector<float> v(128);
  std::vector<double> all_values;
  for (int i = 0; i < 50; ++i) {
    gen.Generate(&rng, v.data());
    const MeanStd ms = ComputeMeanStd(v.data(), 128);
    ASSERT_NEAR(ms.mean, 0.0f, 1e-5f);
    ASSERT_NEAR(ms.std, 1.0f, 1e-4f);
    for (float x : v) {
      all_values.push_back(x);
    }
  }
  // Right-skewed like real SIFT histograms (Fig. 1 bottom, SIFT1b panel).
  EXPECT_GT(stats::Skewness(all_values), 0.5);
}

TEST(VectorDataTest, SiftLikeHasHighFrequencyVariance) {
  SiftLikeGenerator gen(128, 8);
  Rng rng(11);
  Dataset ds(128);
  std::vector<float> v(128);
  for (int i = 0; i < 60; ++i) {
    gen.Generate(&rng, v.data());
    ds.Append(v.data());
  }
  EXPECT_GT(SpectralCentroid(ds), 0.15);
}

TEST(VectorDataTest, DeepLikeIsSmooth) {
  DeepLikeGenerator gen(96, 24, 42);
  Rng rng(12);
  Dataset ds(96);
  std::vector<float> v(96);
  for (int i = 0; i < 60; ++i) {
    gen.Generate(&rng, v.data());
    ds.Append(v.data());
  }
  EXPECT_LT(SpectralCentroid(ds), 0.12);
}

TEST(VectorDataTest, DeepLikeMixingFixedPerDatasetSeed) {
  DeepLikeGenerator a(96, 8, 7);
  DeepLikeGenerator b(96, 8, 7);
  Rng rng_a(13);
  Rng rng_b(13);
  std::vector<float> va(96);
  std::vector<float> vb(96);
  a.Generate(&rng_a, va.data());
  b.Generate(&rng_b, vb.data());
  for (std::size_t i = 0; i < 96; ++i) {
    ASSERT_EQ(va[i], vb[i]);
  }
}

// ---------------------------------------------------------------- registry

TEST(DatasetRegistryTest, Has17DatasetsMatchingTableI) {
  const auto& specs = AllDatasetSpecs();
  ASSERT_EQ(specs.size(), 17u);
  std::uint64_t total = 0;
  for (const auto& spec : specs) {
    EXPECT_GE(spec.series_length, 96u);
    EXPECT_LE(spec.series_length, 256u);
    total += spec.paper_count;
  }
  // Table I: 1,017,586,504 series in total.
  EXPECT_EQ(total, 1017586504ULL);
}

TEST(DatasetRegistryTest, FindByNameCaseInsensitive) {
  EXPECT_NE(FindDatasetSpec("LenDB"), nullptr);
  EXPECT_NE(FindDatasetSpec("lendb"), nullptr);
  EXPECT_NE(FindDatasetSpec("SIFT1B"), nullptr);
  EXPECT_EQ(FindDatasetSpec("nope"), nullptr);
}

TEST(DatasetRegistryTest, SeriesLengthsMatchTableI) {
  EXPECT_EQ(FindDatasetSpec("BigANN")->series_length, 100u);
  EXPECT_EQ(FindDatasetSpec("Deep1b")->series_length, 96u);
  EXPECT_EQ(FindDatasetSpec("SALD")->series_length, 128u);
  EXPECT_EQ(FindDatasetSpec("SIFT1b")->series_length, 128u);
  EXPECT_EQ(FindDatasetSpec("SCEDC")->series_length, 256u);
}

TEST(DatasetRegistryTest, GenerationDeterministicAcrossThreadCounts) {
  const DatasetSpec* spec = FindDatasetSpec("Iquique");
  GenerateOptions options;
  options.count = 100;
  options.num_queries = 10;
  const LabeledDataset serial = MakeDataset(*spec, options);
  ThreadPool pool(4);
  const LabeledDataset parallel = MakeDataset(*spec, options, &pool);
  ASSERT_EQ(serial.data.size(), parallel.data.size());
  for (std::size_t i = 0; i < serial.data.size(); ++i) {
    for (std::size_t t = 0; t < serial.data.length(); ++t) {
      ASSERT_EQ(serial.data.row(i)[t], parallel.data.row(i)[t]);
    }
  }
  for (std::size_t i = 0; i < serial.queries.size(); ++i) {
    for (std::size_t t = 0; t < serial.queries.length(); ++t) {
      ASSERT_EQ(serial.queries.row(i)[t], parallel.queries.row(i)[t]);
    }
  }
}

TEST(DatasetRegistryTest, QueriesDifferFromIndexedData) {
  GenerateOptions options;
  options.count = 50;
  options.num_queries = 50;
  const LabeledDataset ds = MakeDatasetByName("ETHZ", options);
  // Same seed space would produce identical rows; query space is disjoint.
  for (std::size_t t = 0; t < ds.data.length(); ++t) {
    if (ds.data.row(0)[t] != ds.queries.row(0)[t]) {
      return;
    }
  }
  FAIL() << "query 0 identical to series 0";
}

TEST(DatasetRegistryTest, HighFrequencyDatasetsHaveHigherCentroid) {
  // The designed spread behind Figs. 12/13: LenDB ≫ PNW in frequency.
  GenerateOptions options;
  options.count = 100;
  options.num_queries = 2;
  const auto lendb = MakeDatasetByName("LenDB", options);
  const auto pnw = MakeDatasetByName("PNW", options);
  EXPECT_GT(SpectralCentroid(lendb.data), SpectralCentroid(pnw.data) + 0.1);
}

TEST(DatasetRegistryTest, AllDatasetsGenerateZNormalizedSeries) {
  GenerateOptions options;
  options.count = 5;
  options.num_queries = 2;
  for (const auto& spec : AllDatasetSpecs()) {
    const LabeledDataset ds = MakeDataset(spec, options);
    ASSERT_EQ(ds.data.size(), 5u);
    ASSERT_EQ(ds.queries.size(), 2u);
    for (std::size_t i = 0; i < ds.data.size(); ++i) {
      const MeanStd ms = ComputeMeanStd(ds.data.row(i), ds.data.length());
      ASSERT_NEAR(ms.mean, 0.0f, 1e-4f) << spec.name;
      ASSERT_NEAR(ms.std, 1.0f, 1e-3f) << spec.name;
    }
  }
}

// ---------------------------------------------------------------- archive

TEST(UcrArchiveTest, Generates24Datasets) {
  UcrArchiveOptions options;
  options.train_per_dataset = 10;
  options.test_per_dataset = 4;
  const auto archive = MakeUcrArchiveLike(options);
  ASSERT_EQ(archive.size(), 24u);
  std::set<std::string> names;
  for (const auto& ds : archive) {
    EXPECT_EQ(ds.train.size(), 10u);
    EXPECT_EQ(ds.test.size(), 4u);
    EXPECT_EQ(ds.train.length(), ds.test.length());
    EXPECT_TRUE(names.insert(ds.name).second) << "duplicate " << ds.name;
  }
}

TEST(UcrArchiveTest, SeriesAreZNormalized) {
  UcrArchiveOptions options;
  options.train_per_dataset = 5;
  options.test_per_dataset = 2;
  for (const auto& ds : MakeUcrArchiveLike(options)) {
    for (std::size_t i = 0; i < ds.train.size(); ++i) {
      const MeanStd ms = ComputeMeanStd(ds.train.row(i), ds.train.length());
      ASSERT_NEAR(ms.mean, 0.0f, 1e-4f) << ds.name;
      // Constant series are legal (flat classes) but rare.
      ASSERT_LE(ms.std, 1.01f) << ds.name;
    }
  }
}

TEST(UcrArchiveTest, DeterministicPerSeed) {
  UcrArchiveOptions options;
  options.train_per_dataset = 3;
  options.test_per_dataset = 2;
  const auto a = MakeUcrArchiveLike(options);
  const auto b = MakeUcrArchiveLike(options);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t d = 0; d < a.size(); ++d) {
    for (std::size_t i = 0; i < a[d].train.size(); ++i) {
      for (std::size_t t = 0; t < a[d].train.length(); ++t) {
        ASSERT_EQ(a[d].train.row(i)[t], b[d].train.row(i)[t]);
      }
    }
  }
}

TEST(UcrArchiveTest, LengthsVaryAcrossArchive) {
  UcrArchiveOptions options;
  options.train_per_dataset = 2;
  options.test_per_dataset = 1;
  std::set<std::size_t> lengths;
  for (const auto& ds : MakeUcrArchiveLike(options)) {
    lengths.insert(ds.train.length());
  }
  EXPECT_GE(lengths.size(), 3u);
}

}  // namespace
}  // namespace datagen
}  // namespace sofa
