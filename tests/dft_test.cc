// Tests for the DFT substrate: FFT vs the naive O(n²) oracle, Bluestein for
// awkward lengths, inverse round trips, and the Parseval normalization that
// underpins the DFT lower bound (paper Eq. 1).

#include <cmath>
#include <complex>
#include <vector>

#include <gtest/gtest.h>

#include "core/znorm.h"
#include "dft/fft.h"
#include "dft/naive_dft.h"
#include "dft/real_dft.h"
#include "util/rng.h"

namespace sofa {
namespace dft {
namespace {

std::vector<float> RandomSeries(Rng* rng, std::size_t n) {
  std::vector<float> v(n);
  for (auto& x : v) {
    x = static_cast<float>(rng->Gaussian());
  }
  return v;
}

// ---------------------------------------------------------------- helpers

TEST(FftHelpersTest, IsPowerOfTwo) {
  EXPECT_TRUE(IsPowerOfTwo(1));
  EXPECT_TRUE(IsPowerOfTwo(2));
  EXPECT_TRUE(IsPowerOfTwo(256));
  EXPECT_FALSE(IsPowerOfTwo(0));
  EXPECT_FALSE(IsPowerOfTwo(3));
  EXPECT_FALSE(IsPowerOfTwo(96));
  EXPECT_FALSE(IsPowerOfTwo(100));
}

TEST(FftHelpersTest, NextPowerOfTwo) {
  EXPECT_EQ(NextPowerOfTwo(1), 1u);
  EXPECT_EQ(NextPowerOfTwo(2), 2u);
  EXPECT_EQ(NextPowerOfTwo(3), 4u);
  EXPECT_EQ(NextPowerOfTwo(96), 128u);
  EXPECT_EQ(NextPowerOfTwo(129), 256u);
}

// ---------------------------------------------------------------- Fft

class FftLengthTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FftLengthTest, ForwardMatchesNaive) {
  const std::size_t n = GetParam();
  Rng rng(n);
  const auto series = RandomSeries(&rng, n);

  std::vector<std::complex<double>> expected(n);
  NaiveDft(series.data(), n, expected.data());

  std::vector<std::complex<double>> actual(n);
  for (std::size_t t = 0; t < n; ++t) {
    actual[t] = {static_cast<double>(series[t]), 0.0};
  }
  Fft fft(n);
  Fft::Scratch scratch;
  fft.Forward(actual.data(), &scratch);

  for (std::size_t k = 0; k < n; ++k) {
    ASSERT_NEAR(actual[k].real(), expected[k].real(), 1e-7 * (n + 1))
        << "k=" << k;
    ASSERT_NEAR(actual[k].imag(), expected[k].imag(), 1e-7 * (n + 1))
        << "k=" << k;
  }
}

TEST_P(FftLengthTest, InverseRoundTrip) {
  const std::size_t n = GetParam();
  Rng rng(n + 77);
  std::vector<std::complex<double>> data(n);
  for (auto& z : data) {
    z = {rng.Gaussian(), rng.Gaussian()};
  }
  const auto original = data;
  Fft fft(n);
  Fft::Scratch scratch;
  fft.Forward(data.data(), &scratch);
  fft.Inverse(data.data(), &scratch);
  for (std::size_t t = 0; t < n; ++t) {
    ASSERT_NEAR(data[t].real(), original[t].real(), 1e-9 * (n + 1));
    ASSERT_NEAR(data[t].imag(), original[t].imag(), 1e-9 * (n + 1));
  }
}

INSTANTIATE_TEST_SUITE_P(Lengths, FftLengthTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 16, 31, 32,
                                           45, 64, 96, 97, 100, 128, 255,
                                           256));

TEST(FftTest, LinearityHolds) {
  const std::size_t n = 64;
  Rng rng(123);
  std::vector<std::complex<double>> a(n);
  std::vector<std::complex<double>> b(n);
  std::vector<std::complex<double>> combo(n);
  for (std::size_t i = 0; i < n; ++i) {
    a[i] = {rng.Gaussian(), rng.Gaussian()};
    b[i] = {rng.Gaussian(), rng.Gaussian()};
    combo[i] = 2.0 * a[i] + 3.0 * b[i];
  }
  Fft fft(n);
  Fft::Scratch scratch;
  fft.Forward(a.data(), &scratch);
  fft.Forward(b.data(), &scratch);
  fft.Forward(combo.data(), &scratch);
  for (std::size_t k = 0; k < n; ++k) {
    const std::complex<double> expected = 2.0 * a[k] + 3.0 * b[k];
    ASSERT_NEAR(combo[k].real(), expected.real(), 1e-8);
    ASSERT_NEAR(combo[k].imag(), expected.imag(), 1e-8);
  }
}

TEST(FftTest, ImpulseHasFlatSpectrum) {
  const std::size_t n = 128;
  std::vector<std::complex<double>> data(n, {0.0, 0.0});
  data[0] = {1.0, 0.0};
  Fft fft(n);
  Fft::Scratch scratch;
  fft.Forward(data.data(), &scratch);
  for (std::size_t k = 0; k < n; ++k) {
    ASSERT_NEAR(data[k].real(), 1.0, 1e-10);
    ASSERT_NEAR(data[k].imag(), 0.0, 1e-10);
  }
}

TEST(FftTest, PlanIsReusableAcrossTransforms) {
  const std::size_t n = 96;  // Bluestein path
  Fft fft(n);
  Fft::Scratch scratch;
  Rng rng(9);
  for (int round = 0; round < 5; ++round) {
    const auto series = RandomSeries(&rng, n);
    std::vector<std::complex<double>> expected(n);
    NaiveDft(series.data(), n, expected.data());
    std::vector<std::complex<double>> actual(n);
    for (std::size_t t = 0; t < n; ++t) {
      actual[t] = {static_cast<double>(series[t]), 0.0};
    }
    fft.Forward(actual.data(), &scratch);
    for (std::size_t k = 0; k < n; ++k) {
      ASSERT_NEAR(std::abs(actual[k] - expected[k]), 0.0, 1e-7);
    }
  }
}

// ---------------------------------------------------------------- RealDft

class RealDftLengthTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(RealDftLengthTest, MatchesNaiveDft) {
  const std::size_t n = GetParam();
  Rng rng(n + 5);
  const auto series = RandomSeries(&rng, n);

  std::vector<std::complex<double>> naive(n);
  NaiveDft(series.data(), n, naive.data());
  const double scale = 1.0 / std::sqrt(static_cast<double>(n));

  RealDftPlan plan(n);
  std::vector<std::complex<float>> coeffs(plan.num_coefficients());
  RealDftPlan::Scratch scratch;
  plan.Transform(series.data(), coeffs.data(), &scratch);

  for (std::size_t k = 0; k < plan.num_coefficients(); ++k) {
    ASSERT_NEAR(coeffs[k].real(), naive[k].real() * scale, 2e-4) << "k=" << k;
    ASSERT_NEAR(coeffs[k].imag(), naive[k].imag() * scale, 2e-4) << "k=" << k;
  }
}

TEST_P(RealDftLengthTest, ParsevalHolds) {
  // Σ x² == |c0|² + 2Σ|ck|² (+ |c_{n/2}|² once for even n): the identity
  // that makes truncated coefficient distances a lower bound of ED.
  const std::size_t n = GetParam();
  Rng rng(n + 6);
  const auto series = RandomSeries(&rng, n);

  RealDftPlan plan(n);
  std::vector<std::complex<float>> coeffs(plan.num_coefficients());
  plan.Transform(series.data(), coeffs.data());

  double time_energy = 0.0;
  for (float x : series) {
    time_energy += static_cast<double>(x) * x;
  }
  double freq_energy = 0.0;
  for (std::size_t k = 0; k < plan.num_coefficients(); ++k) {
    const double mag_sq = static_cast<double>(coeffs[k].real()) * coeffs[k].real() +
                          static_cast<double>(coeffs[k].imag()) * coeffs[k].imag();
    freq_energy += plan.IsUnpaired(k) ? mag_sq : 2.0 * mag_sq;
  }
  EXPECT_NEAR(freq_energy, time_energy, 1e-3 * (time_energy + 1.0));
}

TEST_P(RealDftLengthTest, InverseRoundTrip) {
  const std::size_t n = GetParam();
  Rng rng(n + 7);
  const auto series = RandomSeries(&rng, n);

  RealDftPlan plan(n);
  std::vector<std::complex<float>> coeffs(plan.num_coefficients());
  RealDftPlan::Scratch scratch;
  plan.Transform(series.data(), coeffs.data(), &scratch);

  std::vector<float> restored(n);
  plan.InverseTransform(coeffs.data(), restored.data(), &scratch);
  for (std::size_t t = 0; t < n; ++t) {
    ASSERT_NEAR(restored[t], series[t], 1e-3) << "t=" << t;
  }
}

INSTANTIATE_TEST_SUITE_P(Lengths, RealDftLengthTest,
                         ::testing::Values(2, 3, 4, 8, 16, 31, 32, 96, 97, 100,
                                           128, 256));

TEST(RealDftTest, DcCoefficientIsScaledMean) {
  const std::size_t n = 64;
  std::vector<float> series(n, 2.0f);
  RealDftPlan plan(n);
  std::vector<std::complex<float>> coeffs(plan.num_coefficients());
  plan.Transform(series.data(), coeffs.data());
  // c_0 = (Σ x)/√n = 2n/√n = 2√n.
  EXPECT_NEAR(coeffs[0].real(), 2.0f * std::sqrt(static_cast<float>(n)),
              1e-4f);
  EXPECT_NEAR(coeffs[0].imag(), 0.0f, 1e-5f);
}

TEST(RealDftTest, ZNormalizedSeriesHasZeroDc) {
  Rng rng(10);
  const std::size_t n = 100;
  auto series = RandomSeries(&rng, n);
  ZNormalize(series.data(), n);
  RealDftPlan plan(n);
  std::vector<std::complex<float>> coeffs(plan.num_coefficients());
  plan.Transform(series.data(), coeffs.data());
  EXPECT_NEAR(coeffs[0].real(), 0.0f, 1e-4f);
  EXPECT_NEAR(coeffs[0].imag(), 0.0f, 1e-4f);
}

TEST(RealDftTest, IsUnpairedFlagsDcAndNyquist) {
  RealDftPlan even(64);
  EXPECT_TRUE(even.IsUnpaired(0));
  EXPECT_TRUE(even.IsUnpaired(32));
  EXPECT_FALSE(even.IsUnpaired(1));
  EXPECT_FALSE(even.IsUnpaired(31));
  RealDftPlan odd(97);
  EXPECT_TRUE(odd.IsUnpaired(0));
  EXPECT_FALSE(odd.IsUnpaired(48));  // no Nyquist bin for odd n
}

TEST(RealDftTest, NumCoefficients) {
  EXPECT_EQ(RealDftPlan(256).num_coefficients(), 129u);
  EXPECT_EQ(RealDftPlan(100).num_coefficients(), 51u);
  EXPECT_EQ(RealDftPlan(97).num_coefficients(), 49u);
}

TEST(RealDftTest, PureCosineConcentratesEnergy) {
  const std::size_t n = 256;
  std::vector<float> series(n);
  for (std::size_t t = 0; t < n; ++t) {
    series[t] = std::cos(2.0 * M_PI * 5.0 * t / n);
  }
  RealDftPlan plan(n);
  std::vector<std::complex<float>> coeffs(plan.num_coefficients());
  plan.Transform(series.data(), coeffs.data());
  // All energy in bin 5: |c_5|² · 2 == Σ x² == n/2.
  for (std::size_t k = 0; k < plan.num_coefficients(); ++k) {
    const float mag = std::abs(coeffs[k]);
    if (k == 5) {
      EXPECT_NEAR(2.0f * mag * mag, n / 2.0f, 0.01f);
    } else {
      EXPECT_NEAR(mag, 0.0f, 1e-3f);
    }
  }
}

TEST(RealDftTest, TruncatedCoefficientDistanceLowerBoundsEd) {
  // Eq. 1 of the paper with our normalization: for any subset S of
  // coefficients, Σ_{k∈S} w_k·|cA_k − cB_k|² ≤ ‖A−B‖².
  Rng rng(11);
  for (std::size_t n : {96u, 128u, 256u}) {
    RealDftPlan plan(n);
    std::vector<std::complex<float>> ca(plan.num_coefficients());
    std::vector<std::complex<float>> cb(plan.num_coefficients());
    for (int trial = 0; trial < 20; ++trial) {
      auto a = RandomSeries(&rng, n);
      auto b = RandomSeries(&rng, n);
      plan.Transform(a.data(), ca.data());
      plan.Transform(b.data(), cb.data());
      double ed_sq = 0.0;
      for (std::size_t t = 0; t < n; ++t) {
        const double d = static_cast<double>(a[t]) - b[t];
        ed_sq += d * d;
      }
      // Use the first 8 coefficients (DC..7) as the subset.
      double lbd_sq = 0.0;
      for (std::size_t k = 0; k < 8; ++k) {
        const double dr = static_cast<double>(ca[k].real()) - cb[k].real();
        const double di = static_cast<double>(ca[k].imag()) - cb[k].imag();
        lbd_sq += (plan.IsUnpaired(k) ? 1.0 : 2.0) * (dr * dr + di * di);
      }
      ASSERT_LE(lbd_sq, ed_sq * (1.0 + 1e-5) + 1e-4);
    }
  }
}

}  // namespace
}  // namespace sofa
}  // namespace dft
