// Unit tests for the core substrate: z-normalization, distance kernels
// (scalar vs AVX2 vs high-precision oracle), dataset container.

#include <cmath>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "core/dataset.h"
#include "core/distance.h"
#include "core/znorm.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace sofa {
namespace {

constexpr float kInf = std::numeric_limits<float>::infinity();

std::vector<float> RandomSeries(Rng* rng, std::size_t n, double scale = 1.0) {
  std::vector<float> v(n);
  for (auto& x : v) {
    x = static_cast<float>(rng->Gaussian(0.0, scale));
  }
  return v;
}

double ReferenceSquaredEuclidean(const float* a, const float* b,
                                 std::size_t n) {
  double sum = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double d = static_cast<double>(a[i]) - static_cast<double>(b[i]);
    sum += d * d;
  }
  return sum;
}

// ---------------------------------------------------------------- znorm

TEST(ZNormTest, MeanStdOfKnownSeries) {
  const float v[] = {1.0f, 2.0f, 3.0f, 4.0f};
  const MeanStd ms = ComputeMeanStd(v, 4);
  EXPECT_FLOAT_EQ(ms.mean, 2.5f);
  EXPECT_NEAR(ms.std, std::sqrt(1.25f), 1e-6f);
}

TEST(ZNormTest, NormalizedSeriesHasZeroMeanUnitStd) {
  Rng rng(1);
  auto v = RandomSeries(&rng, 257, 5.0);
  for (auto& x : v) {
    x += 10.0f;
  }
  ZNormalize(v.data(), v.size());
  const MeanStd ms = ComputeMeanStd(v.data(), v.size());
  EXPECT_NEAR(ms.mean, 0.0f, 1e-5f);
  EXPECT_NEAR(ms.std, 1.0f, 1e-4f);
}

TEST(ZNormTest, ConstantSeriesBecomesZeros) {
  std::vector<float> v(64, 42.0f);
  ZNormalize(v.data(), v.size());
  for (float x : v) {
    EXPECT_EQ(x, 0.0f);
  }
}

TEST(ZNormTest, CopyMatchesInPlace) {
  Rng rng(2);
  const auto original = RandomSeries(&rng, 100, 3.0);
  auto in_place = original;
  ZNormalize(in_place.data(), in_place.size());
  std::vector<float> copied(original.size());
  ZNormalizeCopy(original.data(), copied.data(), original.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ(in_place[i], copied[i]);
  }
}

TEST(ZNormTest, ZNormalizedEuclideanEqualsPlainEuclideanAfterZnorm) {
  // The defining property of the pipeline: z-ED(A,B) == ED(znorm A, znorm B).
  Rng rng(3);
  const std::size_t n = 128;
  auto a = RandomSeries(&rng, n, 2.0);
  auto b = RandomSeries(&rng, n, 7.0);
  // Direct z-ED.
  const MeanStd ma = ComputeMeanStd(a.data(), n);
  const MeanStd mb = ComputeMeanStd(b.data(), n);
  double direct = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double d = (a[i] - ma.mean) / ma.std - (b[i] - mb.mean) / mb.std;
    direct += d * d;
  }
  ZNormalize(a.data(), n);
  ZNormalize(b.data(), n);
  EXPECT_NEAR(SquaredEuclidean(a.data(), b.data(), n), direct,
              1e-3 * direct + 1e-4);
}

// ---------------------------------------------------------------- distance

class DistanceLengthTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(DistanceLengthTest, ScalarMatchesReference) {
  Rng rng(GetParam());
  const std::size_t n = GetParam();
  const auto a = RandomSeries(&rng, n);
  const auto b = RandomSeries(&rng, n);
  const double ref = ReferenceSquaredEuclidean(a.data(), b.data(), n);
  EXPECT_NEAR(scalar::SquaredEuclidean(a.data(), b.data(), n), ref,
              1e-4 * (ref + 1.0));
}

#if defined(SOFA_HAVE_AVX2)
TEST_P(DistanceLengthTest, Avx2MatchesScalar) {
  Rng rng(GetParam() + 1000);
  const std::size_t n = GetParam();
  const auto a = RandomSeries(&rng, n);
  const auto b = RandomSeries(&rng, n);
  const float s = scalar::SquaredEuclidean(a.data(), b.data(), n);
  const float v = avx2::SquaredEuclidean(a.data(), b.data(), n);
  EXPECT_NEAR(v, s, 1e-4f * (s + 1.0f));
}

TEST_P(DistanceLengthTest, Avx2DotProductMatchesScalar) {
  Rng rng(GetParam() + 2000);
  const std::size_t n = GetParam();
  const auto a = RandomSeries(&rng, n);
  const auto b = RandomSeries(&rng, n);
  const float s = scalar::DotProduct(a.data(), b.data(), n);
  const float v = avx2::DotProduct(a.data(), b.data(), n);
  EXPECT_NEAR(v, s, 1e-3f * (std::fabs(s) + 1.0f));
}
#endif  // SOFA_HAVE_AVX2

TEST_P(DistanceLengthTest, EarlyAbandonWithInfiniteBoundIsExact) {
  Rng rng(GetParam() + 3000);
  const std::size_t n = GetParam();
  const auto a = RandomSeries(&rng, n);
  const auto b = RandomSeries(&rng, n);
  const float exact = SquaredEuclidean(a.data(), b.data(), n);
  const float ea = SquaredEuclideanEarlyAbandon(a.data(), b.data(), n, kInf);
  EXPECT_NEAR(ea, exact, 1e-4f * (exact + 1.0f));
}

INSTANTIATE_TEST_SUITE_P(Lengths, DistanceLengthTest,
                         ::testing::Values(1, 2, 3, 7, 8, 15, 16, 17, 31, 32,
                                           63, 96, 100, 128, 255, 256, 1000));

TEST(DistanceTest, IdenticalSeriesHaveZeroDistance) {
  Rng rng(4);
  const auto a = RandomSeries(&rng, 256);
  EXPECT_EQ(SquaredEuclidean(a.data(), a.data(), 256), 0.0f);
  EXPECT_EQ(SquaredEuclideanEarlyAbandon(a.data(), a.data(), 256, 1.0f), 0.0f);
}

TEST(DistanceTest, EarlyAbandonStopsAboveBound) {
  // Two series that differ strongly from the first element on: the partial
  // sum exceeds the bound quickly and the returned value must exceed it.
  const std::size_t n = 256;
  std::vector<float> a(n, 0.0f);
  std::vector<float> b(n, 10.0f);
  const float result =
      SquaredEuclideanEarlyAbandon(a.data(), b.data(), n, 50.0f);
  EXPECT_GT(result, 50.0f);
  // And the abandoned partial sum is at most the exact distance.
  EXPECT_LE(result, SquaredEuclidean(a.data(), b.data(), n) + 1e-3f);
}

TEST(DistanceTest, EarlyAbandonNeverUnderestimatesDecision) {
  // Property: for random bounds, "abandoned" implies exact > bound,
  // and "not abandoned" implies result == exact.
  Rng rng(5);
  for (int trial = 0; trial < 200; ++trial) {
    const std::size_t n = 64 + rng.Below(192);
    const auto a = RandomSeries(&rng, n);
    const auto b = RandomSeries(&rng, n);
    const float exact = SquaredEuclidean(a.data(), b.data(), n);
    const float bound = static_cast<float>(rng.Uniform(0.0, exact * 1.5));
    const float result =
        SquaredEuclideanEarlyAbandon(a.data(), b.data(), n, bound);
    if (result > bound) {
      EXPECT_GT(exact, bound * (1.0f - 1e-5f));
    } else {
      EXPECT_NEAR(result, exact, 1e-4f * (exact + 1.0f));
    }
  }
}

TEST(DistanceTest, SquaredNormMatchesSelfDot) {
  Rng rng(6);
  const auto a = RandomSeries(&rng, 200);
  EXPECT_NEAR(SquaredNorm(a.data(), 200),
              DotProduct(a.data(), a.data(), 200), 1e-3f);
}

TEST(DistanceTest, DotProductIdentity) {
  // ‖a-b‖² == ‖a‖² + ‖b‖² − 2·a·b, the flat-index formulation.
  Rng rng(7);
  const std::size_t n = 128;
  const auto a = RandomSeries(&rng, n);
  const auto b = RandomSeries(&rng, n);
  const float direct = SquaredEuclidean(a.data(), b.data(), n);
  const float via_dot = SquaredNorm(a.data(), n) + SquaredNorm(b.data(), n) -
                        2.0f * DotProduct(a.data(), b.data(), n);
  EXPECT_NEAR(direct, via_dot, 1e-3f * (direct + 1.0f));
}

// ---------------------------------------------------------------- dataset

TEST(DatasetTest, AppendStoresRows) {
  Dataset ds(4);
  const float row0[] = {1, 2, 3, 4};
  const float row1[] = {5, 6, 7, 8};
  ds.Append(row0);
  ds.Append(row1);
  ASSERT_EQ(ds.size(), 2u);
  EXPECT_EQ(ds.length(), 4u);
  EXPECT_EQ(ds.row(0)[0], 1.0f);
  EXPECT_EQ(ds.row(1)[3], 8.0f);
}

TEST(DatasetTest, ResizeZeroFills) {
  Dataset ds(8);
  ds.Resize(10);
  EXPECT_EQ(ds.size(), 10u);
  for (std::size_t i = 0; i < 10; ++i) {
    for (std::size_t j = 0; j < 8; ++j) {
      ASSERT_EQ(ds.row(i)[j], 0.0f);
    }
  }
}

TEST(DatasetTest, RowsAreContiguous) {
  Dataset ds(2, 16);
  EXPECT_EQ(ds.row(1), ds.row(0) + 16);
  EXPECT_EQ(ds.data(), ds.row(0));
}

TEST(DatasetTest, MemoryBytes) {
  Dataset ds(10, 100);
  EXPECT_EQ(ds.MemoryBytes(), 10u * 100u * sizeof(float));
}

TEST(DatasetTest, ParallelZNormMatchesSerial) {
  Rng rng(8);
  Dataset serial(64);
  for (int i = 0; i < 100; ++i) {
    const auto row = RandomSeries(&rng, 64, 4.0);
    serial.Append(row.data());
  }
  Dataset parallel_ds(64);
  for (std::size_t i = 0; i < serial.size(); ++i) {
    parallel_ds.Append(serial.row(i));
  }
  serial.ZNormalizeAll();
  ThreadPool pool(4);
  parallel_ds.ZNormalizeAll(&pool);
  for (std::size_t i = 0; i < serial.size(); ++i) {
    for (std::size_t j = 0; j < 64; ++j) {
      ASSERT_EQ(serial.row(i)[j], parallel_ds.row(i)[j]);
    }
  }
}

TEST(DatasetTest, ZNormalizeAllNormalizesEveryRow) {
  Rng rng(9);
  Dataset ds(96);
  for (int i = 0; i < 50; ++i) {
    auto row = RandomSeries(&rng, 96, 3.0);
    for (auto& x : row) {
      x += 7.0f;
    }
    ds.Append(row.data());
  }
  ds.ZNormalizeAll();
  for (std::size_t i = 0; i < ds.size(); ++i) {
    const MeanStd ms = ComputeMeanStd(ds.row(i), ds.length());
    ASSERT_NEAR(ms.mean, 0.0f, 1e-5f);
    ASSERT_NEAR(ms.std, 1.0f, 1e-4f);
  }
}

}  // namespace
}  // namespace sofa
