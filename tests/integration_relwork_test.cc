// Cross-module integration tests tying the related-work substrates to the
// core SOFA stack:
//
//   * the quantization-looseness invariant — on its own selected Fourier
//     values, SFA's symbolic LBD can never exceed the numeric (un-
//     quantized) Parseval bound, which itself lower-bounds ED (this is
//     the formal sense in which SFA is "DFT plus quantization loss",
//     paper Sections III/IV-E);
//   * alphabet growth closes the quantization gap (Tables V/VI trend);
//   * MASS at m = n degenerates to the core z-normalized ED kernel;
//   * the DTW cascade scan at band 0 answers exactly like the ED scan.

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <vector>

#include <gtest/gtest.h>

#include "core/dataset.h"
#include "core/distance.h"
#include "core/znorm.h"
#include "elastic/dtw_scan.h"
#include "quant/lbd.h"
#include "scan/ucr_scan.h"
#include "sfa/mcb.h"
#include "sfa/sfa_scheme.h"
#include "sfa/tlb.h"
#include "subseq/mass.h"
#include "test_data.h"
#include "util/thread_pool.h"

namespace sofa {
namespace {

using testing_data::Noise;
using testing_data::Walk;

// Numeric Parseval bound on the scheme's own selected values:
// Σ_v w_v · (q_v − c_v)².
float NumericBoundOnSelectedValues(const sfa::SfaScheme& scheme,
                                   const float* query,
                                   const float* candidate) {
  const std::size_t l = scheme.word_length();
  std::vector<float> q_values(l);
  std::vector<float> c_values(l);
  scheme.Project(query, q_values.data());
  scheme.Project(candidate, c_values.data());
  double sum = 0.0;
  for (std::size_t v = 0; v < l; ++v) {
    const double diff = static_cast<double>(q_values[v]) - c_values[v];
    sum += scheme.weights()[v] * diff * diff;
  }
  return static_cast<float>(sum);
}

TEST(QuantizationLoosenessTest, SfaLbdNeverExceedsNumericParsevalBound) {
  for (const bool noisy : {false, true}) {
    const Dataset data =
        noisy ? Noise(64, 128, 0xd0) : Walk(64, 128, 0xd1);
    const Dataset queries =
        noisy ? Noise(8, 128, 0xd2) : Walk(8, 128, 0xd3);
    sfa::SfaConfig config;  // paper defaults: 16 values, alphabet 256
    const auto scheme = sfa::TrainSfa(data, config, nullptr);

    const std::size_t l = scheme->word_length();
    auto scratch = scheme->NewScratch();
    std::vector<float> q_values(l);
    std::vector<std::uint8_t> word(l);
    for (std::size_t q = 0; q < queries.size(); ++q) {
      scheme->Project(queries.row(q), q_values.data(), scratch.get());
      for (std::size_t c = 0; c < data.size(); ++c) {
        scheme->Symbolize(data.row(c), word.data());
        const float symbolic = quant::LbdSquared(
            scheme->table(), scheme->weights(), q_values.data(),
            word.data());
        const float numeric = NumericBoundOnSelectedValues(
            *scheme, queries.row(q), data.row(c));
        const float ed =
            SquaredEuclidean(queries.row(q), data.row(c), 128);
        // symbolic ≤ numeric ≤ ED — each step can only lose tightness.
        EXPECT_LE(symbolic, numeric * (1.0f + 1e-4f) + 1e-4f)
            << "noisy=" << noisy << " q=" << q << " c=" << c;
        EXPECT_LE(numeric, ed * (1.0f + 1e-4f) + 1e-4f)
            << "noisy=" << noisy << " q=" << q << " c=" << c;
      }
    }
  }
}

TEST(QuantizationLoosenessTest, LargerAlphabetsCloseTheGap) {
  const Dataset data = Walk(128, 128, 0xd4);
  const Dataset queries = Walk(8, 128, 0xd5);
  double previous = 0.0;
  for (const std::size_t alphabet : {4, 16, 64, 256}) {
    sfa::SfaConfig config;
    config.alphabet = alphabet;
    const auto scheme = sfa::TrainSfa(data, config, nullptr);
    const double tlb = sfa::MeanTlb(*scheme, data, queries);
    EXPECT_GE(tlb, previous - 0.02) << "alphabet " << alphabet;
    previous = tlb;
  }
  EXPECT_GT(previous, 0.5);  // alphabet 256 on smooth data is tight
}

TEST(MassCoreConsistencyTest, WholeMatchingProfileEqualsCoreKernel) {
  // m = n with both sides z-normalized: MASS must reproduce the core
  // Euclidean kernel's answer through a completely different route
  // (FFT correlation instead of a direct sum).
  const Dataset data = Noise(6, 256, 0xd6);
  const Dataset queries = Noise(6, 256, 0xd7);
  subseq::MassPlan plan(256, 256);
  float profile[1];
  for (std::size_t i = 0; i < data.size(); ++i) {
    plan.DistanceProfile(data.row(i), queries.row(i), profile);
    const float expected = std::sqrt(
        SquaredEuclidean(queries.row(i), data.row(i), 256));
    EXPECT_NEAR(profile[0], expected, 2e-3f * (1.0f + expected));
  }
}

class BandZeroEquivalenceTest
    : public ::testing::TestWithParam<std::size_t> {};

TEST_P(BandZeroEquivalenceTest, DtwScanAtBandZeroMatchesEdScan) {
  const std::size_t threads = GetParam();
  ThreadPool pool(threads);
  const Dataset data = Walk(500, 96, 0xd8);
  const Dataset queries = Walk(5, 96, 0xd9);
  const scan::UcrScan ed_scan(&data, &pool);
  elastic::DtwScan::Options options;
  options.band = 0;
  const elastic::DtwScan dtw_scan(&data, &pool, options);
  for (std::size_t q = 0; q < queries.size(); ++q) {
    const auto ed_knn = ed_scan.SearchKnn(queries.row(q), 5);
    const auto dtw_knn = dtw_scan.SearchKnn(queries.row(q), 5);
    ASSERT_EQ(ed_knn.size(), dtw_knn.size());
    EXPECT_TRUE(testing_data::SameDistances(dtw_knn, ed_knn))
        << "threads=" << threads << " q=" << q;
  }
}

INSTANTIATE_TEST_SUITE_P(Threads, BandZeroEquivalenceTest,
                         ::testing::Values(1, 2, 4),
                         [](const ::testing::TestParamInfo<std::size_t>&
                                info) {
                           std::string name = "t";
                           name += std::to_string(info.param);
                           return name;
                         });

}  // namespace
}  // namespace sofa
