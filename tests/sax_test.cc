// Tests for the iSAX summarization: PAA, symbolization, word helpers, and
// the central GEMINI invariant — mindist lower-bounds the true distance.

#include <cmath>
#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "core/distance.h"
#include "core/znorm.h"
#include "quant/lbd.h"
#include "sax/isax.h"
#include "sax/paa.h"
#include "sax/sax_scheme.h"
#include "util/rng.h"

namespace sofa {
namespace sax {
namespace {

std::vector<float> RandomZNormSeries(Rng* rng, std::size_t n) {
  std::vector<float> v(n);
  for (auto& x : v) {
    x = static_cast<float>(rng->Gaussian());
  }
  ZNormalize(v.data(), n);
  return v;
}

// ---------------------------------------------------------------- PAA

TEST(PaaTest, MeansOfExactSegments) {
  const float series[] = {1, 1, 2, 2, 3, 3, 4, 4};
  float out[4];
  Paa(series, 8, 4, out);
  EXPECT_FLOAT_EQ(out[0], 1.0f);
  EXPECT_FLOAT_EQ(out[1], 2.0f);
  EXPECT_FLOAT_EQ(out[2], 3.0f);
  EXPECT_FLOAT_EQ(out[3], 4.0f);
}

TEST(PaaTest, SingleSegmentIsGlobalMean) {
  const float series[] = {1, 2, 3, 4, 5};
  float out[1];
  Paa(series, 5, 1, out);
  EXPECT_FLOAT_EQ(out[0], 3.0f);
}

TEST(PaaTest, FullResolutionIsIdentity) {
  const float series[] = {3, 1, 4, 1, 5};
  float out[5];
  Paa(series, 5, 5, out);
  for (int i = 0; i < 5; ++i) {
    EXPECT_FLOAT_EQ(out[i], series[i]);
  }
}

TEST(PaaTest, NonDivisibleLengthPartitionsCoverSeries) {
  // n=100, l=16: segment lengths are 6 or 7 and sum to n.
  std::size_t total = 0;
  for (std::size_t i = 0; i < 16; ++i) {
    const std::size_t len = SegmentLength(100, 16, i);
    EXPECT_GE(len, 6u);
    EXPECT_LE(len, 7u);
    total += len;
  }
  EXPECT_EQ(total, 100u);
  EXPECT_EQ(SegmentStart(100, 16, 0), 0u);
  EXPECT_EQ(SegmentStart(100, 16, 16), 100u);
}

TEST(PaaTest, PaaOfConstantIsConstant) {
  std::vector<float> series(96, 2.5f);
  float out[16];
  Paa(series.data(), series.size(), 16, out);
  for (float v : out) {
    EXPECT_FLOAT_EQ(v, 2.5f);
  }
}

// ---------------------------------------------------------------- scheme

TEST(SaxSchemeTest, ConfigurationExposed) {
  SaxScheme scheme(256, 16, 256);
  EXPECT_EQ(scheme.series_length(), 256u);
  EXPECT_EQ(scheme.word_length(), 16u);
  EXPECT_EQ(scheme.alphabet(), 256u);
  EXPECT_EQ(scheme.bits(), 8u);
  EXPECT_EQ(scheme.name(), "iSAX");
}

TEST(SaxSchemeTest, WeightsAreSegmentLengths) {
  SaxScheme divisible(256, 16);
  for (std::size_t d = 0; d < 16; ++d) {
    EXPECT_FLOAT_EQ(divisible.weights()[d], 16.0f);
  }
  SaxScheme ragged(100, 16);
  float total = 0.0f;
  for (std::size_t d = 0; d < 16; ++d) {
    total += ragged.weights()[d];
  }
  EXPECT_FLOAT_EQ(total, 100.0f);
}

TEST(SaxSchemeTest, SymbolizeQuantizesPaa) {
  SaxScheme scheme(64, 8, 4);
  Rng rng(1);
  const auto series = RandomZNormSeries(&rng, 64);
  float paa[8];
  Paa(series.data(), 64, 8, paa);
  std::uint8_t word[8];
  scheme.Symbolize(series.data(), word);
  for (std::size_t d = 0; d < 8; ++d) {
    EXPECT_EQ(word[d], scheme.table().Quantize(d, paa[d]));
  }
}

TEST(SaxSchemeTest, AllDimensionsShareBreakpoints) {
  SaxScheme scheme(128, 16, 256);
  for (std::size_t d = 1; d < 16; ++d) {
    for (std::uint32_t s = 0; s < 256; ++s) {
      ASSERT_EQ(scheme.table().lower_bounds()[d * 256 + s],
                scheme.table().lower_bounds()[s]);
    }
  }
}

// The GEMINI invariant: iSAX mindist ≤ true Euclidean distance. Swept over
// alphabet sizes and series lengths including non-divisible ones.
class SaxLowerBoundTest
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {
};

TEST_P(SaxLowerBoundTest, MindistLowerBoundsEuclidean) {
  const auto [series_length, alphabet] = GetParam();
  SaxScheme scheme(series_length, 16, alphabet);
  Rng rng(series_length * 131 + alphabet);
  auto scratch = scheme.NewScratch();
  std::vector<float> projection(16);
  std::vector<std::uint8_t> word(16);
  for (int trial = 0; trial < 200; ++trial) {
    const auto query = RandomZNormSeries(&rng, series_length);
    const auto candidate = RandomZNormSeries(&rng, series_length);
    scheme.Project(query.data(), projection.data(), scratch.get());
    float values[16];
    scheme.Symbolize(candidate.data(), word.data(), scratch.get(), values);
    const float lbd_sq = quant::LbdSquared(scheme.table(), scheme.weights(),
                                           projection.data(), word.data());
    const float ed_sq =
        SquaredEuclidean(query.data(), candidate.data(), series_length);
    ASSERT_LE(lbd_sq, ed_sq * (1.0f + 1e-4f) + 1e-4f)
        << "n=" << series_length << " alphabet=" << alphabet;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SaxLowerBoundTest,
    ::testing::Combine(::testing::Values(96, 100, 128, 256),
                       ::testing::Values(4, 16, 64, 256)));

TEST(SaxSchemeTest, TighterAlphabetGivesTighterBound) {
  // Mean mindist should not decrease when the alphabet grows.
  Rng rng(2);
  const std::size_t n = 128;
  double mean_small = 0.0;
  double mean_large = 0.0;
  const int trials = 200;
  SaxScheme small(n, 16, 4);
  SaxScheme large(n, 16, 256);
  std::vector<float> proj(16);
  std::vector<std::uint8_t> word_small(16);
  std::vector<std::uint8_t> word_large(16);
  for (int t = 0; t < trials; ++t) {
    const auto query = RandomZNormSeries(&rng, n);
    const auto candidate = RandomZNormSeries(&rng, n);
    small.Project(query.data(), proj.data());
    small.Symbolize(candidate.data(), word_small.data());
    mean_small += std::sqrt(quant::LbdSquared(small.table(), small.weights(),
                                              proj.data(), word_small.data()));
    large.Project(query.data(), proj.data());
    large.Symbolize(candidate.data(), word_large.data());
    mean_large += std::sqrt(quant::LbdSquared(large.table(), large.weights(),
                                              proj.data(), word_large.data()));
  }
  EXPECT_GT(mean_large, mean_small);
}

// ---------------------------------------------------------------- words

TEST(IsaxWordTest, SymbolPrefix) {
  EXPECT_EQ(SymbolPrefix(0b10110100, 8, 1), 0b1);
  EXPECT_EQ(SymbolPrefix(0b10110100, 8, 3), 0b101);
  EXPECT_EQ(SymbolPrefix(0b10110100, 8, 8), 0b10110100);
}

TEST(IsaxWordTest, WordMatchesPrefix) {
  const std::uint8_t word[] = {0b10110100, 0b01000000};
  const std::uint8_t prefixes_match[] = {0b101, 0b0};
  const std::uint8_t cards_match[] = {3, 1};
  EXPECT_TRUE(WordMatchesPrefix(word, prefixes_match, cards_match, 2, 8));
  const std::uint8_t prefixes_miss[] = {0b100, 0b0};
  EXPECT_FALSE(WordMatchesPrefix(word, prefixes_miss, cards_match, 2, 8));
  // Cardinality 0 dimensions never exclude.
  const std::uint8_t cards_loose[] = {0, 0};
  const std::uint8_t any_prefix[] = {7, 3};
  EXPECT_TRUE(WordMatchesPrefix(word, any_prefix, cards_loose, 2, 8));
}

TEST(IsaxWordTest, WordToStringSmallAlphabet) {
  const std::uint8_t word[] = {2, 1, 4, 3};
  EXPECT_EQ(WordToString(word, 4, 8), "cbed");
}

TEST(IsaxWordTest, WordToStringLargeAlphabet) {
  const std::uint8_t word[] = {12, 0, 255};
  EXPECT_EQ(WordToString(word, 3, 256), "12.0.255");
}

}  // namespace
}  // namespace sax
}  // namespace sofa
