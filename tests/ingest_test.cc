// Tests for the incremental ingest path (insert buffer + tombstones →
// shard compaction → republish, with a write-ahead log underneath): the
// InsertBuffer's exact deterministic flat scan and tombstone masking,
// the tree-∪-buffer merge determinism on cross-source distance ties,
// the QueryProfile accounting of the sharded paths (merged counters
// equal the per-shard + buffer sums exactly once, filtered candidates
// included), the WAL's framing/corruption/rotation/checkpoint edge
// cases, and the headline exactness invariants — after N inserts and D
// deletes, with compactions racing live query traffic, SearchService
// answers are bit-identical to a from-scratch single-index build over
// base ∪ inserts \ deletes; and after a simulated crash, WAL replay
// (Compactor::Recover) restores bit-identical answers.

#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstring>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <unordered_set>
#include <vector>

#include <gtest/gtest.h>

#include "harness/oracle.h"
#include "harness/workload.h"
#include "index/query_engine.h"
#include "index/tree_index.h"
#include "ingest/compactor.h"
#include "ingest/insert_buffer.h"
#include "ingest/tombstone_set.h"
#include "ingest/wal.h"
#include "service/search_service.h"
#include "service/snapshot.h"
#include "shard/sharded_index.h"
#include "test_data.h"
#include "util/thread_pool.h"

namespace sofa {
namespace ingest {
namespace {

using testing_data::BruteForceKnn;
using testing_data::Walk;
using testing_harness::BitIdentical;
using testing_harness::ExactOracle;
using testing_harness::MakeSearchRequest;
using testing_harness::ReadFileBytes;
using testing_harness::WriteFileBytes;

// A base collection, a sharded generation over it, the service serving
// it, and a from-scratch oracle over base ∪ inserts. With `enable_rowq`
// the serving side carries the compressed pruning tier; the oracle never
// does — so every BitIdentical assertion below doubles as the tier's
// exactness proof.
struct IngestFixture {
  ThreadPool pool;
  Dataset base;
  Dataset inserts;
  Dataset combined;  // base rows then insert rows, in insertion order
  std::shared_ptr<const quant::SummaryScheme> scheme;
  std::shared_ptr<const shard::ShardedIndex> sharded;
  std::unique_ptr<ExactOracle> oracle;  // over `combined`

  IngestFixture(std::size_t base_count, std::size_t insert_count,
                std::size_t length, std::size_t num_shards,
                shard::ShardAssignment assignment, std::uint64_t seed,
                std::size_t threads = 4, bool enable_rowq = false)
      : pool(threads),
        base(Walk(base_count, length, seed)),
        inserts(Walk(insert_count, length, seed + 1)),
        combined(length) {
    for (std::size_t i = 0; i < base.size(); ++i) {
      combined.Append(base.row(i));
    }
    for (std::size_t i = 0; i < inserts.size(); ++i) {
      combined.Append(inserts.row(i));
    }
    scheme = testing_harness::TrainTestScheme(base, &pool);
    sharded = testing_harness::BuildTestSharded(base, num_shards, assignment,
                                                scheme, &pool, enable_rowq);
    oracle = std::make_unique<ExactOracle>(combined, std::vector<std::uint32_t>{},
                                           scheme, &pool);
  }
};

// Per-test scratch WAL directory under /tmp; removed before and after so
// reruns never replay a previous run's segments.
std::string WalTestDir(const std::string& name) {
  return "/tmp/sofa_wal_" + name + "_" + std::to_string(::getpid());
}

void RemoveWalDir(const std::string& dir) {
  for (const std::string& path : WriteAheadLog::ListSegments(dir)) {
    ::unlink(path.c_str());
  }
  ::rmdir(dir.c_str());
}

// ---------------------------------------------------------- InsertBuffer

TEST(InsertBufferTest, ScanMatchesBruteForceAcrossChunks) {
  const std::size_t length = 48;
  const Dataset rows = Walk(37, length, 91);
  InsertBuffer buffer(length, /*chunk_capacity=*/8);  // forces many chunks
  for (std::size_t i = 0; i < rows.size(); ++i) {
    EXPECT_EQ(buffer.Append(rows.row(i), 100 + static_cast<std::uint32_t>(i)),
              i + 1);
  }
  const Dataset queries = Walk(6, length, 92);
  for (std::size_t q = 0; q < queries.size(); ++q) {
    std::vector<Neighbor> found;
    const std::size_t scanned = buffer.SearchKnn(queries.row(q), 5, 0, &found);
    EXPECT_EQ(scanned, rows.size());
    const auto expected = BruteForceKnn(rows, queries.row(q), 5);
    ASSERT_EQ(found.size(), expected.size());
    for (std::size_t i = 0; i < expected.size(); ++i) {
      EXPECT_EQ(found[i].id, expected[i].id + 100) << "rank " << i;
      EXPECT_FLOAT_EQ(found[i].distance, expected[i].distance) << "rank " << i;
    }
  }
}

TEST(InsertBufferTest, ScanFromOffsetSeesOnlyNewerRows) {
  const std::size_t length = 32;
  const Dataset rows = Walk(20, length, 93);
  InsertBuffer buffer(length, 4);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    buffer.Append(rows.row(i), static_cast<std::uint32_t>(i));
  }
  std::vector<Neighbor> found;
  const std::size_t scanned =
      buffer.SearchKnn(rows.row(0), rows.size(), 12, &found);
  EXPECT_EQ(scanned, rows.size() - 12);
  ASSERT_EQ(found.size(), rows.size() - 12);
  for (const Neighbor& nb : found) {
    EXPECT_GE(nb.id, 12u);  // rows below the offset belong to the tree
  }
}

TEST(InsertBufferTest, TiesKeepLowestGlobalIdDeterministically) {
  const std::size_t length = 24;
  const Dataset distinct = Walk(3, length, 94);
  InsertBuffer buffer(length, 4);
  // Ids 10,11,12 then duplicates 13,14,15 of the same three rows.
  for (std::uint32_t round = 0; round < 2; ++round) {
    for (std::size_t i = 0; i < distinct.size(); ++i) {
      buffer.Append(distinct.row(i),
                    10 + round * 3 + static_cast<std::uint32_t>(i));
    }
  }
  // k = 1: both copies of row 0 are at distance 0; the lower id must win.
  std::vector<Neighbor> found;
  buffer.SearchKnn(distinct.row(0), 1, 0, &found);
  ASSERT_EQ(found.size(), 1u);
  EXPECT_EQ(found[0].id, 10u);
  EXPECT_EQ(found[0].distance, 0.0f);
  // k = 4: ascending (distance, id) throughout the tie runs.
  found.clear();
  buffer.SearchKnn(distinct.row(0), 4, 0, &found);
  ASSERT_EQ(found.size(), 4u);
  EXPECT_EQ(found[0].id, 10u);
  EXPECT_EQ(found[1].id, 13u);
  for (std::size_t i = 1; i < found.size(); ++i) {
    EXPECT_TRUE(found[i - 1].distance < found[i].distance ||
                (found[i - 1].distance == found[i].distance &&
                 found[i - 1].id < found[i].id));
  }
}

TEST(InsertBufferTest, TrimBelowReclaimsOnlyWholeChunks) {
  const std::size_t length = 16;
  const Dataset rows = Walk(20, length, 95);
  InsertBuffer buffer(length, 4);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    buffer.Append(rows.row(i), static_cast<std::uint32_t>(i));
  }
  buffer.TrimBelow(10);  // chunks [0,4) and [4,8) go; [8,12) stays (row 10,11)
  EXPECT_EQ(buffer.first_retained(), 8u);
  EXPECT_EQ(buffer.size(), rows.size());
  std::vector<Neighbor> found;
  buffer.SearchKnn(rows.row(12), rows.size(), 10, &found);
  EXPECT_EQ(found.size(), rows.size() - 10);
  // Appends continue seamlessly after a trim.
  buffer.Append(rows.row(0), 99);
  EXPECT_EQ(buffer.size(), rows.size() + 1);
}

// ------------------------------------------------- merge determinism

TEST(MergeNeighborListsTest, NormalizesTieRunsWithinAndAcrossLists) {
  // List A emits a tie run in scan order (7 before 3); list B ties at the
  // same distance with id 5. The merge must emit 3,5,7 and a k boundary
  // inside the run must keep the lowest ids.
  std::vector<std::vector<Neighbor>> lists;
  lists.push_back({Neighbor{1, 0.5f}, Neighbor{7, 2.0f}, Neighbor{3, 2.0f}});
  lists.push_back({Neighbor{5, 2.0f}, Neighbor{2, 9.0f}});
  const auto all = shard::MergeNeighborLists(lists, 10);
  ASSERT_EQ(all.size(), 5u);
  EXPECT_EQ(all[0].id, 1u);
  EXPECT_EQ(all[1].id, 3u);
  EXPECT_EQ(all[2].id, 5u);
  EXPECT_EQ(all[3].id, 7u);
  EXPECT_EQ(all[4].id, 2u);
  const auto cut = shard::MergeNeighborLists(lists, 2);
  ASSERT_EQ(cut.size(), 2u);
  EXPECT_EQ(cut[0].id, 1u);
  EXPECT_EQ(cut[1].id, 3u);  // lowest id of the tie run crosses the boundary
}

// Cross-shard / cross-structure distance ties straddling the k boundary:
// the documented lowest-global-id-first rule must hold with the duplicate
// in the insert buffer AND after a compaction moves it into the tree.
TEST(IngestTieTest, DuplicateStraddlingKBoundaryStaysDeterministic) {
  IngestFixture fx(40, 0, 64, 2, shard::ShardAssignment::kContiguous, 97,
                   /*threads=*/2);
  service::SearchService svc(service::WrapShardedIndex(fx.sharded), &fx.pool);
  IngestConfig config;
  config.auto_compact = false;  // compaction only when the test says so
  Compactor compactor(&svc, fx.sharded, config);

  // Duplicate base row 5 (shard 0's tree) twice: ids 40 and 41 route to
  // the last shard's buffer under contiguous assignment.
  ASSERT_EQ(compactor.Insert(fx.base.row(5), fx.base.length()),
            StatusCode::kOk);
  ASSERT_EQ(compactor.Insert(fx.base.row(5), fx.base.length()),
            StatusCode::kOk);
  ASSERT_EQ(compactor.RouteShard(40), 1u);
  ASSERT_EQ(compactor.RouteShard(41), 1u);

  const auto query_topk = [&](std::size_t k) {
    service::SearchResponse response =
        svc.Search(MakeSearchRequest(fx.base, 5, k));
    EXPECT_EQ(response.status, service::RequestStatus::kOk);
    return response.neighbors;
  };

  // Three copies tie at distance 0; every k boundary keeps the lowest ids.
  auto top = query_topk(1);
  ASSERT_EQ(top.size(), 1u);
  EXPECT_EQ(top[0].id, 5u);
  EXPECT_EQ(top[0].distance, 0.0f);
  top = query_topk(2);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].id, 5u);
  EXPECT_EQ(top[1].id, 40u);
  EXPECT_EQ(top[1].distance, 0.0f);

  // Compact: the duplicates move from buffer to shard 1's rebuilt tree.
  compactor.Flush();
  EXPECT_EQ(compactor.Metrics().pending, 0u);
  EXPECT_GE(compactor.Metrics().compactions, 1u);
  top = query_topk(1);
  ASSERT_EQ(top.size(), 1u);
  EXPECT_EQ(top[0].id, 5u);
  top = query_topk(2);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].id, 5u);
  EXPECT_EQ(top[1].id, 40u);
  EXPECT_EQ(top[1].distance, 0.0f);
}

// ------------------------------------------------- profile accounting

// The sharded batched (throughput) path runs shard tasks itself and
// merges counters per (query, shard) plus the buffer scans; the merged
// counters must equal the per-shard + buffer sums exactly once — and the
// service-level metrics must merge each profiled response exactly once.
TEST(IngestProfileTest, BatchedShardedProfileMergesExactlyOnce) {
  IngestFixture fx(1200, 60, 96, 3, shard::ShardAssignment::kContiguous, 98);
  service::ServiceConfig config;
  config.latency_mode_threshold = 0;  // force the flattened scatter
  config.start_paused = true;         // stage a backlog -> real batches
  service::SearchService svc(service::WrapShardedIndex(fx.sharded), &fx.pool,
                             config);
  IngestConfig ingest_config;
  ingest_config.auto_compact = false;  // keep all inserts buffered
  Compactor compactor(&svc, fx.sharded, ingest_config);
  for (std::size_t i = 0; i < fx.inserts.size(); ++i) {
    ASSERT_EQ(compactor.Insert(fx.inserts.row(i), fx.inserts.length()),
              StatusCode::kOk);
  }

  const Dataset queries = Walk(8, 96, 99);
  const std::size_t k = 7;
  std::vector<std::future<service::SearchResponse>> futures;
  for (std::size_t q = 0; q < queries.size(); ++q) {
    futures.push_back(svc.Submit(MakeSearchRequest(queries, q, k, true)));
  }
  svc.Resume();

  index::QueryProfile responses_total;
  for (std::size_t q = 0; q < queries.size(); ++q) {
    const service::SearchResponse response = futures[q].get();
    ASSERT_EQ(response.status, service::RequestStatus::kOk);
    // Oracle: each shard tree searched single-threaded (like the scatter
    // tasks) plus one buffer-row distance evaluation per pending row.
    index::QueryProfile expected;
    const auto current = compactor.current();
    for (std::size_t s = 0; s < current->num_shards(); ++s) {
      const index::QueryEngine engine(current->shard(s).tree.get());
      (void)engine.Search(queries.row(q), k, 0.0, &expected,
                          /*num_threads=*/1);
    }
    expected.series_ed_computed += fx.inserts.size();  // buffered rows
    EXPECT_EQ(response.profile.series_ed_computed,
              expected.series_ed_computed)
        << "query " << q;
    EXPECT_EQ(response.profile.series_lbd_checked,
              expected.series_lbd_checked);
    EXPECT_EQ(response.profile.nodes_visited, expected.nodes_visited);
    EXPECT_EQ(response.profile.leaves_collected, expected.leaves_collected);
    responses_total.Merge(response.profile);
  }
  // Metrics merge each profiled response exactly once — no double-merge.
  const service::MetricsSnapshot metrics = svc.Metrics();
  EXPECT_EQ(metrics.profile.series_ed_computed,
            responses_total.series_ed_computed);
  EXPECT_EQ(metrics.profile.nodes_visited, responses_total.nodes_visited);
  EXPECT_EQ(metrics.profile.series_lbd_checked,
            responses_total.series_lbd_checked);
}

// Same invariant on the latency-mode (per-query scatter) path.
TEST(IngestProfileTest, LatencyModeShardedProfileMergesExactlyOnce) {
  IngestFixture fx(900, 40, 64, 2, shard::ShardAssignment::kHash, 101,
                   /*threads=*/2);
  service::SearchService svc(service::WrapShardedIndex(fx.sharded), &fx.pool);
  IngestConfig ingest_config;
  ingest_config.auto_compact = false;
  Compactor compactor(&svc, fx.sharded, ingest_config);
  for (std::size_t i = 0; i < fx.inserts.size(); ++i) {
    ASSERT_EQ(compactor.Insert(fx.inserts.row(i), fx.inserts.length()),
              StatusCode::kOk);
  }
  const Dataset queries = Walk(5, 64, 102);
  for (std::size_t q = 0; q < queries.size(); ++q) {
    const service::SearchResponse response =
        svc.Search(MakeSearchRequest(queries, q, 5, true));
    ASSERT_EQ(response.status, service::RequestStatus::kOk);
    index::QueryProfile expected;
    const auto current = compactor.current();
    for (std::size_t s = 0; s < current->num_shards(); ++s) {
      const index::QueryEngine engine(current->shard(s).tree.get());
      (void)engine.Search(queries.row(q), 5, 0.0, &expected,
                          /*num_threads=*/1);
    }
    expected.series_ed_computed += fx.inserts.size();
    EXPECT_EQ(response.profile.series_ed_computed,
              expected.series_ed_computed)
        << "query " << q;
    EXPECT_EQ(response.profile.nodes_visited, expected.nodes_visited);
  }
}

// ------------------------------------------------- exactness invariant

// Buffered-only (no compaction yet): inserts are immediately searchable
// and answers equal the from-scratch oracle bit for bit.
TEST(IngestExactnessTest, BufferedInsertsAnswerBitExact) {
  for (const shard::ShardAssignment assignment :
       {shard::ShardAssignment::kContiguous, shard::ShardAssignment::kHash}) {
    IngestFixture fx(800, 150, 64, 3, assignment, 103, /*threads=*/2);
    service::SearchService svc(service::WrapShardedIndex(fx.sharded),
                               &fx.pool);
    IngestConfig config;
    config.auto_compact = false;
    Compactor compactor(&svc, fx.sharded, config);
    for (std::size_t i = 0; i < fx.inserts.size(); ++i) {
      ASSERT_EQ(compactor.Insert(fx.inserts.row(i), fx.inserts.length()),
                StatusCode::kOk);
    }
    EXPECT_EQ(compactor.Metrics().pending, fx.inserts.size());
    const Dataset queries = Walk(10, 64, 104);
    for (std::size_t q = 0; q < queries.size(); ++q) {
      const service::SearchResponse response =
          svc.Search(MakeSearchRequest(queries, q, 10));
      ASSERT_EQ(response.status, service::RequestStatus::kOk);
      EXPECT_TRUE(BitIdentical(response.neighbors,
                               fx.oracle->SearchKnn(queries.row(q), 10)))
          << "assignment " << static_cast<int>(assignment) << " query " << q;
    }
    // After Flush every row lives in a tree; still bit-exact.
    compactor.Flush();
    EXPECT_EQ(compactor.Metrics().pending, 0u);
    EXPECT_EQ(compactor.current()->size(),
              fx.base.size() + fx.inserts.size());
    for (std::size_t q = 0; q < queries.size(); ++q) {
      const service::SearchResponse response =
          svc.Search(MakeSearchRequest(queries, q, 10));
      ASSERT_EQ(response.status, service::RequestStatus::kOk);
      EXPECT_TRUE(BitIdentical(response.neighbors,
                               fx.oracle->SearchKnn(queries.row(q), 10)));
    }
  }
}

// Inserts are rejected (not dropped, not blocking) once the admission
// bound fills, and invalid-length rows are refused.
TEST(IngestExactnessTest, AdmissionBoundsAndInvalidRows) {
  IngestFixture fx(200, 0, 32, 2, shard::ShardAssignment::kContiguous, 105,
                   /*threads=*/2);
  service::SearchService svc(service::WrapShardedIndex(fx.sharded), &fx.pool);
  IngestConfig config;
  config.auto_compact = false;
  config.compact_threshold = 4;
  config.max_pending = 6;
  Compactor compactor(&svc, fx.sharded, config);
  const Dataset rows = Walk(10, 32, 106);
  std::size_t ok = 0, rejected = 0;
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const StatusOr<std::uint32_t> status =
        compactor.Insert(rows.row(i), rows.length());
    if (status == StatusCode::kOk) {
      ++ok;
    } else if (status == StatusCode::kRejected) {
      ++rejected;
    }
  }
  EXPECT_EQ(ok, 6u);
  EXPECT_EQ(rejected, 4u);
  std::vector<float> short_row(16, 0.0f);
  EXPECT_EQ(compactor.Insert(short_row.data(), short_row.size()),
            StatusCode::kInvalidArgument);
  const IngestMetrics metrics = compactor.Metrics();
  EXPECT_EQ(metrics.inserted, 6u);
  EXPECT_EQ(metrics.rejected, 4u);
  EXPECT_EQ(metrics.invalid, 1u);
  // A Flush drains the backlog and reopens admission.
  compactor.Flush();
  EXPECT_EQ(compactor.Insert(rows.row(0), rows.length()), StatusCode::kOk);
}

// The acceptance soak: inserts stream in while client threads query and
// the compactor rebuilds/republishes shards under the traffic. Once the
// last insert lands, every answer — including those racing the remaining
// compactions and the final flush — must be bit-identical to the
// from-scratch single-index oracle over the full collection. With
// `enable_rowq` the serving side runs the compressed pruning tier
// (quantized sidecars on the shard trees AND on the racing insert
// buffers) while the oracle never does — the same race doubles as the
// tier's concurrency exactness proof, and runs under TSan via the
// concurrency label.
void RunConcurrentTrafficSoak(bool enable_rowq) {
  IngestFixture fx(1200, 600, 64, 3, shard::ShardAssignment::kContiguous,
                   107, /*threads=*/4, enable_rowq);
  service::ServiceConfig service_config;
  service_config.latency_mode_threshold = 2;  // mixed scheduling under load
  service_config.max_batch = 8;
  service::SearchService svc(service::WrapShardedIndex(fx.sharded), &fx.pool,
                             service_config);
  IngestConfig config;
  config.compact_threshold = 64;
  // A tight admission bound throttles the inserter behind the compactor
  // (the retry loop below backs off on kRejected), guaranteeing several
  // compaction rounds race the query traffic instead of one big one.
  config.max_pending = 128;
  Compactor compactor(&svc, fx.sharded, config);

  const Dataset queries = Walk(16, 64, 108);
  std::vector<std::vector<Neighbor>> expected;
  for (std::size_t q = 0; q < queries.size(); ++q) {
    expected.push_back(fx.oracle->SearchKnn(queries.row(q), 10));
  }

  std::atomic<bool> all_inserted(false);
  std::atomic<std::size_t> failures(0);
  std::thread inserter([&] {
    for (std::size_t i = 0; i < fx.inserts.size(); ++i) {
      while (compactor.Insert(fx.inserts.row(i), fx.inserts.length()) ==
             StatusCode::kRejected) {
        std::this_thread::yield();
      }
    }
    all_inserted.store(true);
  });

  constexpr std::size_t kClients = 2;
  std::vector<std::thread> clients;
  for (std::size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      std::size_t q = c;
      // Phase 1: while inserts stream in, answers are exact over a prefix
      // of the inserts — assert they complete OK.
      while (!all_inserted.load()) {
        const service::SearchResponse response =
            svc.Search(MakeSearchRequest(queries, q % queries.size(), 10));
        if (response.status != service::RequestStatus::kOk) {
          failures.fetch_add(1);
        }
        q += kClients;
      }
      // Phase 2: every insert is visible; compactions may still be
      // racing — answers must already be bit-identical to the oracle.
      for (std::size_t round = 0; round < 30; ++round) {
        const std::size_t idx = (q + round * kClients) % queries.size();
        const service::SearchResponse response =
            svc.Search(MakeSearchRequest(queries, idx, 10));
        if (response.status != service::RequestStatus::kOk ||
            !BitIdentical(response.neighbors, expected[idx])) {
          failures.fetch_add(1);
        }
      }
    });
  }
  inserter.join();
  // Flush concurrently with the phase-2 clients: compaction-under-traffic.
  compactor.Flush();
  for (std::thread& client : clients) {
    client.join();
  }
  EXPECT_EQ(failures.load(), 0u);
  EXPECT_EQ(compactor.Metrics().pending, 0u);
  EXPECT_EQ(compactor.Metrics().inserted, fx.inserts.size());
  EXPECT_GE(compactor.Metrics().compactions, 3u);
  EXPECT_EQ(compactor.current()->size(), fx.combined.size());

  // Steady state after the flush: still bit-identical — and with the
  // tier enabled, the compacted generation demonstrably runs it.
  std::uint64_t rowq_checked = 0;
  for (std::size_t q = 0; q < queries.size(); ++q) {
    const service::SearchResponse response =
        svc.Search(MakeSearchRequest(queries, q, 10, /*profile=*/true));
    ASSERT_EQ(response.status, service::RequestStatus::kOk);
    EXPECT_TRUE(BitIdentical(response.neighbors, expected[q])) << "query "
                                                               << q;
    rowq_checked += response.profile.rowq_checked;
  }
  if (enable_rowq) {
    EXPECT_GT(rowq_checked, 0u);
  } else {
    EXPECT_EQ(rowq_checked, 0u);
  }
  const service::MetricsSnapshot metrics = svc.Metrics();
  EXPECT_GE(metrics.swaps, compactor.Metrics().compactions);
}

TEST(IngestExactnessTest, ExactUnderConcurrentTrafficAndCompaction) {
  RunConcurrentTrafficSoak(/*enable_rowq=*/false);
}

TEST(IngestExactnessTest, RowqTierExactUnderConcurrentTrafficAndCompaction) {
  RunConcurrentTrafficSoak(/*enable_rowq=*/true);
}

// Hash-assigned ingest spreads inserts across shards and stays exact
// through multiple compaction rounds (several cuts per shard).
TEST(IngestExactnessTest, HashAssignmentMultiRoundCompaction) {
  IngestFixture fx(600, 300, 64, 4, shard::ShardAssignment::kHash, 109,
                   /*threads=*/2);
  service::SearchService svc(service::WrapShardedIndex(fx.sharded), &fx.pool);
  IngestConfig config;
  config.auto_compact = false;  // step compactions manually via Flush
  Compactor compactor(&svc, fx.sharded, config);
  const Dataset queries = Walk(6, 64, 110);
  // Three rounds: insert a third, flush, verify against a fresh oracle of
  // the prefix each time.
  const std::size_t third = fx.inserts.size() / 3;
  for (std::size_t round = 0; round < 3; ++round) {
    for (std::size_t i = round * third; i < (round + 1) * third; ++i) {
      ASSERT_EQ(compactor.Insert(fx.inserts.row(i), fx.inserts.length()),
                StatusCode::kOk);
    }
    compactor.Flush();
    Dataset prefix(fx.combined.length());
    for (std::size_t i = 0; i < fx.base.size() + (round + 1) * third; ++i) {
      prefix.Append(fx.combined.row(i));
    }
    index::IndexConfig oracle_config;
    oracle_config.leaf_capacity = 100;
    const index::TreeIndex oracle(&prefix, fx.scheme.get(), oracle_config,
                                  &fx.pool);
    for (std::size_t q = 0; q < queries.size(); ++q) {
      const service::SearchResponse response =
          svc.Search(MakeSearchRequest(queries, q, 8));
      ASSERT_EQ(response.status, service::RequestStatus::kOk);
      EXPECT_TRUE(BitIdentical(response.neighbors,
                               oracle.SearchKnn(queries.row(q), 8)))
          << "round " << round << " query " << q;
    }
  }
  EXPECT_GE(compactor.Metrics().compactions, 3u);
}

// ------------------------------------------------------- tombstone set

TEST(TombstoneSetTest, ViewsAreImmutableSnapshots) {
  TombstoneSet set;
  EXPECT_TRUE(set.Add(7));
  EXPECT_FALSE(set.Add(7));  // second delete of the same id is a no-op
  const auto before = set.view();
  EXPECT_EQ(before->count(7u), 1u);
  EXPECT_TRUE(set.Add(9));
  set.Erase({7});
  // The earlier snapshot is frozen; a fresh one sees the mutations.
  EXPECT_EQ(before->count(7u), 1u);
  EXPECT_EQ(before->count(9u), 0u);
  const auto after = set.view();
  EXPECT_EQ(after->count(7u), 0u);
  EXPECT_EQ(after->count(9u), 1u);
  EXPECT_EQ(set.size(), 1u);
  set.ResetTo({1, 2, 3});
  EXPECT_EQ(set.SortedIds(), (std::vector<std::uint32_t>{1, 2, 3}));
}

TEST(InsertBufferTest, SearchAndCopyRangeMaskExcludedIds) {
  const std::size_t length = 32;
  const Dataset rows = Walk(12, length, 301);
  InsertBuffer buffer(length, 4);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    buffer.Append(rows.row(i), static_cast<std::uint32_t>(i));
  }
  const std::unordered_set<std::uint32_t> dead = {3, 7};
  // Query = row 3 exactly: without masking it wins at distance 0; with
  // masking it must vanish and the scan count must drop by |dead|.
  std::vector<Neighbor> found;
  const std::size_t scanned =
      buffer.SearchKnn(rows.row(3), rows.size(), 0, &found, &dead);
  EXPECT_EQ(scanned, rows.size() - dead.size());
  for (const Neighbor& nb : found) {
    EXPECT_NE(nb.id, 3u);
    EXPECT_NE(nb.id, 7u);
  }
  // CopyRange drops the same ids and reports them.
  Dataset copied(length);
  std::vector<std::uint32_t> ids;
  std::vector<std::uint32_t> excluded;
  buffer.CopyRange(0, rows.size(), &copied, &ids, &dead, &excluded);
  EXPECT_EQ(copied.size(), rows.size() - dead.size());
  EXPECT_EQ(ids.size(), copied.size());
  ASSERT_EQ(excluded.size(), dead.size());
  EXPECT_EQ(excluded[0], 3u);
  EXPECT_EQ(excluded[1], 7u);
  for (const std::uint32_t id : ids) {
    EXPECT_EQ(dead.count(id), 0u);
  }
}

// ------------------------------------------------------------- deletes

TEST(IngestDeleteTest, StatusTransitions) {
  IngestFixture fx(100, 0, 32, 2, shard::ShardAssignment::kContiguous, 303,
                   /*threads=*/2);
  service::SearchService svc(service::WrapShardedIndex(fx.sharded), &fx.pool);
  IngestConfig config;
  config.auto_compact = false;
  Compactor compactor(&svc, fx.sharded, config);
  EXPECT_EQ(compactor.Delete(100), StatusCode::kNotFound);  // never existed
  EXPECT_EQ(compactor.Delete(42), StatusCode::kOk);
  EXPECT_EQ(compactor.Delete(42), StatusCode::kAlreadyDeleted);
  const IngestMetrics metrics = compactor.Metrics();
  EXPECT_EQ(metrics.deleted, 1u);
  EXPECT_EQ(metrics.tombstones, 1u);
}

// Deletes of tree rows (base) and of still-buffered rows both vanish
// from answers immediately, in both scheduling modes, and answers stay
// bit-identical to the from-scratch filtered oracle before and after the
// compactions that physically remove the rows.
TEST(IngestDeleteTest, DeletesAnswerBitExactAgainstFilteredOracle) {
  for (const shard::ShardAssignment assignment :
       {shard::ShardAssignment::kContiguous, shard::ShardAssignment::kHash}) {
    IngestFixture fx(700, 120, 64, 3, assignment, 307, /*threads=*/2);
    // Delete a spread of base rows (tree-resident) and inserted rows
    // (buffer-resident at delete time).
    std::vector<std::uint32_t> deleted;
    for (std::uint32_t id = 0; id < 700; id += 53) {
      deleted.push_back(id);
    }
    for (std::uint32_t i = 0; i < 120; i += 11) {
      deleted.push_back(700 + i);
    }
    ExactOracle oracle(fx.combined, deleted, fx.scheme, &fx.pool);

    service::SearchService svc(service::WrapShardedIndex(fx.sharded),
                               &fx.pool);
    IngestConfig config;
    config.auto_compact = false;
    Compactor compactor(&svc, fx.sharded, config);
    for (std::size_t i = 0; i < fx.inserts.size(); ++i) {
      ASSERT_EQ(compactor.Insert(fx.inserts.row(i), fx.inserts.length()),
                StatusCode::kOk);
    }
    for (const std::uint32_t id : deleted) {
      ASSERT_EQ(compactor.Delete(id), StatusCode::kOk);
    }
    EXPECT_EQ(compactor.Metrics().deleted, deleted.size());

    const Dataset queries = Walk(8, 64, 308);
    for (std::size_t q = 0; q < queries.size(); ++q) {
      const service::SearchResponse response =
          svc.Search(MakeSearchRequest(queries, q, 10));
      ASSERT_EQ(response.status, service::RequestStatus::kOk);
      EXPECT_TRUE(BitIdentical(response.neighbors,
                               oracle.SearchKnn(queries.row(q), 10)))
          << "pre-compaction, assignment " << static_cast<int>(assignment)
          << " query " << q;
    }
    // A deleted row queried by its own values must not come back even at
    // rank 1 (its distance would be 0 — the hardest resurrection case).
    const service::SearchResponse self =
        svc.Search(MakeSearchRequest(fx.base, deleted[0], 1));
    ASSERT_EQ(self.status, service::RequestStatus::kOk);
    ASSERT_EQ(self.neighbors.size(), 1u);
    EXPECT_NE(self.neighbors[0].id, deleted[0]);

    // Compact everything; deleted rows are physically gone, answers
    // unchanged.
    compactor.Flush();
    EXPECT_EQ(compactor.Metrics().pending, 0u);
    for (std::size_t q = 0; q < queries.size(); ++q) {
      const service::SearchResponse response =
          svc.Search(MakeSearchRequest(queries, q, 10));
      ASSERT_EQ(response.status, service::RequestStatus::kOk);
      EXPECT_TRUE(BitIdentical(response.neighbors,
                               oracle.SearchKnn(queries.row(q), 10)))
          << "post-compaction, assignment " << static_cast<int>(assignment)
          << " query " << q;
    }
  }
}

// Regression (delete-then-compact ordering): a row that only ever lived
// in an un-compacted InsertBuffer and was deleted there must not
// resurrect when its shard compacts — the rebuild excludes it, and its
// tombstone is purged once the pre-compaction generations retire,
// without ever letting the row back in.
TEST(IngestDeleteTest, BufferedDeleteDoesNotResurrectAfterCompaction) {
  IngestFixture fx(80, 6, 32, 2, shard::ShardAssignment::kContiguous, 311,
                   /*threads=*/2);
  service::SearchService svc(service::WrapShardedIndex(fx.sharded), &fx.pool);
  IngestConfig config;
  config.auto_compact = false;
  Compactor compactor(&svc, fx.sharded, config);
  for (std::size_t i = 0; i < fx.inserts.size(); ++i) {
    ASSERT_EQ(compactor.Insert(fx.inserts.row(i), fx.inserts.length()),
              StatusCode::kOk);
  }
  // Row 82 exists only in the buffer; delete it, then fold the buffer.
  const std::uint32_t victim = 82;
  ASSERT_EQ(compactor.Delete(victim), StatusCode::kOk);
  EXPECT_EQ(compactor.Metrics().tombstones, 1u);
  compactor.Flush();

  // Query the victim's own values with k covering the whole collection:
  // it must be absent outright, not merely out-ranked.
  const std::size_t victim_row = victim - fx.base.size();
  service::SearchResponse response = svc.Search(
      MakeSearchRequest(fx.inserts, victim_row, fx.base.size() + fx.inserts.size()));
  ASSERT_EQ(response.status, service::RequestStatus::kOk);
  EXPECT_EQ(response.neighbors.size(),
            fx.base.size() + fx.inserts.size() - 1);
  for (const Neighbor& nb : response.neighbors) {
    EXPECT_NE(nb.id, victim);
  }

  // Another mutation round forces a publish whose retirement sweep can
  // purge the folded tombstone (no old generation is in flight here) —
  // and the row must stay gone afterwards.
  ASSERT_EQ(compactor.Insert(fx.inserts.row(0), fx.inserts.length()),
            StatusCode::kOk);
  compactor.Flush();
  EXPECT_EQ(compactor.Metrics().tombstones, 0u);
  response = svc.Search(MakeSearchRequest(fx.inserts, victim_row, 5));
  ASSERT_EQ(response.status, service::RequestStatus::kOk);
  for (const Neighbor& nb : response.neighbors) {
    EXPECT_NE(nb.id, victim);
  }

  // Re-deleting an id whose tombstone was already purged must still
  // report kAlreadyDeleted (not kOk), and must not install a fresh
  // never-purgeable tombstone.
  EXPECT_EQ(compactor.Delete(victim), StatusCode::kAlreadyDeleted);
  EXPECT_EQ(compactor.Metrics().tombstones, 0u);
  EXPECT_EQ(compactor.Metrics().deleted, 1u);
}

// A delete-only workload (no inserts at all) must still trigger
// compactions: the rebuilt shard sheds the deleted rows, the tombstones
// are purged, and the merge's k-widening returns to zero — instead of
// the tombstone set (and every query's per-shard k) growing without
// bound.
TEST(IngestDeleteTest, DeleteOnlyWorkloadCompactsAndPurges) {
  IngestFixture fx(300, 0, 32, 2, shard::ShardAssignment::kContiguous, 331,
                   /*threads=*/2);
  service::SearchService svc(service::WrapShardedIndex(fx.sharded), &fx.pool);
  IngestConfig config;
  config.compact_threshold = 32;  // auto compaction, delete-driven
  Compactor compactor(&svc, fx.sharded, config);
  std::vector<std::uint32_t> deleted;
  for (std::uint32_t id = 0; id < 40; ++id) {  // all route to shard 0
    deleted.push_back(id);
    ASSERT_EQ(compactor.Delete(id), StatusCode::kOk);
  }
  // Flush drains tombstone work too; with no queries in flight the
  // retirement sweep at the final publish purges everything folded.
  compactor.Flush();
  const IngestMetrics metrics = compactor.Metrics();
  EXPECT_GE(metrics.compactions, 1u);
  EXPECT_EQ(metrics.tombstones, 0u);
  EXPECT_EQ(metrics.deleted, 40u);
  // Physically gone, not merely masked — and answers match the oracle.
  EXPECT_EQ(compactor.current()->size(), 300u - 40u);
  ExactOracle oracle(fx.combined, deleted, fx.scheme, &fx.pool);
  const Dataset queries = Walk(5, 32, 332);
  for (std::size_t q = 0; q < queries.size(); ++q) {
    const service::SearchResponse response =
        svc.Search(MakeSearchRequest(queries, q, 8));
    ASSERT_EQ(response.status, service::RequestStatus::kOk);
    EXPECT_TRUE(BitIdentical(response.neighbors,
                             oracle.SearchKnn(queries.row(q), 8)));
  }
}

// Filtered-candidate accounting on the batched (throughput) path: each
// shard's tree is searched k + (tombstones routed to that shard) deep —
// per-shard widening, not the global count — masked buffer rows are not
// counted as scanned, and candidates_filtered equals exactly the number
// of tombstoned ids the widened tree answers surfaced.
TEST(IngestDeleteTest, ProfileAccountsFilteredCandidates) {
  IngestFixture fx(900, 50, 96, 3, shard::ShardAssignment::kContiguous, 313);
  service::ServiceConfig service_config;
  service_config.latency_mode_threshold = 0;  // force the flattened scatter
  service_config.start_paused = true;
  service::SearchService svc(service::WrapShardedIndex(fx.sharded), &fx.pool,
                             service_config);
  IngestConfig config;
  config.auto_compact = false;
  Compactor compactor(&svc, fx.sharded, config);
  for (std::size_t i = 0; i < fx.inserts.size(); ++i) {
    ASSERT_EQ(compactor.Insert(fx.inserts.row(i), fx.inserts.length()),
              StatusCode::kOk);
  }
  std::vector<std::uint32_t> deleted;
  for (std::uint32_t id = 0; id < 900; id += 97) {
    deleted.push_back(id);  // tree-resident
  }
  deleted.push_back(905);  // buffer-resident
  deleted.push_back(931);
  for (const std::uint32_t id : deleted) {
    ASSERT_EQ(compactor.Delete(id), StatusCode::kOk);
  }
  ASSERT_EQ(compactor.Metrics().tombstones, deleted.size());
  const std::unordered_set<std::uint32_t> dead(deleted.begin(),
                                               deleted.end());
  // The per-shard widening the service applies: tombstones routed to
  // each shard (none are purged here — no compactions ran).
  std::vector<std::size_t> shard_widening(3, 0);
  for (const std::uint32_t id : deleted) {
    ++shard_widening[compactor.RouteShard(id)];
  }

  const Dataset queries = Walk(6, 96, 314);
  const std::size_t k = 7;
  std::vector<std::future<service::SearchResponse>> futures;
  for (std::size_t q = 0; q < queries.size(); ++q) {
    futures.push_back(svc.Submit(MakeSearchRequest(queries, q, k, true)));
  }
  svc.Resume();
  for (std::size_t q = 0; q < queries.size(); ++q) {
    const service::SearchResponse response = futures[q].get();
    ASSERT_EQ(response.status, service::RequestStatus::kOk);
    index::QueryProfile expected;
    std::uint64_t expected_filtered = 0;
    const auto current = compactor.current();
    for (std::size_t s = 0; s < current->num_shards(); ++s) {
      const index::QueryEngine engine(current->shard(s).tree.get());
      const std::vector<Neighbor> shard_topk =
          engine.Search(queries.row(q), k + shard_widening[s], 0.0, &expected,
                        /*num_threads=*/1);
      for (const Neighbor& nb : shard_topk) {
        expected_filtered +=
            dead.count((*current->shard(s).global_ids)[nb.id]) != 0 ? 1 : 0;
      }
    }
    // Buffer scan: only live buffered rows cost a distance evaluation.
    expected.series_ed_computed += fx.inserts.size() - 2;
    EXPECT_EQ(response.profile.series_ed_computed,
              expected.series_ed_computed)
        << "query " << q;
    EXPECT_EQ(response.profile.nodes_visited, expected.nodes_visited);
    EXPECT_EQ(response.profile.series_lbd_checked,
              expected.series_lbd_checked);
    EXPECT_EQ(response.profile.candidates_filtered, expected_filtered)
        << "query " << q;
  }
}

// The deletes acceptance soak: inserts and deletes stream in while client
// threads query and the compactor rebuilds/republishes under the
// traffic. Once the last mutation lands, every answer — including those
// racing the remaining compactions and the final flush — must be
// bit-identical to the from-scratch oracle over base ∪ inserts \ deletes.
// The rowq variant races the compressed pruning tier through the same
// mutation storm.
void RunTrafficDeletesSoak(bool enable_rowq) {
  IngestFixture fx(1000, 400, 64, 3, shard::ShardAssignment::kContiguous,
                   317, /*threads=*/4, enable_rowq);
  std::vector<std::uint32_t> delete_base;
  for (std::uint32_t id = 0; id < 1000; id += 23) {
    delete_base.push_back(id);
  }
  std::vector<std::uint32_t> delete_inserted;
  for (std::uint32_t i = 0; i < 400; i += 9) {
    delete_inserted.push_back(1000 + i);
  }
  std::vector<std::uint32_t> deleted = delete_base;
  deleted.insert(deleted.end(), delete_inserted.begin(),
                 delete_inserted.end());
  ExactOracle oracle(fx.combined, deleted, fx.scheme, &fx.pool);

  service::ServiceConfig service_config;
  service_config.latency_mode_threshold = 2;  // mixed scheduling under load
  service_config.max_batch = 8;
  service::SearchService svc(service::WrapShardedIndex(fx.sharded), &fx.pool,
                             service_config);
  IngestConfig config;
  config.compact_threshold = 64;
  config.max_pending = 128;  // throttle the mutator behind the compactor
  Compactor compactor(&svc, fx.sharded, config);

  const Dataset queries = Walk(16, 64, 318);
  std::vector<std::vector<Neighbor>> expected;
  for (std::size_t q = 0; q < queries.size(); ++q) {
    expected.push_back(oracle.SearchKnn(queries.row(q), 10));
  }

  std::atomic<bool> all_mutated(false);
  std::atomic<std::size_t> failures(0);
  std::thread mutator([&] {
    // Base-row deletes interleave with the insert stream (deleting rows
    // that sit in trees while those trees are being rebuilt); deletes of
    // inserted rows run after their inserts.
    std::size_t base_next = 0;
    for (std::size_t i = 0; i < fx.inserts.size(); ++i) {
      while (compactor.Insert(fx.inserts.row(i), fx.inserts.length()) ==
             StatusCode::kRejected) {
        std::this_thread::yield();
      }
      if (i % 3 == 0 && base_next < delete_base.size()) {
        if (compactor.Delete(delete_base[base_next++]) != StatusCode::kOk) {
          failures.fetch_add(1);
        }
      }
    }
    while (base_next < delete_base.size()) {
      if (compactor.Delete(delete_base[base_next++]) != StatusCode::kOk) {
        failures.fetch_add(1);
      }
    }
    for (const std::uint32_t id : delete_inserted) {
      if (compactor.Delete(id) != StatusCode::kOk) {
        failures.fetch_add(1);
      }
    }
    all_mutated.store(true);
  });

  constexpr std::size_t kClients = 2;
  std::vector<std::thread> clients;
  for (std::size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      std::size_t q = c;
      // Phase 1: mutations still streaming — answers are exact over a
      // prefix of them; assert they complete OK.
      while (!all_mutated.load()) {
        const service::SearchResponse response =
            svc.Search(MakeSearchRequest(queries, q % queries.size(), 10));
        if (response.status != service::RequestStatus::kOk) {
          failures.fetch_add(1);
        }
        q += kClients;
      }
      // Phase 2: every mutation visible; compactions may still race —
      // answers must already match the filtered oracle bit for bit.
      for (std::size_t round = 0; round < 30; ++round) {
        const std::size_t idx = (q + round * kClients) % queries.size();
        const service::SearchResponse response =
            svc.Search(MakeSearchRequest(queries, idx, 10));
        if (response.status != service::RequestStatus::kOk ||
            !BitIdentical(response.neighbors, expected[idx])) {
          failures.fetch_add(1);
        }
      }
    });
  }
  mutator.join();
  compactor.Flush();  // compaction-under-traffic with the phase-2 clients
  for (std::thread& client : clients) {
    client.join();
  }
  EXPECT_EQ(failures.load(), 0u);
  EXPECT_EQ(compactor.Metrics().pending, 0u);
  EXPECT_EQ(compactor.Metrics().inserted, fx.inserts.size());
  EXPECT_EQ(compactor.Metrics().deleted, deleted.size());
  EXPECT_GE(compactor.Metrics().compactions, 3u);

  // Steady state after the flush: still bit-identical.
  for (std::size_t q = 0; q < queries.size(); ++q) {
    const service::SearchResponse response =
        svc.Search(MakeSearchRequest(queries, q, 10));
    ASSERT_EQ(response.status, service::RequestStatus::kOk);
    EXPECT_TRUE(BitIdentical(response.neighbors, expected[q]))
        << "query " << q;
  }
}

TEST(IngestExactnessTest, ExactUnderTrafficCompactionAndDeletes) {
  RunTrafficDeletesSoak(/*enable_rowq=*/false);
}

TEST(IngestExactnessTest, RowqTierExactUnderTrafficCompactionAndDeletes) {
  RunTrafficDeletesSoak(/*enable_rowq=*/true);
}

// ------------------------------------------------------ write-ahead log

TEST(WalTest, RoundTripAcrossRotation) {
  const std::string dir = WalTestDir("roundtrip");
  RemoveWalDir(dir);
  const std::size_t length = 8;
  const Dataset rows = Walk(10, length, 401);
  {
    WalConfig config;
    config.segment_bytes = 128;  // a few records per segment
    config.sync_every = 3;
    auto wal = WriteAheadLog::Open(dir, length, config);
    ASSERT_NE(wal, nullptr);
    for (std::size_t i = 0; i < rows.size(); ++i) {
      ASSERT_TRUE(wal->AppendInsert(static_cast<std::uint32_t>(100 + i),
                                    rows.row(i)));
    }
    ASSERT_TRUE(wal->AppendDelete(103));
    ASSERT_TRUE(wal->Sync());
    EXPECT_EQ(wal->unsynced_records(), 0u);
    EXPECT_GT(wal->segment_seq(), 0u);  // rotation happened
  }
  std::vector<WalRecord> records;
  const WalReplayStats stats = WriteAheadLog::Replay(
      dir, length, [&](const WalRecord& r) { records.push_back(r); });
  EXPECT_FALSE(stats.tail_truncated);
  EXPECT_EQ(stats.inserts, rows.size());
  EXPECT_EQ(stats.deletes, 1u);
  EXPECT_GT(stats.segments, 1u);
  ASSERT_EQ(records.size(), rows.size() + 1);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    EXPECT_EQ(records[i].type, WalRecordType::kInsert);
    EXPECT_EQ(records[i].id, 100 + i);
    ASSERT_EQ(records[i].row.size(), length);
    EXPECT_EQ(std::memcmp(records[i].row.data(), rows.row(i),
                          length * sizeof(float)),
              0);  // payload survives byte-exact
  }
  EXPECT_EQ(records.back().type, WalRecordType::kDelete);
  EXPECT_EQ(records.back().id, 103u);
  RemoveWalDir(dir);
}

TEST(WalTest, TornFinalRecordStopsCleanly) {
  const std::string dir = WalTestDir("torn");
  RemoveWalDir(dir);
  const std::size_t length = 16;
  const Dataset rows = Walk(4, length, 403);
  {
    auto wal = WriteAheadLog::Open(dir, length);
    ASSERT_NE(wal, nullptr);
    for (std::size_t i = 0; i < rows.size(); ++i) {
      ASSERT_TRUE(wal->AppendInsert(static_cast<std::uint32_t>(i),
                                    rows.row(i)));
    }
  }
  // Cut the last record mid-frame: a crash between the frame header and
  // the payload hitting disk.
  const std::vector<std::string> segments = WriteAheadLog::ListSegments(dir);
  ASSERT_EQ(segments.size(), 1u);
  std::vector<unsigned char> bytes = ReadFileBytes(segments[0]);
  bytes.resize(bytes.size() - length * sizeof(float) / 2);
  WriteFileBytes(segments[0], bytes);

  std::vector<WalRecord> records;
  const WalReplayStats stats = WriteAheadLog::Replay(
      dir, length, [&](const WalRecord& r) { records.push_back(r); });
  EXPECT_TRUE(stats.tail_truncated);
  ASSERT_EQ(records.size(), rows.size() - 1);  // last valid record kept
  EXPECT_EQ(records.back().id, rows.size() - 2);
  RemoveWalDir(dir);
}

TEST(WalTest, CrcCorruptionDetected) {
  const std::string dir = WalTestDir("crc");
  RemoveWalDir(dir);
  const std::size_t length = 12;
  const Dataset rows = Walk(3, length, 405);
  {
    auto wal = WriteAheadLog::Open(dir, length);
    ASSERT_NE(wal, nullptr);
    for (std::size_t i = 0; i < rows.size(); ++i) {
      ASSERT_TRUE(wal->AppendInsert(static_cast<std::uint32_t>(i),
                                    rows.row(i)));
    }
  }
  const std::vector<std::string> segments = WriteAheadLog::ListSegments(dir);
  ASSERT_EQ(segments.size(), 1u);
  std::vector<unsigned char> bytes = ReadFileBytes(segments[0]);
  bytes[bytes.size() - 1] ^= 0xFF;  // flip a bit inside the last payload
  WriteFileBytes(segments[0], bytes);

  std::vector<WalRecord> records;
  const WalReplayStats stats = WriteAheadLog::Replay(
      dir, length, [&](const WalRecord& r) { records.push_back(r); });
  EXPECT_TRUE(stats.tail_truncated);
  EXPECT_EQ(records.size(), rows.size() - 1);  // corrupt record dropped
  RemoveWalDir(dir);
}

TEST(WalTest, EmptySegmentsReplayClean) {
  const std::string dir = WalTestDir("empty");
  RemoveWalDir(dir);
  const std::size_t length = 8;
  // Two opens, zero records: recovery over header-only segments.
  { ASSERT_NE(WriteAheadLog::Open(dir, length), nullptr); }
  { ASSERT_NE(WriteAheadLog::Open(dir, length), nullptr); }
  EXPECT_EQ(WriteAheadLog::ListSegments(dir).size(), 2u);
  std::size_t records = 0;
  const WalReplayStats stats = WriteAheadLog::Replay(
      dir, length, [&](const WalRecord&) { ++records; });
  EXPECT_FALSE(stats.tail_truncated);
  EXPECT_EQ(stats.segments, 2u);
  EXPECT_EQ(records, 0u);
  RemoveWalDir(dir);
}

TEST(WalTest, CheckpointTruncatesAndResetsReplay) {
  const std::string dir = WalTestDir("checkpoint");
  RemoveWalDir(dir);
  const std::size_t length = 8;
  const Dataset rows = Walk(6, length, 407);
  auto wal = WriteAheadLog::Open(dir, length);
  ASSERT_NE(wal, nullptr);
  for (std::size_t i = 0; i < 4; ++i) {
    ASSERT_TRUE(
        wal->AppendInsert(static_cast<std::uint32_t>(i), rows.row(i)));
  }
  ASSERT_TRUE(wal->Sync());
  // Keep a copy of the pre-checkpoint segment so we can simulate a crash
  // between the checkpoint write and the old-segment unlink.
  const std::vector<std::string> before = WriteAheadLog::ListSegments(dir);
  ASSERT_EQ(before.size(), 1u);
  const std::vector<unsigned char> stale = ReadFileBytes(before[0]);

  ASSERT_TRUE(wal->AppendCheckpoint(/*next_id=*/4, /*tombstones=*/{1, 3}));
  // Truncation: only the checkpoint-headed segment survives.
  const std::vector<std::string> after = WriteAheadLog::ListSegments(dir);
  ASSERT_EQ(after.size(), 1u);
  EXPECT_NE(after[0], before[0]);
  ASSERT_TRUE(wal->AppendInsert(4, rows.row(4)));
  ASSERT_TRUE(wal->AppendInsert(5, rows.row(5)));
  wal.reset();

  // Replay of the truncated log: checkpoint first, then the tail.
  std::vector<WalRecord> records;
  WalReplayStats stats = WriteAheadLog::Replay(
      dir, length, [&](const WalRecord& r) { records.push_back(r); });
  EXPECT_FALSE(stats.tail_truncated);
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records[0].type, WalRecordType::kCheckpoint);
  EXPECT_EQ(records[0].next_id, 4u);
  EXPECT_EQ(records[0].tombstones, (std::vector<std::uint32_t>{1, 3}));
  EXPECT_EQ(records[1].id, 4u);
  EXPECT_EQ(records[2].id, 5u);

  // Crash-before-unlink: resurrect the stale prefix segment. Replay now
  // sees the old inserts first, then the checkpoint — consumers that
  // reset at checkpoints (Compactor::Recover) end in the identical
  // state, which is what makes checkpoint-truncation idempotent.
  WriteFileBytes(before[0], stale);
  records.clear();
  stats = WriteAheadLog::Replay(
      dir, length, [&](const WalRecord& r) { records.push_back(r); });
  EXPECT_FALSE(stats.tail_truncated);
  ASSERT_EQ(records.size(), 7u);  // 4 stale inserts + checkpoint + 2 tail
  EXPECT_EQ(records[4].type, WalRecordType::kCheckpoint);
  RemoveWalDir(dir);
}

// ------------------------------------------------------------- recovery

// The durability acceptance test: a mid-stream "crash" (Compactor and
// service destroyed with rows still buffered and tombstones live, trees
// lost) followed by reopen + Recover() yields answers bit-identical to
// both the uninterrupted run and the from-scratch filtered oracle —
// with query traffic racing the replay (TSan-covered via the
// concurrency label).
TEST(IngestRecoveryTest, CrashReplayBitIdentical) {
  const std::string dir = WalTestDir("recover");
  RemoveWalDir(dir);
  IngestFixture fx(600, 200, 64, 2, shard::ShardAssignment::kContiguous, 411,
                   /*threads=*/2);
  std::vector<std::uint32_t> deleted;
  for (std::uint32_t id = 5; id < 600; id += 61) {
    deleted.push_back(id);  // base rows
  }
  for (std::uint32_t i = 0; i < 200; i += 17) {
    deleted.push_back(600 + i);  // inserted rows
  }
  ExactOracle oracle(fx.combined, deleted, fx.scheme, &fx.pool);
  const Dataset queries = Walk(8, 64, 412);

  IngestConfig config;
  config.wal_dir = dir;
  config.wal.sync_every = 16;      // batched fsync on the hot path
  config.compact_threshold = 64;   // some rows compact, some stay buffered
  std::vector<std::vector<Neighbor>> pre_crash;
  {
    service::SearchService svc(service::WrapShardedIndex(fx.sharded),
                               &fx.pool);
    Compactor compactor(&svc, fx.sharded, config);
    const RecoverStats fresh = compactor.Recover();  // empty log: no-op
    EXPECT_TRUE(fresh.ok);
    EXPECT_EQ(fresh.inserts_applied, 0u);
    for (std::size_t i = 0; i < fx.inserts.size(); ++i) {
      while (compactor.Insert(fx.inserts.row(i), fx.inserts.length()) ==
             StatusCode::kRejected) {
        std::this_thread::yield();
      }
    }
    for (const std::uint32_t id : deleted) {
      ASSERT_EQ(compactor.Delete(id), StatusCode::kOk);
    }
    // Deliberately no Flush: the crash point leaves a mix of compacted
    // shards, buffered rows and un-purged tombstones.
    for (std::size_t q = 0; q < queries.size(); ++q) {
      const service::SearchResponse response =
          svc.Search(MakeSearchRequest(queries, q, 10));
      ASSERT_EQ(response.status, service::RequestStatus::kOk);
      pre_crash.push_back(response.neighbors);
      EXPECT_TRUE(BitIdentical(pre_crash[q],
                               oracle.SearchKnn(queries.row(q), 10)));
    }
  }  // "crash": trees and buffers gone; the WAL is all that survives

  {
    service::SearchService svc(service::WrapShardedIndex(fx.sharded),
                               &fx.pool);
    Compactor compactor(&svc, fx.sharded, config);
    // Traffic racing the replay: answers during recovery are exact over
    // the prefix of mutations applied so far and must complete OK.
    std::atomic<bool> recovering(true);
    std::thread client([&] {
      std::size_t q = 0;
      while (recovering.load()) {
        const service::SearchResponse response =
            svc.Search(MakeSearchRequest(queries, q++ % queries.size(), 10));
        EXPECT_EQ(response.status, service::RequestStatus::kOk);
      }
    });
    const RecoverStats stats = compactor.Recover();
    recovering.store(false);
    client.join();
    EXPECT_TRUE(stats.ok);
    EXPECT_FALSE(stats.tail_truncated);
    EXPECT_EQ(stats.inserts_applied, fx.inserts.size());
    EXPECT_EQ(stats.deletes_applied, deleted.size());
    EXPECT_EQ(compactor.Metrics().inserted, fx.inserts.size());
    EXPECT_EQ(compactor.Metrics().deleted, deleted.size());

    for (std::size_t q = 0; q < queries.size(); ++q) {
      const service::SearchResponse response =
          svc.Search(MakeSearchRequest(queries, q, 10));
      ASSERT_EQ(response.status, service::RequestStatus::kOk);
      EXPECT_TRUE(BitIdentical(response.neighbors, pre_crash[q]))
          << "recovered answer differs from pre-crash, query " << q;
    }
    // Compactions after recovery keep the invariant.
    compactor.Flush();
    for (std::size_t q = 0; q < queries.size(); ++q) {
      const service::SearchResponse response =
          svc.Search(MakeSearchRequest(queries, q, 10));
      ASSERT_EQ(response.status, service::RequestStatus::kOk);
      EXPECT_TRUE(BitIdentical(response.neighbors,
                               oracle.SearchKnn(queries.row(q), 10)));
    }
  }
  RemoveWalDir(dir);
}

// Checkpoint → truncate → more mutations → crash → Recover: replay
// starts from the checkpoint state (tombstones restored, log prefix
// gone) and applies only the tail — and doing so twice (the stale-prefix
// case is covered at the WAL level) ends in the same state.
TEST(IngestRecoveryTest, CheckpointTruncationLeavesReplayIdempotent) {
  const std::string dir = WalTestDir("cp_recover");
  RemoveWalDir(dir);
  IngestFixture fx(300, 0, 32, 2, shard::ShardAssignment::kContiguous, 417,
                   /*threads=*/2);
  std::vector<std::uint32_t> first_deletes = {3, 250, 77};
  std::vector<std::uint32_t> second_deletes = {10, 120};
  IngestConfig config;
  config.wal_dir = dir;
  config.auto_compact = false;
  {
    service::SearchService svc(service::WrapShardedIndex(fx.sharded),
                               &fx.pool);
    Compactor compactor(&svc, fx.sharded, config);
    for (const std::uint32_t id : first_deletes) {
      ASSERT_EQ(compactor.Delete(id), StatusCode::kOk);
    }
    // The caller's durable store here is the unchanged base collection
    // (no inserts happened), so checkpointing is sound: rows [0, 300)
    // are recoverable without the log, tombstones ride in the record.
    ASSERT_TRUE(compactor.Checkpoint().ok());
    EXPECT_EQ(WriteAheadLog::ListSegments(dir).size(), 1u);
    for (const std::uint32_t id : second_deletes) {
      ASSERT_EQ(compactor.Delete(id), StatusCode::kOk);
    }
  }
  std::vector<std::uint32_t> all_deleted = first_deletes;
  all_deleted.insert(all_deleted.end(), second_deletes.begin(),
                     second_deletes.end());
  ExactOracle oracle(fx.combined, all_deleted, fx.scheme, &fx.pool);
  const Dataset queries = Walk(5, 32, 418);
  {
    service::SearchService svc(service::WrapShardedIndex(fx.sharded),
                               &fx.pool);
    Compactor compactor(&svc, fx.sharded, config);
    const RecoverStats stats = compactor.Recover();
    EXPECT_TRUE(stats.ok);
    EXPECT_EQ(stats.checkpoints, 1u);
    EXPECT_EQ(compactor.Metrics().tombstones, all_deleted.size());
    for (std::size_t q = 0; q < queries.size(); ++q) {
      const service::SearchResponse response =
          svc.Search(MakeSearchRequest(queries, q, 8));
      ASSERT_EQ(response.status, service::RequestStatus::kOk);
      EXPECT_TRUE(BitIdentical(response.neighbors,
                               oracle.SearchKnn(queries.row(q), 8)));
    }
  }
  RemoveWalDir(dir);
}

// A log that does not belong to the supplied base (its first insert id
// leaves a gap) is refused instead of silently corrupting the state.
TEST(IngestRecoveryTest, RecoverRejectsForeignLog) {
  const std::string dir = WalTestDir("foreign");
  RemoveWalDir(dir);
  const std::size_t length = 32;
  const Dataset rows = Walk(2, length, 421);
  {
    auto wal = WriteAheadLog::Open(dir, length);
    ASSERT_NE(wal, nullptr);
    // Base below has 120 rows; id 500 leaves a gap of missing records.
    ASSERT_TRUE(wal->AppendInsert(500, rows.row(0)));
  }
  IngestFixture fx(120, 0, length, 2, shard::ShardAssignment::kContiguous,
                   422, /*threads=*/2);
  service::SearchService svc(service::WrapShardedIndex(fx.sharded), &fx.pool);
  IngestConfig config;
  config.wal_dir = dir;
  config.auto_compact = false;
  Compactor compactor(&svc, fx.sharded, config);
  const RecoverStats stats = compactor.Recover();
  EXPECT_FALSE(stats.ok);
  EXPECT_EQ(stats.inserts_applied, 0u);
  EXPECT_EQ(compactor.Metrics().inserted, 0u);
  RemoveWalDir(dir);
}

}  // namespace
}  // namespace ingest
}  // namespace sofa
