// Tests for the incremental ingest path (insert buffer → shard compaction
// → republish): the InsertBuffer's exact deterministic flat scan, the
// tree-∪-buffer merge determinism on cross-source distance ties, the
// QueryProfile accounting of the sharded batched path (merged counters
// equal the per-shard + buffer sums exactly once), and the headline
// exactness invariant — after N inserts, with compactions racing live
// query traffic, SearchService answers are bit-identical to a
// from-scratch single-index build over the full base + inserted
// collection.

#include <atomic>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "index/query_engine.h"
#include "index/tree_index.h"
#include "ingest/compactor.h"
#include "ingest/insert_buffer.h"
#include "service/search_service.h"
#include "service/snapshot.h"
#include "sfa/mcb.h"
#include "shard/sharded_index.h"
#include "test_data.h"
#include "util/thread_pool.h"

namespace sofa {
namespace ingest {
namespace {

using testing_data::BruteForceKnn;
using testing_data::Walk;

// Bit-exact comparison: same ids AND same float distances at every rank.
::testing::AssertionResult BitIdentical(const std::vector<Neighbor>& actual,
                                        const std::vector<Neighbor>& expected) {
  if (actual.size() != expected.size()) {
    return ::testing::AssertionFailure()
           << "size mismatch: " << actual.size() << " vs " << expected.size();
  }
  for (std::size_t i = 0; i < actual.size(); ++i) {
    if (actual[i].id != expected[i].id ||
        actual[i].distance != expected[i].distance) {
      return ::testing::AssertionFailure()
             << "rank " << i << ": " << actual[i].id << "("
             << actual[i].distance << ") vs expected " << expected[i].id << "("
             << expected[i].distance << ")";
    }
  }
  return ::testing::AssertionSuccess();
}

// A base collection, a sharded generation over it, the service serving
// it, and a from-scratch oracle over base ∪ inserts.
struct IngestFixture {
  ThreadPool pool;
  Dataset base;
  Dataset inserts;
  Dataset combined;  // base rows then insert rows, in insertion order
  std::shared_ptr<const quant::SummaryScheme> scheme;
  std::shared_ptr<const shard::ShardedIndex> sharded;
  std::unique_ptr<index::TreeIndex> oracle;  // over `combined`

  IngestFixture(std::size_t base_count, std::size_t insert_count,
                std::size_t length, std::size_t num_shards,
                shard::ShardAssignment assignment, std::uint64_t seed,
                std::size_t threads = 4)
      : pool(threads),
        base(Walk(base_count, length, seed)),
        inserts(Walk(insert_count, length, seed + 1)),
        combined(length) {
    for (std::size_t i = 0; i < base.size(); ++i) {
      combined.Append(base.row(i));
    }
    for (std::size_t i = 0; i < inserts.size(); ++i) {
      combined.Append(inserts.row(i));
    }
    sfa::SfaConfig sfa_config;
    sfa_config.word_length = 16;
    sfa_config.alphabet = 256;
    sfa_config.sampling_ratio = 0.2;
    scheme = sfa::TrainSfa(base, sfa_config, &pool);
    shard::ShardingConfig config;
    config.num_shards = num_shards;
    config.assignment = assignment;
    config.index.leaf_capacity = 100;
    sharded = shard::ShardedIndex::Build(base, config, scheme, &pool);
    index::IndexConfig oracle_config;
    oracle_config.leaf_capacity = 100;
    oracle = std::make_unique<index::TreeIndex>(&combined, scheme.get(),
                                                oracle_config, &pool);
  }
};

service::SearchRequest MakeRequest(const Dataset& queries, std::size_t q,
                                   std::size_t k, bool profile = false) {
  service::SearchRequest request;
  request.query.assign(queries.row(q), queries.row(q) + queries.length());
  request.k = k;
  request.collect_profile = profile;
  return request;
}

// ---------------------------------------------------------- InsertBuffer

TEST(InsertBufferTest, ScanMatchesBruteForceAcrossChunks) {
  const std::size_t length = 48;
  const Dataset rows = Walk(37, length, 91);
  InsertBuffer buffer(length, /*chunk_capacity=*/8);  // forces many chunks
  for (std::size_t i = 0; i < rows.size(); ++i) {
    EXPECT_EQ(buffer.Append(rows.row(i), 100 + static_cast<std::uint32_t>(i)),
              i + 1);
  }
  const Dataset queries = Walk(6, length, 92);
  for (std::size_t q = 0; q < queries.size(); ++q) {
    std::vector<Neighbor> found;
    const std::size_t scanned = buffer.SearchKnn(queries.row(q), 5, 0, &found);
    EXPECT_EQ(scanned, rows.size());
    const auto expected = BruteForceKnn(rows, queries.row(q), 5);
    ASSERT_EQ(found.size(), expected.size());
    for (std::size_t i = 0; i < expected.size(); ++i) {
      EXPECT_EQ(found[i].id, expected[i].id + 100) << "rank " << i;
      EXPECT_FLOAT_EQ(found[i].distance, expected[i].distance) << "rank " << i;
    }
  }
}

TEST(InsertBufferTest, ScanFromOffsetSeesOnlyNewerRows) {
  const std::size_t length = 32;
  const Dataset rows = Walk(20, length, 93);
  InsertBuffer buffer(length, 4);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    buffer.Append(rows.row(i), static_cast<std::uint32_t>(i));
  }
  std::vector<Neighbor> found;
  const std::size_t scanned =
      buffer.SearchKnn(rows.row(0), rows.size(), 12, &found);
  EXPECT_EQ(scanned, rows.size() - 12);
  ASSERT_EQ(found.size(), rows.size() - 12);
  for (const Neighbor& nb : found) {
    EXPECT_GE(nb.id, 12u);  // rows below the offset belong to the tree
  }
}

TEST(InsertBufferTest, TiesKeepLowestGlobalIdDeterministically) {
  const std::size_t length = 24;
  const Dataset distinct = Walk(3, length, 94);
  InsertBuffer buffer(length, 4);
  // Ids 10,11,12 then duplicates 13,14,15 of the same three rows.
  for (std::uint32_t round = 0; round < 2; ++round) {
    for (std::size_t i = 0; i < distinct.size(); ++i) {
      buffer.Append(distinct.row(i),
                    10 + round * 3 + static_cast<std::uint32_t>(i));
    }
  }
  // k = 1: both copies of row 0 are at distance 0; the lower id must win.
  std::vector<Neighbor> found;
  buffer.SearchKnn(distinct.row(0), 1, 0, &found);
  ASSERT_EQ(found.size(), 1u);
  EXPECT_EQ(found[0].id, 10u);
  EXPECT_EQ(found[0].distance, 0.0f);
  // k = 4: ascending (distance, id) throughout the tie runs.
  found.clear();
  buffer.SearchKnn(distinct.row(0), 4, 0, &found);
  ASSERT_EQ(found.size(), 4u);
  EXPECT_EQ(found[0].id, 10u);
  EXPECT_EQ(found[1].id, 13u);
  for (std::size_t i = 1; i < found.size(); ++i) {
    EXPECT_TRUE(found[i - 1].distance < found[i].distance ||
                (found[i - 1].distance == found[i].distance &&
                 found[i - 1].id < found[i].id));
  }
}

TEST(InsertBufferTest, TrimBelowReclaimsOnlyWholeChunks) {
  const std::size_t length = 16;
  const Dataset rows = Walk(20, length, 95);
  InsertBuffer buffer(length, 4);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    buffer.Append(rows.row(i), static_cast<std::uint32_t>(i));
  }
  buffer.TrimBelow(10);  // chunks [0,4) and [4,8) go; [8,12) stays (row 10,11)
  EXPECT_EQ(buffer.first_retained(), 8u);
  EXPECT_EQ(buffer.size(), rows.size());
  std::vector<Neighbor> found;
  buffer.SearchKnn(rows.row(12), rows.size(), 10, &found);
  EXPECT_EQ(found.size(), rows.size() - 10);
  // Appends continue seamlessly after a trim.
  buffer.Append(rows.row(0), 99);
  EXPECT_EQ(buffer.size(), rows.size() + 1);
}

// ------------------------------------------------- merge determinism

TEST(MergeNeighborListsTest, NormalizesTieRunsWithinAndAcrossLists) {
  // List A emits a tie run in scan order (7 before 3); list B ties at the
  // same distance with id 5. The merge must emit 3,5,7 and a k boundary
  // inside the run must keep the lowest ids.
  std::vector<std::vector<Neighbor>> lists;
  lists.push_back({Neighbor{1, 0.5f}, Neighbor{7, 2.0f}, Neighbor{3, 2.0f}});
  lists.push_back({Neighbor{5, 2.0f}, Neighbor{2, 9.0f}});
  const auto all = shard::MergeNeighborLists(lists, 10);
  ASSERT_EQ(all.size(), 5u);
  EXPECT_EQ(all[0].id, 1u);
  EXPECT_EQ(all[1].id, 3u);
  EXPECT_EQ(all[2].id, 5u);
  EXPECT_EQ(all[3].id, 7u);
  EXPECT_EQ(all[4].id, 2u);
  const auto cut = shard::MergeNeighborLists(lists, 2);
  ASSERT_EQ(cut.size(), 2u);
  EXPECT_EQ(cut[0].id, 1u);
  EXPECT_EQ(cut[1].id, 3u);  // lowest id of the tie run crosses the boundary
}

// Cross-shard / cross-structure distance ties straddling the k boundary:
// the documented lowest-global-id-first rule must hold with the duplicate
// in the insert buffer AND after a compaction moves it into the tree.
TEST(IngestTieTest, DuplicateStraddlingKBoundaryStaysDeterministic) {
  IngestFixture fx(40, 0, 64, 2, shard::ShardAssignment::kContiguous, 97,
                   /*threads=*/2);
  service::SearchService svc(service::WrapShardedIndex(fx.sharded), &fx.pool);
  IngestConfig config;
  config.auto_compact = false;  // compaction only when the test says so
  Compactor compactor(&svc, fx.sharded, config);

  // Duplicate base row 5 (shard 0's tree) twice: ids 40 and 41 route to
  // the last shard's buffer under contiguous assignment.
  ASSERT_EQ(compactor.Insert(fx.base.row(5), fx.base.length()),
            InsertStatus::kOk);
  ASSERT_EQ(compactor.Insert(fx.base.row(5), fx.base.length()),
            InsertStatus::kOk);
  ASSERT_EQ(compactor.RouteShard(40), 1u);
  ASSERT_EQ(compactor.RouteShard(41), 1u);

  const auto query_topk = [&](std::size_t k) {
    service::SearchResponse response =
        svc.Search(MakeRequest(fx.base, 5, k));
    EXPECT_EQ(response.status, service::RequestStatus::kOk);
    return response.neighbors;
  };

  // Three copies tie at distance 0; every k boundary keeps the lowest ids.
  auto top = query_topk(1);
  ASSERT_EQ(top.size(), 1u);
  EXPECT_EQ(top[0].id, 5u);
  EXPECT_EQ(top[0].distance, 0.0f);
  top = query_topk(2);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].id, 5u);
  EXPECT_EQ(top[1].id, 40u);
  EXPECT_EQ(top[1].distance, 0.0f);

  // Compact: the duplicates move from buffer to shard 1's rebuilt tree.
  compactor.Flush();
  EXPECT_EQ(compactor.Metrics().pending, 0u);
  EXPECT_GE(compactor.Metrics().compactions, 1u);
  top = query_topk(1);
  ASSERT_EQ(top.size(), 1u);
  EXPECT_EQ(top[0].id, 5u);
  top = query_topk(2);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].id, 5u);
  EXPECT_EQ(top[1].id, 40u);
  EXPECT_EQ(top[1].distance, 0.0f);
}

// ------------------------------------------------- profile accounting

// The sharded batched (throughput) path runs shard tasks itself and
// merges counters per (query, shard) plus the buffer scans; the merged
// counters must equal the per-shard + buffer sums exactly once — and the
// service-level metrics must merge each profiled response exactly once.
TEST(IngestProfileTest, BatchedShardedProfileMergesExactlyOnce) {
  IngestFixture fx(1200, 60, 96, 3, shard::ShardAssignment::kContiguous, 98);
  service::ServiceConfig config;
  config.latency_mode_threshold = 0;  // force the flattened scatter
  config.start_paused = true;         // stage a backlog -> real batches
  service::SearchService svc(service::WrapShardedIndex(fx.sharded), &fx.pool,
                             config);
  IngestConfig ingest_config;
  ingest_config.auto_compact = false;  // keep all inserts buffered
  Compactor compactor(&svc, fx.sharded, ingest_config);
  for (std::size_t i = 0; i < fx.inserts.size(); ++i) {
    ASSERT_EQ(compactor.Insert(fx.inserts.row(i), fx.inserts.length()),
              InsertStatus::kOk);
  }

  const Dataset queries = Walk(8, 96, 99);
  const std::size_t k = 7;
  std::vector<std::future<service::SearchResponse>> futures;
  for (std::size_t q = 0; q < queries.size(); ++q) {
    futures.push_back(svc.Submit(MakeRequest(queries, q, k, true)));
  }
  svc.Resume();

  index::QueryProfile responses_total;
  for (std::size_t q = 0; q < queries.size(); ++q) {
    const service::SearchResponse response = futures[q].get();
    ASSERT_EQ(response.status, service::RequestStatus::kOk);
    // Oracle: each shard tree searched single-threaded (like the scatter
    // tasks) plus one buffer-row distance evaluation per pending row.
    index::QueryProfile expected;
    const auto current = compactor.current();
    for (std::size_t s = 0; s < current->num_shards(); ++s) {
      const index::QueryEngine engine(current->shard(s).tree.get());
      (void)engine.Search(queries.row(q), k, 0.0, &expected,
                          /*num_threads=*/1);
    }
    expected.series_ed_computed += fx.inserts.size();  // buffered rows
    EXPECT_EQ(response.profile.series_ed_computed,
              expected.series_ed_computed)
        << "query " << q;
    EXPECT_EQ(response.profile.series_lbd_checked,
              expected.series_lbd_checked);
    EXPECT_EQ(response.profile.nodes_visited, expected.nodes_visited);
    EXPECT_EQ(response.profile.leaves_collected, expected.leaves_collected);
    responses_total.Merge(response.profile);
  }
  // Metrics merge each profiled response exactly once — no double-merge.
  const service::MetricsSnapshot metrics = svc.Metrics();
  EXPECT_EQ(metrics.profile.series_ed_computed,
            responses_total.series_ed_computed);
  EXPECT_EQ(metrics.profile.nodes_visited, responses_total.nodes_visited);
  EXPECT_EQ(metrics.profile.series_lbd_checked,
            responses_total.series_lbd_checked);
}

// Same invariant on the latency-mode (per-query scatter) path.
TEST(IngestProfileTest, LatencyModeShardedProfileMergesExactlyOnce) {
  IngestFixture fx(900, 40, 64, 2, shard::ShardAssignment::kHash, 101,
                   /*threads=*/2);
  service::SearchService svc(service::WrapShardedIndex(fx.sharded), &fx.pool);
  IngestConfig ingest_config;
  ingest_config.auto_compact = false;
  Compactor compactor(&svc, fx.sharded, ingest_config);
  for (std::size_t i = 0; i < fx.inserts.size(); ++i) {
    ASSERT_EQ(compactor.Insert(fx.inserts.row(i), fx.inserts.length()),
              InsertStatus::kOk);
  }
  const Dataset queries = Walk(5, 64, 102);
  for (std::size_t q = 0; q < queries.size(); ++q) {
    const service::SearchResponse response =
        svc.Search(MakeRequest(queries, q, 5, true));
    ASSERT_EQ(response.status, service::RequestStatus::kOk);
    index::QueryProfile expected;
    const auto current = compactor.current();
    for (std::size_t s = 0; s < current->num_shards(); ++s) {
      const index::QueryEngine engine(current->shard(s).tree.get());
      (void)engine.Search(queries.row(q), 5, 0.0, &expected,
                          /*num_threads=*/1);
    }
    expected.series_ed_computed += fx.inserts.size();
    EXPECT_EQ(response.profile.series_ed_computed,
              expected.series_ed_computed)
        << "query " << q;
    EXPECT_EQ(response.profile.nodes_visited, expected.nodes_visited);
  }
}

// ------------------------------------------------- exactness invariant

// Buffered-only (no compaction yet): inserts are immediately searchable
// and answers equal the from-scratch oracle bit for bit.
TEST(IngestExactnessTest, BufferedInsertsAnswerBitExact) {
  for (const shard::ShardAssignment assignment :
       {shard::ShardAssignment::kContiguous, shard::ShardAssignment::kHash}) {
    IngestFixture fx(800, 150, 64, 3, assignment, 103, /*threads=*/2);
    service::SearchService svc(service::WrapShardedIndex(fx.sharded),
                               &fx.pool);
    IngestConfig config;
    config.auto_compact = false;
    Compactor compactor(&svc, fx.sharded, config);
    for (std::size_t i = 0; i < fx.inserts.size(); ++i) {
      ASSERT_EQ(compactor.Insert(fx.inserts.row(i), fx.inserts.length()),
                InsertStatus::kOk);
    }
    EXPECT_EQ(compactor.Metrics().pending, fx.inserts.size());
    const Dataset queries = Walk(10, 64, 104);
    for (std::size_t q = 0; q < queries.size(); ++q) {
      const service::SearchResponse response =
          svc.Search(MakeRequest(queries, q, 10));
      ASSERT_EQ(response.status, service::RequestStatus::kOk);
      EXPECT_TRUE(BitIdentical(response.neighbors,
                               fx.oracle->SearchKnn(queries.row(q), 10)))
          << "assignment " << static_cast<int>(assignment) << " query " << q;
    }
    // After Flush every row lives in a tree; still bit-exact.
    compactor.Flush();
    EXPECT_EQ(compactor.Metrics().pending, 0u);
    EXPECT_EQ(compactor.current()->size(),
              fx.base.size() + fx.inserts.size());
    for (std::size_t q = 0; q < queries.size(); ++q) {
      const service::SearchResponse response =
          svc.Search(MakeRequest(queries, q, 10));
      ASSERT_EQ(response.status, service::RequestStatus::kOk);
      EXPECT_TRUE(BitIdentical(response.neighbors,
                               fx.oracle->SearchKnn(queries.row(q), 10)));
    }
  }
}

// Inserts are rejected (not dropped, not blocking) once the admission
// bound fills, and invalid-length rows are refused.
TEST(IngestExactnessTest, AdmissionBoundsAndInvalidRows) {
  IngestFixture fx(200, 0, 32, 2, shard::ShardAssignment::kContiguous, 105,
                   /*threads=*/2);
  service::SearchService svc(service::WrapShardedIndex(fx.sharded), &fx.pool);
  IngestConfig config;
  config.auto_compact = false;
  config.compact_threshold = 4;
  config.max_pending = 6;
  Compactor compactor(&svc, fx.sharded, config);
  const Dataset rows = Walk(10, 32, 106);
  std::size_t ok = 0, rejected = 0;
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const InsertStatus status = compactor.Insert(rows.row(i), rows.length());
    if (status == InsertStatus::kOk) {
      ++ok;
    } else if (status == InsertStatus::kRejected) {
      ++rejected;
    }
  }
  EXPECT_EQ(ok, 6u);
  EXPECT_EQ(rejected, 4u);
  std::vector<float> short_row(16, 0.0f);
  EXPECT_EQ(compactor.Insert(short_row.data(), short_row.size()),
            InsertStatus::kInvalid);
  const IngestMetrics metrics = compactor.Metrics();
  EXPECT_EQ(metrics.inserted, 6u);
  EXPECT_EQ(metrics.rejected, 4u);
  EXPECT_EQ(metrics.invalid, 1u);
  // A Flush drains the backlog and reopens admission.
  compactor.Flush();
  EXPECT_EQ(compactor.Insert(rows.row(0), rows.length()), InsertStatus::kOk);
}

// The acceptance soak: inserts stream in while client threads query and
// the compactor rebuilds/republishes shards under the traffic. Once the
// last insert lands, every answer — including those racing the remaining
// compactions and the final flush — must be bit-identical to the
// from-scratch single-index oracle over the full collection.
TEST(IngestExactnessTest, ExactUnderConcurrentTrafficAndCompaction) {
  IngestFixture fx(1200, 600, 64, 3, shard::ShardAssignment::kContiguous,
                   107);
  service::ServiceConfig service_config;
  service_config.latency_mode_threshold = 2;  // mixed scheduling under load
  service_config.max_batch = 8;
  service::SearchService svc(service::WrapShardedIndex(fx.sharded), &fx.pool,
                             service_config);
  IngestConfig config;
  config.compact_threshold = 64;
  // A tight admission bound throttles the inserter behind the compactor
  // (the retry loop below backs off on kRejected), guaranteeing several
  // compaction rounds race the query traffic instead of one big one.
  config.max_pending = 128;
  Compactor compactor(&svc, fx.sharded, config);

  const Dataset queries = Walk(16, 64, 108);
  std::vector<std::vector<Neighbor>> expected;
  for (std::size_t q = 0; q < queries.size(); ++q) {
    expected.push_back(fx.oracle->SearchKnn(queries.row(q), 10));
  }

  std::atomic<bool> all_inserted(false);
  std::atomic<std::size_t> failures(0);
  std::thread inserter([&] {
    for (std::size_t i = 0; i < fx.inserts.size(); ++i) {
      while (compactor.Insert(fx.inserts.row(i), fx.inserts.length()) ==
             InsertStatus::kRejected) {
        std::this_thread::yield();
      }
    }
    all_inserted.store(true);
  });

  constexpr std::size_t kClients = 2;
  std::vector<std::thread> clients;
  for (std::size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      std::size_t q = c;
      // Phase 1: while inserts stream in, answers are exact over a prefix
      // of the inserts — assert they complete OK.
      while (!all_inserted.load()) {
        const service::SearchResponse response =
            svc.Search(MakeRequest(queries, q % queries.size(), 10));
        if (response.status != service::RequestStatus::kOk) {
          failures.fetch_add(1);
        }
        q += kClients;
      }
      // Phase 2: every insert is visible; compactions may still be
      // racing — answers must already be bit-identical to the oracle.
      for (std::size_t round = 0; round < 30; ++round) {
        const std::size_t idx = (q + round * kClients) % queries.size();
        const service::SearchResponse response =
            svc.Search(MakeRequest(queries, idx, 10));
        if (response.status != service::RequestStatus::kOk ||
            !BitIdentical(response.neighbors, expected[idx])) {
          failures.fetch_add(1);
        }
      }
    });
  }
  inserter.join();
  // Flush concurrently with the phase-2 clients: compaction-under-traffic.
  compactor.Flush();
  for (std::thread& client : clients) {
    client.join();
  }
  EXPECT_EQ(failures.load(), 0u);
  EXPECT_EQ(compactor.Metrics().pending, 0u);
  EXPECT_EQ(compactor.Metrics().inserted, fx.inserts.size());
  EXPECT_GE(compactor.Metrics().compactions, 3u);
  EXPECT_EQ(compactor.current()->size(), fx.combined.size());

  // Steady state after the flush: still bit-identical.
  for (std::size_t q = 0; q < queries.size(); ++q) {
    const service::SearchResponse response =
        svc.Search(MakeRequest(queries, q, 10));
    ASSERT_EQ(response.status, service::RequestStatus::kOk);
    EXPECT_TRUE(BitIdentical(response.neighbors, expected[q])) << "query "
                                                               << q;
  }
  const service::MetricsSnapshot metrics = svc.Metrics();
  EXPECT_GE(metrics.swaps, compactor.Metrics().compactions);
}

// Hash-assigned ingest spreads inserts across shards and stays exact
// through multiple compaction rounds (several cuts per shard).
TEST(IngestExactnessTest, HashAssignmentMultiRoundCompaction) {
  IngestFixture fx(600, 300, 64, 4, shard::ShardAssignment::kHash, 109,
                   /*threads=*/2);
  service::SearchService svc(service::WrapShardedIndex(fx.sharded), &fx.pool);
  IngestConfig config;
  config.auto_compact = false;  // step compactions manually via Flush
  Compactor compactor(&svc, fx.sharded, config);
  const Dataset queries = Walk(6, 64, 110);
  // Three rounds: insert a third, flush, verify against a fresh oracle of
  // the prefix each time.
  const std::size_t third = fx.inserts.size() / 3;
  for (std::size_t round = 0; round < 3; ++round) {
    for (std::size_t i = round * third; i < (round + 1) * third; ++i) {
      ASSERT_EQ(compactor.Insert(fx.inserts.row(i), fx.inserts.length()),
                InsertStatus::kOk);
    }
    compactor.Flush();
    Dataset prefix(fx.combined.length());
    for (std::size_t i = 0; i < fx.base.size() + (round + 1) * third; ++i) {
      prefix.Append(fx.combined.row(i));
    }
    index::IndexConfig oracle_config;
    oracle_config.leaf_capacity = 100;
    const index::TreeIndex oracle(&prefix, fx.scheme.get(), oracle_config,
                                  &fx.pool);
    for (std::size_t q = 0; q < queries.size(); ++q) {
      const service::SearchResponse response =
          svc.Search(MakeRequest(queries, q, 8));
      ASSERT_EQ(response.status, service::RequestStatus::kOk);
      EXPECT_TRUE(BitIdentical(response.neighbors,
                               oracle.SearchKnn(queries.row(q), 8)))
          << "round " << round << " query " << q;
    }
  }
  EXPECT_GE(compactor.Metrics().compactions, 3u);
}

}  // namespace
}  // namespace ingest
}  // namespace sofa
