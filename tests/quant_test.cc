// Tests for the quantization substrate: binning rules, normal quantiles,
// breakpoint tables with hierarchical cardinality, and the LBD kernels
// (scalar vs AVX2, early abandoning, node-level prefixes).

#include <cmath>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "core/distance.h"  // CpuSupportsAvx512
#include "quant/binning.h"
#include "quant/breakpoint_table.h"
#include "quant/lbd.h"
#include "quant/normal_quantiles.h"
#include "util/rng.h"
#include "util/stats.h"

namespace sofa {
namespace quant {
namespace {

constexpr float kInf = std::numeric_limits<float>::infinity();

// ---------------------------------------------------------------- binning

TEST(BinningTest, EquiWidthEdgesAreEquallySpaced) {
  const std::vector<float> values = {0.0f, 10.0f};
  const auto edges = EquiWidthBreakpoints(values, 4);
  ASSERT_EQ(edges.size(), 3u);
  EXPECT_FLOAT_EQ(edges[0], 2.5f);
  EXPECT_FLOAT_EQ(edges[1], 5.0f);
  EXPECT_FLOAT_EQ(edges[2], 7.5f);
}

TEST(BinningTest, EquiDepthBalancesMass) {
  // 1000 uniform values: each of 4 bins should get ~250.
  Rng rng(1);
  std::vector<float> values(1000);
  for (auto& v : values) {
    v = static_cast<float>(rng.Uniform());
  }
  const auto edges = EquiDepthBreakpoints(values, 4);
  ASSERT_EQ(edges.size(), 3u);
  std::vector<int> counts(4, 0);
  for (float v : values) {
    counts[Quantize(v, edges.data(), 4)]++;
  }
  for (int c : counts) {
    EXPECT_NEAR(c, 250, 20);
  }
}

TEST(BinningTest, EquiDepthEdgesAreMonotone) {
  Rng rng(2);
  std::vector<float> values(500);
  for (auto& v : values) {
    v = static_cast<float>(rng.Gaussian());
  }
  const auto edges = EquiDepthBreakpoints(values, 256);
  for (std::size_t i = 1; i < edges.size(); ++i) {
    ASSERT_LE(edges[i - 1], edges[i]);
  }
}

TEST(BinningTest, EquiWidthDegenerateSampleYieldsEqualEdges) {
  const std::vector<float> values(10, 3.0f);
  const auto edges = EquiWidthBreakpoints(values, 8);
  for (float e : edges) {
    EXPECT_FLOAT_EQ(e, 3.0f);
  }
  // Everything still quantizes into a valid symbol.
  EXPECT_LT(Quantize(2.0f, edges.data(), 8), 8);
  EXPECT_LT(Quantize(3.0f, edges.data(), 8), 8);
  EXPECT_LT(Quantize(4.0f, edges.data(), 8), 8);
}

TEST(BinningTest, QuantizeHalfOpenIntervalConvention) {
  // Bin b covers [edge[b-1], edge[b]).
  const std::vector<float> edges = {1.0f, 2.0f, 3.0f};
  EXPECT_EQ(Quantize(0.5f, edges.data(), 4), 0);
  EXPECT_EQ(Quantize(1.0f, edges.data(), 4), 1);  // on edge -> upper bin
  EXPECT_EQ(Quantize(1.5f, edges.data(), 4), 1);
  EXPECT_EQ(Quantize(2.0f, edges.data(), 4), 2);
  EXPECT_EQ(Quantize(2.999f, edges.data(), 4), 2);
  EXPECT_EQ(Quantize(3.0f, edges.data(), 4), 3);
  EXPECT_EQ(Quantize(100.0f, edges.data(), 4), 3);
}

TEST(BinningTest, QuantizeMatchesLinearScanForRandomInput) {
  Rng rng(3);
  std::vector<float> sample(300);
  for (auto& v : sample) {
    v = static_cast<float>(rng.Gaussian());
  }
  for (const std::size_t alphabet : {2u, 8u, 64u, 256u}) {
    const auto edges = EquiDepthBreakpoints(sample, alphabet);
    for (int trial = 0; trial < 500; ++trial) {
      const float v = static_cast<float>(rng.Gaussian(0.0, 2.0));
      std::size_t expected = 0;
      while (expected < alphabet - 1 && edges[expected] <= v) {
        ++expected;
      }
      ASSERT_EQ(Quantize(v, edges.data(), alphabet), expected)
          << "value " << v << " alphabet " << alphabet;
    }
  }
}

TEST(BinningTest, LearnBreakpointsDispatches) {
  const std::vector<float> values = {0.0f, 1.0f, 2.0f, 3.0f, 4.0f,
                                     5.0f, 6.0f, 7.0f, 8.0f, 10.0f};
  const auto ew = LearnBreakpoints(values, 2, BinningMethod::kEquiWidth);
  const auto ed = LearnBreakpoints(values, 2, BinningMethod::kEquiDepth);
  ASSERT_EQ(ew.size(), 1u);
  ASSERT_EQ(ed.size(), 1u);
  EXPECT_FLOAT_EQ(ew[0], 5.0f);   // midpoint of range
  EXPECT_NEAR(ed[0], 4.5f, 0.1f); // median
}

TEST(BinningTest, MethodNames) {
  EXPECT_STREQ(BinningMethodName(BinningMethod::kEquiDepth), "equi-depth");
  EXPECT_STREQ(BinningMethodName(BinningMethod::kEquiWidth), "equi-width");
}

// ------------------------------------------------------- normal quantiles

TEST(NormalQuantilesTest, KnownQuantiles) {
  EXPECT_NEAR(InverseStdNormalCdf(0.5), 0.0, 1e-9);
  EXPECT_NEAR(InverseStdNormalCdf(0.975), 1.959963985, 1e-6);
  EXPECT_NEAR(InverseStdNormalCdf(0.025), -1.959963985, 1e-6);
  EXPECT_NEAR(InverseStdNormalCdf(0.8413447461), 1.0, 1e-6);
}

TEST(NormalQuantilesTest, RoundTripsThroughCdf) {
  for (double p = 0.001; p < 1.0; p += 0.013) {
    const double x = InverseStdNormalCdf(p);
    EXPECT_NEAR(stats::StdNormalCdf(x), p, 1e-9) << "p=" << p;
  }
}

TEST(NormalQuantilesTest, BreakpointsSymmetricAndMonotone) {
  for (const std::size_t alphabet : {2u, 4u, 8u, 256u}) {
    const auto edges = NormalBreakpoints(alphabet);
    ASSERT_EQ(edges.size(), alphabet - 1);
    for (std::size_t i = 1; i < edges.size(); ++i) {
      ASSERT_LT(edges[i - 1], edges[i]);
    }
    // Symmetry around 0.
    for (std::size_t i = 0; i < edges.size(); ++i) {
      ASSERT_NEAR(edges[i], -edges[edges.size() - 1 - i], 1e-5);
    }
  }
}

TEST(NormalQuantilesTest, ClassicSaxBreakpointsAlphabet4) {
  // The textbook SAX table for |Σ|=4: {-0.6745, 0, 0.6745}.
  const auto edges = NormalBreakpoints(4);
  EXPECT_NEAR(edges[0], -0.6745f, 1e-3f);
  EXPECT_NEAR(edges[1], 0.0f, 1e-6f);
  EXPECT_NEAR(edges[2], 0.6745f, 1e-3f);
}

// ---------------------------------------------------- breakpoint table

BreakpointTable MakeTestTable(std::size_t dims, std::size_t alphabet,
                              std::uint64_t seed) {
  Rng rng(seed);
  BreakpointTable table(dims, alphabet);
  for (std::size_t d = 0; d < dims; ++d) {
    std::vector<float> sample(400);
    for (auto& v : sample) {
      v = static_cast<float>(rng.Gaussian(0.0, 1.0 + d));
    }
    table.SetDimension(d, EquiDepthBreakpoints(sample, alphabet));
  }
  return table;
}

TEST(BreakpointTableTest, BitsComputed) {
  EXPECT_EQ(BreakpointTable(4, 256).bits(), 8u);
  EXPECT_EQ(BreakpointTable(4, 2).bits(), 1u);
  EXPECT_EQ(BreakpointTable(4, 16).bits(), 4u);
}

TEST(BreakpointTableTest, FullCardinalityBoundsBracketValue) {
  const auto table = MakeTestTable(4, 256, 11);
  Rng rng(12);
  for (int trial = 0; trial < 1000; ++trial) {
    const std::size_t dim = rng.Below(4);
    const float v = static_cast<float>(rng.Gaussian(0.0, 3.0));
    const std::uint8_t s = table.Quantize(dim, v);
    EXPECT_LE(table.PrefixLower(dim, s, 8), v);
    EXPECT_GT(table.PrefixUpper(dim, s, 8), v);
  }
}

TEST(BreakpointTableTest, OuterBinsExtendToInfinity) {
  const auto table = MakeTestTable(2, 16, 13);
  EXPECT_EQ(table.PrefixLower(0, 0, 4), -kInf);
  EXPECT_EQ(table.PrefixUpper(0, 15, 4), kInf);
  EXPECT_EQ(table.PrefixLower(1, 0, 1), -kInf);
  EXPECT_EQ(table.PrefixUpper(1, 1, 1), kInf);
}

TEST(BreakpointTableTest, PrefixIntervalsNestProperly) {
  // The interval of a prefix at cardinality c contains the intervals of
  // both its cardinality-(c+1) children.
  const auto table = MakeTestTable(1, 256, 14);
  for (std::uint32_t c = 1; c < 8; ++c) {
    for (std::uint32_t p = 0; p < (1u << c); ++p) {
      const float lo = table.PrefixLower(0, p, c);
      const float hi = table.PrefixUpper(0, p, c);
      const float child0_lo = table.PrefixLower(0, 2 * p, c + 1);
      const float child1_hi = table.PrefixUpper(0, 2 * p + 1, c + 1);
      ASSERT_EQ(lo, child0_lo);
      ASSERT_EQ(hi, child1_hi);
      ASSERT_LE(table.PrefixUpper(0, 2 * p, c + 1),
                table.PrefixLower(0, 2 * p + 1, c + 1) + 1e-20f);
    }
  }
}

TEST(BreakpointTableTest, MinDistZeroInsideInterval) {
  const auto table = MakeTestTable(2, 64, 15);
  Rng rng(16);
  for (int trial = 0; trial < 500; ++trial) {
    const float v = static_cast<float>(rng.Gaussian());
    const std::uint8_t s = table.Quantize(0, v);
    EXPECT_EQ(table.MinDist(0, s, v), 0.0f);
  }
}

TEST(BreakpointTableTest, MinDistIsDistanceToNearestBreakpoint) {
  BreakpointTable table(1, 4);
  table.SetDimension(0, {-1.0f, 0.0f, 1.0f});
  // Symbol 1 covers [-1, 0).
  EXPECT_FLOAT_EQ(table.MinDist(0, 1, -2.0f), 1.0f);   // below
  EXPECT_FLOAT_EQ(table.MinDist(0, 1, -0.5f), 0.0f);   // inside
  EXPECT_FLOAT_EQ(table.MinDist(0, 1, 0.75f), 0.75f);  // above
}

TEST(BreakpointTableTest, MinDistPrefixNeverExceedsFullCardinality) {
  // Coarser intervals are supersets: mindist must be monotonically
  // non-increasing as cardinality decreases.
  const auto table = MakeTestTable(1, 256, 17);
  Rng rng(18);
  for (int trial = 0; trial < 1000; ++trial) {
    const float word_value = static_cast<float>(rng.Gaussian());
    const float query = static_cast<float>(rng.Gaussian(0.0, 2.0));
    const std::uint8_t s = table.Quantize(0, word_value);
    float previous = table.MinDist(0, s, query);
    for (std::uint32_t c = 7; c >= 1; --c) {
      const std::uint32_t prefix = s >> (8 - c);
      const float d = table.MinDistPrefix(0, prefix, c, query);
      ASSERT_LE(d, previous + 1e-6f);
      previous = d;
    }
  }
}

TEST(BreakpointTableTest, GatherArraysMatchPrefixBounds) {
  const auto table = MakeTestTable(3, 32, 19);
  for (std::size_t dim = 0; dim < 3; ++dim) {
    for (std::uint32_t s = 0; s < 32; ++s) {
      EXPECT_EQ(table.lower_bounds()[dim * 32 + s],
                table.PrefixLower(dim, s, 5));
      EXPECT_EQ(table.upper_bounds()[dim * 32 + s],
                table.PrefixUpper(dim, s, 5));
    }
  }
}

// ---------------------------------------------------------------- LBD

struct LbdFixture {
  BreakpointTable table;
  std::vector<float> weights;

  LbdFixture(std::size_t dims, std::size_t alphabet, std::uint64_t seed)
      : table(MakeTestTable(dims, alphabet, seed)), weights(dims) {
    Rng rng(seed + 1);
    for (auto& w : weights) {
      w = static_cast<float>(rng.Uniform(0.5, 3.0));
    }
  }
};

class LbdDimsTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(LbdDimsTest, ScalarMatchesDirectEvaluation) {
  const std::size_t dims = GetParam();
  LbdFixture fx(dims, 256, 21);
  Rng rng(22);
  for (int trial = 0; trial < 100; ++trial) {
    std::vector<float> query(dims);
    std::vector<std::uint8_t> word(dims);
    for (std::size_t d = 0; d < dims; ++d) {
      query[d] = static_cast<float>(rng.Gaussian(0.0, 2.0));
      word[d] = fx.table.Quantize(d, static_cast<float>(rng.Gaussian()));
    }
    double expected = 0.0;
    for (std::size_t d = 0; d < dims; ++d) {
      const double m = fx.table.MinDist(d, word[d], query[d]);
      expected += fx.weights[d] * m * m;
    }
    const float actual = scalar::LbdSquared(fx.table, fx.weights.data(),
                                            query.data(), word.data());
    ASSERT_NEAR(actual, expected, 1e-4 * (expected + 1.0));
  }
}

#if defined(SOFA_HAVE_AVX2)
TEST_P(LbdDimsTest, Avx2MatchesScalar) {
  const std::size_t dims = GetParam();
  LbdFixture fx(dims, 256, 23);
  Rng rng(24);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<float> query(dims);
    std::vector<std::uint8_t> word(dims);
    for (std::size_t d = 0; d < dims; ++d) {
      query[d] = static_cast<float>(rng.Gaussian(0.0, 2.0));
      word[d] = fx.table.Quantize(d, static_cast<float>(rng.Gaussian()));
    }
    const float s = scalar::LbdSquared(fx.table, fx.weights.data(),
                                       query.data(), word.data());
    const float v = avx2::LbdSquared(fx.table, fx.weights.data(),
                                     query.data(), word.data());
    ASSERT_NEAR(v, s, 1e-4f * (s + 1.0f));
  }
}

TEST_P(LbdDimsTest, Avx2EarlyAbandonDecisionsMatchScalarExact) {
  const std::size_t dims = GetParam();
  LbdFixture fx(dims, 64, 25);
  Rng rng(26);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<float> query(dims);
    std::vector<std::uint8_t> word(dims);
    for (std::size_t d = 0; d < dims; ++d) {
      query[d] = static_cast<float>(rng.Gaussian(0.0, 2.0));
      word[d] = fx.table.Quantize(d, static_cast<float>(rng.Gaussian()));
    }
    const float exact = scalar::LbdSquared(fx.table, fx.weights.data(),
                                           query.data(), word.data());
    const float bound = static_cast<float>(rng.Uniform(0.0, exact + 1.0));
    const float result = avx2::LbdSquaredEarlyAbandon(
        fx.table, fx.weights.data(), query.data(), word.data(), bound);
    if (result > bound) {
      ASSERT_GT(exact, bound * (1.0f - 1e-4f));
    } else {
      ASSERT_NEAR(result, exact, 1e-4f * (exact + 1.0f));
    }
  }
}
#endif  // SOFA_HAVE_AVX2

#if defined(SOFA_COMPILE_AVX512)
TEST_P(LbdDimsTest, Avx512MatchesScalar) {
  if (!CpuSupportsAvx512()) {
    GTEST_SKIP() << "AVX512 not available on this machine";
  }
  const std::size_t dims = GetParam();
  LbdFixture fx(dims, 256, 41);
  Rng rng(42);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<float> query(dims);
    std::vector<std::uint8_t> word(dims);
    for (std::size_t d = 0; d < dims; ++d) {
      query[d] = static_cast<float>(rng.Gaussian(0.0, 2.0));
      word[d] = fx.table.Quantize(d, static_cast<float>(rng.Gaussian()));
    }
    const float s = scalar::LbdSquared(fx.table, fx.weights.data(),
                                       query.data(), word.data());
    const float v = avx512::LbdSquared(fx.table, fx.weights.data(),
                                       query.data(), word.data());
    ASSERT_NEAR(v, s, 1e-4f * (s + 1.0f));
  }
}

TEST_P(LbdDimsTest, Avx512EarlyAbandonDecisionsMatchScalarExact) {
  if (!CpuSupportsAvx512()) {
    GTEST_SKIP() << "AVX512 not available on this machine";
  }
  const std::size_t dims = GetParam();
  LbdFixture fx(dims, 64, 43);
  Rng rng(44);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<float> query(dims);
    std::vector<std::uint8_t> word(dims);
    for (std::size_t d = 0; d < dims; ++d) {
      query[d] = static_cast<float>(rng.Gaussian(0.0, 2.0));
      word[d] = fx.table.Quantize(d, static_cast<float>(rng.Gaussian()));
    }
    const float exact = scalar::LbdSquared(fx.table, fx.weights.data(),
                                           query.data(), word.data());
    const float bound = static_cast<float>(rng.Uniform(0.0, exact + 1.0));
    const float result = avx512::LbdSquaredEarlyAbandon(
        fx.table, fx.weights.data(), query.data(), word.data(), bound);
    if (result > bound) {
      ASSERT_GT(exact, bound * (1.0f - 1e-4f));
    } else {
      ASSERT_NEAR(result, exact, 1e-4f * (exact + 1.0f));
    }
  }
}
#endif  // SOFA_COMPILE_AVX512

TEST_P(LbdDimsTest, EarlyAbandonWithInfiniteBoundIsExact) {
  const std::size_t dims = GetParam();
  LbdFixture fx(dims, 128, 27);
  Rng rng(28);
  std::vector<float> query(dims);
  std::vector<std::uint8_t> word(dims);
  for (std::size_t d = 0; d < dims; ++d) {
    query[d] = static_cast<float>(rng.Gaussian(0.0, 2.0));
    word[d] = fx.table.Quantize(d, static_cast<float>(rng.Gaussian()));
  }
  const float exact =
      LbdSquared(fx.table, fx.weights.data(), query.data(), word.data());
  const float ea = LbdSquaredEarlyAbandon(fx.table, fx.weights.data(),
                                          query.data(), word.data(), kInf);
  EXPECT_NEAR(ea, exact, 1e-4f * (exact + 1.0f));
}

INSTANTIATE_TEST_SUITE_P(Dims, LbdDimsTest,
                         ::testing::Values(1, 4, 7, 8, 9, 15, 16, 17, 24, 32));

TEST(LbdTest, ZeroForWordOfSameValues) {
  // A query whose projection falls inside every interval of the word has
  // LBD 0 — in particular the word of the query itself.
  LbdFixture fx(16, 256, 29);
  Rng rng(30);
  std::vector<float> query(16);
  std::vector<std::uint8_t> word(16);
  for (std::size_t d = 0; d < 16; ++d) {
    query[d] = static_cast<float>(rng.Gaussian());
    word[d] = fx.table.Quantize(d, query[d]);
  }
  EXPECT_EQ(LbdSquared(fx.table, fx.weights.data(), query.data(),
                       word.data()),
            0.0f);
}

TEST(LbdTest, NodeLbdUnconstrainedDimsContributeNothing) {
  LbdFixture fx(8, 256, 31);
  std::vector<float> query(8, 100.0f);  // far outside everything
  std::vector<std::uint8_t> prefixes(8, 0);
  std::vector<std::uint8_t> cards(8, 0);  // all unconstrained
  EXPECT_EQ(NodeLbdSquared(fx.table, fx.weights.data(), query.data(),
                           prefixes.data(), cards.data()),
            0.0f);
}

TEST(LbdTest, NodeLbdNeverExceedsLeafLbd) {
  // Node prefixes are coarser than full-cardinality words, so the node LBD
  // must lower-bound the word LBD for any contained word.
  LbdFixture fx(16, 256, 32);
  Rng rng(33);
  for (int trial = 0; trial < 300; ++trial) {
    std::vector<float> query(16);
    std::vector<std::uint8_t> word(16);
    std::vector<std::uint8_t> prefixes(16);
    std::vector<std::uint8_t> cards(16);
    for (std::size_t d = 0; d < 16; ++d) {
      query[d] = static_cast<float>(rng.Gaussian(0.0, 2.0));
      word[d] = fx.table.Quantize(d, static_cast<float>(rng.Gaussian()));
      cards[d] = static_cast<std::uint8_t>(rng.Below(9));  // 0..8
      prefixes[d] =
          cards[d] == 0 ? 0 : static_cast<std::uint8_t>(word[d] >> (8 - cards[d]));
    }
    const float node = NodeLbdSquared(fx.table, fx.weights.data(),
                                      query.data(), prefixes.data(),
                                      cards.data());
    const float leaf = LbdSquared(fx.table, fx.weights.data(), query.data(),
                                  word.data());
    ASSERT_LE(node, leaf * (1.0f + 1e-5f) + 1e-5f);
  }
}

// Pinned numeric outputs for a hand-built table: the values below are
// exact in float arithmetic (small integers), so every ISA — and every
// future refactor — must reproduce them bit for bit. A regression here
// means the mindist semantics changed, not just its rounding.
TEST(LbdGoldenTest, PinnedVectorsMatchEveryIsa) {
  const std::size_t dims = 16;
  BreakpointTable table(dims, 4);
  for (std::size_t d = 0; d < dims; ++d) {
    table.SetDimension(d, {-1.0f, 0.0f, 1.0f});
  }
  // word d%4 cycles the four intervals; query 2.0 sits above all of
  // them, so per-dim mindist² cycles 9 (code 0: 2-(-1)), 4, 1, 0.
  std::vector<float> query(dims, 2.0f);
  std::vector<std::uint8_t> word(dims);
  for (std::size_t d = 0; d < dims; ++d) {
    word[d] = static_cast<std::uint8_t>(d % 4);
  }
  const std::vector<float> unit(dims, 1.0f);
  std::vector<float> alternating(dims);
  for (std::size_t d = 0; d < dims; ++d) {
    alternating[d] = static_cast<float>(d % 2 + 1);  // 1,2,1,2,...
  }
  // 4 · (9 + 4 + 1 + 0) = 56; weighted: 4 · (9 + 8 + 1 + 0) = 72.
  EXPECT_EQ(scalar::LbdSquared(table, unit.data(), query.data(), word.data()),
            56.0f);
  EXPECT_EQ(scalar::LbdSquared(table, alternating.data(), query.data(),
                               word.data()),
            72.0f);
  EXPECT_EQ(LbdSquared(table, unit.data(), query.data(), word.data()), 56.0f);
  EXPECT_EQ(LbdSquaredEarlyAbandon(table, unit.data(), query.data(),
                                   word.data(), kInf),
            56.0f);
#if defined(SOFA_HAVE_AVX2)
  EXPECT_EQ(avx2::LbdSquared(table, unit.data(), query.data(), word.data()),
            56.0f);
  EXPECT_EQ(avx2::LbdSquared(table, alternating.data(), query.data(),
                             word.data()),
            72.0f);
#endif
#if defined(SOFA_COMPILE_AVX512)
  if (CpuSupportsAvx512()) {
    EXPECT_EQ(
        avx512::LbdSquared(table, unit.data(), query.data(), word.data()),
        56.0f);
    EXPECT_EQ(avx512::LbdSquared(table, alternating.data(), query.data(),
                                 word.data()),
              72.0f);
  }
#endif
}

TEST(LbdTest, WeightsScaleContributions) {
  BreakpointTable table(1, 4);
  table.SetDimension(0, {-1.0f, 0.0f, 1.0f});
  const float query[] = {2.0f};
  const std::uint8_t word[] = {0};  // interval (-inf, -1): mindist = 3
  const float w1[] = {1.0f};
  const float w4[] = {4.0f};
  EXPECT_FLOAT_EQ(scalar::LbdSquared(table, w1, query, word), 9.0f);
  EXPECT_FLOAT_EQ(scalar::LbdSquared(table, w4, query, word), 36.0f);
}

}  // namespace
}  // namespace quant
}  // namespace sofa
