#include "harness/workload.h"

#include <cstdio>

#include <gtest/gtest.h>

#include "test_data.h"
#include "util/thread_pool.h"

namespace sofa {
namespace testing_harness {

MutationWorkload::MutationWorkload(std::uint64_t seed)
    : base(testing_data::Walk(kBase, kLength, seed)),
      inserts(testing_data::Walk(kSteps, kLength, seed + 1)) {}

void MutationWorkload::Apply(ingest::Compactor* compactor, std::size_t from,
                             std::size_t to) const {
  std::size_t i = InsertsBefore(from);
  std::size_t d = from / 5;
  for (std::size_t step = from; step < to; ++step) {
    if (IsDelete(step)) {
      const Status status = compactor->Delete(DeleteTarget(d++));
      ASSERT_TRUE(status == StatusCode::kOk ||
                  status == StatusCode::kAlreadyDeleted)
          << "delete at step " << step << " failed: " << status.ToString();
    } else {
      ASSERT_EQ(compactor->Insert(inserts.row(i++), kLength),
                StatusCode::kOk)
          << "insert at step " << step;
    }
  }
}

MutationWorkload::Oracle::Oracle(const MutationWorkload& w,
                                 std::size_t position, ThreadPool* pool)
    : combined_(kLength) {
  for (std::size_t i = 0; i < kBase; ++i) {
    combined_.Append(w.base.row(i));
  }
  const std::size_t applied_inserts = InsertsBefore(position);
  for (std::size_t i = 0; i < applied_inserts; ++i) {
    combined_.Append(w.inserts.row(i));
  }
  std::vector<std::uint32_t> deleted;
  for (std::size_t d = 0; d < position / 5; ++d) {
    deleted.push_back(DeleteTarget(d));
  }
  oracle_ = std::make_unique<ExactOracle>(
      combined_, deleted, TrainTestScheme(w.base, pool), pool);
}

std::shared_ptr<const shard::ShardedIndex> MutationWorkload::BuildSharded(
    ThreadPool* pool, bool enable_rowq) const {
  return BuildTestSharded(base, kShards, shard::ShardAssignment::kContiguous,
                          TrainTestScheme(base, pool), pool, enable_rowq);
}

std::vector<unsigned char> ReadFileBytes(const std::string& path) {
  std::vector<unsigned char> bytes;
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    return bytes;
  }
  unsigned char chunk[4096];
  std::size_t got;
  while ((got = std::fread(chunk, 1, sizeof(chunk), file)) > 0) {
    bytes.insert(bytes.end(), chunk, chunk + got);
  }
  std::fclose(file);
  return bytes;
}

void WriteFileBytes(const std::string& path,
                    const std::vector<unsigned char>& bytes) {
  std::FILE* file = std::fopen(path.c_str(), "wb");
  ASSERT_NE(file, nullptr);
  ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), file), bytes.size());
  std::fclose(file);
}

}  // namespace testing_harness
}  // namespace sofa
