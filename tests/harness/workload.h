// Shared randomized-workload harness — the deterministic seeded mutation
// stream (and crash-simulation file helpers) previously duplicated
// across the restart/recovery suites. One workload definition means the
// crash-loop child, the recovering parent, and the from-scratch oracle
// all agree on exactly which mutations exist at every prefix, with no
// per-test drift.

#ifndef SOFA_TESTS_HARNESS_WORKLOAD_H_
#define SOFA_TESTS_HARNESS_WORKLOAD_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/dataset.h"
#include "harness/oracle.h"
#include "ingest/compactor.h"
#include "shard/sharded_index.h"

namespace sofa {

class ThreadPool;

namespace testing_harness {

/// The deterministic workload shared by every restart test (and by both
/// sides of the fork in the crash loop): a base collection, one mutation
/// stream (4 inserts then 1 delete, repeating; delete targets are
/// distinct base ids so a replayed prefix never re-deletes), and the
/// from-scratch oracle over any durable prefix of that stream.
struct MutationWorkload {
  static constexpr std::size_t kBase = 400;
  static constexpr std::size_t kLength = 32;
  static constexpr std::size_t kShards = 2;
  static constexpr std::size_t kSteps = 900;

  Dataset base;
  Dataset inserts;  // row i carries global id kBase + i

  explicit MutationWorkload(std::uint64_t seed = 1234);

  static bool IsDelete(std::size_t step) { return step % 5 == 4; }

  /// Number of inserts among steps [0, p).
  static std::size_t InsertsBefore(std::size_t p) { return p - p / 5; }

  /// The d-th delete target: a permutation of base ids, so every target
  /// is valid from step 0 and no id is ever deleted twice.
  static std::uint32_t DeleteTarget(std::size_t d) {
    return static_cast<std::uint32_t>((d * 197 + 13) % kBase);
  }

  /// Applies steps [from, to) through the compactor. Inserts must resume
  /// exactly at the recovered id watermark; deletes are idempotent
  /// (kAlreadyDeleted after a crash-resume replays past them).
  void Apply(ingest::Compactor* compactor, std::size_t from,
             std::size_t to) const;

  /// From-scratch oracle over the durable prefix [0, position) of the
  /// mutation stream.
  struct Oracle {
    Oracle(const MutationWorkload& w, std::size_t position,
           ThreadPool* pool);

    std::vector<Neighbor> SearchKnn(const float* query,
                                    std::size_t k) const {
      return oracle_->SearchKnn(query, k);
    }

   private:
    Dataset combined_;
    std::unique_ptr<ExactOracle> oracle_;
  };

  /// Builds the base sharded generation (round-1 bootstrap; later rounds
  /// reload it from the store instead). `enable_rowq` turns on the
  /// compressed pruning tier.
  std::shared_ptr<const shard::ShardedIndex> BuildSharded(
      ThreadPool* pool, bool enable_rowq = false) const;
};

/// Whole-file byte copy — used to resurrect truncated segments, corrupt
/// specific bytes, and otherwise simulate crashes and bit rot.
std::vector<unsigned char> ReadFileBytes(const std::string& path);
void WriteFileBytes(const std::string& path,
                    const std::vector<unsigned char>& bytes);

}  // namespace testing_harness
}  // namespace sofa

#endif  // SOFA_TESTS_HARNESS_WORKLOAD_H_
