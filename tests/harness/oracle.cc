#include "harness/oracle.h"

#include <unordered_set>

#include "sfa/mcb.h"
#include "util/thread_pool.h"

namespace sofa {
namespace testing_harness {

::testing::AssertionResult BitIdentical(const std::vector<Neighbor>& actual,
                                        const std::vector<Neighbor>& expected) {
  if (actual.size() != expected.size()) {
    return ::testing::AssertionFailure()
           << "size mismatch: " << actual.size() << " vs " << expected.size();
  }
  for (std::size_t i = 0; i < actual.size(); ++i) {
    if (actual[i].id != expected[i].id ||
        actual[i].distance != expected[i].distance) {
      return ::testing::AssertionFailure()
             << "rank " << i << ": " << actual[i].id << "("
             << actual[i].distance << ") vs expected " << expected[i].id
             << "(" << expected[i].distance << ")";
    }
  }
  return ::testing::AssertionSuccess();
}

std::shared_ptr<const quant::SummaryScheme> TrainTestScheme(
    const Dataset& data, ThreadPool* pool) {
  sfa::SfaConfig config;
  config.word_length = 16;
  config.alphabet = 256;
  config.sampling_ratio = 0.2;
  return sfa::TrainSfa(data, config, pool);
}

std::shared_ptr<const shard::ShardedIndex> BuildTestSharded(
    const Dataset& data, std::size_t num_shards,
    shard::ShardAssignment assignment,
    const std::shared_ptr<const quant::SummaryScheme>& scheme,
    ThreadPool* pool, bool enable_rowq) {
  shard::ShardingConfig config;
  config.num_shards = num_shards;
  config.assignment = assignment;
  config.index.leaf_capacity = 100;
  config.enable_rowq = enable_rowq;
  return shard::ShardedIndex::Build(data, config, scheme, pool);
}

ExactOracle::ExactOracle(
    const Dataset& combined, const std::vector<std::uint32_t>& deleted,
    const std::shared_ptr<const quant::SummaryScheme>& scheme,
    ThreadPool* pool, std::size_t leaf_capacity)
    : data_(combined.length()), scheme_(scheme) {
  const std::unordered_set<std::uint32_t> dead(deleted.begin(),
                                               deleted.end());
  for (std::size_t i = 0; i < combined.size(); ++i) {
    if (dead.count(static_cast<std::uint32_t>(i)) == 0) {
      data_.Append(combined.row(i));
      kept_.push_back(static_cast<std::uint32_t>(i));
    }
  }
  index::IndexConfig config;
  config.leaf_capacity = leaf_capacity;
  tree_ = std::make_unique<index::TreeIndex>(&data_, scheme_.get(), config,
                                             pool);
}

std::vector<Neighbor> ExactOracle::SearchKnn(const float* query,
                                             std::size_t k) const {
  std::vector<Neighbor> result = tree_->SearchKnn(query, k);
  for (Neighbor& nb : result) {
    nb.id = kept_[nb.id];
  }
  return result;
}

service::SearchRequest MakeSearchRequest(const Dataset& queries,
                                         std::size_t q, std::size_t k,
                                         bool profile) {
  service::SearchRequest request;
  request.query.assign(queries.row(q), queries.row(q) + queries.length());
  request.k = k;
  request.collect_profile = profile;
  return request;
}

}  // namespace testing_harness
}  // namespace sofa
