// Shared exactness harness — the brute-force oracle and bit-identity
// assertions previously duplicated across ingest_test, persist_test and
// net_test. Every end-to-end suite proves the same invariant (engine
// answers == from-scratch oracle, bit for bit), so the oracle lives in
// one place: a fix to the comparison or to the oracle's tie-breaking
// applies to every suite at once, and new tiers (like the compressed
// rowq scan) get their exactness proven by the identical yardstick the
// uncompressed path is held to.

#ifndef SOFA_TESTS_HARNESS_ORACLE_H_
#define SOFA_TESTS_HARNESS_ORACLE_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "core/dataset.h"
#include "core/neighbor.h"
#include "index/tree_index.h"
#include "quant/summary_scheme.h"
#include "service/request.h"
#include "shard/sharded_index.h"

namespace sofa {

class ThreadPool;

namespace testing_harness {

/// Bit-exact comparison: same ids AND same float distances at every
/// rank. This is the exactness yardstick of the whole engine — ties must
/// resolve to the lowest global id, and no tier (LBD, rowq, sharding,
/// the wire) may perturb a single bit of the answer.
::testing::AssertionResult BitIdentical(const std::vector<Neighbor>& actual,
                                        const std::vector<Neighbor>& expected);

/// The standard test summary scheme every end-to-end suite builds on:
/// SFA, word length 16, alphabet 256, 20% sampling.
std::shared_ptr<const quant::SummaryScheme> TrainTestScheme(
    const Dataset& data, ThreadPool* pool);

/// A sharded generation over `data` with the standard test tree config
/// (leaf capacity 100). `enable_rowq` turns on the compressed pruning
/// tier — answers must stay bit-identical either way.
std::shared_ptr<const shard::ShardedIndex> BuildTestSharded(
    const Dataset& data, std::size_t num_shards,
    shard::ShardAssignment assignment,
    const std::shared_ptr<const quant::SummaryScheme>& scheme,
    ThreadPool* pool, bool enable_rowq = false);

/// From-scratch single-tree oracle over `combined` minus the `deleted`
/// global ids, with answers remapped back to the original global ids —
/// what any serving configuration must match bit for bit.
class ExactOracle {
 public:
  ExactOracle(const Dataset& combined,
              const std::vector<std::uint32_t>& deleted,
              const std::shared_ptr<const quant::SummaryScheme>& scheme,
              ThreadPool* pool, std::size_t leaf_capacity = 100);

  std::vector<Neighbor> SearchKnn(const float* query, std::size_t k) const;

 private:
  Dataset data_;
  std::vector<std::uint32_t> kept_;
  std::shared_ptr<const quant::SummaryScheme> scheme_;
  std::unique_ptr<index::TreeIndex> tree_;
};

/// One search request over queries.row(q).
service::SearchRequest MakeSearchRequest(const Dataset& queries,
                                         std::size_t q, std::size_t k,
                                         bool profile = false);

}  // namespace testing_harness
}  // namespace sofa

#endif  // SOFA_TESTS_HARNESS_ORACLE_H_
