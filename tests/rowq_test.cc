// Tests for the compressed pruning tier (src/quant/rowq): the
// admissibility property the engine's exactness rests on (the deflated
// quantized bound never exceeds the float distance any compiled-in exact
// kernel reports — including denormal, huge-magnitude, constant and
// special-value rows, and dimensionalities that are not a multiple of
// the SIMD width), bit-identity of the scalar/AVX2/AVX512 kernels, the
// encode-time containment contract (uncontainable rows are flagged
// unprunable with zeroed codes), and end-to-end bit-identity of answers
// with the tier on vs off for the tree, the sharded service, and the
// flat baseline — with the rowq work counters visible in the profile.

#include <cmath>
#include <cstring>
#include <limits>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "core/dataset.h"
#include "core/distance.h"
#include "flat/index_flat_l2.h"
#include "harness/oracle.h"
#include "index/tree_index.h"
#include "quant/rowq.h"
#include "service/search_service.h"
#include "service/snapshot.h"
#include "shard/sharded_index.h"
#include "test_data.h"
#include "util/aligned.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace sofa {
namespace quant {
namespace {

using testing_data::Walk;
using testing_harness::BitIdentical;
using testing_harness::MakeSearchRequest;

constexpr float kInf = std::numeric_limits<float>::infinity();
constexpr float kNan = std::numeric_limits<float>::quiet_NaN();

std::size_t RoundUpLanes(std::size_t n) {
  return (n + kRowqLanes - 1) / kRowqLanes * kRowqLanes;
}

// ------------------------------------------------------ kernel identity

// Random padded grid/codes/query with pad dimensions zeroed — the layout
// every kernel consumes.
struct KernelInput {
  AlignedVector<float> query;
  AlignedVector<float> mins;
  AlignedVector<float> deltas;
  AlignedVector<std::uint8_t> code;

  KernelInput(std::size_t length, Rng* rng) {
    const std::size_t padded = RoundUpLanes(length);
    query.assign(padded, 0.0f);
    mins.assign(padded, 0.0f);
    deltas.assign(padded, 0.0f);
    code.assign(padded, 0);
    for (std::size_t d = 0; d < length; ++d) {
      query[d] = static_cast<float>(rng->Gaussian(0.0, 2.0));
      mins[d] = static_cast<float>(rng->Gaussian(0.0, 1.0));
      // Include zero deltas (constant dimensions) now and then.
      deltas[d] = rng->Below(8) == 0
                      ? 0.0f
                      : static_cast<float>(rng->Uniform(0.0, 0.05));
      code[d] = static_cast<std::uint8_t>(rng->Below(256));
    }
  }
};

TEST(RowqKernelTest, IsaVariantsAreBitIdentical) {
  Rng rng(401);
  for (const std::size_t length : {1, 7, 16, 17, 33, 48, 100, 256}) {
    const std::size_t padded = RoundUpLanes(length);
    for (int trial = 0; trial < 200; ++trial) {
      const KernelInput in(length, &rng);
      const float s = scalar::RowqLowerBoundSquared(
          in.query.data(), in.mins.data(), in.deltas.data(), in.code.data(),
          padded);
      const float dispatched = RowqLowerBoundSquared(
          in.query.data(), in.mins.data(), in.deltas.data(), in.code.data(),
          padded);
      // Bit equality, not closeness: persisted bounds must not depend on
      // the serving machine's ISA.
      ASSERT_EQ(s, dispatched) << "length " << length;
#if defined(SOFA_HAVE_AVX2)
      const float v2 = avx2::RowqLowerBoundSquared(
          in.query.data(), in.mins.data(), in.deltas.data(), in.code.data(),
          padded);
      ASSERT_EQ(s, v2) << "length " << length;
#endif
#if defined(SOFA_COMPILE_AVX512)
      if (CpuSupportsAvx512()) {
        const float v5 = avx512::RowqLowerBoundSquared(
            in.query.data(), in.mins.data(), in.deltas.data(), in.code.data(),
            padded);
        ASSERT_EQ(s, v5) << "length " << length;
      }
#endif
    }
  }
}

// The early-abandoning kernel: with abandon = +inf it must return
// exactly the full-sum kernel's bits; with a finite abandon every ISA
// must return the same (partial or full) value, and a returned value at
// or below the abandon threshold must equal the full sum (the scan only
// stops once the partial exceeds it).
TEST(RowqKernelTest, EarlyAbandonAgreesAcrossIsasAndWithFullSum) {
  constexpr float kInf = std::numeric_limits<float>::infinity();
  Rng rng(977);
  for (const std::size_t length : {1, 16, 17, 48, 100, 256}) {
    const std::size_t padded = RoundUpLanes(length);
    for (int trial = 0; trial < 200; ++trial) {
      const KernelInput in(length, &rng);
      const float full = scalar::RowqLowerBoundSquared(
          in.query.data(), in.mins.data(), in.deltas.data(), in.code.data(),
          padded);
      ASSERT_EQ(scalar::RowqLowerBoundSquaredEarlyAbandon(
                    in.query.data(), in.mins.data(), in.deltas.data(),
                    in.code.data(), padded, kInf),
                full)
          << "length " << length;
      // Abandon thresholds straddling the sum: 0 forces the earliest
      // exit, full/2 lands mid-scan, 2*full never fires.
      for (const float abandon : {0.0f, full * 0.5f, full * 2.0f}) {
        const float s = scalar::RowqLowerBoundSquaredEarlyAbandon(
            in.query.data(), in.mins.data(), in.deltas.data(),
            in.code.data(), padded, abandon);
        if (s <= abandon) {
          ASSERT_EQ(s, full) << "length " << length;  // ran to completion
        }
        const float dispatched = RowqLowerBoundSquaredEarlyAbandon(
            in.query.data(), in.mins.data(), in.deltas.data(),
            in.code.data(), padded, abandon);
        ASSERT_EQ(s, dispatched) << "length " << length;
#if defined(SOFA_HAVE_AVX2)
        const float v2 = avx2::RowqLowerBoundSquaredEarlyAbandon(
            in.query.data(), in.mins.data(), in.deltas.data(),
            in.code.data(), padded, abandon);
        ASSERT_EQ(s, v2) << "length " << length;
#endif
#if defined(SOFA_COMPILE_AVX512)
        if (CpuSupportsAvx512()) {
          const float v5 = avx512::RowqLowerBoundSquaredEarlyAbandon(
              in.query.data(), in.mins.data(), in.deltas.data(),
              in.code.data(), padded, abandon);
          ASSERT_EQ(s, v5) << "length " << length;
        }
#endif
      }
    }
  }
}

// ------------------------------------------------------- admissibility

// Appends `count` rows drawn by `fill(row_index, dim)` to `data`.
template <typename Fill>
void AppendRows(Dataset* data, std::size_t count, std::size_t length,
                Fill fill) {
  std::vector<float> row(length);
  for (std::size_t i = 0; i < count; ++i) {
    for (std::size_t d = 0; d < length; ++d) {
      row[d] = fill(i, d);
    }
    data->Append(row.data());
  }
}

// An adversarial collection: Gaussian rows, denormal-scale rows, huge
// ±1e37 rows, per-row constants (so some columns have zero range),
// exact zeros, and FLT_MAX edges.
Dataset AdversarialRows(std::size_t length, std::uint64_t seed) {
  Dataset data(length);
  Rng rng(seed);
  AppendRows(&data, 40, length, [&](std::size_t, std::size_t) {
    return static_cast<float>(rng.Gaussian(0.0, 2.0));
  });
  AppendRows(&data, 10, length, [&](std::size_t, std::size_t) {
    return static_cast<float>(rng.Gaussian()) * 1e-41f;  // denormal scale
  });
  AppendRows(&data, 10, length, [&](std::size_t i, std::size_t d) {
    return ((i + d) % 2 == 0 ? 1.0f : -1.0f) * 1e37f;  // huge magnitudes
  });
  AppendRows(&data, 8, length, [&](std::size_t i, std::size_t) {
    return static_cast<float>(i) - 4.0f;  // constant rows, distinct values
  });
  AppendRows(&data, 4, length,
             [&](std::size_t, std::size_t) { return 0.0f; });
  AppendRows(&data, 2, length, [&](std::size_t i, std::size_t) {
    return i == 0 ? std::numeric_limits<float>::max()
                  : -std::numeric_limits<float>::max();
  });
  return data;
}

// The invariant the engine prunes on: for every prunable row, the
// deflated bound never exceeds the float distance ANY compiled-in exact
// kernel reports for (query, row).
void CheckAdmissible(const Dataset& data, const Dataset& queries) {
  const std::shared_ptr<const RowQuant> rowq = RowQuant::Build(data);
  ASSERT_NE(rowq, nullptr);
  ASSERT_EQ(rowq->rows(), data.size());
  const RowQuantizer& q = rowq->quantizer();
  const std::size_t n = data.length();
  for (std::size_t qi = 0; qi < queries.size(); ++qi) {
    const float* query = queries.row(qi);
    const RowQuantView view(rowq.get(), query);
    for (std::size_t i = 0; i < data.size(); ++i) {
      if (!view.prunable(i)) {
        continue;  // row always takes the exact kernel; nothing to prove
      }
      const float lb = view.LowerBound(i);
      ASSERT_GE(lb, 0.0f);
      ASSERT_TRUE(std::isfinite(lb));
      const float exact = SquaredEuclidean(query, data.row(i), n);
      ASSERT_LE(lb, exact)
          << "query " << qi << " row " << i << " length " << n;
      // The early-abandoning path must stay admissible at every abandon
      // point: a partial sum deflates to a smaller bound, never a
      // larger one. Thresholds straddle the serving predicate's range.
      for (const float target : {0.0f, exact * 0.5f, exact}) {
        const float ea = view.LowerBoundEarlyAbandon(
            i, view.RawAbandonThreshold(target, 1.0f));
        ASSERT_GE(ea, 0.0f);
        ASSERT_LE(ea, exact)
            << "query " << qi << " row " << i << " length " << n
            << " target " << target;
      }
      const float exact_scalar =
          sofa::scalar::SquaredEuclidean(query, data.row(i), n);
      ASSERT_LE(lb, exact_scalar)
          << "query " << qi << " row " << i << " length " << n;
#if defined(SOFA_HAVE_AVX2)
      ASSERT_LE(lb, sofa::avx2::SquaredEuclidean(query, data.row(i), n));
#endif
#if defined(SOFA_COMPILE_AVX512)
      if (CpuSupportsAvx512()) {
        ASSERT_LE(lb, sofa::avx512::SquaredEuclidean(query, data.row(i), n));
      }
#endif
    }
  }
}

TEST(RowqAdmissibilityTest, BoundNeverExceedsExactAcrossAdversarialData) {
  for (const std::size_t length : {1, 7, 16, 17, 33, 100}) {
    const Dataset data = AdversarialRows(length, 500 + length);
    // Queries: the rows themselves (self-distance 0 forces the bound to
    // 0), plus fresh draws from the same adversarial distributions.
    Dataset queries(length);
    for (std::size_t i = 0; i < data.size(); i += 5) {
      queries.Append(data.row(i));
    }
    const Dataset extra = AdversarialRows(length, 900 + length);
    for (std::size_t i = 0; i < extra.size(); i += 7) {
      queries.Append(extra.row(i));
    }
    CheckAdmissible(data, queries);
  }
}

TEST(RowqAdmissibilityTest, ZNormalizedWalksAreFullyPrunable) {
  // The engine's actual serving distribution: z-normalized walks. Every
  // row must verify containment (no silent unprunable fallback eating
  // the tier's benefit) and every bound must be admissible.
  const Dataset data = Walk(300, 48, 61);
  const std::shared_ptr<const RowQuant> rowq = RowQuant::Build(data);
  for (std::size_t i = 0; i < rowq->rows(); ++i) {
    ASSERT_TRUE(rowq->prunable(i)) << "row " << i;
  }
  CheckAdmissible(data, Walk(20, 48, 62));
}

TEST(RowqEncodeTest, SpecialValueRowsAreFlaggedUnprunable) {
  const std::size_t length = 20;
  Dataset data(length);
  Rng rng(71);
  AppendRows(&data, 5, length, [&](std::size_t, std::size_t) {
    return static_cast<float>(rng.Gaussian());
  });
  AppendRows(&data, 1, length, [&](std::size_t, std::size_t d) {
    return d == 3 ? kNan : 1.0f;
  });
  AppendRows(&data, 1, length, [&](std::size_t, std::size_t d) {
    return d == 7 ? kInf : 0.5f;
  });
  AppendRows(&data, 1, length, [&](std::size_t, std::size_t d) {
    return d == 0 ? -kInf : -0.5f;
  });
  const std::shared_ptr<const RowQuant> rowq = RowQuant::Build(data);
  ASSERT_EQ(rowq->rows(), 8u);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_TRUE(rowq->prunable(i)) << "finite row " << i;
  }
  const std::size_t padded = rowq->quantizer().padded_length();
  for (std::size_t i = 5; i < 8; ++i) {
    EXPECT_FALSE(rowq->prunable(i)) << "special-value row " << i;
    for (std::size_t d = 0; d < padded; ++d) {
      EXPECT_EQ(rowq->code(i)[d], 0) << "row " << i << " dim " << d;
    }
  }
}

TEST(RowqEncodeTest, EmptyAndSingleRowCollectionsBuild) {
  const Dataset empty(16);
  const std::shared_ptr<const RowQuant> none = RowQuant::Build(empty);
  ASSERT_NE(none, nullptr);
  EXPECT_EQ(none->rows(), 0u);

  Dataset one(16);
  std::vector<float> row(16, 2.5f);
  one.Append(row.data());
  const std::shared_ptr<const RowQuant> single = RowQuant::Build(one);
  ASSERT_EQ(single->rows(), 1u);
  ASSERT_TRUE(single->prunable(0));
  // Degenerate grid (min == max everywhere): self-distance bounds 0.
  const RowQuantView view(single.get(), row.data());
  EXPECT_EQ(view.LowerBound(0), 0.0f);
}

TEST(RowqAdmissibilityTest, AdjustedLowerBoundNeverPrunesOnBadSums) {
  const Dataset data = Walk(10, 16, 81);
  const std::shared_ptr<const RowQuant> rowq = RowQuant::Build(data);
  const RowQuantizer& q = rowq->quantizer();
  EXPECT_EQ(q.AdjustedLowerBound(kNan), 0.0f);
  EXPECT_EQ(q.AdjustedLowerBound(kInf), 0.0f);
  EXPECT_EQ(q.AdjustedLowerBound(std::numeric_limits<float>::max()), 0.0f);
  EXPECT_EQ(q.AdjustedLowerBound(0.0f), 0.0f);
  EXPECT_GE(q.AdjustedLowerBound(1.0f), 0.0f);
  EXPECT_LT(q.AdjustedLowerBound(1.0f), 1.0f);  // strictly deflated
}

// --------------------------------------------------- tier on/off: tree

TEST(RowqTierTest, TreeAnswersBitIdenticalOnVsOff) {
  ThreadPool pool(4);
  const Dataset data = Walk(3000, 64, 111);
  const auto scheme = testing_harness::TrainTestScheme(data, &pool);
  index::IndexConfig config;
  config.leaf_capacity = 100;
  index::TreeIndex plain(&data, scheme.get(), config, &pool);
  index::TreeIndex tiered(&data, scheme.get(), config, &pool);
  tiered.AttachRowQuant(RowQuant::Build(data));

  const Dataset queries = Walk(40, 64, 112);
  std::uint64_t total_checked = 0;
  std::uint64_t total_pruned = 0;
  for (std::size_t qi = 0; qi < queries.size(); ++qi) {
    for (const std::size_t k : {1u, 10u}) {
      index::QueryProfile off_profile;
      index::QueryProfile on_profile;
      const std::vector<Neighbor> expected =
          plain.SearchKnn(queries.row(qi), k, &off_profile);
      const std::vector<Neighbor> actual =
          tiered.SearchKnn(queries.row(qi), k, &on_profile);
      ASSERT_TRUE(BitIdentical(actual, expected))
          << "query " << qi << " k " << k;
      EXPECT_EQ(off_profile.rowq_checked, 0u);
      EXPECT_EQ(off_profile.rowq_pruned, 0u);
      EXPECT_LE(on_profile.rowq_pruned, on_profile.rowq_checked);
      // The tier can only cut work the exact kernel would have done.
      EXPECT_LE(on_profile.series_ed_computed,
                off_profile.series_ed_computed);
      total_checked += on_profile.rowq_checked;
      total_pruned += on_profile.rowq_pruned;
    }
  }
  // Across the workload the tier actually engages and actually prunes —
  // a tier that never fires would pass bit-identity vacuously.
  EXPECT_GT(total_checked, 0u);
  EXPECT_GT(total_pruned, 0u);
}

// ------------------------------------------- tier on/off: sharded service

TEST(RowqTierTest, ShardedServiceAnswersBitIdenticalOnVsOff) {
  ThreadPool pool(4);
  const Dataset data = Walk(2400, 64, 121);
  const auto scheme = testing_harness::TrainTestScheme(data, &pool);
  const auto plain = testing_harness::BuildTestSharded(
      data, 3, shard::ShardAssignment::kContiguous, scheme, &pool,
      /*enable_rowq=*/false);
  const auto tiered = testing_harness::BuildTestSharded(
      data, 3, shard::ShardAssignment::kContiguous, scheme, &pool,
      /*enable_rowq=*/true);
  service::SearchService off_svc(service::WrapShardedIndex(plain), &pool);
  service::SearchService on_svc(service::WrapShardedIndex(tiered), &pool);

  const Dataset queries = Walk(30, 64, 122);
  std::uint64_t total_checked = 0;
  for (std::size_t qi = 0; qi < queries.size(); ++qi) {
    const service::SearchResponse off =
        off_svc.Search(MakeSearchRequest(queries, qi, 10, /*profile=*/true));
    const service::SearchResponse on =
        on_svc.Search(MakeSearchRequest(queries, qi, 10, /*profile=*/true));
    ASSERT_EQ(off.status, service::RequestStatus::kOk);
    ASSERT_EQ(on.status, service::RequestStatus::kOk);
    ASSERT_TRUE(BitIdentical(on.neighbors, off.neighbors)) << "query " << qi;
    EXPECT_EQ(off.profile.rowq_checked, 0u);
    total_checked += on.profile.rowq_checked;
  }
  EXPECT_GT(total_checked, 0u);
}

// --------------------------------------------------- tier on/off: flat

TEST(RowqTierTest, FlatAnswersBitIdenticalOnVsOff) {
  ThreadPool pool(4);
  // The flat baseline accepts unnormalized data, so feed it the
  // adversarial magnitudes too: the dot-trick slack must keep huge and
  // denormal rows from flipping any comparison.
  Dataset data = AdversarialRows(48, 131);
  const Dataset walks = Walk(400, 48, 132);
  for (std::size_t i = 0; i < walks.size(); ++i) {
    data.Append(walks.row(i));
  }
  flat::IndexFlatL2 plain(&data, &pool);
  flat::IndexFlatL2 tiered(&data, &pool);
  tiered.AttachRowQuant(RowQuant::Build(data));

  Dataset queries(48);
  for (std::size_t i = 0; i < data.size(); i += 9) {
    queries.Append(data.row(i));  // member queries: exact zero distances
  }
  const Dataset extra = Walk(15, 48, 133);
  for (std::size_t i = 0; i < extra.size(); ++i) {
    queries.Append(extra.row(i));
  }
  for (std::size_t qi = 0; qi < queries.size(); ++qi) {
    for (const std::size_t k : {1u, 5u, 20u}) {
      const std::vector<Neighbor> expected =
          plain.SearchKnn(queries.row(qi), k);
      const std::vector<Neighbor> actual =
          tiered.SearchKnn(queries.row(qi), k);
      ASSERT_TRUE(BitIdentical(actual, expected))
          << "query " << qi << " k " << k;
    }
  }
  // Batched path shares the pruning code; spot-check it too.
  const std::vector<std::vector<Neighbor>> expected_batch =
      plain.SearchBatch(extra, 7);
  const std::vector<std::vector<Neighbor>> actual_batch =
      tiered.SearchBatch(extra, 7);
  ASSERT_EQ(actual_batch.size(), expected_batch.size());
  for (std::size_t qi = 0; qi < expected_batch.size(); ++qi) {
    ASSERT_TRUE(BitIdentical(actual_batch[qi], expected_batch[qi]));
  }
}

}  // namespace
}  // namespace quant
}  // namespace sofa
