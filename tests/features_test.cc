// Tests for the extension features: dataset file I/O (fvecs/bvecs/raw),
// index serialization, query profiling, ε-approximate search, pruning
// power, and the AVX-512 kernel dispatch.

#include <cstdio>
#include <filesystem>
#include <limits>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/distance.h"
#include "core/io.h"
#include "datagen/datasets.h"
#include "index/serialization.h"
#include "index/tree_index.h"
#include "quant/binning.h"
#include "quant/lbd.h"
#include "sax/sax_scheme.h"
#include "sfa/mcb.h"
#include "sfa/tlb.h"
#include "test_data.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace sofa {
namespace {

using testing_data::BruteForceKnn;
using testing_data::Noise;
using testing_data::SameDistances;
using testing_data::Walk;

// Unique temp path per test.
std::string TempPath(const std::string& tag) {
  const auto dir = std::filesystem::temp_directory_path();
  return (dir / ("sofa_test_" + tag + "_" +
                 std::to_string(::getpid()) + ".bin"))
      .string();
}

class TempFile {
 public:
  explicit TempFile(const std::string& tag) : path_(TempPath(tag)) {}
  ~TempFile() { std::remove(path_.c_str()); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

// ---------------------------------------------------------------- io

TEST(IoTest, FvecsRoundTrip) {
  const Dataset original = Noise(37, 96, 1);
  TempFile file("fvecs");
  ASSERT_TRUE(io::WriteFvecs(original, file.path()));
  const auto loaded = io::ReadFvecs(file.path());
  ASSERT_TRUE(loaded.has_value());
  ASSERT_EQ(loaded->size(), original.size());
  ASSERT_EQ(loaded->length(), original.length());
  for (std::size_t i = 0; i < original.size(); ++i) {
    for (std::size_t t = 0; t < original.length(); ++t) {
      ASSERT_EQ(loaded->row(i)[t], original.row(i)[t]);
    }
  }
}

TEST(IoTest, FvecsMaxCountTruncates) {
  const Dataset original = Noise(20, 64, 2);
  TempFile file("fvecs_max");
  ASSERT_TRUE(io::WriteFvecs(original, file.path()));
  const auto loaded = io::ReadFvecs(file.path(), 5);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->size(), 5u);
}

TEST(IoTest, FvecsRejectsTruncatedFile) {
  const Dataset original = Noise(3, 64, 3);
  TempFile file("fvecs_trunc");
  ASSERT_TRUE(io::WriteFvecs(original, file.path()));
  // Chop off the last 8 bytes.
  std::filesystem::resize_file(
      file.path(), std::filesystem::file_size(file.path()) - 8);
  EXPECT_FALSE(io::ReadFvecs(file.path()).has_value());
}

TEST(IoTest, FvecsRejectsMissingFile) {
  EXPECT_FALSE(io::ReadFvecs("/nonexistent/sofa.fvecs").has_value());
}

TEST(IoTest, BvecsRoundTripQuantizesToBytes) {
  Dataset original(8);
  const float row[] = {0.0f, 1.4f, 1.6f, 255.0f, 300.0f, -5.0f, 42.0f, 7.5f};
  original.Append(row);
  TempFile file("bvecs");
  ASSERT_TRUE(io::WriteBvecs(original, file.path()));
  const auto loaded = io::ReadBvecs(file.path());
  ASSERT_TRUE(loaded.has_value());
  ASSERT_EQ(loaded->size(), 1u);
  EXPECT_EQ(loaded->row(0)[0], 0.0f);
  EXPECT_EQ(loaded->row(0)[1], 1.0f);
  EXPECT_EQ(loaded->row(0)[2], 2.0f);
  EXPECT_EQ(loaded->row(0)[3], 255.0f);
  EXPECT_EQ(loaded->row(0)[4], 255.0f);  // clamped
  EXPECT_EQ(loaded->row(0)[5], 0.0f);    // clamped
  EXPECT_EQ(loaded->row(0)[6], 42.0f);
  EXPECT_EQ(loaded->row(0)[7], 8.0f);    // rounded
}

TEST(IoTest, RawF32RoundTrip) {
  const Dataset original = Walk(11, 128, 4);
  TempFile file("raw");
  ASSERT_TRUE(io::WriteRawF32(original, file.path()));
  const auto loaded = io::ReadRawF32(file.path(), 128);
  ASSERT_TRUE(loaded.has_value());
  ASSERT_EQ(loaded->size(), original.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    for (std::size_t t = 0; t < original.length(); ++t) {
      ASSERT_EQ(loaded->row(i)[t], original.row(i)[t]);
    }
  }
}

TEST(IoTest, RawF32RejectsMisalignedSize) {
  const Dataset original = Noise(4, 100, 5);
  TempFile file("raw_misaligned");
  ASSERT_TRUE(io::WriteRawF32(original, file.path()));
  // Length that does not divide the file payload.
  EXPECT_FALSE(io::ReadRawF32(file.path(), 96).has_value());
}

// ------------------------------------------------------- serialization

TEST(SerializationTest, SofaIndexRoundTripAnswersIdentically) {
  ThreadPool pool(4);
  const Dataset data = Noise(3000, 128, 6);
  sfa::SfaConfig config;
  config.sampling_ratio = 0.2;
  const auto scheme = sfa::TrainSfa(data, config, &pool);
  index::IndexConfig index_config;
  index_config.leaf_capacity = 150;
  const index::TreeIndex original(&data, scheme.get(), index_config, &pool);

  TempFile file("sofa_index");
  ASSERT_TRUE(index::SaveIndex(original, file.path()));
  const auto loaded = index::LoadIndex(file.path(), &data, &pool);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->scheme->name(), scheme->name());
  EXPECT_EQ(loaded->tree->root_bits(), original.root_bits());

  const index::TreeStats original_stats = original.ComputeStats();
  const index::TreeStats loaded_stats = loaded->tree->ComputeStats();
  EXPECT_EQ(loaded_stats.num_leaves, original_stats.num_leaves);
  EXPECT_EQ(loaded_stats.total_series, original_stats.total_series);
  EXPECT_EQ(loaded_stats.num_subtrees, original_stats.num_subtrees);

  const Dataset queries = Noise(10, 128, 7);
  for (std::size_t q = 0; q < queries.size(); ++q) {
    const auto expected = original.SearchKnn(queries.row(q), 5);
    const auto actual = loaded->tree->SearchKnn(queries.row(q), 5);
    ASSERT_EQ(expected.size(), actual.size());
    for (std::size_t i = 0; i < expected.size(); ++i) {
      ASSERT_EQ(expected[i].distance, actual[i].distance) << "query " << q;
    }
  }
}

TEST(SerializationTest, MessiIndexRoundTrip) {
  ThreadPool pool(2);
  const Dataset data = Walk(2000, 96, 8);
  sax::SaxScheme scheme(96, 16, 256);
  const index::TreeIndex original(&data, &scheme, index::IndexConfig{},
                                  &pool);
  TempFile file("messi_index");
  ASSERT_TRUE(index::SaveIndex(original, file.path()));
  const auto loaded = index::LoadIndex(file.path(), &data, &pool);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->scheme->name(), "iSAX");
  const auto expected = BruteForceKnn(data, data.row(17), 3);
  EXPECT_TRUE(
      SameDistances(loaded->tree->SearchKnn(data.row(17), 3), expected));
}

TEST(SerializationTest, RejectsMismatchedDataset) {
  ThreadPool pool(2);
  const Dataset data = Noise(500, 64, 9);
  sax::SaxScheme scheme(64, 16, 256);
  const index::TreeIndex original(&data, &scheme, index::IndexConfig{},
                                  &pool);
  TempFile file("mismatch_index");
  ASSERT_TRUE(index::SaveIndex(original, file.path()));
  const Dataset other_size = Noise(400, 64, 10);
  EXPECT_FALSE(index::LoadIndex(file.path(), &other_size, &pool).has_value());
  const Dataset other_length = Noise(500, 96, 11);
  EXPECT_FALSE(
      index::LoadIndex(file.path(), &other_length, &pool).has_value());
}

TEST(SerializationTest, RejectsCorruptFile) {
  ThreadPool pool(2);
  const Dataset data = Noise(100, 64, 12);
  TempFile file("corrupt_index");
  {
    std::FILE* f = std::fopen(file.path().c_str(), "wb");
    ASSERT_NE(f, nullptr);
    const char junk[] = "definitely not an index";
    std::fwrite(junk, 1, sizeof(junk), f);
    std::fclose(f);
  }
  EXPECT_FALSE(index::LoadIndex(file.path(), &data, &pool).has_value());
}

// ------------------------------------------------------- query profile

TEST(QueryProfileTest, CountersArePopulatedAndConsistent) {
  ThreadPool pool(4);
  const Dataset data = Noise(4000, 128, 13);
  sfa::SfaConfig config;
  config.sampling_ratio = 0.2;
  const auto scheme = sfa::TrainSfa(data, config, &pool);
  index::IndexConfig index_config;
  index_config.leaf_capacity = 200;
  const index::TreeIndex index(&data, scheme.get(), index_config, &pool);
  const Dataset queries = Noise(5, 128, 14);
  for (std::size_t q = 0; q < queries.size(); ++q) {
    index::QueryProfile profile;
    (void)index.SearchKnn(queries.row(q), 3, &profile);
    EXPECT_GT(profile.nodes_visited, 0u);
    EXPECT_GT(profile.series_ed_computed, 0u);  // at least the approx leaf
    EXPECT_GE(profile.series_lbd_checked, profile.series_lbd_pruned);
    EXPECT_GE(profile.nodes_visited, profile.nodes_pruned);
    const double ratio = profile.SeriesPruningRatio();
    EXPECT_GE(ratio, 0.0);
    EXPECT_LE(ratio, 1.0);
  }
}

TEST(QueryProfileTest, MergeAddsCounters) {
  index::QueryProfile a;
  a.nodes_visited = 3;
  a.series_ed_computed = 7;
  index::QueryProfile b;
  b.nodes_visited = 2;
  b.series_lbd_pruned = 5;
  a.Merge(b);
  EXPECT_EQ(a.nodes_visited, 5u);
  EXPECT_EQ(a.series_ed_computed, 7u);
  EXPECT_EQ(a.series_lbd_pruned, 5u);
}

TEST(QueryProfileTest, SfaPrunesMoreThanSaxOnHighFrequencyData) {
  // The paper's core claim at the counter level: on (clustered)
  // high-frequency data the SFA summarization discards more series without
  // touching raw data. (i.i.d. data would show 0-vs-0 pruning — no
  // contrast, see the pruning-power tests.)
  ThreadPool pool(2);
  datagen::GenerateOptions options;
  options.count = 6000;
  options.num_queries = 6;
  const LabeledDataset ds = datagen::MakeDatasetByName("LenDB", options,
                                                       &pool);
  sfa::SfaConfig config;
  config.sampling_ratio = 0.2;
  const auto sfa_scheme = sfa::TrainSfa(ds.data, config, &pool);
  sax::SaxScheme sax_scheme(256, 16, 256);
  index::IndexConfig index_config;
  index_config.leaf_capacity = 300;
  const index::TreeIndex sofa_index(&ds.data, sfa_scheme.get(), index_config,
                                    &pool);
  const index::TreeIndex messi_index(&ds.data, &sax_scheme, index_config,
                                     &pool);
  std::uint64_t sfa_ed = 0;
  std::uint64_t sax_ed = 0;
  for (std::size_t q = 0; q < ds.queries.size(); ++q) {
    index::QueryProfile sfa_profile;
    index::QueryProfile sax_profile;
    (void)sofa_index.SearchKnn(ds.queries.row(q), 1, &sfa_profile);
    (void)messi_index.SearchKnn(ds.queries.row(q), 1, &sax_profile);
    sfa_ed += sfa_profile.series_ed_computed;
    sax_ed += sax_profile.series_ed_computed;
  }
  EXPECT_LT(sfa_ed, sax_ed);
}

// --------------------------------------------------- approximate search

TEST(ApproximateSearchTest, EpsilonZeroEqualsExact) {
  ThreadPool pool(4);
  const Dataset data = Noise(3000, 128, 17);
  sfa::SfaConfig config;
  config.sampling_ratio = 0.2;
  const auto scheme = sfa::TrainSfa(data, config, &pool);
  const index::TreeIndex index(&data, scheme.get(), index::IndexConfig{},
                               &pool);
  const Dataset queries = Noise(8, 128, 18);
  for (std::size_t q = 0; q < queries.size(); ++q) {
    const auto exact = index.SearchKnn(queries.row(q), 5);
    const auto approx = index.SearchKnnApproximate(queries.row(q), 5, 0.0);
    ASSERT_EQ(exact.size(), approx.size());
    for (std::size_t i = 0; i < exact.size(); ++i) {
      ASSERT_EQ(exact[i].distance, approx[i].distance);
    }
  }
}

class EpsilonTest : public ::testing::TestWithParam<double> {};

TEST_P(EpsilonTest, ResultWithinGuarantee) {
  const double epsilon = GetParam();
  ThreadPool pool(4);
  const Dataset data = Noise(4000, 128, 19);
  sfa::SfaConfig config;
  config.sampling_ratio = 0.2;
  const auto scheme = sfa::TrainSfa(data, config, &pool);
  index::IndexConfig index_config;
  index_config.leaf_capacity = 200;
  const index::TreeIndex index(&data, scheme.get(), index_config, &pool);
  const Dataset queries = Noise(10, 128, 20);
  for (std::size_t q = 0; q < queries.size(); ++q) {
    const auto exact = BruteForceKnn(data, queries.row(q), 3);
    const auto approx =
        index.SearchKnnApproximate(queries.row(q), 3, epsilon);
    ASSERT_EQ(approx.size(), exact.size());
    for (std::size_t i = 0; i < approx.size(); ++i) {
      // Guarantee: within (1+ε) of the exact distance at the same rank.
      ASSERT_LE(approx[i].distance,
                exact[i].distance * (1.0 + epsilon) * (1.0 + 1e-4) + 1e-4)
          << "query " << q << " rank " << i << " eps " << epsilon;
      // And never better than exact (it is drawn from the same data).
      ASSERT_GE(approx[i].distance, exact[i].distance * (1.0 - 1e-4) - 1e-4);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Epsilons, EpsilonTest,
                         ::testing::Values(0.05, 0.2, 0.5, 2.0));

TEST(ApproximateSearchTest, LargerEpsilonDoesNotIncreaseWork) {
  ThreadPool pool(2);
  const Dataset data = Noise(5000, 128, 21);
  sfa::SfaConfig config;
  config.sampling_ratio = 0.2;
  const auto scheme = sfa::TrainSfa(data, config, &pool);
  index::IndexConfig index_config;
  index_config.leaf_capacity = 250;
  const index::TreeIndex index(&data, scheme.get(), index_config, &pool);
  const Dataset queries = Noise(5, 128, 22);
  std::uint64_t exact_ed = 0;
  std::uint64_t approx_ed = 0;
  for (std::size_t q = 0; q < queries.size(); ++q) {
    index::QueryProfile exact_profile;
    index::QueryProfile approx_profile;
    (void)index.SearchKnn(queries.row(q), 1, &exact_profile);
    (void)index.SearchKnnApproximate(queries.row(q), 1, 1.0,
                                     &approx_profile);
    exact_ed += exact_profile.series_ed_computed;
    approx_ed += approx_profile.series_ed_computed;
  }
  EXPECT_LE(approx_ed, exact_ed);
}

TEST(ApproximateSearchTest, LeafOnlyAnswersAreValidCandidates) {
  ThreadPool pool(2);
  const Dataset data = Noise(3000, 96, 23);
  sfa::SfaConfig config;
  config.sampling_ratio = 0.2;
  const auto scheme = sfa::TrainSfa(data, config, &pool);
  const index::TreeIndex index(&data, scheme.get(), index::IndexConfig{},
                               &pool);
  const Dataset queries = Noise(5, 96, 24);
  for (std::size_t q = 0; q < queries.size(); ++q) {
    const auto leaf_only = index.SearchKnnLeafOnly(queries.row(q), 3);
    ASSERT_FALSE(leaf_only.empty());
    const auto exact = index.SearchKnn(queries.row(q), 1);
    // Leaf-only can never beat the exact 1-NN.
    EXPECT_GE(leaf_only[0].distance, exact[0].distance - 1e-4f);
    // And each reported distance must be a real distance to that series.
    for (const Neighbor& nb : leaf_only) {
      const float d = std::sqrt(SquaredEuclidean(
          queries.row(q), data.row(nb.id), data.length()));
      EXPECT_NEAR(nb.distance, d, 1e-3f);
    }
  }
}

// ----------------------------------------------------------- batch mode

TEST(BatchSearchTest, BatchEqualsSequentialQueries) {
  ThreadPool pool(4);
  const Dataset data = Noise(3000, 128, 40);
  sfa::SfaConfig config;
  config.sampling_ratio = 0.2;
  const auto scheme = sfa::TrainSfa(data, config, &pool);
  const index::TreeIndex index(&data, scheme.get(), index::IndexConfig{},
                               &pool);
  const Dataset queries = Noise(12, 128, 41);
  const auto batch = index.SearchKnnBatch(queries, 5);
  ASSERT_EQ(batch.size(), queries.size());
  for (std::size_t q = 0; q < queries.size(); ++q) {
    const auto sequential = index.SearchKnn(queries.row(q), 5);
    ASSERT_EQ(batch[q].size(), sequential.size());
    for (std::size_t i = 0; i < sequential.size(); ++i) {
      ASSERT_EQ(batch[q][i].distance, sequential[i].distance)
          << "query " << q << " rank " << i;
    }
  }
}

TEST(BatchSearchTest, BatchIsExact) {
  ThreadPool pool(2);
  const Dataset data = Walk(2000, 96, 42);
  sax::SaxScheme scheme(96, 16, 256);
  const index::TreeIndex index(&data, &scheme, index::IndexConfig{}, &pool);
  const Dataset queries = Walk(8, 96, 43);
  const auto batch = index.SearchKnnBatch(queries, 3);
  for (std::size_t q = 0; q < queries.size(); ++q) {
    const auto expected = BruteForceKnn(data, queries.row(q), 3);
    ASSERT_TRUE(SameDistances(batch[q], expected)) << "query " << q;
  }
}

TEST(BatchSearchTest, EmptyBatch) {
  ThreadPool pool(2);
  const Dataset data = Noise(100, 64, 44);
  sax::SaxScheme scheme(64, 16, 256);
  const index::TreeIndex index(&data, &scheme, index::IndexConfig{}, &pool);
  Dataset queries(64);
  EXPECT_TRUE(index.SearchKnnBatch(queries, 3).empty());
}

// ------------------------------------------------------- pruning power

TEST(PruningPowerTest, WithinUnitInterval) {
  const Dataset data = Noise(500, 128, 25);
  const Dataset queries = Noise(10, 128, 26);
  sfa::SfaConfig config;
  config.sampling_ratio = 1.0;
  const auto scheme = sfa::TrainSfa(data, config);
  const double power = sfa::MeanPruningPower(*scheme, data, queries);
  EXPECT_GE(power, 0.0);
  EXPECT_LE(power, 1.0);
}

TEST(PruningPowerTest, SfaBeatsSaxOnHighFrequencyData) {
  // Pruning power requires distance contrast (i.i.d. noise has none — the
  // curse of dimensionality), so use the clustered high-frequency
  // benchmark generator, where the paper reports 98% vs 38% at the first
  // tree level on SCEDC.
  datagen::GenerateOptions options;
  options.count = 2000;
  options.num_queries = 10;
  const LabeledDataset ds = datagen::MakeDatasetByName("LenDB", options);
  sfa::SfaConfig config;
  config.sampling_ratio = 1.0;
  const auto sfa_scheme = sfa::TrainSfa(ds.data, config);
  sax::SaxScheme sax_scheme(256, 16, 256);
  const double sfa_power =
      sfa::MeanPruningPower(*sfa_scheme, ds.data, ds.queries);
  const double sax_power =
      sfa::MeanPruningPower(sax_scheme, ds.data, ds.queries);
  EXPECT_GT(sfa_power, sax_power);
  EXPECT_GT(sfa_power, 0.1);  // meaningful pruning, not a 0-vs-0 artifact
}

TEST(PruningPowerTest, DeterministicGivenSeed) {
  const Dataset data = Noise(300, 96, 29);
  const Dataset queries = Noise(5, 96, 30);
  sax::SaxScheme scheme(96, 16, 256);
  sfa::TlbOptions options;
  options.seed = 5;
  EXPECT_DOUBLE_EQ(sfa::MeanPruningPower(scheme, data, queries, options),
                   sfa::MeanPruningPower(scheme, data, queries, options));
}

// ------------------------------------------------------------ AVX-512

#if defined(SOFA_COMPILE_AVX512)

class Avx512Test : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!CpuSupportsAvx512()) {
      GTEST_SKIP() << "CPU lacks AVX-512";
    }
  }
};

TEST_F(Avx512Test, SquaredEuclideanMatchesScalar) {
  Rng rng(31);
  for (const std::size_t n : {1u, 15u, 16u, 17u, 31u, 32u, 96u, 100u, 256u}) {
    std::vector<float> a(n);
    std::vector<float> b(n);
    for (std::size_t i = 0; i < n; ++i) {
      a[i] = static_cast<float>(rng.Gaussian());
      b[i] = static_cast<float>(rng.Gaussian());
    }
    const float s = scalar::SquaredEuclidean(a.data(), b.data(), n);
    const float v = avx512::SquaredEuclidean(a.data(), b.data(), n);
    ASSERT_NEAR(v, s, 1e-4f * (s + 1.0f)) << "n=" << n;
  }
}

TEST_F(Avx512Test, DotProductAndNormMatchScalar) {
  Rng rng(32);
  for (const std::size_t n : {7u, 16u, 33u, 128u, 255u}) {
    std::vector<float> a(n);
    std::vector<float> b(n);
    for (std::size_t i = 0; i < n; ++i) {
      a[i] = static_cast<float>(rng.Gaussian());
      b[i] = static_cast<float>(rng.Gaussian());
    }
    ASSERT_NEAR(avx512::DotProduct(a.data(), b.data(), n),
                scalar::DotProduct(a.data(), b.data(), n),
                1e-3f * (std::fabs(scalar::DotProduct(a.data(), b.data(),
                                                      n)) +
                         1.0f));
    ASSERT_NEAR(avx512::SquaredNorm(a.data(), n),
                scalar::SquaredNorm(a.data(), n),
                1e-3f * (scalar::SquaredNorm(a.data(), n) + 1.0f));
  }
}

TEST_F(Avx512Test, EarlyAbandonDecisionsConsistent) {
  Rng rng(33);
  for (int trial = 0; trial < 200; ++trial) {
    const std::size_t n = 64 + rng.Below(192);
    std::vector<float> a(n);
    std::vector<float> b(n);
    for (std::size_t i = 0; i < n; ++i) {
      a[i] = static_cast<float>(rng.Gaussian());
      b[i] = static_cast<float>(rng.Gaussian());
    }
    const float exact = scalar::SquaredEuclidean(a.data(), b.data(), n);
    const float bound = static_cast<float>(rng.Uniform(0.0, exact * 1.5));
    const float result =
        avx512::SquaredEuclideanEarlyAbandon(a.data(), b.data(), n, bound);
    if (result > bound) {
      ASSERT_GT(exact, bound * (1.0f - 1e-4f));
    } else {
      ASSERT_NEAR(result, exact, 1e-4f * (exact + 1.0f));
    }
  }
}

TEST_F(Avx512Test, LbdMatchesScalar) {
  Rng rng(34);
  for (const std::size_t dims : {8u, 16u, 17u, 24u, 32u}) {
    quant::BreakpointTable table(dims, 256);
    std::vector<float> weights(dims);
    std::vector<float> query(dims);
    std::vector<std::uint8_t> word(dims);
    std::vector<float> sample(500);
    for (std::size_t d = 0; d < dims; ++d) {
      for (auto& v : sample) {
        v = static_cast<float>(rng.Gaussian());
      }
      table.SetDimension(d, quant::EquiDepthBreakpoints(sample, 256));
      weights[d] = static_cast<float>(rng.Uniform(0.5, 3.0));
      query[d] = static_cast<float>(rng.Gaussian(0.0, 2.0));
      word[d] = table.Quantize(d, static_cast<float>(rng.Gaussian()));
    }
    const float s = quant::scalar::LbdSquared(table, weights.data(),
                                              query.data(), word.data());
    const float v = quant::avx512::LbdSquared(table, weights.data(),
                                              query.data(), word.data());
    ASSERT_NEAR(v, s, 1e-4f * (s + 1.0f)) << "dims=" << dims;
  }
}

TEST_F(Avx512Test, LbdEarlyAbandonDecisionsConsistent) {
  Rng rng(35);
  quant::BreakpointTable table(16, 256);
  std::vector<float> sample(500);
  for (std::size_t d = 0; d < 16; ++d) {
    for (auto& v : sample) {
      v = static_cast<float>(rng.Gaussian());
    }
    table.SetDimension(d, quant::EquiWidthBreakpoints(sample, 256));
  }
  std::vector<float> weights(16, 2.0f);
  for (int trial = 0; trial < 300; ++trial) {
    std::vector<float> query(16);
    std::vector<std::uint8_t> word(16);
    for (std::size_t d = 0; d < 16; ++d) {
      query[d] = static_cast<float>(rng.Gaussian(0.0, 2.0));
      word[d] = table.Quantize(d, static_cast<float>(rng.Gaussian()));
    }
    const float exact = quant::scalar::LbdSquared(table, weights.data(),
                                                  query.data(), word.data());
    const float bound = static_cast<float>(rng.Uniform(0.0, exact + 1.0));
    const float result = quant::avx512::LbdSquaredEarlyAbandon(
        table, weights.data(), query.data(), word.data(), bound);
    if (result > bound) {
      ASSERT_GT(exact, bound * (1.0f - 1e-4f));
    } else {
      ASSERT_NEAR(result, exact, 1e-4f * (exact + 1.0f));
    }
  }
}

#endif  // SOFA_COMPILE_AVX512

}  // namespace
}  // namespace sofa
