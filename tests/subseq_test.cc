// Tests for the subsequence-search substrate: rolling stats vs a naive
// window sweep, the MASS distance profile against a brute-force sliding
// z-ED oracle (parameterized over series/query lengths incl. non-dyadic),
// flat-window handling, MASS/UCR-scan agreement, and top-k extraction
// with exclusion zones.

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <limits>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/znorm.h"
#include "subseq/mass.h"
#include "subseq/rolling_stats.h"
#include "subseq/subseq_match.h"
#include "subseq/ucr_subseq.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace sofa {
namespace subseq {
namespace {

constexpr float kInf = std::numeric_limits<float>::infinity();

std::vector<float> RandomWalk(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<float> series(n);
  double level = 0.0;
  for (auto& x : series) {
    level += rng.Gaussian();
    x = static_cast<float>(level);
  }
  return series;
}

std::vector<float> NoiseSeries(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<float> series(n);
  for (auto& x : series) {
    x = static_cast<float>(rng.Gaussian());
  }
  return series;
}

// Brute-force z-normalized sliding distance profile (the oracle).
std::vector<float> NaiveProfile(const std::vector<float>& series,
                                const std::vector<float>& query) {
  const std::size_t n = series.size();
  const std::size_t m = query.size();
  std::vector<float> qz(query);
  ZNormalize(qz.data(), m);
  std::vector<float> profile(n - m + 1);
  for (std::size_t i = 0; i + m <= n; ++i) {
    std::vector<float> window(series.begin() + i, series.begin() + i + m);
    double mean = 0.0;
    for (const float x : window) {
      mean += x;
    }
    mean /= static_cast<double>(m);
    double var = 0.0;
    for (const float x : window) {
      var += (x - mean) * (x - mean);
    }
    var /= static_cast<double>(m);
    if (var <= 0.0) {
      profile[i] = kInf;
      continue;
    }
    const double inv_std = 1.0 / std::sqrt(var);
    double sum = 0.0;
    for (std::size_t j = 0; j < m; ++j) {
      const double diff = qz[j] - (window[j] - mean) * inv_std;
      sum += diff * diff;
    }
    profile[i] = static_cast<float>(std::sqrt(sum));
  }
  return profile;
}

// ---------------------------------------------------------------------------
// Rolling stats

TEST(RollingStatsTest, MatchesNaiveWindows) {
  const std::vector<float> series = NoiseSeries(200, 0x90);
  for (const std::size_t m : {1, 2, 7, 50, 200}) {
    const RollingStats stats = ComputeRollingStats(series.data(), 200, m);
    ASSERT_EQ(stats.mean.size(), 200 - m + 1);
    for (std::size_t i = 0; i + m <= 200; ++i) {
      double mean = 0.0;
      for (std::size_t j = 0; j < m; ++j) {
        mean += series[i + j];
      }
      mean /= static_cast<double>(m);
      double var = 0.0;
      for (std::size_t j = 0; j < m; ++j) {
        var += (series[i + j] - mean) * (series[i + j] - mean);
      }
      var /= static_cast<double>(m);
      ASSERT_NEAR(stats.mean[i], mean, 1e-6) << "m=" << m << " i=" << i;
      ASSERT_NEAR(stats.std[i], std::sqrt(var), 1e-6)
          << "m=" << m << " i=" << i;
    }
  }
}

TEST(RollingStatsTest, ConstantWindowsHaveZeroStd) {
  std::vector<float> series(64, 0.0f);
  for (std::size_t t = 40; t < 64; ++t) {
    series[t] = static_cast<float>(t);  // ramp after a flat head
  }
  const RollingStats stats = ComputeRollingStats(series.data(), 64, 8);
  EXPECT_DOUBLE_EQ(stats.std[0], 0.0);
  EXPECT_DOUBLE_EQ(stats.std[32], 0.0);  // last all-flat window [32,40)
  EXPECT_GT(stats.std[40], 0.0);
}

// ---------------------------------------------------------------------------
// MASS vs the oracle, parameterized over (n, m)

struct ProfileCase {
  std::size_t n;
  std::size_t m;
};

class MassProfileTest : public ::testing::TestWithParam<ProfileCase> {};

TEST_P(MassProfileTest, MatchesNaiveProfile) {
  const auto [n, m] = GetParam();
  for (const bool walk : {false, true}) {
    const std::vector<float> series =
        walk ? RandomWalk(n, 0x91 + n) : NoiseSeries(n, 0x92 + n);
    const std::vector<float> query =
        walk ? RandomWalk(m, 0x93 + m) : NoiseSeries(m, 0x94 + m);
    const std::vector<float> expected = NaiveProfile(series, query);

    MassPlan plan(n, m);
    ASSERT_EQ(plan.profile_length(), expected.size());
    std::vector<float> profile(plan.profile_length());
    plan.DistanceProfile(series.data(), query.data(), profile.data());
    for (std::size_t i = 0; i < expected.size(); ++i) {
      ASSERT_NEAR(profile[i], expected[i], 2e-3f * (1.0f + expected[i]))
          << "walk=" << walk << " i=" << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MassProfileTest,
    ::testing::Values(ProfileCase{64, 8}, ProfileCase{100, 17},
                      ProfileCase{256, 64}, ProfileCase{300, 96},
                      ProfileCase{1000, 100}, ProfileCase{64, 64},
                      ProfileCase{129, 2}),
    [](const ::testing::TestParamInfo<ProfileCase>& info) {
      std::string name = "n";
      name += std::to_string(info.param.n);
      name += "_m";
      name += std::to_string(info.param.m);
      return name;
    });

TEST(MassTest, WholeMatchingDegenerateCase) {
  // m == n: the profile has exactly one entry — the z-ED of the two
  // whole series.
  const std::vector<float> series = RandomWalk(128, 0x95);
  const std::vector<float> query = RandomWalk(128, 0x96);
  MassPlan plan(128, 128);
  float profile[1];
  plan.DistanceProfile(series.data(), query.data(), profile);
  const std::vector<float> expected = NaiveProfile(series, query);
  EXPECT_NEAR(profile[0], expected[0], 2e-3f * (1.0f + expected[0]));
}

TEST(MassTest, PlantedMotifIsTheArgmin) {
  // Plant the (noised) query deep inside an unrelated walk; the profile
  // minimum must be at the planted offset.
  std::vector<float> series = RandomWalk(2000, 0x97);
  const std::vector<float> query = RandomWalk(100, 0x98);
  Rng rng(0x99);
  const std::size_t planted = 1234;
  for (std::size_t j = 0; j < 100; ++j) {
    series[planted + j] =
        3.0f * query[j] + static_cast<float>(0.05 * rng.Gaussian());
  }
  MassPlan plan(2000, 100);
  std::vector<float> profile(plan.profile_length());
  plan.DistanceProfile(series.data(), query.data(), profile.data());
  const std::size_t argmin =
      std::min_element(profile.begin(), profile.end()) - profile.begin();
  EXPECT_EQ(argmin, planted);
  // Scale-invariance of z-ED: the planted copy is near-zero despite 3×.
  EXPECT_LT(profile[planted], 1.0f);
}

TEST(MassTest, FlatWindowsAreInfinite) {
  std::vector<float> series = NoiseSeries(256, 0x9a);
  std::fill(series.begin() + 100, series.begin() + 140, 2.5f);
  MassPlan plan(256, 20);
  std::vector<float> profile(plan.profile_length());
  const std::vector<float> query = NoiseSeries(20, 0x9b);
  plan.DistanceProfile(series.data(), query.data(), profile.data());
  // Windows fully inside the plateau are flat.
  for (std::size_t i = 100; i + 20 <= 140; ++i) {
    EXPECT_EQ(profile[i], kInf) << "i=" << i;
  }
  EXPECT_LT(profile[0], kInf);
}

// ---------------------------------------------------------------------------
// UCR subsequence scan

TEST(UcrSubseqTest, AgreesWithMassArgmin) {
  for (const std::uint64_t seed : {0xa0, 0xa1, 0xa2, 0xa3}) {
    const std::vector<float> series = RandomWalk(3000, seed);
    const std::vector<float> query = RandomWalk(64, seed + 100);
    MassPlan plan(3000, 64);
    std::vector<float> profile(plan.profile_length());
    plan.DistanceProfile(series.data(), query.data(), profile.data());
    const std::size_t argmin =
        std::min_element(profile.begin(), profile.end()) - profile.begin();

    const SubseqMatch match =
        FindBestMatch(series.data(), 3000, query.data(), 64);
    EXPECT_EQ(match.position, argmin) << "seed=" << seed;
    EXPECT_NEAR(match.distance, profile[argmin],
                2e-3f * (1.0f + profile[argmin]));
  }
}

TEST(UcrSubseqTest, EarlyAbandoningActuallyPrunes) {
  const std::vector<float> series = RandomWalk(20000, 0xa4);
  const std::vector<float> query = RandomWalk(128, 0xa5);
  UcrSubseqProfile profile;
  FindBestMatch(series.data(), 20000, query.data(), 128, &profile);
  ASSERT_GT(profile.windows, 0u);
  const double touched_fraction =
      static_cast<double>(profile.points_touched) /
      (static_cast<double>(profile.windows) * 128.0);
  // On smooth data with a warm best-so-far, most of each window is
  // abandoned (paper Section II-B rationale for early abandoning).
  EXPECT_LT(touched_fraction, 0.5);
}

TEST(UcrSubseqTest, SkipsFlatWindows) {
  std::vector<float> series = NoiseSeries(400, 0xa6);
  std::fill(series.begin() + 50, series.begin() + 150, -1.0f);
  const std::vector<float> query = NoiseSeries(32, 0xa7);
  UcrSubseqProfile profile;
  const SubseqMatch match =
      FindBestMatch(series.data(), 400, query.data(), 32, &profile);
  EXPECT_GT(profile.flat_windows, 0u);
  EXPECT_FALSE(match.position >= 50 && match.position + 32 <= 150);
}

// ---------------------------------------------------------------------------
// Parallel (chunked) MASS

struct ParallelCase {
  std::size_t n;
  std::size_t m;
  std::size_t chunk_windows;  // 0 = auto
  std::size_t threads;
};

class ParallelMassTest : public ::testing::TestWithParam<ParallelCase> {};

TEST_P(ParallelMassTest, EqualsSingleShotProfile) {
  const ParallelCase param = GetParam();
  ThreadPool pool(param.threads);
  const std::vector<float> series = RandomWalk(param.n, 0xb1 + param.n);
  const std::vector<float> query = RandomWalk(param.m, 0xb2 + param.m);

  MassPlan plan(param.n, param.m);
  std::vector<float> expected(plan.profile_length());
  plan.DistanceProfile(series.data(), query.data(), expected.data());

  std::vector<float> parallel(plan.profile_length(), -1.0f);
  ParallelDistanceProfile(series.data(), param.n, query.data(), param.m,
                          parallel.data(), &pool, param.chunk_windows);
  for (std::size_t i = 0; i < expected.size(); ++i) {
    ASSERT_NEAR(parallel[i], expected[i], 2e-3f * (1.0f + expected[i]))
        << "i=" << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ParallelMassTest,
    ::testing::Values(ParallelCase{5000, 64, 0, 2},
                      ParallelCase{5000, 64, 333, 3},   // uneven tail
                      ParallelCase{1000, 100, 901, 2},  // one chunk
                      ParallelCase{1000, 100, 1, 4},    // chunk = 1 window
                      ParallelCase{257, 17, 100, 2},    // non-dyadic
                      ParallelCase{512, 512, 0, 2}),    // whole matching
    [](const ::testing::TestParamInfo<ParallelCase>& info) {
      std::string name = "n";
      name += std::to_string(info.param.n);
      name += "_m";
      name += std::to_string(info.param.m);
      name += "_c";
      name += std::to_string(info.param.chunk_windows);
      name += "_t";
      name += std::to_string(info.param.threads);
      return name;
    });

TEST(ParallelMassTest, FlatRegionsSurviveChunking) {
  ThreadPool pool(2);
  std::vector<float> series = NoiseSeries(2000, 0xb3);
  std::fill(series.begin() + 700, series.begin() + 900, 1.0f);
  const std::vector<float> query = NoiseSeries(50, 0xb4);
  MassPlan plan(2000, 50);
  std::vector<float> expected(plan.profile_length());
  plan.DistanceProfile(series.data(), query.data(), expected.data());
  std::vector<float> parallel(plan.profile_length());
  ParallelDistanceProfile(series.data(), 2000, query.data(), 50,
                          parallel.data(), &pool, 300);
  for (std::size_t i = 0; i < expected.size(); ++i) {
    if (std::isinf(expected[i])) {
      ASSERT_EQ(parallel[i], kInf) << "i=" << i;
    } else {
      ASSERT_NEAR(parallel[i], expected[i], 2e-3f * (1.0f + expected[i]));
    }
  }
}

// ---------------------------------------------------------------------------
// Degenerate contracts

TEST(SubseqDeathTest, ConstantQueryAborts) {
  const std::vector<float> series = NoiseSeries(64, 0xac);
  const std::vector<float> flat(16, 1.0f);
  MassPlan plan(64, 16);
  std::vector<float> profile(plan.profile_length());
  EXPECT_DEATH(
      plan.DistanceProfile(series.data(), flat.data(), profile.data()),
      "constant query");
  EXPECT_DEATH(FindBestMatch(series.data(), 64, flat.data(), 16),
               "constant query");
}

TEST(SubseqDeathTest, AllFlatStreamAborts) {
  const std::vector<float> flat(64, 3.0f);
  const std::vector<float> query = NoiseSeries(16, 0xad);
  EXPECT_DEATH(FindBestMatch(flat.data(), 64, query.data(), 16),
               "constant");
}

TEST(SubseqDeathTest, QueryLongerThanStreamAborts) {
  const std::vector<float> series = NoiseSeries(16, 0xae);
  const std::vector<float> query = NoiseSeries(32, 0xaf);
  EXPECT_DEATH(MassPlan(16, 32), "query length");
}

TEST(MassTest, AllFlatStreamProfileIsAllInfinite) {
  // MASS tolerates a fully flat stream (unlike the scan, which must
  // return a position) — every window is just +inf, and TopK is empty.
  const std::vector<float> flat(64, 3.0f);
  const std::vector<float> query = NoiseSeries(16, 0xb0);
  MassPlan plan(64, 16);
  std::vector<float> profile(plan.profile_length());
  plan.DistanceProfile(flat.data(), query.data(), profile.data());
  for (const float d : profile) {
    EXPECT_EQ(d, kInf);
  }
  EXPECT_TRUE(plan.TopK(flat.data(), query.data(), 3).empty());
}

// ---------------------------------------------------------------------------
// Top-k extraction

TEST(TopKFromProfileTest, ExclusionZoneSuppressesNeighbors) {
  // Profile with a deep valley at 50 and its shoulder at 52, plus a
  // second event at 200.
  std::vector<float> profile(300, 10.0f);
  profile[50] = 1.0f;
  profile[52] = 1.1f;
  profile[200] = 2.0f;
  const auto matches = TopKFromProfile(profile.data(), 300, 2, 10);
  ASSERT_EQ(matches.size(), 2u);
  EXPECT_EQ(matches[0].position, 50u);
  EXPECT_EQ(matches[1].position, 200u);  // 52 excluded by the zone

  const auto no_exclusion = TopKFromProfile(profile.data(), 300, 2, 0);
  EXPECT_EQ(no_exclusion[1].position, 52u);
}

TEST(TopKFromProfileTest, InfiniteEntriesNeverMatch) {
  std::vector<float> profile(10, kInf);
  profile[3] = 1.0f;
  const auto matches = TopKFromProfile(profile.data(), 10, 5, 0);
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0].position, 3u);
}

TEST(TopKFromProfileTest, AscendingByDistance) {
  const std::vector<float> noise = NoiseSeries(500, 0xa8);
  std::vector<float> profile(500);
  for (std::size_t i = 0; i < 500; ++i) {
    profile[i] = std::fabs(noise[i]);
  }
  const auto matches = TopKFromProfile(profile.data(), 500, 20, 3);
  ASSERT_EQ(matches.size(), 20u);
  for (std::size_t i = 1; i < matches.size(); ++i) {
    EXPECT_LE(matches[i - 1].distance, matches[i].distance);
  }
}

TEST(MassTest, TopKConvenienceFindsRepeatedEvents) {
  // Three noised copies of the same event; TopK(3) must find all three.
  std::vector<float> series = RandomWalk(4000, 0xa9);
  const std::vector<float> event = RandomWalk(80, 0xaa);
  Rng rng(0xab);
  const std::size_t offsets[] = {500, 1700, 3200};
  for (const std::size_t offset : offsets) {
    for (std::size_t j = 0; j < 80; ++j) {
      series[offset + j] =
          event[j] + static_cast<float>(0.05 * rng.Gaussian());
    }
  }
  MassPlan plan(4000, 80);
  const auto matches = plan.TopK(series.data(), event.data(), 3);
  ASSERT_EQ(matches.size(), 3u);
  std::vector<std::size_t> found;
  for (const auto& match : matches) {
    found.push_back(match.position);
  }
  std::sort(found.begin(), found.end());
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_NEAR(static_cast<double>(found[i]),
                static_cast<double>(offsets[i]), 2.0);
  }
}

}  // namespace
}  // namespace subseq
}  // namespace sofa
