// Tests for the unified observability layer (src/obs/): registry
// registration semantics (stable instrument pointers, label ordering,
// collect hooks), the exposition renderers pinned by golden strings
// (Prometheus text format and the JSON stats schema, including the
// ParseStatsJson round trip `sofa_cli stats` relies on), QueryTrace span
// nesting/ordering/overflow, sampler cadence, slow-query-log ring
// eviction, a multi-threaded registration+increment stress (runs under
// TSan via the concurrency label), and the end-to-end acceptance trace:
// a traced query against a 4-shard ingesting generation with live
// inserts and deletes must cover admission → scatter → per-shard tree
// scans + buffer scans → merge, with child spans nested inside the
// scatter window and the sequential stage durations summing to no more
// than the query's total latency.

#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "ingest/compactor.h"
#include "obs/exposition.h"
#include "obs/perf_counters.h"
#include "obs/registry.h"
#include "obs/slow_query_log.h"
#include "obs/trace.h"
#include "obs/trace_serde.h"
#include "service/search_service.h"
#include "service/snapshot.h"
#include "sfa/mcb.h"
#include "shard/sharded_index.h"
#include "test_data.h"
#include "util/thread_pool.h"

namespace sofa {
namespace obs {
namespace {

using testing_data::Walk;

// Finds the snapshot of `name` (with `label_value` under `label_key`,
// when given) in a Collect() result; nullptr when absent.
const InstrumentSnapshot* Find(const std::vector<InstrumentSnapshot>& snapshot,
                               const std::string& name,
                               const std::string& label_key = "",
                               const std::string& label_value = "") {
  for (const InstrumentSnapshot& snap : snapshot) {
    if (snap.name != name) {
      continue;
    }
    if (label_key.empty()) {
      return &snap;
    }
    for (const auto& label : snap.labels) {
      if (label.first == label_key && label.second == label_value) {
        return &snap;
      }
    }
  }
  return nullptr;
}

// ----------------------------------------------------------- registry

TEST(RegistryTest, ReRegistrationReturnsTheSameInstrument) {
  Registry registry;
  Counter* a = registry.GetCounter("reg_total", {{"x", "1"}, {"y", "2"}});
  // Same name, same labels in a different order: labels are normalized
  // (sorted by key), so this must resolve to the same instrument.
  Counter* b = registry.GetCounter("reg_total", {{"y", "2"}, {"x", "1"}});
  EXPECT_EQ(a, b);
  a->Add(2);
  b->Add(3);
  EXPECT_EQ(a->Value(), 5u);

  // Different labels are a different time series.
  Counter* c = registry.GetCounter("reg_total", {{"x", "1"}, {"y", "3"}});
  EXPECT_NE(a, c);
  EXPECT_EQ(c->Value(), 0u);
}

TEST(RegistryTest, CollectSnapshotsEveryKind) {
  Registry registry;
  registry.GetCounter("t_counter", {}, "a counter")->Add(7);
  registry.GetGauge("t_gauge", {}, "a gauge")->Set(2.5);
  Histogram* histogram =
      registry.GetHistogram("t_histogram", HistogramOptions{}, {}, "a histo");
  histogram->Record(1.0);
  histogram->Record(4.0);

  const std::vector<InstrumentSnapshot> snapshot = registry.Collect();
  ASSERT_EQ(snapshot.size(), 3u);

  const InstrumentSnapshot* counter = Find(snapshot, "t_counter");
  ASSERT_NE(counter, nullptr);
  EXPECT_EQ(counter->kind, InstrumentKind::kCounter);
  EXPECT_EQ(counter->counter, 7u);
  EXPECT_EQ(counter->help, "a counter");

  const InstrumentSnapshot* gauge = Find(snapshot, "t_gauge");
  ASSERT_NE(gauge, nullptr);
  EXPECT_EQ(gauge->kind, InstrumentKind::kGauge);
  EXPECT_DOUBLE_EQ(gauge->gauge, 2.5);

  const InstrumentSnapshot* histo = Find(snapshot, "t_histogram");
  ASSERT_NE(histo, nullptr);
  EXPECT_EQ(histo->kind, InstrumentKind::kHistogram);
  EXPECT_EQ(histo->count, 2u);
  EXPECT_DOUBLE_EQ(histo->sum, 5.0);
  EXPECT_DOUBLE_EQ(histo->max, 4.0);
  ASSERT_FALSE(histo->buckets.empty());
  // Buckets are cumulative, ending in the overflow bucket at count.
  std::uint64_t previous = 0;
  for (const HistogramBucket& bucket : histo->buckets) {
    EXPECT_GE(bucket.cumulative, previous);
    previous = bucket.cumulative;
  }
  EXPECT_TRUE(histo->buckets.back().overflow);
  EXPECT_EQ(histo->buckets.back().cumulative, histo->count);
}

TEST(RegistryTest, CollectHooksRunAndCanBeRemoved) {
  Registry registry;
  Gauge* mirrored = registry.GetGauge("hooked_gauge");
  int source = 1;
  const std::uint64_t hook = registry.AddCollectHook(
      [&] { mirrored->Set(static_cast<double>(source)); });

  registry.Collect();
  EXPECT_DOUBLE_EQ(mirrored->Value(), 1.0);

  source = 42;
  registry.Collect();
  EXPECT_DOUBLE_EQ(mirrored->Value(), 42.0);

  registry.RemoveCollectHook(hook);
  source = 99;
  registry.Collect();
  EXPECT_DOUBLE_EQ(mirrored->Value(), 42.0);  // hook no longer runs
}

// Many threads race registration of the same and different label sets
// while a collector thread snapshots — the lock-free Add path and the
// registration path must agree on totals. Runs under TSan in CI.
TEST(RegistryTest, ConcurrentRegistrationAndIncrement) {
  Registry registry;
  constexpr int kThreads = 8;
  constexpr int kIterations = 2000;
  std::atomic<bool> stop{false};
  std::thread collector([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      registry.Collect();
    }
  });
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&registry, t] {
      const std::string shard = std::to_string(t % 4);
      for (int i = 0; i < kIterations; ++i) {
        registry.GetCounter("stress_total", {{"shard", shard}})->Add();
        registry.GetHistogram("stress_ms")->Record(0.5 + t);
      }
    });
  }
  for (std::thread& worker : workers) {
    worker.join();
  }
  stop.store(true, std::memory_order_relaxed);
  collector.join();

  const std::vector<InstrumentSnapshot> snapshot = registry.Collect();
  std::uint64_t total = 0;
  for (const InstrumentSnapshot& snap : snapshot) {
    if (snap.name == "stress_total") {
      total += snap.counter;
    }
  }
  EXPECT_EQ(total, static_cast<std::uint64_t>(kThreads) * kIterations);
  const InstrumentSnapshot* histogram = Find(snapshot, "stress_ms");
  ASSERT_NE(histogram, nullptr);
  EXPECT_EQ(histogram->count, static_cast<std::uint64_t>(kThreads) * kIterations);
}

// --------------------------------------------------------- exposition

TEST(ExpositionTest, PrometheusGolden) {
  Registry registry;
  const char* kHelp = "Requests served";
  registry.GetCounter("test_requests_total", {{"status", "ok"}}, kHelp)
      ->Add(3);
  registry.GetCounter("test_requests_total", {{"status", "rejected"}}, kHelp)
      ->Add(1);
  registry.GetGauge("test_uptime_seconds", {}, "Uptime")->Set(5.0);

  const std::string expected =
      "# HELP test_requests_total Requests served\n"
      "# TYPE test_requests_total counter\n"
      "test_requests_total{status=\"ok\"} 3\n"
      "test_requests_total{status=\"rejected\"} 1\n"
      "# HELP test_uptime_seconds Uptime\n"
      "# TYPE test_uptime_seconds gauge\n"
      "test_uptime_seconds 5\n";
  EXPECT_EQ(RenderPrometheus(registry.Collect()), expected);
}

TEST(ExpositionTest, PrometheusHistogramExpansion) {
  Registry registry;
  Histogram* histogram =
      registry.GetHistogram("t_ms", HistogramOptions{}, {{"op", "x"}});
  histogram->Record(1.0);
  histogram->Record(2.0);

  const std::string text = RenderPrometheus(registry.Collect());
  EXPECT_NE(text.find("# TYPE t_ms histogram\n"), std::string::npos);
  EXPECT_NE(text.find("t_ms_bucket{op=\"x\",le=\"+Inf\"} 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("t_ms_sum{op=\"x\"} 3\n"), std::string::npos);
  EXPECT_NE(text.find("t_ms_count{op=\"x\"} 2\n"), std::string::npos);
}

TEST(ExpositionTest, JsonGolden) {
  Registry registry;
  const char* kHelp = "Requests served";
  registry.GetCounter("test_requests_total", {{"status", "ok"}}, kHelp)
      ->Add(3);
  registry.GetGauge("test_uptime_seconds", {}, "Uptime")->Set(5.0);

  const std::string expected =
      "{\n"
      "  \"metrics\": [\n"
      "    {\"name\": \"test_requests_total\", \"type\": \"counter\", "
      "\"labels\": {\"status\": \"ok\"}, \"help\": \"Requests served\", "
      "\"value\": 3},\n"
      "    {\"name\": \"test_uptime_seconds\", \"type\": \"gauge\", "
      "\"help\": \"Uptime\", \"value\": 5}\n"
      "  ]\n"
      "}\n";
  EXPECT_EQ(RenderJson(registry.Collect()), expected);
}

TEST(ExpositionTest, JsonRoundTripsThroughParseStatsJson) {
  Registry registry;
  registry.GetCounter("rt_total", {{"a", "1"}}, "counter help")->Add(11);
  registry.GetGauge("rt_gauge", {}, "gauge help")->Set(-2.25);
  Histogram* histogram =
      registry.GetHistogram("rt_ms", HistogramOptions{}, {}, "histo help");
  histogram->Record(0.5);
  histogram->Record(7.0);
  histogram->Record(7.0);

  const std::vector<InstrumentSnapshot> original = registry.Collect();
  std::vector<InstrumentSnapshot> parsed;
  std::string error;
  ASSERT_TRUE(ParseStatsJson(RenderJson(original), &parsed, &error)) << error;
  ASSERT_EQ(parsed.size(), original.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ(parsed[i].name, original[i].name);
    EXPECT_EQ(parsed[i].kind, original[i].kind);
    EXPECT_EQ(parsed[i].labels, original[i].labels);
    EXPECT_EQ(parsed[i].help, original[i].help);
    EXPECT_EQ(parsed[i].counter, original[i].counter);
    EXPECT_DOUBLE_EQ(parsed[i].gauge, original[i].gauge);
    EXPECT_EQ(parsed[i].count, original[i].count);
    EXPECT_DOUBLE_EQ(parsed[i].sum, original[i].sum);
    EXPECT_DOUBLE_EQ(parsed[i].max, original[i].max);
    ASSERT_EQ(parsed[i].buckets.size(), original[i].buckets.size());
    for (std::size_t j = 0; j < original[i].buckets.size(); ++j) {
      EXPECT_EQ(parsed[i].buckets[j].cumulative,
                original[i].buckets[j].cumulative);
      EXPECT_EQ(parsed[i].buckets[j].overflow,
                original[i].buckets[j].overflow);
    }
  }
}

TEST(ExpositionTest, ParseStatsJsonRejectsMalformedInput) {
  std::vector<InstrumentSnapshot> parsed;
  std::string error;
  EXPECT_FALSE(ParseStatsJson("{\"metrics\": [", &parsed, &error));
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(ParseStatsJson("[]", &parsed, &error));
  EXPECT_FALSE(
      ParseStatsJson("{\"metrics\": [{\"name\": \"x\", \"type\": \"bogus\"}]}",
                     &parsed, &error));
}

TEST(ExpositionTest, PrettyRendering) {
  EXPECT_EQ(RenderPretty({}), "(no metrics)\n");

  Registry registry;
  registry.GetCounter("p_total", {{"s", "a"}})->Add(4);
  registry.GetGauge("p_gauge")->Set(1.5);
  registry.GetHistogram("p_ms")->Record(2.0);
  const std::string text = RenderPretty(registry.Collect());
  EXPECT_NE(text.find("counters:\n"), std::string::npos);
  EXPECT_NE(text.find("p_total{s=a}"), std::string::npos);
  EXPECT_NE(text.find("gauges:\n"), std::string::npos);
  EXPECT_NE(text.find("histograms:\n"), std::string::npos);
  EXPECT_NE(text.find("count=1"), std::string::npos);
}

// -------------------------------------------------------------- traces

TEST(TraceTest, SpanNestingAndOrdering) {
  QueryTrace trace;
  const int outer = trace.BeginSpan("outer");
  ASSERT_EQ(outer, 0);
  const int inner = trace.BeginSpan("inner", outer);
  ASSERT_EQ(inner, 1);
  trace.EndSpan(inner);
  const int stamped = trace.AllocateSpan("stamped", outer);
  ASSERT_EQ(stamped, 2);
  trace.StampSpan(stamped, 0.25, 0.5);
  trace.EndSpan(outer);
  trace.AddCounter("work", 17);

  const TraceRecord record = trace.Finish(9, 3.5, false);
  EXPECT_EQ(record.query_id, 9u);
  EXPECT_DOUBLE_EQ(record.total_ms, 3.5);
  EXPECT_FALSE(record.deadline_expired);
  ASSERT_EQ(record.spans.size(), 3u);
  // Allocation order is preserved; parents link the nesting.
  EXPECT_STREQ(record.spans[0].name, "outer");
  EXPECT_EQ(record.spans[0].parent, -1);
  EXPECT_STREQ(record.spans[1].name, "inner");
  EXPECT_EQ(record.spans[1].parent, outer);
  EXPECT_STREQ(record.spans[2].name, "stamped");
  EXPECT_EQ(record.spans[2].parent, outer);
  EXPECT_DOUBLE_EQ(record.spans[2].start_ms, 0.25);
  EXPECT_DOUBLE_EQ(record.spans[2].end_ms, 0.5);
  // Timed spans are well-formed and the inner span nests in the outer.
  EXPECT_LE(record.spans[0].start_ms, record.spans[1].start_ms);
  EXPECT_LE(record.spans[1].start_ms, record.spans[1].end_ms);
  EXPECT_LE(record.spans[1].end_ms, record.spans[0].end_ms);
  ASSERT_EQ(record.counters.size(), 1u);
  EXPECT_STREQ(record.counters[0].name, "work");
  EXPECT_EQ(record.counters[0].value, 17u);
}

TEST(TraceTest, SpanOverflowDropsExtraSpans) {
  QueryTrace trace(2);
  EXPECT_EQ(trace.BeginSpan("a"), 0);
  EXPECT_EQ(trace.BeginSpan("b"), 1);
  EXPECT_EQ(trace.BeginSpan("c"), -1);  // full — dropped, not resized
  EXPECT_EQ(trace.AllocateSpan("d"), -1);
  trace.EndSpan(-1);            // must be tolerated
  trace.StampSpan(-1, 0., 1.);  // likewise
  const TraceRecord record = trace.Finish(1, 0.1, true);
  EXPECT_TRUE(record.deadline_expired);
  EXPECT_EQ(record.spans.size(), 2u);
}

TEST(TraceTest, SamplerCadence) {
  TraceSampler off(0);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(off.ShouldSample());
  }
  TraceSampler all(1);
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(all.ShouldSample());
  }
  TraceSampler third(3);
  int sampled = 0;
  for (int i = 0; i < 9; ++i) {
    const bool hit = third.ShouldSample();
    EXPECT_EQ(hit, i % 3 == 0);
    sampled += hit ? 1 : 0;
  }
  EXPECT_EQ(sampled, 3);
}

TEST(TraceTest, FormatTraceRendersTimelineAndCounters) {
  QueryTrace trace;
  const int outer = trace.BeginSpan("outer");
  const int inner = trace.BeginSpan("inner", outer);
  trace.EndSpan(inner);
  trace.EndSpan(outer);
  trace.AddCounter("nodes_visited", 12);
  const std::string text = FormatTrace(trace.Finish(3, 1.25, false));
  EXPECT_NE(text.find("query 3: 1.250 ms"), std::string::npos);
  EXPECT_NE(text.find("outer"), std::string::npos);
  EXPECT_NE(text.find("inner"), std::string::npos);
  EXPECT_NE(text.find("counters: nodes_visited=12"), std::string::npos);
}

// ------------------------------------------------------ slow-query log

TEST(SlowQueryLogTest, RingEvictsOldestFirst) {
  SlowQueryLog log(3);
  EXPECT_EQ(log.capacity(), 3u);
  for (std::uint64_t id = 1; id <= 5; ++id) {
    TraceRecord record;
    record.query_id = id;
    log.Push(std::move(record));
  }
  EXPECT_EQ(log.Size(), 3u);
  EXPECT_EQ(log.TotalPushed(), 5u);
  EXPECT_EQ(log.TotalEvicted(), 2u);
  const std::vector<TraceRecord> dump = log.Dump();
  ASSERT_EQ(dump.size(), 3u);
  EXPECT_EQ(dump[0].query_id, 3u);  // oldest retained first
  EXPECT_EQ(dump[1].query_id, 4u);
  EXPECT_EQ(dump[2].query_id, 5u);

  log.Clear();
  EXPECT_EQ(log.Size(), 0u);
  EXPECT_EQ(log.TotalPushed(), 5u);  // lifetime totals survive a Clear
}

// ------------------------------------------- end-to-end service traces

// A 4-shard generation under live ingest: base rows in the shard trees,
// hash-assigned inserts in the per-shard buffers, a couple of tombstoned
// rows so the merge runs its filter path.
struct TracedServiceFixture {
  ThreadPool pool;
  Dataset base;
  Dataset inserts;
  std::shared_ptr<const quant::SummaryScheme> scheme;
  std::shared_ptr<const shard::ShardedIndex> sharded;

  explicit TracedServiceFixture(std::uint64_t seed)
      : pool(4),
        base(Walk(600, 64, seed)),
        inserts(Walk(48, 64, seed + 1)) {
    sfa::SfaConfig sfa_config;
    sfa_config.word_length = 16;
    sfa_config.alphabet = 256;
    sfa_config.sampling_ratio = 0.2;
    scheme = sfa::TrainSfa(base, sfa_config, &pool);
    shard::ShardingConfig config;
    config.num_shards = 4;
    config.assignment = shard::ShardAssignment::kHash;
    config.index.leaf_capacity = 100;
    sharded = shard::ShardedIndex::Build(base, config, scheme, &pool);
  }

  void FeedIngest(ingest::Compactor* compactor) const {
    for (std::size_t i = 0; i < inserts.size(); ++i) {
      ASSERT_EQ(compactor->Insert(inserts.row(i), inserts.length()),
                StatusCode::kOk);
    }
    ASSERT_EQ(compactor->Delete(3), StatusCode::kOk);
    ASSERT_EQ(compactor->Delete(10), StatusCode::kOk);
  }

  service::SearchRequest MakeRequest(std::size_t k) const {
    service::SearchRequest request;
    request.query.assign(base.row(0), base.row(0) + base.length());
    request.k = k;
    return request;
  }
};

// The ISSUE acceptance criterion: one traced query against a 4-shard
// ingesting generation covers the whole pipeline, child scans nest
// inside the scatter window, and the sequential stage durations sum to
// no more than the total latency.
TEST(ServiceTraceTest, ShardedIngestingQueryTraceCoversPipeline) {
  TracedServiceFixture fx(211);
  service::ServiceConfig config;
  config.trace.sample_every = 1;
  service::SearchService svc(service::WrapShardedIndex(fx.sharded), &fx.pool,
                             config);
  ingest::IngestConfig ingest_config;
  ingest_config.auto_compact = false;  // keep inserts in the buffers
  ingest::Compactor compactor(&svc, fx.sharded, ingest_config);
  fx.FeedIngest(&compactor);

  service::SearchRequest request = fx.MakeRequest(5);
  request.collect_trace = true;
  service::SearchResponse response = svc.Search(std::move(request));
  ASSERT_EQ(response.status, service::RequestStatus::kOk);
  ASSERT_NE(response.trace, nullptr);
  const TraceRecord& trace = *response.trace;
  EXPECT_GT(trace.total_ms, 0.0);
  EXPECT_FALSE(trace.deadline_expired);

  int admission = -1, scatter = -1, merge = -1;
  std::size_t shard_scans = 0, buffer_scans = 0;
  for (std::size_t i = 0; i < trace.spans.size(); ++i) {
    const TraceSpan& span = trace.spans[i];
    if (std::strcmp(span.name, "admission") == 0) {
      admission = static_cast<int>(i);
    } else if (std::strcmp(span.name, "scatter") == 0) {
      scatter = static_cast<int>(i);
    } else if (std::strcmp(span.name, "merge") == 0) {
      merge = static_cast<int>(i);
    } else if (std::strcmp(span.name, "shard_scan") == 0) {
      ++shard_scans;
    } else if (std::strcmp(span.name, "buffer_scan") == 0) {
      ++buffer_scans;
    }
  }
  ASSERT_GE(admission, 0);
  ASSERT_GE(scatter, 0);
  ASSERT_GE(merge, 0);
  EXPECT_EQ(shard_scans, 4u);   // one tree scan per shard
  EXPECT_GE(buffer_scans, 1u);  // the live insert buffers were scanned

  // Every scan is a child of the scatter span and lies inside its window.
  const TraceSpan& scatter_span = trace.spans[static_cast<std::size_t>(scatter)];
  for (const TraceSpan& span : trace.spans) {
    if (std::strcmp(span.name, "shard_scan") != 0 &&
        std::strcmp(span.name, "buffer_scan") != 0) {
      continue;
    }
    EXPECT_EQ(span.parent, scatter);
    EXPECT_GE(span.start_ms, scatter_span.start_ms);
    EXPECT_LE(span.end_ms, scatter_span.end_ms);
    EXPECT_LE(span.start_ms, span.end_ms);
  }

  // The sequential top-level stages are disjoint, so their durations sum
  // to at most the end-to-end latency.
  const auto duration = [&](int index) {
    const TraceSpan& span = trace.spans[static_cast<std::size_t>(index)];
    return span.end_ms - span.start_ms;
  };
  EXPECT_LE(duration(admission) + duration(scatter) + duration(merge),
            trace.total_ms + 1e-6);

  // The trace carries the full work-counter profile.
  ASSERT_EQ(trace.counters.size(), 10u);
  bool saw_ed = false, saw_filtered = false, saw_rowq = false;
  for (const TraceCounterSample& counter : trace.counters) {
    saw_ed = saw_ed || std::strcmp(counter.name, "series_ed_computed") == 0;
    saw_filtered =
        saw_filtered || std::strcmp(counter.name, "candidates_filtered") == 0;
    saw_rowq = saw_rowq || std::strcmp(counter.name, "rowq_checked") == 0;
  }
  EXPECT_TRUE(saw_ed);
  EXPECT_TRUE(saw_filtered);
  EXPECT_TRUE(saw_rowq);

  // The registry side saw the trace too: the trace counter ticked and
  // the per-stage histograms absorbed the span durations.
  const std::vector<InstrumentSnapshot> snapshot = svc.registry()->Collect();
  const InstrumentSnapshot* traces = Find(snapshot, "sofa_query_traces_total");
  ASSERT_NE(traces, nullptr);
  EXPECT_GE(traces->counter, 1u);
  const InstrumentSnapshot* stage =
      Find(snapshot, "sofa_query_stage_ms", "stage", "shard_scan");
  ASSERT_NE(stage, nullptr);
  EXPECT_GE(stage->count, 4u);
}

// slow_query_ms > 0 arms trace-everything mode: every completed query is
// measured and (with a sub-microsecond threshold) lands in the ring,
// which evicts oldest-first once capacity is reached.
TEST(ServiceTraceTest, SlowQueryLogCapturesQueriesOverThreshold) {
  TracedServiceFixture fx(223);
  service::ServiceConfig config;
  config.trace.slow_query_ms = 1e-6;  // everything counts as slow
  config.trace.slow_log_capacity = 4;
  service::SearchService svc(service::WrapShardedIndex(fx.sharded), &fx.pool,
                             config);

  constexpr std::size_t kQueries = 6;
  for (std::size_t q = 0; q < kQueries; ++q) {
    const service::SearchResponse response = svc.Search(fx.MakeRequest(3));
    ASSERT_EQ(response.status, service::RequestStatus::kOk);
    EXPECT_EQ(response.trace, nullptr);  // collect_trace was not requested
  }
  svc.Drain();

  const SlowQueryLog& log = svc.slow_query_log();
  EXPECT_EQ(log.TotalPushed(), kQueries);
  EXPECT_EQ(log.Size(), 4u);
  EXPECT_EQ(log.TotalEvicted(), kQueries - 4);
  const std::vector<TraceRecord> dump = log.Dump();
  ASSERT_EQ(dump.size(), 4u);
  for (std::size_t i = 1; i < dump.size(); ++i) {
    EXPECT_LT(dump[i - 1].query_id, dump[i].query_id);  // oldest first
  }
  // Slow records carry the full span timeline for the shutdown dump.
  EXPECT_FALSE(dump[0].spans.empty());
  const std::vector<InstrumentSnapshot> snapshot = svc.registry()->Collect();
  const InstrumentSnapshot* slow = Find(snapshot, "sofa_slow_queries_total");
  ASSERT_NE(slow, nullptr);
  EXPECT_EQ(slow->counter, kQueries);
}

// Every-Nth sampling traces exactly the expected share of sequential
// submissions; with tracing fully off no trace state is created at all.
TEST(ServiceTraceTest, SamplingCadenceAndDisabledPath) {
  TracedServiceFixture fx(227);
  {
    service::ServiceConfig config;
    config.trace.sample_every = 3;
    service::SearchService svc(service::WrapShardedIndex(fx.sharded),
                               &fx.pool, config);
    for (std::size_t q = 0; q < 9; ++q) {
      ASSERT_EQ(svc.Search(fx.MakeRequest(3)).status,
                service::RequestStatus::kOk);
    }
    const std::vector<InstrumentSnapshot> snapshot =
        svc.registry()->Collect();
    const InstrumentSnapshot* traces =
        Find(snapshot, "sofa_query_traces_total");
    ASSERT_NE(traces, nullptr);
    EXPECT_EQ(traces->counter, 3u);  // submissions 0, 3 and 6
  }
  {
    service::SearchService svc(service::WrapShardedIndex(fx.sharded),
                               &fx.pool);  // defaults: tracing off
    const service::SearchResponse response = svc.Search(fx.MakeRequest(3));
    ASSERT_EQ(response.status, service::RequestStatus::kOk);
    EXPECT_EQ(response.trace, nullptr);
    EXPECT_EQ(svc.slow_query_log().TotalPushed(), 0u);
    const std::vector<InstrumentSnapshot> snapshot =
        svc.registry()->Collect();
    const InstrumentSnapshot* traces =
        Find(snapshot, "sofa_query_traces_total");
    ASSERT_NE(traces, nullptr);
    EXPECT_EQ(traces->counter, 0u);
  }
}

// A shared registry co-exposes service and ingest instruments from one
// Collect() — the single-endpoint contract of ISSUE 6.
TEST(ServiceTraceTest, SharedRegistryCoversServiceAndIngest) {
  TracedServiceFixture fx(229);
  Registry registry;
  service::ServiceConfig config;
  config.registry = &registry;
  service::SearchService svc(service::WrapShardedIndex(fx.sharded), &fx.pool,
                             config);
  ingest::IngestConfig ingest_config;
  ingest_config.auto_compact = false;
  ingest_config.registry = &registry;
  ingest::Compactor compactor(&svc, fx.sharded, ingest_config);
  fx.FeedIngest(&compactor);
  ASSERT_EQ(svc.Search(fx.MakeRequest(3)).status,
            service::RequestStatus::kOk);

  const std::vector<InstrumentSnapshot> snapshot = registry.Collect();
  const InstrumentSnapshot* completed =
      Find(snapshot, "sofa_service_requests_total", "status", "completed");
  ASSERT_NE(completed, nullptr);
  EXPECT_GE(completed->counter, 1u);
  const InstrumentSnapshot* inserted =
      Find(snapshot, "sofa_ingest_inserted_total");
  ASSERT_NE(inserted, nullptr);
  EXPECT_EQ(inserted->counter, fx.inserts.size());
  const InstrumentSnapshot* tombstones =
      Find(snapshot, "sofa_ingest_tombstones");
  ASSERT_NE(tombstones, nullptr);
  EXPECT_DOUBLE_EQ(tombstones->gauge, 2.0);
  // The whole document renders as parseable stats JSON — what `sofa_cli
  // serve --stats-file` writes and `sofa_cli stats` reads back.
  std::vector<InstrumentSnapshot> parsed;
  std::string error;
  ASSERT_TRUE(ParseStatsJson(RenderJson(snapshot), &parsed, &error)) << error;
  EXPECT_EQ(parsed.size(), snapshot.size());
}

TEST(ExpositionTest, StatsDiffShowsChangesAdditionsAndRemovals) {
  Registry before_registry, after_registry;
  before_registry.GetCounter("diff_requests_total")->Add(100);
  before_registry.GetCounter("diff_unchanged_total")->Add(7);
  before_registry.GetCounter("diff_gone_total")->Add(1);
  before_registry.GetGauge("diff_depth")->Set(4.0);
  Histogram* before_hist =
      before_registry.GetHistogram("diff_latency_ms", HistogramOptions{});
  before_hist->Record(1.0);

  after_registry.GetCounter("diff_requests_total")->Add(150);
  after_registry.GetCounter("diff_unchanged_total")->Add(7);
  after_registry.GetCounter("diff_new_total")->Add(3);
  after_registry.GetGauge("diff_depth")->Set(6.0);
  Histogram* after_hist =
      after_registry.GetHistogram("diff_latency_ms", HistogramOptions{});
  after_hist->Record(1.0);
  after_hist->Record(10.0);

  const std::string diff = RenderStatsDiff(before_registry.Collect(),
                                           after_registry.Collect());
  // Changed counter: before -> after with absolute + relative change.
  EXPECT_NE(diff.find("diff_requests_total"), std::string::npos);
  EXPECT_NE(diff.find("100 -> 150"), std::string::npos);
  EXPECT_NE(diff.find("(+50, +50.0%)"), std::string::npos);
  // Unchanged counters stay out.
  EXPECT_EQ(diff.find("diff_unchanged_total"), std::string::npos);
  // Gauge movement.
  EXPECT_NE(diff.find("4 -> 6"), std::string::npos);
  // Histogram count movement.
  EXPECT_NE(diff.find("count 1 -> 2"), std::string::npos);
  // Added/removed instruments land under their own headings.
  EXPECT_NE(diff.find("only in after:\n  diff_new_total"), std::string::npos);
  EXPECT_NE(diff.find("only in before:\n  diff_gone_total"),
            std::string::npos);

  // Two identical snapshots diff to nothing.
  EXPECT_EQ(RenderStatsDiff(after_registry.Collect(),
                            after_registry.Collect()),
            "(no differences)\n");
}

// ---------------------------------------------------------- trace serde

// Exact equality of two records, perf samples included (names compared
// by content — the decoded side's pointers are interned copies).
void ExpectRecordsEqual(const TraceRecord& actual,
                        const TraceRecord& expected) {
  EXPECT_EQ(actual.query_id, expected.query_id);
  EXPECT_EQ(actual.total_ms, expected.total_ms);
  EXPECT_EQ(actual.deadline_expired, expected.deadline_expired);
  ASSERT_EQ(actual.spans.size(), expected.spans.size());
  for (std::size_t i = 0; i < expected.spans.size(); ++i) {
    const TraceSpan& a = actual.spans[i];
    const TraceSpan& e = expected.spans[i];
    EXPECT_STREQ(a.name, e.name);
    EXPECT_EQ(a.parent, e.parent);
    EXPECT_EQ(a.start_ms, e.start_ms);
    EXPECT_EQ(a.end_ms, e.end_ms);
    EXPECT_EQ(a.perf.cycles, e.perf.cycles);
    EXPECT_EQ(a.perf.instructions, e.perf.instructions);
    EXPECT_EQ(a.perf.llc_misses, e.perf.llc_misses);
    EXPECT_EQ(a.perf.stalled_cycles, e.perf.stalled_cycles);
    EXPECT_EQ(a.perf.hardware, e.perf.hardware);
  }
  ASSERT_EQ(actual.counters.size(), expected.counters.size());
  for (std::size_t i = 0; i < expected.counters.size(); ++i) {
    EXPECT_STREQ(actual.counters[i].name, expected.counters[i].name);
    EXPECT_EQ(actual.counters[i].value, expected.counters[i].value);
  }
}

TraceRecord MakeSampleRecord() {
  TraceRecord record;
  record.query_id = 0xDEADBEEFCAFEull;
  record.total_ms = 12.34375;  // exactly representable
  record.deadline_expired = true;
  TraceSpan root;
  root.name = "admission";
  root.parent = -1;
  root.start_ms = 0.0;
  root.end_ms = 1.5;
  TraceSpan child;
  child.name = "shard_scan";
  child.parent = 0;
  child.start_ms = 0.25;
  child.end_ms = 1.25;
  child.perf.cycles = 123456789;
  child.perf.instructions = 987654321;
  child.perf.llc_misses = 4242;
  child.perf.stalled_cycles = 1111;
  child.perf.hardware = true;
  TraceSpan fallback;
  fallback.name = "buffer_scan";
  fallback.parent = 0;
  fallback.start_ms = 1.25;
  fallback.end_ms = 1.5;
  fallback.perf.cycles = 5555;  // tsc fallback: cycles only
  fallback.perf.hardware = false;
  record.spans = {root, child, fallback};
  record.counters = {{"series_ed_computed", 321}, {"rowq_pruned", 77}};
  return record;
}

TEST(TraceSerdeTest, RoundTripPreservesEverySpanAndCounter) {
  const TraceRecord record = MakeSampleRecord();
  const std::string blob = SerializeTraceRecord(record);
  ASSERT_FALSE(blob.empty());
  TraceRecord decoded;
  ASSERT_TRUE(DeserializeTraceRecord(blob, &decoded));
  ExpectRecordsEqual(decoded, record);

  // Decoding is deterministic and names intern to stable pointers: a
  // second decode yields pointer-identical names.
  TraceRecord again;
  ASSERT_TRUE(DeserializeTraceRecord(blob, &again));
  for (std::size_t i = 0; i < decoded.spans.size(); ++i) {
    EXPECT_EQ(decoded.spans[i].name, again.spans[i].name);  // same pointer
  }

  // An empty record survives too (a trace with no spans is legal).
  const TraceRecord empty;
  TraceRecord empty_decoded;
  ASSERT_TRUE(
      DeserializeTraceRecord(SerializeTraceRecord(empty), &empty_decoded));
  ExpectRecordsEqual(empty_decoded, empty);
}

TEST(TraceSerdeTest, RejectsUnknownVersionsAndMalformedBlobs) {
  const std::string blob = SerializeTraceRecord(MakeSampleRecord());

  // A future format version is "no trace", not a crash: false, with the
  // output untouched.
  std::string future = blob;
  future[0] = static_cast<char>(kTraceEncodingVersion + 1);
  TraceRecord out;
  out.query_id = 42;
  EXPECT_FALSE(DeserializeTraceRecord(future, &out));
  EXPECT_EQ(out.query_id, 42u);

  // Every truncated prefix fails cleanly.
  for (std::size_t cut = 0; cut < blob.size(); ++cut) {
    TraceRecord ignored;
    EXPECT_FALSE(DeserializeTraceRecord(blob.substr(0, cut), &ignored))
        << "decoded from a " << cut << "-byte prefix";
  }
  // Trailing garbage is refused (AtEnd rule, as in net/protocol).
  TraceRecord ignored;
  EXPECT_FALSE(DeserializeTraceRecord(blob + std::string(1, '\0'), &ignored));

  // A forward parent reference (child before parent) is structurally
  // invalid and must be refused, not trusted.
  TraceRecord bad = MakeSampleRecord();
  bad.spans[0].parent = 2;  // points at a later span
  EXPECT_FALSE(DeserializeTraceRecord(SerializeTraceRecord(bad), &ignored));
}

TEST(TraceSerdeTest, InternedNamesAreStablePointers) {
  const char* a = InternTraceName("some_stage_name");
  const char* b = InternTraceName(std::string("some_stage_") + "name");
  EXPECT_EQ(a, b);  // same content → same pointer, across calls
  EXPECT_STREQ(a, "some_stage_name");
  const char* c = InternTraceName("another_stage");
  EXPECT_NE(a, c);
  EXPECT_STREQ(c, "another_stage");
}

// -------------------------------------------------------- perf counters

TEST(PerfCountersTest, ForcedFallbackNeverFailsAndSaysSo) {
  // The ISSUE acceptance criterion: where perf_event_open is denied
  // (containers, CI), attribution degrades to the timestamp-counter
  // fallback — a working sample with hardware=false, never an error.
  PerfCounters::ForceFallback(true);
  {
    PerfCounters counters;
    EXPECT_FALSE(counters.hardware());
    EXPECT_STREQ(counters.backend(), "tsc");
    counters.Start();
    // Burn a little time so the tick delta is visible.
    volatile double sink = 0.0;
    for (int i = 0; i < 100000; ++i) {
      sink += static_cast<double>(i) * 0.5;
    }
    const PerfSample sample = counters.Stop();
    EXPECT_FALSE(sample.hardware);
    EXPECT_GT(sample.cycles, 0u);        // ticks elapsed
    EXPECT_EQ(sample.instructions, 0u);  // fallback counts cycles only
    EXPECT_EQ(sample.llc_misses, 0u);
    EXPECT_EQ(sample.stalled_cycles, 0u);
  }
  PerfCounters::ForceFallback(false);
}

TEST(PerfCountersTest, StartStopAlwaysYieldsAMonotoneSample) {
  // Whatever the environment grants — real PMU counters or the fallback
  // — Start/Stop must produce a usable sample without ever failing.
  PerfCounters counters;
  counters.Start();
  volatile std::uint64_t sink = 0;
  for (int i = 0; i < 200000; ++i) {
    sink += static_cast<std::uint64_t>(i) * 3u;
  }
  const PerfSample sample = counters.Stop();
  EXPECT_EQ(sample.hardware, counters.hardware());
  if (sample.hardware) {
    EXPECT_STREQ(counters.backend(), "perf_event");
    // ~200k loop iterations execute well over 100k instructions.
    EXPECT_GT(sample.instructions, 100000u);
    EXPECT_GT(sample.cycles, 0u);
  } else {
    EXPECT_STREQ(counters.backend(), "tsc");
    EXPECT_GT(sample.cycles, 0u);
  }
  // Restarting reuses the same fds/fallback cleanly.
  counters.Start();
  const PerfSample second = counters.Stop();
  EXPECT_EQ(second.hardware, sample.hardware);
}

// A traced query's executor-run scan spans carry perf attribution, and
// the per-stage hardware histograms in the registry absorb it.
TEST(ServiceTraceTest, ScanSpansCarryPerfAttribution) {
  TracedServiceFixture fx(233);
  service::ServiceConfig config;
  config.trace.sample_every = 1;
  service::SearchService svc(service::WrapShardedIndex(fx.sharded), &fx.pool,
                             config);
  service::SearchRequest request = fx.MakeRequest(5);
  request.collect_trace = true;
  const service::SearchResponse response = svc.Search(std::move(request));
  ASSERT_EQ(response.status, service::RequestStatus::kOk);
  ASSERT_NE(response.trace, nullptr);

  std::size_t sampled_scans = 0;
  for (const TraceSpan& span : response.trace->spans) {
    if (std::strcmp(span.name, "shard_scan") != 0) {
      continue;
    }
    // Both backends count something for a real tree scan; only the
    // perf_event backend reports instructions.
    EXPECT_GT(span.perf.cycles, 0u);
    if (!span.perf.hardware) {
      EXPECT_EQ(span.perf.instructions, 0u);
    }
    ++sampled_scans;
  }
  EXPECT_EQ(sampled_scans, 4u);  // one per shard

  const std::vector<InstrumentSnapshot> snapshot = svc.registry()->Collect();
  const InstrumentSnapshot* cycles =
      Find(snapshot, "sofa_query_stage_cycles", "stage", "shard_scan");
  ASSERT_NE(cycles, nullptr);
  EXPECT_GE(cycles->count, 4u);
  EXPECT_GT(cycles->sum, 0.0);
  // The instruction/cache/stall histograms exist; they fill only when
  // the hardware backend is live (fallback zeros must stay out of the
  // percentiles).
  const InstrumentSnapshot* instructions =
      Find(snapshot, "sofa_query_stage_instructions", "stage", "shard_scan");
  ASSERT_NE(instructions, nullptr);
  if (PerfCounters().hardware()) {
    EXPECT_GE(instructions->count, 4u);
  } else {
    EXPECT_EQ(instructions->count, 0u);
  }
}

// Forced-fallback end to end: a traced query in a perf-denied
// environment still gets spans, cycles ticks, and a response — proof the
// degradation path is a skip, not a failure.
TEST(ServiceTraceTest, PerfFallbackDegradesGracefullyEndToEnd) {
  PerfCounters::ForceFallback(true);
  {
    // Fresh pool: ForceFallback only affects counters constructed after
    // it, and worker threads lazily construct theirs on first use.
    ThreadPool pool(2);
    TracedServiceFixture fx(239);
    service::ServiceConfig config;
    config.trace.sample_every = 1;
    service::SearchService svc(service::WrapShardedIndex(fx.sharded), &pool,
                               config);
    service::SearchRequest request = fx.MakeRequest(3);
    request.collect_trace = true;
    const service::SearchResponse response = svc.Search(std::move(request));
    ASSERT_EQ(response.status, service::RequestStatus::kOk);
    ASSERT_NE(response.trace, nullptr);
    std::size_t scans = 0;
    for (const TraceSpan& span : response.trace->spans) {
      if (std::strcmp(span.name, "shard_scan") != 0) {
        continue;
      }
      ++scans;
      EXPECT_FALSE(span.perf.hardware);
      EXPECT_GT(span.perf.cycles, 0u);  // fallback ticks, not zero
      EXPECT_EQ(span.perf.instructions, 0u);
    }
    EXPECT_EQ(scans, 4u);
    // Cycles histogram fills from the fallback too; the hardware-only
    // histograms stay empty.
    const std::vector<InstrumentSnapshot> snapshot =
        svc.registry()->Collect();
    const InstrumentSnapshot* cycles =
        Find(snapshot, "sofa_query_stage_cycles", "stage", "shard_scan");
    ASSERT_NE(cycles, nullptr);
    EXPECT_GE(cycles->count, 4u);
    const InstrumentSnapshot* llc =
        Find(snapshot, "sofa_query_stage_llc_misses", "stage", "shard_scan");
    ASSERT_NE(llc, nullptr);
    EXPECT_EQ(llc->count, 0u);
  }
  PerfCounters::ForceFallback(false);
}

}  // namespace
}  // namespace obs
}  // namespace sofa
