// Unit tests for the utility substrate: RNG, statistics, thread pool,
// table printer, flags, aligned vectors, and the serving-metrics
// histogram (percentile edge cases).

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <numeric>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "util/aligned.h"
#include "util/flags.h"
#include "util/histogram.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/table_printer.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace sofa {
namespace {

// ---------------------------------------------------------------- Rng

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    equal += (a.Next() == b.Next());
  }
  EXPECT_LT(equal, 3);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.Uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformRangeRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.Uniform(-3.5, 12.25);
    EXPECT_GE(u, -3.5);
    EXPECT_LT(u, 12.25);
  }
}

TEST(RngTest, UniformMeanIsHalf) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    sum += rng.Uniform();
  }
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RngTest, BelowStaysInBound) {
  Rng rng(3);
  for (std::uint64_t bound : {1ULL, 2ULL, 7ULL, 100ULL, 1000003ULL}) {
    for (int i = 0; i < 1000; ++i) {
      EXPECT_LT(rng.Below(bound), bound);
    }
  }
}

TEST(RngTest, BelowCoversAllResidues) {
  Rng rng(5);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    seen.insert(rng.Below(8));
  }
  EXPECT_EQ(seen.size(), 8u);
}

TEST(RngTest, GaussianMomentsMatchStandardNormal) {
  Rng rng(13);
  const int n = 200000;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double g = rng.Gaussian();
    sum += g;
    sum_sq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.03);
}

TEST(RngTest, GaussianWithParamsShiftsAndScales) {
  Rng rng(17);
  const int n = 100000;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double g = rng.Gaussian(5.0, 2.0);
    sum += g;
    sum_sq += g * g;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 5.0, 0.05);
  EXPECT_NEAR(var, 4.0, 0.15);
}

TEST(RngTest, ForkedStreamsAreIndependent) {
  Rng parent(99);
  Rng child = parent.Fork();
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    equal += (parent.Next() == child.Next());
  }
  EXPECT_LT(equal, 3);
}

// ---------------------------------------------------------------- stats

TEST(StatsTest, MeanOfKnownValues) {
  EXPECT_DOUBLE_EQ(stats::Mean({1.0, 2.0, 3.0, 4.0}), 2.5);
  EXPECT_DOUBLE_EQ(stats::Mean({}), 0.0);
}

TEST(StatsTest, VarianceOfKnownValues) {
  // Sample variance of {2,4,4,4,5,5,7,9} = 32/7.
  EXPECT_NEAR(stats::Variance({2, 4, 4, 4, 5, 5, 7, 9}), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(stats::Variance({5.0}), 0.0);
}

TEST(StatsTest, MedianOddAndEven) {
  EXPECT_DOUBLE_EQ(stats::Median({3.0, 1.0, 2.0}), 2.0);
  EXPECT_DOUBLE_EQ(stats::Median({4.0, 1.0, 3.0, 2.0}), 2.5);
}

TEST(StatsTest, PercentileInterpolates) {
  std::vector<double> v = {10, 20, 30, 40, 50};
  EXPECT_DOUBLE_EQ(stats::Percentile(v, 0), 10.0);
  EXPECT_DOUBLE_EQ(stats::Percentile(v, 100), 50.0);
  EXPECT_DOUBLE_EQ(stats::Percentile(v, 50), 30.0);
  EXPECT_DOUBLE_EQ(stats::Percentile(v, 25), 20.0);
  EXPECT_DOUBLE_EQ(stats::Percentile(v, 12.5), 15.0);
}

TEST(StatsTest, MinMax) {
  EXPECT_DOUBLE_EQ(stats::Min({3.0, -1.0, 2.0}), -1.0);
  EXPECT_DOUBLE_EQ(stats::Max({3.0, -1.0, 2.0}), 3.0);
}

TEST(StatsTest, SkewnessOfSymmetricDataIsZero) {
  EXPECT_NEAR(stats::Skewness({-2, -1, 0, 1, 2}), 0.0, 1e-12);
}

TEST(StatsTest, SkewnessSignDetectsAsymmetry) {
  EXPECT_GT(stats::Skewness({0, 0, 0, 0, 10}), 1.0);
  EXPECT_LT(stats::Skewness({0, 0, 0, 0, -10}), -1.0);
}

TEST(StatsTest, KurtosisOfGaussianSampleNearZero) {
  Rng rng(21);
  std::vector<double> v(50000);
  for (auto& x : v) {
    x = rng.Gaussian();
  }
  EXPECT_NEAR(stats::ExcessKurtosis(v), 0.0, 0.15);
}

TEST(StatsTest, PearsonPerfectCorrelation) {
  std::vector<double> x = {1, 2, 3, 4, 5};
  std::vector<double> y = {2, 4, 6, 8, 10};
  EXPECT_NEAR(stats::PearsonCorrelation(x, y), 1.0, 1e-12);
  std::vector<double> z = {10, 8, 6, 4, 2};
  EXPECT_NEAR(stats::PearsonCorrelation(x, z), -1.0, 1e-12);
}

TEST(StatsTest, PearsonUncorrelatedNearZero) {
  Rng rng(23);
  std::vector<double> x(20000);
  std::vector<double> y(20000);
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = rng.Gaussian();
    y[i] = rng.Gaussian();
  }
  EXPECT_NEAR(stats::PearsonCorrelation(x, y), 0.0, 0.03);
}

TEST(StatsTest, KsStatisticSmallForNormalSample) {
  Rng rng(29);
  std::vector<double> v(20000);
  for (auto& x : v) {
    x = rng.Gaussian();
  }
  EXPECT_LT(stats::KsStatisticVsStdNormal(v), 0.02);
}

TEST(StatsTest, KsStatisticLargeForShiftedSample) {
  Rng rng(29);
  std::vector<double> v(20000);
  for (auto& x : v) {
    x = rng.Gaussian() + 2.0;
  }
  EXPECT_GT(stats::KsStatisticVsStdNormal(v), 0.5);
}

TEST(StatsTest, StdNormalCdfKnownPoints) {
  EXPECT_NEAR(stats::StdNormalCdf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(stats::StdNormalCdf(1.959963985), 0.975, 1e-6);
  EXPECT_NEAR(stats::StdNormalCdf(-1.959963985), 0.025, 1e-6);
}

TEST(StatsTest, FractionalRanksWithTies) {
  const std::vector<double> ranks = stats::FractionalRanks({10, 20, 20, 30});
  ASSERT_EQ(ranks.size(), 4u);
  EXPECT_DOUBLE_EQ(ranks[0], 1.0);
  EXPECT_DOUBLE_EQ(ranks[1], 2.5);
  EXPECT_DOUBLE_EQ(ranks[2], 2.5);
  EXPECT_DOUBLE_EQ(ranks[3], 4.0);
}

TEST(StatsTest, AverageRanksLowerIsBetter) {
  // Method 0 always best, method 2 always worst.
  const std::vector<std::vector<double>> scores = {
      {1.0, 1.0, 1.0}, {2.0, 2.0, 2.0}, {3.0, 3.0, 3.0}};
  const std::vector<double> ranks = stats::AverageRanks(scores);
  EXPECT_DOUBLE_EQ(ranks[0], 1.0);
  EXPECT_DOUBLE_EQ(ranks[1], 2.0);
  EXPECT_DOUBLE_EQ(ranks[2], 3.0);
}

TEST(StatsTest, WilcoxonIdenticalSamplesGiveP1) {
  const std::vector<double> a = {1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(stats::WilcoxonSignedRankP(a, a), 1.0);
}

TEST(StatsTest, WilcoxonDetectsConsistentDifference) {
  std::vector<double> a(30);
  std::vector<double> b(30);
  Rng rng(31);
  for (std::size_t i = 0; i < a.size(); ++i) {
    a[i] = rng.Gaussian();
    b[i] = a[i] + 1.0 + 0.1 * rng.Gaussian();  // b consistently larger
  }
  EXPECT_LT(stats::WilcoxonSignedRankP(a, b), 0.001);
}

TEST(StatsTest, WilcoxonSymmetricNoiseNotSignificant) {
  std::vector<double> a(30);
  std::vector<double> b(30);
  Rng rng(37);
  for (std::size_t i = 0; i < a.size(); ++i) {
    a[i] = rng.Gaussian();
    b[i] = a[i] + 0.01 * rng.Gaussian();
  }
  EXPECT_GT(stats::WilcoxonSignedRankP(a, b), 0.05);
}

TEST(StatsTest, HolmAdjustMonotoneAndClipped) {
  const std::vector<double> adj = stats::HolmAdjust({0.01, 0.04, 0.03, 0.5});
  ASSERT_EQ(adj.size(), 4u);
  EXPECT_NEAR(adj[0], 0.04, 1e-12);   // 0.01 * 4
  EXPECT_NEAR(adj[2], 0.09, 1e-12);   // 0.03 * 3
  EXPECT_NEAR(adj[1], 0.09, 1e-12);   // max(0.04*2, previous) step-down
  EXPECT_NEAR(adj[3], 0.5, 1e-12);
  for (double p : adj) {
    EXPECT_LE(p, 1.0);
  }
}

TEST(StatsTest, CriticalDifferenceSeparatesClearWinner) {
  // Method 0 beats 1 and 2 on every observation; 1 and 2 are a coin flip.
  Rng rng(41);
  std::vector<std::vector<double>> scores(3, std::vector<double>(40));
  for (std::size_t i = 0; i < 40; ++i) {
    scores[0][i] = 1.0 + 0.01 * rng.Gaussian();
    scores[1][i] = 2.0 + 0.5 * rng.Gaussian();
    scores[2][i] = 2.0 + 0.5 * rng.Gaussian();
  }
  const auto cd = stats::CriticalDifference(scores);
  EXPECT_LT(cd.mean_ranks[0], cd.mean_ranks[1]);
  EXPECT_LT(cd.mean_ranks[0], cd.mean_ranks[2]);
  EXPECT_LT(cd.pairwise_p[0][1], 0.05);
  EXPECT_LT(cd.pairwise_p[0][2], 0.05);
  EXPECT_GT(cd.pairwise_p[1][2], 0.05);
  // The only clique should pair methods 1 and 2.
  ASSERT_EQ(cd.cliques.size(), 1u);
  std::set<std::size_t> clique(cd.cliques[0].begin(), cd.cliques[0].end());
  EXPECT_EQ(clique, (std::set<std::size_t>{1, 2}));
}

// ---------------------------------------------------------------- threading

TEST(ThreadPoolTest, RunsSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter(0);
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, WaitIsReusable) {
  ThreadPool pool(2);
  std::atomic<int> counter(0);
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 1);
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 2);
}

TEST(ThreadPoolTest, TasksMaySubmitTasks) {
  ThreadPool pool(2);
  std::atomic<int> counter(0);
  pool.Submit([&] {
    for (int i = 0; i < 10; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
  });
  pool.Wait();
  EXPECT_EQ(counter.load(), 10);
}

TEST(ThreadPoolTest, ParallelRunInvokesEveryWorkerOnce) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(8);
  ParallelRun(&pool, 8, [&](std::size_t w) { hits[w].fetch_add(1); });
  for (auto& h : hits) {
    EXPECT_EQ(h.load(), 1);
  }
}

TEST(ThreadPoolTest, ParallelForCoversRangeExactlyOnce) {
  ThreadPool pool(4);
  const std::size_t n = 10001;
  std::vector<std::atomic<int>> hits(n);
  ParallelFor(&pool, n, [&](std::size_t begin, std::size_t end, std::size_t) {
    for (std::size_t i = begin; i < end; ++i) {
      hits[i].fetch_add(1);
    }
  });
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, ParallelForEmptyRangeIsNoop) {
  ThreadPool pool(4);
  ParallelFor(&pool, 0, [](std::size_t, std::size_t, std::size_t) {
    FAIL() << "must not be called";
  });
}

TEST(ThreadPoolTest, DynamicParallelForCoversRangeExactlyOnce) {
  ThreadPool pool(4);
  const std::size_t n = 5003;
  std::vector<std::atomic<int>> hits(n);
  DynamicParallelFor(&pool, n, 17,
                     [&](std::size_t begin, std::size_t end, std::size_t) {
                       for (std::size_t i = begin; i < end; ++i) {
                         hits[i].fetch_add(1);
                       }
                     });
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, HardwareThreadsAtLeastOne) {
  EXPECT_GE(HardwareThreads(), 1u);
}

// ---------------------------------------------------------------- timer

TEST(TimerTest, MeasuresElapsedTime) {
  WallTimer timer;
  volatile double sink = 0.0;
  for (int i = 0; i < 1000000; ++i) {
    sink = sink + 1.0;
  }
  EXPECT_GE(timer.Seconds(), 0.0);
  EXPECT_GE(timer.Millis(), timer.Seconds());  // ms value >= s value
}

TEST(TimerTest, TimeItReturnsNonNegative) {
  const double s = TimeIt([] {});
  EXPECT_GE(s, 0.0);
}

// ---------------------------------------------------------------- printer

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter table({"name", "value"});
  table.AddRow({"a", "1"});
  table.AddRow({"long-name", "22"});
  const std::string rendered = table.ToString();
  EXPECT_NE(rendered.find("| name"), std::string::npos);
  EXPECT_NE(rendered.find("| long-name"), std::string::npos);
  // Header separator present.
  EXPECT_NE(rendered.find("|---"), std::string::npos);
}

TEST(TablePrinterTest, FormatDoublePrecision) {
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(FormatDouble(2.0, 0), "2");
}

TEST(TablePrinterTest, FormatSecondsScales) {
  EXPECT_EQ(FormatSeconds(0.5), "500.0 ms");
  EXPECT_EQ(FormatSeconds(2.5), "2.50 s");
  EXPECT_EQ(FormatSeconds(0.0000005), "0.5 us");
}

TEST(TablePrinterTest, FormatCountSeparators) {
  EXPECT_EQ(FormatCount(1), "1");
  EXPECT_EQ(FormatCount(1234), "1,234");
  EXPECT_EQ(FormatCount(1017586504ULL), "1,017,586,504");
}

// ---------------------------------------------------------------- flags

TEST(FlagsTest, ParsesEqualsAndSpaceForms) {
  const char* argv[] = {"prog", "--n=100", "--name", "astro", "positional",
                        "--verbose"};
  Flags flags(6, const_cast<char**>(argv));
  EXPECT_EQ(flags.GetInt("n", 0), 100);
  EXPECT_EQ(flags.GetString("name", ""), "astro");
  EXPECT_TRUE(flags.GetBool("verbose", false));
  ASSERT_EQ(flags.positional().size(), 1u);
  EXPECT_EQ(flags.positional()[0], "positional");
}

TEST(FlagsTest, DefaultsApplyWhenAbsent) {
  const char* argv[] = {"prog"};
  Flags flags(1, const_cast<char**>(argv));
  EXPECT_EQ(flags.GetInt("n", 42), 42);
  EXPECT_DOUBLE_EQ(flags.GetDouble("rate", 0.01), 0.01);
  EXPECT_FALSE(flags.Has("n"));
}

TEST(FlagsTest, ParsesLists) {
  const char* argv[] = {"prog", "--datasets=astro,lendb,sift1b"};
  Flags flags(2, const_cast<char**>(argv));
  const auto items = flags.GetList("datasets");
  ASSERT_EQ(items.size(), 3u);
  EXPECT_EQ(items[0], "astro");
  EXPECT_EQ(items[2], "sift1b");
}

TEST(FlagsTest, BoolFalseSpellings) {
  const char* argv[] = {"prog", "--a=false", "--b=0", "--c=no"};
  Flags flags(4, const_cast<char**>(argv));
  EXPECT_FALSE(flags.GetBool("a", true));
  EXPECT_FALSE(flags.GetBool("b", true));
  EXPECT_FALSE(flags.GetBool("c", true));
}

// ---------------------------------------------------------------- aligned

TEST(AlignedVectorTest, DataIsAligned) {
  AlignedVector<float> v(100);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(v.data()) % kBufferAlignment, 0u);
}

TEST(AlignedVectorTest, ResizeZeroInitializesNewTail) {
  AlignedVector<float> v(4);
  for (std::size_t i = 0; i < 4; ++i) {
    v[i] = 1.0f;
  }
  v.resize(8);
  for (std::size_t i = 4; i < 8; ++i) {
    EXPECT_EQ(v[i], 0.0f);
  }
  EXPECT_EQ(v[0], 1.0f);
}

TEST(AlignedVectorTest, CopyAndMoveSemantics) {
  AlignedVector<int> v(3);
  v[0] = 1;
  v[1] = 2;
  v[2] = 3;
  AlignedVector<int> copy = v;
  EXPECT_EQ(copy[1], 2);
  copy[1] = 99;
  EXPECT_EQ(v[1], 2);  // deep copy
  AlignedVector<int> moved = std::move(copy);
  EXPECT_EQ(moved[1], 99);
  EXPECT_EQ(copy.size(), 0u);  // NOLINT(bugprone-use-after-move)
}

TEST(AlignedVectorTest, PushBackGrows) {
  AlignedVector<int> v;
  for (int i = 0; i < 1000; ++i) {
    v.push_back(i);
  }
  ASSERT_EQ(v.size(), 1000u);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(v[static_cast<std::size_t>(i)], i);
  }
}

TEST(AlignedVectorTest, AssignFills) {
  AlignedVector<float> v;
  v.assign(10, 3.5f);
  ASSERT_EQ(v.size(), 10u);
  for (std::size_t i = 0; i < 10; ++i) {
    EXPECT_EQ(v[i], 3.5f);
  }
}

// ------------------------------------------------------- LogHistogram

TEST(LogHistogramTest, EmptyHistogramReportsZeros) {
  LogHistogram h(1e-3, 1e5);
  EXPECT_EQ(h.TotalCount(), 0u);
  EXPECT_EQ(h.Sum(), 0.0);
  EXPECT_EQ(h.Mean(), 0.0);
  EXPECT_EQ(h.MaxValue(), 0.0);
  EXPECT_EQ(h.Percentile(0.0), 0.0);
  EXPECT_EQ(h.Percentile(50.0), 0.0);
  EXPECT_EQ(h.Percentile(100.0), 0.0);
}

TEST(LogHistogramTest, SingleSampleAtEveryPercentile) {
  LogHistogram h(1e-3, 1e5);
  h.Record(7.5);
  EXPECT_EQ(h.TotalCount(), 1u);
  EXPECT_EQ(h.Mean(), 7.5);
  EXPECT_EQ(h.MaxValue(), 7.5);
  // Every percentile lands in the sample's bucket: at most one bucket of
  // relative error below (~12% at 20 buckets/decade), capped at the
  // observed maximum above.
  for (const double p : {0.0, 1.0, 50.0, 99.0, 100.0}) {
    EXPECT_GE(h.Percentile(p), 7.5 / 1.13) << "p" << p;
    EXPECT_LE(h.Percentile(p), 7.5) << "p" << p;
  }
}

TEST(LogHistogramTest, OutOfRangePercentilesAreClamped) {
  LogHistogram h(1e-3, 1e5);
  h.Record(2.0);
  h.Record(4.0);
  EXPECT_EQ(h.Percentile(-10.0), h.Percentile(0.0));
  EXPECT_EQ(h.Percentile(250.0), h.Percentile(100.0));
}

TEST(LogHistogramTest, SaturatingBucketsClampNotDrop) {
  LogHistogram h(1.0, 100.0);
  // Above the range: counted in the last bucket, percentile capped at the
  // true observed maximum (not at the bucket edge).
  h.Record(1e9);
  EXPECT_EQ(h.TotalCount(), 1u);
  EXPECT_EQ(h.MaxValue(), 1e9);
  EXPECT_LE(h.Percentile(99.0), 1e9);
  EXPECT_GE(h.Percentile(99.0), 100.0 / 1.13);  // at least the last edge
  // Below the range (and zero): clamped into the first bucket; the cap by
  // MaxValue keeps the reported percentile at the tiny observed value.
  LogHistogram low(1.0, 100.0);
  low.Record(1e-9);
  EXPECT_EQ(low.TotalCount(), 1u);
  EXPECT_EQ(low.Percentile(50.0), 1e-9);
  low.Record(0.0);
  EXPECT_EQ(low.TotalCount(), 2u);
}

TEST(LogHistogramTest, PercentilesAreMonotoneAndBounded) {
  LogHistogram h(1e-3, 1e4, /*buckets_per_decade=*/20);
  Rng rng(9);
  double max_seen = 0.0;
  double sum = 0.0;
  for (int i = 0; i < 2000; ++i) {
    const double v = std::exp(rng.Gaussian());  // log-normal latencies
    h.Record(v);
    max_seen = std::max(max_seen, v);
    sum += v;
  }
  EXPECT_EQ(h.TotalCount(), 2000u);
  EXPECT_NEAR(h.Mean(), sum / 2000.0, 1e-9);
  EXPECT_EQ(h.MaxValue(), max_seen);
  double previous = 0.0;
  for (const double p : {1.0, 25.0, 50.0, 90.0, 95.0, 99.0, 100.0}) {
    const double value = h.Percentile(p);
    EXPECT_GE(value, previous) << "p" << p;
    EXPECT_LE(value, max_seen) << "p" << p;
    previous = value;
  }
  EXPECT_EQ(h.Percentile(100.0), max_seen);
}

TEST(LogHistogramTest, ResetReturnsToEmpty) {
  LogHistogram h(1e-3, 1e5);
  h.Record(1.0);
  h.Record(10.0);
  ASSERT_EQ(h.TotalCount(), 2u);
  h.Reset();
  EXPECT_EQ(h.TotalCount(), 0u);
  EXPECT_EQ(h.Mean(), 0.0);
  EXPECT_EQ(h.MaxValue(), 0.0);
  EXPECT_EQ(h.Percentile(99.0), 0.0);
  // Recording after a reset starts a fresh population.
  h.Record(5.0);
  EXPECT_EQ(h.TotalCount(), 1u);
  EXPECT_EQ(h.Mean(), 5.0);
}

TEST(LogHistogramTest, ConcurrentRecordingLosesNothing) {
  LogHistogram h(1e-3, 1e5);
  ThreadPool pool(4);
  constexpr std::size_t kPerWorker = 5000;
  ParallelRun(&pool, 4, [&](std::size_t worker) {
    for (std::size_t i = 0; i < kPerWorker; ++i) {
      h.Record(static_cast<double>(worker + 1));
    }
  });
  EXPECT_EQ(h.TotalCount(), 4 * kPerWorker);
  EXPECT_EQ(h.MaxValue(), 4.0);
  EXPECT_NEAR(h.Sum(), kPerWorker * (1.0 + 2.0 + 3.0 + 4.0), 1e-6);
}

TEST(LogHistogramTest, MergeOfEmptyIsANoop) {
  LogHistogram h(1e-3, 1e5);
  h.Record(2.0);
  h.Record(8.0);
  const double p50 = h.Percentile(50.0);
  LogHistogram empty(1e-3, 1e5);
  h.Merge(empty);
  EXPECT_EQ(h.TotalCount(), 2u);
  EXPECT_NEAR(h.Sum(), 10.0, 1e-9);
  EXPECT_EQ(h.MaxValue(), 8.0);
  EXPECT_EQ(h.Percentile(50.0), p50);
  // Merging into an empty histogram copies the population.
  empty.Merge(h);
  EXPECT_EQ(empty.TotalCount(), 2u);
  EXPECT_NEAR(empty.Sum(), 10.0, 1e-9);
  EXPECT_EQ(empty.MaxValue(), 8.0);
  EXPECT_EQ(empty.Percentile(50.0), p50);
}

TEST(LogHistogramTest, MergeSingleSampleMatchesDirectRecord) {
  LogHistogram a(1e-3, 1e5);
  a.Record(3.25);
  LogHistogram b(1e-3, 1e5);
  b.Merge(a);
  LogHistogram direct(1e-3, 1e5);
  direct.Record(3.25);
  EXPECT_EQ(b.TotalCount(), direct.TotalCount());
  EXPECT_EQ(b.Sum(), direct.Sum());
  EXPECT_EQ(b.MaxValue(), direct.MaxValue());
  for (const double p : {1.0, 50.0, 99.0, 100.0}) {
    EXPECT_EQ(b.Percentile(p), direct.Percentile(p)) << "p" << p;
  }
}

TEST(LogHistogramTest, MergeAcrossBucketsEqualsCombinedPopulation) {
  // Two disjoint populations decades apart: the merge must be
  // indistinguishable from recording both populations into one
  // histogram — same counts per bucket, sum, max, and percentiles.
  LogHistogram fast(1e-3, 1e5);
  LogHistogram slow(1e-3, 1e5);
  LogHistogram combined(1e-3, 1e5);
  Rng rng(31);
  for (int i = 0; i < 500; ++i) {
    const double f = 0.1 + rng.Uniform();        // ~1e-1 decade
    const double s = 100.0 + 900.0 * rng.Uniform();  // ~1e2..1e3
    fast.Record(f);
    slow.Record(s);
    combined.Record(f);
    combined.Record(s);
  }
  fast.Merge(slow);
  EXPECT_EQ(fast.TotalCount(), combined.TotalCount());
  EXPECT_NEAR(fast.Sum(), combined.Sum(), 1e-6);
  EXPECT_EQ(fast.MaxValue(), combined.MaxValue());
  ASSERT_EQ(fast.NumBuckets(), combined.NumBuckets());
  for (std::size_t b = 0; b < fast.NumBuckets(); ++b) {
    EXPECT_EQ(fast.BucketCount(b), combined.BucketCount(b)) << "bucket " << b;
  }
  for (const double p : {5.0, 50.0, 95.0, 99.0}) {
    EXPECT_EQ(fast.Percentile(p), combined.Percentile(p)) << "p" << p;
  }
  // The bimodal split is visible: the median sits in the fast mode, the
  // upper tail in the slow mode.
  EXPECT_LT(fast.Percentile(45.0), 2.0);
  EXPECT_GT(fast.Percentile(95.0), 100.0 / 1.13);
}

TEST(LogHistogramTest, TerminalBucketInterpolatesTowardObservedMax) {
  // All mass beyond the histogram range: percentiles interpolate between
  // the terminal bucket's lower edge and the observed maximum instead of
  // collapsing to a meaningless finite edge.
  LogHistogram h(1.0, 10.0);
  h.Record(50.0);
  h.Record(100.0);
  h.Record(200.0);
  const double last_edge = h.BucketUpperEdge(h.NumBuckets() - 2);
  for (const double p : {10.0, 50.0, 99.0}) {
    EXPECT_GE(h.Percentile(p), std::min(last_edge, 200.0)) << "p" << p;
    EXPECT_LE(h.Percentile(p), 200.0) << "p" << p;
  }
  EXPECT_EQ(h.Percentile(100.0), 200.0);
  // Percentiles stay monotone inside the terminal bucket.
  EXPECT_LE(h.Percentile(10.0), h.Percentile(50.0));
  EXPECT_LE(h.Percentile(50.0), h.Percentile(99.0));
}

TEST(RoundUpTest, RoundsToMultiples) {
  EXPECT_EQ(RoundUp(0, 64), 0u);
  EXPECT_EQ(RoundUp(1, 64), 64u);
  EXPECT_EQ(RoundUp(64, 64), 64u);
  EXPECT_EQ(RoundUp(65, 64), 128u);
}

}  // namespace
}  // namespace sofa
