#!/usr/bin/env bash
# Fails when any intra-repo markdown link in README.md or docs/*.md
# points at a file that does not exist. External links (http/https/
# mailto) and pure in-page anchors (#...) are skipped; a link's own
# anchor suffix (FILE.md#section) is stripped before the existence
# check. Run from anywhere; paths resolve relative to the linking file,
# with the repo root taken as the directory above this script.
#
# CI runs this as the `docs` job; locally it is also registered as the
# `docs_links` ctest (label: unit).

set -u
root="$(cd "$(dirname "$0")/.." && pwd)"

broken="$(
  for md in "$root/README.md" "$root"/docs/*.md; do
    [ -e "$md" ] || continue
    dir="$(dirname "$md")"
    # Markdown inline links: the (...) target of every [...](...).
    # Image links ![...](...) match too, which is what we want.
    grep -o '\[[^]]*\]([^)]*)' "$md" 2>/dev/null |
      sed 's/.*(\(.*\))/\1/' |
      while IFS= read -r target; do
        case "$target" in
          http://*|https://*|mailto:*|'#'*) continue ;;
        esac
        path="${target%%#*}"          # strip any anchor suffix
        [ -z "$path" ] && continue
        resolved="$(realpath -m "$dir/$path")"
        case "$resolved" in
          "$root"/*) ;;  # intra-repo: must exist
          *) continue ;; # escapes the repo (e.g. GitHub badge URLs)
        esac
        if [ ! -e "$resolved" ]; then
          echo "BROKEN: ${md#"$root"/} -> $target"
        fi
      done
  done
)"

if [ -n "$broken" ]; then
  echo "$broken"
  echo "docs link check FAILED"
  exit 1
fi
echo "docs link check OK"
