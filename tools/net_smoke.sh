#!/usr/bin/env bash
# End-to-end smoke of the network serving tier:
#
#   1. generate a small synthetic dataset and build an index over it;
#   2. boot `sofa_cli serve --listen=127.0.0.1:0` (ephemeral port, port
#      written to a file) in the background;
#   3. fire the closed- and open-loop phases of the net_throughput bench
#      at it over loopback, fetching the server's stats dump over the
#      wire into a JSON file;
#   4. SIGTERM the server and require a clean graceful drain (exit 0,
#      "drain complete" in its output);
#   5. assert the stats dump parses as JSON and carries the serving-tier
#      (sofa_net_*) instruments.
#
# Usage: net_smoke.sh <sofa_cli-binary> <net_throughput-binary>
# Registered as the `net_throughput_smoke` ctest (label: bench-smoke);
# CI runs it via `ctest -L bench-smoke`.

set -eu

if [ "$#" -ne 2 ]; then
  echo "usage: $0 <sofa_cli-binary> <net_throughput-binary>" >&2
  exit 2
fi
cli="$1"
bench="$2"

work="$(mktemp -d "${TMPDIR:-/tmp}/sofa_net_smoke.XXXXXX")"
server_pid=""
cleanup() {
  if [ -n "$server_pid" ] && kill -0 "$server_pid" 2>/dev/null; then
    kill -9 "$server_pid" 2>/dev/null || true
  fi
  rm -rf "$work"
}
trap cleanup EXIT

echo "== generate + build (workdir $work)"
"$cli" generate --dataset=SCEDC --n_series=3000 --n_queries=10 \
    --out="$work/data.fvecs" --queries_out="$work/queries.fvecs"
"$cli" build --data="$work/data.fvecs" --index="$work/index.sofa" \
    --leaf_size=200 --sampling=0.2

echo "== serve --listen on an ephemeral loopback port"
"$cli" serve --data="$work/data.fvecs" --index="$work/index.sofa" \
    --listen=127.0.0.1:0 --port-file="$work/port" \
    --max-pending=4096 --tenant-quota=256 \
    >"$work/server.log" 2>&1 &
server_pid=$!

# The port file appears (atomically) once the listen socket is bound.
for _ in $(seq 1 100); do
  [ -s "$work/port" ] && break
  if ! kill -0 "$server_pid" 2>/dev/null; then
    echo "server died before binding:" >&2
    cat "$work/server.log" >&2
    exit 1
  fi
  sleep 0.1
done
if [ ! -s "$work/port" ]; then
  echo "server never wrote its port file" >&2
  cat "$work/server.log" >&2
  exit 1
fi
port="$(cat "$work/port")"
echo "   bound to 127.0.0.1:$port"

echo "== net_throughput: closed + open loop over loopback"
"$bench" --port-file="$work/port" --mode=both --connections=2 \
    --duration_s=1 --qps=200 --k=5 --length=256 \
    --stats-json="$work/stats.json"

echo "== SIGTERM -> graceful drain"
kill -TERM "$server_pid"
server_status=0
wait "$server_pid" || server_status=$?
server_pid=""
if [ "$server_status" -ne 0 ]; then
  echo "server exited with status $server_status after SIGTERM:" >&2
  cat "$work/server.log" >&2
  exit 1
fi
if ! grep -q "drain complete" "$work/server.log"; then
  echo "server log is missing the drain-complete marker:" >&2
  cat "$work/server.log" >&2
  exit 1
fi
# The final report must include the serving-tier counters.
if ! grep -q "connections accepted" "$work/server.log"; then
  echo "server log is missing the net stats dump:" >&2
  cat "$work/server.log" >&2
  exit 1
fi

echo "== stats dump fetched over the wire must parse"
if [ ! -s "$work/stats.json" ]; then
  echo "net_throughput wrote no stats JSON" >&2
  exit 1
fi
if command -v python3 >/dev/null 2>&1; then
  python3 -m json.tool "$work/stats.json" >/dev/null
else
  grep -q '"metrics"' "$work/stats.json"
fi
grep -q 'sofa_net_' "$work/stats.json"

echo "net smoke OK"
