#!/usr/bin/env python3
"""Perf-baseline gate: diff two bench --stats-json dumps.

Usage:
    bench_compare.py BASELINE.json CURRENT.json [options]

Understands both dump schemas the benches emit:

  * the registry schema ({"metrics": [...]}) written by
    service_throughput / ingest_throughput and fetched over the wire by
    net_throughput — one object per instrument with "type" of
    counter/gauge/histogram;
  * the rowq sweep schema ({"rowq_ablation": [...]}) written by
    ablation_pruning_power — one object per dataset with pruning-power
    and bytes-touched numbers.

Both schemas may lead with a "metadata" object ({"bench", "git_sha",
"dispatch", "hardware_threads", ...run params}). The gate refuses
apples-to-oranges comparisons: a different bench or different run
parameters is an error; a different ISA dispatch tier or machine size
skips the comparison with a warning (exit 0) because neither timings nor
FP-order-dependent pruning counts are comparable across kernels.

Gating (thresholds are deliberately generous — CI timing noise is wild;
the gate exists to catch step-change regressions, not 5% drift):

  * counters with at least --min-count events must not move more than
    --counter-threshold-pct in either direction (a deterministic work
    counter that doubled means the engine does different work now);
  * time-valued histograms (name ends in "_ms") must not grow their p99
    by more than --latency-threshold-pct;
  * rowq prune_rate must not drop by more than --prune-threshold-pct
    (relative).

Exit status: 0 = within thresholds (or comparison skipped), 1 =
regression (each offending metric is named), 2 = usage/parse error.
Only the Python standard library is used.
"""

import argparse
import json
import sys


def load(path):
    try:
        with open(path, "r", encoding="utf-8") as handle:
            return json.load(handle)
    except (OSError, ValueError) as error:
        sys.stderr.write("bench_compare: cannot read %s: %s\n" % (path, error))
        sys.exit(2)


def metric_key(entry):
    """Stable identity of a registry metric: name plus sorted labels."""
    labels = entry.get("labels", {})
    label_text = ",".join("%s=%s" % (k, labels[k]) for k in sorted(labels))
    return "%s{%s}" % (entry.get("name", "?"), label_text)


def index_metrics(doc):
    return {metric_key(m): m for m in doc.get("metrics", [])}


def rel_change(before, after):
    if before == 0:
        return None  # no meaningful percentage off a zero base
    return 100.0 * (after - before) / before


def check_metadata(base_meta, cur_meta, failures):
    """Returns 'ok', 'skip' (incomparable environments) or 'fail'."""
    if not base_meta or not cur_meta:
        print("note: metadata missing on one side; comparing values only")
        return "ok"
    if base_meta.get("bench") != cur_meta.get("bench"):
        failures.append(
            "metadata: different benches (%s vs %s)"
            % (base_meta.get("bench"), cur_meta.get("bench"))
        )
        return "fail"
    # Run parameters must match — a different workload is not a perf
    # signal. git_sha legitimately differs; machine shape is handled
    # below.
    ignored = {"git_sha", "dispatch", "hardware_threads"}
    for key in sorted(set(base_meta) | set(cur_meta)):
        if key in ignored:
            continue
        if base_meta.get(key) != cur_meta.get(key):
            failures.append(
                "metadata: run parameter %r differs (%r vs %r)"
                % (key, base_meta.get(key), cur_meta.get(key))
            )
    if failures:
        return "fail"
    for key, reason in (
        ("dispatch", "ISA dispatch tier"),
        ("hardware_threads", "machine size"),
    ):
        if base_meta.get(key) != cur_meta.get(key):
            print(
                "SKIPPED: %s differs (%s vs %s) — runs are not comparable"
                % (reason, base_meta.get(key), cur_meta.get(key))
            )
            return "skip"
    return "ok"


def compare_registry(base, cur, args, failures):
    base_metrics = index_metrics(base)
    cur_metrics = index_metrics(cur)
    compared = 0
    for key in sorted(set(base_metrics) & set(cur_metrics)):
        b, c = base_metrics[key], cur_metrics[key]
        kind = b.get("type")
        if kind != c.get("type"):
            failures.append("%s: kind changed (%s -> %s)" % (key, kind, c.get("type")))
            continue
        if kind == "counter":
            before, after = b.get("value", 0), c.get("value", 0)
            if max(before, after) < args.min_count:
                continue  # 0-vs-3 noise, not a signal
            change = rel_change(before, after)
            compared += 1
            if change is not None and abs(change) > args.counter_threshold_pct:
                failures.append(
                    "%s: counter moved %+.1f%% (%s -> %s, threshold ±%.0f%%)"
                    % (key, change, before, after, args.counter_threshold_pct)
                )
        elif kind == "histogram":
            if not b.get("name", key).endswith("_ms") and not key.split("{")[0].endswith("_ms"):
                continue  # cycles/instructions etc. are machine-bound
            if min(b.get("count", 0), c.get("count", 0)) < args.min_count:
                continue
            before, after = b.get("p99", 0.0), c.get("p99", 0.0)
            change = rel_change(before, after)
            compared += 1
            if change is not None and change > args.latency_threshold_pct:
                failures.append(
                    "%s: p99 grew %+.1f%% (%.4g -> %.4g ms, threshold +%.0f%%)"
                    % (key, change, before, after, args.latency_threshold_pct)
                )
    only_base = sorted(set(base_metrics) - set(cur_metrics))
    if only_base:
        failures.append(
            "metrics disappeared from the current run: %s" % ", ".join(only_base)
        )
    print(
        "registry compare: %d shared metrics, %d gated, %d only-in-current"
        % (len(set(base_metrics) & set(cur_metrics)), compared,
           len(set(cur_metrics) - set(base_metrics)))
    )


def compare_rowq(base, cur, args, failures):
    base_rows = {row.get("dataset"): row for row in base.get("rowq_ablation", [])}
    cur_rows = {row.get("dataset"): row for row in cur.get("rowq_ablation", [])}
    for name in sorted(set(base_rows) & set(cur_rows)):
        b, c = base_rows[name], cur_rows[name]
        before, after = b.get("prune_rate", 0.0), c.get("prune_rate", 0.0)
        change = rel_change(before, after)
        if change is not None and change < -args.prune_threshold_pct:
            failures.append(
                "rowq[%s]: prune_rate fell %.1f%% (%.4f -> %.4f, threshold -%.0f%%)"
                % (name, change, before, after, args.prune_threshold_pct)
            )
        before, after = b.get("rowq_checked", 0), c.get("rowq_checked", 0)
        change = rel_change(before, after)
        if change is not None and abs(change) > args.counter_threshold_pct:
            failures.append(
                "rowq[%s]: rowq_checked moved %+.1f%% (%s -> %s)"
                % (name, change, before, after)
            )
    missing = sorted(set(base_rows) - set(cur_rows))
    if missing:
        failures.append("rowq datasets disappeared: %s" % ", ".join(missing))
    print(
        "rowq compare: %d shared datasets" % len(set(base_rows) & set(cur_rows))
    )


def main():
    parser = argparse.ArgumentParser(
        description="diff two bench --stats-json dumps and gate on regressions"
    )
    parser.add_argument("baseline", help="baseline stats JSON")
    parser.add_argument("current", help="current stats JSON")
    parser.add_argument(
        "--counter-threshold-pct", type=float, default=75.0,
        help="max |relative change| of a counter (default %(default)s%%)",
    )
    parser.add_argument(
        "--latency-threshold-pct", type=float, default=900.0,
        help="max p99 growth of *_ms histograms (default %(default)s%%)",
    )
    parser.add_argument(
        "--prune-threshold-pct", type=float, default=25.0,
        help="max relative prune_rate drop (default %(default)s%%)",
    )
    parser.add_argument(
        "--min-count", type=float, default=16,
        help="ignore counters/histograms below this many events "
             "(default %(default)s)",
    )
    parser.add_argument(
        "--ignore-metadata", action="store_true",
        help="compare values even when the run metadata disagrees",
    )
    args = parser.parse_args()

    base = load(args.baseline)
    cur = load(args.current)
    failures = []

    if not args.ignore_metadata:
        verdict = check_metadata(base.get("metadata"), cur.get("metadata"), failures)
        if verdict == "skip":
            return 0
        if verdict == "fail":
            for failure in failures:
                print("FAIL: %s" % failure)
            return 1

    if "metrics" in base or "metrics" in cur:
        compare_registry(base, cur, args, failures)
    if "rowq_ablation" in base or "rowq_ablation" in cur:
        compare_rowq(base, cur, args, failures)
    if "metrics" not in base and "rowq_ablation" not in base:
        sys.stderr.write("bench_compare: %s has no recognized schema\n" % args.baseline)
        return 2

    if failures:
        for failure in failures:
            print("FAIL: %s" % failure)
        print("%d metric(s) regressed beyond thresholds" % len(failures))
        return 1
    print("OK: within thresholds")
    return 0


if __name__ == "__main__":
    sys.exit(main())
