// Section V-E ablation (text claims): pruning power of the summarizations.
//
// The paper explains the speedups via pruning power — "in the SCEDC
// dataset … we can prune 98% of all data series at the first level of the
// tree, compared to 38% with MESSI". This harness prints, per dataset, the
// fraction of candidates whose lower bound alone exceeds the exact 1-NN
// distance for SFA (EW+VAR) vs iSAX, together with the observed in-engine
// counters (share of series discarded before any raw-data access).

#include <cstdio>

#include "bench_common.h"
#include "sfa/tlb.h"
#include "util/stats.h"
#include "util/table_printer.h"

int main(int argc, char** argv) {
  using namespace sofa;
  using namespace sofa::bench;
  Flags flags(argc, argv);
  BenchOptions options = ParseBenchOptions(flags);
  options.n_series = static_cast<std::size_t>(
      flags.GetInt("n_series", 20000));
  const std::size_t threads = options.max_threads();
  PrintHeader("Section V-E — pruning power, SFA vs iSAX", options);

  ThreadPool pool(threads);
  TablePrinter table({"Dataset", "SFA pruning power", "iSAX pruning power",
                      "SFA engine prune%", "MESSI engine prune%"});
  for (const std::string& name : options.dataset_names) {
    const LabeledDataset ds = MakeBenchDataset(name, options, &pool);

    const SofaIndex sofa = BuildSofa(ds.data, options, &pool, threads);
    const MessiIndex messi = BuildMessi(ds.data, options, &pool, threads);

    // Metric level: summarization-only pruning power.
    sfa::TlbOptions tlb_options;
    tlb_options.max_queries = options.n_queries;
    tlb_options.max_candidates = 512;
    const double sfa_power = sfa::MeanPruningPower(
        *sofa.scheme, ds.data, ds.queries, tlb_options);
    const double sax_power = sfa::MeanPruningPower(
        *messi.scheme, ds.data, ds.queries, tlb_options);

    // Engine level: observed share of series discarded by LBD.
    index::QueryProfile sofa_profile;
    index::QueryProfile messi_profile;
    for (std::size_t q = 0; q < ds.queries.size(); ++q) {
      (void)sofa.tree->SearchKnn(ds.queries.row(q), 1, &sofa_profile);
      (void)messi.tree->SearchKnn(ds.queries.row(q), 1, &messi_profile);
    }
    table.AddRow(
        {name, FormatDouble(sfa_power * 100.0, 1) + "%",
         FormatDouble(sax_power * 100.0, 1) + "%",
         FormatDouble(sofa_profile.SeriesPruningRatio() * 100.0, 1) + "%",
         FormatDouble(messi_profile.SeriesPruningRatio() * 100.0, 1) + "%"});
  }
  std::printf("%s", table.ToString().c_str());
  std::printf(
      "\npaper shape: SFA pruning power above iSAX everywhere, with the "
      "widest margins on\nhigh-frequency datasets (paper: 98%% vs 38%% on "
      "SCEDC at the first tree level).\n");
  return 0;
}
