// Section V-E ablation (text claims): pruning power of the summarizations,
// plus the engine's compressed pruning tier.
//
// The paper explains the speedups via pruning power — "in the SCEDC
// dataset … we can prune 98% of all data series at the first level of the
// tree, compared to 38% with MESSI". This harness prints, per dataset, the
// fraction of candidates whose lower bound alone exceeds the exact 1-NN
// distance for SFA (EW+VAR) vs iSAX, together with the observed in-engine
// counters (share of series discarded before any raw-data access).
//
// The second table sweeps the rowq tier (src/quant/rowq.h): the same SOFA
// tree answers the same queries with and without the quantized-row lower
// bound ahead of the exact kernel. Reported per dataset: the fraction of
// summary-LBD survivors the tier prunes, the raw bytes each configuration
// touches past the summaries (4·length per exact evaluation vs 1 byte per
// padded dimension per quantized check), and the wall-clock speedup.
// Answers are bit-identical by construction (tests/rowq_test.cc), so the
// tier is pure profit whenever the prune rate beats its bandwidth cost.
//
// --stats-json=FILE writes the rowq sweep as JSON for machine consumption
// (what the bench-smoke CI step validates).

#include <cstdio>
#include <string>

#include "bench_common.h"
#include "quant/rowq.h"
#include "sfa/tlb.h"
#include "util/stats.h"
#include "util/table_printer.h"

namespace {

std::string FormatMiB(double bytes) {
  return sofa::FormatDouble(bytes / (1024.0 * 1024.0), 2);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sofa;
  using namespace sofa::bench;
  Flags flags(argc, argv);
  BenchOptions options = ParseBenchOptions(flags);
  options.n_series = static_cast<std::size_t>(
      flags.GetInt("n_series", 20000));
  const std::size_t threads = options.max_threads();
  PrintHeader("Section V-E — pruning power, SFA vs iSAX", options);

  ThreadPool pool(threads);
  TablePrinter table({"Dataset", "SFA pruning power", "iSAX pruning power",
                      "SFA engine prune%", "MESSI engine prune%"});
  TablePrinter rowq_table({"Dataset", "rowq prune%", "MiB touched (off)",
                           "MiB touched (on)", "query ms (off)",
                           "query ms (on)", "speedup"});
  std::string json = "{\n  \"rowq_ablation\": [";
  bool first_entry = true;
  for (const std::string& name : options.dataset_names) {
    const LabeledDataset ds = MakeBenchDataset(name, options, &pool);

    SofaIndex sofa = BuildSofa(ds.data, options, &pool, threads);
    const MessiIndex messi = BuildMessi(ds.data, options, &pool, threads);

    // Metric level: summarization-only pruning power.
    sfa::TlbOptions tlb_options;
    tlb_options.max_queries = options.n_queries;
    tlb_options.max_candidates = 512;
    const double sfa_power = sfa::MeanPruningPower(
        *sofa.scheme, ds.data, ds.queries, tlb_options);
    const double sax_power = sfa::MeanPruningPower(
        *messi.scheme, ds.data, ds.queries, tlb_options);

    // Engine level: observed share of series discarded by LBD.
    index::QueryProfile sofa_profile;
    index::QueryProfile messi_profile;
    for (std::size_t q = 0; q < ds.queries.size(); ++q) {
      (void)sofa.tree->SearchKnn(ds.queries.row(q), 1, &sofa_profile);
      (void)messi.tree->SearchKnn(ds.queries.row(q), 1, &messi_profile);
    }
    table.AddRow(
        {name, FormatDouble(sfa_power * 100.0, 1) + "%",
         FormatDouble(sax_power * 100.0, 1) + "%",
         FormatDouble(sofa_profile.SeriesPruningRatio() * 100.0, 1) + "%",
         FormatDouble(messi_profile.SeriesPruningRatio() * 100.0, 1) + "%"});

    // Rowq tier sweep on the same tree: time the exact path, attach the
    // tier, time again. Same index, same queries, bit-identical answers.
    constexpr std::size_t kRowqK = 10;
    index::QueryProfile off_profile;
    const std::vector<double> off_ms =
        TimeQueries(ds.queries, [&](const float* query) {
          (void)sofa.tree->SearchKnn(query, kRowqK, &off_profile);
        });
    const auto rowq = quant::RowQuant::Build(ds.data);
    const std::size_t padded = rowq->quantizer().padded_length();
    sofa.tree->AttachRowQuant(rowq);
    index::QueryProfile on_profile;
    const std::vector<double> on_ms =
        TimeQueries(ds.queries, [&](const float* query) {
          (void)sofa.tree->SearchKnn(query, kRowqK, &on_profile);
        });

    const double prune_rate =
        on_profile.rowq_checked == 0
            ? 0.0
            : static_cast<double>(on_profile.rowq_pruned) /
                  static_cast<double>(on_profile.rowq_checked);
    // Raw bytes read past the summaries: every exact evaluation streams
    // the full float row; every quantized check streams the u8 codes.
    const double row_bytes = static_cast<double>(ds.data.length()) * 4.0;
    const double off_bytes =
        static_cast<double>(off_profile.series_ed_computed) * row_bytes;
    const double on_bytes =
        static_cast<double>(on_profile.series_ed_computed) * row_bytes +
        static_cast<double>(on_profile.rowq_checked) *
            static_cast<double>(padded);
    const double off_mean = stats::Mean(off_ms);
    const double on_mean = stats::Mean(on_ms);
    const double speedup = on_mean > 0.0 ? off_mean / on_mean : 0.0;
    rowq_table.AddRow({name, FormatDouble(prune_rate * 100.0, 1) + "%",
                       FormatMiB(off_bytes), FormatMiB(on_bytes),
                       FormatDouble(off_mean, 3), FormatDouble(on_mean, 3),
                       FormatDouble(speedup, 2) + "x"});
    json += first_entry ? "\n" : ",\n";
    first_entry = false;
    json += "    {\"dataset\": \"" + name + "\", \"rowq_checked\": " +
            std::to_string(on_profile.rowq_checked) +
            ", \"rowq_pruned\": " + std::to_string(on_profile.rowq_pruned) +
            ", \"prune_rate\": " + FormatDouble(prune_rate, 4) +
            ", \"bytes_off\": " + FormatDouble(off_bytes, 0) +
            ", \"bytes_on\": " + FormatDouble(on_bytes, 0) +
            ", \"query_ms_off\": " + FormatDouble(off_mean, 4) +
            ", \"query_ms_on\": " + FormatDouble(on_mean, 4) +
            ", \"speedup\": " + FormatDouble(speedup, 3) + "}";
  }
  json += "\n  ]\n}\n";
  std::printf("%s", table.ToString().c_str());
  std::printf(
      "\npaper shape: SFA pruning power above iSAX everywhere, with the "
      "widest margins on\nhigh-frequency datasets (paper: 98%% vs 38%% on "
      "SCEDC at the first tree level).\n");
  std::printf("\nrowq tier sweep (same tree, same queries, exact answers "
              "unchanged):\n%s", rowq_table.ToString().c_str());

  const std::string stats_path = flags.GetString("stats-json", "");
  if (!stats_path.empty()) {
    // Same run-identity block as the registry-backed benches, so
    // tools/bench_compare.py can gate rowq sweeps too.
    json = WithBenchMetadata(
        json, BenchMetadataJson(
                  "ablation_pruning_power",
                  {{"n_series", std::to_string(options.n_series)},
                   {"n_queries", std::to_string(options.n_queries)},
                   {"leaf_size", std::to_string(options.leaf_size)},
                   {"seed", std::to_string(options.seed)},
                   {"threads", std::to_string(threads)}}));
    std::FILE* out = std::fopen(stats_path.c_str(), "wb");
    if (out == nullptr ||
        std::fwrite(json.data(), 1, json.size(), out) != json.size() ||
        std::fclose(out) != 0) {
      std::fprintf(stderr, "failed to write --stats-json %s\n",
                   stats_path.c_str());
      return 1;
    }
    std::printf("wrote rowq sweep to %s\n", stats_path.c_str());
  }
  return 0;
}
