// Fig. 11: 1-NN query time versus leaf capacity for MESSI, SOFA+ED
// (equi-depth bins) and SOFA+EW (equi-width bins).
//
// Paper shape: query time falls with leaf size and plateaus around 10k
// series per leaf (20k is the paper default); SOFA+EW below SOFA+ED below
// MESSI throughout. Defaults sweep a scaled range; --leaf_sizes overrides.

#include <cstdio>

#include "bench_common.h"
#include "util/stats.h"
#include "util/table_printer.h"

int main(int argc, char** argv) {
  using namespace sofa;
  using namespace sofa::bench;
  Flags flags(argc, argv);
  BenchOptions options = ParseBenchOptions(flags);
  if (!flags.Has("datasets")) {
    // Representative subset by default (full sweep via --datasets=...).
    options.dataset_names = {"LenDB", "SCEDC",   "OBS",
                             "Iquique", "PNW",   "Deep1b"};
  }
  std::vector<std::size_t> leaf_sizes;
  for (const std::string& item : flags.GetList("leaf_sizes")) {
    leaf_sizes.push_back(static_cast<std::size_t>(std::stoul(item)));
  }
  if (leaf_sizes.empty()) {
    leaf_sizes = {250, 500, 1000, 2000, 5000, 10000, 20000};
  }
  PrintHeader("Fig. 11 — query time by leaf size", options);

  const std::size_t threads = options.max_threads();
  ThreadPool pool(threads);

  TablePrinter table({"Leaf size", "MESSI (ms)", "SOFA+ED (ms)",
                      "SOFA+EW (ms)"});
  for (const std::size_t leaf : leaf_sizes) {
    BenchOptions leaf_options = options;
    leaf_options.leaf_size = leaf;
    std::vector<double> messi_ms;
    std::vector<double> sofa_ed_ms;
    std::vector<double> sofa_ew_ms;
    for (const std::string& name : options.dataset_names) {
      const LabeledDataset ds = MakeBenchDataset(name, options, &pool);
      const MessiIndex messi =
          BuildMessi(ds.data, leaf_options, &pool, threads);
      for (const double ms : TimeQueries(ds.queries, [&](const float* q) {
             (void)messi.tree->Search1Nn(q);
           })) {
        messi_ms.push_back(ms);
      }
      sfa::SfaConfig ed_config;
      ed_config.binning = quant::BinningMethod::kEquiDepth;
      const SofaIndex sofa_ed =
          BuildSofa(ds.data, leaf_options, &pool, threads, &ed_config);
      for (const double ms : TimeQueries(ds.queries, [&](const float* q) {
             (void)sofa_ed.tree->Search1Nn(q);
           })) {
        sofa_ed_ms.push_back(ms);
      }
      const SofaIndex sofa_ew =
          BuildSofa(ds.data, leaf_options, &pool, threads);
      for (const double ms : TimeQueries(ds.queries, [&](const float* q) {
             (void)sofa_ew.tree->Search1Nn(q);
           })) {
        sofa_ew_ms.push_back(ms);
      }
    }
    table.AddRow({std::to_string(leaf),
                  FormatDouble(stats::Median(messi_ms), 2),
                  FormatDouble(stats::Median(sofa_ed_ms), 2),
                  FormatDouble(stats::Median(sofa_ew_ms), 2)});
  }
  std::printf("%s", table.ToString().c_str());
  std::printf(
      "\npaper shape: times fall with leaf size and plateau (paper: around "
      "10k); SOFA+EW <= SOFA+ED <= MESSI.\nbench-scale caveat: the paper "
      "sweeps leaves up to 0.02%% of its 10^8-series collections; at "
      "--n_series=%zu\na 10k leaf is a large fraction of the data, so the "
      "approximate-search leaf scan dominates and the\ncurve inverts for "
      "the largest leaves. The SOFA <= MESSI ordering is scale-free.\n",
      options.n_series);
  return 0;
}
