// Table I: characteristics of the 17 benchmark datasets.
//
// Prints the paper's inventory (name, #series, length) plus the measured
// properties of our synthetic substitutes at bench scale: spectral centroid
// (the frequency-content knob behind Figs. 12/13) and value-distribution
// shape (the Fig. 1 non-Gaussianity).

#include <complex>
#include <cstdio>

#include "bench_common.h"
#include "dft/real_dft.h"
#include "util/stats.h"
#include "util/table_printer.h"

namespace {

using namespace sofa;

double SpectralCentroid(const Dataset& data, std::size_t max_series) {
  const std::size_t n = data.length();
  dft::RealDftPlan plan(n);
  dft::RealDftPlan::Scratch scratch;
  std::vector<std::complex<float>> coeffs(plan.num_coefficients());
  double weighted = 0.0;
  double total = 0.0;
  for (std::size_t i = 0; i < std::min(max_series, data.size()); ++i) {
    plan.Transform(data.row(i), coeffs.data(), &scratch);
    for (std::size_t k = 1; k < plan.num_coefficients(); ++k) {
      const double power = std::norm(
          std::complex<double>(coeffs[k].real(), coeffs[k].imag()));
      weighted += power * static_cast<double>(k) / static_cast<double>(n);
      total += power;
    }
  }
  return total > 0.0 ? weighted / total : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sofa::bench;
  Flags flags(argc, argv);
  BenchOptions options = ParseBenchOptions(flags);
  options.n_series = static_cast<std::size_t>(
      flags.GetInt("n_series", 2000));  // stats only: small sample suffices
  PrintHeader("Table I — dataset characteristics", options);

  ThreadPool pool(options.max_threads());
  TablePrinter table({"Dataset", "# of Series (paper)", "Series Length",
                      "generated", "spectral centroid", "KS vs N(0,1)"});
  std::uint64_t total_paper = 0;
  for (const std::string& name : options.dataset_names) {
    const datagen::DatasetSpec* spec = datagen::FindDatasetSpec(name);
    const LabeledDataset ds = MakeBenchDataset(name, options, &pool);
    total_paper += spec->paper_count;
    std::vector<double> values;
    for (std::size_t i = 0; i < std::min<std::size_t>(50, ds.data.size());
         ++i) {
      for (std::size_t t = 0; t < ds.data.length(); ++t) {
        values.push_back(ds.data.row(i)[t]);
      }
    }
    table.AddRow({spec->name, FormatCount(spec->paper_count),
                  std::to_string(spec->series_length),
                  std::to_string(ds.data.size()),
                  FormatDouble(SpectralCentroid(ds.data, 100), 3),
                  FormatDouble(stats::KsStatisticVsStdNormal(values), 3)});
  }
  std::printf("%s", table.ToString().c_str());
  std::printf("\npaper total series: %s (paper reports 1,017,586,504)\n",
              FormatCount(total_paper).c_str());
  return 0;
}
