// Fig. 7: mean index-creation time (FAISS / MESSI / SOFA) by core count,
// split into phases (learning SFA bins / transformation / tree building).
//
// Paper shape: MESSI fastest (~15 s at paper scale), SOFA pays an extra
// DFT-transform and bin-learning cost, FAISS in between; scaling from one
// socket to two brings little (synchronization overhead).

#include <cstdio>

#include "bench_common.h"
#include "flat/index_flat_l2.h"
#include "util/stats.h"
#include "util/table_printer.h"
#include "util/timer.h"

int main(int argc, char** argv) {
  using namespace sofa;
  using namespace sofa::bench;
  Flags flags(argc, argv);
  const BenchOptions options = ParseBenchOptions(flags);
  PrintHeader("Fig. 7 — mean index creation time by cores", options);

  TablePrinter table({"Cores", "Method", "Learn bins", "Transform+Tree",
                      "Total (mean s)"});
  for (const std::size_t threads : options.thread_counts) {
    ThreadPool pool(threads);
    std::vector<double> faiss_total;
    std::vector<double> messi_total;
    std::vector<double> sofa_total;
    std::vector<double> sofa_learn;
    std::vector<double> sofa_build;
    for (const std::string& name : options.dataset_names) {
      const LabeledDataset ds = MakeBenchDataset(name, options, &pool);
      {
        WallTimer timer;
        const flat::IndexFlatL2 faiss_index(&ds.data, &pool);
        faiss_total.push_back(timer.Seconds());
      }
      {
        WallTimer timer;
        const MessiIndex messi = BuildMessi(ds.data, options, &pool,
                                            threads);
        messi_total.push_back(timer.Seconds());
      }
      {
        WallTimer timer;
        const SofaIndex sofa = BuildSofa(ds.data, options, &pool, threads);
        sofa_total.push_back(timer.Seconds());
        sofa_learn.push_back(sofa.train_seconds);
        sofa_build.push_back(sofa.tree->build_stats().total_seconds);
      }
    }
    table.AddRow({std::to_string(threads), "FAISS IndexFlatL2", "-", "-",
                  FormatDouble(stats::Mean(faiss_total), 3)});
    table.AddRow({std::to_string(threads), "MESSI", "-",
                  FormatDouble(stats::Mean(messi_total), 3),
                  FormatDouble(stats::Mean(messi_total), 3)});
    table.AddRow({std::to_string(threads), "SOFA",
                  FormatDouble(stats::Mean(sofa_learn), 3),
                  FormatDouble(stats::Mean(sofa_build), 3),
                  FormatDouble(stats::Mean(sofa_total), 3)});
  }
  std::printf("%s", table.ToString().c_str());
  std::printf(
      "\npaper shape: MESSI fastest; SOFA adds DFT + bin-learning overhead "
      "(learning itself is\nnegligible); FAISS between them; core scaling "
      "of construction is modest.\n");
  return 0;
}
