// Related-work comparison (paper Section III): numeric summarizations vs
// the symbolic schemes.
//
// Reproduces the Schäfer & Högqvist pruning-power study the paper cites
// when motivating SFA: over APCA, PAA, PLA, CHEBY, DHWT and DFT "none
// outperformed DFT", and "SFA consistently matched or exceeded the
// performance of all but DFT" (SFA pays a quantization step on top of
// DFT). Two additions bridge the gap to this paper's contribution:
//
//   * "DFT +VAR" — DFT with variance-selected coefficients, the
//     un-quantized core of Section IV-E2. On high-frequency data it
//     towers over every fixed-band method, which is the whole SOFA story
//     before quantization even starts.
//   * the symbolic anchors "SFA EW +VAR" (alphabet 256) and "iSAX" from
//     the Section V-E ablations, evaluated on the same sampled pairs.
//
// Part 1 runs the UCR-archive-like collection (the paper's Table V
// setting), part 2 the Table I datasets; both report mean TLB per method
// and a critical-difference analysis across datasets.

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.h"
#include "datagen/ucr_archive.h"
#include "numeric/dft_summary.h"
#include "numeric/numeric_tlb.h"
#include "numeric/registry.h"
#include "sax/sax_scheme.h"
#include "sfa/mcb.h"
#include "util/stats.h"
#include "util/table_printer.h"

namespace {

using namespace sofa;
using namespace sofa::bench;

constexpr std::size_t kWordLength = 16;  // paper default: 16 stored values

// TLB of every compared method on one (train, queries) pair. Method order:
// the 6 numeric methods, DFT +VAR, SFA EW +VAR (256), iSAX (256).
std::vector<std::string> MethodNames() {
  std::vector<std::string> names;
  for (const auto& summary : numeric::MakeComparisonSet(64, 16)) {
    names.push_back(summary->name());
  }
  names.push_back("DFT +VAR");
  names.push_back("SFA EW +VAR");
  names.push_back("iSAX");
  return names;
}

std::vector<double> AllTlbs(const Dataset& train, const Dataset& queries,
                            ThreadPool* pool) {
  std::vector<double> tlbs;
  const std::size_t n = train.length();
  for (const auto& summary : numeric::MakeComparisonSet(n, kWordLength)) {
    tlbs.push_back(numeric::MeanTlb(*summary, train, queries));
  }
  numeric::DftSummary dft_var(
      n, numeric::DftSummary::SelectByVariance(train, kWordLength / 2));
  tlbs.push_back(numeric::MeanTlb(dft_var, train, queries));

  // Symbolic anchors on the same sampled pairs (same seeds).
  const std::vector<double> ablation =
      AblationTlbs(train, queries, /*alphabet=*/256, pool);
  tlbs.push_back(ablation[0]);  // SFA EW +VAR
  tlbs.push_back(ablation[4]);  // iSAX
  return tlbs;
}

void RunCollection(const char* title,
                   const std::vector<std::string>& dataset_names,
                   const std::vector<const Dataset*>& trains,
                   const std::vector<const Dataset*>& queries,
                   ThreadPool* pool) {
  const auto methods = MethodNames();
  std::vector<std::vector<double>> scores(methods.size());  // CD input
  std::vector<double> sums(methods.size(), 0.0);

  TablePrinter per_dataset(
      [&] {
        std::vector<std::string> headers = {"Dataset"};
        for (const auto& m : methods) {
          headers.push_back(m);
        }
        return headers;
      }());
  for (std::size_t d = 0; d < trains.size(); ++d) {
    const std::vector<double> tlbs = AllTlbs(*trains[d], *queries[d], pool);
    std::vector<std::string> row = {dataset_names[d]};
    for (std::size_t m = 0; m < methods.size(); ++m) {
      sums[m] += tlbs[m];
      scores[m].push_back(-tlbs[m]);  // CD ranks want lower-is-better
      row.push_back(FormatDouble(tlbs[m], 3));
    }
    per_dataset.AddRow(std::move(row));
  }
  std::vector<std::string> mean_row = {"MEAN"};
  for (std::size_t m = 0; m < methods.size(); ++m) {
    mean_row.push_back(FormatDouble(
        sums[m] / static_cast<double>(trains.size()), 3));
  }
  per_dataset.AddRow(std::move(mean_row));

  std::printf("%s (word length %zu, alphabet 256 for symbolic)\n", title,
              kWordLength);
  std::printf("%s", per_dataset.ToString().c_str());

  const auto cd = stats::CriticalDifference(scores);
  std::printf("\nmean ranks (lower = better):\n");
  for (std::size_t m = 0; m < methods.size(); ++m) {
    std::printf("  %-12s %.3f\n", methods[m].c_str(), cd.mean_ranks[m]);
  }
  std::printf("indistinguishable cliques (Wilcoxon-Holm, alpha 0.05):\n");
  if (cd.cliques.empty()) {
    std::printf("  (none — all pairwise differences significant)\n");
  }
  for (const auto& clique : cd.cliques) {
    std::printf(" ");
    for (const std::size_t m : clique) {
      std::printf(" [%s]", methods[m].c_str());
    }
    std::printf("\n");
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  BenchOptions options = ParseBenchOptions(flags);
  if (!flags.Has("n_series")) {
    options.n_series = 4000;  // TLB sampling needs no index-scale data
  }
  PrintHeader("Related work (Sec. III) — numeric summarizations vs SFA",
              options);
  ThreadPool pool(options.max_threads());

  // Part 1: the UCR-archive-like collection (Table V setting).
  datagen::UcrArchiveOptions archive_options;
  archive_options.train_per_dataset =
      static_cast<std::size_t>(flags.GetInt("train_per_dataset", 80));
  archive_options.test_per_dataset =
      static_cast<std::size_t>(flags.GetInt("test_per_dataset", 20));
  const auto archive = datagen::MakeUcrArchiveLike(archive_options);
  {
    std::vector<std::string> names;
    std::vector<const Dataset*> trains;
    std::vector<const Dataset*> tests;
    for (const auto& ds : archive) {
      names.push_back(ds.name);
      trains.push_back(&ds.train);
      tests.push_back(&ds.test);
    }
    RunCollection("Part 1 — UCR-like archive", names, trains, tests, &pool);
  }

  // Part 2: the Table I datasets (default: a spread of high- and
  // low-frequency collections; --datasets overrides).
  if (!flags.Has("datasets")) {
    options.dataset_names = {"LenDB", "SCEDC",      "SIFT1b", "OBS",
                             "astro", "Meier2019JGR", "PNW",    "SALD"};
  }
  {
    std::vector<LabeledDataset> held;
    std::vector<std::string> names;
    std::vector<const Dataset*> trains;
    std::vector<const Dataset*> tests;
    held.reserve(options.dataset_names.size());
    for (const auto& name : options.dataset_names) {
      held.push_back(MakeBenchDataset(name, options, &pool));
      names.push_back(held.back().name);
    }
    for (const auto& ds : held) {
      trains.push_back(&ds.data);
      tests.push_back(&ds.queries);
    }
    RunCollection("Part 2 — Table I datasets", names, trains, tests, &pool);
  }

  std::printf(
      "paper shape ([14] as cited in Sec. III): none of PAA/APCA/PLA/CHEBY"
      "/DHWT outperforms DFT;\nSFA (quantized DFT) matches or exceeds all "
      "but DFT. DFT +VAR >> fixed-band methods on\nhigh-frequency datasets "
      "(LenDB/SCEDC/SIFT1b) — the Section IV-E2 mechanism.\n");
  return 0;
}
