// Related work (paper Section III): the ED ≈ DTW convergence claim.
//
// The paper justifies its ED-only focus by citing Shieh & Keogh [46]: "the
// error rate of ED approaches that of DTW as the dataset size increases,
// rendering the difference negligible with a few thousand objects", which
// is why large-scale indexing favors ED. This harness measures exactly
// that, plus the cost side of the trade:
//
//   Part 1 — 1-NN class-retrieval error of ED vs banded DTW as the
//            collection grows. Members of K template classes are locally
//            time-warped and noised; a query errs when its 1-NN belongs
//            to a different class. Expected shape: DTW clearly ahead on
//            small collections, the gap collapsing as density rises.
//   Part 2 — the price of elasticity: median query time of the ED scan
//            vs the full UCR-cascade DTW scan vs naive DTW, with the
//            cascade's per-tier pruning breakdown.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "core/znorm.h"
#include "elastic/dtw.h"
#include "elastic/dtw_scan.h"
#include "scan/ucr_scan.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/table_printer.h"
#include "util/timer.h"

namespace {

using namespace sofa;
using namespace sofa::bench;

constexpr std::size_t kLength = 128;
constexpr std::size_t kClasses = 50;

// Smooth monotone time warp plus a global shift: cumulative positive
// jitter rescaled to [0, n−1], offset by a uniform shift of up to
// `max_shift` points (clamped at the borders), then linear interpolation
// of the template at the warped positions. The shift is what breaks
// point-wise alignment — the regime where DTW's elasticity pays off.
void WarpInto(const float* source, std::size_t n, double warp_strength,
              double max_shift, Rng* rng, float* out) {
  std::vector<double> steps(n);
  double total = 0.0;
  for (std::size_t t = 0; t < n; ++t) {
    steps[t] = 1.0 + warp_strength * rng->Uniform(-0.9, 0.9);
    total += steps[t];
  }
  const double shift = rng->Uniform(-max_shift, max_shift);
  double position = 0.0;
  const double scale = static_cast<double>(n - 1) / (total - steps[0]);
  for (std::size_t t = 0; t < n; ++t) {
    const double x = std::clamp(position * scale + shift, 0.0,
                                static_cast<double>(n - 1));
    const auto lo = static_cast<std::size_t>(x);
    const std::size_t hi = std::min(lo + 1, n - 1);
    const double frac = x - static_cast<double>(lo);
    out[t] = static_cast<float>((1.0 - frac) * source[lo] +
                                frac * source[hi]);
    position += steps[t];
  }
}

struct LabeledCollection {
  Dataset series;
  std::vector<std::size_t> labels;
};

// `count` members drawn uniformly over K warped-template classes.
LabeledCollection MakeMembers(const Dataset& templates, std::size_t count,
                              double warp, double shift, double noise,
                              std::uint64_t seed) {
  Rng rng(seed);
  LabeledCollection collection{Dataset(kLength), {}};
  std::vector<float> row(kLength);
  for (std::size_t i = 0; i < count; ++i) {
    const std::size_t label = rng.Below(templates.size());
    WarpInto(templates.row(label), kLength, warp, shift, &rng, row.data());
    for (auto& x : row) {
      x += static_cast<float>(noise * rng.Gaussian());
    }
    ZNormalize(row.data(), kLength);
    collection.series.Append(row.data());
    collection.labels.push_back(label);
  }
  return collection;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  BenchOptions options = ParseBenchOptions(flags);
  if (!flags.Has("n_queries")) {
    options.n_queries = 100;
  }
  const std::size_t band =
      static_cast<std::size_t>(flags.GetInt("band", kLength / 10));
  // Distortion defaults are calibrated so ED visibly errs on sparse
  // collections while staying under the band's reach (shift < band).
  const double warp = static_cast<double>(flags.GetInt("warp_pct", 40)) / 100.0;
  const double shift = static_cast<double>(flags.GetInt("shift", 11));
  const double noise =
      static_cast<double>(flags.GetInt("noise_pct", 30)) / 100.0;
  PrintHeader("Related work (Sec. III) — ED vs DTW 1-NN convergence",
              options);
  ThreadPool pool(options.max_threads());

  // Class templates: smooth random walks (distinct shapes to retrieve).
  Rng rng(options.seed);
  Dataset templates(kLength);
  {
    std::vector<float> row(kLength);
    for (std::size_t c = 0; c < kClasses; ++c) {
      double level = 0.0;
      for (auto& x : row) {
        level += rng.Gaussian();
        x = static_cast<float>(level);
      }
      ZNormalize(row.data(), kLength);
      templates.Append(row.data());
    }
  }
  const LabeledCollection queries =
      MakeMembers(templates, options.n_queries, warp, shift, noise,
                  options.seed + 1);

  // Part 1 — error convergence over collection size.
  std::printf("Part 1 — 1-NN retrieval error (%zu classes, %zu queries, "
              "band %zu)\n",
              kClasses, queries.series.size(), band);
  TablePrinter convergence(
      {"collection size", "ED error", "DTW error", "gap (pp)"});
  const std::size_t sizes[] = {200, 1000, 5000, 20000};
  for (const std::size_t size : sizes) {
    const LabeledCollection members =
        MakeMembers(templates, size, warp, shift, noise, options.seed + 2);
    const scan::UcrScan ed_scan(&members.series, &pool);
    elastic::DtwScan::Options scan_options;
    scan_options.band = band;
    const elastic::DtwScan dtw_scan(&members.series, &pool, scan_options);

    std::size_t ed_errors = 0;
    std::size_t dtw_errors = 0;
    for (std::size_t q = 0; q < queries.series.size(); ++q) {
      const Neighbor ed_nn = ed_scan.Search1Nn(queries.series.row(q));
      const Neighbor dtw_nn = dtw_scan.Search1Nn(queries.series.row(q));
      ed_errors += members.labels[ed_nn.id] != queries.labels[q] ? 1 : 0;
      dtw_errors += members.labels[dtw_nn.id] != queries.labels[q] ? 1 : 0;
    }
    const double ed_rate = static_cast<double>(ed_errors) /
                           static_cast<double>(queries.series.size());
    const double dtw_rate = static_cast<double>(dtw_errors) /
                            static_cast<double>(queries.series.size());
    convergence.AddRow({std::to_string(size), FormatDouble(ed_rate, 3),
                        FormatDouble(dtw_rate, 3),
                        FormatDouble(100.0 * (ed_rate - dtw_rate), 1)});
  }
  std::printf("%s", convergence.ToString().c_str());
  std::printf("paper shape ([46]): DTW ahead on sparse collections, the "
              "gap shrinking toward zero\nas the collection densifies.\n\n");

  // Part 2 — the cost of elasticity at the largest size.
  const LabeledCollection members =
      MakeMembers(templates, sizes[3], warp, shift, noise,
                  options.seed + 2);
  const scan::UcrScan ed_scan(&members.series, &pool);
  elastic::DtwScan::Options scan_options;
  scan_options.band = band;
  const elastic::DtwScan dtw_scan(&members.series, &pool, scan_options);

  std::vector<double> ed_ms, cascade_ms, naive_ms;
  elastic::DtwScanProfile total_profile;
  const std::size_t timed_queries = std::min<std::size_t>(
      queries.series.size(), 20);
  for (std::size_t q = 0; q < timed_queries; ++q) {
    WallTimer timer;
    ed_scan.Search1Nn(queries.series.row(q));
    ed_ms.push_back(timer.Millis());

    timer.Reset();
    elastic::DtwScanProfile profile;
    dtw_scan.Search1Nn(queries.series.row(q), &profile);
    cascade_ms.push_back(timer.Millis());
    total_profile.MergeFrom(profile);

    // Naive: banded DTW against every candidate, no bounds, one thread.
    timer.Reset();
    double best = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < members.series.size(); ++i) {
      best = std::min(best, elastic::Dtw(queries.series.row(q), kLength,
                                         members.series.row(i), kLength,
                                         band));
    }
    naive_ms.push_back(timer.Millis());
    (void)best;
  }

  std::printf("Part 2 — query cost at %zu series (%zu timed queries, %zu "
              "threads)\n",
              members.series.size(), timed_queries, options.max_threads());
  TablePrinter cost({"method", "median ms", "mean ms"});
  cost.AddRow({"ED scan (UCR Suite-P)", FormatDouble(stats::Median(ed_ms), 2),
               FormatDouble(stats::Mean(ed_ms), 2)});
  cost.AddRow({"DTW cascade scan", FormatDouble(stats::Median(cascade_ms), 2),
               FormatDouble(stats::Mean(cascade_ms), 2)});
  cost.AddRow({"DTW naive scan", FormatDouble(stats::Median(naive_ms), 2),
               FormatDouble(stats::Mean(naive_ms), 2)});
  std::printf("%s", cost.ToString().c_str());

  const auto total = static_cast<double>(total_profile.candidates);
  std::printf("\ncascade breakdown over %.0f candidate checks:\n", total);
  std::printf("  pruned by LB_Kim          %5.1f%%\n",
              100.0 * static_cast<double>(total_profile.pruned_kim) / total);
  std::printf("  pruned by LB_Keogh(Q,C)   %5.1f%%\n",
              100.0 * static_cast<double>(total_profile.pruned_keogh_qc) /
                  total);
  std::printf("  pruned by LB_Keogh(C,Q)   %5.1f%%\n",
              100.0 * static_cast<double>(total_profile.pruned_keogh_cq) /
                  total);
  std::printf("  DTW early-abandoned       %5.1f%%\n",
              100.0 * static_cast<double>(total_profile.dtw_abandoned) /
                  total);
  std::printf("  DTW fully computed        %5.1f%%\n",
              100.0 * static_cast<double>(total_profile.dtw_full) / total);
  std::printf("\npaper rationale: even the fully-cascaded DTW scan pays a "
              "multiple of the ED scan —\nwith equal accuracy at scale, "
              "indexing under ED (SOFA's setting) is the right trade.\n");
  return 0;
}
