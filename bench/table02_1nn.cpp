// Table II: mean and median exact 1-NN query times (ms) for the mixed
// workload over the 17 datasets — FAISS IndexFlatL2, MESSI, SOFA and
// UCR Suite-P, by core count.
//
// Protocol per the paper: SOFA/MESSI/UCR-P answer queries one at a time
// (each internally parallel); FAISS processes mini-batches of #cores
// queries and is charged the per-query average.
//
// Paper shape: SOFA fastest overall (58 ms median at 36 cores on the
// paper's hardware); ~2-3x over MESSI, 2-4x over FAISS, ~10x over UCR-P.

#include <cstdio>

#include "bench_common.h"
#include "flat/index_flat_l2.h"
#include "scan/ucr_scan.h"
#include "util/stats.h"
#include "util/table_printer.h"
#include "util/timer.h"

int main(int argc, char** argv) {
  using namespace sofa;
  using namespace sofa::bench;
  Flags flags(argc, argv);
  const BenchOptions options = ParseBenchOptions(flags);
  PrintHeader("Table II — 1-NN query times, mixed workload", options);

  TablePrinter table({"Method", "Cores", "median (ms)", "mean (ms)"});
  for (const std::size_t threads : options.thread_counts) {
    ThreadPool pool(threads);
    std::vector<double> faiss_ms;
    std::vector<double> messi_ms;
    std::vector<double> sofa_ms;
    std::vector<double> ucr_ms;
    for (const std::string& name : options.dataset_names) {
      const LabeledDataset ds = MakeBenchDataset(name, options, &pool);

      const SofaIndex sofa = BuildSofa(ds.data, options, &pool, threads);
      for (const double ms : TimeQueries(ds.queries, [&](const float* q) {
             (void)sofa.tree->Search1Nn(q);
           })) {
        sofa_ms.push_back(ms);
      }

      const MessiIndex messi = BuildMessi(ds.data, options, &pool, threads);
      for (const double ms : TimeQueries(ds.queries, [&](const float* q) {
             (void)messi.tree->Search1Nn(q);
           })) {
        messi_ms.push_back(ms);
      }

      const scan::UcrScan scanner(&ds.data, &pool);
      for (const double ms : TimeQueries(ds.queries, [&](const float* q) {
             (void)scanner.Search1Nn(q);
           })) {
        ucr_ms.push_back(ms);
      }

      // FAISS protocol: mini-batches of #cores queries.
      const flat::IndexFlatL2 faiss_index(&ds.data, &pool);
      std::size_t q = 0;
      while (q < ds.queries.size()) {
        Dataset batch(ds.queries.length());
        const std::size_t end = std::min(ds.queries.size(), q + threads);
        for (; q < end; ++q) {
          batch.Append(ds.queries.row(q));
        }
        WallTimer timer;
        (void)faiss_index.SearchBatch(batch, 1);
        const double per_query =
            timer.Millis() / static_cast<double>(batch.size());
        for (std::size_t i = 0; i < batch.size(); ++i) {
          faiss_ms.push_back(per_query);
        }
      }
    }
    auto add = [&](const char* method, const std::vector<double>& ms) {
      table.AddRow({method, std::to_string(threads),
                    FormatDouble(stats::Median(ms), 2),
                    FormatDouble(stats::Mean(ms), 2)});
    };
    add("FAISS IndexFlatL2", faiss_ms);
    add("MESSI", messi_ms);
    add("SOFA", sofa_ms);
    add("UCR SUITE-P", ucr_ms);
  }
  std::printf("%s", table.ToString().c_str());
  std::printf(
      "\npaper shape (36 cores, median): SOFA 58 < MESSI 112 < FAISS 248 < "
      "UCR 557 (ms).\nAbsolute values differ (bench-scale data, this "
      "machine); ordering and ratios are the target.\n");
  return 0;
}
