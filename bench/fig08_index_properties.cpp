// Fig. 8: structural index properties, MESSI vs SOFA, by core count —
// average leaf depth (top), average leaf size (center), number of
// subtrees (bottom).
//
// Paper shape: very similar structures; SOFA slightly deeper trees with
// slightly smaller leaf fill and slightly lower root fan-out.

#include <cstdio>

#include "bench_common.h"
#include "util/stats.h"
#include "util/table_printer.h"

int main(int argc, char** argv) {
  using namespace sofa;
  using namespace sofa::bench;
  Flags flags(argc, argv);
  const BenchOptions options = ParseBenchOptions(flags);
  PrintHeader("Fig. 8 — index structure, MESSI vs SOFA", options);

  TablePrinter table({"Cores", "Method", "Avg depth", "Avg leaf size",
                      "Subtrees", "Leaves"});
  for (const std::size_t threads : options.thread_counts) {
    ThreadPool pool(threads);
    for (const bool sofa_variant : {false, true}) {
      std::vector<double> depth;
      std::vector<double> leaf_size;
      std::vector<double> subtrees;
      std::vector<double> leaves;
      for (const std::string& name : options.dataset_names) {
        const LabeledDataset ds = MakeBenchDataset(name, options, &pool);
        index::TreeStats stats;
        if (sofa_variant) {
          const SofaIndex sofa = BuildSofa(ds.data, options, &pool, threads);
          stats = sofa.tree->ComputeStats();
        } else {
          const MessiIndex messi =
              BuildMessi(ds.data, options, &pool, threads);
          stats = messi.tree->ComputeStats();
        }
        depth.push_back(stats.avg_depth);
        leaf_size.push_back(stats.avg_leaf_size);
        subtrees.push_back(static_cast<double>(stats.num_subtrees));
        leaves.push_back(static_cast<double>(stats.num_leaves));
      }
      table.AddRow({std::to_string(threads),
                    sofa_variant ? "SOFA" : "MESSI",
                    FormatDouble(stats::Mean(depth), 2),
                    FormatDouble(stats::Mean(leaf_size), 0),
                    FormatDouble(stats::Mean(subtrees), 0),
                    FormatDouble(stats::Mean(leaves), 0)});
    }
  }
  std::printf("%s", table.ToString().c_str());
  std::printf(
      "\npaper shape: structures nearly identical; SOFA slightly deeper / "
      "slightly smaller leaf fill.\n");
  return 0;
}
