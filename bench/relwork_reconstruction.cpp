// Related work (paper Figs. 1/2, extended): representation quality of
// every numeric summarization at equal float budgets.
//
// The paper's Fig. 1 shows PAA flat-lining on high-frequency series while
// a truncated Fourier representation tracks them; Fig. 2 shows the effect
// growing with the budget l. This harness extends that comparison to the
// whole Section III method set — PAA, APCA, PLA, CHEBY, DHWT, DFT and
// DFT +VAR — reporting the mean per-point reconstruction RMSE on a
// high-frequency and a smooth slice of the Table I registry. Expected
// shape: on smooth data everyone is fine and roughly equal; on
// high-frequency data the fixed-grid/fixed-band methods all flat-line
// (RMSE ≈ signal RMS ≈ 1 for z-normalized series) while variance-selected
// DFT keeps tracking the signal.

#include <cmath>
#include <cstdio>
#include <memory>
#include <vector>

#include "bench_common.h"
#include "numeric/dft_summary.h"
#include "numeric/registry.h"
#include "util/table_printer.h"

namespace {

using namespace sofa;
using namespace sofa::bench;

// Mean per-point RMSE of projecting + reconstructing `count` series.
double MeanRmse(const numeric::NumericSummary& summary, const Dataset& data,
                std::size_t count) {
  double sum = 0.0;
  const std::size_t used = std::min(count, data.size());
  for (std::size_t i = 0; i < used; ++i) {
    sum += std::sqrt(summary.ReconstructionError(data.row(i)));
  }
  return sum / static_cast<double>(used);
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  BenchOptions options = ParseBenchOptions(flags);
  if (!flags.Has("n_series")) {
    options.n_series = 4000;
  }
  if (!flags.Has("datasets")) {
    options.dataset_names = {"LenDB", "SCEDC", "SIFT1b",
                             "astro", "PNW",   "SALD"};
  }
  const std::size_t sample =
      static_cast<std::size_t>(flags.GetInt("sample", 200));
  PrintHeader("Related work (Figs. 1/2 ext.) — reconstruction quality",
              options);
  ThreadPool pool(options.max_threads());

  for (const std::size_t budget : {8, 16, 32}) {
    std::printf("budget: %zu floats per series\n", budget);
    TablePrinter table([&] {
      std::vector<std::string> headers = {"Dataset"};
      for (const auto& summary : numeric::MakeComparisonSet(64, budget)) {
        headers.push_back(summary->name());
      }
      headers.push_back("DFT +VAR");
      return headers;
    }());
    for (const auto& name : options.dataset_names) {
      const LabeledDataset ds = MakeBenchDataset(name, options, &pool);
      std::vector<std::string> row = {ds.name};
      for (const auto& summary :
           numeric::MakeComparisonSet(ds.data.length(), budget)) {
        row.push_back(
            FormatDouble(MeanRmse(*summary, ds.data, sample), 3));
      }
      const numeric::DftSummary dft_var(
          ds.data.length(),
          numeric::DftSummary::SelectByVariance(ds.data, budget / 2));
      row.push_back(FormatDouble(MeanRmse(dft_var, ds.data, sample), 3));
      table.AddRow(std::move(row));
    }
    std::printf("%s\n", table.ToString().c_str());
  }
  std::printf(
      "paper shape (Figs. 1/2): on high-frequency collections "
      "(LenDB/SCEDC/SIFT1b) every\nfixed-grid/fixed-band method "
      "reconstructs ~the mean (RMSE ≈ 1 for z-normalized data)\nwhile "
      "variance-selected DFT tracks the signal; on smooth collections "
      "(PNW/SALD) all\nmethods converge as the budget grows.\n");
  return 0;
}
