// Serving-layer throughput: QPS of the SearchService / cross-query
// executor versus the paper's sequential one-query-at-a-time protocol, at
// matched total thread counts, on a synthetic random-walk (RW) collection.
//
// Four execution styles per thread count T:
//   sequential  — the paper's protocol: one query at a time, each with
//                 T-way intra-query parallelism (QueryEngine::Search);
//   executor    — raw cross-query fan-out: T workers, one thread per
//                 query (service::RunThroughputBatch);
//   service     — end-to-end SearchService in throughput mode (admission
//                 queue + dispatcher + metrics), swept over batch sizes;
//   shardS      — SearchService over a shard::ShardedIndex of S shards
//                 (scatter-gather merge), swept over --shards, so QPS and
//                 p99 are comparable shard count by shard count against
//                 the single-index rows above.
//
// Expected shape: under cross-query parallelism QPS scales with T while
// per-query sync overhead (queue locks, worker handoffs) is amortized
// away, so `executor`/`service` clear the sequential baseline — the
// FAISS/FLASH batching result. Sharding adds a per-query scatter/merge
// cost in exchange for smaller per-shard trees; at these in-memory sizes
// it is roughly QPS-neutral (its payoff is per-shard rebuild/republish
// and collections too large for one index). The final verdict lines
// compare the best throughput-mode and the best sharded QPS against the
// sequential baseline at the same T.
//
// Flags: --n_series=50000 --n_queries=400 --length=256 --k=10
//        --threads=1,2,4 --batches=1,8,32,128 --shards=1,2,4
//        --leaf_size=1000 --seed=7 --stats-json=FILE
//
// The run ends with a JSON dump of the shared metrics registry (all
// service instances aggregate into it); --stats-json also writes it to a
// file for machine consumption.

#include <algorithm>
#include <cstdio>
#include <future>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/dataset.h"
#include "core/znorm.h"
#include "index/query_engine.h"
#include "index/tree_index.h"
#include "obs/exposition.h"
#include "obs/registry.h"
#include "service/executor.h"
#include "service/search_service.h"
#include "service/snapshot.h"
#include "sfa/mcb.h"
#include "shard/sharded_index.h"
#include "util/flags.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/table_printer.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace {

using namespace sofa;

// Z-normalized random-walk collection (the "RW" synthetic of the
// iSAX/MESSI literature: energy concentrated in low frequencies).
Dataset RandomWalk(std::size_t count, std::size_t length,
                   std::uint64_t seed) {
  Rng rng(seed);
  Dataset ds(length);
  std::vector<float> row(length);
  for (std::size_t i = 0; i < count; ++i) {
    double level = 0.0;
    for (auto& x : row) {
      level += rng.Gaussian();
      x = static_cast<float>(level);
    }
    ZNormalize(row.data(), length);
    ds.Append(row.data());
  }
  return ds;
}

std::vector<std::size_t> ParseSizeList(const Flags& flags,
                                       const std::string& name,
                                       std::vector<std::size_t> fallback) {
  std::vector<std::size_t> values;
  for (const std::string& item : flags.GetList(name)) {
    values.push_back(static_cast<std::size_t>(std::stoull(item)));
  }
  return values.empty() ? fallback : values;
}

// End-of-run registry dump: printed to stdout and, with --stats-json,
// written to a file (what the bench-smoke CI step validates and the
// perf-baseline harness diffs). The metadata block identifies the run —
// git sha, ISA dispatch tier, dataset parameters — so tools/
// bench_compare.py can refuse apples-to-oranges comparisons.
void DumpRegistry(obs::Registry* registry, const Flags& flags,
                  const std::string& metadata) {
  const std::string rendered = bench::WithBenchMetadata(
      obs::RenderJson(registry->Collect()), metadata);
  std::printf("\nregistry snapshot (JSON):\n%s", rendered.c_str());
  const std::string path = flags.GetString("stats-json", "");
  if (path.empty()) {
    return;
  }
  std::FILE* out = std::fopen(path.c_str(), "wb");
  if (out == nullptr ||
      std::fwrite(rendered.data(), 1, rendered.size(), out) !=
          rendered.size() ||
      std::fclose(out) != 0) {
    std::fprintf(stderr, "failed to write --stats-json %s\n", path.c_str());
    std::exit(1);
  }
  std::printf("wrote registry snapshot to %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const std::size_t n_series =
      static_cast<std::size_t>(flags.GetInt("n_series", 50000));
  const std::size_t n_queries =
      static_cast<std::size_t>(flags.GetInt("n_queries", 400));
  const std::size_t length =
      static_cast<std::size_t>(flags.GetInt("length", 256));
  const std::size_t k = static_cast<std::size_t>(flags.GetInt("k", 10));
  const std::size_t leaf_size =
      static_cast<std::size_t>(flags.GetInt("leaf_size", 1000));
  const std::uint64_t seed =
      static_cast<std::uint64_t>(flags.GetInt("seed", 7));
  const std::vector<std::size_t> thread_counts =
      ParseSizeList(flags, "threads", {1, 2, 4, 8});
  const std::vector<std::size_t> batch_sizes =
      ParseSizeList(flags, "batches", {1, 8, 32, 128});
  const std::vector<std::size_t> shard_counts =
      ParseSizeList(flags, "shards", {1, 2, 4});

  std::printf("service_throughput — RW collection, %zu series x %zu, "
              "%zu queries, k=%zu (%zu hardware threads)\n\n",
              n_series, length, n_queries, k, HardwareThreads());

  const Dataset data = RandomWalk(n_series, length, seed);
  const Dataset queries = RandomWalk(n_queries, length, seed + 1);

  std::size_t max_threads = 1;
  for (const std::size_t t : thread_counts) {
    max_threads = std::max(max_threads, t);
  }
  ThreadPool pool(max_threads);
  // One registry shared by every service instance in the sweep: the same
  // instrument names resolve to the same counters, so the final snapshot
  // aggregates the whole run.
  obs::Registry registry;

  sfa::SfaConfig sfa_config;
  sfa_config.word_length = 16;
  sfa_config.alphabet = 256;
  const std::shared_ptr<const quant::SummaryScheme> scheme =
      sfa::TrainSfa(data, sfa_config, &pool);
  index::IndexConfig index_config;
  index_config.leaf_capacity = leaf_size;
  WallTimer build_timer;
  const index::TreeIndex tree(&data, scheme.get(), index_config, &pool);
  std::printf("index built in %.2f s\n\n", build_timer.Seconds());

  TablePrinter table({"Threads", "Mode", "Batch", "QPS", "p50 (ms)",
                      "p99 (ms)", "vs sequential"});
  double best_speedup = 0.0;
  std::size_t best_threads = 0;
  std::vector<double> seq_qps_at(thread_counts.size(), 0.0);

  for (std::size_t ti = 0; ti < thread_counts.size(); ++ti) {
    const std::size_t threads = thread_counts[ti];
    // --- sequential baseline: the paper's protocol at T threads.
    const index::QueryEngine engine(&tree);
    std::vector<double> latencies;
    latencies.reserve(n_queries);
    WallTimer timer;
    for (std::size_t q = 0; q < queries.size(); ++q) {
      WallTimer per_query;
      (void)engine.Search(queries.row(q), k, /*epsilon=*/0.0,
                          /*profile=*/nullptr, threads);
      latencies.push_back(per_query.Millis());
    }
    const double seq_seconds = timer.Seconds();
    const double seq_qps = static_cast<double>(n_queries) / seq_seconds;
    seq_qps_at[ti] = seq_qps;
    table.AddRow({std::to_string(threads), "sequential", "-",
                  FormatDouble(seq_qps, 1),
                  FormatDouble(stats::Percentile(latencies, 50.0), 3),
                  FormatDouble(stats::Percentile(latencies, 99.0), 3),
                  "1.00x"});

    // --- raw executor: one thread per query, T workers.
    {
      std::vector<std::vector<Neighbor>> results(queries.size());
      std::vector<service::QueryTask> tasks(queries.size());
      for (std::size_t q = 0; q < queries.size(); ++q) {
        tasks[q].query = queries.row(q);
        tasks[q].k = k;
        tasks[q].result = &results[q];
      }
      timer.Reset();
      service::RunThroughputBatch(tree, &tasks, &pool, threads);
      const double qps = static_cast<double>(n_queries) / timer.Seconds();
      const double speedup = qps / seq_qps;
      table.AddRow({std::to_string(threads), "executor", "all",
                    FormatDouble(qps, 1), "-", "-",
                    FormatDouble(speedup, 2) + "x"});
      if (speedup > best_speedup) {
        best_speedup = speedup;
        best_threads = threads;
      }
    }

    // --- end-to-end service in throughput mode, swept over batch size.
    for (const std::size_t batch : batch_sizes) {
      service::ServiceConfig config;
      config.latency_mode_threshold = 0;  // throughput mode
      config.max_batch = batch;
      config.max_pending = queries.size();
      config.num_threads = threads;
      config.start_paused = true;  // stage the backlog, then go
      config.registry = &registry;
      service::SearchService svc(service::WrapIndex(&tree), &pool, config);
      std::vector<std::future<service::SearchResponse>> futures;
      futures.reserve(queries.size());
      for (std::size_t q = 0; q < queries.size(); ++q) {
        service::SearchRequest request;
        request.query.assign(queries.row(q), queries.row(q) + length);
        request.k = k;
        futures.push_back(svc.Submit(std::move(request)));
      }
      timer.Reset();
      svc.Resume();
      for (auto& future : futures) {
        (void)future.get();
      }
      const double qps = static_cast<double>(n_queries) / timer.Seconds();
      const double speedup = qps / seq_qps;
      const service::MetricsSnapshot metrics = svc.Metrics();
      table.AddRow({std::to_string(threads), "service",
                    std::to_string(batch), FormatDouble(qps, 1),
                    FormatDouble(metrics.latency_p50_ms, 3),
                    FormatDouble(metrics.latency_p99_ms, 3),
                    FormatDouble(speedup, 2) + "x"});
      if (speedup > best_speedup) {
        best_speedup = speedup;
        best_threads = threads;
      }
    }
  }

  // --- sharded service: scatter-gather over S shards, throughput mode.
  double best_shard_speedup = 0.0;
  std::size_t best_shard_count = 0, best_shard_threads = 0;
  const std::size_t shard_batch =
      *std::max_element(batch_sizes.begin(), batch_sizes.end());
  for (const std::size_t shards : shard_counts) {
    shard::ShardingConfig shard_config;
    shard_config.num_shards = shards;
    shard_config.index.leaf_capacity = leaf_size;
    WallTimer shard_build_timer;
    const auto sharded =
        shard::ShardedIndex::Build(data, shard_config, scheme, &pool);
    std::printf("sharded index (S=%zu) built in %.2f s\n", shards,
                shard_build_timer.Seconds());
    for (std::size_t ti = 0; ti < thread_counts.size(); ++ti) {
      const std::size_t threads = thread_counts[ti];
      service::ServiceConfig config;
      config.latency_mode_threshold = 0;  // throughput mode
      config.max_batch = shard_batch;
      config.max_pending = queries.size();
      config.num_threads = threads;
      config.start_paused = true;
      config.registry = &registry;
      service::SearchService svc(service::WrapShardedIndex(sharded), &pool,
                                 config);
      std::vector<std::future<service::SearchResponse>> futures;
      futures.reserve(queries.size());
      for (std::size_t q = 0; q < queries.size(); ++q) {
        service::SearchRequest request;
        request.query.assign(queries.row(q), queries.row(q) + length);
        request.k = k;
        futures.push_back(svc.Submit(std::move(request)));
      }
      WallTimer timer;
      svc.Resume();
      for (auto& future : futures) {
        (void)future.get();
      }
      const double qps = static_cast<double>(n_queries) / timer.Seconds();
      const double speedup = qps / seq_qps_at[ti];
      const service::MetricsSnapshot metrics = svc.Metrics();
      table.AddRow({std::to_string(threads), "shard" + std::to_string(shards),
                    std::to_string(shard_batch), FormatDouble(qps, 1),
                    FormatDouble(metrics.latency_p50_ms, 3),
                    FormatDouble(metrics.latency_p99_ms, 3),
                    FormatDouble(speedup, 2) + "x"});
      if (speedup > best_shard_speedup) {
        best_shard_speedup = speedup;
        best_shard_count = shards;
        best_shard_threads = threads;
      }
    }
  }
  std::printf("\n");

  table.Print(std::cout);
  std::printf("\nbest throughput-mode speedup vs sequential at matched "
              "thread count: %.2fx (T=%zu) — target >= 2x\n",
              best_speedup, best_threads);
  std::printf("best sharded scatter-gather speedup vs sequential at matched "
              "thread count: %.2fx (S=%zu, T=%zu)\n",
              best_shard_speedup, best_shard_count, best_shard_threads);
  std::size_t max_threads_requested = 0;
  for (const std::size_t t : thread_counts) {
    max_threads_requested = std::max(max_threads_requested, t);
  }
  if (max_threads_requested > HardwareThreads()) {
    std::printf("note: sweep oversubscribes this machine (%zu hardware "
                "threads); cross-query scaling is capacity-bound here and "
                "the measured gap reflects only the per-query "
                "coordination overhead that throughput mode removes.\n",
                HardwareThreads());
  }
  DumpRegistry(&registry, flags,
               bench::BenchMetadataJson(
                   "service_throughput",
                   {{"n_series", std::to_string(n_series)},
                    {"n_queries", std::to_string(n_queries)},
                    {"length", std::to_string(length)},
                    {"k", std::to_string(k)},
                    {"leaf_size", std::to_string(leaf_size)},
                    {"seed", std::to_string(seed)},
                    {"max_threads",
                     std::to_string(max_threads_requested)}}));
  return 0;
}
