// Shared plumbing of the table/figure harnesses: dataset selection, engine
// construction, query timing, and the standard flag set.
//
// Every harness accepts:
//   --n_series=N     series per dataset (default kDefaultSeriesPerDataset)
//   --n_queries=N    queries per dataset (default 10)
//   --threads=A,B    thread counts to sweep (default "1,2,...,#hw")
//   --datasets=a,b   subset of Table I dataset names (default: all 17)
//   --leaf_size=N    tree leaf capacity (default 2000; paper uses 20000 at
//                    paper scale)
//   --seed=N         generation seed

#ifndef SOFA_BENCH_BENCH_COMMON_H_
#define SOFA_BENCH_BENCH_COMMON_H_

#include <cstddef>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/dataset.h"
#include "datagen/datasets.h"
#include "index/tree_index.h"
#include "sax/sax_scheme.h"
#include "sfa/mcb.h"
#include "util/flags.h"
#include "util/thread_pool.h"

namespace sofa {
namespace bench {

inline constexpr std::size_t kDefaultSeriesPerDataset = 50000;

/// Parsed common options.
struct BenchOptions {
  std::size_t n_series = kDefaultSeriesPerDataset;
  std::size_t n_queries = 10;
  std::vector<std::size_t> thread_counts;
  std::vector<std::string> dataset_names;  // Table I names
  std::size_t leaf_size = 2000;
  std::uint64_t seed = 0xbe9c;

  /// Largest requested thread count.
  std::size_t max_threads() const;
};

/// Parses the standard flags; fills defaults (all datasets, {1,2,..,#hw}).
BenchOptions ParseBenchOptions(const Flags& flags);

/// Prints the standard harness header (binary name, scale, flags recap).
void PrintHeader(const std::string& title, const BenchOptions& options);

/// Generates one benchmark dataset at bench scale.
LabeledDataset MakeBenchDataset(const std::string& name,
                                const BenchOptions& options,
                                ThreadPool* pool);

/// A built SOFA (SFA-based) index together with its scheme.
struct SofaIndex {
  std::unique_ptr<sfa::SfaScheme> scheme;
  std::unique_ptr<index::TreeIndex> tree;
  double train_seconds = 0.0;  // MCB learning time (Fig. 7 "Learning Bins")
};

/// A built MESSI (iSAX-based) index together with its scheme.
struct MessiIndex {
  std::unique_ptr<sax::SaxScheme> scheme;
  std::unique_ptr<index::TreeIndex> tree;
};

/// Builds SOFA over a dataset with paper defaults (16 values, alphabet 256,
/// equi-width + variance selection, 1% MCB sample).
SofaIndex BuildSofa(const Dataset& data, const BenchOptions& options,
                    ThreadPool* pool, std::size_t num_threads,
                    const sfa::SfaConfig* config_override = nullptr);

/// Builds MESSI over a dataset (16 segments, alphabet 256).
MessiIndex BuildMessi(const Dataset& data, const BenchOptions& options,
                      ThreadPool* pool, std::size_t num_threads);

/// Times `query_fn` once per query row; returns per-query milliseconds.
std::vector<double> TimeQueries(
    const Dataset& queries,
    const std::function<void(const float* query)>& query_fn);

/// The five Section V-E ablation variants, in fixed order:
/// SFA EW +VAR, SFA EW, SFA ED +VAR, SFA ED, iSAX.
const std::vector<std::string>& AblationNames();

/// Mean TLB of each ablation variant (AblationNames order) on one
/// train/query pair, word length 16, at the given alphabet size.
std::vector<double> AblationTlbs(const Dataset& train, const Dataset& queries,
                                 std::size_t alphabet, ThreadPool* pool);

/// One identifying parameter of a bench run ({"n_series", "50000"}...).
/// Values render as bare JSON numbers when numeric, else as strings.
using BenchParam = std::pair<std::string, std::string>;

/// JSON object identifying a bench run for the perf-baseline harness
/// (tools/bench_compare.py refuses to diff runs whose environments
/// disagree): {"bench": ..., "git_sha": ..., "dispatch":
/// "avx512|avx2|scalar", "hardware_threads": N, ...params}. The git sha
/// comes from $SOFA_GIT_SHA, then $GITHUB_SHA, then `git rev-parse
/// HEAD`, else "unknown".
std::string BenchMetadataJson(const std::string& bench,
                              const std::vector<BenchParam>& params);

/// Splices `metadata_json` into a stats document as a leading top-level
/// "metadata" key: {"metadata": {...}, "metrics": [...]}. ParseStatsJson
/// ignores unknown top-level keys, so every existing reader keeps
/// working. The document must open with '{' (RenderJson and the rowq
/// ablation dump both do); anything else is returned unchanged.
std::string WithBenchMetadata(const std::string& stats_json,
                              const std::string& metadata_json);

}  // namespace bench
}  // namespace sofa

#endif  // SOFA_BENCH_BENCH_COMMON_H_
