// Table III + Fig. 9: median k-NN query times (ms) for the mixed workload,
// k ∈ {1, 3, 5, 10, 20, 50}, at the largest core count.
//
// Paper shape: SOFA stays fastest at every k; all methods scale gently
// with k; UCR Suite is only run at k=1 (an order of magnitude slower).

#include <cstdio>

#include "bench_common.h"
#include "flat/index_flat_l2.h"
#include "scan/ucr_scan.h"
#include "util/stats.h"
#include "util/table_printer.h"
#include "util/timer.h"

int main(int argc, char** argv) {
  using namespace sofa;
  using namespace sofa::bench;
  Flags flags(argc, argv);
  const BenchOptions options = ParseBenchOptions(flags);
  const std::size_t threads = options.max_threads();
  PrintHeader("Table III / Fig. 9 — median k-NN query times", options);
  const std::vector<std::size_t> ks = {1, 3, 5, 10, 20, 50};

  ThreadPool pool(threads);
  // Collected per method per k over all datasets × queries.
  std::vector<std::vector<double>> faiss_ms(ks.size());
  std::vector<std::vector<double>> messi_ms(ks.size());
  std::vector<std::vector<double>> sofa_ms(ks.size());
  std::vector<double> ucr_ms;

  for (const std::string& name : options.dataset_names) {
    const LabeledDataset ds = MakeBenchDataset(name, options, &pool);
    const SofaIndex sofa = BuildSofa(ds.data, options, &pool, threads);
    const MessiIndex messi = BuildMessi(ds.data, options, &pool, threads);
    const flat::IndexFlatL2 faiss_index(&ds.data, &pool);
    const scan::UcrScan scanner(&ds.data, &pool);

    for (std::size_t ki = 0; ki < ks.size(); ++ki) {
      const std::size_t k = ks[ki];
      for (const double ms : TimeQueries(ds.queries, [&](const float* q) {
             (void)sofa.tree->SearchKnn(q, k);
           })) {
        sofa_ms[ki].push_back(ms);
      }
      for (const double ms : TimeQueries(ds.queries, [&](const float* q) {
             (void)messi.tree->SearchKnn(q, k);
           })) {
        messi_ms[ki].push_back(ms);
      }
      // FAISS batched protocol.
      std::size_t q = 0;
      while (q < ds.queries.size()) {
        Dataset batch(ds.queries.length());
        const std::size_t end = std::min(ds.queries.size(), q + threads);
        for (; q < end; ++q) {
          batch.Append(ds.queries.row(q));
        }
        WallTimer timer;
        (void)faiss_index.SearchBatch(batch, k);
        const double per_query =
            timer.Millis() / static_cast<double>(batch.size());
        for (std::size_t i = 0; i < batch.size(); ++i) {
          faiss_ms[ki].push_back(per_query);
        }
      }
    }
    for (const double ms : TimeQueries(ds.queries, [&](const float* q) {
           (void)scanner.Search1Nn(q);
         })) {
      ucr_ms.push_back(ms);
    }
  }

  std::vector<std::string> headers = {"Method"};
  for (const std::size_t k : ks) {
    headers.push_back(std::to_string(k) + "-NN");
  }
  TablePrinter table(headers);
  auto add = [&](const char* name,
                 const std::vector<std::vector<double>>& per_k) {
    std::vector<std::string> row = {name};
    for (const auto& ms : per_k) {
      row.push_back(FormatDouble(stats::Median(ms), 2));
    }
    table.AddRow(std::move(row));
  };
  {
    std::vector<std::string> row = {"UCR suite",
                                    FormatDouble(stats::Median(ucr_ms), 2)};
    for (std::size_t i = 1; i < ks.size(); ++i) {
      row.push_back("-");
    }
    table.AddRow(std::move(row));
  }
  add("FAISS", faiss_ms);
  add("MESSI", messi_ms);
  add("SOFA", sofa_ms);
  std::printf("%s", table.ToString().c_str());
  std::printf(
      "\npaper shape (36 cores, ms): SOFA 58/70/70/83/87/98 stays below "
      "MESSI 112..209 and FAISS 248..314\nfor every k; all methods grow "
      "mildly in k.\n");
  return 0;
}
