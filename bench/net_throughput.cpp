// Serving-tier load generator: drives a running `sofa_cli serve --listen`
// process over the binary wire protocol and reports QPS plus latency
// percentiles, overall and per priority class.
//
// Two load shapes:
//   closed — --connections workers, each a blocking request/response
//            loop: the offered load adapts to the server (classic
//            closed-loop benchmark; measures capacity);
//   open   — each connection paces SendSearch at a fixed aggregate
//            --qps, a second thread drains the pipelined responses:
//            latency includes queueing delay under a load the server
//            does not control (measures behavior at a target rate).
//
// Each request draws its priority class from --mix (percent
// interactive,batch,background), so the per-class percentile rows show
// the admission queue's strict-priority-with-reserve policy end to end
// over TCP. Every connection tags its requests with a distinct tenant
// ("bench-0", "bench-1", ...), exercising the per-tenant quota path when
// the server runs with --tenant-quota.
//
// Queries are z-normalized random walks of --length points — they must
// match the serving collection's series length or the server answers
// kInvalidArgument (counted as errors).
//
// Flags: --host=127.0.0.1 --port=0 | --port-file=PATH
//        --mode=closed|open|both --connections=4 --duration_s=5
//        --qps=1000 (open loop) --k=10 --length=256 --epsilon=0
//        --deadline_ms=0 --mix=60,30,10 --seed=7 --stats-json=FILE
//
// --stats-json fetches a STATS(json) dump over the wire at the end and
// writes it to FILE — the CI smoke step asserts it parses.

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "core/znorm.h"
#include "net/client.h"
#include "service/request.h"
#include "util/flags.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/timer.h"

namespace {

using namespace sofa;

struct LoadConfig {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  std::size_t connections = 4;
  double duration_s = 5.0;
  double qps = 1000.0;  // open loop, aggregate
  std::size_t k = 10;
  std::size_t length = 256;
  double epsilon = 0.0;
  double deadline_ms = 0.0;
  std::uint64_t seed = 7;
  // Cumulative priority thresholds in percent: a draw in [0, mix[0]) is
  // interactive, [mix[0], mix[1]) batch, the rest background.
  double mix[2] = {60.0, 90.0};
};

// What one worker measured; merged across connections at the end.
struct WorkerResult {
  std::vector<double> latency_ms[service::kNumPriorities];
  std::uint64_t ok = 0;
  std::uint64_t shed = 0;      // kRejected / kQuotaExceeded / kShutdown
  std::uint64_t expired = 0;   // kDeadlineExpired
  std::uint64_t errors = 0;    // transport or other server-side failures
};

std::vector<float> MakeQuery(Rng* rng, std::size_t length) {
  std::vector<float> query(length);
  double level = 0.0;
  for (auto& x : query) {
    level += rng->Gaussian();
    x = static_cast<float>(level);
  }
  ZNormalize(query.data(), length);
  return query;
}

service::Priority DrawPriority(Rng* rng, const LoadConfig& config) {
  const double draw = rng->Uniform(0.0, 100.0);
  if (draw < config.mix[0]) {
    return service::Priority::kInteractive;
  }
  if (draw < config.mix[1]) {
    return service::Priority::kBatch;
  }
  return service::Priority::kBackground;
}

service::SearchRequest MakeRequest(Rng* rng, const LoadConfig& config,
                                   const std::string& tenant) {
  service::SearchRequest request;
  request.query = MakeQuery(rng, config.length);
  request.k = config.k;
  request.epsilon = config.epsilon;
  request.priority = DrawPriority(rng, config);
  request.tenant = tenant;
  request.deadline_ms = config.deadline_ms;
  return request;
}

void Record(WorkerResult* result, const service::SearchResponse& response,
            service::Priority priority, double millis) {
  switch (response.status) {
    case StatusCode::kOk:
      ++result->ok;
      result->latency_ms[static_cast<std::size_t>(priority)].push_back(
          millis);
      break;
    case StatusCode::kRejected:
    case StatusCode::kQuotaExceeded:
    case StatusCode::kShutdown:
      ++result->shed;
      break;
    case StatusCode::kDeadlineExpired:
      ++result->expired;
      break;
    default:
      ++result->errors;
      break;
  }
}

// Closed loop: one blocking round trip at a time per connection.
WorkerResult RunClosedWorker(const LoadConfig& config, std::size_t id,
                             std::atomic<bool>* stop) {
  WorkerResult result;
  Rng rng(config.seed + id * 7919);
  const std::string tenant = "bench-" + std::to_string(id);
  net::SofaClient client;
  if (!client.Connect(config.host, config.port).ok()) {
    ++result.errors;
    return result;
  }
  while (!stop->load(std::memory_order_relaxed)) {
    const service::SearchRequest request =
        MakeRequest(&rng, config, tenant);
    const service::Priority priority = request.priority;
    service::SearchResponse response;
    WallTimer timer;
    const Status status = client.Search(request, &response);
    if (!status.ok()) {
      ++result.errors;
      break;  // transport failure poisons the connection
    }
    Record(&result, response, priority, timer.Millis());
  }
  return result;
}

// Open loop: the sender paces SendSearch at the per-connection rate and
// logs (send time, priority) in FIFO order; the receiver drains the
// pipelined responses, which the server returns in request order.
WorkerResult RunOpenWorker(const LoadConfig& config, std::size_t id,
                           std::atomic<bool>* stop) {
  WorkerResult result;
  Rng rng(config.seed + id * 7919);
  const std::string tenant = "bench-" + std::to_string(id);
  net::SofaClient client;
  if (!client.Connect(config.host, config.port).ok()) {
    ++result.errors;
    return result;
  }

  struct InFlight {
    std::chrono::steady_clock::time_point sent;
    service::Priority priority = service::Priority::kInteractive;
  };
  std::mutex mutex;
  std::deque<InFlight> in_flight;
  std::atomic<bool> sender_done{false};
  std::atomic<std::uint64_t> send_failures{0};

  std::thread receiver([&] {
    for (;;) {
      {
        std::lock_guard<std::mutex> lock(mutex);
        if (in_flight.empty()) {
          if (sender_done.load()) {
            return;
          }
        }
      }
      InFlight head;
      {
        std::lock_guard<std::mutex> lock(mutex);
        if (in_flight.empty()) {
          std::this_thread::sleep_for(std::chrono::microseconds(200));
          continue;
        }
        head = in_flight.front();
        in_flight.pop_front();
      }
      std::uint64_t request_id = 0;
      service::SearchResponse response;
      if (!client.ReceiveSearchResponse(&request_id, &response).ok()) {
        ++result.errors;
        return;  // transport gone; sender will fail and stop too
      }
      const double millis =
          std::chrono::duration<double, std::milli>(
              std::chrono::steady_clock::now() - head.sent)
              .count();
      Record(&result, response, head.priority, millis);
    }
  });

  const double per_connection_qps =
      config.qps / static_cast<double>(config.connections);
  const auto interval = std::chrono::duration<double>(
      per_connection_qps > 0.0 ? 1.0 / per_connection_qps : 0.001);
  auto next_send = std::chrono::steady_clock::now();
  while (!stop->load(std::memory_order_relaxed)) {
    std::this_thread::sleep_until(next_send);
    next_send += std::chrono::duration_cast<
        std::chrono::steady_clock::duration>(interval);
    const service::SearchRequest request =
        MakeRequest(&rng, config, tenant);
    const InFlight entry{std::chrono::steady_clock::now(),
                         request.priority};
    {
      // Log before sending so the receiver never sees a response with no
      // matching entry.
      std::lock_guard<std::mutex> lock(mutex);
      in_flight.push_back(entry);
    }
    std::uint64_t request_id = 0;
    if (!client.SendSearch(request, &request_id).ok()) {
      ++send_failures;
      std::lock_guard<std::mutex> lock(mutex);
      in_flight.pop_back();
      break;
    }
  }
  sender_done.store(true);
  receiver.join();
  result.errors += send_failures.load();
  return result;
}

void PrintResults(const char* label, const std::vector<WorkerResult>& results,
                  double wall_seconds) {
  std::uint64_t ok = 0, shed = 0, expired = 0, errors = 0;
  std::vector<double> by_priority[service::kNumPriorities];
  std::vector<double> overall;
  for (const WorkerResult& result : results) {
    ok += result.ok;
    shed += result.shed;
    expired += result.expired;
    errors += result.errors;
    for (std::size_t p = 0; p < service::kNumPriorities; ++p) {
      by_priority[p].insert(by_priority[p].end(),
                            result.latency_ms[p].begin(),
                            result.latency_ms[p].end());
      overall.insert(overall.end(), result.latency_ms[p].begin(),
                     result.latency_ms[p].end());
    }
  }
  std::printf("%s: %llu ok in %.2f s — QPS %.1f (%llu shed, %llu expired, "
              "%llu errors)\n",
              label, static_cast<unsigned long long>(ok), wall_seconds,
              static_cast<double>(ok) / wall_seconds,
              static_cast<unsigned long long>(shed),
              static_cast<unsigned long long>(expired),
              static_cast<unsigned long long>(errors));
  const auto row = [](const char* name, std::vector<double> values) {
    if (values.empty()) {
      std::printf("  %-12s (no completed requests)\n", name);
      return;
    }
    std::printf("  %-12s n=%-7zu p50 %8.3f  p95 %8.3f  p99 %8.3f ms\n",
                name, values.size(), stats::Percentile(values, 50.0),
                stats::Percentile(values, 95.0),
                stats::Percentile(values, 99.0));
  };
  row("overall", overall);
  for (std::size_t p = 0; p < service::kNumPriorities; ++p) {
    row(service::PriorityName(static_cast<service::Priority>(p)),
        std::move(by_priority[p]));
  }
}

std::vector<WorkerResult> RunPhase(const LoadConfig& config, bool open,
                                   double* wall_seconds) {
  std::atomic<bool> stop{false};
  std::vector<WorkerResult> results(config.connections);
  std::vector<std::thread> workers;
  workers.reserve(config.connections);
  WallTimer timer;
  for (std::size_t c = 0; c < config.connections; ++c) {
    workers.emplace_back([&, c] {
      results[c] = open ? RunOpenWorker(config, c, &stop)
                        : RunClosedWorker(config, c, &stop);
    });
  }
  std::this_thread::sleep_for(
      std::chrono::duration<double>(config.duration_s));
  stop.store(true);
  for (std::thread& worker : workers) {
    worker.join();
  }
  *wall_seconds = timer.Seconds();
  return results;
}

bool ReadPortFile(const std::string& path, std::uint16_t* port) {
  std::FILE* in = std::fopen(path.c_str(), "rb");
  if (in == nullptr) {
    return false;
  }
  unsigned value = 0;
  const bool ok = std::fscanf(in, "%u", &value) == 1 && value <= 65535;
  std::fclose(in);
  if (ok) {
    *port = static_cast<std::uint16_t>(value);
  }
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  LoadConfig config;
  config.host = flags.GetString("host", config.host);
  config.connections = static_cast<std::size_t>(
      flags.GetInt("connections", static_cast<std::int64_t>(
                                      config.connections)));
  config.duration_s = flags.GetDouble("duration_s", config.duration_s);
  config.qps = flags.GetDouble("qps", config.qps);
  config.k = static_cast<std::size_t>(flags.GetInt("k", 10));
  config.length = static_cast<std::size_t>(flags.GetInt("length", 256));
  config.epsilon = flags.GetDouble("epsilon", 0.0);
  config.deadline_ms = flags.GetDouble("deadline_ms", 0.0);
  config.seed = static_cast<std::uint64_t>(flags.GetInt("seed", 7));

  const std::string port_file = flags.GetString("port-file", "");
  if (!port_file.empty()) {
    if (!ReadPortFile(port_file, &config.port)) {
      std::fprintf(stderr, "cannot read a port from %s\n",
                   port_file.c_str());
      return 1;
    }
  } else {
    config.port = static_cast<std::uint16_t>(flags.GetInt("port", 0));
  }
  if (config.port == 0) {
    std::fprintf(stderr, "need --port or --port-file\n");
    return 1;
  }
  const std::vector<std::string> mix = flags.GetList("mix");
  if (!mix.empty()) {
    if (mix.size() != 3) {
      std::fprintf(stderr, "--mix needs three percentages, e.g. 60,30,10\n");
      return 1;
    }
    const double interactive = std::atof(mix[0].c_str());
    const double batch = std::atof(mix[1].c_str());
    config.mix[0] = interactive;
    config.mix[1] = interactive + batch;
  }
  const std::string mode = flags.GetString("mode", "closed");
  if (mode != "closed" && mode != "open" && mode != "both") {
    std::fprintf(stderr, "--mode must be closed|open|both\n");
    return 1;
  }

  std::printf("net_throughput — %s:%u, %zu connections, %.1f s per phase, "
              "k=%zu, length=%zu, mix %.0f/%.0f/%.0f\n\n",
              config.host.c_str(), config.port, config.connections,
              config.duration_s, config.k, config.length, config.mix[0],
              config.mix[1] - config.mix[0], 100.0 - config.mix[1]);

  // Fail fast (and with a clear message) when nothing is listening.
  {
    net::SofaClient probe;
    const Status status = probe.Connect(config.host, config.port);
    if (!status.ok()) {
      std::fprintf(stderr, "no server at %s:%u — %s\n", config.host.c_str(),
                   config.port, status.ToString().c_str());
      return 1;
    }
  }

  double wall_seconds = 0.0;
  if (mode == "closed" || mode == "both") {
    const std::vector<WorkerResult> results =
        RunPhase(config, /*open=*/false, &wall_seconds);
    PrintResults("closed loop", results, wall_seconds);
  }
  if (mode == "open" || mode == "both") {
    if (mode == "both") {
      std::printf("\n");
    }
    const std::vector<WorkerResult> results =
        RunPhase(config, /*open=*/true, &wall_seconds);
    char label[64];
    std::snprintf(label, sizeof(label), "open loop @ %.0f QPS", config.qps);
    PrintResults(label, results, wall_seconds);
  }

  // End-of-run stats fetch over the wire; --stats-json makes it a file
  // the CI smoke step can validate.
  const std::string stats_json = flags.GetString("stats-json", "");
  if (!stats_json.empty()) {
    net::SofaClient client;
    Status status = client.Connect(config.host, config.port);
    if (!status.ok()) {
      std::fprintf(stderr, "stats fetch: %s\n", status.ToString().c_str());
      return 1;
    }
    const StatusOr<std::string> stats =
        client.Stats(net::StatsFormat::kJson);
    if (!stats.ok()) {
      std::fprintf(stderr, "STATS failed: %s\n",
                   stats.status().ToString().c_str());
      return 1;
    }
    // Identify the run so the perf-baseline harness can refuse to diff
    // dumps from different load shapes or ISA tiers.
    const std::string rendered = bench::WithBenchMetadata(
        stats.value(),
        bench::BenchMetadataJson(
            "net_throughput",
            {{"connections", std::to_string(config.connections)},
             {"k", std::to_string(config.k)},
             {"length", std::to_string(config.length)},
             {"duration_s", std::to_string(config.duration_s)},
             {"mode", mode},
             {"seed", std::to_string(config.seed)}}));
    std::FILE* out = std::fopen(stats_json.c_str(), "wb");
    if (out == nullptr ||
        std::fwrite(rendered.data(), 1, rendered.size(), out) !=
            rendered.size() ||
        std::fclose(out) != 0) {
      std::fprintf(stderr, "failed to write --stats-json %s\n",
                   stats_json.c_str());
      return 1;
    }
    std::printf("\nwrote server stats (JSON over the wire) to %s\n",
                stats_json.c_str());
  }
  return 0;
}
