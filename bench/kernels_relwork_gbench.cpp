// Kernel microbenchmarks (google-benchmark) for the related-work
// substrates: DTW and its cascade bounds (scalar vs AVX2 LB_Keogh — the
// Section IV-H mask-branching pattern applied to the envelope bound),
// warping envelopes, MASS distance profiles vs the early-abandoning
// subsequence scan, and the per-series projection cost of every numeric
// summarization.

#include <benchmark/benchmark.h>

#include <limits>
#include <vector>

#include "core/znorm.h"
#include "elastic/dtw.h"
#include "elastic/envelope.h"
#include "elastic/lower_bounds.h"
#include "numeric/registry.h"
#include "subseq/mass.h"
#include "subseq/ucr_subseq.h"
#include "util/rng.h"

namespace {

using namespace sofa;

constexpr double kInf = std::numeric_limits<double>::infinity();

std::vector<float> WalkSeries(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<float> v(n);
  double level = 0.0;
  for (auto& x : v) {
    level += rng.Gaussian();
    x = static_cast<float>(level);
  }
  ZNormalize(v.data(), n);
  return v;
}

// ------------------------------------------------------------- DTW

void BM_Dtw_Banded(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const auto a = WalkSeries(n, 1);
  const auto b = WalkSeries(n, 2);
  const std::size_t band = n / 10;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        elastic::Dtw(a.data(), n, b.data(), n, band));
  }
  state.SetItemsProcessed(state.iterations() * n * (2 * band + 1));
}
BENCHMARK(BM_Dtw_Banded)->Arg(128)->Arg(256)->Arg(1024);

void BM_Dtw_Full(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const auto a = WalkSeries(n, 3);
  const auto b = WalkSeries(n, 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(elastic::Dtw(a.data(), n, b.data(), n));
  }
  state.SetItemsProcessed(state.iterations() * n * n);
}
BENCHMARK(BM_Dtw_Full)->Arg(128)->Arg(256);

void BM_DtwEarlyAbandon_WarmBound(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const auto a = WalkSeries(n, 5);
  const auto b = WalkSeries(n, 6);
  const std::size_t band = n / 10;
  // A bound at half the true distance abandons partway down the matrix.
  const double bound = elastic::Dtw(a.data(), n, b.data(), n, band) / 2.0;
  elastic::DtwScratch scratch;
  for (auto _ : state) {
    benchmark::DoNotOptimize(elastic::DtwEarlyAbandon(
        a.data(), b.data(), n, band, bound, &scratch));
  }
}
BENCHMARK(BM_DtwEarlyAbandon_WarmBound)->Arg(128)->Arg(256)->Arg(1024);

// --------------------------------------------------------- envelopes

void BM_ComputeEnvelope(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const auto a = WalkSeries(n, 7);
  std::vector<float> lower(n), upper(n);
  for (auto _ : state) {
    elastic::ComputeEnvelope(a.data(), n, n / 10, lower.data(),
                             upper.data());
    benchmark::DoNotOptimize(lower.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_ComputeEnvelope)->Arg(128)->Arg(256)->Arg(4096);

// ---------------------------------------------------------- LB_Keogh

void BM_LbKeogh_Scalar(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const auto a = WalkSeries(n, 8);
  const auto c = WalkSeries(n, 9);
  const auto envelope = elastic::ComputeEnvelope(a.data(), n, n / 10);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        elastic::scalar::LbKeogh(c.data(), envelope.lower.data(),
                                 envelope.upper.data(), n, kInf));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_LbKeogh_Scalar)->Arg(96)->Arg(128)->Arg(256);

#if defined(SOFA_HAVE_AVX2)
void BM_LbKeogh_Avx2(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const auto a = WalkSeries(n, 8);
  const auto c = WalkSeries(n, 9);
  const auto envelope = elastic::ComputeEnvelope(a.data(), n, n / 10);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        elastic::avx2::LbKeogh(c.data(), envelope.lower.data(),
                               envelope.upper.data(), n, kInf));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_LbKeogh_Avx2)->Arg(96)->Arg(128)->Arg(256);
#endif  // SOFA_HAVE_AVX2

// ------------------------------------------------- subsequence search

void BM_MassProfile(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const std::size_t m = static_cast<std::size_t>(state.range(1));
  const auto stream = WalkSeries(n, 10);
  const auto query = WalkSeries(m, 11);
  subseq::MassPlan plan(n, m);
  subseq::MassPlan::Scratch scratch;
  std::vector<float> profile(plan.profile_length());
  for (auto _ : state) {
    plan.DistanceProfile(stream.data(), query.data(), profile.data(),
                         &scratch);
    benchmark::DoNotOptimize(profile.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_MassProfile)->Args({65536, 128})->Args({65536, 1024});

void BM_UcrSubseqBestMatch(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const std::size_t m = static_cast<std::size_t>(state.range(1));
  const auto stream = WalkSeries(n, 12);
  const auto query = WalkSeries(m, 13);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        subseq::FindBestMatch(stream.data(), n, query.data(), m));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_UcrSubseqBestMatch)->Args({65536, 128})->Args({65536, 1024});

// ---------------------------------------- numeric summary projections

void BM_NumericProject(benchmark::State& state, const char* method) {
  const std::size_t n = 256;
  const auto summary = numeric::MakeNumericSummary(method, n, 16);
  const auto series = WalkSeries(n, 14);
  std::vector<float> values(summary->num_values());
  for (auto _ : state) {
    summary->Project(series.data(), values.data());
    benchmark::DoNotOptimize(values.data());
  }
}
BENCHMARK_CAPTURE(BM_NumericProject, PAA, "PAA");
BENCHMARK_CAPTURE(BM_NumericProject, APCA, "APCA");
BENCHMARK_CAPTURE(BM_NumericProject, PLA, "PLA");
BENCHMARK_CAPTURE(BM_NumericProject, CHEBY, "CHEBY");
BENCHMARK_CAPTURE(BM_NumericProject, DHWT, "DHWT");
BENCHMARK_CAPTURE(BM_NumericProject, DFT, "DFT");

void BM_NumericLowerBound(benchmark::State& state, const char* method) {
  const std::size_t n = 256;
  const auto summary = numeric::MakeNumericSummary(method, n, 16);
  const auto query = WalkSeries(n, 15);
  const auto candidate = WalkSeries(n, 16);
  std::vector<float> values(summary->num_values());
  summary->Project(candidate.data(), values.data());
  auto qstate = summary->NewQueryState();
  summary->PrepareQuery(query.data(), qstate.get());
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        summary->LowerBoundSquared(*qstate, values.data()));
  }
}
BENCHMARK_CAPTURE(BM_NumericLowerBound, PAA, "PAA");
BENCHMARK_CAPTURE(BM_NumericLowerBound, APCA, "APCA");
BENCHMARK_CAPTURE(BM_NumericLowerBound, PLA, "PLA");
BENCHMARK_CAPTURE(BM_NumericLowerBound, CHEBY, "CHEBY");
BENCHMARK_CAPTURE(BM_NumericLowerBound, DHWT, "DHWT");
BENCHMARK_CAPTURE(BM_NumericLowerBound, DFT, "DFT");

}  // namespace

BENCHMARK_MAIN();
