// Fig. 1: why PAA/SAX fails on high-frequency and non-Gaussian data.
//
// TOP panel, quantified: per dataset the reconstruction error of a
// 16-value PAA versus a 16-value truncated DFT — on high-frequency data
// PAA collapses to a flat line (error → 1 of the signal energy) while the
// DFT tracks the signal.
// BOTTOM panel, quantified: distance of the value distribution from
// N(0,1) (KS statistic, skewness, excess kurtosis) — the Gaussian
// assumption baked into SAX's fixed breakpoints does not hold.

#include <cstdio>

#include "bench_common.h"
#include "dft/real_dft.h"
#include "sax/paa.h"
#include "util/stats.h"
#include "util/table_printer.h"

namespace {

using namespace sofa;

// Mean squared reconstruction error of the 16-value PAA, relative to the
// energy of the (z-normalized) series: 1.0 == summarization kept nothing.
double PaaReconstructionError(const Dataset& data, std::size_t max_series) {
  const std::size_t n = data.length();
  const std::size_t l = 16;
  std::vector<float> paa(l);
  double total_err = 0.0;
  double total_energy = 0.0;
  for (std::size_t i = 0; i < std::min(max_series, data.size()); ++i) {
    const float* row = data.row(i);
    sax::Paa(row, n, l, paa.data());
    for (std::size_t seg = 0; seg < l; ++seg) {
      for (std::size_t t = sax::SegmentStart(n, l, seg);
           t < sax::SegmentStart(n, l, seg + 1); ++t) {
        const double e = row[t] - paa[seg];
        total_err += e * e;
        total_energy += static_cast<double>(row[t]) * row[t];
      }
    }
  }
  return total_energy > 0.0 ? total_err / total_energy : 0.0;
}

// Same for a 16-value (8 complex coefficients, lowest frequencies)
// truncated Fourier reconstruction.
double DftReconstructionError(const Dataset& data, std::size_t max_series) {
  const std::size_t n = data.length();
  dft::RealDftPlan plan(n);
  dft::RealDftPlan::Scratch scratch;
  std::vector<std::complex<float>> coeffs(plan.num_coefficients());
  std::vector<std::complex<float>> kept(plan.num_coefficients());
  std::vector<float> restored(n);
  double total_err = 0.0;
  double total_energy = 0.0;
  for (std::size_t i = 0; i < std::min(max_series, data.size()); ++i) {
    const float* row = data.row(i);
    plan.Transform(row, coeffs.data(), &scratch);
    // Keep DC (zero anyway) + the first 8 complex coefficients = 16 values.
    std::fill(kept.begin(), kept.end(), std::complex<float>(0.0f, 0.0f));
    for (std::size_t k = 0; k <= std::min<std::size_t>(8, kept.size() - 1);
         ++k) {
      kept[k] = coeffs[k];
    }
    plan.InverseTransform(kept.data(), restored.data(), &scratch);
    for (std::size_t t = 0; t < n; ++t) {
      const double e = row[t] - restored[t];
      total_err += e * e;
      total_energy += static_cast<double>(row[t]) * row[t];
    }
  }
  return total_energy > 0.0 ? total_err / total_energy : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sofa::bench;
  Flags flags(argc, argv);
  BenchOptions options = ParseBenchOptions(flags);
  options.n_series =
      static_cast<std::size_t>(flags.GetInt("n_series", 2000));
  PrintHeader("Fig. 1 — summarization quality and value distributions",
              options);

  ThreadPool pool(options.max_threads());
  TablePrinter table({"Dataset", "PAA err (16 vals)", "DFT err (16 vals)",
                      "KS vs N(0,1)", "skewness", "ex. kurtosis"});
  for (const std::string& name : options.dataset_names) {
    const LabeledDataset ds = MakeBenchDataset(name, options, &pool);
    std::vector<double> values;
    for (std::size_t i = 0; i < std::min<std::size_t>(100, ds.data.size());
         ++i) {
      for (std::size_t t = 0; t < ds.data.length(); ++t) {
        values.push_back(ds.data.row(i)[t]);
      }
    }
    table.AddRow({ds.name,
                  FormatDouble(PaaReconstructionError(ds.data, 100), 3),
                  FormatDouble(DftReconstructionError(ds.data, 100), 3),
                  FormatDouble(stats::KsStatisticVsStdNormal(values), 3),
                  FormatDouble(stats::Skewness(values), 2),
                  FormatDouble(stats::ExcessKurtosis(values), 2)});
  }
  std::printf("%s", table.ToString().c_str());
  std::printf(
      "\npaper shape: on high-frequency datasets (LenDB, SCEDC, "
      "Meier2019JGR, vectors)\nPAA error approaches 1.0 (flat line) while "
      "the DFT error stays below it;\nvalue distributions deviate from "
      "N(0,1) (large KS / skew / kurtosis).\n");
  return 0;
}
