// Fig. 10: distribution of 1-NN query times by core count (the paper's
// box plots, printed as min / q1 / median / q3 / max over all datasets ×
// queries, log-friendly).
//
// Paper shape: SOFA's boxes sit lowest at every core count; MESSI and
// SOFA show high cross-dataset variance, FAISS and UCR are tightly
// clustered; every method improves with cores.

#include <cstdio>

#include "bench_common.h"
#include "flat/index_flat_l2.h"
#include "scan/ucr_scan.h"
#include "util/stats.h"
#include "util/table_printer.h"
#include "util/timer.h"

int main(int argc, char** argv) {
  using namespace sofa;
  using namespace sofa::bench;
  Flags flags(argc, argv);
  const BenchOptions options = ParseBenchOptions(flags);
  PrintHeader("Fig. 10 — query-time distribution by cores", options);

  TablePrinter table({"Cores", "Method", "min", "q1", "median", "q3",
                      "max (ms)"});
  for (const std::size_t threads : options.thread_counts) {
    ThreadPool pool(threads);
    std::vector<double> per_method_ms[4];  // MESSI, SOFA, UCR, FAISS
    for (const std::string& name : options.dataset_names) {
      const LabeledDataset ds = MakeBenchDataset(name, options, &pool);
      const SofaIndex sofa = BuildSofa(ds.data, options, &pool, threads);
      const MessiIndex messi = BuildMessi(ds.data, options, &pool, threads);
      const scan::UcrScan scanner(&ds.data, &pool);
      const flat::IndexFlatL2 faiss_index(&ds.data, &pool);
      for (const double ms : TimeQueries(ds.queries, [&](const float* q) {
             (void)messi.tree->Search1Nn(q);
           })) {
        per_method_ms[0].push_back(ms);
      }
      for (const double ms : TimeQueries(ds.queries, [&](const float* q) {
             (void)sofa.tree->Search1Nn(q);
           })) {
        per_method_ms[1].push_back(ms);
      }
      for (const double ms : TimeQueries(ds.queries, [&](const float* q) {
             (void)scanner.Search1Nn(q);
           })) {
        per_method_ms[2].push_back(ms);
      }
      std::size_t q = 0;
      while (q < ds.queries.size()) {
        Dataset batch(ds.queries.length());
        const std::size_t end = std::min(ds.queries.size(), q + threads);
        for (; q < end; ++q) {
          batch.Append(ds.queries.row(q));
        }
        WallTimer timer;
        (void)faiss_index.SearchBatch(batch, 1);
        const double per_query =
            timer.Millis() / static_cast<double>(batch.size());
        for (std::size_t i = 0; i < batch.size(); ++i) {
          per_method_ms[3].push_back(per_query);
        }
      }
    }
    const char* names[4] = {"MESSI", "SOFA", "UCR SUITE", "FAISS"};
    for (int m = 0; m < 4; ++m) {
      const auto& ms = per_method_ms[m];
      table.AddRow({std::to_string(threads), names[m],
                    FormatDouble(stats::Min(ms), 2),
                    FormatDouble(stats::Percentile(ms, 25), 2),
                    FormatDouble(stats::Median(ms), 2),
                    FormatDouble(stats::Percentile(ms, 75), 2),
                    FormatDouble(stats::Max(ms), 2)});
    }
  }
  std::printf("%s", table.ToString().c_str());
  std::printf(
      "\npaper shape: SOFA lowest medians; MESSI/SOFA spread widely across "
      "datasets, FAISS/UCR tight.\n");
  return 0;
}
