// Table VI + Fig. 14 (right) + Fig. 15 (bottom): tightness of lower bound
// on the 17 SOFA benchmark datasets.
//
// Paper shape (Table VI): SFA EW+VAR 0.34→0.64 over alphabets 4→256, above
// iSAX 0.37→0.55 from alphabet 8 upward; CD ranks EW+VAR clearly first
// (1.32), then EW (2.74) ≈ ED+VAR (2.91), then iSAX (3.94) ≈ ED (4.09).

#include <cstdio>

#include "bench_common.h"
#include "util/stats.h"
#include "util/table_printer.h"

int main(int argc, char** argv) {
  using namespace sofa;
  using namespace sofa::bench;
  Flags flags(argc, argv);
  BenchOptions options = ParseBenchOptions(flags);
  options.n_series = static_cast<std::size_t>(
      flags.GetInt("n_series", 5000));  // TLB needs samples, not scale
  PrintHeader("Table VI / Fig. 14-15 — TLB on the 17 SOFA datasets",
              options);

  ThreadPool pool(options.max_threads());
  const std::size_t alphabets[] = {4, 8, 16, 32, 64, 128, 256};
  const auto& names = AblationNames();

  std::vector<std::string> headers = {"Method"};
  for (const std::size_t a : alphabets) {
    headers.push_back(std::to_string(a));
  }
  TablePrinter table(headers);
  std::vector<std::vector<std::string>> rows(
      names.size(), std::vector<std::string>{std::string()});
  for (std::size_t m = 0; m < names.size(); ++m) {
    rows[m][0] = names[m];
  }
  std::vector<std::vector<double>> scores_256(names.size());

  // Generate each dataset once and reuse across alphabets.
  std::vector<LabeledDataset> datasets;
  for (const std::string& name : options.dataset_names) {
    datasets.push_back(MakeBenchDataset(name, options, &pool));
  }
  for (const std::size_t alphabet : alphabets) {
    std::vector<double> sums(names.size(), 0.0);
    for (const auto& ds : datasets) {
      const std::vector<double> tlbs =
          AblationTlbs(ds.data, ds.queries, alphabet, &pool);
      for (std::size_t m = 0; m < names.size(); ++m) {
        sums[m] += tlbs[m];
        if (alphabet == 256) {
          scores_256[m].push_back(-tlbs[m]);  // lower = better for ranks
        }
      }
    }
    for (std::size_t m = 0; m < names.size(); ++m) {
      rows[m].push_back(FormatDouble(
          sums[m] / static_cast<double>(datasets.size()), 3));
    }
  }
  for (auto& row : rows) {
    table.AddRow(std::move(row));
  }
  std::printf("%s", table.ToString().c_str());

  const auto cd = stats::CriticalDifference(scores_256);
  std::printf("\ncritical difference at |alphabet|=256 (lower rank = "
              "better):\n");
  for (std::size_t m = 0; m < names.size(); ++m) {
    std::printf("  %-12s mean rank %.4f\n", names[m].c_str(),
                cd.mean_ranks[m]);
  }
  std::printf("indistinguishable cliques (Wilcoxon-Holm, alpha 0.05):\n");
  if (cd.cliques.empty()) {
    std::printf("  (none — all pairwise differences significant)\n");
  }
  for (const auto& clique : cd.cliques) {
    std::printf(" ");
    for (const std::size_t m : clique) {
      std::printf(" [%s]", names[m].c_str());
    }
    std::printf("\n");
  }
  std::printf(
      "\npaper shape: TLB grows with alphabet for all methods; SFA EW+VAR "
      "highest from alphabet 16 up\n(0.64 at 256 vs iSAX 0.55); EW+VAR "
      "ranked first in the CD analysis.\n");
  return 0;
}
