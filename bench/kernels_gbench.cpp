// Kernel microbenchmarks (google-benchmark) — the Section IV-H ablation:
// scalar vs SIMD for the Euclidean distance and LBD kernels, plus the
// per-series costs of the summarization pipeline (DFT, PAA, symbolize).

#include <benchmark/benchmark.h>

#include <limits>
#include <vector>

#include "core/dataset.h"
#include "core/distance.h"
#include "core/znorm.h"
#include "dft/real_dft.h"
#include "quant/binning.h"
#include "quant/breakpoint_table.h"
#include "quant/lbd.h"
#include "quant/rowq.h"
#include "sax/paa.h"
#include "sax/sax_scheme.h"
#include "sfa/mcb.h"
#include "util/aligned.h"
#include "util/rng.h"

namespace {

using namespace sofa;

constexpr float kInf = std::numeric_limits<float>::infinity();

std::vector<float> RandomSeries(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<float> v(n);
  for (auto& x : v) {
    x = static_cast<float>(rng.Gaussian());
  }
  ZNormalize(v.data(), n);
  return v;
}

// ------------------------------------------------- Euclidean distance

void BM_SquaredEuclidean_Scalar(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const auto a = RandomSeries(n, 1);
  const auto b = RandomSeries(n, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(scalar::SquaredEuclidean(a.data(), b.data(), n));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_SquaredEuclidean_Scalar)->Arg(96)->Arg(128)->Arg(256);

#if defined(SOFA_HAVE_AVX2)
void BM_SquaredEuclidean_Avx2(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const auto a = RandomSeries(n, 1);
  const auto b = RandomSeries(n, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(avx2::SquaredEuclidean(a.data(), b.data(), n));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_SquaredEuclidean_Avx2)->Arg(96)->Arg(128)->Arg(256);
#endif

void BM_EuclideanEarlyAbandon_TightBound(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const auto a = RandomSeries(n, 3);
  const auto b = RandomSeries(n, 4);
  // A bound at 10% of the exact distance abandons after the first chunks.
  const float bound = 0.1f * SquaredEuclidean(a.data(), b.data(), n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        SquaredEuclideanEarlyAbandon(a.data(), b.data(), n, bound));
  }
}
BENCHMARK(BM_EuclideanEarlyAbandon_TightBound)->Arg(256);

void BM_EuclideanEarlyAbandon_LooseBound(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const auto a = RandomSeries(n, 3);
  const auto b = RandomSeries(n, 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        SquaredEuclideanEarlyAbandon(a.data(), b.data(), n, kInf));
  }
}
BENCHMARK(BM_EuclideanEarlyAbandon_LooseBound)->Arg(256);

void BM_DotProduct(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const auto a = RandomSeries(n, 5);
  const auto b = RandomSeries(n, 6);
  for (auto _ : state) {
    benchmark::DoNotOptimize(DotProduct(a.data(), b.data(), n));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_DotProduct)->Arg(96)->Arg(256);

// ----------------------------------------------------------- rowq kernel

// The compressed pruning tier's quantized-row lower bound: u8 codes
// against a padded query. One fixture per length, shared across the
// scalar/SIMD/early-abandon variants below.
struct RowqSetup {
  std::shared_ptr<const quant::RowQuant> rowq;
  AlignedVector<float> padded_query;

  explicit RowqSetup(std::size_t n) {
    Dataset data(n);
    std::vector<float> row(n);
    Rng rng(13);
    for (int i = 0; i < 64; ++i) {
      for (auto& x : row) {
        x = static_cast<float>(rng.Gaussian());
      }
      ZNormalize(row.data(), n);
      data.Append(row.data());
    }
    rowq = quant::RowQuant::Build(data);
    const auto query = RandomSeries(n, 14);
    padded_query.assign(rowq->quantizer().padded_length(), 0.0f);
    rowq->quantizer().PadQuery(query.data(), padded_query.data());
  }
};

void BM_RowqLowerBound_Scalar(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  RowqSetup setup(n);
  const quant::RowQuantizer& q = setup.rowq->quantizer();
  for (auto _ : state) {
    benchmark::DoNotOptimize(quant::scalar::RowqLowerBoundSquared(
        setup.padded_query.data(), q.mins(), q.deltas(), setup.rowq->code(0),
        q.padded_length()));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_RowqLowerBound_Scalar)->Arg(96)->Arg(128)->Arg(256);

void BM_RowqLowerBound_Dispatch(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  RowqSetup setup(n);
  const quant::RowQuantizer& q = setup.rowq->quantizer();
  for (auto _ : state) {
    benchmark::DoNotOptimize(quant::RowqLowerBoundSquared(
        setup.padded_query.data(), q.mins(), q.deltas(), setup.rowq->code(0),
        q.padded_length()));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_RowqLowerBound_Dispatch)->Arg(96)->Arg(128)->Arg(256);

void BM_RowqEarlyAbandon_TightBound(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  RowqSetup setup(n);
  const quant::RowQuantizer& q = setup.rowq->quantizer();
  // A threshold at 10% of the full sum stops the scan within the first
  // blocks — the serving shape when the BSF is already tight.
  const float full = quant::RowqLowerBoundSquared(
      setup.padded_query.data(), q.mins(), q.deltas(), setup.rowq->code(0),
      q.padded_length());
  const float abandon = 0.1f * full;
  for (auto _ : state) {
    benchmark::DoNotOptimize(quant::RowqLowerBoundSquaredEarlyAbandon(
        setup.padded_query.data(), q.mins(), q.deltas(), setup.rowq->code(0),
        q.padded_length(), abandon));
  }
}
BENCHMARK(BM_RowqEarlyAbandon_TightBound)->Arg(256);

void BM_RowqEarlyAbandon_LooseBound(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  RowqSetup setup(n);
  const quant::RowQuantizer& q = setup.rowq->quantizer();
  for (auto _ : state) {
    benchmark::DoNotOptimize(quant::RowqLowerBoundSquaredEarlyAbandon(
        setup.padded_query.data(), q.mins(), q.deltas(), setup.rowq->code(0),
        q.padded_length(), kInf));
  }
}
BENCHMARK(BM_RowqEarlyAbandon_LooseBound)->Arg(256);

// ----------------------------------------------------------- LBD kernel

struct LbdSetup {
  quant::BreakpointTable table;
  std::vector<float> weights;
  std::vector<float> query;
  std::vector<std::uint8_t> word;

  LbdSetup(std::size_t l, std::size_t alphabet)
      : table(l, alphabet), weights(l, 2.0f), query(l), word(l) {
    Rng rng(7);
    std::vector<float> sample(2000);
    for (std::size_t d = 0; d < l; ++d) {
      for (auto& v : sample) {
        v = static_cast<float>(rng.Gaussian());
      }
      table.SetDimension(d,
                         quant::EquiWidthBreakpoints(sample, alphabet));
      query[d] = static_cast<float>(rng.Gaussian());
      word[d] = table.Quantize(d, static_cast<float>(rng.Gaussian()));
    }
  }
};

void BM_Lbd_Scalar(benchmark::State& state) {
  LbdSetup setup(static_cast<std::size_t>(state.range(0)), 256);
  for (auto _ : state) {
    benchmark::DoNotOptimize(quant::scalar::LbdSquared(
        setup.table, setup.weights.data(), setup.query.data(),
        setup.word.data()));
  }
}
BENCHMARK(BM_Lbd_Scalar)->Arg(16)->Arg(32);

#if defined(SOFA_HAVE_AVX2)
void BM_Lbd_Avx2(benchmark::State& state) {
  LbdSetup setup(static_cast<std::size_t>(state.range(0)), 256);
  for (auto _ : state) {
    benchmark::DoNotOptimize(quant::avx2::LbdSquared(
        setup.table, setup.weights.data(), setup.query.data(),
        setup.word.data()));
  }
}
BENCHMARK(BM_Lbd_Avx2)->Arg(16)->Arg(32);

void BM_LbdEarlyAbandon_Avx2(benchmark::State& state) {
  LbdSetup setup(16, 256);
  const float exact = quant::LbdSquared(setup.table, setup.weights.data(),
                                        setup.query.data(),
                                        setup.word.data());
  const float bound = 0.25f * exact;
  for (auto _ : state) {
    benchmark::DoNotOptimize(quant::avx2::LbdSquaredEarlyAbandon(
        setup.table, setup.weights.data(), setup.query.data(),
        setup.word.data(), bound));
  }
}
BENCHMARK(BM_LbdEarlyAbandon_Avx2);
#endif

// ----------------------------------------------------- summarizations

void BM_RealDft(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const auto series = RandomSeries(n, 8);
  dft::RealDftPlan plan(n);
  dft::RealDftPlan::Scratch scratch;
  std::vector<std::complex<float>> coeffs(plan.num_coefficients());
  for (auto _ : state) {
    plan.Transform(series.data(), coeffs.data(), &scratch);
    benchmark::DoNotOptimize(coeffs.data());
  }
}
BENCHMARK(BM_RealDft)->Arg(96)->Arg(100)->Arg(128)->Arg(256);

void BM_Paa(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const auto series = RandomSeries(n, 9);
  float out[16];
  for (auto _ : state) {
    sax::Paa(series.data(), n, 16, out);
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_Paa)->Arg(256);

void BM_SaxSymbolize(benchmark::State& state) {
  const std::size_t n = 256;
  const auto series = RandomSeries(n, 10);
  sax::SaxScheme scheme(n, 16, 256);
  auto scratch = scheme.NewScratch();
  float values[16];
  std::uint8_t word[16];
  for (auto _ : state) {
    scheme.Symbolize(series.data(), word, scratch.get(), values);
    benchmark::DoNotOptimize(word);
  }
}
BENCHMARK(BM_SaxSymbolize);

void BM_SfaSymbolize(benchmark::State& state) {
  const std::size_t n = 256;
  Rng rng(11);
  Dataset train(n);
  std::vector<float> row(n);
  for (int i = 0; i < 500; ++i) {
    for (auto& x : row) {
      x = static_cast<float>(rng.Gaussian());
    }
    ZNormalize(row.data(), n);
    train.Append(row.data());
  }
  sfa::SfaConfig config;
  config.sampling_ratio = 1.0;
  const auto scheme = sfa::TrainSfa(train, config);
  auto scratch = scheme->NewScratch();
  const auto series = RandomSeries(n, 12);
  float values[16];
  std::uint8_t word[16];
  for (auto _ : state) {
    scheme->Symbolize(series.data(), word, scratch.get(), values);
    benchmark::DoNotOptimize(word);
  }
}
BENCHMARK(BM_SfaSymbolize);

}  // namespace

BENCHMARK_MAIN();
