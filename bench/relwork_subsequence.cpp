// Related work (paper Section III): subsequence search — MASS vs the
// UCR-style early-abandoning scan.
//
// The paper distinguishes whole-series matching (its own setting) from
// subsequence search, citing [50, 51]: "MASS is less effective and up to 5
// times slower than the UCR suite for this task" (whole matching). The
// mechanism: MASS always pays O(n log n) FFTs for the full distance
// profile, while an early-abandoning scan touches only a prefix of most
// windows — but the scan's worst case is O(n·m), so the balance tilts
// toward MASS as the query grows and when the whole profile (not just the
// 1-NN) is needed.
//
// This harness sweeps the query length m over a long seismic-like stream
// with a planted match, timing both approaches and checking they agree on
// the best position. The final row is the whole-matching degenerate case
// m = n — the setting of the paper's citation.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "subseq/mass.h"
#include "subseq/ucr_subseq.h"
#include "util/rng.h"
#include "util/table_printer.h"
#include "util/timer.h"

namespace {

using namespace sofa;
using namespace sofa::bench;

// Continuous stream: smooth background walk with occasional bursts —
// seismic-flavored, so windows vary in energy like real monitoring data.
std::vector<float> MakeStream(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<float> stream(n);
  double level = 0.0;
  double burst = 0.0;
  for (std::size_t t = 0; t < n; ++t) {
    if (rng.Uniform() < 1e-4) {
      burst = 6.0;  // event onset
    }
    burst *= 0.995;
    level = 0.999 * level + rng.Gaussian() * (0.3 + burst);
    stream[t] = static_cast<float>(level);
  }
  return stream;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  BenchOptions options = ParseBenchOptions(flags);
  const std::size_t n =
      static_cast<std::size_t>(flags.GetInt("stream_length", 500000));
  PrintHeader("Related work (Sec. III) — MASS vs UCR-style scan", options);

  const std::vector<float> stream = MakeStream(n, options.seed);
  Rng rng(options.seed + 1);

  ThreadPool pool(options.max_threads());
  std::printf("stream: %zu points; query = noised slice of the stream "
              "(a true match exists)\n\n",
              n);
  TablePrinter table({"query m", "MASS ms", "MASS-par ms", "UCR scan ms",
                      "MASS/UCR", "scan touched %", "agree"});

  std::vector<std::size_t> query_lengths = {64, 128, 256, 512, 1024, 4096};
  query_lengths.push_back(n);  // whole matching: the citation's setting
  for (const std::size_t m : query_lengths) {
    // Query: a stream slice plus 5% noise (for m = n, the whole stream).
    const std::size_t source =
        m < n ? 1 + rng.Below(n - m - 1) : 0;
    std::vector<float> query(m);
    for (std::size_t j = 0; j < m; ++j) {
      query[j] = stream[source + j] +
                 static_cast<float>(0.05 * rng.Gaussian());
    }

    subseq::MassPlan plan(n, m);
    std::vector<float> profile(plan.profile_length());
    WallTimer timer;
    plan.DistanceProfile(stream.data(), query.data(), profile.data());
    const double mass_ms = timer.Millis();
    const std::size_t mass_argmin =
        std::min_element(profile.begin(), profile.end()) - profile.begin();

    // Chunked-parallel MASS (same profile, small FFTs on every core).
    std::vector<float> parallel_profile(plan.profile_length());
    timer.Reset();
    subseq::ParallelDistanceProfile(stream.data(), n, query.data(), m,
                                    parallel_profile.data(), &pool);
    const double mass_par_ms = timer.Millis();

    timer.Reset();
    subseq::UcrSubseqProfile scan_profile;
    const subseq::SubseqMatch match = subseq::FindBestMatch(
        stream.data(), n, query.data(), m, &scan_profile);
    const double scan_ms = timer.Millis();

    const double touched =
        100.0 * static_cast<double>(scan_profile.points_touched) /
        (static_cast<double>(std::max<std::size_t>(scan_profile.windows, 1)) *
         static_cast<double>(m));
    table.AddRow({m == n ? "n (whole)" : std::to_string(m),
                  FormatDouble(mass_ms, 1), FormatDouble(mass_par_ms, 1),
                  FormatDouble(scan_ms, 1),
                  FormatDouble(mass_ms / scan_ms, 2),
                  FormatDouble(touched, 1),
                  match.position == mass_argmin ? "yes" : "NO"});
  }
  std::printf("%s", table.ToString().c_str());
  std::printf(
      "\npaper shape ([51] Fig. 3, as cited in Sec. III): the early-"
      "abandoning scan beats MASS\nwhere pruning bites — most clearly at "
      "whole matching, where the paper reports MASS up\nto 5x slower — "
      "while MASS's fixed O(n log n) pays off for long queries and full "
      "profiles.\n");
  return 0;
}
