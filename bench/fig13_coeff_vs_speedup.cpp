// Fig. 13: mean index of the Fourier coefficients SOFA selects, against
// the speedup over MESSI — one point per dataset, with the Pearson
// correlation (paper: r = 0.51).
//
// The paper's mechanism: when variance (and thus SOFA's selection) sits at
// higher frequencies, the PAA/SAX summarization of MESSI loses more
// information and SOFA gains more.

#include <cstdio>

#include "bench_common.h"
#include "util/stats.h"
#include "util/table_printer.h"

int main(int argc, char** argv) {
  using namespace sofa;
  using namespace sofa::bench;
  Flags flags(argc, argv);
  const BenchOptions options = ParseBenchOptions(flags);
  const std::size_t threads = options.max_threads();
  PrintHeader("Fig. 13 — selected-coefficient index vs speedup", options);

  ThreadPool pool(threads);
  TablePrinter table({"Dataset", "mean selected coeff", "speedup over MESSI"});
  std::vector<double> mean_coeffs;
  std::vector<double> speedups;
  for (const std::string& name : options.dataset_names) {
    const LabeledDataset ds = MakeBenchDataset(name, options, &pool);
    const SofaIndex sofa = BuildSofa(ds.data, options, &pool, threads);
    const MessiIndex messi = BuildMessi(ds.data, options, &pool, threads);
    const double sofa_mean =
        stats::Mean(TimeQueries(ds.queries, [&](const float* q) {
          (void)sofa.tree->Search1Nn(q);
        }));
    const double messi_mean =
        stats::Mean(TimeQueries(ds.queries, [&](const float* q) {
          (void)messi.tree->Search1Nn(q);
        }));
    const double mean_coeff = sofa.scheme->MeanSelectedCoefficientIndex();
    const double speedup = messi_mean / sofa_mean;
    mean_coeffs.push_back(mean_coeff);
    speedups.push_back(speedup);
    table.AddRow({name, FormatDouble(mean_coeff, 1),
                  FormatDouble(speedup, 2) + "x"});
  }
  std::printf("%s", table.ToString().c_str());
  std::printf("\nPearson correlation(mean coeff, speedup) = %.2f\n",
              stats::PearsonCorrelation(mean_coeffs, speedups));
  std::printf(
      "paper shape: positive correlation (paper r = 0.51, pool of the "
      "first 16 coefficients):\nhigher selected frequencies <-> larger "
      "speedup over MESSI.\n");
  return 0;
}
