// Ingest-vs-query throughput: what live mutation costs the serving
// layer, swept over the compaction threshold, the delete ratio, and the
// WAL fsync interval.
//
// One SearchService serves a sharded RW collection while a Compactor
// streams --n_insert fresh rows through the incremental ingest path
// (insert buffer → per-shard rebuild → republish), deleting a random
// already-live row after a --delete_ratio fraction of inserts
// (tombstone → masked from answers → physically removed at that shard's
// next compaction). Query clients hammer the service for the whole run.
// Per configuration the table reports the mutation rates, the query QPS
// and tail latency sustained *during* ingest, and the compaction count —
// against a query-only baseline row (no ingest attached) at the same
// thread count.
//
// With --wal-dir set, every run also sweeps --fsyncs: each accepted
// mutation is appended to a write-ahead log in a per-run subdirectory,
// fsynced every N records (1 = per record — the durability-latency
// worst case; 0 = only at rotation/close — the throughput best case).
// The delta against the "-" (no WAL) rows is the price of durability.
//
// Expected shape: small thresholds compact often (more rebuild work,
// query time lost to republish churn, but tiny flat-scanned delta sets);
// large thresholds amortize rebuilds but leave queries scanning a larger
// buffer. Deletes grow the tombstone set between compactions, widening
// the per-shard top-k the merge filters. Every answer is exact at every
// setting — the knobs trade throughput against itself, never against
// correctness.
//
// With --persist-dir additionally set (WAL runs only), every compaction
// also persists the published generation to a GenerationStore and
// truncates the WAL to the tail — the fully durable deployment. The
// delta against the WAL-only rows is the price of crash-consistent
// checkpointing (slice writing is O(changed shard) via hardlink reuse).
//
// Flags: --n_series=40000 --n_insert=8000 --n_queries=200 --length=256
//        --k=10 --threads=4 --shards=2 --leaf_size=1000
//        --thresholds=500,2000,8000 --clients=2 --seed=7
//        --delete_ratio=0.1 --wal-dir= --fsyncs=1,64,0 --persist-dir=
//        --stats-json=FILE
//
// The run ends with a JSON dump of the shared metrics registry (service,
// ingest, WAL and persist instruments aggregated over the whole sweep);
// --stats-json also writes it to a file for machine consumption.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <iostream>
#include <limits>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench_common.h"
#include "core/dataset.h"
#include "core/znorm.h"
#include "ingest/compactor.h"
#include "ingest/wal.h"
#include "obs/exposition.h"
#include "obs/registry.h"
#include "persist/generation_store.h"
#include "service/search_service.h"
#include "service/snapshot.h"
#include "sfa/mcb.h"
#include "shard/sharded_index.h"
#include "util/flags.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/table_printer.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace {

using namespace sofa;

Dataset RandomWalk(std::size_t count, std::size_t length,
                   std::uint64_t seed) {
  Rng rng(seed);
  Dataset ds(length);
  std::vector<float> row(length);
  for (std::size_t i = 0; i < count; ++i) {
    double level = 0.0;
    for (auto& x : row) {
      level += rng.Gaussian();
      x = static_cast<float>(level);
    }
    ZNormalize(row.data(), length);
    ds.Append(row.data());
  }
  return ds;
}

std::vector<std::size_t> ParseSizeList(const Flags& flags,
                                       const std::string& name,
                                       std::vector<std::size_t> fallback) {
  std::vector<std::size_t> values;
  for (const std::string& item : flags.GetList(name)) {
    values.push_back(static_cast<std::size_t>(std::stoull(item)));
  }
  return values.empty() ? fallback : values;
}

// End-of-run registry dump: printed to stdout and, with --stats-json,
// written to a file (what the bench-smoke CI step validates and the
// perf-baseline harness diffs; the metadata block identifies the run).
void DumpRegistry(obs::Registry* registry, const Flags& flags,
                  const std::string& metadata) {
  const std::string rendered = bench::WithBenchMetadata(
      obs::RenderJson(registry->Collect()), metadata);
  std::printf("\nregistry snapshot (JSON):\n%s", rendered.c_str());
  const std::string path = flags.GetString("stats-json", "");
  if (path.empty()) {
    return;
  }
  std::FILE* out = std::fopen(path.c_str(), "wb");
  if (out == nullptr ||
      std::fwrite(rendered.data(), 1, rendered.size(), out) !=
          rendered.size() ||
      std::fclose(out) != 0) {
    std::fprintf(stderr, "failed to write --stats-json %s\n", path.c_str());
    std::exit(1);
  }
  std::printf("wrote registry snapshot to %s\n", path.c_str());
}

struct RunResult {
  double insert_per_sec = 0.0;  // 0 on the query-only baseline
  double delete_per_sec = 0.0;
  std::uint64_t inserts = 0;  // rows actually accepted
  std::uint64_t deletes = 0;
  std::uint64_t dropped = 0;  // mutations lost to kIoError/kInvalid
  double qps = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  std::uint64_t compactions = 0;
  std::uint64_t answered = 0;
};

// Serves query traffic from `clients` threads until `stop`; when
// `compactor` is given, a mutator thread concurrently streams every row
// of `inserts` through it (retrying on admission backpressure),
// interleaving one delete of a random already-live id per 1/delete_ratio
// inserts.
RunResult Run(service::SearchService* svc, ingest::Compactor* compactor,
              const Dataset& queries, const Dataset* inserts,
              std::size_t base_rows, double delete_ratio, std::size_t k,
              std::size_t clients, std::uint64_t seed) {
  RunResult result;
  std::atomic<bool> stop(false);
  std::atomic<std::uint64_t> answered(0);
  std::vector<std::thread> client_threads;
  for (std::size_t c = 0; c < clients; ++c) {
    client_threads.emplace_back([&, c] {
      std::size_t q = c;
      while (!stop.load(std::memory_order_relaxed)) {
        service::SearchRequest request;
        const float* row = queries.row(q % queries.size());
        request.query.assign(row, row + queries.length());
        request.k = k;
        if (svc->Search(std::move(request)).status ==
            service::RequestStatus::kOk) {
          answered.fetch_add(1, std::memory_order_relaxed);
        }
        q += clients;
      }
    });
  }

  WallTimer timer;
  if (compactor != nullptr) {
    Rng rng(seed);
    std::uint64_t inserts_done = 0;
    std::uint64_t deletes_done = 0;
    std::uint64_t dropped = 0;
    for (std::size_t i = 0; i < inserts->size(); ++i) {
      StatusCode status;
      while ((status = compactor->Insert(inserts->row(i),
                                         inserts->length())
                           .code()) == StatusCode::kRejected) {
        std::this_thread::yield();
      }
      if (status == StatusCode::kOk) {
        ++inserts_done;
      } else {
        ++dropped;  // kIoError/kInvalidArgument: count it, keep it honest
      }
      const std::uint64_t deletes_due = static_cast<std::uint64_t>(
          static_cast<double>(i + 1) * delete_ratio);
      std::size_t attempts = 0;
      while (deletes_done < deletes_due && attempts++ < 64) {
        // A random already-live id; skip the (rare) ids already deleted
        // or never allocated (dropped inserts shrink the id space).
        const std::uint32_t victim =
            static_cast<std::uint32_t>(rng.Below(base_rows + i + 1));
        const Status status_d = compactor->Delete(victim);
        if (status_d == StatusCode::kOk) {
          ++deletes_done;
        } else if (status_d != StatusCode::kAlreadyDeleted &&
                   status_d != StatusCode::kNotFound) {
          ++dropped;  // shutdown / I/O failure: stop this round
          break;
        }
      }
    }
    compactor->Flush();
    const double seconds = timer.Seconds();
    // Rates over mutations that actually happened — a failing WAL disk
    // must show up as a collapsed rate, not a fictional one.
    result.insert_per_sec = static_cast<double>(inserts_done) / seconds;
    result.delete_per_sec = static_cast<double>(deletes_done) / seconds;
    result.inserts = inserts_done;
    result.deletes = deletes_done;
    result.dropped = dropped;
  } else {
    // Query-only baseline: match a typical ingest-run duration.
    std::this_thread::sleep_for(std::chrono::milliseconds(500));
  }
  const double seconds = timer.Seconds();
  stop.store(true);
  for (std::thread& t : client_threads) {
    t.join();
  }
  const service::MetricsSnapshot metrics = svc->Metrics();
  result.answered = answered.load();
  result.qps = static_cast<double>(result.answered) / seconds;
  result.p50_ms = metrics.latency_p50_ms;
  result.p99_ms = metrics.latency_p99_ms;
  if (compactor != nullptr) {
    result.compactions = compactor->Metrics().compactions;
  }
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const std::size_t n_series =
      static_cast<std::size_t>(flags.GetInt("n_series", 40000));
  const std::size_t n_insert =
      static_cast<std::size_t>(flags.GetInt("n_insert", 8000));
  const std::size_t n_queries =
      static_cast<std::size_t>(flags.GetInt("n_queries", 200));
  const std::size_t length =
      static_cast<std::size_t>(flags.GetInt("length", 256));
  const std::size_t k = static_cast<std::size_t>(flags.GetInt("k", 10));
  const std::size_t threads =
      static_cast<std::size_t>(flags.GetInt("threads", 4));
  const std::size_t shards =
      static_cast<std::size_t>(flags.GetInt("shards", 2));
  const std::size_t leaf_size =
      static_cast<std::size_t>(flags.GetInt("leaf_size", 1000));
  const std::size_t clients =
      static_cast<std::size_t>(flags.GetInt("clients", 2));
  const std::uint64_t seed =
      static_cast<std::uint64_t>(flags.GetInt("seed", 7));
  const std::vector<std::size_t> thresholds =
      ParseSizeList(flags, "thresholds", {500, 2000, 8000});
  const double delete_ratio = flags.GetDouble("delete_ratio", 0.1);
  const std::string wal_dir = flags.GetString("wal-dir", "");
  // fsync intervals swept when --wal-dir is set; "off" (no WAL) always
  // runs as the baseline mutation row.
  const std::vector<std::size_t> fsyncs =
      ParseSizeList(flags, "fsyncs", {1, 64, 0});

  std::printf("ingest_throughput — RW collection, %zu series x %zu + %zu "
              "inserts (delete ratio %.2f), %zu shards, k=%zu, T=%zu, "
              "%zu query clients%s\n\n",
              n_series, length, n_insert, delete_ratio, shards, k, threads,
              clients,
              wal_dir.empty() ? "" : ", WAL fsync sweep");

  const Dataset base = RandomWalk(n_series, length, seed);
  const Dataset inserts = RandomWalk(n_insert, length, seed + 1);
  const Dataset queries = RandomWalk(n_queries, length, seed + 2);
  ThreadPool pool(threads);
  // One registry across every configuration: service + ingest + WAL +
  // persist instruments aggregate over the whole sweep.
  obs::Registry registry;

  sfa::SfaConfig sfa_config;
  sfa_config.word_length = 16;
  sfa_config.alphabet = 256;
  const std::shared_ptr<const quant::SummaryScheme> scheme =
      sfa::TrainSfa(base, sfa_config, &pool);
  shard::ShardingConfig shard_config;
  shard_config.num_shards = shards;
  shard_config.index.leaf_capacity = leaf_size;
  WallTimer build_timer;
  const auto sharded =
      shard::ShardedIndex::Build(base, shard_config, scheme, &pool);
  std::printf("base sharded index built in %.2f s\n\n",
              build_timer.Seconds());

  TablePrinter table({"Threshold", "WAL fsync", "Persist", "Inserts/s",
                      "Deletes/s", "QPS", "p50 (ms)", "p99 (ms)",
                      "Compactions", "Id space"});

  {
    service::ServiceConfig service_config;
    service_config.registry = &registry;
    service::SearchService svc(service::WrapShardedIndex(sharded), &pool,
                               service_config);
    const RunResult r = Run(&svc, nullptr, queries, nullptr, n_series, 0.0,
                            k, clients, seed + 3);
    table.AddRow({"query-only", "-", "-", "-", "-", FormatDouble(r.qps, 1),
                  FormatDouble(r.p50_ms, 3), FormatDouble(r.p99_ms, 3), "-",
                  std::to_string(n_series)});
  }

  // Per threshold: a no-WAL mutation row, plus one row per fsync
  // interval when --wal-dir is given. Each configuration logs into its
  // own subdirectory, cleared first — the bench never recovers, and
  // stale segments from earlier runs would otherwise pile up
  // indefinitely (nothing here checkpoints or truncates).
  const std::string persist_dir = flags.GetString("persist-dir", "");
  for (const std::size_t threshold : thresholds) {
    // Variants: no-WAL baseline, then per fsync interval a WAL-only run
    // and (with --persist-dir) a WAL+generation-store run.
    struct Variant {
      std::string fsync_label;
      int sync;
      bool persist;
    };
    std::vector<Variant> variants = {{"-", -1, false}};
    if (!wal_dir.empty()) {
      for (const std::size_t sync : fsyncs) {
        variants.push_back({std::to_string(sync), static_cast<int>(sync),
                            false});
        if (!persist_dir.empty()) {
          variants.push_back({std::to_string(sync), static_cast<int>(sync),
                              true});
        }
      }
    }
    for (const auto& [label, sync, persist] : variants) {
      service::ServiceConfig service_config;
      service_config.registry = &registry;
      service::SearchService svc(service::WrapShardedIndex(sharded), &pool,
                                 service_config);
      ingest::IngestConfig ingest_config;
      ingest_config.compact_threshold = threshold;
      ingest_config.registry = &registry;
      const std::string run_tag =
          "/t" + std::to_string(threshold) + "_s" + label +
          (persist ? "_p" : "");
      if (sync >= 0) {
        ingest_config.wal_dir = wal_dir + run_tag;
        for (const std::string& segment :
             ingest::WriteAheadLog::ListSegments(ingest_config.wal_dir)) {
          std::remove(segment.c_str());
        }
        ingest_config.wal.sync_every = static_cast<std::size_t>(sync);
      }
      std::unique_ptr<persist::GenerationStore> store;
      if (persist) {
        store = persist::GenerationStore::Open(persist_dir + run_tag,
                                               &registry);
        if (store == nullptr) {
          std::fprintf(stderr, "cannot open persist dir %s%s\n",
                       persist_dir.c_str(), run_tag.c_str());
          return 1;
        }
        // The bench never recovers: clear generations left by earlier
        // runs so they cannot pile up.
        store->RemoveGenerationsBelow(
            std::numeric_limits<std::uint64_t>::max());
        ingest_config.store = store.get();
      }
      ingest::Compactor compactor(&svc, sharded, ingest_config);
      const RunResult r = Run(&svc, &compactor, queries, &inserts, n_series,
                              delete_ratio, k, clients, seed + 4);
      if (r.dropped > 0) {
        std::fprintf(stderr,
                     "WARNING: threshold=%zu fsync=%s dropped %llu "
                     "mutations (WAL I/O errors?) — rates cover only what "
                     "was accepted\n",
                     threshold, label.c_str(),
                     static_cast<unsigned long long>(r.dropped));
      }
      const ingest::IngestMetrics metrics = compactor.Metrics();
      table.AddRow({std::to_string(threshold), label,
                    persist ? std::to_string(metrics.persisted) : "-",
                    FormatDouble(r.insert_per_sec, 1),
                    FormatDouble(r.delete_per_sec, 1),
                    FormatDouble(r.qps, 1), FormatDouble(r.p50_ms, 3),
                    FormatDouble(r.p99_ms, 3), std::to_string(r.compactions),
                    std::to_string(metrics.total_rows)});
    }
  }

  table.Print(std::cout);
  std::printf("\nall rows exact at every setting: compaction trades rebuild "
              "churn against buffer-scan width, deletes trade tombstone "
              "filtering against rebuild timing, and the WAL trades fsync "
              "latency against the durability window — never "
              "correctness.\n");
  DumpRegistry(&registry, flags,
               bench::BenchMetadataJson(
                   "ingest_throughput",
                   {{"n_series", std::to_string(n_series)},
                    {"n_insert", std::to_string(n_insert)},
                    {"n_queries", std::to_string(n_queries)},
                    {"length", std::to_string(length)},
                    {"k", std::to_string(k)},
                    {"threads", std::to_string(threads)},
                    {"shards", std::to_string(shards)},
                    {"leaf_size", std::to_string(leaf_size)},
                    {"clients", std::to_string(clients)},
                    {"seed", std::to_string(seed)}}));
  return 0;
}
