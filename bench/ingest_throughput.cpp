// Ingest-vs-query throughput: what live insertion costs the serving
// layer, swept over the compaction threshold.
//
// One SearchService serves a sharded RW collection while a Compactor
// streams --n_insert fresh rows through the incremental ingest path
// (insert buffer → per-shard rebuild → republish). Query clients hammer
// the service for the whole run. Per compaction threshold the table
// reports the insert rate, the query QPS and tail latency sustained
// *during* ingest, and the compaction count — against a query-only
// baseline row (no ingest attached) at the same thread count.
//
// Expected shape: small thresholds compact often (more rebuild work,
// query time lost to republish churn, but tiny flat-scanned delta sets);
// large thresholds amortize rebuilds but leave queries scanning a larger
// buffer. Every answer is exact at every threshold — the knob trades
// throughput against itself, never against correctness.
//
// Flags: --n_series=40000 --n_insert=8000 --n_queries=200 --length=256
//        --k=10 --threads=4 --shards=2 --leaf_size=1000
//        --thresholds=500,2000,8000 --clients=2 --seed=7

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "core/dataset.h"
#include "core/znorm.h"
#include "ingest/compactor.h"
#include "service/search_service.h"
#include "service/snapshot.h"
#include "sfa/mcb.h"
#include "shard/sharded_index.h"
#include "util/flags.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/table_printer.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace {

using namespace sofa;

Dataset RandomWalk(std::size_t count, std::size_t length,
                   std::uint64_t seed) {
  Rng rng(seed);
  Dataset ds(length);
  std::vector<float> row(length);
  for (std::size_t i = 0; i < count; ++i) {
    double level = 0.0;
    for (auto& x : row) {
      level += rng.Gaussian();
      x = static_cast<float>(level);
    }
    ZNormalize(row.data(), length);
    ds.Append(row.data());
  }
  return ds;
}

std::vector<std::size_t> ParseSizeList(const Flags& flags,
                                       const std::string& name,
                                       std::vector<std::size_t> fallback) {
  std::vector<std::size_t> values;
  for (const std::string& item : flags.GetList(name)) {
    values.push_back(static_cast<std::size_t>(std::stoull(item)));
  }
  return values.empty() ? fallback : values;
}

struct RunResult {
  double insert_per_sec = 0.0;  // 0 on the query-only baseline
  double qps = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  std::uint64_t compactions = 0;
  std::uint64_t answered = 0;
};

// Serves query traffic from `clients` threads until `stop`; when
// `compactor` is given, an inserter thread concurrently streams every row
// of `inserts` through it (retrying on admission backpressure).
RunResult Run(service::SearchService* svc, ingest::Compactor* compactor,
              const Dataset& queries, const Dataset* inserts, std::size_t k,
              std::size_t clients) {
  RunResult result;
  std::atomic<bool> stop(false);
  std::atomic<std::uint64_t> answered(0);
  std::vector<std::thread> client_threads;
  for (std::size_t c = 0; c < clients; ++c) {
    client_threads.emplace_back([&, c] {
      std::size_t q = c;
      while (!stop.load(std::memory_order_relaxed)) {
        service::SearchRequest request;
        const float* row = queries.row(q % queries.size());
        request.query.assign(row, row + queries.length());
        request.k = k;
        if (svc->Search(std::move(request)).status ==
            service::RequestStatus::kOk) {
          answered.fetch_add(1, std::memory_order_relaxed);
        }
        q += clients;
      }
    });
  }

  WallTimer timer;
  if (compactor != nullptr) {
    for (std::size_t i = 0; i < inserts->size(); ++i) {
      while (compactor->Insert(inserts->row(i), inserts->length()) ==
             ingest::InsertStatus::kRejected) {
        std::this_thread::yield();
      }
    }
    compactor->Flush();
    result.insert_per_sec =
        static_cast<double>(inserts->size()) / timer.Seconds();
  } else {
    // Query-only baseline: match a typical ingest-run duration.
    std::this_thread::sleep_for(std::chrono::milliseconds(500));
  }
  const double seconds = timer.Seconds();
  stop.store(true);
  for (std::thread& t : client_threads) {
    t.join();
  }
  const service::MetricsSnapshot metrics = svc->Metrics();
  result.answered = answered.load();
  result.qps = static_cast<double>(result.answered) / seconds;
  result.p50_ms = metrics.latency_p50_ms;
  result.p99_ms = metrics.latency_p99_ms;
  if (compactor != nullptr) {
    result.compactions = compactor->Metrics().compactions;
  }
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const std::size_t n_series =
      static_cast<std::size_t>(flags.GetInt("n_series", 40000));
  const std::size_t n_insert =
      static_cast<std::size_t>(flags.GetInt("n_insert", 8000));
  const std::size_t n_queries =
      static_cast<std::size_t>(flags.GetInt("n_queries", 200));
  const std::size_t length =
      static_cast<std::size_t>(flags.GetInt("length", 256));
  const std::size_t k = static_cast<std::size_t>(flags.GetInt("k", 10));
  const std::size_t threads =
      static_cast<std::size_t>(flags.GetInt("threads", 4));
  const std::size_t shards =
      static_cast<std::size_t>(flags.GetInt("shards", 2));
  const std::size_t leaf_size =
      static_cast<std::size_t>(flags.GetInt("leaf_size", 1000));
  const std::size_t clients =
      static_cast<std::size_t>(flags.GetInt("clients", 2));
  const std::uint64_t seed =
      static_cast<std::uint64_t>(flags.GetInt("seed", 7));
  const std::vector<std::size_t> thresholds =
      ParseSizeList(flags, "thresholds", {500, 2000, 8000});

  std::printf("ingest_throughput — RW collection, %zu series x %zu + %zu "
              "inserts, %zu shards, k=%zu, T=%zu, %zu query clients\n\n",
              n_series, length, n_insert, shards, k, threads, clients);

  const Dataset base = RandomWalk(n_series, length, seed);
  const Dataset inserts = RandomWalk(n_insert, length, seed + 1);
  const Dataset queries = RandomWalk(n_queries, length, seed + 2);
  ThreadPool pool(threads);

  sfa::SfaConfig sfa_config;
  sfa_config.word_length = 16;
  sfa_config.alphabet = 256;
  const std::shared_ptr<const quant::SummaryScheme> scheme =
      sfa::TrainSfa(base, sfa_config, &pool);
  shard::ShardingConfig shard_config;
  shard_config.num_shards = shards;
  shard_config.index.leaf_capacity = leaf_size;
  WallTimer build_timer;
  const auto sharded =
      shard::ShardedIndex::Build(base, shard_config, scheme, &pool);
  std::printf("base sharded index built in %.2f s\n\n",
              build_timer.Seconds());

  TablePrinter table({"Threshold", "Inserts/s", "QPS", "p50 (ms)",
                      "p99 (ms)", "Compactions", "Final rows"});

  {
    service::SearchService svc(service::WrapShardedIndex(sharded), &pool);
    const RunResult r = Run(&svc, nullptr, queries, nullptr, k, clients);
    table.AddRow({"query-only", "-", FormatDouble(r.qps, 1),
                  FormatDouble(r.p50_ms, 3), FormatDouble(r.p99_ms, 3), "-",
                  std::to_string(n_series)});
  }

  for (const std::size_t threshold : thresholds) {
    service::SearchService svc(service::WrapShardedIndex(sharded), &pool);
    ingest::IngestConfig ingest_config;
    ingest_config.compact_threshold = threshold;
    ingest::Compactor compactor(&svc, sharded, ingest_config);
    const RunResult r = Run(&svc, &compactor, queries, &inserts, k, clients);
    table.AddRow({std::to_string(threshold),
                  FormatDouble(r.insert_per_sec, 1), FormatDouble(r.qps, 1),
                  FormatDouble(r.p50_ms, 3), FormatDouble(r.p99_ms, 3),
                  std::to_string(r.compactions),
                  std::to_string(compactor.Metrics().total_rows)});
  }

  table.Print(std::cout);
  std::printf("\nall rows exact at every threshold: compaction trades "
              "rebuild churn against buffer-scan width, never "
              "correctness.\n");
  return 0;
}
