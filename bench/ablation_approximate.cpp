// Future-work ablation (paper Section VI): ε-approximate search with SFA.
//
// The paper names approximate SFA search as future work; the engine
// supports GEMINI pruning with an inflated lower bound, guaranteeing every
// answer within (1+ε) of the exact distance. This harness sweeps ε and
// reports median query time, the measured worst-case distance ratio to the
// exact answer, and the empirical recall@1 (how often the approximate
// answer *is* the exact one).

#include <algorithm>
#include <cstdio>

#include "bench_common.h"
#include "util/stats.h"
#include "util/table_printer.h"
#include "util/timer.h"

int main(int argc, char** argv) {
  using namespace sofa;
  using namespace sofa::bench;
  Flags flags(argc, argv);
  BenchOptions options = ParseBenchOptions(flags);
  if (!flags.Has("datasets")) {
    options.dataset_names = {"LenDB", "SCEDC", "OBS", "PNW", "SIFT1b"};
  }
  const std::size_t threads = options.max_threads();
  PrintHeader("Future work — epsilon-approximate SFA search", options);

  ThreadPool pool(threads);
  const double epsilons[] = {0.0, 0.05, 0.1, 0.25, 0.5, 1.0};

  TablePrinter table({"epsilon", "median (ms)", "mean ED calls",
                      "worst dist ratio", "recall@1"});
  struct Accumulator {
    std::vector<double> ms;
    std::vector<double> ed_calls;
    double worst_ratio = 1.0;
    std::size_t hits = 0;
    std::size_t total = 0;
  };
  std::vector<Accumulator> acc(std::size(epsilons));

  for (const std::string& name : options.dataset_names) {
    const LabeledDataset ds = MakeBenchDataset(name, options, &pool);
    const SofaIndex sofa = BuildSofa(ds.data, options, &pool, threads);
    for (std::size_t q = 0; q < ds.queries.size(); ++q) {
      const Neighbor exact = sofa.tree->Search1Nn(ds.queries.row(q));
      for (std::size_t e = 0; e < std::size(epsilons); ++e) {
        index::QueryProfile profile;
        WallTimer timer;
        const auto result = sofa.tree->SearchKnnApproximate(
            ds.queries.row(q), 1, epsilons[e], &profile);
        acc[e].ms.push_back(timer.Millis());
        acc[e].ed_calls.push_back(
            static_cast<double>(profile.series_ed_computed));
        const double ratio =
            exact.distance > 0
                ? static_cast<double>(result[0].distance) / exact.distance
                : 1.0;
        acc[e].worst_ratio = std::max(acc[e].worst_ratio, ratio);
        acc[e].hits += (result[0].id == exact.id) ? 1 : 0;
        ++acc[e].total;
      }
    }
  }
  for (std::size_t e = 0; e < std::size(epsilons); ++e) {
    table.AddRow({FormatDouble(epsilons[e], 2),
                  FormatDouble(stats::Median(acc[e].ms), 2),
                  FormatDouble(stats::Mean(acc[e].ed_calls), 0),
                  FormatDouble(acc[e].worst_ratio, 4),
                  FormatDouble(100.0 * static_cast<double>(acc[e].hits) /
                                   static_cast<double>(acc[e].total),
                               1) +
                      "%"});
  }
  std::printf("%s", table.ToString().c_str());
  std::printf(
      "\nexpected shape: work (ED calls) falls as epsilon grows; the worst "
      "observed distance ratio\nstays within the (1+epsilon) guarantee; "
      "recall stays high for small epsilon.\n");
  return 0;
}
