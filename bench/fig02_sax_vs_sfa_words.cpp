// Fig. 2: SAX vs SFA words for one series at word lengths 4/8/12.
//
// Reproduces the figure's content as text: for one sample series, the SAX
// word (staircase envelope in time domain) and the SFA word (envelope
// around the Fourier coefficients) with an 8-symbol alphabet, plus each
// summarization's reconstruction RMSE at the same budget.

#include <cstdio>

#include "bench_common.h"
#include "dft/real_dft.h"
#include "sax/isax.h"
#include "sax/paa.h"
#include "sax/sax_scheme.h"
#include "sfa/mcb.h"
#include "util/table_printer.h"

namespace {

using namespace sofa;

// RMSE of the PAA staircase against the series.
double PaaRmse(const float* row, std::size_t n, std::size_t l) {
  std::vector<float> paa(l);
  sax::Paa(row, n, l, paa.data());
  double err = 0.0;
  for (std::size_t seg = 0; seg < l; ++seg) {
    for (std::size_t t = sax::SegmentStart(n, l, seg);
         t < sax::SegmentStart(n, l, seg + 1); ++t) {
      const double e = row[t] - paa[seg];
      err += e * e;
    }
  }
  return std::sqrt(err / static_cast<double>(n));
}

// RMSE of the l-value truncated Fourier reconstruction.
double DftRmse(const float* row, std::size_t n, std::size_t l) {
  dft::RealDftPlan plan(n);
  dft::RealDftPlan::Scratch scratch;
  std::vector<std::complex<float>> coeffs(plan.num_coefficients());
  std::vector<std::complex<float>> kept(plan.num_coefficients(),
                                        {0.0f, 0.0f});
  std::vector<float> restored(n);
  plan.Transform(row, coeffs.data(), &scratch);
  for (std::size_t k = 0; k <= std::min(l / 2, kept.size() - 1); ++k) {
    kept[k] = coeffs[k];
  }
  plan.InverseTransform(kept.data(), restored.data(), &scratch);
  double err = 0.0;
  for (std::size_t t = 0; t < n; ++t) {
    const double e = row[t] - restored[t];
    err += e * e;
  }
  return std::sqrt(err / static_cast<double>(n));
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sofa::bench;
  Flags flags(argc, argv);
  BenchOptions options = ParseBenchOptions(flags);
  options.n_series =
      static_cast<std::size_t>(flags.GetInt("n_series", 2000));
  const std::string dataset =
      flags.GetString("dataset", "Meier2019JGR");  // high-frequency example
  PrintHeader("Fig. 2 — SAX vs SFA words (alphabet 8, l = 4/8/12)", options);

  ThreadPool pool(options.max_threads());
  const LabeledDataset ds = MakeBenchDataset(dataset, options, &pool);
  const float* row = ds.data.row(0);
  const std::size_t n = ds.data.length();
  std::printf("dataset %s, series 0 of length %zu\n\n", ds.name.c_str(), n);

  TablePrinter table({"l", "SAX word", "PAA RMSE", "SFA word", "DFT RMSE"});
  for (const std::size_t l : {4u, 8u, 12u}) {
    // SAX side.
    sax::SaxScheme sax_scheme(n, l, 8);
    std::vector<std::uint8_t> sax_word(l);
    sax_scheme.Symbolize(row, sax_word.data());

    // SFA side (low-pass values like the figure, learned 8-symbol bins).
    sfa::SfaConfig config;
    config.word_length = l;
    config.alphabet = 8;
    config.variance_selection = false;
    config.sampling_ratio = 1.0;
    const auto sfa_scheme = sfa::TrainSfa(ds.data, config, &pool);
    std::vector<std::uint8_t> sfa_word(l);
    sfa_scheme->Symbolize(row, sfa_word.data());

    table.AddRow({std::to_string(l),
                  sax::WordToString(sax_word.data(), l, 8),
                  FormatDouble(PaaRmse(row, n, l), 3),
                  sax::WordToString(sfa_word.data(), l, 8),
                  FormatDouble(DftRmse(row, n, l), 3)});
  }
  std::printf("%s", table.ToString().c_str());
  std::printf(
      "\npaper shape: SAX's staircase misses the signal (RMSE barely "
      "improves with l);\nSFA's Fourier envelope tracks it (RMSE drops as "
      "l grows).\n");
  return 0;
}
