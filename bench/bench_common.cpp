#include "bench_common.h"

#include <stdio.h>  // popen/pclose

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <thread>

#include "core/distance.h"
#include "sfa/tlb.h"
#include "util/check.h"
#include "util/timer.h"

namespace sofa {
namespace bench {

std::size_t BenchOptions::max_threads() const {
  std::size_t max_count = 1;
  for (const std::size_t t : thread_counts) {
    max_count = std::max(max_count, t);
  }
  return max_count;
}

BenchOptions ParseBenchOptions(const Flags& flags) {
  BenchOptions options;
  options.n_series = static_cast<std::size_t>(flags.GetInt(
      "n_series", static_cast<std::int64_t>(kDefaultSeriesPerDataset)));
  options.n_queries =
      static_cast<std::size_t>(flags.GetInt("n_queries", 10));
  options.leaf_size =
      static_cast<std::size_t>(flags.GetInt("leaf_size", 2000));
  options.seed = static_cast<std::uint64_t>(flags.GetInt("seed", 0xbe9c));

  for (const std::string& item : flags.GetList("threads")) {
    options.thread_counts.push_back(
        static_cast<std::size_t>(std::stoul(item)));
  }
  if (flags.Has("threads") && options.thread_counts.empty()) {
    options.thread_counts.push_back(
        static_cast<std::size_t>(flags.GetInt("threads", 1)));
  }
  if (options.thread_counts.empty()) {
    // Paper sweep {9,18,36} scaled to this machine: powers of two up to #hw.
    for (std::size_t t = 1; t <= HardwareThreads(); t *= 2) {
      options.thread_counts.push_back(t);
    }
  }

  options.dataset_names = flags.GetList("datasets");
  if (options.dataset_names.empty()) {
    for (const auto& spec : datagen::AllDatasetSpecs()) {
      options.dataset_names.push_back(spec.name);
    }
  } else {
    for (const auto& name : options.dataset_names) {
      SOFA_CHECK(datagen::FindDatasetSpec(name) != nullptr)
          << "unknown dataset " << name;
    }
  }
  return options;
}

void PrintHeader(const std::string& title, const BenchOptions& options) {
  std::printf("=== %s ===\n", title.c_str());
  std::printf(
      "scale: %zu series/dataset, %zu queries, leaf %zu, %zu datasets, "
      "threads:",
      options.n_series, options.n_queries, options.leaf_size,
      options.dataset_names.size());
  for (const std::size_t t : options.thread_counts) {
    std::printf(" %zu", t);
  }
  std::printf("\n(paper scale: 0.58M-100M series/dataset, 100 queries, "
              "leaf 20000, 2x18-core Xeon — shapes, not absolute times, "
              "are comparable)\n\n");
}

LabeledDataset MakeBenchDataset(const std::string& name,
                                const BenchOptions& options,
                                ThreadPool* pool) {
  datagen::GenerateOptions gen;
  gen.count = options.n_series;
  gen.num_queries = options.n_queries;
  gen.seed = options.seed;
  return datagen::MakeDatasetByName(name, gen, pool);
}

SofaIndex BuildSofa(const Dataset& data, const BenchOptions& options,
                    ThreadPool* pool, std::size_t num_threads,
                    const sfa::SfaConfig* config_override) {
  SofaIndex result;
  sfa::SfaConfig config;
  if (config_override != nullptr) {
    config = *config_override;
  }
  WallTimer timer;
  std::unique_ptr<sfa::SfaScheme> scheme = sfa::TrainSfa(data, config, pool);
  result.train_seconds = timer.Seconds();
  result.scheme = std::move(scheme);
  index::IndexConfig index_config;
  index_config.leaf_capacity = options.leaf_size;
  index_config.num_threads = num_threads;
  result.tree = std::make_unique<index::TreeIndex>(
      &data, result.scheme.get(), index_config, pool);
  return result;
}

MessiIndex BuildMessi(const Dataset& data, const BenchOptions& options,
                      ThreadPool* pool, std::size_t num_threads) {
  MessiIndex result;
  result.scheme = std::make_unique<sax::SaxScheme>(data.length(), 16, 256);
  index::IndexConfig index_config;
  index_config.leaf_capacity = options.leaf_size;
  index_config.num_threads = num_threads;
  result.tree = std::make_unique<index::TreeIndex>(
      &data, result.scheme.get(), index_config, pool);
  return result;
}

std::vector<double> TimeQueries(
    const Dataset& queries,
    const std::function<void(const float* query)>& query_fn) {
  std::vector<double> millis;
  millis.reserve(queries.size());
  for (std::size_t q = 0; q < queries.size(); ++q) {
    WallTimer timer;
    query_fn(queries.row(q));
    millis.push_back(timer.Millis());
  }
  return millis;
}

const std::vector<std::string>& AblationNames() {
  static const std::vector<std::string>* names = new std::vector<std::string>{
      "SFA EW +VAR", "SFA EW", "SFA ED +VAR", "SFA ED", "iSAX"};
  return *names;
}

std::vector<double> AblationTlbs(const Dataset& train, const Dataset& queries,
                                 std::size_t alphabet, ThreadPool* pool) {
  std::vector<double> tlbs;
  const std::size_t l = 16;
  for (int variant = 0; variant < 4; ++variant) {
    sfa::SfaConfig config;
    config.word_length = l;
    config.alphabet = alphabet;
    config.binning = (variant < 2) ? quant::BinningMethod::kEquiWidth
                                   : quant::BinningMethod::kEquiDepth;
    config.variance_selection = (variant % 2) == 0;
    config.sampling_ratio = 1.0;  // the ablation trains on the full split
    const auto scheme = sfa::TrainSfa(train, config, pool);
    tlbs.push_back(sfa::MeanTlb(*scheme, train, queries));
  }
  const sax::SaxScheme sax_scheme(train.length(), l, alphabet);
  tlbs.push_back(sfa::MeanTlb(sax_scheme, train, queries));
  return tlbs;
}

namespace {

// $SOFA_GIT_SHA, then $GITHUB_SHA (Actions), then the working tree's
// HEAD, else "unknown" — never a failure (benches run from tarballs
// too).
std::string GitSha() {
  for (const char* var : {"SOFA_GIT_SHA", "GITHUB_SHA"}) {
    const char* value = std::getenv(var);
    if (value != nullptr && value[0] != '\0') {
      return value;
    }
  }
  std::FILE* pipe = ::popen("git rev-parse HEAD 2>/dev/null", "r");
  if (pipe != nullptr) {
    char buffer[128] = {0};
    std::string sha;
    if (std::fgets(buffer, sizeof(buffer), pipe) != nullptr) {
      sha = buffer;
      while (!sha.empty() && (sha.back() == '\n' || sha.back() == '\r')) {
        sha.pop_back();
      }
    }
    ::pclose(pipe);
    if (sha.size() == 40 &&
        sha.find_first_not_of("0123456789abcdef") == std::string::npos) {
      return sha;
    }
  }
  return "unknown";
}

bool IsJsonNumber(const std::string& value) {
  if (value.empty()) {
    return false;
  }
  char* end = nullptr;
  std::strtod(value.c_str(), &end);
  return end != nullptr && *end == '\0';
}

std::string JsonEscapeMinimal(const std::string& value) {
  std::string out;
  for (const char c : value) {
    if (c == '"' || c == '\\') {
      out += '\\';
    }
    out += c;
  }
  return out;
}

}  // namespace

std::string BenchMetadataJson(const std::string& bench,
                              const std::vector<BenchParam>& params) {
  std::string out = "{";
  out += "\"bench\": \"" + JsonEscapeMinimal(bench) + "\"";
  out += ", \"git_sha\": \"" + GitSha() + "\"";
  out += std::string(", \"dispatch\": \"") + DispatchLevelName() + "\"";
  out += ", \"hardware_threads\": " +
         std::to_string(std::thread::hardware_concurrency());
  for (const BenchParam& param : params) {
    out += ", \"" + JsonEscapeMinimal(param.first) + "\": ";
    if (IsJsonNumber(param.second)) {
      out += param.second;
    } else {
      out += "\"" + JsonEscapeMinimal(param.second) + "\"";
    }
  }
  out += "}";
  return out;
}

std::string WithBenchMetadata(const std::string& stats_json,
                              const std::string& metadata_json) {
  const std::size_t brace = stats_json.find('{');
  if (brace == std::string::npos) {
    return stats_json;
  }
  std::string out = stats_json;
  out.insert(brace + 1, "\n  \"metadata\": " + metadata_json + ",");
  return out;
}

}  // namespace bench
}  // namespace sofa
