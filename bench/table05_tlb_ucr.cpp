// Table V + Fig. 14 (left) + Fig. 15 (top): tightness of lower bound on
// the UCR-archive-like collection.
//
// Mean TLB of the five summarization variants (word length 16) for
// alphabet sizes 4 … 256, followed by the critical-difference analysis
// (mean ranks + Wilcoxon-Holm cliques) at alphabet 256.
//
// Paper shape (Table V): SFA variants above iSAX at every alphabet; the
// gap is largest for small alphabets (up to 17pp at |Σ|=4); EW+VAR ranks
// best overall (Fig. 15: EW+VAR 1.87 < EW 2.00 < ED+VAR 3.01 < ED 3.29 <
// iSAX 4.83).

#include <cstdio>

#include "bench_common.h"
#include "datagen/ucr_archive.h"
#include "util/stats.h"
#include "util/table_printer.h"

int main(int argc, char** argv) {
  using namespace sofa;
  using namespace sofa::bench;
  Flags flags(argc, argv);
  BenchOptions options = ParseBenchOptions(flags);
  datagen::UcrArchiveOptions archive_options;
  archive_options.train_per_dataset =
      static_cast<std::size_t>(flags.GetInt("train_per_dataset", 80));
  archive_options.test_per_dataset =
      static_cast<std::size_t>(flags.GetInt("test_per_dataset", 20));
  PrintHeader("Table V / Fig. 14-15 — TLB on the UCR-like archive",
              options);

  ThreadPool pool(options.max_threads());
  const auto archive = datagen::MakeUcrArchiveLike(archive_options);
  std::printf("archive: %zu datasets, %zu train / %zu test each\n\n",
              archive.size(), archive_options.train_per_dataset,
              archive_options.test_per_dataset);

  const std::size_t alphabets[] = {4, 8, 16, 32, 64, 128, 256};
  const auto& names = AblationNames();

  // Mean-TLB table (Table V axis: alphabet size).
  std::vector<std::string> headers = {"Method"};
  for (const std::size_t a : alphabets) {
    headers.push_back(std::to_string(a));
  }
  TablePrinter table(headers);
  // [method][dataset] at alphabet 256 feeds the CD analysis.
  std::vector<std::vector<double>> scores_256(names.size());
  std::vector<std::vector<std::string>> rows(
      names.size(), std::vector<std::string>{std::string()});
  for (std::size_t m = 0; m < names.size(); ++m) {
    rows[m][0] = names[m];
  }
  for (const std::size_t alphabet : alphabets) {
    std::vector<double> sums(names.size(), 0.0);
    for (const auto& ds : archive) {
      const std::vector<double> tlbs =
          AblationTlbs(ds.train, ds.test, alphabet, &pool);
      for (std::size_t m = 0; m < names.size(); ++m) {
        sums[m] += tlbs[m];
        if (alphabet == 256) {
          // CD ranks want "lower is better": negate the TLB.
          scores_256[m].push_back(-tlbs[m]);
        }
      }
    }
    for (std::size_t m = 0; m < names.size(); ++m) {
      rows[m].push_back(FormatDouble(
          sums[m] / static_cast<double>(archive.size()), 3));
    }
  }
  for (auto& row : rows) {
    table.AddRow(std::move(row));
  }
  std::printf("%s", table.ToString().c_str());

  // Fig. 15 (top): critical-difference analysis at alphabet 256.
  const auto cd = stats::CriticalDifference(scores_256);
  std::printf("\ncritical difference at |alphabet|=256 (lower rank = "
              "better):\n");
  for (std::size_t m = 0; m < names.size(); ++m) {
    std::printf("  %-12s mean rank %.4f\n", names[m].c_str(),
                cd.mean_ranks[m]);
  }
  std::printf("indistinguishable cliques (Wilcoxon-Holm, alpha 0.05):\n");
  if (cd.cliques.empty()) {
    std::printf("  (none — all pairwise differences significant)\n");
  }
  for (const auto& clique : cd.cliques) {
    std::printf(" ");
    for (const std::size_t m : clique) {
      std::printf(" [%s]", names[m].c_str());
    }
    std::printf("\n");
  }
  std::printf(
      "\npaper shape: SFA EW+VAR best (rank 1.87), iSAX last (4.83); SFA "
      "beats iSAX at every alphabet,\nlargest TLB gap at alphabet 4.\n");
  return 0;
}
