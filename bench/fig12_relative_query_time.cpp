// Fig. 12: per-dataset relative 1-NN query time of SOFA vs MESSI
// (MESSI = 100%), sorted ascending — the "up to 38x on LenDB" result.
//
// Paper ordering (18 cores): LenDB 2.66% < SCEDC 10.67% < Meier2019JGR
// 11.36% < SIFT1B 24.69% < OBS 36.43% < BIGANN 42.89% < Iquique 64.88% <
// ASTRO 70.01% < OBST2024 70.46% < NEIC 71.78% < STEAD 72.00% < ETHZ
// 73.61% < TXED 78.58% < PNW 78.68% < ISC 82.58% < SALD 83.80% < DEEP1B
// 86.52%. The target is this ordering: high-frequency datasets gain most.

#include <algorithm>
#include <cstdio>

#include "bench_common.h"
#include "util/stats.h"
#include "util/table_printer.h"

int main(int argc, char** argv) {
  using namespace sofa;
  using namespace sofa::bench;
  Flags flags(argc, argv);
  const BenchOptions options = ParseBenchOptions(flags);
  const std::size_t threads = options.max_threads();
  PrintHeader("Fig. 12 — relative query time SOFA vs MESSI (lower=better)",
              options);

  ThreadPool pool(threads);
  struct Row {
    std::string name;
    double messi_ms;
    double sofa_ms;
    double relative;  // SOFA / MESSI
  };
  std::vector<Row> rows;
  for (const std::string& name : options.dataset_names) {
    const LabeledDataset ds = MakeBenchDataset(name, options, &pool);
    const SofaIndex sofa = BuildSofa(ds.data, options, &pool, threads);
    const MessiIndex messi = BuildMessi(ds.data, options, &pool, threads);
    const double sofa_mean =
        stats::Mean(TimeQueries(ds.queries, [&](const float* q) {
          (void)sofa.tree->Search1Nn(q);
        }));
    const double messi_mean =
        stats::Mean(TimeQueries(ds.queries, [&](const float* q) {
          (void)messi.tree->Search1Nn(q);
        }));
    rows.push_back(
        {name, messi_mean, sofa_mean, sofa_mean / messi_mean});
  }
  std::sort(rows.begin(), rows.end(),
            [](const Row& a, const Row& b) { return a.relative < b.relative; });

  TablePrinter table({"Dataset", "MESSI (ms)", "SOFA (ms)",
                      "relative (MESSI=100%)", "speedup"});
  for (const Row& row : rows) {
    table.AddRow({row.name, FormatDouble(row.messi_ms, 2),
                  FormatDouble(row.sofa_ms, 2),
                  FormatDouble(row.relative * 100.0, 2) + "%",
                  FormatDouble(1.0 / row.relative, 2) + "x"});
  }
  std::printf("%s", table.ToString().c_str());
  std::printf(
      "\npaper shape: SOFA <= MESSI on every dataset; largest gains on the "
      "high-frequency datasets\n(LenDB, SCEDC, Meier2019JGR, vectors), "
      "smallest on smooth ones (ISC, SALD, Deep1b).\n");
  return 0;
}
