// Table IV: SOFA 1-NN query times at different MCB sampling rates
// (0.1% … 20%), mixed workload.
//
// Paper shape: median stabilizes around the 1% default (58 ms); the mean
// keeps improving slightly up to ~5%; below 1% both degrade a little.

#include <cstdio>

#include "bench_common.h"
#include "util/stats.h"
#include "util/table_printer.h"

int main(int argc, char** argv) {
  using namespace sofa;
  using namespace sofa::bench;
  Flags flags(argc, argv);
  const BenchOptions options = ParseBenchOptions(flags);
  const std::size_t threads = options.max_threads();
  PrintHeader("Table IV — SOFA query times by MCB sampling rate", options);

  ThreadPool pool(threads);
  const double rates[] = {0.001, 0.005, 0.01, 0.05, 0.10, 0.15, 0.20};

  TablePrinter table({"Sampling", "Mean (ms)", "Median (ms)",
                      "learn time (s)"});
  for (const double rate : rates) {
    std::vector<double> query_ms;
    std::vector<double> learn_s;
    for (const std::string& name : options.dataset_names) {
      const LabeledDataset ds = MakeBenchDataset(name, options, &pool);
      sfa::SfaConfig config;
      config.sampling_ratio = rate;
      config.min_sample = 64;  // let tiny rates actually bite at bench scale
      const SofaIndex sofa =
          BuildSofa(ds.data, options, &pool, threads, &config);
      learn_s.push_back(sofa.train_seconds);
      for (const double ms : TimeQueries(ds.queries, [&](const float* q) {
             (void)sofa.tree->Search1Nn(q);
           })) {
        query_ms.push_back(ms);
      }
    }
    table.AddRow({FormatDouble(rate * 100.0, 1) + "%",
                  FormatDouble(stats::Mean(query_ms), 2),
                  FormatDouble(stats::Median(query_ms), 2),
                  FormatDouble(stats::Mean(learn_s), 3)});
  }
  std::printf("%s", table.ToString().c_str());
  std::printf(
      "\npaper shape: query times flat from ~1%% upward (median 58-67 ms "
      "band at paper scale);\nsub-1%% sampling slightly worse; learning "
      "cost grows with the rate.\n");
  return 0;
}
