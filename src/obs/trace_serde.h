// Binary serialization of a finished TraceRecord — the form in which a
// server's QueryTrace crosses the wire (net/protocol embeds the blob as
// an opaque length-prefixed section of the v2 SEARCH response).
//
// The encoding is versioned independently of the network protocol: the
// blob leads with a u16 trace-format version, and a decoder that sees a
// version it does not understand returns false without consuming
// anything — callers treat that as "no trace", never as an error, so a
// newer server can evolve the trace format without breaking older
// clients (see docs/PROTOCOL.md, "Trace payload section").
//
// TraceSpan::name is a `const char*` with string-literal lifetime; a
// decoded record cannot point into the transient blob, so names are
// interned: InternTraceName returns a process-lifetime pointer, and
// names already known (the engine's own stage names) deserialize to the
// exact same pointer every time. The intern table is append-only and
// bounded by the variety of span names, not by trace volume.

#ifndef SOFA_OBS_TRACE_SERDE_H_
#define SOFA_OBS_TRACE_SERDE_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "obs/trace.h"

namespace sofa {
namespace obs {

/// Current trace blob format. Bump on any layout change.
constexpr std::uint16_t kTraceEncodingVersion = 1;

/// Serializes `record` into a self-contained blob (little-endian,
/// leading u16 format version).
std::string SerializeTraceRecord(const TraceRecord& record);

/// Decodes a blob produced by SerializeTraceRecord. Returns false — and
/// leaves `out` untouched — on an unknown format version, a truncated
/// blob, trailing bytes, or an out-of-range parent index. Span and
/// counter names are interned (process lifetime).
bool DeserializeTraceRecord(const std::string& blob, TraceRecord* out);

/// Returns a stable, process-lifetime pointer for `name`; repeated calls
/// with equal strings return the same pointer. Thread-safe.
const char* InternTraceName(const std::string& name);

}  // namespace obs
}  // namespace sofa

#endif  // SOFA_OBS_TRACE_SERDE_H_
