// Renderers for registry snapshots: Prometheus text exposition format
// and a JSON schema, plus a parser for that JSON schema (so `sofa_cli
// stats` can pretty-print a dump written by `sofa_cli serve`). The
// renderers take the already-collected snapshot vector, so the future
// network front end can serve either format from one Collect() without
// touching instrument internals.

#ifndef SOFA_OBS_EXPOSITION_H_
#define SOFA_OBS_EXPOSITION_H_

#include <string>
#include <vector>

#include "obs/registry.h"

namespace sofa {
namespace obs {

/// Prometheus text exposition format (version 0.0.4): # HELP / # TYPE
/// headers per metric name, histogram expansion into cumulative
/// `_bucket{le=...}` series plus `_sum` and `_count`. Deterministic for
/// a given snapshot (input order is preserved; Registry::Collect sorts).
std::string RenderPrometheus(const std::vector<InstrumentSnapshot>& snapshot);

/// JSON document: {"metrics": [...]} with one object per instrument.
/// Counters carry "value"; gauges carry "value"; histograms carry
/// count/sum/max/p50/p95/p99 and a cumulative "buckets" array whose last
/// entry has "le": "+Inf". Always valid JSON (python3 -m json.tool).
std::string RenderJson(const std::vector<InstrumentSnapshot>& snapshot);

/// Parses a document produced by RenderJson back into snapshots.
/// Returns false (with a message in *error, if given) on malformed input
/// or schema mismatch.
bool ParseStatsJson(const std::string& text,
                    std::vector<InstrumentSnapshot>* out,
                    std::string* error = nullptr);

/// Human-oriented table for `sofa_cli stats`: one line per counter and
/// gauge, a count/mean/p50/p95/p99/max line per histogram.
std::string RenderPretty(const std::vector<InstrumentSnapshot>& snapshot);

/// Side-by-side diff of two snapshots (`sofa_cli stats --diff A B`, with
/// A and B two ParseStatsJson results — e.g. stats dumps taken before
/// and after a change). Counters show before → after with absolute and
/// relative change, gauges before → after, histograms the count change
/// plus the p50/p95/p99 movement. Instruments present on only one side
/// are listed under their own headings. Deterministic for given inputs.
std::string RenderStatsDiff(const std::vector<InstrumentSnapshot>& before,
                            const std::vector<InstrumentSnapshot>& after);

}  // namespace obs
}  // namespace sofa

#endif  // SOFA_OBS_EXPOSITION_H_
