// Per-query tracing: a lightweight span timeline answering "where did
// this query's latency go?" — admission wait, scatter, per-shard tree
// scans, buffer scans, merge. Designed for ~zero cost when sampling is
// off: the service checks one atomic counter per query and allocates a
// QueryTrace only for sampled queries; untraced queries carry a null
// pointer through the whole pipeline.
//
// Threading model: the coordinating thread Begin/EndSpan()s its own
// sequential stages and pre-AllocateSpan()s one slot per scattered task;
// each worker stamps only its own slot (StampSpan), so slot writes never
// race. Finish() must happen after the coordinator has joined all
// workers (the service's batch barrier provides this).

#ifndef SOFA_OBS_TRACE_H_
#define SOFA_OBS_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace sofa {
namespace obs {

/// Hardware-counter sample attached to a span (obs::PerfCounters). All
/// zero when the span was not perf-sampled; `hardware` distinguishes a
/// real perf_event_open reading from the rdtsc/clock fallback (where
/// only `cycles` is meaningful).
struct SpanPerf {
  std::uint64_t cycles = 0;
  std::uint64_t instructions = 0;
  std::uint64_t llc_misses = 0;
  std::uint64_t stalled_cycles = 0;
  bool hardware = false;

  bool Any() const {
    return cycles != 0 || instructions != 0 || llc_misses != 0 ||
           stalled_cycles != 0;
  }
};

/// One timed stage. `name` must point at a string literal or an interned
/// string (see trace_serde.h) — spans are recorded on the hot path; no
/// ownership, no copies. Times are milliseconds relative to the trace
/// origin.
struct TraceSpan {
  const char* name = "";
  int parent = -1;  // index of the enclosing span, -1 for top level
  double start_ms = 0.0;
  double end_ms = 0.0;
  SpanPerf perf;
};

/// A work counter attached to a finished trace (QueryProfile values).
struct TraceCounterSample {
  const char* name = "";
  std::uint64_t value = 0;
};

/// Immutable result of a finished trace — what the slow-query log stores
/// and the CLI prints.
struct TraceRecord {
  std::uint64_t query_id = 0;
  double total_ms = 0.0;
  bool deadline_expired = false;
  std::vector<TraceSpan> spans;  // allocation order
  std::vector<TraceCounterSample> counters;
};

/// Span collector for one query. Slots are preallocated at construction
/// so recording never allocates; spans beyond the capacity are dropped
/// (return -1), never reallocated under a worker's feet.
class QueryTrace {
 public:
  explicit QueryTrace(std::size_t max_spans = 64);

  QueryTrace(const QueryTrace&) = delete;
  QueryTrace& operator=(const QueryTrace&) = delete;

  /// Milliseconds elapsed since the trace was constructed.
  double NowMs() const;

  /// Opens a span starting now. Returns its index, or -1 if full.
  int BeginSpan(const char* name, int parent = -1);

  /// Closes a span opened by BeginSpan. Ignores -1.
  void EndSpan(int span);

  /// Reserves a slot for a scattered task; a worker later fills it with
  /// StampSpan. Returns -1 if full (the worker must tolerate it).
  int AllocateSpan(const char* name, int parent = -1);

  /// Fills a reserved slot. Each slot must be stamped by exactly one
  /// thread; times are NowMs()-relative milliseconds.
  void StampSpan(int span, double start_ms, double end_ms);

  /// Attaches a hardware-counter sample to a reserved slot. Same
  /// ownership rule as StampSpan: one thread per slot, never races.
  void StampSpanPerf(int span, const SpanPerf& perf);

  /// Attaches a named work counter (e.g. QueryProfile fields).
  void AddCounter(const char* name, std::uint64_t value);

  /// Seals the trace: returns the used spans and counters. The trace is
  /// spent afterwards.
  TraceRecord Finish(std::uint64_t query_id, double total_ms,
                     bool deadline_expired);

 private:
  std::chrono::steady_clock::time_point origin_;
  std::vector<TraceSpan> spans_;  // fixed capacity, never reallocated
  std::atomic<std::size_t> used_{0};
  std::vector<TraceCounterSample> counters_;
};

/// Decides which queries get a trace: every Nth submission when
/// `sample_every` > 0, none when 0. Thread-safe; one relaxed fetch_add
/// per decision.
class TraceSampler {
 public:
  explicit TraceSampler(std::uint32_t sample_every)
      : every_(sample_every) {}

  bool ShouldSample() {
    if (every_ == 0) {
      return false;
    }
    return counter_.fetch_add(1, std::memory_order_relaxed) % every_ == 0;
  }

  std::uint32_t sample_every() const { return every_; }

 private:
  std::uint32_t every_;
  std::atomic<std::uint64_t> counter_{0};
};

/// Tracing knobs carried in ServiceConfig.
struct TraceConfig {
  /// Trace every Nth query (1 = all, 0 = tracing off).
  std::uint32_t sample_every = 0;

  /// Queries slower than this (or expiring their deadline) land in the
  /// slow-query log with their full trace. > 0 implies every query is
  /// traced — a slow query cannot be predicted in advance.
  double slow_query_ms = 0.0;

  /// Ring-buffer capacity of the slow-query log.
  std::size_t slow_log_capacity = 64;

  /// Span slots preallocated per traced query. Must cover the sequential
  /// stages plus one slot per (shard + buffer) task.
  std::size_t max_spans = 128;

  bool TracingEnabled() const {
    return sample_every > 0 || slow_query_ms > 0.0;
  }
};

/// Renders a finished trace as an indented timeline (for the slow-query
/// dump and the CLI).
std::string FormatTrace(const TraceRecord& record);

}  // namespace obs
}  // namespace sofa

#endif  // SOFA_OBS_TRACE_H_
