// Hardware-counter sampling for stage attribution: cycles, retired
// instructions, last-level-cache misses and backend-stalled cycles read
// through perf_event_open(2), scoped to the calling thread so a sample
// taken around one executor task charges exactly that task's work.
//
// The paper's bottleneck story is memory traffic — the SFA summaries
// exist to keep scans out of DRAM — so "how many LLC misses did this
// shard scan take?" is the question this module answers, per span.
//
// Availability is never assumed: perf_event_open is routinely denied in
// containers and CI (perf_event_paranoid, seccomp, missing PMU). Every
// event is opened independently and a denied event is simply absent from
// the sample; when no event opens at all the sampler degrades to a raw
// rdtsc cycle count (x86) or a monotonic-clock tick count elsewhere,
// with `PerfSample::hardware == false` so consumers can tell. Opening,
// sampling and reading never fail a query — degradation is silent by
// design (ISSUE: "never a hard failure").
//
// Threading: a PerfCounters instance is bound to the thread that
// constructed it (perf events are opened with pid=0/cpu=-1, i.e. "this
// thread, any CPU"). Use ForCurrentThread() for the executor hot path —
// one thread_local instance per worker, opened once, reused for every
// traced task.

#ifndef SOFA_OBS_PERF_COUNTERS_H_
#define SOFA_OBS_PERF_COUNTERS_H_

#include <cstdint>

#include "obs/trace.h"

namespace sofa {
namespace obs {

/// One measurement window. Identical layout to SpanPerf (trace.h) so a
/// sample can be stamped onto a span verbatim.
using PerfSample = SpanPerf;

class PerfCounters {
 public:
  /// Opens the event set for the calling thread (or arms the fallback —
  /// construction never fails).
  PerfCounters();
  ~PerfCounters();

  PerfCounters(const PerfCounters&) = delete;
  PerfCounters& operator=(const PerfCounters&) = delete;

  /// True when at least one real perf event opened; false on the
  /// rdtsc/clock fallback.
  bool hardware() const { return num_events_ > 0; }

  /// "perf_event" or "tsc" — for diagnostics and test assertions.
  const char* backend() const { return hardware() ? "perf_event" : "tsc"; }

  /// Resets and enables the counters. Cheap enough to call per task.
  void Start();

  /// Disables the counters and returns the deltas since Start().
  PerfSample Stop();

  /// The calling thread's lazily-constructed instance (events are opened
  /// on first use and live for the thread's lifetime).
  static PerfCounters& ForCurrentThread();

  /// Test/ops hook: force every *subsequently constructed* instance down
  /// the fallback path, exactly as if perf_event_open returned EACCES.
  /// Already-open instances are unaffected. Not for the hot path.
  static void ForceFallback(bool on);
  static bool fallback_forced();

 private:
  static constexpr int kMaxEvents = 4;

  // Parallel arrays: fds_[i] measures kind_[i] (index into PerfSample
  // fields). -1 entries are events that failed to open.
  int fds_[kMaxEvents];
  int kind_[kMaxEvents];
  int num_events_ = 0;
  std::uint64_t fallback_start_ = 0;
};

}  // namespace obs
}  // namespace sofa

#endif  // SOFA_OBS_PERF_COUNTERS_H_
