#include "obs/trace.h"

#include <algorithm>
#include <cstdio>

namespace sofa {
namespace obs {

QueryTrace::QueryTrace(std::size_t max_spans)
    : origin_(std::chrono::steady_clock::now()) {
  spans_.resize(max_spans == 0 ? 1 : max_spans);
  counters_.reserve(16);
}

double QueryTrace::NowMs() const {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - origin_)
      .count();
}

int QueryTrace::BeginSpan(const char* name, int parent) {
  const int span = AllocateSpan(name, parent);
  if (span >= 0) {
    spans_[static_cast<std::size_t>(span)].start_ms = NowMs();
  }
  return span;
}

void QueryTrace::EndSpan(int span) {
  if (span < 0) {
    return;
  }
  spans_[static_cast<std::size_t>(span)].end_ms = NowMs();
}

int QueryTrace::AllocateSpan(const char* name, int parent) {
  const std::size_t slot = used_.fetch_add(1, std::memory_order_relaxed);
  if (slot >= spans_.size()) {
    // Out of slots: back out so Finish() sees a consistent count.
    used_.fetch_sub(1, std::memory_order_relaxed);
    return -1;
  }
  TraceSpan& span = spans_[slot];
  span.name = name;
  span.parent = parent;
  span.start_ms = 0.0;
  span.end_ms = 0.0;
  span.perf = SpanPerf{};
  return static_cast<int>(slot);
}

void QueryTrace::StampSpan(int span, double start_ms, double end_ms) {
  if (span < 0) {
    return;
  }
  TraceSpan& slot = spans_[static_cast<std::size_t>(span)];
  slot.start_ms = start_ms;
  slot.end_ms = end_ms;
}

void QueryTrace::StampSpanPerf(int span, const SpanPerf& perf) {
  if (span < 0) {
    return;
  }
  spans_[static_cast<std::size_t>(span)].perf = perf;
}

void QueryTrace::AddCounter(const char* name, std::uint64_t value) {
  counters_.push_back(TraceCounterSample{name, value});
}

TraceRecord QueryTrace::Finish(std::uint64_t query_id, double total_ms,
                               bool deadline_expired) {
  TraceRecord record;
  record.query_id = query_id;
  record.total_ms = total_ms;
  record.deadline_expired = deadline_expired;
  const std::size_t used =
      std::min(used_.load(std::memory_order_relaxed), spans_.size());
  record.spans.assign(spans_.begin(),
                      spans_.begin() + static_cast<std::ptrdiff_t>(used));
  record.counters = std::move(counters_);
  return record;
}

std::string FormatTrace(const TraceRecord& record) {
  char line[256];
  std::snprintf(line, sizeof(line), "query %llu: %.3f ms%s\n",
                static_cast<unsigned long long>(record.query_id),
                record.total_ms,
                record.deadline_expired ? " (deadline expired)" : "");
  std::string out = line;
  // Indent by nesting depth (parent chain); spans are in allocation
  // order, which matches begin order for the coordinator's stages.
  for (const TraceSpan& span : record.spans) {
    int depth = 0;
    for (int p = span.parent; p >= 0 && depth < 8;
         p = record.spans[static_cast<std::size_t>(p)].parent) {
      ++depth;
    }
    std::snprintf(line, sizeof(line), "  %*s[%9.3f .. %9.3f] %s",
                  depth * 2, "", span.start_ms, span.end_ms, span.name);
    out += line;
    if (span.perf.Any()) {
      std::snprintf(line, sizeof(line),
                    " (cyc=%llu ins=%llu llc=%llu stall=%llu%s)",
                    static_cast<unsigned long long>(span.perf.cycles),
                    static_cast<unsigned long long>(span.perf.instructions),
                    static_cast<unsigned long long>(span.perf.llc_misses),
                    static_cast<unsigned long long>(span.perf.stalled_cycles),
                    span.perf.hardware ? "" : " tsc");
      out += line;
    }
    out += "\n";
  }
  if (!record.counters.empty()) {
    out += "  counters:";
    for (const TraceCounterSample& counter : record.counters) {
      std::snprintf(line, sizeof(line), " %s=%llu", counter.name,
                    static_cast<unsigned long long>(counter.value));
      out += line;
    }
    out += "\n";
  }
  return out;
}

}  // namespace obs
}  // namespace sofa
