#include "obs/trace_serde.h"

#include <cstring>
#include <mutex>
#include <unordered_set>

namespace sofa {
namespace obs {
namespace {

// ---- little-endian primitives over std::string ----------------------

void PutU8(std::string* out, std::uint8_t v) {
  out->push_back(static_cast<char>(v));
}

void PutU16(std::string* out, std::uint16_t v) {
  PutU8(out, static_cast<std::uint8_t>(v));
  PutU8(out, static_cast<std::uint8_t>(v >> 8));
}

void PutU32(std::string* out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    PutU8(out, static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void PutU64(std::string* out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    PutU8(out, static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void PutF64(std::string* out, double v) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(out, bits);
}

void PutName(std::string* out, const char* name) {
  const std::size_t len = name != nullptr ? std::strlen(name) : 0;
  const std::uint16_t clamped =
      len > 0xFFFF ? 0xFFFF : static_cast<std::uint16_t>(len);
  PutU16(out, clamped);
  out->append(name, clamped);
}

/// Bounds-checked cursor, same failure-threading idiom as
/// net::PayloadReader (which this module cannot depend on — obs sits
/// below net in the layering).
class Cursor {
 public:
  Cursor(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}

  bool U8(std::uint8_t* v) { return Raw(v, 1); }

  bool U16(std::uint16_t* v) {
    std::uint8_t b[2];
    if (!Raw(b, 2)) return false;
    *v = static_cast<std::uint16_t>(b[0] | (b[1] << 8));
    return true;
  }

  bool U32(std::uint32_t* v) {
    std::uint8_t b[4];
    if (!Raw(b, 4)) return false;
    *v = 0;
    for (int i = 3; i >= 0; --i) {
      *v = (*v << 8) | b[i];
    }
    return true;
  }

  bool U64(std::uint64_t* v) {
    std::uint8_t b[8];
    if (!Raw(b, 8)) return false;
    *v = 0;
    for (int i = 7; i >= 0; --i) {
      *v = (*v << 8) | b[i];
    }
    return true;
  }

  bool F64(double* v) {
    std::uint64_t bits = 0;
    if (!U64(&bits)) return false;
    std::memcpy(v, &bits, sizeof(*v));
    return true;
  }

  bool Name(std::string* s) {
    std::uint16_t len = 0;
    if (!U16(&len) || size_ - pos_ < len) {
      pos_ = size_ + 1;
      return false;
    }
    s->assign(reinterpret_cast<const char*>(data_ + pos_), len);
    pos_ += len;
    return true;
  }

  bool AtEnd() const { return pos_ == size_; }

 private:
  bool Raw(void* out, std::size_t n) {
    if (pos_ > size_ || size_ - pos_ < n) {
      pos_ = size_ + 1;  // poison
      return false;
    }
    std::memcpy(out, data_ + pos_, n);
    pos_ += n;
    return true;
  }

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

}  // namespace

const char* InternTraceName(const std::string& name) {
  static std::mutex mutex;
  // unordered_set<std::string> never moves a stored string's buffer on
  // rehash (nodes are stable), so c_str() pointers live forever.
  static std::unordered_set<std::string>* table =
      new std::unordered_set<std::string>();
  std::lock_guard<std::mutex> lock(mutex);
  return table->insert(name).first->c_str();
}

std::string SerializeTraceRecord(const TraceRecord& record) {
  std::string out;
  out.reserve(64 + record.spans.size() * 64 + record.counters.size() * 32);
  PutU16(&out, kTraceEncodingVersion);
  PutU64(&out, record.query_id);
  PutF64(&out, record.total_ms);
  PutU8(&out, record.deadline_expired ? 1 : 0);

  const std::size_t span_count =
      record.spans.size() > 0xFFFF ? 0xFFFF : record.spans.size();
  PutU16(&out, static_cast<std::uint16_t>(span_count));
  for (std::size_t i = 0; i < span_count; ++i) {
    const TraceSpan& span = record.spans[i];
    PutName(&out, span.name);
    PutU32(&out, static_cast<std::uint32_t>(span.parent));
    PutF64(&out, span.start_ms);
    PutF64(&out, span.end_ms);
    PutU64(&out, span.perf.cycles);
    PutU64(&out, span.perf.instructions);
    PutU64(&out, span.perf.llc_misses);
    PutU64(&out, span.perf.stalled_cycles);
    PutU8(&out, span.perf.hardware ? 1 : 0);
  }

  const std::size_t counter_count =
      record.counters.size() > 0xFFFF ? 0xFFFF : record.counters.size();
  PutU16(&out, static_cast<std::uint16_t>(counter_count));
  for (std::size_t i = 0; i < counter_count; ++i) {
    PutName(&out, record.counters[i].name);
    PutU64(&out, record.counters[i].value);
  }
  return out;
}

bool DeserializeTraceRecord(const std::string& blob, TraceRecord* out) {
  Cursor cursor(reinterpret_cast<const std::uint8_t*>(blob.data()),
                blob.size());
  std::uint16_t version = 0;
  if (!cursor.U16(&version) || version != kTraceEncodingVersion) {
    return false;
  }

  TraceRecord record;
  std::uint8_t expired = 0;
  if (!cursor.U64(&record.query_id) || !cursor.F64(&record.total_ms) ||
      !cursor.U8(&expired)) {
    return false;
  }
  record.deadline_expired = expired != 0;

  std::uint16_t span_count = 0;
  if (!cursor.U16(&span_count)) {
    return false;
  }
  record.spans.reserve(span_count);
  std::string name;
  for (std::uint16_t i = 0; i < span_count; ++i) {
    TraceSpan span;
    std::uint32_t parent = 0;
    std::uint8_t hardware = 0;
    if (!cursor.Name(&name) || !cursor.U32(&parent) ||
        !cursor.F64(&span.start_ms) || !cursor.F64(&span.end_ms) ||
        !cursor.U64(&span.perf.cycles) ||
        !cursor.U64(&span.perf.instructions) ||
        !cursor.U64(&span.perf.llc_misses) ||
        !cursor.U64(&span.perf.stalled_cycles) || !cursor.U8(&hardware)) {
      return false;
    }
    span.name = InternTraceName(name);
    span.parent = static_cast<int>(parent);
    // A parent must precede its child (allocation order); anything else
    // is a corrupt blob, and would send FormatTrace's depth walk into
    // out-of-range indexing.
    if (span.parent < -1 || span.parent >= static_cast<int>(i)) {
      return false;
    }
    span.perf.hardware = hardware != 0;
    record.spans.push_back(span);
  }

  std::uint16_t counter_count = 0;
  if (!cursor.U16(&counter_count)) {
    return false;
  }
  record.counters.reserve(counter_count);
  for (std::uint16_t i = 0; i < counter_count; ++i) {
    TraceCounterSample counter;
    if (!cursor.Name(&name) || !cursor.U64(&counter.value)) {
      return false;
    }
    counter.name = InternTraceName(name);
    record.counters.push_back(counter);
  }

  if (!cursor.AtEnd()) {
    return false;
  }
  *out = std::move(record);
  return true;
}

}  // namespace obs
}  // namespace sofa
