// Process-wide metrics registry: named counters, gauges, and histograms
// with label support. The hot path (Counter::Add, Gauge::Set,
// Histogram::Record) is lock-free — instruments are resolved once at
// registration and then touched through stable pointers; the registry
// mutex guards only registration and Collect().
//
// Every layer of the engine registers here — service admission counters,
// ingest/WAL/persist counters, per-stage query timings — so one
// Collect() yields a snapshot coverable by a single exposition endpoint
// (see obs/exposition.h). Components with pre-existing locked counters
// (e.g. ingest::Compactor) publish via collect hooks: a callback run at
// the start of Collect() that copies their source-of-truth values into
// registry instruments with Counter::Set().

#ifndef SOFA_OBS_REGISTRY_H_
#define SOFA_OBS_REGISTRY_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "util/histogram.h"

namespace sofa {
namespace obs {

/// Label set attached to an instrument; stored sorted by key.
using Labels = std::vector<std::pair<std::string, std::string>>;

/// Monotonic counter. Add() is the normal path; Set() exists for collect
/// hooks that mirror an external source of truth (which may itself be
/// reset or assigned, e.g. on checkpoint replay).
class Counter {
 public:
  void Add(std::uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  void Set(std::uint64_t value) {
    value_.store(value, std::memory_order_relaxed);
  }
  std::uint64_t Value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  friend class Registry;
  Counter() = default;
  std::atomic<std::uint64_t> value_{0};
};

/// Instantaneous value (queue depths, row counts, uptime).
class Gauge {
 public:
  void Set(double value) { value_.store(value, std::memory_order_relaxed); }
  void Add(double delta);
  double Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  friend class Registry;
  Gauge() = default;
  std::atomic<double> value_{0.0};
};

/// Geometry of a histogram instrument (see LogHistogram). The first
/// registration of a name+labels wins; later lookups ignore the options.
struct HistogramOptions {
  double min_value = 1e-3;
  double max_value = 1e5;
  std::size_t buckets_per_decade = 20;
};

/// Distribution instrument backed by the lock-free LogHistogram.
class Histogram {
 public:
  void Record(double value) { data_.Record(value); }
  const LogHistogram& data() const { return data_; }

 private:
  friend class Registry;
  explicit Histogram(const HistogramOptions& options)
      : data_(options.min_value, options.max_value,
              options.buckets_per_decade) {}
  LogHistogram data_;
};

enum class InstrumentKind { kCounter, kGauge, kHistogram };

/// One cumulative histogram bucket in a snapshot. `upper_edge` is the
/// inclusive upper bound; the final bucket has `overflow` set and should
/// be rendered as le="+Inf".
struct HistogramBucket {
  double upper_edge = 0.0;
  std::uint64_t cumulative = 0;
  bool overflow = false;
};

/// Point-in-time copy of one instrument, safe to render after the fact.
struct InstrumentSnapshot {
  std::string name;
  Labels labels;  // sorted by key
  std::string help;
  InstrumentKind kind = InstrumentKind::kCounter;

  std::uint64_t counter = 0;  // kCounter
  double gauge = 0.0;         // kGauge

  // kHistogram:
  std::uint64_t count = 0;
  double sum = 0.0;
  double max = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
  std::vector<HistogramBucket> buckets;  // non-empty buckets + overflow
};

/// Instrument owner. Get* registers on first call and returns the same
/// pointer on every later call with the same name+labels (pointers stay
/// valid for the registry's lifetime). Registering an existing name with
/// a different kind aborts — metric names are a cross-layer contract.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  Counter* GetCounter(const std::string& name, Labels labels = {},
                      const std::string& help = "");
  Gauge* GetGauge(const std::string& name, Labels labels = {},
                  const std::string& help = "");
  Histogram* GetHistogram(const std::string& name,
                          const HistogramOptions& options = HistogramOptions{},
                          Labels labels = {}, const std::string& help = "");

  /// Registers a callback run at the start of every Collect(), used to
  /// sync externally-owned counters into registry instruments. Hooks must
  /// not call back into the registry (update pre-acquired instruments
  /// only). Returns an id for RemoveCollectHook(). Removal does not wait
  /// for an in-flight Collect() — quiesce collectors before destroying a
  /// hook's owner.
  std::uint64_t AddCollectHook(std::function<void()> hook);
  void RemoveCollectHook(std::uint64_t id);

  /// Runs collect hooks, then snapshots every instrument, sorted by name
  /// then labels — deterministic input for the renderers.
  std::vector<InstrumentSnapshot> Collect() const;

 private:
  struct Entry {
    InstrumentKind kind;
    std::string name;
    Labels labels;
    std::string help;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  Entry* FindOrCreate(const std::string& name, Labels* labels,
                      const std::string& help, InstrumentKind kind,
                      const HistogramOptions* options);

  mutable std::mutex mutex_;
  // Keyed by name + sorted labels: map order == exposition order.
  std::map<std::string, Entry> entries_;
  std::map<std::uint64_t, std::function<void()>> hooks_;
  std::uint64_t next_hook_id_ = 1;
};

}  // namespace obs
}  // namespace sofa

#endif  // SOFA_OBS_REGISTRY_H_
