#include "obs/exposition.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace sofa {
namespace obs {
namespace {

// Number formatting shared by both renderers: integral values print
// without a decimal point (stable golden strings, no "5.0" vs "5"
// drift), everything else through %.10g. Non-finite values render as 0 —
// neither exposition grammar admits them.
std::string FormatNumber(double value) {
  if (!std::isfinite(value)) {
    return "0";
  }
  char buffer[64];
  if (value == std::floor(value) && std::fabs(value) < 1e15) {
    std::snprintf(buffer, sizeof(buffer), "%lld",
                  static_cast<long long>(value));
  } else {
    std::snprintf(buffer, sizeof(buffer), "%.10g", value);
  }
  return buffer;
}

std::string FormatCount(std::uint64_t value) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%llu",
                static_cast<unsigned long long>(value));
  return buffer;
}

// Prometheus label-value escaping: backslash, double quote, newline.
std::string EscapePromValue(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (const char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

std::string EscapeJson(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (const char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  return out;
}

// {k="v",...} with an optional extra label appended (histogram le).
std::string PromLabels(const Labels& labels, const std::string& extra_key,
                       const std::string& extra_value) {
  if (labels.empty() && extra_key.empty()) {
    return "";
  }
  std::string out = "{";
  bool first = true;
  for (const auto& label : labels) {
    if (!first) out += ",";
    first = false;
    out += label.first + "=\"" + EscapePromValue(label.second) + "\"";
  }
  if (!extra_key.empty()) {
    if (!first) out += ",";
    out += extra_key + "=\"" + EscapePromValue(extra_value) + "\"";
  }
  out += "}";
  return out;
}

const char* KindName(InstrumentKind kind) {
  switch (kind) {
    case InstrumentKind::kCounter: return "counter";
    case InstrumentKind::kGauge: return "gauge";
    case InstrumentKind::kHistogram: return "histogram";
  }
  return "counter";
}

std::string DisplayName(const InstrumentSnapshot& snap) {
  std::string out = snap.name;
  if (!snap.labels.empty()) {
    out += "{";
    for (std::size_t i = 0; i < snap.labels.size(); ++i) {
      if (i) out += ",";
      out += snap.labels[i].first + "=" + snap.labels[i].second;
    }
    out += "}";
  }
  return out;
}

// ------------------------------------------------------------ JSON parse
//
// Minimal recursive-descent JSON reader — just enough to round-trip the
// RenderJson schema for `sofa_cli stats`. Not a general-purpose parser
// (no \uXXXX decoding beyond pass-through, no duplicate-key policy).

struct JsonValue {
  enum Type { kNull, kBool, kNumber, kString, kArray, kObject };
  Type type = kNull;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  const JsonValue* Find(const std::string& key) const {
    for (const auto& member : object) {
      if (member.first == key) return &member.second;
    }
    return nullptr;
  }
};

class JsonReader {
 public:
  explicit JsonReader(const std::string& text) : text_(text) {}

  bool Parse(JsonValue* out) {
    SkipSpace();
    if (!ParseValue(out)) return false;
    SkipSpace();
    if (pos_ != text_.size()) return Fail("trailing content");
    return true;
  }

  const std::string& error() const { return error_; }

 private:
  bool Fail(const char* message) {
    if (error_.empty()) {
      error_ = std::string(message) + " at offset " + FormatCount(pos_);
    }
    return false;
  }

  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(char expect) {
    if (pos_ < text_.size() && text_[pos_] == expect) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ParseValue(JsonValue* out) {
    SkipSpace();
    if (pos_ >= text_.size()) return Fail("unexpected end of input");
    const char c = text_[pos_];
    if (c == '{') return ParseObject(out);
    if (c == '[') return ParseArray(out);
    if (c == '"') {
      out->type = JsonValue::kString;
      return ParseString(&out->str);
    }
    if (c == 't' || c == 'f') return ParseLiteral(out);
    if (c == 'n') return ParseLiteral(out);
    return ParseNumber(out);
  }

  bool ParseLiteral(JsonValue* out) {
    static const struct { const char* text; JsonValue::Type type; bool b; }
        kLiterals[] = {{"true", JsonValue::kBool, true},
                       {"false", JsonValue::kBool, false},
                       {"null", JsonValue::kNull, false}};
    for (const auto& lit : kLiterals) {
      const std::size_t len = std::string(lit.text).size();
      if (text_.compare(pos_, len, lit.text) == 0) {
        out->type = lit.type;
        out->boolean = lit.b;
        pos_ += len;
        return true;
      }
    }
    return Fail("invalid literal");
  }

  bool ParseNumber(JsonValue* out) {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return Fail("invalid number");
    char* end = nullptr;
    const std::string token = text_.substr(start, pos_ - start);
    out->number = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') return Fail("invalid number");
    out->type = JsonValue::kNumber;
    return true;
  }

  bool ParseString(std::string* out) {
    if (!Consume('"')) return Fail("expected string");
    out->clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c == '\\') {
        if (pos_ >= text_.size()) return Fail("unterminated escape");
        const char esc = text_[pos_++];
        switch (esc) {
          case '"': *out += '"'; break;
          case '\\': *out += '\\'; break;
          case '/': *out += '/'; break;
          case 'n': *out += '\n'; break;
          case 'r': *out += '\r'; break;
          case 't': *out += '\t'; break;
          case 'b': *out += '\b'; break;
          case 'f': *out += '\f'; break;
          case 'u':
            // Pass \uXXXX through undecoded; the stats schema never
            // emits non-ASCII escapes.
            if (pos_ + 4 > text_.size()) return Fail("bad \\u escape");
            *out += "\\u" + text_.substr(pos_, 4);
            pos_ += 4;
            break;
          default: return Fail("bad escape");
        }
      } else {
        *out += c;
      }
    }
    return Fail("unterminated string");
  }

  bool ParseArray(JsonValue* out) {
    Consume('[');
    out->type = JsonValue::kArray;
    SkipSpace();
    if (Consume(']')) return true;
    while (true) {
      JsonValue element;
      if (!ParseValue(&element)) return false;
      out->array.push_back(std::move(element));
      SkipSpace();
      if (Consume(']')) return true;
      if (!Consume(',')) return Fail("expected , or ] in array");
    }
  }

  bool ParseObject(JsonValue* out) {
    Consume('{');
    out->type = JsonValue::kObject;
    SkipSpace();
    if (Consume('}')) return true;
    while (true) {
      SkipSpace();
      std::string key;
      if (!ParseString(&key)) return false;
      SkipSpace();
      if (!Consume(':')) return Fail("expected : in object");
      JsonValue value;
      if (!ParseValue(&value)) return false;
      out->object.emplace_back(std::move(key), std::move(value));
      SkipSpace();
      if (Consume('}')) return true;
      if (!Consume(',')) return Fail("expected , or } in object");
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
  std::string error_;
};

bool SetError(std::string* error, const std::string& message) {
  if (error != nullptr) *error = message;
  return false;
}

double NumberOr(const JsonValue* value, double fallback) {
  return value != nullptr && value->type == JsonValue::kNumber ? value->number
                                                              : fallback;
}

}  // namespace

std::string RenderPrometheus(
    const std::vector<InstrumentSnapshot>& snapshot) {
  std::string out;
  std::string previous_name;
  for (const InstrumentSnapshot& snap : snapshot) {
    if (snap.name != previous_name) {
      previous_name = snap.name;
      if (!snap.help.empty()) {
        out += "# HELP " + snap.name + " " + snap.help + "\n";
      }
      out += "# TYPE " + snap.name + " ";
      out += KindName(snap.kind);
      out += "\n";
    }
    switch (snap.kind) {
      case InstrumentKind::kCounter:
        out += snap.name + PromLabels(snap.labels, "", "") + " " +
               FormatCount(snap.counter) + "\n";
        break;
      case InstrumentKind::kGauge:
        out += snap.name + PromLabels(snap.labels, "", "") + " " +
               FormatNumber(snap.gauge) + "\n";
        break;
      case InstrumentKind::kHistogram: {
        for (const HistogramBucket& bucket : snap.buckets) {
          const std::string le =
              bucket.overflow ? "+Inf" : FormatNumber(bucket.upper_edge);
          out += snap.name + "_bucket" + PromLabels(snap.labels, "le", le) +
                 " " + FormatCount(bucket.cumulative) + "\n";
        }
        out += snap.name + "_sum" + PromLabels(snap.labels, "", "") + " " +
               FormatNumber(snap.sum) + "\n";
        out += snap.name + "_count" + PromLabels(snap.labels, "", "") + " " +
               FormatCount(snap.count) + "\n";
        break;
      }
    }
  }
  return out;
}

std::string RenderJson(const std::vector<InstrumentSnapshot>& snapshot) {
  std::string out = "{\n  \"metrics\": [";
  for (std::size_t i = 0; i < snapshot.size(); ++i) {
    const InstrumentSnapshot& snap = snapshot[i];
    out += i == 0 ? "\n" : ",\n";
    out += "    {\"name\": \"" + EscapeJson(snap.name) + "\", \"type\": \"";
    out += KindName(snap.kind);
    out += "\"";
    if (!snap.labels.empty()) {
      out += ", \"labels\": {";
      for (std::size_t j = 0; j < snap.labels.size(); ++j) {
        if (j) out += ", ";
        out += "\"" + EscapeJson(snap.labels[j].first) + "\": \"" +
               EscapeJson(snap.labels[j].second) + "\"";
      }
      out += "}";
    }
    if (!snap.help.empty()) {
      out += ", \"help\": \"" + EscapeJson(snap.help) + "\"";
    }
    switch (snap.kind) {
      case InstrumentKind::kCounter:
        out += ", \"value\": " + FormatCount(snap.counter);
        break;
      case InstrumentKind::kGauge:
        out += ", \"value\": " + FormatNumber(snap.gauge);
        break;
      case InstrumentKind::kHistogram: {
        out += ", \"count\": " + FormatCount(snap.count);
        out += ", \"sum\": " + FormatNumber(snap.sum);
        out += ", \"max\": " + FormatNumber(snap.max);
        out += ", \"p50\": " + FormatNumber(snap.p50);
        out += ", \"p95\": " + FormatNumber(snap.p95);
        out += ", \"p99\": " + FormatNumber(snap.p99);
        out += ", \"buckets\": [";
        for (std::size_t j = 0; j < snap.buckets.size(); ++j) {
          const HistogramBucket& bucket = snap.buckets[j];
          if (j) out += ", ";
          out += "{\"le\": ";
          out += bucket.overflow ? "\"+Inf\""
                                 : FormatNumber(bucket.upper_edge);
          out += ", \"count\": " + FormatCount(bucket.cumulative) + "}";
        }
        out += "]";
        break;
      }
    }
    out += "}";
  }
  out += "\n  ]\n}\n";
  return out;
}

bool ParseStatsJson(const std::string& text,
                    std::vector<InstrumentSnapshot>* out,
                    std::string* error) {
  out->clear();
  JsonValue root;
  JsonReader reader(text);
  if (!reader.Parse(&root)) {
    return SetError(error, reader.error());
  }
  if (root.type != JsonValue::kObject) {
    return SetError(error, "root is not an object");
  }
  const JsonValue* metrics = root.Find("metrics");
  if (metrics == nullptr || metrics->type != JsonValue::kArray) {
    return SetError(error, "missing \"metrics\" array");
  }
  for (const JsonValue& metric : metrics->array) {
    if (metric.type != JsonValue::kObject) {
      return SetError(error, "metric entry is not an object");
    }
    InstrumentSnapshot snap;
    const JsonValue* name = metric.Find("name");
    const JsonValue* type = metric.Find("type");
    if (name == nullptr || name->type != JsonValue::kString ||
        type == nullptr || type->type != JsonValue::kString) {
      return SetError(error, "metric entry missing name/type");
    }
    snap.name = name->str;
    if (type->str == "counter") {
      snap.kind = InstrumentKind::kCounter;
      snap.counter =
          static_cast<std::uint64_t>(NumberOr(metric.Find("value"), 0.0));
    } else if (type->str == "gauge") {
      snap.kind = InstrumentKind::kGauge;
      snap.gauge = NumberOr(metric.Find("value"), 0.0);
    } else if (type->str == "histogram") {
      snap.kind = InstrumentKind::kHistogram;
      snap.count =
          static_cast<std::uint64_t>(NumberOr(metric.Find("count"), 0.0));
      snap.sum = NumberOr(metric.Find("sum"), 0.0);
      snap.max = NumberOr(metric.Find("max"), 0.0);
      snap.p50 = NumberOr(metric.Find("p50"), 0.0);
      snap.p95 = NumberOr(metric.Find("p95"), 0.0);
      snap.p99 = NumberOr(metric.Find("p99"), 0.0);
      const JsonValue* buckets = metric.Find("buckets");
      if (buckets != nullptr && buckets->type == JsonValue::kArray) {
        for (const JsonValue& entry : buckets->array) {
          if (entry.type != JsonValue::kObject) continue;
          HistogramBucket bucket;
          const JsonValue* le = entry.Find("le");
          if (le != nullptr && le->type == JsonValue::kString) {
            bucket.overflow = true;
          } else {
            bucket.upper_edge = NumberOr(le, 0.0);
          }
          bucket.cumulative =
              static_cast<std::uint64_t>(NumberOr(entry.Find("count"), 0.0));
          snap.buckets.push_back(bucket);
        }
      }
    } else {
      return SetError(error, "unknown metric type: " + type->str);
    }
    const JsonValue* help = metric.Find("help");
    if (help != nullptr && help->type == JsonValue::kString) {
      snap.help = help->str;
    }
    const JsonValue* labels = metric.Find("labels");
    if (labels != nullptr && labels->type == JsonValue::kObject) {
      for (const auto& member : labels->object) {
        if (member.second.type == JsonValue::kString) {
          snap.labels.emplace_back(member.first, member.second.str);
        }
      }
    }
    out->push_back(std::move(snap));
  }
  return true;
}

std::string RenderPretty(const std::vector<InstrumentSnapshot>& snapshot) {
  std::string counters, gauges, histograms;
  char line[512];
  for (const InstrumentSnapshot& snap : snapshot) {
    const std::string display = DisplayName(snap);
    switch (snap.kind) {
      case InstrumentKind::kCounter:
        std::snprintf(line, sizeof(line), "  %-56s %s\n", display.c_str(),
                      FormatCount(snap.counter).c_str());
        counters += line;
        break;
      case InstrumentKind::kGauge:
        std::snprintf(line, sizeof(line), "  %-56s %s\n", display.c_str(),
                      FormatNumber(snap.gauge).c_str());
        gauges += line;
        break;
      case InstrumentKind::kHistogram: {
        const double mean =
            snap.count == 0 ? 0.0
                            : snap.sum / static_cast<double>(snap.count);
        std::snprintf(line, sizeof(line),
                      "  %-56s count=%s mean=%.4g p50=%.4g p95=%.4g "
                      "p99=%.4g max=%.4g\n",
                      display.c_str(), FormatCount(snap.count).c_str(), mean,
                      snap.p50, snap.p95, snap.p99, snap.max);
        histograms += line;
        break;
      }
    }
  }
  std::string out;
  if (!counters.empty()) out += "counters:\n" + counters;
  if (!gauges.empty()) out += "gauges:\n" + gauges;
  if (!histograms.empty()) out += "histograms:\n" + histograms;
  if (out.empty()) out = "(no metrics)\n";
  return out;
}

namespace {

// "(+5, +12.5%)" — the relative part is dropped when the base is zero
// (a new counter has no meaningful percentage).
std::string FormatChange(double before, double after) {
  const double delta = after - before;
  std::string signed_delta = FormatNumber(delta);
  if (delta >= 0.0) {
    signed_delta.insert(signed_delta.begin(), '+');
  }
  char buffer[96];
  if (before != 0.0) {
    std::snprintf(buffer, sizeof(buffer), "(%s, %+.1f%%)",
                  signed_delta.c_str(), 100.0 * delta / before);
  } else {
    std::snprintf(buffer, sizeof(buffer), "(%s)", signed_delta.c_str());
  }
  return buffer;
}

const InstrumentSnapshot* FindByDisplay(
    const std::vector<InstrumentSnapshot>& snapshot,
    const std::string& display) {
  for (const InstrumentSnapshot& snap : snapshot) {
    if (DisplayName(snap) == display) {
      return &snap;
    }
  }
  return nullptr;
}

}  // namespace

std::string RenderStatsDiff(const std::vector<InstrumentSnapshot>& before,
                            const std::vector<InstrumentSnapshot>& after) {
  std::string counters, gauges, histograms, removed, added;
  char line[512];
  for (const InstrumentSnapshot& b : after) {
    const std::string display = DisplayName(b);
    const InstrumentSnapshot* a = FindByDisplay(before, display);
    if (a == nullptr || a->kind != b.kind) {
      added += "  " + display + "\n";
      continue;
    }
    switch (b.kind) {
      case InstrumentKind::kCounter:
        if (a->counter == b.counter) {
          continue;  // unchanged counters stay out of the diff
        }
        std::snprintf(line, sizeof(line), "  %-56s %s -> %s  %s\n",
                      display.c_str(), FormatCount(a->counter).c_str(),
                      FormatCount(b.counter).c_str(),
                      FormatChange(static_cast<double>(a->counter),
                                   static_cast<double>(b.counter))
                          .c_str());
        counters += line;
        break;
      case InstrumentKind::kGauge:
        if (a->gauge == b.gauge) {
          continue;
        }
        std::snprintf(line, sizeof(line), "  %-56s %s -> %s  %s\n",
                      display.c_str(), FormatNumber(a->gauge).c_str(),
                      FormatNumber(b.gauge).c_str(),
                      FormatChange(a->gauge, b.gauge).c_str());
        gauges += line;
        break;
      case InstrumentKind::kHistogram:
        if (a->count == b.count && a->p50 == b.p50 && a->p95 == b.p95 &&
            a->p99 == b.p99) {
          continue;
        }
        std::snprintf(line, sizeof(line),
                      "  %-56s count %s -> %s  p50 %.4g -> %.4g  "
                      "p95 %.4g -> %.4g  p99 %.4g -> %.4g\n",
                      display.c_str(), FormatCount(a->count).c_str(),
                      FormatCount(b.count).c_str(), a->p50, b.p50, a->p95,
                      b.p95, a->p99, b.p99);
        histograms += line;
        break;
    }
  }
  for (const InstrumentSnapshot& a : before) {
    const std::string display = DisplayName(a);
    const InstrumentSnapshot* b = FindByDisplay(after, display);
    if (b == nullptr || b->kind != a.kind) {
      removed += "  " + display + "\n";
    }
  }
  std::string out;
  if (!counters.empty()) out += "counters:\n" + counters;
  if (!gauges.empty()) out += "gauges:\n" + gauges;
  if (!histograms.empty()) out += "histograms:\n" + histograms;
  if (!added.empty()) out += "only in after:\n" + added;
  if (!removed.empty()) out += "only in before:\n" + removed;
  if (out.empty()) out = "(no differences)\n";
  return out;
}

}  // namespace obs
}  // namespace sofa
