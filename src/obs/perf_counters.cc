#include "obs/perf_counters.h"

#include <atomic>
#include <chrono>
#include <cstring>

#if defined(__linux__)
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>
#endif

#if defined(__x86_64__) || defined(__i386__)
#include <x86intrin.h>
#endif

namespace sofa {
namespace obs {
namespace {

std::atomic<bool> g_force_fallback{false};

// Field slots of PerfSample, in open order.
enum EventKind { kCycles = 0, kInstructions, kLlcMisses, kStalledCycles };

std::uint64_t FallbackTicks() {
#if defined(__x86_64__) || defined(__i386__)
  return __rdtsc();
#else
  return static_cast<std::uint64_t>(
      std::chrono::steady_clock::now().time_since_epoch().count());
#endif
}

#if defined(__linux__)
int OpenEvent(std::uint32_t type, std::uint64_t config) {
  perf_event_attr attr;
  std::memset(&attr, 0, sizeof(attr));
  attr.size = sizeof(attr);
  attr.type = type;
  attr.config = config;
  attr.disabled = 1;
  attr.exclude_kernel = 1;  // lower perf_event_paranoid requirement
  attr.exclude_hv = 1;
  // pid=0, cpu=-1: this thread, wherever it runs.
  return static_cast<int>(
      syscall(__NR_perf_event_open, &attr, 0, -1, -1, 0));
}
#endif

}  // namespace

PerfCounters::PerfCounters() {
  for (int i = 0; i < kMaxEvents; ++i) {
    fds_[i] = -1;
    kind_[i] = 0;
  }
#if defined(__linux__)
  if (!g_force_fallback.load(std::memory_order_relaxed)) {
    struct {
      int kind;
      std::uint64_t config;
    } const events[kMaxEvents] = {
        {kCycles, PERF_COUNT_HW_CPU_CYCLES},
        {kInstructions, PERF_COUNT_HW_INSTRUCTIONS},
        {kLlcMisses, PERF_COUNT_HW_CACHE_MISSES},
        {kStalledCycles, PERF_COUNT_HW_STALLED_CYCLES_BACKEND},
    };
    for (const auto& event : events) {
      const int fd = OpenEvent(PERF_TYPE_HARDWARE, event.config);
      if (fd >= 0) {
        fds_[num_events_] = fd;
        kind_[num_events_] = event.kind;
        ++num_events_;
      }
      // A denied event is simply absent — partial sets are fine.
    }
  }
#endif
}

PerfCounters::~PerfCounters() {
#if defined(__linux__)
  for (int i = 0; i < num_events_; ++i) {
    close(fds_[i]);
  }
#endif
}

void PerfCounters::Start() {
  if (num_events_ == 0) {
    fallback_start_ = FallbackTicks();
    return;
  }
#if defined(__linux__)
  for (int i = 0; i < num_events_; ++i) {
    ioctl(fds_[i], PERF_EVENT_IOC_RESET, 0);
    ioctl(fds_[i], PERF_EVENT_IOC_ENABLE, 0);
  }
#endif
}

PerfSample PerfCounters::Stop() {
  PerfSample sample;
  if (num_events_ == 0) {
    sample.cycles = FallbackTicks() - fallback_start_;
    sample.hardware = false;
    return sample;
  }
#if defined(__linux__)
  sample.hardware = true;
  for (int i = 0; i < num_events_; ++i) {
    ioctl(fds_[i], PERF_EVENT_IOC_DISABLE, 0);
    std::uint64_t value = 0;
    if (read(fds_[i], &value, sizeof(value)) != sizeof(value)) {
      continue;  // counter stays 0; never fail the query
    }
    switch (kind_[i]) {
      case kCycles:
        sample.cycles = value;
        break;
      case kInstructions:
        sample.instructions = value;
        break;
      case kLlcMisses:
        sample.llc_misses = value;
        break;
      case kStalledCycles:
        sample.stalled_cycles = value;
        break;
    }
  }
#endif
  return sample;
}

PerfCounters& PerfCounters::ForCurrentThread() {
  thread_local PerfCounters instance;
  return instance;
}

void PerfCounters::ForceFallback(bool on) {
  g_force_fallback.store(on, std::memory_order_relaxed);
}

bool PerfCounters::fallback_forced() {
  return g_force_fallback.load(std::memory_order_relaxed);
}

}  // namespace obs
}  // namespace sofa
