#include "obs/registry.h"

#include <algorithm>

#include "util/check.h"

namespace sofa {
namespace obs {
namespace {

// Encodes name + sorted labels into one map key. \x1f/\x1e cannot appear
// in metric names or label strings (both are printable identifiers), so
// the encoding cannot collide.
std::string EncodeKey(const std::string& name, const Labels& labels) {
  std::string key = name;
  for (const auto& label : labels) {
    key += '\x1f';
    key += label.first;
    key += '\x1e';
    key += label.second;
  }
  return key;
}

}  // namespace

void Gauge::Add(double delta) {
  double current = value_.load(std::memory_order_relaxed);
  while (!value_.compare_exchange_weak(current, current + delta,
                                       std::memory_order_relaxed)) {
  }
}

Registry::Entry* Registry::FindOrCreate(const std::string& name,
                                        Labels* labels,
                                        const std::string& help,
                                        InstrumentKind kind,
                                        const HistogramOptions* options) {
  SOFA_CHECK(!name.empty());
  std::sort(labels->begin(), labels->end());
  const std::string key = EncodeKey(name, *labels);
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    // Same name+labels must keep the same kind: metric names are a
    // contract between layers, and a silent kind flip would corrupt
    // every exposition consumer.
    SOFA_CHECK(it->second.kind == kind);
    return &it->second;
  }
  Entry entry;
  entry.kind = kind;
  entry.name = name;
  entry.labels = *labels;
  entry.help = help;
  switch (kind) {
    case InstrumentKind::kCounter:
      entry.counter.reset(new Counter());
      break;
    case InstrumentKind::kGauge:
      entry.gauge.reset(new Gauge());
      break;
    case InstrumentKind::kHistogram:
      entry.histogram.reset(new Histogram(*options));
      break;
  }
  auto inserted = entries_.emplace(key, std::move(entry));
  return &inserted.first->second;
}

Counter* Registry::GetCounter(const std::string& name, Labels labels,
                              const std::string& help) {
  return FindOrCreate(name, &labels, help, InstrumentKind::kCounter, nullptr)
      ->counter.get();
}

Gauge* Registry::GetGauge(const std::string& name, Labels labels,
                          const std::string& help) {
  return FindOrCreate(name, &labels, help, InstrumentKind::kGauge, nullptr)
      ->gauge.get();
}

Histogram* Registry::GetHistogram(const std::string& name,
                                  const HistogramOptions& options,
                                  Labels labels, const std::string& help) {
  return FindOrCreate(name, &labels, help, InstrumentKind::kHistogram,
                      &options)
      ->histogram.get();
}

std::uint64_t Registry::AddCollectHook(std::function<void()> hook) {
  std::lock_guard<std::mutex> lock(mutex_);
  const std::uint64_t id = next_hook_id_++;
  hooks_.emplace(id, std::move(hook));
  return id;
}

void Registry::RemoveCollectHook(std::uint64_t id) {
  std::lock_guard<std::mutex> lock(mutex_);
  hooks_.erase(id);
}

std::vector<InstrumentSnapshot> Registry::Collect() const {
  // Hooks run outside the registry mutex: they may take their owner's
  // lock (e.g. Compactor::Metrics), and holding both here would order
  // the locks against every other path.
  std::vector<std::function<void()>> hooks;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    hooks.reserve(hooks_.size());
    for (const auto& entry : hooks_) {
      hooks.push_back(entry.second);
    }
  }
  for (const auto& hook : hooks) {
    hook();
  }

  std::vector<InstrumentSnapshot> out;
  std::lock_guard<std::mutex> lock(mutex_);
  out.reserve(entries_.size());
  for (const auto& pair : entries_) {
    const Entry& entry = pair.second;
    InstrumentSnapshot snap;
    snap.name = entry.name;
    snap.labels = entry.labels;
    snap.help = entry.help;
    snap.kind = entry.kind;
    switch (entry.kind) {
      case InstrumentKind::kCounter:
        snap.counter = entry.counter->Value();
        break;
      case InstrumentKind::kGauge:
        snap.gauge = entry.gauge->Value();
        break;
      case InstrumentKind::kHistogram: {
        const LogHistogram& h = entry.histogram->data();
        snap.count = h.TotalCount();
        snap.sum = h.Sum();
        snap.max = h.MaxValue();
        snap.p50 = h.Percentile(50.0);
        snap.p95 = h.Percentile(95.0);
        snap.p99 = h.Percentile(99.0);
        std::uint64_t cumulative = 0;
        const std::size_t buckets = h.NumBuckets();
        for (std::size_t b = 0; b + 1 < buckets; ++b) {
          const std::uint64_t count = h.BucketCount(b);
          if (count == 0) {
            continue;
          }
          cumulative += count;
          HistogramBucket bucket;
          bucket.upper_edge = h.BucketUpperEdge(b);
          bucket.cumulative = cumulative;
          snap.buckets.push_back(bucket);
        }
        // The terminal bucket absorbs overflow and is always rendered as
        // the +Inf bucket. Deriving the total from the bucket walk (not
        // TotalCount) keeps _count == the +Inf cumulative even when
        // records land concurrently with this snapshot.
        cumulative += h.BucketCount(buckets - 1);
        HistogramBucket overflow;
        overflow.overflow = true;
        overflow.cumulative = cumulative;
        snap.buckets.push_back(overflow);
        snap.count = cumulative;
        break;
      }
    }
    out.push_back(std::move(snap));
  }
  return out;
}

}  // namespace obs
}  // namespace sofa
