#include "obs/slow_query_log.h"

#include <utility>

namespace sofa {
namespace obs {

SlowQueryLog::SlowQueryLog(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {}

void SlowQueryLog::Push(TraceRecord record) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (ring_.size() == capacity_) {
    ring_.pop_front();
    ++evicted_;
  }
  ring_.push_back(std::move(record));
  ++pushed_;
}

std::vector<TraceRecord> SlowQueryLog::Dump() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return std::vector<TraceRecord>(ring_.begin(), ring_.end());
}

std::size_t SlowQueryLog::Size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return ring_.size();
}

std::uint64_t SlowQueryLog::TotalPushed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return pushed_;
}

std::uint64_t SlowQueryLog::TotalEvicted() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return evicted_;
}

void SlowQueryLog::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  ring_.clear();
}

}  // namespace obs
}  // namespace sofa
