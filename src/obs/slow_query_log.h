// Bounded ring buffer of slow-query traces. The service pushes a
// finished TraceRecord whenever a query exceeds the configured latency
// threshold (or expires its deadline); the oldest record is evicted when
// the ring is full. Dump() hands back a copy for printing on demand and
// at shutdown.

#ifndef SOFA_OBS_SLOW_QUERY_LOG_H_
#define SOFA_OBS_SLOW_QUERY_LOG_H_

#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <vector>

#include "obs/trace.h"

namespace sofa {
namespace obs {

class SlowQueryLog {
 public:
  explicit SlowQueryLog(std::size_t capacity);

  SlowQueryLog(const SlowQueryLog&) = delete;
  SlowQueryLog& operator=(const SlowQueryLog&) = delete;

  /// Appends a record, evicting the oldest when full. Thread-safe.
  void Push(TraceRecord record);

  /// Oldest-first copy of the retained records.
  std::vector<TraceRecord> Dump() const;

  std::size_t Size() const;
  std::size_t capacity() const { return capacity_; }

  /// Lifetime totals — pushed counts every Push(), evicted counts the
  /// records that aged out of the ring.
  std::uint64_t TotalPushed() const;
  std::uint64_t TotalEvicted() const;

  void Clear();

 private:
  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::deque<TraceRecord> ring_;
  std::uint64_t pushed_ = 0;
  std::uint64_t evicted_ = 0;
};

}  // namespace obs
}  // namespace sofa

#endif  // SOFA_OBS_SLOW_QUERY_LOG_H_
