// iSAX summarization (paper Section IV-D) as a SummaryScheme.
//
// Projection: PAA segment means. Quantization: the fixed N(0,1)
// equal-depth breakpoints, identical for every dimension. LBD weight per
// dimension: the segment length (n/l when divisible), which makes
// Σ wᵢ·mindistᵢ² the classic iSAX mindist² and a valid lower bound of the
// squared Euclidean distance of z-normalized series.
//
// This scheme plugged into the tree index *is* the MESSI baseline.

#ifndef SOFA_SAX_SAX_SCHEME_H_
#define SOFA_SAX_SAX_SCHEME_H_

#include <cstddef>
#include <string>

#include "quant/summary_scheme.h"

namespace sofa {
namespace sax {

/// Fixed (data-independent) SAX summarization.
class SaxScheme : public quant::SummaryScheme {
 public:
  /// Builds the scheme for series of length n, `word_length` segments and a
  /// power-of-two alphabet (default 256, the paper's setting).
  SaxScheme(std::size_t series_length, std::size_t word_length,
            std::size_t alphabet = 256);

  std::string name() const override { return "iSAX"; }

  std::size_t series_length() const override { return series_length_; }

  using quant::SummaryScheme::Project;
  void Project(const float* series, float* values_out,
               Scratch* scratch) const override;

 private:
  std::size_t series_length_;
};

}  // namespace sax
}  // namespace sofa

#endif  // SOFA_SAX_SAX_SCHEME_H_
