#include "sax/isax.h"

namespace sofa {
namespace sax {

bool WordMatchesPrefix(const std::uint8_t* word, const std::uint8_t* prefixes,
                       const std::uint8_t* cards, std::size_t word_length,
                       std::uint32_t bits) {
  for (std::size_t dim = 0; dim < word_length; ++dim) {
    if (cards[dim] == 0) {
      continue;
    }
    if (SymbolPrefix(word[dim], bits, cards[dim]) != prefixes[dim]) {
      return false;
    }
  }
  return true;
}

std::string WordToString(const std::uint8_t* word, std::size_t word_length,
                         std::size_t alphabet) {
  std::string out;
  if (alphabet <= 26) {
    out.reserve(word_length);
    for (std::size_t i = 0; i < word_length; ++i) {
      out.push_back(static_cast<char>('a' + word[i]));
    }
    return out;
  }
  for (std::size_t i = 0; i < word_length; ++i) {
    if (i != 0) {
      out.push_back('.');
    }
    out += std::to_string(static_cast<int>(word[i]));
  }
  return out;
}

}  // namespace sax
}  // namespace sofa
