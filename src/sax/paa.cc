#include "sax/paa.h"

#include "util/check.h"

namespace sofa {
namespace sax {

void Paa(const float* series, std::size_t n, std::size_t segments,
         float* out) {
  SOFA_DCHECK(segments > 0 && segments <= n);
  for (std::size_t i = 0; i < segments; ++i) {
    const std::size_t begin = SegmentStart(n, segments, i);
    const std::size_t end = SegmentStart(n, segments, i + 1);
    double sum = 0.0;
    for (std::size_t t = begin; t < end; ++t) {
      sum += series[t];
    }
    out[i] = static_cast<float>(sum / static_cast<double>(end - begin));
  }
}

}  // namespace sax
}  // namespace sofa
