// Piecewise Aggregate Approximation (PAA).
//
// Splits a series into `segments` contiguous pieces and represents each by
// its mean. For lengths not divisible by the segment count, segments are
// the integer partitions [⌊i·n/l⌋, ⌊(i+1)·n/l⌋); the corresponding lower
// bound then weights each segment by its actual length (Jensen per
// segment), generalizing the classic √(n/l) factor.

#ifndef SOFA_SAX_PAA_H_
#define SOFA_SAX_PAA_H_

#include <cstddef>

namespace sofa {
namespace sax {

/// Start offset of segment `i` of `segments` over a length-n series.
inline std::size_t SegmentStart(std::size_t n, std::size_t segments,
                                std::size_t i) {
  return i * n / segments;
}

/// Length (in points) of segment `i`.
inline std::size_t SegmentLength(std::size_t n, std::size_t segments,
                                 std::size_t i) {
  return SegmentStart(n, segments, i + 1) - SegmentStart(n, segments, i);
}

/// Writes the `segments` segment means of `series` into `out`.
void Paa(const float* series, std::size_t n, std::size_t segments,
         float* out);

}  // namespace sax
}  // namespace sofa

#endif  // SOFA_SAX_PAA_H_
