#include "sax/sax_scheme.h"

#include "quant/normal_quantiles.h"
#include "sax/paa.h"
#include "util/check.h"

namespace sofa {
namespace sax {

SaxScheme::SaxScheme(std::size_t series_length, std::size_t word_length,
                     std::size_t alphabet)
    : SummaryScheme(word_length, alphabet), series_length_(series_length) {
  SOFA_CHECK(word_length <= series_length);
  const std::vector<float> edges = quant::NormalBreakpoints(alphabet);
  for (std::size_t dim = 0; dim < word_length; ++dim) {
    table_.SetDimension(dim, edges);
    weights_[dim] = static_cast<float>(
        SegmentLength(series_length, word_length, dim));
  }
}

void SaxScheme::Project(const float* series, float* values_out,
                        Scratch* /*scratch*/) const {
  Paa(series, series_length_, word_length(), values_out);
}

}  // namespace sax
}  // namespace sofa
