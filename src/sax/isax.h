// iSAX word helpers: textual rendering and variable-cardinality prefix
// relations shared by the tree index and its tests.
//
// A full-cardinality word is one 8-bit symbol per dimension. A node summary
// keeps, per dimension, only the top `card` bits of the symbol (its
// "cardinality"); a series belongs under a node iff every dimension's
// symbol starts with the node's prefix bits.

#ifndef SOFA_SAX_ISAX_H_
#define SOFA_SAX_ISAX_H_

#include <cstddef>
#include <cstdint>
#include <string>

namespace sofa {
namespace sax {

/// Top `card_bits` bits of an 8-bit symbol under total width `bits`.
inline std::uint8_t SymbolPrefix(std::uint8_t symbol, std::uint32_t bits,
                                 std::uint32_t card_bits) {
  return static_cast<std::uint8_t>(symbol >> (bits - card_bits));
}

/// True if `word` falls under the node summary (`prefixes`, `cards`);
/// dimensions with cardinality 0 are unconstrained.
bool WordMatchesPrefix(const std::uint8_t* word, const std::uint8_t* prefixes,
                       const std::uint8_t* cards, std::size_t word_length,
                       std::uint32_t bits);

/// Renders a word as letters ('a' + symbol) for small alphabets, or
/// dot-separated numbers for large ones — e.g. "cbed" or "12.0.255.3".
std::string WordToString(const std::uint8_t* word, std::size_t word_length,
                         std::size_t alphabet);

}  // namespace sax
}  // namespace sofa

#endif  // SOFA_SAX_ISAX_H_
