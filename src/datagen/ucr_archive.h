// A UCR-archive-like collection — substitute for the ~120-dataset UCR
// classification archive used in the paper's TLB ablation (Table V).
//
// 24 small train/test datasets spanning heterogeneous shape families
// (sines, chirps, square/triangle waves, bumps, walks, bursts, steps,
// ECG-like beats …) at several series lengths. Each dataset mixes a few
// parameter "classes" like a classification problem; the ablation only
// needs the train split for learning SFA and the test split as queries.

#ifndef SOFA_DATAGEN_UCR_ARCHIVE_H_
#define SOFA_DATAGEN_UCR_ARCHIVE_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "core/dataset.h"

namespace sofa {
namespace datagen {

/// One archive entry: a named train/test pair of z-normalized datasets.
struct UcrLikeDataset {
  std::string name;
  Dataset train;
  Dataset test;
};

/// Archive generation parameters.
struct UcrArchiveOptions {
  std::size_t train_per_dataset = 60;
  std::size_t test_per_dataset = 20;
  std::uint64_t seed = 0x0c4;
};

/// Generates the full 24-dataset archive (deterministic per seed).
std::vector<UcrLikeDataset> MakeUcrArchiveLike(
    const UcrArchiveOptions& options = {});

}  // namespace datagen
}  // namespace sofa

#endif  // SOFA_DATAGEN_UCR_ARCHIVE_H_
