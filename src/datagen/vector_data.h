// Synthetic vector datasets — substitutes for SIFT1b, BigANN and Deep1b.
//
// Vector data has no inherent ordering (paper Section III), so when treated
// as a "series" its variance spreads across high frequencies — exactly the
// regime where PAA/SAX summarization collapses. SIFT-style vectors are
// modelled as non-negative gradient-histogram blocks (sparse, spiky →
// high-frequency variance, heavy right skew like Fig. 1's SIFT1b panel);
// Deep-style vectors as smooth low-rank embeddings (the one vector dataset
// where the paper's SOFA gains are smallest).

#ifndef SOFA_DATAGEN_VECTOR_DATA_H_
#define SOFA_DATAGEN_VECTOR_DATA_H_

#include <cstddef>
#include <vector>

#include "util/rng.h"

namespace sofa {
namespace datagen {

/// SIFT/BigANN-like generator: blocks of exponentially distributed
/// non-negative bins with per-block energy scaling. Not thread-safe.
class SiftLikeGenerator {
 public:
  /// `length` = vector dimensionality (128 for SIFT1b, 100 for BigANN);
  /// `block` = histogram block size (8 orientations in real SIFT).
  SiftLikeGenerator(std::size_t length, std::size_t block = 8);

  std::size_t length() const { return length_; }

  /// Generates a z-normalized vector-as-series.
  void Generate(Rng* rng, float* out);

 private:
  std::size_t length_;
  std::size_t block_;
};

/// Deep1b-like generator: L2-normalized smooth low-rank embeddings
/// x = W·g with a fixed smooth mixing matrix W (per dataset) and
/// per-vector Gaussian factors g. Not thread-safe.
class DeepLikeGenerator {
 public:
  /// `length` = embedding dimensionality (96 for Deep1b); `rank` = latent
  /// factor count; `dataset_seed` fixes the mixing matrix.
  DeepLikeGenerator(std::size_t length, std::size_t rank,
                    std::uint64_t dataset_seed);

  std::size_t length() const { return length_; }

  void Generate(Rng* rng, float* out);

 private:
  std::size_t length_;
  std::size_t rank_;
  std::vector<float> mixing_;  // length_ × rank_
  std::vector<float> factors_;
};

}  // namespace datagen
}  // namespace sofa

#endif  // SOFA_DATAGEN_VECTOR_DATA_H_
