// The benchmark dataset registry — synthetic substitutes for the paper's
// 17 datasets (Table I).
//
// Each spec mirrors the real dataset's series length and records its paper
// series count; the generator family and its frequency parameters are
// chosen so the *spectral-variance profile* — the property that drives
// every SOFA-vs-MESSI result in the paper (Figs. 1, 12, 13) — spans the
// same low→high frequency spread: LenDB/SCEDC/Meier2019JGR as
// high-frequency seismic networks, SIFT1b/BigANN as unordered spiky
// vectors, ISC/PNW/SALD/Deep1b as smooth low-frequency collections.
// See DESIGN.md §3 for the substitution rationale.

#ifndef SOFA_DATAGEN_DATASETS_H_
#define SOFA_DATAGEN_DATASETS_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "core/dataset.h"
#include "datagen/seismic.h"

namespace sofa {

class ThreadPool;

namespace datagen {

/// Generator family of a dataset.
enum class Family {
  kSeismic,     // SeismicGenerator (12 SeisBench datasets)
  kSiftVector,  // SiftLikeGenerator (SIFT1b, BigANN)
  kDeepVector,  // DeepLikeGenerator (Deep1b)
  kAstro,       // power-law light curves with flares (Astro)
  kNeuro,       // smooth power-law + slow oscillation (SALD)
};

/// Static description of one benchmark dataset.
struct DatasetSpec {
  std::string name;
  Family family = Family::kSeismic;
  std::size_t series_length = 256;
  std::uint64_t paper_count = 0;  // series count in the paper's Table I
  SeismicParams seismic;          // kSeismic parameters
  double power_beta = 1.5;        // kAstro/kNeuro spectral slope
  std::size_t sift_block = 8;     // kSiftVector block size
  std::size_t deep_rank = 24;     // kDeepVector latent rank

  /// Cluster template weight (see GenerateOptions::cluster_mix). Vector
  /// datasets use tighter clusters: their summaries are weaker (16 values
  /// of an unordered vector), so near neighbors must be nearer for any
  /// lower bound to prune — as with real descriptor data.
  double cluster_mix = 0.8;
};

/// All 17 specs, in the paper's Table I order.
const std::vector<DatasetSpec>& AllDatasetSpecs();

/// Spec by (case-insensitive) name, or nullptr.
const DatasetSpec* FindDatasetSpec(const std::string& name);

/// Generation parameters.
struct GenerateOptions {
  std::size_t count = 20000;      // indexed series (paper: Table I counts)
  std::size_t num_queries = 100;  // held-out query series (paper: 100)
  std::uint64_t seed = 0xda7a;

  /// Real archives have neighborhood structure (repeating seismic events,
  /// clustered descriptors) — the property GEMINI pruning feeds on. Series
  /// are therefore mixtures √r·template + √(1−r)·residual over a pool of
  /// cluster templates. cluster_count 0 = auto (max(16, count/64));
  /// cluster_mix < 0 = the spec's default; 0 = i.i.d. (no structure).
  std::size_t cluster_count = 0;
  double cluster_mix = -1.0;
};

/// Generates the dataset plus held-out queries; deterministic per
/// (spec, options.seed) regardless of thread count. All series are
/// z-normalized. Queries use the aligned-onset protocol for seismic data.
LabeledDataset MakeDataset(const DatasetSpec& spec,
                           const GenerateOptions& options,
                           ThreadPool* pool = nullptr);

/// Convenience: MakeDataset by registry name (checks the name exists).
LabeledDataset MakeDatasetByName(const std::string& name,
                                 const GenerateOptions& options,
                                 ThreadPool* pool = nullptr);

}  // namespace datagen
}  // namespace sofa

#endif  // SOFA_DATAGEN_DATASETS_H_
