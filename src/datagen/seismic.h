// Synthetic seismograms — the substitute for the 12 SeisBench-derived
// datasets of Table I (ETHZ, Iquique, LenDB, NEIC, OBS, OBST2024, PNW,
// SCEDC, STEAD, TXED, Meier2019JGR, ISC-EHB).
//
// A trace = colored background noise + a P-wave arrival (Ricker-wavelet
// burst at the dataset's dominant frequency) + a stronger, lower-frequency
// S-wave arrival + an exponentially decaying coda. As in the paper's query
// protocol, query windows are aligned on the P-wave onset. The per-dataset
// dominant frequency is the knob reproducing the paper's spectrum-variance
// spread across networks (broadband vs short-period, local vs teleseismic).

#ifndef SOFA_DATAGEN_SEISMIC_H_
#define SOFA_DATAGEN_SEISMIC_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "datagen/spectral.h"
#include "util/rng.h"

namespace sofa {
namespace datagen {

/// Shape parameters of one seismic dataset.
struct SeismicParams {
  /// Dominant normalized frequency of the P wavelet (0 … 0.5).
  double dominant_freq = 0.1;

  /// Relative bandwidth of arrivals and coda around dominant_freq.
  double bandwidth = 0.35;

  /// Background-noise amplitude relative to the P amplitude.
  double noise_level = 0.35;

  /// Spectral slope of the background noise (1/f^beta).
  double noise_beta = 1.0;

  /// S-wave amplitude relative to P (S waves carry more energy).
  double s_amplitude = 1.6;

  /// Coda decay time constant as a fraction of the window.
  double coda_decay = 0.25;

  /// P-onset position as a fraction of the window; randomized ±jitter for
  /// indexed series, fixed for query series (P-pick alignment).
  double onset_position = 0.25;
  double onset_jitter = 0.15;
};

/// Ricker (Mexican-hat) wavelet of dominant normalized frequency f,
/// sampled at integer offsets τ ∈ [−half, half]; writes 2·half+1 values.
void RickerWavelet(double dominant_freq, std::size_t half, float* out);

/// Per-thread seismogram synthesizer. Not thread-safe; one per worker.
class SeismicGenerator {
 public:
  SeismicGenerator(std::size_t length, const SeismicParams& params);

  std::size_t length() const { return length_; }

  /// Generates a z-normalized trace. `aligned_onset` pins the P onset to
  /// onset_position exactly (query protocol); otherwise it is jittered.
  void Generate(Rng* rng, bool aligned_onset, float* out);

 private:
  std::size_t length_;
  SeismicParams params_;
  SpectralShaper shaper_;
  std::vector<float> scratch_;
};

}  // namespace datagen
}  // namespace sofa

#endif  // SOFA_DATAGEN_SEISMIC_H_
