#include "datagen/spectral.h"

#include <cmath>

#include "core/znorm.h"
#include "util/check.h"

namespace sofa {
namespace datagen {

SpectralEnvelope PowerLawEnvelope(double beta) {
  return [beta](double f) { return std::pow(f, -beta / 2.0); };
}

SpectralEnvelope BandPassEnvelope(double f0, double width) {
  return [f0, width](double f) {
    const double d = (f - f0) / width;
    return std::exp(-0.5 * d * d);
  };
}

SpectralEnvelope FlatEnvelope() {
  return [](double) { return 1.0; };
}

SpectralEnvelope HighPassEnvelope(double f0, double sharpness) {
  return [f0, sharpness](double f) {
    return 1.0 / (1.0 + std::exp(-(f - f0) / sharpness));
  };
}

SpectralEnvelope MixEnvelopes(SpectralEnvelope a, double weight_a,
                              SpectralEnvelope b, double weight_b) {
  return [a = std::move(a), weight_a, b = std::move(b),
          weight_b](double f) { return weight_a * a(f) + weight_b * b(f); };
}

SpectralShaper::SpectralShaper(std::size_t length)
    : length_(length), plan_(length), coeffs_(plan_.num_coefficients()) {
  SOFA_CHECK(length_ >= 4);
}

void SpectralShaper::GenerateRaw(const SpectralEnvelope& envelope, Rng* rng,
                                 float* out) {
  const std::size_t nc = plan_.num_coefficients();
  coeffs_[0] = {0.0f, 0.0f};  // zero mean
  for (std::size_t k = 1; k < nc; ++k) {
    const double f =
        static_cast<double>(k) / static_cast<double>(length_);
    const double amp = envelope(f);
    if (plan_.IsUnpaired(k)) {
      // Nyquist: real-valued bin.
      coeffs_[k] = {static_cast<float>(amp * rng->Gaussian()), 0.0f};
    } else {
      coeffs_[k] = {static_cast<float>(amp * rng->Gaussian()),
                    static_cast<float>(amp * rng->Gaussian())};
    }
  }
  plan_.InverseTransform(coeffs_.data(), out, &scratch_);
}

void SpectralShaper::Generate(const SpectralEnvelope& envelope, Rng* rng,
                              float* out) {
  GenerateRaw(envelope, rng, out);
  ZNormalize(out, length_);
}

}  // namespace datagen
}  // namespace sofa
