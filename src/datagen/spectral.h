// Spectral shaping — the foundation of the synthetic benchmark datasets.
//
// The paper's central observation (Sections I, V-D) is that indexing
// behaviour is governed by where a dataset's variance sits in the frequency
// spectrum: mean-based SAX summaries collapse on high-frequency data while
// SFA adapts. Our dataset substitutes therefore control exactly that
// property: series are synthesized directly in the frequency domain with a
// prescribed power envelope and random phases, then inverse-transformed
// (using this repository's own FFT) and z-normalized.

#ifndef SOFA_DATAGEN_SPECTRAL_H_
#define SOFA_DATAGEN_SPECTRAL_H_

#include <complex>
#include <cstddef>
#include <functional>
#include <vector>

#include "dft/real_dft.h"
#include "util/rng.h"

namespace sofa {
namespace datagen {

/// Power envelope: amplitude weight for normalized frequency f ∈ (0, 0.5].
using SpectralEnvelope = std::function<double(double f)>;

/// 1/f^beta colored noise (beta 0 = white, 1 = pink, 2 = brown).
SpectralEnvelope PowerLawEnvelope(double beta);

/// Gaussian band-pass bump centered at f0 with the given width.
SpectralEnvelope BandPassEnvelope(double f0, double width);

/// Flat (white) spectrum.
SpectralEnvelope FlatEnvelope();

/// Smooth high-pass: 1/(1+exp(−(f−f0)/sharpness)).
SpectralEnvelope HighPassEnvelope(double f0, double sharpness);

/// Sum of two envelopes with weights.
SpectralEnvelope MixEnvelopes(SpectralEnvelope a, double weight_a,
                              SpectralEnvelope b, double weight_b);

/// Per-thread synthesizer for one series length. Not thread-safe; create
/// one per worker.
class SpectralShaper {
 public:
  explicit SpectralShaper(std::size_t length);

  std::size_t length() const { return length_; }

  /// Fills `out` with a z-normalized random series whose expected power
  /// spectrum follows `envelope`.
  void Generate(const SpectralEnvelope& envelope, Rng* rng, float* out);

  /// Like Generate but without z-normalization (for additive layering).
  void GenerateRaw(const SpectralEnvelope& envelope, Rng* rng, float* out);

 private:
  std::size_t length_;
  dft::RealDftPlan plan_;
  dft::RealDftPlan::Scratch scratch_;
  std::vector<std::complex<float>> coeffs_;
};

}  // namespace datagen
}  // namespace sofa

#endif  // SOFA_DATAGEN_SPECTRAL_H_
