#include "datagen/datasets.h"

#include <algorithm>
#include <cmath>
#include <memory>

#include "core/znorm.h"
#include "datagen/spectral.h"
#include "datagen/vector_data.h"
#include "util/check.h"
#include "util/thread_pool.h"

namespace sofa {
namespace datagen {
namespace {

SeismicParams Seismic(double dominant_freq, double noise_level,
                      double noise_beta) {
  SeismicParams p;
  p.dominant_freq = dominant_freq;
  p.noise_level = noise_level;
  p.noise_beta = noise_beta;
  return p;
}

DatasetSpec Spec(const char* name, Family family, std::size_t length,
                 std::uint64_t paper_count) {
  DatasetSpec spec;
  spec.name = name;
  spec.family = family;
  spec.series_length = length;
  spec.paper_count = paper_count;
  return spec;
}

DatasetSpec SeismicSpec(const char* name, std::size_t length,
                        std::uint64_t paper_count, double dominant_freq,
                        double noise_level, double noise_beta) {
  DatasetSpec spec = Spec(name, Family::kSeismic, length, paper_count);
  spec.seismic = Seismic(dominant_freq, noise_level, noise_beta);
  return spec;
}

std::vector<DatasetSpec> BuildSpecs() {
  std::vector<DatasetSpec> specs;

  // Table I order. Dominant frequencies span the paper's variance spread:
  // LenDB/SCEDC/Meier2019JGR high-frequency (largest SOFA gains, Fig. 12),
  // ISC/PNW/SALD/Deep1b smooth (smallest gains).
  {
    DatasetSpec astro = Spec("Astro", Family::kAstro, 256, 100000000);
    astro.power_beta = 1.5;
    specs.push_back(std::move(astro));
  }
  {
    DatasetSpec bigann = Spec("BigANN", Family::kSiftVector, 100, 100000000);
    bigann.sift_block = 10;
    bigann.cluster_mix = 0.9;
    specs.push_back(std::move(bigann));
  }
  {
    DatasetSpec deep = Spec("Deep1b", Family::kDeepVector, 96, 100000000);
    deep.deep_rank = 24;
    specs.push_back(std::move(deep));
  }
  // Seismic dominant frequencies are placed around the PAA low-pass cutoff
  // (~l/(2n) ≈ 0.03 normalized at word length 16): networks above it are
  // where SAX's mean-based summaries flatten out (the paper's
  // LenDB/SCEDC/Meier2019JGR extremes), networks below it remain
  // SAX-friendly (PNW, ISC_EHB).
  specs.push_back(SeismicSpec("ETHZ", 256, 4999932, 0.020, 0.35, 1.2));
  specs.push_back(SeismicSpec("Iquique", 256, 578853, 0.028, 0.40, 1.0));
  specs.push_back(
      SeismicSpec("ISC_EHB_DepthPhases", 256, 100000000, 0.012, 0.30, 1.6));
  specs.push_back(SeismicSpec("LenDB", 256, 37345260, 0.060, 0.60, 0.2));
  specs.push_back(
      SeismicSpec("Meier2019JGR", 256, 6361998, 0.050, 0.50, 0.4));
  specs.push_back(SeismicSpec("NEIC", 256, 93473541, 0.022, 0.35, 1.2));
  specs.push_back(SeismicSpec("OBS", 256, 15508794, 0.040, 0.55, 0.6));
  specs.push_back(SeismicSpec("OBST2024", 256, 4160286, 0.024, 0.45, 0.9));
  specs.push_back(SeismicSpec("PNW", 256, 31982766, 0.015, 0.30, 1.4));
  {
    DatasetSpec sald = Spec("SALD", Family::kNeuro, 128, 100000000);
    sald.power_beta = 2.5;
    specs.push_back(std::move(sald));
  }
  specs.push_back(SeismicSpec("SCEDC", 256, 100000000, 0.055, 0.55, 0.3));
  {
    DatasetSpec sift = Spec("SIFT1b", Family::kSiftVector, 128, 100000000);
    sift.sift_block = 8;
    sift.cluster_mix = 0.9;
    specs.push_back(std::move(sift));
  }
  specs.push_back(SeismicSpec("STEAD", 256, 87323433, 0.020, 0.35, 1.2));
  specs.push_back(SeismicSpec("TXED", 256, 35851641, 0.018, 0.35, 1.3));
  return specs;
}

std::string ToLower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return s;
}

// splitmix-style mix of dataset seed and series index for per-series
// deterministic streams independent of threading.
std::uint64_t MixSeed(std::uint64_t seed, std::uint64_t index) {
  std::uint64_t z = seed + 0x9e3779b97f4a7c15ULL * (index + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

// Per-worker generator state for one spec.
class SeriesSynthesizer {
 public:
  explicit SeriesSynthesizer(const DatasetSpec& spec) : spec_(spec) {
    switch (spec.family) {
      case Family::kSeismic:
        seismic_ = std::make_unique<SeismicGenerator>(spec.series_length,
                                                      spec.seismic);
        break;
      case Family::kSiftVector:
        sift_ = std::make_unique<SiftLikeGenerator>(spec.series_length,
                                                    spec.sift_block);
        break;
      case Family::kDeepVector:
        // Mixing matrix fixed per dataset: hash the name.
        deep_ = std::make_unique<DeepLikeGenerator>(
            spec.series_length, spec.deep_rank,
            std::hash<std::string>{}(spec.name));
        break;
      case Family::kAstro:
      case Family::kNeuro:
        shaper_ = std::make_unique<SpectralShaper>(spec.series_length);
        break;
    }
  }

  void Generate(std::uint64_t seed, bool query, float* out) {
    Rng rng(seed);
    const std::size_t n = spec_.series_length;
    switch (spec_.family) {
      case Family::kSeismic:
        seismic_->Generate(&rng, /*aligned_onset=*/query, out);
        return;
      case Family::kSiftVector:
        sift_->Generate(&rng, out);
        return;
      case Family::kDeepVector:
        deep_->Generate(&rng, out);
        return;
      case Family::kAstro: {
        // AGN-like light curve: red noise + fast-rise/exp-decay flares.
        shaper_->GenerateRaw(PowerLawEnvelope(spec_.power_beta), &rng, out);
        const std::size_t flares = rng.Below(3);  // 0..2 flares
        for (std::size_t f = 0; f < flares; ++f) {
          const std::size_t t0 = rng.Below(n);
          const double amp = 2.0 + 3.0 * rng.Uniform();
          const double rise = 1.0 + 3.0 * rng.Uniform();
          const double decay = 6.0 + 20.0 * rng.Uniform();
          for (std::size_t t = 0; t < n; ++t) {
            const double dt =
                static_cast<double>(t) - static_cast<double>(t0);
            const double shape =
                dt < 0 ? std::exp(dt / rise) : std::exp(-dt / decay);
            out[t] += static_cast<float>(amp * shape);
          }
        }
        ZNormalize(out, n);
        return;
      }
      case Family::kNeuro: {
        // Resting-state-like: steep power law + slow oscillation.
        shaper_->GenerateRaw(
            MixEnvelopes(PowerLawEnvelope(spec_.power_beta), 1.0,
                         BandPassEnvelope(0.04, 0.015), 2.0),
            &rng, out);
        ZNormalize(out, n);
        return;
      }
    }
  }

 private:
  DatasetSpec spec_;
  std::unique_ptr<SeismicGenerator> seismic_;
  std::unique_ptr<SiftLikeGenerator> sift_;
  std::unique_ptr<DeepLikeGenerator> deep_;
  std::unique_ptr<SpectralShaper> shaper_;
};

}  // namespace

const std::vector<DatasetSpec>& AllDatasetSpecs() {
  static const std::vector<DatasetSpec>* specs =
      new std::vector<DatasetSpec>(BuildSpecs());
  return *specs;
}

const DatasetSpec* FindDatasetSpec(const std::string& name) {
  const std::string lower = ToLower(name);
  for (const DatasetSpec& spec : AllDatasetSpecs()) {
    if (ToLower(spec.name) == lower) {
      return &spec;
    }
  }
  return nullptr;
}

LabeledDataset MakeDataset(const DatasetSpec& spec,
                           const GenerateOptions& options,
                           ThreadPool* pool) {
  LabeledDataset result{spec.name, Dataset(spec.series_length),
                        Dataset(spec.series_length)};
  result.data.Resize(options.count);
  result.queries.Resize(options.num_queries);
  const std::size_t n = spec.series_length;
  // Query streams live in a disjoint seed space.
  constexpr std::uint64_t kQueryOffset = 0x100000000000ULL;
  constexpr std::uint64_t kTemplateSalt = 0x7e3a91cc00ULL;

  // Cluster templates (canonical alignment), shared by data and queries.
  const double mix = std::clamp(
      options.cluster_mix >= 0.0 ? options.cluster_mix : spec.cluster_mix,
      0.0, 0.999);
  std::size_t clusters = options.cluster_count;
  if (mix > 0.0 && clusters == 0) {
    clusters = std::max<std::size_t>(16, options.count / 64);
  }
  Dataset templates(n);
  if (mix > 0.0 && clusters > 0) {
    templates.Resize(clusters);
    SeriesSynthesizer synth(spec);
    for (std::size_t t = 0; t < clusters; ++t) {
      synth.Generate(MixSeed(options.seed ^ kTemplateSalt, t),
                     /*query=*/true, templates.mutable_row(t));
    }
  }
  const float template_weight = static_cast<float>(std::sqrt(mix));
  const float residual_weight = static_cast<float>(std::sqrt(1.0 - mix));

  auto generate_range = [&](Dataset* target, bool query,
                            std::size_t begin, std::size_t end) {
    SeriesSynthesizer synth(spec);
    for (std::size_t i = begin; i < end; ++i) {
      const std::uint64_t index = (query ? kQueryOffset : 0) + i;
      float* row = target->mutable_row(i);
      synth.Generate(MixSeed(options.seed, index), query, row);
      if (mix > 0.0 && clusters > 0) {
        const std::size_t tid =
            MixSeed(options.seed + 0x7e, index) % clusters;
        const float* tmpl = templates.row(tid);
        for (std::size_t t = 0; t < n; ++t) {
          row[t] = template_weight * tmpl[t] + residual_weight * row[t];
        }
        ZNormalize(row, n);
      }
    }
  };

  if (pool != nullptr) {
    ParallelFor(pool, options.count,
                [&](std::size_t begin, std::size_t end, std::size_t) {
                  generate_range(&result.data, false, begin, end);
                });
    ParallelFor(pool, options.num_queries,
                [&](std::size_t begin, std::size_t end, std::size_t) {
                  generate_range(&result.queries, true, begin, end);
                });
  } else {
    generate_range(&result.data, false, 0, options.count);
    generate_range(&result.queries, true, 0, options.num_queries);
  }
  return result;
}

LabeledDataset MakeDatasetByName(const std::string& name,
                                 const GenerateOptions& options,
                                 ThreadPool* pool) {
  const DatasetSpec* spec = FindDatasetSpec(name);
  SOFA_CHECK(spec != nullptr) << "unknown dataset: " << name;
  return MakeDataset(*spec, options, pool);
}

}  // namespace datagen
}  // namespace sofa
