#include "datagen/vector_data.h"

#include <cmath>

#include "core/znorm.h"
#include "util/check.h"

namespace sofa {
namespace datagen {

SiftLikeGenerator::SiftLikeGenerator(std::size_t length, std::size_t block)
    : length_(length), block_(block) {
  SOFA_CHECK(length_ >= 8);
  SOFA_CHECK(block_ >= 2);
}

void SiftLikeGenerator::Generate(Rng* rng, float* out) {
  // Gradient-histogram model: exponential bins with one dominant
  // orientation per block — spiky, non-negative, heavy-tailed, and with
  // *no* smooth ordering structure: neighboring bins are independent, so
  // segment means carry almost nothing (the Fig. 1 SIFT1b panel where PAA
  // flattens out) while the value distribution is far from N(0,1).
  for (std::size_t start = 0; start < length_; start += block_) {
    const std::size_t end = std::min(length_, start + block_);
    const std::size_t dominant = start + rng->Below(end - start);
    for (std::size_t i = start; i < end; ++i) {
      // Exponential bin magnitudes (−log U), boosted at the dominant bin.
      double magnitude = -std::log(std::max(1e-12, rng->Uniform()));
      if (i == dominant) {
        magnitude *= 6.0;
      }
      out[i] = static_cast<float>(magnitude);
    }
  }
  ZNormalize(out, length_);
}

DeepLikeGenerator::DeepLikeGenerator(std::size_t length, std::size_t rank,
                                     std::uint64_t dataset_seed)
    : length_(length), rank_(rank), factors_(rank) {
  SOFA_CHECK(rank_ >= 1);
  // Smooth mixing columns: Gaussian bumps at random centers — neighboring
  // output dimensions end up correlated, concentrating spectral energy in
  // low frequencies.
  Rng rng(dataset_seed);
  mixing_.resize(length_ * rank_);
  const double sigma = static_cast<double>(length_) / 12.0;
  for (std::size_t j = 0; j < rank_; ++j) {
    const double center = rng.Uniform() * static_cast<double>(length_);
    const double sign = rng.Uniform() < 0.5 ? -1.0 : 1.0;
    for (std::size_t i = 0; i < length_; ++i) {
      const double d = (static_cast<double>(i) - center) / sigma;
      mixing_[i * rank_ + j] =
          static_cast<float>(sign * std::exp(-0.5 * d * d));
    }
  }
}

void DeepLikeGenerator::Generate(Rng* rng, float* out) {
  for (auto& g : factors_) {
    g = static_cast<float>(rng->Gaussian());
  }
  for (std::size_t i = 0; i < length_; ++i) {
    double sum = 0.0;
    const float* row = mixing_.data() + i * rank_;
    for (std::size_t j = 0; j < rank_; ++j) {
      sum += static_cast<double>(row[j]) * factors_[j];
    }
    // Small white component so no two vectors are linearly dependent.
    out[i] = static_cast<float>(sum + 0.05 * rng->Gaussian());
  }
  ZNormalize(out, length_);
}

}  // namespace datagen
}  // namespace sofa
