#include "datagen/ucr_archive.h"

#include <cmath>
#include <functional>

#include "core/znorm.h"
#include "util/rng.h"

namespace sofa {
namespace datagen {
namespace {

// A shape family fills `out` for class `cls` (0..2) with its own noise.
using ShapeFn =
    std::function<void(std::size_t cls, Rng* rng, float* out, std::size_t n)>;

void AddNoise(Rng* rng, float* out, std::size_t n, double level) {
  for (std::size_t t = 0; t < n; ++t) {
    out[t] += static_cast<float>(level * rng->Gaussian());
  }
}

// Sine with class-dependent frequency.
void SineFreq(std::size_t cls, Rng* rng, float* out, std::size_t n) {
  const double freq = 2.0 + 2.0 * static_cast<double>(cls);
  const double phase = 2.0 * M_PI * rng->Uniform();
  for (std::size_t t = 0; t < n; ++t) {
    out[t] = static_cast<float>(
        std::sin(2.0 * M_PI * freq * t / static_cast<double>(n) + phase));
  }
  AddNoise(rng, out, n, 0.2);
}

// Sine with class-dependent amplitude modulation depth.
void SineAm(std::size_t cls, Rng* rng, float* out, std::size_t n) {
  const double depth = 0.2 + 0.4 * static_cast<double>(cls);
  const double phase = 2.0 * M_PI * rng->Uniform();
  for (std::size_t t = 0; t < n; ++t) {
    const double x = static_cast<double>(t) / static_cast<double>(n);
    const double carrier = std::sin(2.0 * M_PI * 8.0 * x + phase);
    const double envelope = 1.0 + depth * std::sin(2.0 * M_PI * x);
    out[t] = static_cast<float>(envelope * carrier);
  }
  AddNoise(rng, out, n, 0.15);
}

// Linear chirp with class-dependent sweep rate.
void Chirp(std::size_t cls, Rng* rng, float* out, std::size_t n) {
  const double f0 = 1.0;
  const double rate = 4.0 + 6.0 * static_cast<double>(cls);
  const double phase = 2.0 * M_PI * rng->Uniform();
  for (std::size_t t = 0; t < n; ++t) {
    const double x = static_cast<double>(t) / static_cast<double>(n);
    out[t] = static_cast<float>(
        std::sin(2.0 * M_PI * (f0 * x + 0.5 * rate * x * x) + phase));
  }
  AddNoise(rng, out, n, 0.2);
}

// Square wave with class-dependent duty cycle.
void Square(std::size_t cls, Rng* rng, float* out, std::size_t n) {
  const double duty = 0.25 + 0.25 * static_cast<double>(cls);
  const double freq = 4.0;
  const double phase = rng->Uniform();
  for (std::size_t t = 0; t < n; ++t) {
    const double x = freq * t / static_cast<double>(n) + phase;
    out[t] = (x - std::floor(x)) < duty ? 1.0f : -1.0f;
  }
  AddNoise(rng, out, n, 0.25);
}

// Triangle wave, class-dependent frequency.
void Triangle(std::size_t cls, Rng* rng, float* out, std::size_t n) {
  const double freq = 2.0 + 2.0 * static_cast<double>(cls);
  const double phase = rng->Uniform();
  for (std::size_t t = 0; t < n; ++t) {
    const double x = freq * t / static_cast<double>(n) + phase;
    const double frac = x - std::floor(x);
    out[t] = static_cast<float>(4.0 * std::fabs(frac - 0.5) - 1.0);
  }
  AddNoise(rng, out, n, 0.15);
}

// Gaussian bump with class-dependent position.
void Bump(std::size_t cls, Rng* rng, float* out, std::size_t n) {
  const double center =
      (0.25 + 0.25 * static_cast<double>(cls)) * static_cast<double>(n) +
      0.03 * static_cast<double>(n) * rng->Gaussian();
  const double width = static_cast<double>(n) / 16.0;
  for (std::size_t t = 0; t < n; ++t) {
    const double d = (static_cast<double>(t) - center) / width;
    out[t] = static_cast<float>(std::exp(-0.5 * d * d));
  }
  AddNoise(rng, out, n, 0.1);
}

// Two bumps with class-dependent separation.
void TwoBumps(std::size_t cls, Rng* rng, float* out, std::size_t n) {
  const double sep = (0.15 + 0.15 * static_cast<double>(cls));
  const double c1 = (0.5 - sep / 2.0) * static_cast<double>(n);
  const double c2 = (0.5 + sep / 2.0) * static_cast<double>(n);
  const double width = static_cast<double>(n) / 20.0;
  for (std::size_t t = 0; t < n; ++t) {
    const double d1 = (static_cast<double>(t) - c1) / width;
    const double d2 = (static_cast<double>(t) - c2) / width;
    out[t] = static_cast<float>(std::exp(-0.5 * d1 * d1) +
                                std::exp(-0.5 * d2 * d2));
  }
  AddNoise(rng, out, n, 0.1);
}

// Random walk with class-dependent smoothing window.
void SmoothWalk(std::size_t cls, Rng* rng, float* out, std::size_t n) {
  std::vector<double> walk(n);
  double level = 0.0;
  for (std::size_t t = 0; t < n; ++t) {
    level += rng->Gaussian();
    walk[t] = level;
  }
  const std::size_t window = 1 + 4 * cls;
  for (std::size_t t = 0; t < n; ++t) {
    double sum = 0.0;
    std::size_t count = 0;
    for (std::size_t w = t >= window ? t - window : 0;
         w <= std::min(n - 1, t + window); ++w) {
      sum += walk[w];
      ++count;
    }
    out[t] = static_cast<float>(sum / static_cast<double>(count));
  }
}

// High-frequency burst at a class-dependent position over quiet noise.
void Burst(std::size_t cls, Rng* rng, float* out, std::size_t n) {
  for (std::size_t t = 0; t < n; ++t) {
    out[t] = static_cast<float>(0.1 * rng->Gaussian());
  }
  const std::size_t start = static_cast<std::size_t>(
      (0.15 + 0.25 * static_cast<double>(cls)) * static_cast<double>(n));
  const std::size_t burst_len = n / 6;
  for (std::size_t t = start; t < std::min(n, start + burst_len); ++t) {
    out[t] += static_cast<float>(
        std::sin(2.0 * M_PI * 0.4 * static_cast<double>(t)) *
        (1.0 + 0.3 * rng->Gaussian()));
  }
}

// Step function with class-dependent step position.
void Step(std::size_t cls, Rng* rng, float* out, std::size_t n) {
  const std::size_t pos = static_cast<std::size_t>(
      (0.3 + 0.2 * static_cast<double>(cls)) * static_cast<double>(n));
  for (std::size_t t = 0; t < n; ++t) {
    out[t] = t < pos ? -1.0f : 1.0f;
  }
  AddNoise(rng, out, n, 0.2);
}

// Sawtooth with class-dependent frequency.
void Sawtooth(std::size_t cls, Rng* rng, float* out, std::size_t n) {
  const double freq = 3.0 + 3.0 * static_cast<double>(cls);
  const double phase = rng->Uniform();
  for (std::size_t t = 0; t < n; ++t) {
    const double x = freq * t / static_cast<double>(n) + phase;
    out[t] = static_cast<float>(2.0 * (x - std::floor(x)) - 1.0);
  }
  AddNoise(rng, out, n, 0.15);
}

// ECG-like beat train: sharp R spikes + smooth T waves, class = heart rate.
void EcgLike(std::size_t cls, Rng* rng, float* out, std::size_t n) {
  for (std::size_t t = 0; t < n; ++t) {
    out[t] = 0.0f;
  }
  const double rr =
      static_cast<double>(n) / (2.0 + static_cast<double>(cls));
  double beat = rr * rng->Uniform() * 0.5;
  while (beat < static_cast<double>(n)) {
    const double r_width = 1.5;
    const double t_center = beat + rr * 0.3;
    const double t_width = rr * 0.12;
    for (std::size_t t = 0; t < n; ++t) {
      const double dr = (static_cast<double>(t) - beat) / r_width;
      const double dt = (static_cast<double>(t) - t_center) / t_width;
      out[t] += static_cast<float>(2.5 * std::exp(-0.5 * dr * dr) +
                                   0.5 * std::exp(-0.5 * dt * dt));
    }
    beat += rr * (1.0 + 0.05 * rng->Gaussian());
  }
  AddNoise(rng, out, n, 0.08);
}

struct ShapeFamily {
  const char* name;
  ShapeFn fn;
};

const ShapeFamily kFamilies[] = {
    {"SineFreq", SineFreq}, {"SineAM", SineAm},     {"Chirp", Chirp},
    {"Square", Square},     {"Triangle", Triangle}, {"Bump", Bump},
    {"TwoBumps", TwoBumps}, {"SmoothWalk", SmoothWalk},
    {"Burst", Burst},       {"Step", Step},         {"Sawtooth", Sawtooth},
    {"ECGLike", EcgLike},
};

constexpr std::size_t kLengths[] = {64, 96, 128, 256};

}  // namespace

std::vector<UcrLikeDataset> MakeUcrArchiveLike(
    const UcrArchiveOptions& options) {
  std::vector<UcrLikeDataset> archive;
  Rng master(options.seed);
  // Two variants per family at different lengths → 24 datasets.
  for (std::size_t variant = 0; variant < 2; ++variant) {
    std::size_t family_index = 0;
    for (const ShapeFamily& family : kFamilies) {
      const std::size_t n =
          kLengths[(family_index + 2 * variant) % std::size(kLengths)];
      UcrLikeDataset ds{std::string(family.name) +
                            (variant == 0 ? "Small" : "Large"),
                        Dataset(n), Dataset(n)};
      Rng rng = master.Fork();
      std::vector<float> row(n);
      auto fill = [&](Dataset* target, std::size_t count) {
        for (std::size_t i = 0; i < count; ++i) {
          const std::size_t cls = rng.Below(3);
          family.fn(cls, &rng, row.data(), n);
          ZNormalize(row.data(), n);
          target->Append(row.data());
        }
      };
      fill(&ds.train, options.train_per_dataset);
      fill(&ds.test, options.test_per_dataset);
      archive.push_back(std::move(ds));
      ++family_index;
    }
  }
  return archive;
}

}  // namespace datagen
}  // namespace sofa
