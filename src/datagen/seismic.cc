#include "datagen/seismic.h"

#include <algorithm>
#include <cmath>

#include "core/znorm.h"
#include "util/check.h"

namespace sofa {
namespace datagen {

void RickerWavelet(double dominant_freq, std::size_t half, float* out) {
  // r(τ) = (1 − 2π²f²τ²)·e^{−π²f²τ²}.
  const double pf = M_PI * dominant_freq;
  const double pf_sq = pf * pf;
  for (std::size_t i = 0; i <= 2 * half; ++i) {
    const double tau = static_cast<double>(i) - static_cast<double>(half);
    const double a = pf_sq * tau * tau;
    out[i] = static_cast<float>((1.0 - 2.0 * a) * std::exp(-a));
  }
}

SeismicGenerator::SeismicGenerator(std::size_t length,
                                   const SeismicParams& params)
    : length_(length), params_(params), shaper_(length), scratch_(length) {
  SOFA_CHECK(length_ >= 32);
  SOFA_CHECK(params_.dominant_freq > 0.0 && params_.dominant_freq <= 0.5);
}

void SeismicGenerator::Generate(Rng* rng, bool aligned_onset, float* out) {
  const std::size_t n = length_;
  const SeismicParams& p = params_;

  // 1. Colored background noise.
  shaper_.GenerateRaw(PowerLawEnvelope(p.noise_beta), rng, out);
  // Normalize noise to unit RMS, then scale to the noise level.
  double rms = 0.0;
  for (std::size_t t = 0; t < n; ++t) {
    rms += static_cast<double>(out[t]) * out[t];
  }
  rms = std::sqrt(rms / static_cast<double>(n)) + 1e-12;
  const float noise_scale = static_cast<float>(p.noise_level / rms);
  for (std::size_t t = 0; t < n; ++t) {
    out[t] *= noise_scale;
  }

  // 2. P-wave onset position.
  double onset_frac = p.onset_position;
  if (!aligned_onset) {
    onset_frac += p.onset_jitter * (2.0 * rng->Uniform() - 1.0);
    onset_frac = std::clamp(onset_frac, 0.05, 0.75);
  }
  const std::size_t p_onset = static_cast<std::size_t>(
      onset_frac * static_cast<double>(n));

  // 3. P arrival: Ricker wavelet at the dominant frequency with slight
  //    per-event frequency scatter.
  auto add_wavelet = [&](std::size_t onset, double freq, double amplitude) {
    const std::size_t half = std::max<std::size_t>(
        2, static_cast<std::size_t>(1.0 / std::max(freq, 0.02)));
    std::vector<float> wavelet(2 * half + 1);
    RickerWavelet(freq, half, wavelet.data());
    for (std::size_t i = 0; i < wavelet.size(); ++i) {
      const std::ptrdiff_t t = static_cast<std::ptrdiff_t>(onset + i) -
                               static_cast<std::ptrdiff_t>(half);
      if (t >= 0 && t < static_cast<std::ptrdiff_t>(n)) {
        out[t] += static_cast<float>(amplitude) * wavelet[i];
      }
    }
  };
  const double freq_scatter = 1.0 + 0.2 * (2.0 * rng->Uniform() - 1.0);
  const double p_freq = p.dominant_freq * freq_scatter;
  add_wavelet(p_onset, p_freq, 1.0);

  // 4. S arrival: later, stronger, lower frequency (×0.6).
  const std::size_t s_delay = static_cast<std::size_t>(
      (0.10 + 0.15 * rng->Uniform()) * static_cast<double>(n));
  const std::size_t s_onset = p_onset + s_delay;
  if (s_onset + 2 < n) {
    add_wavelet(s_onset, p_freq * 0.6, p.s_amplitude);
  }

  // 5. Coda: band-passed noise around the dominant frequency, decaying
  //    exponentially after the P onset.
  shaper_.GenerateRaw(
      BandPassEnvelope(p.dominant_freq, p.bandwidth * p.dominant_freq + 0.02),
      rng, scratch_.data());
  double coda_rms = 0.0;
  for (std::size_t t = 0; t < n; ++t) {
    coda_rms += static_cast<double>(scratch_[t]) * scratch_[t];
  }
  coda_rms = std::sqrt(coda_rms / static_cast<double>(n)) + 1e-12;
  const double decay_tau = p.coda_decay * static_cast<double>(n);
  for (std::size_t t = p_onset; t < n; ++t) {
    const double age = static_cast<double>(t - p_onset);
    const double envelope = 0.8 * std::exp(-age / decay_tau) / coda_rms;
    out[t] += static_cast<float>(envelope) * scratch_[t];
  }

  ZNormalize(out, n);
}

}  // namespace datagen
}  // namespace sofa
