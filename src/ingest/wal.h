// Write-ahead log for the ingest path: the durability half of "durable
// mutability" (ROADMAP: "a write-ahead log so inserts survive restarts").
//
// Every accepted mutation — insert(id, row) or delete(id) — is appended
// to an on-disk record stream *before* it becomes visible to queries.
// After a crash, Compactor::Recover replays the stream on top of the
// reloaded base generation and reconstructs exactly the buffers and
// tombstones the process held when it died, so answers after recovery
// are bit-identical to the uninterrupted run.
//
// On-disk layout (full byte-level spec in docs/FILE_FORMATS.md): the log
// is a directory of numbered segment files, each a fixed header followed
// by CRC32-framed records:
//
//   segment  := header record*
//   header   := magic "SOFAWAL1" | u64 segment_seq | u64 series_length
//   record   := u32 payload_size | u32 crc32(payload) | payload
//   payload  := u8 type | body          (insert / delete / checkpoint)
//
// The CRC framing makes the torn tail of a crashed writer detectable:
// replay stops cleanly at the first record whose frame is incomplete or
// whose checksum mismatches, and everything before it is trusted. A
// writer never appends to an existing segment (the tail may be torn) —
// Open always starts a fresh segment after the highest retained one.
//
// Checkpoints and truncation: a checkpoint record carries the collection
// row count (`next_id`) and the live tombstone set at a moment when the
// *caller guarantees* that state is durable elsewhere (e.g. the embedder
// persisted the compacted generation). AppendCheckpoint rotates to a
// fresh segment headed by the checkpoint, syncs it, and then deletes
// every older segment — so the retained log is always "one checkpoint
// (or nothing) followed by the mutation tail". Replay *resets* its
// accumulated state whenever it meets a checkpoint record, which makes
// recovery idempotent with or without truncation having completed: a
// crash between writing the checkpoint and unlinking the old segments
// replays the stale prefix and then discards it at the checkpoint.
// Compaction alone does NOT make mutations durable (rebuilt trees live
// in memory), which is why the Compactor only checkpoints when its
// embedder explicitly opts in — see IngestConfig::checkpoint_on_compact.
//
// Fsync policy: appends are buffered and fflush()ed per record (visible
// to a reader immediately), but fsync()ed only every `sync_every`
// records — classic group-commit batching. A power failure can lose at
// most the records since the last sync; Sync(), AppendCheckpoint and the
// destructor always force one.
//
// Thread-safety: the writer methods are NOT internally synchronized —
// the Compactor serializes all appends under its own mutation lock.
// Replay (static) touches only closed files and may run concurrently
// with nothing, i.e. call it before constructing the writer's Compactor
// traffic, as Compactor::Recover does.

#ifndef SOFA_INGEST_WAL_H_
#define SOFA_INGEST_WAL_H_

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace sofa {
namespace ingest {

/// Writer tuning knobs.
struct WalConfig {
  /// Rotate to a new segment once the current one reaches this size.
  std::size_t segment_bytes = 64ull << 20;

  /// fsync after this many appended records (1 = every record — maximal
  /// durability, minimal throughput; 0 = only on Sync()/checkpoint/
  /// close). The unsynced window is what a power failure can lose.
  std::size_t sync_every = 64;
};

/// Record kinds in the stream (the on-disk u8 tag).
enum class WalRecordType : std::uint8_t {
  kInsert = 1,      // id + row payload
  kDelete = 2,      // id
  kCheckpoint = 3,  // next_id + tombstone ids; resets replay state
};

/// One decoded record, as handed to the replay callback. Only the fields
/// of the record's type are meaningful.
struct WalRecord {
  WalRecordType type = WalRecordType::kInsert;
  std::uint32_t id = 0;                    // kInsert / kDelete
  std::vector<float> row;                  // kInsert
  std::uint64_t next_id = 0;               // kCheckpoint
  std::vector<std::uint32_t> tombstones;   // kCheckpoint
};

/// What a replay pass saw.
struct WalReplayStats {
  std::uint64_t segments = 0;     // segment files visited
  std::uint64_t inserts = 0;      // insert records delivered
  std::uint64_t deletes = 0;      // delete records delivered
  std::uint64_t checkpoints = 0;  // checkpoint records delivered
  /// True when replay stopped at a torn or corrupt record instead of a
  /// clean end-of-stream; everything delivered before it is trustworthy.
  bool tail_truncated = false;
};

class WriteAheadLog {
 public:
  /// Opens `dir` (created if missing) for rows of `length` floats and
  /// starts a fresh segment after the highest existing one. Existing
  /// segments are left untouched — replay them first (Replay /
  /// Compactor::Recover) if their records matter. Returns nullptr when
  /// the directory or first segment cannot be created.
  static std::unique_ptr<WriteAheadLog> Open(const std::string& dir,
                                             std::size_t length,
                                             WalConfig config = WalConfig{});

  /// Replays every retained record in segment order, invoking `apply`
  /// per record. A checkpoint record is delivered like any other —
  /// callers reset their accumulated state on it (Compactor::Recover
  /// does). A torn or corrupt record stops the current *segment* cleanly
  /// (flagged via WalReplayStats::tail_truncated) and replay continues
  /// with the next segment: that is exactly the crash-then-reopen
  /// pattern, where a later run recovered the valid prefix and appended
  /// its records to a fresh segment. Detection limits, stated honestly:
  /// the id-sequence validation consumers layer on top
  /// (Compactor::Recover) catches lost *insert* records (a gap fails
  /// the recovery), but a corrupt interior segment that held only
  /// delete records is structurally indistinguishable from the benign
  /// crash-reopen pattern — such loss surfaces only as tail_truncated,
  /// which operators should treat as suspicious on a multi-segment log
  /// (per-record sequence numbers are the ROADMAP fix). A missing or
  /// empty directory replays nothing; segments whose header does not
  /// match `length` are skipped as foreign and flagged the same way.
  static WalReplayStats Replay(
      const std::string& dir, std::size_t length,
      const std::function<void(const WalRecord&)>& apply);

  /// Segment files currently in `dir`, sorted by sequence number —
  /// exposed for tests and operational tooling.
  static std::vector<std::string> ListSegments(const std::string& dir);

  /// Syncs and closes the current segment.
  ~WriteAheadLog();

  WriteAheadLog(const WriteAheadLog&) = delete;
  WriteAheadLog& operator=(const WriteAheadLog&) = delete;

  /// Appends one record; returns false on I/O failure, in which case the
  /// record must be treated as not logged (the Compactor then refuses
  /// the mutation and a later accepted record may reuse the id): the
  /// frame is rolled back to the previous record boundary so a refused
  /// record cannot replay. A failure never bricks the log — the next
  /// append retries, rotating to a fresh segment if the current one was
  /// abandoned. Residual double-fault window: when both the fsync of a
  /// fully written frame AND the rollback ftruncate fail, the refused
  /// frame stays on disk and would replay under the reused id. `row`
  /// must have the series length passed to Open.
  bool AppendInsert(std::uint32_t id, const float* row);
  bool AppendDelete(std::uint32_t id);

  /// Rotates to a fresh segment, writes a checkpoint record carrying
  /// `next_id` and `tombstones`, fsyncs it, and deletes every older
  /// segment. Contract: call only when rows [0, next_id) and the given
  /// tombstone set are durably recoverable WITHOUT this log — the
  /// deleted segments held the only other copy of those mutations.
  bool AppendCheckpoint(std::uint64_t next_id,
                        const std::vector<std::uint32_t>& tombstones);

  /// Forces buffered records to stable storage (fsync).
  bool Sync();

  const std::string& dir() const { return dir_; }

  /// Sequence number of the segment currently being written.
  std::uint64_t segment_seq() const { return seq_; }

  /// Records appended since the last fsync (0 right after a sync).
  std::size_t unsynced_records() const { return unsynced_; }

 private:
  WriteAheadLog(std::string dir, std::size_t length, WalConfig config);

  bool OpenSegment(std::uint64_t seq);
  bool CloseSegment(bool sync);
  bool AppendRecord(const std::vector<unsigned char>& payload);

  const std::string dir_;
  const std::size_t length_;
  const WalConfig config_;
  std::FILE* file_ = nullptr;
  std::uint64_t seq_ = 0;
  std::size_t segment_size_ = 0;
  std::size_t unsynced_ = 0;
};

}  // namespace ingest
}  // namespace sofa

#endif  // SOFA_INGEST_WAL_H_
