// Write-ahead log for the ingest path: the durability half of "durable
// mutability" (ROADMAP: "a write-ahead log so inserts survive restarts").
//
// Every accepted mutation — insert(id, row) or delete(id) — is appended
// to an on-disk record stream *before* it becomes visible to queries.
// After a crash, Compactor::Recover replays the stream on top of the
// reloaded base generation and reconstructs exactly the buffers and
// tombstones the process held when it died, so answers after recovery
// are bit-identical to the uninterrupted run.
//
// On-disk layout (full byte-level spec in docs/FILE_FORMATS.md): the log
// is a directory of numbered segment files, each a fixed header followed
// by CRC32-framed records:
//
//   segment  := header record*
//   header   := magic "SOFAWAL2" | u64 segment_seq | u64 series_length
//             | u64 first_seqno
//   record   := u32 payload_size | u32 crc32(seqno | payload)
//             | u64 seqno | payload
//   payload  := u8 type | body          (insert / delete / checkpoint)
//
// Every record carries a global sequence number, contiguous from 1
// across segments and record types. The CRC framing makes a torn tail
// detectable (replay stops cleanly at the first incomplete or
// mismatching frame); the seqno chain makes *interior* loss detectable:
// replay tracks the expected next seqno across segment boundaries, and a
// retained segment whose first record does not continue the chain means
// a whole segment (or its trusted prefix) went missing — flagged as
// `sequence_gap`, which consumers must treat as refuse-to-serve, unlike
// the benign `tail_truncated` crash pattern. A writer never appends to
// an existing segment (the tail may be torn) — Open always starts a
// fresh segment after the highest retained one, continuing the seqno
// chain from the last valid record on disk.
//
// Checkpoints and truncation — two mechanisms, two callers:
//
//   * AppendCheckpoint (embedder-driven, Compactor::Checkpoint): a
//     checkpoint *record* carries the collection row count and live
//     tombstone set at a moment the caller guarantees is durable
//     elsewhere; it heads a fresh segment and every older segment is
//     deleted. Replay resets its accumulated state at a checkpoint
//     record, which keeps recovery idempotent when a crash lands
//     between the checkpoint write and the old-segment unlink.
//   * Rotate + TruncateBelow (the persist::GenerationStore path): the
//     Compactor captures the full collection state at sequence number L,
//     rotates so that records ≤ L live strictly below the returned
//     segment, persists the generation directory, and only after that
//     commit truncates the segments below the rotation point. The
//     manifest records L; recovery replays only records with seqno > L —
//     the "WAL tail". A crash between commit and truncation merely
//     leaves stale segments whose records replay idempotently.
//
// Fsync policy: appends are buffered and fflush()ed per batch (visible
// to a reader immediately), but fsync()ed only every `sync_every`
// records — classic group-commit batching, one fsync covering a whole
// concurrent batch (see Compactor's staged commit queue). A power
// failure can lose at most the records since the last sync; Sync(),
// AppendCheckpoint, Rotate and the destructor always force one.
//
// Thread-safety: the writer methods are NOT internally synchronized —
// the Compactor guarantees one writer at a time (the group-commit
// leader, or the persist path holding the mutation lock with the commit
// queue drained). TruncateBelow only unlinks closed files below the
// writer's current segment and may run concurrently with appends.
// Replay (static) touches only closed files.

#ifndef SOFA_INGEST_WAL_H_
#define SOFA_INGEST_WAL_H_

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "obs/registry.h"

namespace sofa {
namespace ingest {

/// Writer tuning knobs.
struct WalConfig {
  /// Rotate to a new segment once the current one reaches this size.
  std::size_t segment_bytes = 64ull << 20;

  /// fsync after this many appended records (1 = every record — maximal
  /// durability, minimal throughput; 0 = only on Sync()/checkpoint/
  /// close). The unsynced window is what a power failure can lose.
  std::size_t sync_every = 64;

  /// When non-null the writer registers its instruments here (fsync
  /// count/latency, appended records, group-commit batch sizes, segments
  /// opened) — see docs/OBSERVABILITY.md. The registry must outlive the
  /// log.
  obs::Registry* registry = nullptr;
};

/// Record kinds in the stream (the on-disk u8 tag).
enum class WalRecordType : std::uint8_t {
  kInsert = 1,      // id + row payload
  kDelete = 2,      // id
  kCheckpoint = 3,  // next_id + tombstone ids; resets replay state
};

/// One decoded record, as handed to the replay callback. Only the fields
/// of the record's type are meaningful (seqno always is).
struct WalRecord {
  WalRecordType type = WalRecordType::kInsert;
  std::uint64_t seqno = 0;                 // global, contiguous from 1
  std::uint32_t id = 0;                    // kInsert / kDelete
  std::vector<float> row;                  // kInsert
  std::uint64_t next_id = 0;               // kCheckpoint
  std::vector<std::uint32_t> tombstones;   // kCheckpoint
};

/// One staged record of a group-commit batch (see AppendBatch). `row`
/// must stay valid until the call returns and hold the series length
/// passed to Open; it is read only for kInsert.
struct WalAppend {
  WalRecordType type = WalRecordType::kInsert;
  std::uint32_t id = 0;
  const float* row = nullptr;  // kInsert only
};

/// What a replay pass saw.
struct WalReplayStats {
  std::uint64_t segments = 0;     // segment files visited
  std::uint64_t inserts = 0;      // insert records delivered
  std::uint64_t deletes = 0;      // delete records delivered
  std::uint64_t checkpoints = 0;  // checkpoint records delivered
  std::uint64_t first_seqno = 0;  // seqno of the first delivered record
  std::uint64_t last_seqno = 0;   // seqno of the last delivered record
  /// True when replay stopped at a torn or corrupt record instead of a
  /// clean end-of-stream; everything delivered before it is trustworthy.
  bool tail_truncated = false;
  /// True when the seqno chain broke: a retained segment's first record
  /// does not continue where the previous segment's trusted prefix
  /// ended (or where `expected_first_seqno` said the stream must
  /// start). Unlike tail_truncated this means interior records are
  /// GONE — acknowledged mutations may be lost — and consumers must
  /// refuse to serve from this log (Compactor::Recover does).
  bool sequence_gap = false;
};

class WriteAheadLog {
 public:
  /// Opens `dir` (created if missing) for rows of `length` floats and
  /// starts a fresh segment after the highest existing one, continuing
  /// the record sequence from the last valid record on disk. Existing
  /// segments are left untouched — replay them first (Replay /
  /// Compactor::Recover) if their records matter. Returns nullptr when
  /// the directory or first segment cannot be created.
  static std::unique_ptr<WriteAheadLog> Open(const std::string& dir,
                                             std::size_t length,
                                             WalConfig config = WalConfig{});

  /// Replays every retained record in segment order, invoking `apply`
  /// per record. A checkpoint record is delivered like any other —
  /// callers reset their accumulated state on it (Compactor::Recover
  /// does). A torn or corrupt record stops the current *segment* cleanly
  /// (flagged via WalReplayStats::tail_truncated) and replay continues
  /// with the next segment — the crash-then-reopen pattern. The per-
  /// record seqno chain is validated across segments: a discontinuity
  /// flips `sequence_gap` (interior loss — refuse) instead of being
  /// mistaken for the benign torn tail. `expected_first_seqno`, when
  /// nonzero, additionally requires the first delivered record's seqno
  /// to be at most that value — the persist path passes (manifest
  /// last_seqno + 1) so a WAL whose retained tail starts *after* the
  /// manifest's fold point (a deleted or lost segment) is refused
  /// rather than silently replayed with a hole. A missing or empty
  /// directory replays nothing; segments whose header does not match
  /// `length` are skipped as foreign and flagged tail_truncated.
  static WalReplayStats Replay(
      const std::string& dir, std::size_t length,
      const std::function<void(const WalRecord&)>& apply,
      std::uint64_t expected_first_seqno = 0);

  /// Segment files currently in `dir`, sorted by sequence number —
  /// exposed for tests and operational tooling.
  static std::vector<std::string> ListSegments(const std::string& dir);

  /// Syncs and closes the current segment.
  ~WriteAheadLog();

  WriteAheadLog(const WriteAheadLog&) = delete;
  WriteAheadLog& operator=(const WriteAheadLog&) = delete;

  /// Appends one record; returns false on I/O failure, in which case the
  /// record must be treated as not logged (the Compactor then refuses
  /// the mutation and a later accepted record may reuse the id and
  /// seqno): the frame is rolled back to the previous record boundary so
  /// a refused record cannot replay. A failure never bricks the log —
  /// the next append retries, rotating to a fresh segment if the current
  /// one was abandoned. Residual double-fault window: when both the
  /// fsync of a fully written frame AND the rollback ftruncate fail, the
  /// refused frame stays on disk and would replay under the reused id.
  /// `row` must have the series length passed to Open.
  bool AppendInsert(std::uint32_t id, const float* row);
  bool AppendDelete(std::uint32_t id);

  /// Appends a whole batch of insert/delete records as consecutive
  /// frames with ONE buffered write, one fflush and (per sync policy)
  /// one fsync — the group-commit fast path: N concurrent mutations pay
  /// one I/O round instead of N. All-or-nothing: on failure the segment
  /// rolls back to the batch's start boundary, no record of the batch
  /// replays, and every staged id/seqno may be reused.
  bool AppendBatch(const std::vector<WalAppend>& batch);

  /// Rotates to a fresh segment, writes a checkpoint record carrying
  /// `next_id` and `tombstones`, fsyncs it, and deletes every older
  /// segment. Contract: call only when rows [0, next_id) and the given
  /// tombstone set are durably recoverable WITHOUT this log — the
  /// deleted segments held the only other copy of those mutations.
  bool AppendCheckpoint(std::uint64_t next_id,
                        const std::vector<std::uint32_t>& tombstones);

  /// Syncs and closes the current segment and opens a fresh one, whose
  /// sequence number is returned in `new_segment_seq`. Every record
  /// appended before the call lives in segments strictly below it — the
  /// persist path's fold point: capture state, Rotate, persist, then
  /// TruncateBelow(new_segment_seq) once the generation commit is
  /// durable. On failure the log stays reopenable by the next append
  /// and `new_segment_seq` is untouched.
  bool Rotate(std::uint64_t* new_segment_seq);

  /// Unlinks every segment whose sequence number is below
  /// `keep_segment_seq` (clamped to the segment currently being
  /// written). Only sound after the records in those segments are
  /// durable elsewhere — i.e. after the generation directory recording
  /// the fold point has committed. Safe to call while appends run: it
  /// touches only closed files below the writer's segment.
  void TruncateBelow(std::uint64_t keep_segment_seq);

  /// Forces buffered records to stable storage (fsync).
  bool Sync();

  const std::string& dir() const { return dir_; }

  /// Sequence number of the segment currently being written.
  std::uint64_t segment_seq() const { return seq_; }

  /// Sequence number of the last successfully appended record (0 when
  /// nothing was ever appended to this log directory).
  std::uint64_t last_seqno() const { return next_seqno_ - 1; }

  /// Records appended since the last fsync (0 right after a sync).
  std::size_t unsynced_records() const { return unsynced_; }

 private:
  WriteAheadLog(std::string dir, std::size_t length, WalConfig config);

  bool OpenSegment(std::uint64_t seq);
  bool CloseSegment(bool sync);
  bool AppendFrames(const std::vector<std::vector<unsigned char>>& payloads);
  bool FsyncTimed();  // fsync(file_) + fsync count/latency instruments

  const std::string dir_;
  const std::size_t length_;
  const WalConfig config_;
  std::FILE* file_ = nullptr;
  std::uint64_t seq_ = 0;
  std::uint64_t next_seqno_ = 1;  // seqno the next record will carry
  std::size_t segment_size_ = 0;
  std::size_t unsynced_ = 0;

  // Registry instruments; null when WalConfig::registry is unset.
  obs::Counter* fsync_total_ = nullptr;
  obs::Histogram* fsync_ms_ = nullptr;
  obs::Counter* records_total_ = nullptr;
  obs::Counter* segments_total_ = nullptr;
  obs::Histogram* batch_size_ = nullptr;
};

}  // namespace ingest
}  // namespace sofa

#endif  // SOFA_INGEST_WAL_H_
