#include "ingest/insert_buffer.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <queue>

#include "core/distance.h"
#include "util/check.h"

namespace sofa {
namespace ingest {
namespace {

constexpr float kInf = std::numeric_limits<float>::infinity();

// Max-heap entry ordered by (distance, id): the worst retained candidate —
// largest distance, largest id among equal distances — sits on top, so
// eviction always discards the highest global id of a tie.
struct HeapEntry {
  float dist_sq;
  std::uint32_t id;
  bool operator<(const HeapEntry& other) const {
    if (dist_sq != other.dist_sq) {
      return dist_sq < other.dist_sq;
    }
    return id < other.id;
  }
};

}  // namespace

InsertBuffer::InsertBuffer(std::size_t length, std::size_t chunk_capacity,
                           std::shared_ptr<const quant::RowQuantizer> quantizer)
    : length_(length),
      chunk_capacity_(chunk_capacity),
      quantizer_(std::move(quantizer)) {
  SOFA_CHECK(length_ > 0);
  SOFA_CHECK(chunk_capacity_ > 0);
  SOFA_CHECK(quantizer_ == nullptr || quantizer_->length() == length_);
}

std::size_t InsertBuffer::Append(const float* row, std::uint32_t global_id) {
  std::lock_guard<std::mutex> lock(mutex_);
  const std::size_t slot = count_ - base_;
  if (slot == chunks_.size() * chunk_capacity_) {
    chunks_.push_back(std::make_shared<Chunk>(
        length_, chunk_capacity_,
        quantizer_ == nullptr ? 0 : quantizer_->padded_length()));
  }
  Chunk& chunk = *chunks_[slot / chunk_capacity_];
  const std::size_t at = slot % chunk_capacity_;
  std::memcpy(chunk.rows.mutable_row(at), row, length_ * sizeof(float));
  chunk.ids[at] = global_id;
  if (quantizer_ != nullptr) {
    chunk.prunable[at] =
        quantizer_->Encode(
            row, chunk.codes.data() + at * quantizer_->padded_length())
            ? 1
            : 0;
  }
  return ++count_;  // row fully written before the count publishes it
}

std::size_t InsertBuffer::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return count_;
}

std::size_t InsertBuffer::first_retained() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return base_;
}

InsertBuffer::View InsertBuffer::Snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  View view;
  view.chunks.assign(chunks_.begin(), chunks_.end());
  view.base = base_;
  view.count = count_;
  return view;
}

std::size_t InsertBuffer::SearchKnn(
    const float* query, std::size_t k, std::size_t begin,
    std::vector<Neighbor>* out,
    const std::unordered_set<std::uint32_t>* exclude) const {
  ScanStats stats;
  SearchKnn(query, k, begin, out, exclude, &stats);
  return stats.scanned;
}

void InsertBuffer::SearchKnn(const float* query, std::size_t k,
                             std::size_t begin, std::vector<Neighbor>* out,
                             const std::unordered_set<std::uint32_t>* exclude,
                             ScanStats* stats) const {
  SOFA_CHECK(out != nullptr && stats != nullptr);
  const View view = Snapshot();
  SOFA_CHECK(begin >= view.base)
      << "scan from " << begin << " below first retained row " << view.base;
  if (begin >= view.count || k == 0) {
    return;
  }
  if (exclude != nullptr && exclude->empty()) {
    exclude = nullptr;
  }
  // The rowq tier shares one padded query across the scan.
  AlignedVector<float> padded_query;
  if (quantizer_ != nullptr) {
    padded_query.resize(quantizer_->padded_length());
    quantizer_->PadQuery(query, padded_query.data());
  }
  // Flat scan in ascending global-id order with the tree engine's
  // early-abandoning kernel. Strict `<` against the k-th best keeps the
  // first-seen — lowest — global id on exact distance ties; a completed
  // (non-abandoned) sum is the exact distance, bit-identical to what the
  // tree reports for the same row. Tombstoned rows are masked before any
  // distance work: the scan behaves as if they were never appended. With
  // a quantizer, rows whose quantized lower bound already meets the
  // current k-th best are cut without touching float data — admission is
  // strictly `d < bound` and the deflated bound never exceeds the exact
  // kernel's float, so the heap content (ids and distances) is
  // bit-identical to the unquantized scan, ties included.
  std::priority_queue<HeapEntry> heap;
  for (std::size_t r = begin; r < view.count; ++r) {
    const std::size_t slot = r - view.base;
    const Chunk& chunk = *view.chunks[slot / chunk_capacity_];
    const std::size_t at = slot % chunk_capacity_;
    if (exclude != nullptr && exclude->count(chunk.ids[at]) != 0) {
      continue;
    }
    ++stats->scanned;
    const float bound = heap.size() < k ? kInf : heap.top().dist_sq;
    if (quantizer_ != nullptr && bound < kInf && chunk.prunable[at] != 0) {
      ++stats->rowq_checked;
      // The kernel may stop early once its partial sum crosses the raw
      // threshold; the adjusted bound of a partial sum is still
      // admissible and the lb >= bound predicate below decides as
      // before, so the abandon point affects cost only.
      const float lb =
          quantizer_->AdjustedLowerBound(quant::RowqLowerBoundSquaredEarlyAbandon(
              padded_query.data(), quantizer_->mins(), quantizer_->deltas(),
              chunk.codes.data() + at * quantizer_->padded_length(),
              quantizer_->padded_length(),
              quantizer_->RawAbandonThreshold(bound, 1.0f)));
      if (lb >= bound) {
        ++stats->rowq_pruned;
        continue;
      }
    }
    const float d = SquaredEuclideanEarlyAbandon(query, chunk.rows.row(at),
                                                 length_, bound);
    ++stats->ed_computed;
    if (heap.size() < k) {
      heap.push(HeapEntry{d, chunk.ids[at]});
    } else if (d < bound) {
      heap.pop();
      heap.push(HeapEntry{d, chunk.ids[at]});
    }
  }
  std::vector<Neighbor> result(heap.size());
  for (std::size_t i = heap.size(); i-- > 0;) {
    result[i] = Neighbor{heap.top().id, std::sqrt(heap.top().dist_sq)};
    heap.pop();
  }
  out->insert(out->end(), result.begin(), result.end());
}

void InsertBuffer::CopyRange(std::size_t begin, std::size_t end, Dataset* rows,
                             std::vector<std::uint32_t>* ids,
                             const std::unordered_set<std::uint32_t>* exclude,
                             std::vector<std::uint32_t>* excluded) const {
  SOFA_CHECK(rows != nullptr && ids != nullptr);
  SOFA_CHECK_EQ(rows->length(), length_);
  const View view = Snapshot();
  SOFA_CHECK(begin >= view.base && end <= view.count && begin <= end);
  for (std::size_t r = begin; r < end; ++r) {
    const std::size_t slot = r - view.base;
    const Chunk& chunk = *view.chunks[slot / chunk_capacity_];
    const std::size_t at = slot % chunk_capacity_;
    if (exclude != nullptr && exclude->count(chunk.ids[at]) != 0) {
      if (excluded != nullptr) {
        excluded->push_back(chunk.ids[at]);
      }
      continue;
    }
    rows->Append(chunk.rows.row(at));
    ids->push_back(chunk.ids[at]);
  }
}

void InsertBuffer::TrimBelow(std::size_t offset) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t drop = 0;
  while (base_ + (drop + 1) * chunk_capacity_ <= offset &&
         drop < chunks_.size()) {
    ++drop;
  }
  if (drop > 0) {
    chunks_.erase(chunks_.begin(),
                  chunks_.begin() + static_cast<std::ptrdiff_t>(drop));
    base_ += drop * chunk_capacity_;
  }
}

}  // namespace ingest
}  // namespace sofa
