#include "ingest/wal.h"

#include <algorithm>
#include <cerrno>
#include <cstring>

#include <dirent.h>
#include <sys/stat.h>
#include <unistd.h>

#include "util/check.h"
#include "util/crc32.h"

namespace sofa {
namespace ingest {
namespace {

constexpr char kMagic[8] = {'S', 'O', 'F', 'A', 'W', 'A', 'L', '1'};
constexpr char kSegmentPrefix[] = "wal-";
constexpr char kSegmentSuffix[] = ".log";
// 8-byte frame header + payload; the cap rejects absurd sizes from a
// corrupted length field before any allocation happens.
constexpr std::size_t kMaxPayload = 256ull << 20;

std::string SegmentName(std::uint64_t seq) {
  char name[32];
  std::snprintf(name, sizeof(name), "%s%010llu%s", kSegmentPrefix,
                static_cast<unsigned long long>(seq), kSegmentSuffix);
  return name;
}

std::string SegmentPath(const std::string& dir, std::uint64_t seq) {
  return dir + "/" + SegmentName(seq);
}

// Sequence number of a segment file name, or false for foreign files.
bool ParseSegmentSeq(const std::string& name, std::uint64_t* seq) {
  const std::size_t prefix = sizeof(kSegmentPrefix) - 1;
  const std::size_t suffix = sizeof(kSegmentSuffix) - 1;
  if (name.size() <= prefix + suffix ||
      name.compare(0, prefix, kSegmentPrefix) != 0 ||
      name.compare(name.size() - suffix, suffix, kSegmentSuffix) != 0) {
    return false;
  }
  std::uint64_t value = 0;
  for (std::size_t i = prefix; i < name.size() - suffix; ++i) {
    if (name[i] < '0' || name[i] > '9') {
      return false;
    }
    value = value * 10 + static_cast<std::uint64_t>(name[i] - '0');
  }
  *seq = value;
  return true;
}

void PutU32(std::vector<unsigned char>* out, std::uint32_t v) {
  const std::size_t at = out->size();
  out->resize(at + sizeof(v));
  std::memcpy(out->data() + at, &v, sizeof(v));
}

void PutU64(std::vector<unsigned char>* out, std::uint64_t v) {
  const std::size_t at = out->size();
  out->resize(at + sizeof(v));
  std::memcpy(out->data() + at, &v, sizeof(v));
}

// mkdir -p: creates every missing component; true when `dir` exists (or
// already existed) afterwards.
bool MakeDirs(const std::string& dir) {
  std::string prefix;
  std::size_t at = 0;
  while (at < dir.size()) {
    const std::size_t next = dir.find('/', at);
    const std::size_t end = next == std::string::npos ? dir.size() : next;
    prefix.append(dir, at, end - at + (next == std::string::npos ? 0 : 1));
    at = end + 1;
    if (prefix.empty() || prefix == "/") {
      continue;
    }
    if (::mkdir(prefix.c_str(), 0755) != 0 && errno != EEXIST) {
      return false;
    }
  }
  struct stat info;
  return ::stat(dir.c_str(), &info) == 0 && S_ISDIR(info.st_mode);
}

struct SegmentEntry {
  std::uint64_t seq;
  std::string path;
};

std::vector<SegmentEntry> ListSegmentEntries(const std::string& dir) {
  std::vector<SegmentEntry> entries;
  DIR* handle = ::opendir(dir.c_str());
  if (handle == nullptr) {
    return entries;
  }
  while (const dirent* entry = ::readdir(handle)) {
    std::uint64_t seq = 0;
    if (ParseSegmentSeq(entry->d_name, &seq)) {
      entries.push_back(SegmentEntry{seq, dir + "/" + entry->d_name});
    }
  }
  ::closedir(handle);
  std::sort(entries.begin(), entries.end(),
            [](const SegmentEntry& a, const SegmentEntry& b) {
              return a.seq < b.seq;
            });
  return entries;
}

}  // namespace

WriteAheadLog::WriteAheadLog(std::string dir, std::size_t length,
                             WalConfig config)
    : dir_(std::move(dir)), length_(length), config_(config) {}

std::unique_ptr<WriteAheadLog> WriteAheadLog::Open(const std::string& dir,
                                                   std::size_t length,
                                                   WalConfig config) {
  SOFA_CHECK(length > 0);
  if (!MakeDirs(dir)) {
    return nullptr;
  }
  if (config.segment_bytes == 0) {
    config.segment_bytes = 64ull << 20;
  }
  std::unique_ptr<WriteAheadLog> wal(
      new WriteAheadLog(dir, length, config));
  // Never append to an existing segment — its tail may be torn; a fresh
  // segment keeps "torn implies last record of last segment" true.
  const std::vector<SegmentEntry> existing = ListSegmentEntries(dir);
  const std::uint64_t seq = existing.empty() ? 0 : existing.back().seq + 1;
  if (!wal->OpenSegment(seq)) {
    return nullptr;
  }
  return wal;
}

WriteAheadLog::~WriteAheadLog() { CloseSegment(/*sync=*/true); }

bool WriteAheadLog::OpenSegment(std::uint64_t seq) {
  const std::string path = SegmentPath(dir_, seq);
  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr) {
    return false;
  }
  file_ = file;
  seq_ = seq;
  segment_size_ = 0;
  const std::uint64_t seq64 = seq;
  const std::uint64_t len64 = length_;
  if (std::fwrite(kMagic, 1, sizeof(kMagic), file_) != sizeof(kMagic) ||
      std::fwrite(&seq64, 1, sizeof(seq64), file_) != sizeof(seq64) ||
      std::fwrite(&len64, 1, sizeof(len64), file_) != sizeof(len64) ||
      std::fflush(file_) != 0) {
    // Remove the header-less husk so replay never has to skip it; a
    // retry uses the next sequence number (gaps are fine).
    CloseSegment(/*sync=*/false);
    ::unlink(path.c_str());
    return false;
  }
  segment_size_ = sizeof(kMagic) + sizeof(seq64) + sizeof(len64);
  return true;
}

bool WriteAheadLog::CloseSegment(bool sync) {
  if (file_ == nullptr) {
    return true;
  }
  bool ok = std::fflush(file_) == 0;
  if (sync && ok) {
    ok = ::fsync(::fileno(file_)) == 0;
    if (ok) {
      unsynced_ = 0;
    }
  }
  ok = (std::fclose(file_) == 0) && ok;
  file_ = nullptr;
  return ok;
}

bool WriteAheadLog::Sync() {
  if (file_ == nullptr) {
    return false;
  }
  if (std::fflush(file_) != 0 || ::fsync(::fileno(file_)) != 0) {
    return false;
  }
  unsynced_ = 0;
  return true;
}

bool WriteAheadLog::AppendRecord(const std::vector<unsigned char>& payload) {
  if (file_ != nullptr && segment_size_ >= config_.segment_bytes) {
    // Rotation syncs the full segment before retiring it, so its records
    // are durable regardless of the batching window. A close/sync
    // failure here widens the power-loss window for that segment's tail
    // (the records were fflushed, so a mere process crash still loses
    // nothing) but must not poison the log.
    CloseSegment(/*sync=*/true);
  }
  if (file_ == nullptr && !OpenSegment(seq_ + 1)) {
    // No live segment (a previous rotation or open failed): the append
    // fails, but the next one retries a fresh segment — a transient
    // disk error must not leave the log permanently read-only.
    return false;
  }
  const std::uint32_t size = static_cast<std::uint32_t>(payload.size());
  const std::uint32_t crc = Crc32(payload.data(), payload.size());
  bool ok = std::fwrite(&size, 1, sizeof(size), file_) == sizeof(size) &&
            std::fwrite(&crc, 1, sizeof(crc), file_) == sizeof(crc) &&
            std::fwrite(payload.data(), 1, payload.size(), file_) ==
                payload.size() &&
            std::fflush(file_) == 0;
  if (ok && config_.sync_every > 0 && unsynced_ + 1 >= config_.sync_every) {
    ok = ::fsync(::fileno(file_)) == 0;
    if (ok) {
      unsynced_ = 0;
      segment_size_ += sizeof(size) + sizeof(crc) + payload.size();
      return true;
    }
  } else if (ok) {
    segment_size_ += sizeof(size) + sizeof(crc) + payload.size();
    ++unsynced_;
    return true;
  }
  // Refused record: roll the segment back to the last record boundary so
  // the partially — or, on an fsync failure, fully — written frame can
  // never replay (the caller was told "not logged"; a later accepted
  // record will reuse this id). If the rollback itself fails, abandon
  // the segment: the torn frame stays at its tail where replay stops
  // cleanly, and the next append rotates to a fresh segment.
  std::fflush(file_);
  if (::ftruncate(::fileno(file_), static_cast<off_t>(segment_size_)) != 0 ||
      std::fseek(file_, static_cast<long>(segment_size_), SEEK_SET) != 0) {
    CloseSegment(/*sync=*/true);
  }
  return false;
}

bool WriteAheadLog::AppendInsert(std::uint32_t id, const float* row) {
  std::vector<unsigned char> payload;
  payload.reserve(1 + sizeof(id) + length_ * sizeof(float));
  payload.push_back(static_cast<unsigned char>(WalRecordType::kInsert));
  PutU32(&payload, id);
  const std::size_t at = payload.size();
  payload.resize(at + length_ * sizeof(float));
  std::memcpy(payload.data() + at, row, length_ * sizeof(float));
  return AppendRecord(payload);
}

bool WriteAheadLog::AppendDelete(std::uint32_t id) {
  std::vector<unsigned char> payload;
  payload.reserve(1 + sizeof(id));
  payload.push_back(static_cast<unsigned char>(WalRecordType::kDelete));
  PutU32(&payload, id);
  return AppendRecord(payload);
}

bool WriteAheadLog::AppendCheckpoint(
    std::uint64_t next_id, const std::vector<std::uint32_t>& tombstones) {
  // The checkpoint always heads its own fresh segment: truncation then
  // reduces to "delete every segment with a lower sequence number", and
  // replay meeting the checkpoint first discards any stale prefix a
  // crash may have left behind. A failed close is tolerated (the
  // checkpoint supersedes that segment's records anyway); a failed open
  // leaves the log reopenable by the next append.
  CloseSegment(/*sync=*/true);
  if (!OpenSegment(seq_ + 1)) {
    return false;
  }
  std::vector<unsigned char> payload;
  payload.reserve(1 + 2 * sizeof(std::uint64_t) +
                  tombstones.size() * sizeof(std::uint32_t));
  payload.push_back(static_cast<unsigned char>(WalRecordType::kCheckpoint));
  PutU64(&payload, next_id);
  PutU64(&payload, tombstones.size());
  for (const std::uint32_t id : tombstones) {
    PutU32(&payload, id);
  }
  if (!AppendRecord(payload) || !Sync()) {
    return false;
  }
  // Only after the checkpoint is durable may its predecessors go.
  for (const SegmentEntry& entry : ListSegmentEntries(dir_)) {
    if (entry.seq < seq_) {
      ::unlink(entry.path.c_str());
    }
  }
  return true;
}

std::vector<std::string> WriteAheadLog::ListSegments(const std::string& dir) {
  std::vector<std::string> paths;
  for (const SegmentEntry& entry : ListSegmentEntries(dir)) {
    paths.push_back(entry.path);
  }
  return paths;
}

WalReplayStats WriteAheadLog::Replay(
    const std::string& dir, std::size_t length,
    const std::function<void(const WalRecord&)>& apply) {
  WalReplayStats stats;
  for (const SegmentEntry& entry : ListSegmentEntries(dir)) {
    std::FILE* file = std::fopen(entry.path.c_str(), "rb");
    if (file == nullptr) {
      // Skip, like a bad header: later segments still replay, and the
      // id-sequence validation layered on top (Compactor::Recover) then
      // sees the gap this segment's records leave and fails the
      // recovery instead of silently serving without them.
      stats.tail_truncated = true;
      continue;
    }
    ++stats.segments;
    char magic[8];
    std::uint64_t seq = 0;
    std::uint64_t file_length = 0;
    if (std::fread(magic, 1, sizeof(magic), file) != sizeof(magic) ||
        std::memcmp(magic, kMagic, sizeof(kMagic)) != 0 ||
        std::fread(&seq, 1, sizeof(seq), file) != sizeof(seq) ||
        std::fread(&file_length, 1, sizeof(file_length), file) !=
            sizeof(file_length) ||
        file_length != length) {
      // Unreadable header: skip the whole segment. Later segments are
      // still replayed — a writer that appended them recovered exactly
      // the valid prefix first, and consumers validate the id sequence
      // (Compactor::Recover) to detect genuine loss.
      std::fclose(file);
      stats.tail_truncated = true;
      continue;
    }
    while (true) {
      std::uint32_t size = 0;
      std::uint32_t crc = 0;
      const std::size_t header_read = std::fread(&size, 1, sizeof(size), file);
      if (header_read == 0) {
        break;  // clean end of segment
      }
      if (header_read != sizeof(size) ||
          std::fread(&crc, 1, sizeof(crc), file) != sizeof(crc) ||
          size == 0 || size > kMaxPayload) {
        stats.tail_truncated = true;  // torn frame header
        break;
      }
      std::vector<unsigned char> payload(size);
      if (std::fread(payload.data(), 1, size, file) != size ||
          Crc32(payload.data(), size) != crc) {
        stats.tail_truncated = true;  // torn or corrupt payload
        break;
      }
      WalRecord record;
      const unsigned char* body = payload.data() + 1;
      const std::size_t body_size = size - 1;
      bool valid = true;
      switch (static_cast<WalRecordType>(payload[0])) {
        case WalRecordType::kInsert: {
          record.type = WalRecordType::kInsert;
          if (body_size != sizeof(record.id) + length * sizeof(float)) {
            valid = false;
            break;
          }
          std::memcpy(&record.id, body, sizeof(record.id));
          record.row.resize(length);
          std::memcpy(record.row.data(), body + sizeof(record.id),
                      length * sizeof(float));
          ++stats.inserts;
          break;
        }
        case WalRecordType::kDelete: {
          record.type = WalRecordType::kDelete;
          if (body_size != sizeof(record.id)) {
            valid = false;
            break;
          }
          std::memcpy(&record.id, body, sizeof(record.id));
          ++stats.deletes;
          break;
        }
        case WalRecordType::kCheckpoint: {
          record.type = WalRecordType::kCheckpoint;
          std::uint64_t count = 0;
          if (body_size < sizeof(record.next_id) + sizeof(count)) {
            valid = false;
            break;
          }
          std::memcpy(&record.next_id, body, sizeof(record.next_id));
          std::memcpy(&count, body + sizeof(record.next_id), sizeof(count));
          if (body_size != sizeof(record.next_id) + sizeof(count) +
                               count * sizeof(std::uint32_t)) {
            valid = false;
            break;
          }
          record.tombstones.resize(count);
          std::memcpy(record.tombstones.data(),
                      body + sizeof(record.next_id) + sizeof(count),
                      count * sizeof(std::uint32_t));
          ++stats.checkpoints;
          break;
        }
        default:
          valid = false;
      }
      if (!valid) {
        stats.tail_truncated = true;  // unknown type or malformed body
        break;
      }
      apply(record);
    }
    std::fclose(file);
  }
  return stats;
}

}  // namespace ingest
}  // namespace sofa
