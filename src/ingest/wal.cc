#include "ingest/wal.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>

#include <dirent.h>
#include <sys/stat.h>
#include <unistd.h>

#include "util/check.h"
#include "util/crc32.h"
#include "util/fsutil.h"

namespace sofa {
namespace ingest {
namespace {

constexpr char kMagic[8] = {'S', 'O', 'F', 'A', 'W', 'A', 'L', '2'};
constexpr char kSegmentPrefix[] = "wal-";
constexpr char kSegmentSuffix[] = ".log";
// Frame header + payload; the cap rejects absurd sizes from a corrupted
// length field before any allocation happens.
constexpr std::size_t kMaxPayload = 256ull << 20;
// magic + segment_seq + series_length + first_seqno.
constexpr std::size_t kSegmentHeaderBytes = sizeof(kMagic) + 3 * sizeof(std::uint64_t);
// payload_size + crc + seqno.
constexpr std::size_t kFrameHeaderBytes =
    2 * sizeof(std::uint32_t) + sizeof(std::uint64_t);

std::string SegmentName(std::uint64_t seq) {
  char name[32];
  std::snprintf(name, sizeof(name), "%s%010llu%s", kSegmentPrefix,
                static_cast<unsigned long long>(seq), kSegmentSuffix);
  return name;
}

std::string SegmentPath(const std::string& dir, std::uint64_t seq) {
  return dir + "/" + SegmentName(seq);
}

// Sequence number of a segment file name, or false for foreign files.
bool ParseSegmentSeq(const std::string& name, std::uint64_t* seq) {
  const std::size_t prefix = sizeof(kSegmentPrefix) - 1;
  const std::size_t suffix = sizeof(kSegmentSuffix) - 1;
  if (name.size() <= prefix + suffix ||
      name.compare(0, prefix, kSegmentPrefix) != 0 ||
      name.compare(name.size() - suffix, suffix, kSegmentSuffix) != 0) {
    return false;
  }
  std::uint64_t value = 0;
  for (std::size_t i = prefix; i < name.size() - suffix; ++i) {
    if (name[i] < '0' || name[i] > '9') {
      return false;
    }
    value = value * 10 + static_cast<std::uint64_t>(name[i] - '0');
  }
  *seq = value;
  return true;
}

void PutU32(std::vector<unsigned char>* out, std::uint32_t v) {
  const std::size_t at = out->size();
  out->resize(at + sizeof(v));
  std::memcpy(out->data() + at, &v, sizeof(v));
}

void PutU64(std::vector<unsigned char>* out, std::uint64_t v) {
  const std::size_t at = out->size();
  out->resize(at + sizeof(v));
  std::memcpy(out->data() + at, &v, sizeof(v));
}

struct SegmentEntry {
  std::uint64_t seq;
  std::string path;
};

std::vector<SegmentEntry> ListSegmentEntries(const std::string& dir) {
  std::vector<SegmentEntry> entries;
  DIR* handle = ::opendir(dir.c_str());
  if (handle == nullptr) {
    return entries;
  }
  while (const dirent* entry = ::readdir(handle)) {
    std::uint64_t seq = 0;
    if (ParseSegmentSeq(entry->d_name, &seq)) {
      entries.push_back(SegmentEntry{seq, dir + "/" + entry->d_name});
    }
  }
  ::closedir(handle);
  std::sort(entries.begin(), entries.end(),
            [](const SegmentEntry& a, const SegmentEntry& b) {
              return a.seq < b.seq;
            });
  return entries;
}

// Reads a segment header; returns false on short read / wrong magic /
// wrong series length.
bool ReadSegmentHeader(std::FILE* file, std::size_t length,
                       std::uint64_t* first_seqno) {
  char magic[8];
  std::uint64_t seq = 0;
  std::uint64_t file_length = 0;
  std::uint64_t first = 0;
  if (std::fread(magic, 1, sizeof(magic), file) != sizeof(magic) ||
      std::memcmp(magic, kMagic, sizeof(kMagic)) != 0 ||
      std::fread(&seq, 1, sizeof(seq), file) != sizeof(seq) ||
      std::fread(&file_length, 1, sizeof(file_length), file) !=
          sizeof(file_length) ||
      std::fread(&first, 1, sizeof(first), file) != sizeof(first) ||
      file_length != length) {
    return false;
  }
  *first_seqno = first;
  return true;
}

// Reads one frame; returns the payload (empty on a torn/corrupt frame,
// with *end set), validating the CRC over seqno‖payload.
bool ReadFrame(std::FILE* file, std::vector<unsigned char>* payload,
               std::uint64_t* seqno, bool* clean_end) {
  *clean_end = false;
  std::uint32_t size = 0;
  std::uint32_t crc = 0;
  std::uint64_t sq = 0;
  const std::size_t header_read = std::fread(&size, 1, sizeof(size), file);
  if (header_read == 0) {
    *clean_end = true;  // clean end of segment
    return false;
  }
  if (header_read != sizeof(size) ||
      std::fread(&crc, 1, sizeof(crc), file) != sizeof(crc) ||
      std::fread(&sq, 1, sizeof(sq), file) != sizeof(sq) || size == 0 ||
      size > kMaxPayload) {
    return false;  // torn frame header
  }
  payload->resize(size);
  if (std::fread(payload->data(), 1, size, file) != size) {
    return false;  // torn payload
  }
  if (Crc32(payload->data(), size, Crc32(&sq, sizeof(sq))) != crc) {
    return false;  // corrupt seqno or payload
  }
  *seqno = sq;
  return true;
}

// The sequence number the next record appended to `dir` must carry:
// one past the last valid record of the newest readable segment (the
// torn tail of a crashed writer is skipped — its records were never
// acknowledged as a whole frame), or that segment's header first_seqno
// when it holds no records, or 1 for a fresh directory.
std::uint64_t ScanNextSeqno(const std::string& dir, std::size_t length) {
  const std::vector<SegmentEntry> entries = ListSegmentEntries(dir);
  for (auto it = entries.rbegin(); it != entries.rend(); ++it) {
    std::FILE* file = std::fopen(it->path.c_str(), "rb");
    if (file == nullptr) {
      continue;
    }
    std::uint64_t first_seqno = 0;
    if (!ReadSegmentHeader(file, length, &first_seqno)) {
      std::fclose(file);
      continue;  // foreign or truncated header: try an older segment
    }
    std::uint64_t next = first_seqno;
    std::vector<unsigned char> payload;
    std::uint64_t seqno = 0;
    bool clean_end = false;
    while (ReadFrame(file, &payload, &seqno, &clean_end)) {
      next = seqno + 1;
    }
    std::fclose(file);
    return next == 0 ? 1 : next;
  }
  return 1;
}

}  // namespace

WriteAheadLog::WriteAheadLog(std::string dir, std::size_t length,
                             WalConfig config)
    : dir_(std::move(dir)), length_(length), config_(config) {
  if (config_.registry != nullptr) {
    obs::Registry* registry = config_.registry;
    fsync_total_ = registry->GetCounter("sofa_wal_fsync_total", {},
                                        "WAL fsync calls");
    obs::HistogramOptions fsync_options;
    fsync_options.min_value = 1e-3;
    fsync_options.max_value = 1e4;
    fsync_ms_ = registry->GetHistogram("sofa_wal_fsync_ms", fsync_options,
                                       {}, "WAL fsync latency (ms)");
    records_total_ = registry->GetCounter("sofa_wal_appended_records_total",
                                          {}, "Records appended to the WAL");
    segments_total_ = registry->GetCounter("sofa_wal_segments_opened_total",
                                           {}, "WAL segment files opened");
    obs::HistogramOptions batch_options;
    batch_options.min_value = 1.0;
    batch_options.max_value = 1e5;
    batch_options.buckets_per_decade = 10;
    batch_size_ = registry->GetHistogram(
        "sofa_wal_commit_batch_size", batch_options, {},
        "Records per group-commit batch (AppendBatch)");
  }
}

bool WriteAheadLog::FsyncTimed() {
  const auto start = std::chrono::steady_clock::now();
  const bool ok = ::fsync(::fileno(file_)) == 0;
  if (fsync_total_ != nullptr) {
    fsync_total_->Add();
    fsync_ms_->Record(std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - start)
                          .count());
  }
  return ok;
}

std::unique_ptr<WriteAheadLog> WriteAheadLog::Open(const std::string& dir,
                                                   std::size_t length,
                                                   WalConfig config) {
  SOFA_CHECK(length > 0);
  if (!MakeDirs(dir)) {
    return nullptr;
  }
  if (config.segment_bytes == 0) {
    config.segment_bytes = 64ull << 20;
  }
  std::unique_ptr<WriteAheadLog> wal(
      new WriteAheadLog(dir, length, config));
  // Never append to an existing segment — its tail may be torn; a fresh
  // segment keeps "torn implies last record of a retired writer" true.
  // The record sequence continues where the retained log ends, so the
  // chain stays contiguous across process restarts and a re-used torn
  // tail's seqnos are re-issued to the records that replace them.
  const std::vector<SegmentEntry> existing = ListSegmentEntries(dir);
  const std::uint64_t seq = existing.empty() ? 0 : existing.back().seq + 1;
  wal->next_seqno_ = ScanNextSeqno(dir, length);
  if (!wal->OpenSegment(seq)) {
    return nullptr;
  }
  return wal;
}

WriteAheadLog::~WriteAheadLog() { CloseSegment(/*sync=*/true); }

bool WriteAheadLog::OpenSegment(std::uint64_t seq) {
  const std::string path = SegmentPath(dir_, seq);
  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr) {
    return false;
  }
  file_ = file;
  seq_ = seq;
  segment_size_ = 0;
  const std::uint64_t seq64 = seq;
  const std::uint64_t len64 = length_;
  const std::uint64_t first = next_seqno_;
  if (std::fwrite(kMagic, 1, sizeof(kMagic), file_) != sizeof(kMagic) ||
      std::fwrite(&seq64, 1, sizeof(seq64), file_) != sizeof(seq64) ||
      std::fwrite(&len64, 1, sizeof(len64), file_) != sizeof(len64) ||
      std::fwrite(&first, 1, sizeof(first), file_) != sizeof(first) ||
      std::fflush(file_) != 0) {
    // Remove the header-less husk so replay never has to skip it; a
    // retry uses the next sequence number (gaps are fine).
    CloseSegment(/*sync=*/false);
    ::unlink(path.c_str());
    return false;
  }
  segment_size_ = kSegmentHeaderBytes;
  if (segments_total_ != nullptr) {
    segments_total_->Add();
  }
  return true;
}

bool WriteAheadLog::CloseSegment(bool sync) {
  if (file_ == nullptr) {
    return true;
  }
  bool ok = std::fflush(file_) == 0;
  if (sync && ok) {
    ok = FsyncTimed();
    if (ok) {
      unsynced_ = 0;
    }
  }
  ok = (std::fclose(file_) == 0) && ok;
  file_ = nullptr;
  return ok;
}

bool WriteAheadLog::Sync() {
  if (file_ == nullptr) {
    return false;
  }
  if (std::fflush(file_) != 0 || !FsyncTimed()) {
    return false;
  }
  unsynced_ = 0;
  return true;
}

bool WriteAheadLog::AppendFrames(
    const std::vector<std::vector<unsigned char>>& payloads) {
  if (payloads.empty()) {
    return true;
  }
  if (file_ != nullptr && segment_size_ >= config_.segment_bytes) {
    // Rotation syncs the full segment before retiring it, so its records
    // are durable regardless of the batching window. A close/sync
    // failure here widens the power-loss window for that segment's tail
    // (the records were fflushed, so a mere process crash still loses
    // nothing) but must not poison the log.
    CloseSegment(/*sync=*/true);
  }
  if (file_ == nullptr && !OpenSegment(seq_ + 1)) {
    // No live segment (a previous rotation or open failed): the append
    // fails, but the next one retries a fresh segment — a transient
    // disk error must not leave the log permanently read-only.
    return false;
  }
  // One contiguous buffer for the whole batch: the group-commit leader
  // pays a single fwrite + fflush (+ at most one fsync) for every record
  // staged behind it.
  std::vector<unsigned char> frames;
  std::size_t total = 0;
  for (const std::vector<unsigned char>& payload : payloads) {
    total += kFrameHeaderBytes + payload.size();
  }
  frames.reserve(total);
  std::uint64_t seqno = next_seqno_;
  for (const std::vector<unsigned char>& payload : payloads) {
    const std::uint32_t crc =
        Crc32(payload.data(), payload.size(), Crc32(&seqno, sizeof(seqno)));
    PutU32(&frames, static_cast<std::uint32_t>(payload.size()));
    PutU32(&frames, crc);
    PutU64(&frames, seqno);
    frames.insert(frames.end(), payload.begin(), payload.end());
    ++seqno;
  }
  if (batch_size_ != nullptr) {
    batch_size_->Record(static_cast<double>(payloads.size()));
  }
  bool ok = std::fwrite(frames.data(), 1, frames.size(), file_) ==
                frames.size() &&
            std::fflush(file_) == 0;
  if (ok && config_.sync_every > 0 &&
      unsynced_ + payloads.size() >= config_.sync_every) {
    ok = FsyncTimed();
    if (ok) {
      unsynced_ = 0;
      segment_size_ += frames.size();
      next_seqno_ = seqno;
      if (records_total_ != nullptr) {
        records_total_->Add(payloads.size());
      }
      return true;
    }
  } else if (ok) {
    segment_size_ += frames.size();
    unsynced_ += payloads.size();
    next_seqno_ = seqno;
    if (records_total_ != nullptr) {
      records_total_->Add(payloads.size());
    }
    return true;
  }
  // Refused batch: roll the segment back to the batch's start boundary
  // so no partially — or, on an fsync failure, fully — written frame of
  // it can ever replay (the callers were told "not logged"; later
  // accepted records will reuse these ids and seqnos). If the rollback
  // itself fails, abandon the segment: the torn frames stay at its tail
  // where replay stops cleanly, and the next append rotates to a fresh
  // segment.
  std::fflush(file_);
  if (::ftruncate(::fileno(file_), static_cast<off_t>(segment_size_)) != 0 ||
      std::fseek(file_, static_cast<long>(segment_size_), SEEK_SET) != 0) {
    CloseSegment(/*sync=*/true);
  }
  return false;
}

bool WriteAheadLog::AppendBatch(const std::vector<WalAppend>& batch) {
  std::vector<std::vector<unsigned char>> payloads;
  payloads.reserve(batch.size());
  for (const WalAppend& record : batch) {
    std::vector<unsigned char> payload;
    switch (record.type) {
      case WalRecordType::kInsert: {
        SOFA_DCHECK(record.row != nullptr);
        payload.reserve(1 + sizeof(record.id) + length_ * sizeof(float));
        payload.push_back(
            static_cast<unsigned char>(WalRecordType::kInsert));
        PutU32(&payload, record.id);
        const std::size_t at = payload.size();
        payload.resize(at + length_ * sizeof(float));
        std::memcpy(payload.data() + at, record.row,
                    length_ * sizeof(float));
        break;
      }
      case WalRecordType::kDelete: {
        payload.reserve(1 + sizeof(record.id));
        payload.push_back(
            static_cast<unsigned char>(WalRecordType::kDelete));
        PutU32(&payload, record.id);
        break;
      }
      case WalRecordType::kCheckpoint:
        return false;  // checkpoints go through AppendCheckpoint only
    }
    payloads.push_back(std::move(payload));
  }
  return AppendFrames(payloads);
}

bool WriteAheadLog::AppendInsert(std::uint32_t id, const float* row) {
  return AppendBatch({WalAppend{WalRecordType::kInsert, id, row}});
}

bool WriteAheadLog::AppendDelete(std::uint32_t id) {
  return AppendBatch({WalAppend{WalRecordType::kDelete, id, nullptr}});
}

bool WriteAheadLog::AppendCheckpoint(
    std::uint64_t next_id, const std::vector<std::uint32_t>& tombstones) {
  // The checkpoint always heads its own fresh segment: truncation then
  // reduces to "delete every segment with a lower sequence number", and
  // replay meeting the checkpoint first discards any stale prefix a
  // crash may have left behind. A failed close is tolerated (the
  // checkpoint supersedes that segment's records anyway); a failed open
  // leaves the log reopenable by the next append.
  CloseSegment(/*sync=*/true);
  if (!OpenSegment(seq_ + 1)) {
    return false;
  }
  std::vector<unsigned char> payload;
  payload.reserve(1 + 2 * sizeof(std::uint64_t) +
                  tombstones.size() * sizeof(std::uint32_t));
  payload.push_back(static_cast<unsigned char>(WalRecordType::kCheckpoint));
  PutU64(&payload, next_id);
  PutU64(&payload, tombstones.size());
  for (const std::uint32_t id : tombstones) {
    PutU32(&payload, id);
  }
  if (!AppendFrames({payload}) || !Sync()) {
    return false;
  }
  // Only after the checkpoint is durable may its predecessors go.
  for (const SegmentEntry& entry : ListSegmentEntries(dir_)) {
    if (entry.seq < seq_) {
      ::unlink(entry.path.c_str());
    }
  }
  return true;
}

bool WriteAheadLog::Rotate(std::uint64_t* new_segment_seq) {
  SOFA_CHECK(new_segment_seq != nullptr);
  // The close must sync: the fold point promises every record below the
  // new segment is durable, batching window included.
  if (file_ != nullptr && !CloseSegment(/*sync=*/true)) {
    return false;
  }
  if (!OpenSegment(seq_ + 1)) {
    return false;
  }
  *new_segment_seq = seq_;
  return true;
}

void WriteAheadLog::TruncateBelow(std::uint64_t keep_segment_seq) {
  const std::uint64_t keep = std::min(keep_segment_seq, seq_);
  for (const SegmentEntry& entry : ListSegmentEntries(dir_)) {
    if (entry.seq < keep) {
      ::unlink(entry.path.c_str());
    }
  }
}

std::vector<std::string> WriteAheadLog::ListSegments(const std::string& dir) {
  std::vector<std::string> paths;
  for (const SegmentEntry& entry : ListSegmentEntries(dir)) {
    paths.push_back(entry.path);
  }
  return paths;
}

WalReplayStats WriteAheadLog::Replay(
    const std::string& dir, std::size_t length,
    const std::function<void(const WalRecord&)>& apply,
    std::uint64_t expected_first_seqno) {
  WalReplayStats stats;
  // Highest stream position the retained log provably reached: record
  // seqnos + segment-header first_seqnos. A log that never reaches the
  // caller's expected fold point was recreated or lost wholesale — a
  // hole with zero surviving records, flagged at the end.
  std::uint64_t max_position = 0;
  for (const SegmentEntry& entry : ListSegmentEntries(dir)) {
    std::FILE* file = std::fopen(entry.path.c_str(), "rb");
    if (file == nullptr) {
      // Skip, like a bad header: later segments still replay, and the
      // seqno chain then shows the hole this segment's records leave
      // (sequence_gap) instead of the loss passing as a torn tail.
      stats.tail_truncated = true;
      continue;
    }
    ++stats.segments;
    std::uint64_t header_first_seqno = 0;
    if (!ReadSegmentHeader(file, length, &header_first_seqno)) {
      // Unreadable or foreign header: skip the whole segment. If it held
      // records of this log, the chain check below flags the gap.
      std::fclose(file);
      stats.tail_truncated = true;
      continue;
    }
    // Header-level chain check: the writer stamps each segment with the
    // seqno its first record will carry, so even an EMPTY retained
    // segment proves where the stream had advanced to. A header past
    // the expected chain position means the records in between are gone
    // (e.g. a generation directory was lost after its commit truncated
    // the log) — detectable even when no record survives at all.
    const std::uint64_t chain_next =
        stats.last_seqno != 0 ? stats.last_seqno + 1 : expected_first_seqno;
    if (chain_next != 0 && header_first_seqno > chain_next) {
      stats.sequence_gap = true;
    }
    max_position = std::max(max_position, header_first_seqno);
    while (true) {
      std::vector<unsigned char> payload;
      std::uint64_t seqno = 0;
      bool clean_end = false;
      if (!ReadFrame(file, &payload, &seqno, &clean_end)) {
        if (!clean_end) {
          stats.tail_truncated = true;  // torn or corrupt frame
        }
        break;
      }
      // The chain check: records must be delivered with contiguous
      // seqnos. The first delivered record anchors the chain (and must
      // not start past the caller's expected fold point); after that,
      // any jump or repeat means interior records are gone or the log
      // was tampered with — either way, not a state to serve from.
      if (stats.last_seqno == 0) {
        stats.first_seqno = seqno;
        if (expected_first_seqno != 0 && seqno > expected_first_seqno) {
          stats.sequence_gap = true;
        }
      } else if (seqno != stats.last_seqno + 1) {
        stats.sequence_gap = true;
      }
      stats.last_seqno = seqno;
      WalRecord record;
      record.seqno = seqno;
      const unsigned char* body = payload.data() + 1;
      const std::size_t body_size = payload.size() - 1;
      bool valid = true;
      switch (static_cast<WalRecordType>(payload[0])) {
        case WalRecordType::kInsert: {
          record.type = WalRecordType::kInsert;
          if (body_size != sizeof(record.id) + length * sizeof(float)) {
            valid = false;
            break;
          }
          std::memcpy(&record.id, body, sizeof(record.id));
          record.row.resize(length);
          std::memcpy(record.row.data(), body + sizeof(record.id),
                      length * sizeof(float));
          ++stats.inserts;
          break;
        }
        case WalRecordType::kDelete: {
          record.type = WalRecordType::kDelete;
          if (body_size != sizeof(record.id)) {
            valid = false;
            break;
          }
          std::memcpy(&record.id, body, sizeof(record.id));
          ++stats.deletes;
          break;
        }
        case WalRecordType::kCheckpoint: {
          record.type = WalRecordType::kCheckpoint;
          std::uint64_t count = 0;
          if (body_size < sizeof(record.next_id) + sizeof(count)) {
            valid = false;
            break;
          }
          std::memcpy(&record.next_id, body, sizeof(record.next_id));
          std::memcpy(&count, body + sizeof(record.next_id), sizeof(count));
          if (body_size != sizeof(record.next_id) + sizeof(count) +
                               count * sizeof(std::uint32_t)) {
            valid = false;
            break;
          }
          record.tombstones.resize(count);
          std::memcpy(record.tombstones.data(),
                      body + sizeof(record.next_id) + sizeof(count),
                      count * sizeof(std::uint32_t));
          ++stats.checkpoints;
          break;
        }
        default:
          valid = false;
      }
      if (!valid) {
        stats.tail_truncated = true;  // unknown type or malformed body
        break;
      }
      max_position = std::max(max_position, seqno + 1);
      apply(record);
    }
    std::fclose(file);
  }
  if (expected_first_seqno != 0 && max_position < expected_first_seqno) {
    // The retained log never even reached the fold point the caller
    // recovered to — it was deleted and recreated (seqnos restarted) or
    // its entire tail is gone. Nothing here is trustworthy relative to
    // that manifest.
    stats.sequence_gap = true;
  }
  return stats;
}

}  // namespace ingest
}  // namespace sofa
