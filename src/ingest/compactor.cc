#include "ingest/compactor.h"

#include <algorithm>
#include <limits>
#include <utility>

#include "util/check.h"

namespace sofa {
namespace ingest {

RecoveredBase MakeRecoveredBase(const persist::LoadedGeneration& loaded) {
  RecoveredBase base;
  base.generation_seq = loaded.manifest.generation_seq;
  base.route_total =
      static_cast<std::size_t>(loaded.manifest.route_total);
  base.next_id = static_cast<std::uint32_t>(loaded.manifest.next_id);
  base.wal_last_seqno = loaded.manifest.wal_last_seqno;
  base.tombstones = loaded.manifest.tombstones;
  base.buffer_rows = loaded.buffer_rows;
  base.buffer_ids = loaded.buffer_ids;
  return base;
}

Compactor::Compactor(service::SearchService* service,
                     std::shared_ptr<const shard::ShardedIndex> base,
                     IngestConfig config, const RecoveredBase* recovered)
    : service_(service),
      config_(config),
      base_total_(base == nullptr
                      ? 0
                      : (recovered != nullptr ? recovered->route_total
                                              : base->size())),
      length_(base == nullptr ? 0 : base->length()),
      num_shards_(base == nullptr ? 0 : base->num_shards()),
      assignment_(base == nullptr ? shard::ShardAssignment::kContiguous
                                  : base->config().assignment) {
  SOFA_CHECK(service_ != nullptr);
  SOFA_CHECK(base != nullptr);
  SOFA_CHECK(base_total_ < std::numeric_limits<std::uint32_t>::max());
  for (std::size_t s = 0; s < num_shards_; ++s) {
    SOFA_CHECK(base->shard(s).scheme != nullptr)
        << "compaction rebuilds need per-shard scheme handles";
  }
  if (config_.compact_threshold == 0) {
    config_.compact_threshold = 1;
  }
  if (config_.chunk_capacity == 0) {
    config_.chunk_capacity = 1024;
  }
  if (config_.max_pending == 0) {
    config_.max_pending = 8 * config_.compact_threshold * num_shards_;
  }
  sharded_ = std::move(base);
  buffers_.reserve(num_shards_);
  for (std::size_t s = 0; s < num_shards_; ++s) {
    // With the rowq tier enabled, buffered rows share the shard tree's
    // quantization grid so a row prunes on the same bound whether it is
    // answered from the buffer or, post-compaction, from the tree.
    std::shared_ptr<const quant::RowQuantizer> quantizer;
    if (sharded_->config().enable_rowq &&
        sharded_->shard(s).tree->rowq() != nullptr) {
      quantizer = sharded_->shard(s).tree->rowq()->quantizer_ptr();
    }
    buffers_.push_back(std::make_shared<InsertBuffer>(
        length_, config_.chunk_capacity, std::move(quantizer)));
  }
  tombstones_ = std::make_shared<TombstoneSet>();
  shard_tombstone_counts_ =
      std::make_shared<std::vector<std::atomic<std::size_t>>>(num_shards_);
  if (!config_.wal_dir.empty()) {
    if (config_.wal.registry == nullptr) {
      config_.wal.registry = config_.registry;
    }
    wal_ = WriteAheadLog::Open(config_.wal_dir, length_, config_.wal);
    SOFA_CHECK(wal_ != nullptr)
        << "cannot open write-ahead log in " << config_.wal_dir;
  }
  tree_covered_.assign(num_shards_, 0);
  shard_tombstoned_.assign(num_shards_, 0);
  if (recovered != nullptr) {
    // Resume from a persisted generation: the manifest's bookkeeping and
    // buffered tails become the pre-replay state, already durable — they
    // are NOT re-logged. Recover() then applies only the WAL tail past
    // the manifest's fold point.
    SOFA_CHECK(recovered->buffer_rows.size() == num_shards_ &&
               recovered->buffer_ids.size() == num_shards_);
    SOFA_CHECK(recovered->next_id >= base_total_ ||
               assignment_ == shard::ShardAssignment::kHash);
    next_id_ = recovered->next_id;
    id_base_ = recovered->next_id;
    from_recovered_ = true;
    publish_seq_ = recovered->generation_seq;
    wal_skip_seqno_ = recovered->wal_last_seqno;
    for (std::size_t s = 0; s < num_shards_; ++s) {
      const Dataset* rows = recovered->buffer_rows[s].get();
      const std::vector<std::uint32_t>& ids = recovered->buffer_ids[s];
      if (rows == nullptr) {
        SOFA_CHECK(ids.empty());
        continue;
      }
      SOFA_CHECK(rows->length() == length_ && ids.size() == rows->size());
      for (std::size_t r = 0; r < rows->size(); ++r) {
        buffers_[s]->Append(rows->row(r), ids[r]);
      }
      pending_ += rows->size();
    }
    for (const std::uint32_t id : recovered->tombstones) {
      const std::size_t s = RouteShard(id);
      (*shard_tombstone_counts_)[s].fetch_add(1, std::memory_order_relaxed);
      if (tombstones_->Add(id)) {
        deleted_ever_.insert(id);
        ++shard_tombstoned_[s];
        ++deleted_;
      } else {
        (*shard_tombstone_counts_)[s].fetch_sub(1,
                                                std::memory_order_relaxed);
      }
    }
  } else {
    next_id_ = static_cast<std::uint32_t>(base_total_);
    id_base_ = next_id_;
  }
  {
    // Publish the initial ingesting generation: base trees, buffer views
    // (seeded when resuming), tombstones. From here on every query sees
    // (tree ∪ buffer) \ tombstones.
    std::unique_lock<std::mutex> lock(mutex_);
    PublishLocked(sharded_, &lock);
  }
  if (config_.registry != nullptr) {
    obs::Registry* reg = config_.registry;
    static const char* kNames[8] = {
        "sofa_ingest_inserted_total",        "sofa_ingest_rejected_total",
        "sofa_ingest_invalid_total",         "sofa_ingest_deleted_total",
        "sofa_ingest_io_errors_total",       "sofa_ingest_compactions_total",
        "sofa_ingest_persisted_total",       "sofa_ingest_persist_failures_total"};
    static const char* kHelp[8] = {
        "Rows accepted by Insert()",
        "Rows bounced at the ingest admission bound",
        "Rows refused permanently (length mismatch, id exhaustion)",
        "Deletes accepted (recovered ones included)",
        "Mutations refused on WAL I/O failure",
        "Shard rebuilds published",
        "Generation directories committed to the store",
        "Failed generation persist attempts"};
    for (std::size_t i = 0; i < 8; ++i) {
      ing_counters_[i] = reg->GetCounter(kNames[i], {}, kHelp[i]);
    }
    ing_pending_ = reg->GetGauge("sofa_ingest_pending_rows", {},
                                 "Rows buffered, not yet folded into trees");
    ing_tombstones_ =
        reg->GetGauge("sofa_ingest_tombstones", {},
                      "Deleted ids not yet purged by compaction");
    ing_total_rows_ =
        reg->GetGauge("sofa_ingest_total_rows", {},
                      "Ids allocated: base + accepted inserts");
    SyncRegistry();
    collect_hook_id_ = reg->AddCollectHook([this] { SyncRegistry(); });
    collect_hook_registered_ = true;
  }
  compaction_thread_ = std::thread([this] { CompactorLoop(); });
}

void Compactor::SyncRegistry() {
  const IngestMetrics m = Metrics();
  ing_counters_[0]->Set(m.inserted);
  ing_counters_[1]->Set(m.rejected);
  ing_counters_[2]->Set(m.invalid);
  ing_counters_[3]->Set(m.deleted);
  ing_counters_[4]->Set(m.io_errors);
  ing_counters_[5]->Set(m.compactions);
  ing_counters_[6]->Set(m.persisted);
  ing_counters_[7]->Set(m.persist_failures);
  ing_pending_->Set(static_cast<double>(m.pending));
  ing_tombstones_->Set(static_cast<double>(m.tombstones));
  ing_total_rows_->Set(static_cast<double>(m.total_rows));
}

Compactor::~Compactor() {
  if (collect_hook_registered_) {
    // Before anything else: a Collect() racing the teardown must not call
    // back into a half-destroyed compactor. One last sync so the final
    // values outlive the hook.
    config_.registry->RemoveCollectHook(collect_hook_id_);
    collect_hook_registered_ = false;
    SyncRegistry();
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  work_cv_.notify_all();
  flush_cv_.notify_all();
  commit_cv_.notify_all();
  if (compaction_thread_.joinable()) {
    compaction_thread_.join();
  }
  // wal_'s destructor syncs the tail, so every acknowledged mutation is
  // on stable storage before the process can exit cleanly.
}

std::size_t Compactor::RouteShard(std::uint32_t id) const {
  return shard::ShardedIndex::AssignShard(assignment_, id, base_total_,
                                          num_shards_);
}

bool Compactor::CommitStaged(std::unique_lock<std::mutex>* lock,
                             const std::shared_ptr<StagedMutation>& entry) {
  while (!entry->done) {
    if (commit_leader_active_) {
      // A leader is writing; it (or a successor) will take this entry in
      // its next batch — group commit's whole point.
      commit_cv_.wait(*lock);
      continue;
    }
    LeaderCommitLocked(lock);
  }
  return entry->ok;
}

void Compactor::LeaderCommitLocked(std::unique_lock<std::mutex>* lock) {
  SOFA_DCHECK(!commit_leader_active_);
  commit_leader_active_ = true;
  std::vector<std::shared_ptr<StagedMutation>> batch(commit_queue_.begin(),
                                                     commit_queue_.end());
  commit_queue_.clear();
  std::vector<WalAppend> appends;
  appends.reserve(batch.size());
  for (const std::shared_ptr<StagedMutation>& staged : batch) {
    WalAppend record;
    record.type = staged->is_insert ? WalRecordType::kInsert
                                    : WalRecordType::kDelete;
    record.id = staged->id;
    record.row = staged->is_insert ? staged->row.data() : nullptr;
    appends.push_back(record);
  }
  // The one unlocked window of a mutation: the leader writes the whole
  // batch as consecutive frames (one fwrite + fflush, at most one
  // fsync). Mutations arriving meanwhile stage behind the queue and are
  // picked up by the next leader.
  lock->unlock();
  const bool ok = wal_->AppendBatch(appends);
  lock->lock();
  if (ok) {
    // Visibility, in staged (= id = log) order, exactly as if each
    // mutation had applied under the lock it was staged under.
    for (const std::shared_ptr<StagedMutation>& staged : batch) {
      if (staged->is_insert) {
        buffers_[staged->shard]->Append(staged->row.data(), staged->id);
        --staged_inserts_;
        ++pending_;
        ++inserted_;
      } else {
        ApplyDeleteLocked(staged->id, staged->shard);
      }
      staged->done = true;
      staged->ok = true;
    }
    if (config_.auto_compact) {
      for (const std::shared_ptr<StagedMutation>& staged : batch) {
        if (ShardWorkLocked(staged->shard) >= config_.compact_threshold) {
          work_cv_.notify_one();
          break;
        }
      }
    }
  } else {
    // The batch never reached the log (AppendBatch rolled the segment
    // back). Fail it — and everything staged behind it while we wrote:
    // those ids are higher than the failed ones, and committing them
    // would leave an id gap no recovery could replay across. Rolling
    // next_id_ back to the smallest refused insert id keeps the id
    // sequence dense for the next accepted insert.
    batch.insert(batch.end(), commit_queue_.begin(), commit_queue_.end());
    commit_queue_.clear();
    std::uint32_t min_failed = std::numeric_limits<std::uint32_t>::max();
    for (const std::shared_ptr<StagedMutation>& staged : batch) {
      if (staged->is_insert) {
        min_failed = std::min(min_failed, staged->id);
        --staged_inserts_;
      }
      ++io_errors_;
      staged->done = true;
      staged->ok = false;
    }
    if (min_failed != std::numeric_limits<std::uint32_t>::max()) {
      next_id_ = min_failed;
    }
  }
  commit_leader_active_ = false;
  commit_cv_.notify_all();
  if (flush_requested_) {
    work_cv_.notify_all();
  }
}

void Compactor::ApplyDeleteLocked(std::uint32_t id, std::size_t s) {
  // Count before Add: a reader whose view contains the id then provably
  // sees the incremented count (the TombstoneSet mutex orders them).
  (*shard_tombstone_counts_)[s].fetch_add(1, std::memory_order_relaxed);
  if (tombstones_->Add(id)) {
    deleted_ever_.insert(id);
    ++deleted_;
    ++shard_tombstoned_[s];
  } else {
    // Duplicate (two deletes of one id raced through staging): the
    // second record is a no-op on replay too.
    (*shard_tombstone_counts_)[s].fetch_sub(1, std::memory_order_relaxed);
  }
}

void Compactor::DrainCommitQueueLocked(std::unique_lock<std::mutex>* lock) {
  // Retires every staged mutation. Callers set persist_barrier_ first
  // when they need the queue to STAY empty afterwards (staging waits on
  // the barrier, so this terminates even under mutation pressure).
  while (commit_leader_active_ || !commit_queue_.empty()) {
    if (commit_leader_active_) {
      commit_cv_.wait(*lock);
    } else {
      LeaderCommitLocked(lock);
    }
  }
}

StatusOr<std::uint32_t> Compactor::Insert(const float* row,
                                          std::size_t length) {
  std::unique_lock<std::mutex> lock(mutex_);
  if (length != length_) {
    ++invalid_;
    return InvalidArgumentError("row length mismatch");
  }
  while (persist_barrier_ && !stopping_) {
    commit_cv_.wait(lock);  // a persist fold point is being taken
  }
  if (stopping_) {
    return ShutdownError();
  }
  if (pending_ + staged_inserts_ >= config_.max_pending) {
    ++rejected_;
    return RejectedError("ingest admission bound hit");
  }
  if (next_id_ == std::numeric_limits<std::uint32_t>::max()) {
    // Global-id space exhausted: the row can never be accepted (kRejected
    // would invite a futile retry loop), and a wrapped id would collide
    // with an existing row and break the ascending-id invariant.
    ++invalid_;
    return InvalidArgumentError("global id space exhausted");
  }
  const std::uint32_t id = next_id_;
  const std::size_t s = RouteShard(id);
  if (wal_ == nullptr) {
    // In-memory path: id assignment and append share the lock so each
    // buffer sees strictly ascending global ids (the merge's tie rule
    // depends on it).
    ++next_id_;
    buffers_[s]->Append(row, id);
    ++pending_;
    ++inserted_;
    if (config_.auto_compact &&
        ShardWorkLocked(s) >= config_.compact_threshold) {
      work_cv_.notify_one();
    }
    return id;
  }
  // Write-ahead via group commit: the id is consumed at stage time (the
  // staged order IS the id and log order), the row becomes visible only
  // after its batch is on the log, and a refused batch returns the ids.
  ++next_id_;
  auto staged = std::make_shared<StagedMutation>();
  staged->is_insert = true;
  staged->id = id;
  staged->shard = s;
  staged->row.assign(row, row + length_);
  commit_queue_.push_back(staged);
  ++staged_inserts_;
  if (!CommitStaged(&lock, staged)) {
    return IoError("WAL append failed");
  }
  return id;
}

Status Compactor::Delete(std::uint32_t id) {
  std::unique_lock<std::mutex> lock(mutex_);
  while (persist_barrier_ && !stopping_) {
    commit_cv_.wait(lock);
  }
  if (stopping_) {
    return ShutdownError();
  }
  if (id >= next_id_) {
    return NotFoundError("id was never inserted");
  }
  // deleted_ever_, not the tombstone set: a tombstone is purged once the
  // row is compacted away, but the id stays deleted forever. (A delete
  // staged but not yet committed is NOT in deleted_ever_ yet; a racing
  // second delete of the same id just stages a duplicate record, which
  // both apply and replay treat as a no-op.)
  if (deleted_ever_.count(id) != 0) {
    return AlreadyDeletedError();
  }
  const std::size_t s = RouteShard(id);
  if (wal_ == nullptr) {
    ApplyDeleteLocked(id, s);
    if (config_.auto_compact &&
        ShardWorkLocked(s) >= config_.compact_threshold) {
      work_cv_.notify_one();
    }
    return OkStatus();
  }
  auto staged = std::make_shared<StagedMutation>();
  staged->is_insert = false;
  staged->id = id;
  staged->shard = s;
  commit_queue_.push_back(staged);
  return CommitStaged(&lock, staged) ? OkStatus()
                                     : IoError("WAL append failed");
}

RecoverStats Compactor::Recover() {
  std::unique_lock<std::mutex> lock(mutex_);
  SOFA_CHECK(!recovered_ && inserted_ == 0)
      << "Recover() must run once, before any mutation";
  recovered_ = true;
  RecoverStats stats;
  if (wal_ == nullptr) {
    return stats;
  }
  // Replay in log order under the mutation lock. Application is
  // idempotent against the base: records at or below the recovered fold
  // point are skipped outright (the generation directory already holds
  // them — the crash-between-commit-and-truncate case), ids the base
  // already covers are skipped, so a log whose prefix predates a
  // checkpointed base replays cleanly; a genuine gap or contradiction
  // flips ok and ignores the rest (the log belongs to a different base,
  // or acknowledged records are gone).
  // Manifest-recovered logs must start no later than the fold point + 1;
  // classic logs may legitimately start anywhere (a checkpoint record
  // truncation reset the front), so no expectation is imposed there.
  const std::uint64_t expected_first =
      from_recovered_ ? wal_skip_seqno_ + 1 : 0;
  const WalReplayStats replayed = WriteAheadLog::Replay(
      config_.wal_dir, length_,
      [&](const WalRecord& record) {
        if (!stats.ok) {
          return;
        }
        if (record.seqno <= wal_skip_seqno_) {
          ++stats.records_skipped;
          return;
        }
        switch (record.type) {
          case WalRecordType::kInsert: {
            if (record.id < next_id_) {
              ++stats.inserts_skipped;
              return;
            }
            if (record.id != next_id_) {
              stats.ok = false;  // gap: records before this one are gone
              return;
            }
            const std::size_t s = RouteShard(record.id);
            buffers_[s]->Append(record.row.data(), record.id);
            ++next_id_;
            ++pending_;
            ++inserted_;
            ++stats.inserts_applied;
            return;
          }
          case WalRecordType::kDelete: {
            if (record.id >= next_id_) {
              stats.ok = false;  // delete of a row this log never created
              return;
            }
            const std::size_t s = RouteShard(record.id);
            (*shard_tombstone_counts_)[s].fetch_add(
                1, std::memory_order_relaxed);
            if (tombstones_->Add(record.id)) {
              deleted_ever_.insert(record.id);
              ++shard_tombstoned_[s];
              ++deleted_;
              ++stats.deletes_applied;
            } else {
              // Duplicate record (raced deletes): undo the count.
              (*shard_tombstone_counts_)[s].fetch_sub(
                  1, std::memory_order_relaxed);
            }
            return;
          }
          case WalRecordType::kCheckpoint: {
            // The checkpoint asserts the base holds rows [0, next_id);
            // anything else means base and log disagree.
            if (record.next_id > id_base_ || stats.inserts_applied != 0) {
              stats.ok = false;
              return;
            }
            for (std::size_t s = 0; s < num_shards_; ++s) {
              (*shard_tombstone_counts_)[s].store(
                  0, std::memory_order_relaxed);
            }
            shard_tombstoned_.assign(num_shards_, 0);
            for (const std::uint32_t id : record.tombstones) {
              const std::size_t s = RouteShard(id);
              ++shard_tombstoned_[s];
              (*shard_tombstone_counts_)[s].fetch_add(
                  1, std::memory_order_relaxed);
            }
            tombstones_->ResetTo(record.tombstones);
            deleted_ever_.clear();
            deleted_ever_.insert(record.tombstones.begin(),
                                 record.tombstones.end());
            deleted_ = record.tombstones.size();
            stats.deletes_applied = record.tombstones.size();
            ++stats.checkpoints;
            return;
          }
        }
      },
      expected_first);
  stats.tail_truncated = replayed.tail_truncated;
  stats.sequence_gap = replayed.sequence_gap;
  stats.last_seqno = replayed.last_seqno;
  if (replayed.sequence_gap) {
    // The seqno chain broke: acknowledged records are missing from the
    // retained log (an interior segment was lost or the tail starts past
    // the manifest's fold point). Deletes can vanish this way without
    // any id-sequence evidence — refuse instead of serving resurrected
    // rows.
    stats.ok = false;
  }
  if (config_.auto_compact) {
    work_cv_.notify_one();  // replayed buffers may already cross thresholds
  }
  return stats;
}

Status Compactor::Checkpoint() {
  std::unique_lock<std::mutex> lock(mutex_);
  if (wal_ == nullptr) {
    return UnavailableError("no WAL attached");
  }
  // The checkpoint must capture a state no in-flight batch can skew, and
  // the WAL writer admits one writer at a time — barrier + drain, like
  // the persist fold point.
  persist_barrier_ = true;
  DrainCommitQueueLocked(&lock);
  const bool ok = wal_->AppendCheckpoint(next_id_, tombstones_->SortedIds());
  persist_barrier_ = false;
  commit_cv_.notify_all();
  return ok ? OkStatus() : IoError("checkpoint append failed");
}

Status Compactor::PersistNow() {
  std::unique_lock<std::mutex> lock(mutex_);
  if (config_.store == nullptr) {
    return UnavailableError("no generation store attached");
  }
  if (stopping_) {
    return ShutdownError();
  }
  return PersistLocked(&lock) ? OkStatus() : IoError("persist failed");
}

bool Compactor::PersistLocked(std::unique_lock<std::mutex>* lock) {
  SOFA_CHECK(config_.store != nullptr);
  // One persist at a time: the heavy I/O below runs unlocked, and two
  // interleaved fold points would race on the store's staging directory.
  while (persist_in_flight_ && !stopping_) {
    commit_cv_.wait(*lock);
  }
  if (stopping_) {
    return false;
  }
  // Nothing new since the last commit (same publish, same WAL position):
  // re-persisting would only churn the committed directory.
  if (persisted_seq_ == publish_seq_ && commit_queue_.empty() &&
      !commit_leader_active_ &&
      (wal_ == nullptr || wal_->last_seqno() == persisted_wal_seqno_)) {
    return true;
  }
  persist_in_flight_ = true;
  // Fold point: pause staging, retire every in-flight mutation, then
  // capture state + rotate the log under the lock. After the rotation,
  // every record ≤ the captured seqno sits in segments below the new
  // one, and every later mutation lands above it — the manifest's
  // "replay only the tail" contract.
  persist_barrier_ = true;
  DrainCommitQueueLocked(lock);
  persist::PersistRequest request;
  request.generation_seq = publish_seq_;
  request.next_id = next_id_;
  request.route_total = base_total_;
  request.sharded = sharded_;
  request.tombstones = tombstones_->SortedIds();
  request.buffer_ids.resize(num_shards_);
  request.buffer_rows.reserve(num_shards_);
  for (std::size_t s = 0; s < num_shards_; ++s) {
    Dataset rows(length_);
    buffers_[s]->CopyRange(tree_covered_[s], buffers_[s]->size(), &rows,
                           &request.buffer_ids[s]);
    request.buffer_rows.push_back(std::move(rows));
  }
  std::uint64_t tail_segment = 0;
  if (wal_ != nullptr) {
    request.wal_last_seqno = wal_->last_seqno();
    if (!wal_->Rotate(&tail_segment)) {
      // No fold point, no persist: the untruncated log still covers
      // every mutation, so nothing is lost — only restart cost.
      persist_barrier_ = false;
      persist_in_flight_ = false;
      commit_cv_.notify_all();
      ++persist_failures_;
      return false;
    }
    request.wal_segment_seq = tail_segment;
  }
  persist_barrier_ = false;
  commit_cv_.notify_all();
  const std::uint64_t min_live = MinLiveSeqLocked();

  // The heavy I/O runs unlocked: the captured request is immutable (the
  // sharded generation by construction, the tails and tombstones by
  // copy). Mutations and queries flow meanwhile.
  lock->unlock();
  const bool ok = config_.store->Persist(request);
  if (ok) {
    if (wal_ != nullptr) {
      // Only after the generation commit is durable may the pre-fold
      // segments go — they held the only other copy of those mutations.
      wal_->TruncateBelow(tail_segment);
    }
    // GC of superseded generation directories, gated on the publish-seq
    // retirement logic: never past the generation just committed, and
    // never past a generation some in-flight query batch still pins.
    config_.store->RemoveGenerationsBelow(
        std::min(request.generation_seq, min_live));
  }
  lock->lock();
  if (ok) {
    ++persisted_;
    persisted_seq_ = request.generation_seq;
    persisted_wal_seqno_ = request.wal_last_seqno;
  } else {
    ++persist_failures_;
  }
  persist_in_flight_ = false;
  commit_cv_.notify_all();
  return ok;
}

std::uint64_t Compactor::MinLiveSeqLocked() const {
  std::uint64_t min_seq = publish_seq_;
  for (const LiveGeneration& live : live_) {
    if (!live.snapshot.expired()) {
      min_seq = std::min(min_seq, live.seq);
    }
  }
  return min_seq;
}

std::size_t Compactor::ShardWorkLocked(std::size_t s) const {
  // The compaction trigger's unit of work: buffered rows not yet in the
  // tree plus tombstoned rows not yet removed from it.
  return buffers_[s]->size() - tree_covered_[s] + shard_tombstoned_[s];
}

bool Compactor::HasMutationWorkLocked() const {
  if (pending_ > 0) {
    return true;
  }
  for (std::size_t s = 0; s < num_shards_; ++s) {
    if (shard_tombstoned_[s] > 0) {
      return true;
    }
  }
  return false;
}

void Compactor::Flush() {
  std::unique_lock<std::mutex> lock(mutex_);
  while (!stopping_ &&
         (HasMutationWorkLocked() || !commit_queue_.empty() ||
          commit_leader_active_)) {
    flush_requested_ = true;
    work_cv_.notify_all();
    flush_cv_.wait(lock);
  }
}

IngestMetrics Compactor::Metrics() const {
  std::lock_guard<std::mutex> lock(mutex_);
  IngestMetrics metrics;
  metrics.inserted = inserted_;
  metrics.rejected = rejected_;
  metrics.invalid = invalid_;
  metrics.deleted = deleted_;
  metrics.io_errors = io_errors_;
  metrics.compactions = compactions_;
  metrics.persisted = persisted_;
  metrics.persist_failures = persist_failures_;
  metrics.pending = pending_;
  metrics.tombstones = tombstones_->size();
  metrics.total_rows = id_base_ + inserted_;
  return metrics;
}

std::shared_ptr<const shard::ShardedIndex> Compactor::current() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return sharded_;
}

std::shared_ptr<const service::ShardBuffers> Compactor::MakeBuffers(
    const std::vector<std::size_t>& start) const {
  auto buffers = std::make_shared<service::ShardBuffers>();
  buffers->buffers.assign(buffers_.begin(), buffers_.end());
  buffers->start = start;
  buffers->tombstones = tombstones_;
  buffers->tombstone_shard_counts = shard_tombstone_counts_;
  return buffers;
}

void Compactor::PublishLocked(
    std::shared_ptr<const shard::ShardedIndex> sharded,
    std::unique_lock<std::mutex>* lock,
    std::vector<std::uint32_t> purgeable) {
  SOFA_CHECK(lock != nullptr && lock->owns_lock());
  std::shared_ptr<const service::IndexSnapshot> snapshot =
      service::WrapIngestingIndex(std::move(sharded),
                                  MakeBuffers(tree_covered_));
  const std::uint64_t seq = ++publish_seq_;
  if (!purgeable.empty()) {
    // These ids left every structure of the generation published right
    // here; the purge waits until all earlier generations retire.
    pending_purge_ids_.insert(purgeable.begin(), purgeable.end());
    pending_purges_.push_back(PendingPurge{seq, std::move(purgeable)});
  }
  live_.push_back(LiveGeneration{snapshot, tree_covered_, seq});
  service_->Publish(std::move(snapshot));
  TrimRetiredLocked();
}

void Compactor::TrimRetiredLocked() {
  // The smallest buffer start any still-live generation scans from bounds
  // what may be reclaimed, and the smallest live publish sequence bounds
  // which queued tombstone purges may apply; generations retire when
  // their last in-flight query batch drops the snapshot reference.
  std::vector<std::size_t> min_start = tree_covered_;
  std::uint64_t min_seq = publish_seq_;
  for (auto it = live_.begin(); it != live_.end();) {
    if (it->snapshot.expired()) {
      it = live_.erase(it);
      continue;
    }
    for (std::size_t s = 0; s < num_shards_; ++s) {
      min_start[s] = std::min(min_start[s], it->start[s]);
    }
    min_seq = std::min(min_seq, it->seq);
    ++it;
  }
  for (std::size_t s = 0; s < num_shards_; ++s) {
    buffers_[s]->TrimBelow(min_start[s]);
  }
  std::vector<std::uint32_t> purgeable;
  for (auto it = pending_purges_.begin(); it != pending_purges_.end();) {
    if (it->seq <= min_seq) {
      purgeable.insert(purgeable.end(), it->ids.begin(), it->ids.end());
      it = pending_purges_.erase(it);
      continue;
    }
    ++it;
  }
  for (const std::uint32_t id : purgeable) {
    pending_purge_ids_.erase(id);
  }
  tombstones_->Erase(purgeable);
  // Narrow the per-shard k-widening only after the erase: a reader whose
  // view still contains a purged id needs no width for it (the purge
  // gating guarantees no live generation's tree holds its row).
  for (const std::uint32_t id : purgeable) {
    (*shard_tombstone_counts_)[RouteShard(id)].fetch_sub(
        1, std::memory_order_relaxed);
  }
}

void Compactor::CompactorLoop() {
  std::unique_lock<std::mutex> lock(mutex_);
  while (true) {
    work_cv_.wait(lock, [this] {
      if (stopping_) {
        return true;
      }
      if (flush_requested_) {
        if (HasMutationWorkLocked()) {
          return true;  // compactable work exists
        }
        // The flush can complete once no mutation is still staged.
        return commit_queue_.empty() && !commit_leader_active_;
      }
      if (!config_.auto_compact) {
        return false;
      }
      for (std::size_t s = 0; s < num_shards_; ++s) {
        if (ShardWorkLocked(s) >= config_.compact_threshold) {
          return true;
        }
      }
      return false;
    });
    if (stopping_) {
      return;
    }
    while (!stopping_) {
      // Most-work shard first (buffered rows + resident tombstones):
      // under sustained ingest this keeps the flat-scanned delta sets as
      // small as possible, and under sustained deletes it keeps the
      // tombstone set — and with it the merge's k-widening — bounded.
      std::size_t best = num_shards_;
      std::size_t best_work = 0;
      for (std::size_t s = 0; s < num_shards_; ++s) {
        const std::size_t shard_work = ShardWorkLocked(s);
        if (shard_work > best_work) {
          best = s;
          best_work = shard_work;
        }
      }
      const bool flushing = flush_requested_;
      if (best_work == 0 ||
          (!flushing && (!config_.auto_compact ||
                         best_work < config_.compact_threshold))) {
        break;
      }
      lock.unlock();
      CompactShard(best);
      lock.lock();
    }
    if (flush_requested_ && !HasMutationWorkLocked() &&
        commit_queue_.empty() && !commit_leader_active_) {
      flush_requested_ = false;
      flush_cv_.notify_all();
    }
  }
}

void Compactor::CompactShard(std::size_t s) {
  std::shared_ptr<const shard::ShardedIndex> base;
  std::size_t start;
  std::size_t tomb_resident;
  std::shared_ptr<const std::unordered_set<std::uint32_t>> tomb;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    base = sharded_;
    start = tree_covered_[s];
    tomb_resident = shard_tombstoned_[s];
    // The delete view of this rebuild. Rows deleted after this point may
    // land in the new tree; they stay masked by their live tombstones
    // and fall out at the shard's next compaction.
    tomb = tombstones_->view();
  }
  // The cut: live rows below it move into the rebuilt tree; rows appended
  // during the rebuild stay above it and remain buffer-visible. A shard
  // with no new rows but resident tombstones still rebuilds — that is
  // how a delete-only workload sheds deleted rows and purges.
  const std::size_t cut = buffers_[s]->size();
  if (cut == start && tomb_resident == 0) {
    return;
  }
  const shard::Shard& old_shard = base->shard(s);
  const std::unordered_set<std::uint32_t>* exclude =
      tomb->empty() ? nullptr : tomb.get();
  auto data = std::make_shared<Dataset>(length_);
  auto ids = std::make_shared<std::vector<std::uint32_t>>();
  ids->reserve(old_shard.data->size() + (cut - start));
  // Ids excluded here leave every structure of the generation published
  // below — the slice loses them now, the buffer view starts past them —
  // so their tombstones become purgeable once older generations retire.
  std::vector<std::uint32_t> purgeable;
  const std::vector<std::uint32_t>& old_ids = *old_shard.global_ids;
  for (std::size_t i = 0; i < old_shard.data->size(); ++i) {
    if (exclude != nullptr && exclude->count(old_ids[i]) != 0) {
      purgeable.push_back(old_ids[i]);
      continue;
    }
    data->Append(old_shard.data->row(i));
    ids->push_back(old_ids[i]);
  }
  buffers_[s]->CopyRange(start, cut, data.get(), ids.get(), exclude,
                         &purgeable);

  // Deterministic rebuild over (slice ∪ buffered rows) \ tombstones with
  // the build-time scheme and per-shard index config; runs on the serving
  // pool, under whatever traffic is live.
  shard::Shard rebuilt;
  rebuilt.data = data;
  rebuilt.scheme = old_shard.scheme;
  rebuilt.global_ids = ids;
  auto rebuilt_tree = std::make_shared<index::TreeIndex>(
      data.get(), old_shard.scheme.get(), base->config().index, base->pool());
  if (base->config().enable_rowq) {
    rebuilt_tree->AttachRowQuant(quant::RowQuant::Build(*data));
  }
  rebuilt.tree = std::move(rebuilt_tree);
  std::shared_ptr<const shard::ShardedIndex> derived =
      base->WithShardReplaced(s, std::move(rebuilt));

  std::unique_lock<std::mutex> lock(mutex_);
  if (exclude != nullptr) {
    // Phantom tombstones: sampled ids routed to this shard whose row
    // exists in none of its structures and that no earlier compaction
    // already queued — e.g. an id re-deleted after its tombstone was
    // purged following a checkpointed recovery. Nothing will ever
    // exclude them again, so queue them for purge alongside the rows
    // removed here; every sampled tombstone of this shard is provably
    // either in the slice, in buffer [start, cut), already queued, or
    // phantom.
    const std::unordered_set<std::uint32_t> removed(purgeable.begin(),
                                                    purgeable.end());
    for (const std::uint32_t id : *tomb) {
      if (RouteShard(id) == s && removed.count(id) == 0 &&
          pending_purge_ids_.count(id) == 0) {
        purgeable.push_back(id);
      }
    }
  }
  // Every purgeable id was counted as resident work for this shard
  // (excluded rows existed here; phantoms were never queued before), so
  // the counter drops by exactly that many — tombstones added during
  // the rebuild stay counted for the next round.
  shard_tombstoned_[s] -= purgeable.size();
  sharded_ = derived;
  tree_covered_[s] = cut;
  pending_ -= cut - start;
  ++compactions_;
  PublishLocked(std::move(derived), &lock, std::move(purgeable));
  if (config_.store != nullptr) {
    // Persist the generation just published, then truncate the WAL to
    // the tail — the step that finally bounds restart cost to "replay
    // mutations since the last compaction" in the default deployment. A
    // failure keeps serving from memory with the full log retained.
    PersistLocked(&lock);
  } else if (config_.checkpoint_on_compact && wal_ != nullptr) {
    // Opt-in only: sound solely when the embedder persists the full
    // collection state by publish time (see IngestConfig).
    persist_barrier_ = true;
    DrainCommitQueueLocked(&lock);
    wal_->AppendCheckpoint(next_id_, tombstones_->SortedIds());
    persist_barrier_ = false;
    commit_cv_.notify_all();
  }
}

}  // namespace ingest
}  // namespace sofa
