#include "ingest/compactor.h"

#include <algorithm>
#include <limits>
#include <utility>

#include "util/check.h"

namespace sofa {
namespace ingest {

Compactor::Compactor(service::SearchService* service,
                     std::shared_ptr<const shard::ShardedIndex> base,
                     IngestConfig config)
    : service_(service),
      config_(config),
      base_total_(base == nullptr ? 0 : base->size()),
      length_(base == nullptr ? 0 : base->length()),
      num_shards_(base == nullptr ? 0 : base->num_shards()),
      assignment_(base == nullptr ? shard::ShardAssignment::kContiguous
                                  : base->config().assignment) {
  SOFA_CHECK(service_ != nullptr);
  SOFA_CHECK(base != nullptr);
  SOFA_CHECK(base_total_ < std::numeric_limits<std::uint32_t>::max());
  for (std::size_t s = 0; s < num_shards_; ++s) {
    SOFA_CHECK(base->shard(s).scheme != nullptr)
        << "compaction rebuilds need per-shard scheme handles";
  }
  if (config_.compact_threshold == 0) {
    config_.compact_threshold = 1;
  }
  if (config_.chunk_capacity == 0) {
    config_.chunk_capacity = 1024;
  }
  if (config_.max_pending == 0) {
    config_.max_pending = 8 * config_.compact_threshold * num_shards_;
  }
  sharded_ = std::move(base);
  buffers_.reserve(num_shards_);
  for (std::size_t s = 0; s < num_shards_; ++s) {
    buffers_.push_back(
        std::make_shared<InsertBuffer>(length_, config_.chunk_capacity));
  }
  tombstones_ = std::make_shared<TombstoneSet>();
  shard_tombstone_counts_ =
      std::make_shared<std::vector<std::atomic<std::size_t>>>(num_shards_);
  if (!config_.wal_dir.empty()) {
    wal_ = WriteAheadLog::Open(config_.wal_dir, length_, config_.wal);
    SOFA_CHECK(wal_ != nullptr)
        << "cannot open write-ahead log in " << config_.wal_dir;
  }
  tree_covered_.assign(num_shards_, 0);
  shard_tombstoned_.assign(num_shards_, 0);
  next_id_ = static_cast<std::uint32_t>(base_total_);
  {
    // Publish the initial ingesting generation: base trees, empty buffer
    // views, empty tombstones. From here on every query sees
    // (tree ∪ buffer) \ tombstones.
    std::unique_lock<std::mutex> lock(mutex_);
    PublishLocked(sharded_, &lock);
  }
  compaction_thread_ = std::thread([this] { CompactorLoop(); });
}

Compactor::~Compactor() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  work_cv_.notify_all();
  flush_cv_.notify_all();
  if (compaction_thread_.joinable()) {
    compaction_thread_.join();
  }
  // wal_'s destructor syncs the tail, so every acknowledged mutation is
  // on stable storage before the process can exit cleanly.
}

std::size_t Compactor::RouteShard(std::uint32_t id) const {
  return shard::ShardedIndex::AssignShard(assignment_, id, base_total_,
                                          num_shards_);
}

InsertStatus Compactor::Insert(const float* row, std::size_t length) {
  std::unique_lock<std::mutex> lock(mutex_);
  if (length != length_) {
    ++invalid_;
    return InsertStatus::kInvalid;
  }
  if (stopping_) {
    return InsertStatus::kShutdown;
  }
  if (pending_ >= config_.max_pending) {
    ++rejected_;
    return InsertStatus::kRejected;
  }
  if (next_id_ == std::numeric_limits<std::uint32_t>::max()) {
    // Global-id space exhausted: the row can never be accepted (kRejected
    // would invite a futile retry loop), and a wrapped id would collide
    // with an existing row and break the ascending-id invariant.
    ++invalid_;
    return InsertStatus::kInvalid;
  }
  const std::uint32_t id = next_id_;
  // Write-ahead: the row must be logged before any query can see it, and
  // a failed append must leave no trace (the id is not consumed).
  if (wal_ != nullptr && !wal_->AppendInsert(id, row)) {
    ++io_errors_;
    return InsertStatus::kIoError;
  }
  ++next_id_;
  const std::size_t s = RouteShard(id);
  // Id assignment and append share the lock so each buffer sees strictly
  // ascending global ids (the merge's tie rule depends on it).
  buffers_[s]->Append(row, id);
  ++pending_;
  ++inserted_;
  if (config_.auto_compact && ShardWorkLocked(s) >= config_.compact_threshold) {
    work_cv_.notify_one();
  }
  return InsertStatus::kOk;
}

DeleteStatus Compactor::Delete(std::uint32_t id) {
  std::unique_lock<std::mutex> lock(mutex_);
  if (stopping_) {
    return DeleteStatus::kShutdown;
  }
  if (id >= next_id_) {
    return DeleteStatus::kNotFound;
  }
  // deleted_ever_, not the tombstone set: a tombstone is purged once the
  // row is compacted away, but the id stays deleted forever.
  if (deleted_ever_.count(id) != 0) {
    return DeleteStatus::kAlreadyDeleted;
  }
  // Write-ahead, like Insert: log, then make the tombstone visible. The
  // live TombstoneSet is shared with every published snapshot, so the
  // very next query (in either scheduling mode) masks the id — no
  // republish.
  if (wal_ != nullptr && !wal_->AppendDelete(id)) {
    ++io_errors_;
    return DeleteStatus::kIoError;
  }
  const std::size_t s = RouteShard(id);
  // Count before Add: a reader whose view contains the id then provably
  // sees the incremented count (the TombstoneSet mutex orders them).
  (*shard_tombstone_counts_)[s].fetch_add(1, std::memory_order_relaxed);
  tombstones_->Add(id);
  deleted_ever_.insert(id);
  ++deleted_;
  ++shard_tombstoned_[s];
  if (config_.auto_compact && ShardWorkLocked(s) >= config_.compact_threshold) {
    work_cv_.notify_one();
  }
  return DeleteStatus::kOk;
}

RecoverStats Compactor::Recover() {
  std::unique_lock<std::mutex> lock(mutex_);
  SOFA_CHECK(!recovered_ && inserted_ == 0 && deleted_ == 0)
      << "Recover() must run once, before any mutation";
  recovered_ = true;
  RecoverStats stats;
  if (wal_ == nullptr) {
    return stats;
  }
  // Replay in log order under the mutation lock. Application is
  // idempotent against the base: ids the base already covers are
  // skipped, so a log whose prefix predates a checkpointed base replays
  // cleanly; a genuine gap or contradiction flips ok and ignores the
  // rest (the log belongs to a different base).
  const WalReplayStats replayed = WriteAheadLog::Replay(
      config_.wal_dir, length_, [&](const WalRecord& record) {
        if (!stats.ok) {
          return;
        }
        switch (record.type) {
          case WalRecordType::kInsert: {
            if (record.id < next_id_) {
              ++stats.inserts_skipped;
              return;
            }
            if (record.id != next_id_) {
              stats.ok = false;  // gap: records before this one are gone
              return;
            }
            const std::size_t s = RouteShard(record.id);
            buffers_[s]->Append(record.row.data(), record.id);
            ++next_id_;
            ++pending_;
            ++inserted_;
            ++stats.inserts_applied;
            return;
          }
          case WalRecordType::kDelete: {
            if (record.id >= next_id_) {
              stats.ok = false;  // delete of a row this log never created
              return;
            }
            const std::size_t s = RouteShard(record.id);
            (*shard_tombstone_counts_)[s].fetch_add(
                1, std::memory_order_relaxed);
            if (tombstones_->Add(record.id)) {
              deleted_ever_.insert(record.id);
              ++shard_tombstoned_[s];
              ++deleted_;
              ++stats.deletes_applied;
            } else {
              // Duplicate record (malformed log): undo the count.
              (*shard_tombstone_counts_)[s].fetch_sub(
                  1, std::memory_order_relaxed);
            }
            return;
          }
          case WalRecordType::kCheckpoint: {
            // The checkpoint asserts the base holds rows [0, next_id);
            // anything else means base and log disagree.
            if (record.next_id > base_total_ || stats.inserts_applied != 0) {
              stats.ok = false;
              return;
            }
            for (std::size_t s = 0; s < num_shards_; ++s) {
              (*shard_tombstone_counts_)[s].store(0,
                                                  std::memory_order_relaxed);
            }
            shard_tombstoned_.assign(num_shards_, 0);
            for (const std::uint32_t id : record.tombstones) {
              const std::size_t s = RouteShard(id);
              ++shard_tombstoned_[s];
              (*shard_tombstone_counts_)[s].fetch_add(
                  1, std::memory_order_relaxed);
            }
            tombstones_->ResetTo(record.tombstones);
            deleted_ever_.clear();
            deleted_ever_.insert(record.tombstones.begin(),
                                 record.tombstones.end());
            deleted_ = record.tombstones.size();
            stats.deletes_applied = record.tombstones.size();
            ++stats.checkpoints;
            return;
          }
        }
      });
  stats.tail_truncated = replayed.tail_truncated;
  if (config_.auto_compact) {
    work_cv_.notify_one();  // replayed buffers may already cross thresholds
  }
  return stats;
}

bool Compactor::Checkpoint() {
  std::unique_lock<std::mutex> lock(mutex_);
  if (wal_ == nullptr) {
    return false;
  }
  return wal_->AppendCheckpoint(next_id_, tombstones_->SortedIds());
}

std::size_t Compactor::ShardWorkLocked(std::size_t s) const {
  // The compaction trigger's unit of work: buffered rows not yet in the
  // tree plus tombstoned rows not yet removed from it.
  return buffers_[s]->size() - tree_covered_[s] + shard_tombstoned_[s];
}

bool Compactor::HasMutationWorkLocked() const {
  if (pending_ > 0) {
    return true;
  }
  for (std::size_t s = 0; s < num_shards_; ++s) {
    if (shard_tombstoned_[s] > 0) {
      return true;
    }
  }
  return false;
}

void Compactor::Flush() {
  std::unique_lock<std::mutex> lock(mutex_);
  while (!stopping_ && HasMutationWorkLocked()) {
    flush_requested_ = true;
    work_cv_.notify_all();
    flush_cv_.wait(lock);
  }
}

IngestMetrics Compactor::Metrics() const {
  std::lock_guard<std::mutex> lock(mutex_);
  IngestMetrics metrics;
  metrics.inserted = inserted_;
  metrics.rejected = rejected_;
  metrics.invalid = invalid_;
  metrics.deleted = deleted_;
  metrics.io_errors = io_errors_;
  metrics.compactions = compactions_;
  metrics.pending = pending_;
  metrics.tombstones = tombstones_->size();
  metrics.total_rows = base_total_ + inserted_;
  return metrics;
}

std::shared_ptr<const shard::ShardedIndex> Compactor::current() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return sharded_;
}

std::shared_ptr<const service::ShardBuffers> Compactor::MakeBuffers(
    const std::vector<std::size_t>& start) const {
  auto buffers = std::make_shared<service::ShardBuffers>();
  buffers->buffers.assign(buffers_.begin(), buffers_.end());
  buffers->start = start;
  buffers->tombstones = tombstones_;
  buffers->tombstone_shard_counts = shard_tombstone_counts_;
  return buffers;
}

void Compactor::PublishLocked(
    std::shared_ptr<const shard::ShardedIndex> sharded,
    std::unique_lock<std::mutex>* lock,
    std::vector<std::uint32_t> purgeable) {
  SOFA_CHECK(lock != nullptr && lock->owns_lock());
  std::shared_ptr<const service::IndexSnapshot> snapshot =
      service::WrapIngestingIndex(std::move(sharded),
                                  MakeBuffers(tree_covered_));
  const std::uint64_t seq = ++publish_seq_;
  if (!purgeable.empty()) {
    // These ids left every structure of the generation published right
    // here; the purge waits until all earlier generations retire.
    pending_purge_ids_.insert(purgeable.begin(), purgeable.end());
    pending_purges_.push_back(PendingPurge{seq, std::move(purgeable)});
  }
  live_.push_back(LiveGeneration{snapshot, tree_covered_, seq});
  service_->Publish(std::move(snapshot));
  TrimRetiredLocked();
}

void Compactor::TrimRetiredLocked() {
  // The smallest buffer start any still-live generation scans from bounds
  // what may be reclaimed, and the smallest live publish sequence bounds
  // which queued tombstone purges may apply; generations retire when
  // their last in-flight query batch drops the snapshot reference.
  std::vector<std::size_t> min_start = tree_covered_;
  std::uint64_t min_seq = publish_seq_;
  for (auto it = live_.begin(); it != live_.end();) {
    if (it->snapshot.expired()) {
      it = live_.erase(it);
      continue;
    }
    for (std::size_t s = 0; s < num_shards_; ++s) {
      min_start[s] = std::min(min_start[s], it->start[s]);
    }
    min_seq = std::min(min_seq, it->seq);
    ++it;
  }
  for (std::size_t s = 0; s < num_shards_; ++s) {
    buffers_[s]->TrimBelow(min_start[s]);
  }
  std::vector<std::uint32_t> purgeable;
  for (auto it = pending_purges_.begin(); it != pending_purges_.end();) {
    if (it->seq <= min_seq) {
      purgeable.insert(purgeable.end(), it->ids.begin(), it->ids.end());
      it = pending_purges_.erase(it);
      continue;
    }
    ++it;
  }
  for (const std::uint32_t id : purgeable) {
    pending_purge_ids_.erase(id);
  }
  tombstones_->Erase(purgeable);
  // Narrow the per-shard k-widening only after the erase: a reader whose
  // view still contains a purged id needs no width for it (the purge
  // gating guarantees no live generation's tree holds its row).
  for (const std::uint32_t id : purgeable) {
    (*shard_tombstone_counts_)[RouteShard(id)].fetch_sub(
        1, std::memory_order_relaxed);
  }
}

void Compactor::CompactorLoop() {
  std::unique_lock<std::mutex> lock(mutex_);
  while (true) {
    work_cv_.wait(lock, [this] {
      if (stopping_ || flush_requested_) {
        return true;
      }
      if (!config_.auto_compact) {
        return false;
      }
      for (std::size_t s = 0; s < num_shards_; ++s) {
        if (ShardWorkLocked(s) >= config_.compact_threshold) {
          return true;
        }
      }
      return false;
    });
    if (stopping_) {
      return;
    }
    while (!stopping_) {
      // Most-work shard first (buffered rows + resident tombstones):
      // under sustained ingest this keeps the flat-scanned delta sets as
      // small as possible, and under sustained deletes it keeps the
      // tombstone set — and with it the merge's k-widening — bounded.
      std::size_t best = num_shards_;
      std::size_t best_work = 0;
      for (std::size_t s = 0; s < num_shards_; ++s) {
        const std::size_t shard_work = ShardWorkLocked(s);
        if (shard_work > best_work) {
          best = s;
          best_work = shard_work;
        }
      }
      const bool flushing = flush_requested_;
      if (best_work == 0 ||
          (!flushing && (!config_.auto_compact ||
                         best_work < config_.compact_threshold))) {
        break;
      }
      lock.unlock();
      CompactShard(best);
      lock.lock();
    }
    if (flush_requested_ && !HasMutationWorkLocked()) {
      flush_requested_ = false;
      flush_cv_.notify_all();
    }
  }
}

void Compactor::CompactShard(std::size_t s) {
  std::shared_ptr<const shard::ShardedIndex> base;
  std::size_t start;
  std::size_t tomb_resident;
  std::shared_ptr<const std::unordered_set<std::uint32_t>> tomb;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    base = sharded_;
    start = tree_covered_[s];
    tomb_resident = shard_tombstoned_[s];
    // The delete view of this rebuild. Rows deleted after this point may
    // land in the new tree; they stay masked by their live tombstones
    // and fall out at the shard's next compaction.
    tomb = tombstones_->view();
  }
  // The cut: live rows below it move into the rebuilt tree; rows appended
  // during the rebuild stay above it and remain buffer-visible. A shard
  // with no new rows but resident tombstones still rebuilds — that is
  // how a delete-only workload sheds deleted rows and purges.
  const std::size_t cut = buffers_[s]->size();
  if (cut == start && tomb_resident == 0) {
    return;
  }
  const shard::Shard& old_shard = base->shard(s);
  const std::unordered_set<std::uint32_t>* exclude =
      tomb->empty() ? nullptr : tomb.get();
  auto data = std::make_shared<Dataset>(length_);
  auto ids = std::make_shared<std::vector<std::uint32_t>>();
  ids->reserve(old_shard.data->size() + (cut - start));
  // Ids excluded here leave every structure of the generation published
  // below — the slice loses them now, the buffer view starts past them —
  // so their tombstones become purgeable once older generations retire.
  std::vector<std::uint32_t> purgeable;
  const std::vector<std::uint32_t>& old_ids = *old_shard.global_ids;
  for (std::size_t i = 0; i < old_shard.data->size(); ++i) {
    if (exclude != nullptr && exclude->count(old_ids[i]) != 0) {
      purgeable.push_back(old_ids[i]);
      continue;
    }
    data->Append(old_shard.data->row(i));
    ids->push_back(old_ids[i]);
  }
  buffers_[s]->CopyRange(start, cut, data.get(), ids.get(), exclude,
                         &purgeable);

  // Deterministic rebuild over (slice ∪ buffered rows) \ tombstones with
  // the build-time scheme and per-shard index config; runs on the serving
  // pool, under whatever traffic is live.
  shard::Shard rebuilt;
  rebuilt.data = data;
  rebuilt.scheme = old_shard.scheme;
  rebuilt.global_ids = ids;
  rebuilt.tree = std::make_shared<index::TreeIndex>(
      data.get(), old_shard.scheme.get(), base->config().index, base->pool());
  std::shared_ptr<const shard::ShardedIndex> derived =
      base->WithShardReplaced(s, std::move(rebuilt));

  std::unique_lock<std::mutex> lock(mutex_);
  if (exclude != nullptr) {
    // Phantom tombstones: sampled ids routed to this shard whose row
    // exists in none of its structures and that no earlier compaction
    // already queued — e.g. an id re-deleted after its tombstone was
    // purged following a checkpointed recovery. Nothing will ever
    // exclude them again, so queue them for purge alongside the rows
    // removed here; every sampled tombstone of this shard is provably
    // either in the slice, in buffer [start, cut), already queued, or
    // phantom.
    const std::unordered_set<std::uint32_t> removed(purgeable.begin(),
                                                    purgeable.end());
    for (const std::uint32_t id : *tomb) {
      if (RouteShard(id) == s && removed.count(id) == 0 &&
          pending_purge_ids_.count(id) == 0) {
        purgeable.push_back(id);
      }
    }
  }
  // Every purgeable id was counted as resident work for this shard
  // (excluded rows existed here; phantoms were never queued before), so
  // the counter drops by exactly that many — tombstones added during
  // the rebuild stay counted for the next round.
  shard_tombstoned_[s] -= purgeable.size();
  sharded_ = derived;
  tree_covered_[s] = cut;
  pending_ -= cut - start;
  ++compactions_;
  PublishLocked(std::move(derived), &lock, std::move(purgeable));
  if (config_.checkpoint_on_compact && wal_ != nullptr) {
    // Opt-in only: sound solely when the embedder persists the full
    // collection state by publish time (see IngestConfig).
    wal_->AppendCheckpoint(next_id_, tombstones_->SortedIds());
  }
}

}  // namespace ingest
}  // namespace sofa
