#include "ingest/compactor.h"

#include <algorithm>
#include <limits>
#include <utility>

#include "util/check.h"

namespace sofa {
namespace ingest {

Compactor::Compactor(service::SearchService* service,
                     std::shared_ptr<const shard::ShardedIndex> base,
                     IngestConfig config)
    : service_(service),
      config_(config),
      base_total_(base == nullptr ? 0 : base->size()),
      length_(base == nullptr ? 0 : base->length()),
      num_shards_(base == nullptr ? 0 : base->num_shards()),
      assignment_(base == nullptr ? shard::ShardAssignment::kContiguous
                                  : base->config().assignment) {
  SOFA_CHECK(service_ != nullptr);
  SOFA_CHECK(base != nullptr);
  SOFA_CHECK(base_total_ < std::numeric_limits<std::uint32_t>::max());
  for (std::size_t s = 0; s < num_shards_; ++s) {
    SOFA_CHECK(base->shard(s).scheme != nullptr)
        << "compaction rebuilds need per-shard scheme handles";
  }
  if (config_.compact_threshold == 0) {
    config_.compact_threshold = 1;
  }
  if (config_.chunk_capacity == 0) {
    config_.chunk_capacity = 1024;
  }
  if (config_.max_pending == 0) {
    config_.max_pending = 8 * config_.compact_threshold * num_shards_;
  }
  sharded_ = std::move(base);
  buffers_.reserve(num_shards_);
  for (std::size_t s = 0; s < num_shards_; ++s) {
    buffers_.push_back(
        std::make_shared<InsertBuffer>(length_, config_.chunk_capacity));
  }
  tree_covered_.assign(num_shards_, 0);
  next_id_ = static_cast<std::uint32_t>(base_total_);
  {
    // Publish the initial ingesting generation: base trees, empty buffer
    // views. From here on every query sees tree ∪ buffer.
    std::unique_lock<std::mutex> lock(mutex_);
    PublishLocked(sharded_, &lock);
  }
  compaction_thread_ = std::thread([this] { CompactorLoop(); });
}

Compactor::~Compactor() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  work_cv_.notify_all();
  flush_cv_.notify_all();
  if (compaction_thread_.joinable()) {
    compaction_thread_.join();
  }
}

std::size_t Compactor::RouteShard(std::uint32_t id) const {
  return shard::ShardedIndex::AssignShard(assignment_, id, base_total_,
                                          num_shards_);
}

InsertStatus Compactor::Insert(const float* row, std::size_t length) {
  std::unique_lock<std::mutex> lock(mutex_);
  if (length != length_) {
    ++invalid_;
    return InsertStatus::kInvalid;
  }
  if (stopping_) {
    return InsertStatus::kShutdown;
  }
  if (pending_ >= config_.max_pending) {
    ++rejected_;
    return InsertStatus::kRejected;
  }
  if (next_id_ == std::numeric_limits<std::uint32_t>::max()) {
    // Global-id space exhausted: the row can never be accepted (kRejected
    // would invite a futile retry loop), and a wrapped id would collide
    // with an existing row and break the ascending-id invariant.
    ++invalid_;
    return InsertStatus::kInvalid;
  }
  const std::uint32_t id = next_id_++;
  const std::size_t s = RouteShard(id);
  // Id assignment and append share the lock so each buffer sees strictly
  // ascending global ids (the merge's tie rule depends on it).
  buffers_[s]->Append(row, id);
  ++pending_;
  ++inserted_;
  if (config_.auto_compact &&
      buffers_[s]->size() - tree_covered_[s] >= config_.compact_threshold) {
    work_cv_.notify_one();
  }
  return InsertStatus::kOk;
}

void Compactor::Flush() {
  std::unique_lock<std::mutex> lock(mutex_);
  while (!stopping_ && pending_ > 0) {
    flush_requested_ = true;
    work_cv_.notify_all();
    flush_cv_.wait(lock);
  }
}

IngestMetrics Compactor::Metrics() const {
  std::lock_guard<std::mutex> lock(mutex_);
  IngestMetrics metrics;
  metrics.inserted = inserted_;
  metrics.rejected = rejected_;
  metrics.invalid = invalid_;
  metrics.compactions = compactions_;
  metrics.pending = pending_;
  metrics.total_rows = base_total_ + inserted_;
  return metrics;
}

std::shared_ptr<const shard::ShardedIndex> Compactor::current() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return sharded_;
}

std::shared_ptr<const service::ShardBuffers> Compactor::MakeBuffers(
    const std::vector<std::size_t>& start) const {
  auto buffers = std::make_shared<service::ShardBuffers>();
  buffers->buffers.assign(buffers_.begin(), buffers_.end());
  buffers->start = start;
  return buffers;
}

void Compactor::PublishLocked(
    std::shared_ptr<const shard::ShardedIndex> sharded,
    std::unique_lock<std::mutex>* lock) {
  SOFA_CHECK(lock != nullptr && lock->owns_lock());
  std::shared_ptr<const service::IndexSnapshot> snapshot =
      service::WrapIngestingIndex(std::move(sharded),
                                  MakeBuffers(tree_covered_));
  live_.push_back(LiveGeneration{snapshot, tree_covered_});
  service_->Publish(std::move(snapshot));
  TrimRetiredLocked();
}

void Compactor::TrimRetiredLocked() {
  // The smallest buffer start any still-live generation scans from bounds
  // what may be reclaimed; generations retire when their last in-flight
  // query batch drops the snapshot reference.
  std::vector<std::size_t> min_start = tree_covered_;
  for (auto it = live_.begin(); it != live_.end();) {
    if (it->snapshot.expired()) {
      it = live_.erase(it);
      continue;
    }
    for (std::size_t s = 0; s < num_shards_; ++s) {
      min_start[s] = std::min(min_start[s], it->start[s]);
    }
    ++it;
  }
  for (std::size_t s = 0; s < num_shards_; ++s) {
    buffers_[s]->TrimBelow(min_start[s]);
  }
}

void Compactor::CompactorLoop() {
  std::unique_lock<std::mutex> lock(mutex_);
  while (true) {
    work_cv_.wait(lock, [this] {
      if (stopping_ || flush_requested_) {
        return true;
      }
      if (!config_.auto_compact) {
        return false;
      }
      for (std::size_t s = 0; s < num_shards_; ++s) {
        if (buffers_[s]->size() - tree_covered_[s] >=
            config_.compact_threshold) {
          return true;
        }
      }
      return false;
    });
    if (stopping_) {
      return;
    }
    while (!stopping_) {
      // Most-pending shard first: under sustained ingest this keeps the
      // flat-scanned delta sets as small as possible.
      std::size_t best = num_shards_;
      std::size_t best_pending = 0;
      for (std::size_t s = 0; s < num_shards_; ++s) {
        const std::size_t shard_pending =
            buffers_[s]->size() - tree_covered_[s];
        if (shard_pending > best_pending) {
          best = s;
          best_pending = shard_pending;
        }
      }
      const bool flushing = flush_requested_;
      if (best_pending == 0 ||
          (!flushing && (!config_.auto_compact ||
                         best_pending < config_.compact_threshold))) {
        break;
      }
      lock.unlock();
      CompactShard(best);
      lock.lock();
    }
    if (flush_requested_ && pending_ == 0) {
      flush_requested_ = false;
      flush_cv_.notify_all();
    }
  }
}

void Compactor::CompactShard(std::size_t s) {
  std::shared_ptr<const shard::ShardedIndex> base;
  std::size_t start;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    base = sharded_;
    start = tree_covered_[s];
  }
  // The cut: rows below it move into the rebuilt tree; rows appended
  // during the rebuild stay above it and remain buffer-visible.
  const std::size_t cut = buffers_[s]->size();
  if (cut == start) {
    return;
  }
  const shard::Shard& old_shard = base->shard(s);
  auto data = std::make_shared<Dataset>(length_);
  auto ids = std::make_shared<std::vector<std::uint32_t>>(
      *old_shard.global_ids);
  ids->reserve(old_shard.data->size() + (cut - start));
  for (std::size_t i = 0; i < old_shard.data->size(); ++i) {
    data->Append(old_shard.data->row(i));
  }
  buffers_[s]->CopyRange(start, cut, data.get(), ids.get());

  // Deterministic rebuild over slice ∪ buffered rows with the build-time
  // scheme and per-shard index config; runs on the serving pool, under
  // whatever traffic is live.
  shard::Shard rebuilt;
  rebuilt.data = data;
  rebuilt.scheme = old_shard.scheme;
  rebuilt.global_ids = ids;
  rebuilt.tree = std::make_shared<index::TreeIndex>(
      data.get(), old_shard.scheme.get(), base->config().index, base->pool());
  std::shared_ptr<const shard::ShardedIndex> derived =
      base->WithShardReplaced(s, std::move(rebuilt));

  std::unique_lock<std::mutex> lock(mutex_);
  sharded_ = derived;
  tree_covered_[s] = cut;
  pending_ -= cut - start;
  ++compactions_;
  PublishLocked(std::move(derived), &lock);
}

}  // namespace ingest
}  // namespace sofa
