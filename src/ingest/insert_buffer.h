// The mutable half of the incremental ingest path (ROADMAP: "per-shard
// incremental updates — insert buffer → rebuild → WithShardReplaced
// republish").
//
// An InsertBuffer is the append-only delta set of one shard: rows inserted
// since that shard's tree was last rebuilt, each carrying its global
// collection id. Queries answer exactly over (tree ∪ buffer) \ tombstones,
// FAISS-style (Johnson et al., billion-scale similarity search: a pruned
// index over the bulk plus a brute-force flat scan over a small delta):
// the shard's TreeIndex covers the compacted prefix and the buffer is
// scanned flat, with deleted ids masked inline (SearchKnn's `exclude`).
// The scan uses the same early-abandoning SIMD distance kernel as the tree
// engine (not the flat index's ‖x‖²+‖y‖²−2x·y trick, whose rounding
// differs), so a row reports the *bit-identical* distance whether it is
// answered from the buffer or — after compaction — from the tree.
//
// Storage is chunked: rows live in fixed-capacity 64-byte-aligned chunks
// that never move or reallocate, so readers scan without copying while a
// writer appends. All methods are thread-safe; appends serialize on an
// internal mutex, scans briefly take the same mutex to snapshot the chunk
// list and published row count, then run lock-free. Rows already handed
// to a rebuilt tree are reclaimed chunk-wise via TrimBelow once no live
// generation can still scan them (the Compactor tracks that).

#ifndef SOFA_INGEST_INSERT_BUFFER_H_
#define SOFA_INGEST_INSERT_BUFFER_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_set>
#include <vector>

#include "core/dataset.h"
#include "core/neighbor.h"
#include "quant/rowq.h"
#include "util/aligned.h"

namespace sofa {
namespace ingest {

class InsertBuffer {
 public:
  /// Work counters of one buffer scan (SearchKnn stats overload) — the
  /// per-buffer slice of QueryProfile accounting.
  struct ScanStats {
    std::size_t scanned = 0;       // non-masked rows considered
    std::size_t ed_computed = 0;   // early-abandoning distance evaluations
    std::size_t rowq_checked = 0;  // quantized lower bounds evaluated
    std::size_t rowq_pruned = 0;   // rows cut before any float row access
  };

  /// Buffer for rows of `length` floats, stored in chunks of
  /// `chunk_capacity` rows. With `quantizer` set (the compressed pruning
  /// tier of the owning shard), every appended row also gets a quantized
  /// code, and scans prune on the quantized lower bound before touching
  /// float rows — answers stay bit-identical to the unquantized buffer.
  explicit InsertBuffer(
      std::size_t length, std::size_t chunk_capacity = 1024,
      std::shared_ptr<const quant::RowQuantizer> quantizer = nullptr);

  InsertBuffer(const InsertBuffer&) = delete;
  InsertBuffer& operator=(const InsertBuffer&) = delete;

  /// Appends one row (length() floats, z-normalized like the base
  /// collection) carrying `global_id`, and returns the buffer size after
  /// the append. Callers must append global ids in ascending order — the
  /// merge's lowest-global-id-first tie rule and the ascending-global-ids
  /// invariant of compacted shards both rely on it.
  std::size_t Append(const float* row, std::uint32_t global_id);

  /// Rows ever appended (monotonic; trims do not shrink it).
  std::size_t size() const;

  /// First row offset still retained (everything below was trimmed).
  std::size_t first_retained() const;

  std::size_t length() const { return length_; }

  /// Exact top-k over rows [begin, size()-at-call), appended to `out` as
  /// neighbors with *global* ids, ascending by (distance, id) — on ties
  /// the lowest global id wins, deterministically. Rows whose global id
  /// is in `exclude` (the live tombstone view of the generation being
  /// queried) are masked: skipped without a distance evaluation, exactly
  /// as if the row had never been inserted. Returns the number of rows
  /// actually scanned (one early-abandoning distance evaluation each,
  /// for QueryProfile accounting — masked rows are not counted). `begin`
  /// must be >= first_retained(). Thread-safe against concurrent appends
  /// and trims; the scan sees every row published before the call.
  std::size_t SearchKnn(
      const float* query, std::size_t k, std::size_t begin,
      std::vector<Neighbor>* out,
      const std::unordered_set<std::uint32_t>* exclude = nullptr) const;

  /// SearchKnn with full work accounting: identical answers, and
  /// `stats` (required) receives the scan/kernel/pruning counters. The
  /// plain overload's return value equals stats.scanned.
  void SearchKnn(const float* query, std::size_t k, std::size_t begin,
                 std::vector<Neighbor>* out,
                 const std::unordered_set<std::uint32_t>* exclude,
                 ScanStats* stats) const;

  /// Copies rows [begin, end) and their global ids into `rows`/`ids`
  /// (appending) — the compaction handoff into the rebuilt shard slice.
  /// Rows whose global id is in `exclude` are dropped instead (the
  /// delete-before-compaction case: a tombstoned buffered row must not
  /// enter the rebuilt tree) and their ids are appended to `excluded`
  /// when non-null, so the compaction can queue the tombstones for
  /// purging once no live generation still scans this range.
  void CopyRange(std::size_t begin, std::size_t end, Dataset* rows,
                 std::vector<std::uint32_t>* ids,
                 const std::unordered_set<std::uint32_t>* exclude = nullptr,
                 std::vector<std::uint32_t>* excluded = nullptr) const;

  /// Releases whole chunks lying entirely below row offset `offset`.
  /// Only safe once no live generation scans from below `offset`; scans
  /// already in flight keep their chunks alive via shared ownership.
  void TrimBelow(std::size_t offset);

 private:
  // One fixed-capacity chunk; `rows` is pre-sized so row storage never
  // moves after construction. With a quantizer, `codes`/`prunable` hold
  // the quantized sidecar (row at slot `at` starts at at*padded codes).
  struct Chunk {
    Chunk(std::size_t length, std::size_t capacity, std::size_t padded)
        : rows(capacity, length), ids(capacity, 0), codes(capacity * padded),
          prunable(capacity, 0) {}
    Dataset rows;
    std::vector<std::uint32_t> ids;
    AlignedVector<std::uint8_t> codes;  // empty when unquantized
    std::vector<std::uint8_t> prunable;
  };

  // Snapshot of the readable state: chunks (shared — survive a concurrent
  // trim), the offset of chunks[0], and the published row count.
  struct View {
    std::vector<std::shared_ptr<const Chunk>> chunks;
    std::size_t base = 0;
    std::size_t count = 0;
  };
  View Snapshot() const;

  const std::size_t length_;
  const std::size_t chunk_capacity_;
  const std::shared_ptr<const quant::RowQuantizer> quantizer_;  // may be null

  mutable std::mutex mutex_;
  std::vector<std::shared_ptr<Chunk>> chunks_;  // chunk c starts at row
                                                // base_ + c * chunk_capacity_
  std::size_t base_ = 0;   // offset of chunks_[0] (chunk-aligned)
  std::size_t count_ = 0;  // rows ever appended
};

}  // namespace ingest
}  // namespace sofa

#endif  // SOFA_INGEST_INSERT_BUFFER_H_
