// The mutation front end of the incremental ingest path: inserts and
// deletes → per-shard buffers + tombstones → background rebuild →
// WithShardReplaced republish, all under live traffic, with an optional
// write-ahead log making every accepted mutation survive a restart.
//
// A Compactor attaches to a SearchService serving a sharded generation
// and becomes its sole publisher. It owns one InsertBuffer per shard, a
// TombstoneSet of deleted ids, and (when IngestConfig::wal_dir is set) a
// WriteAheadLog. Insert() assigns the next global collection id, logs
// the row, routes it to its shard's buffer (contiguous assignment
// extends the last shard's range; hash assignment hashes the id as at
// build time) and publishes it to queries immediately through the live
// buffer — no snapshot republish per insert. Delete() logs and
// tombstones the id; queries mask tombstoned ids out of buffer scans and
// the gather merge immediately, whether the row lives in a tree or a
// buffer. Once a shard's pending rows reach `compact_threshold`, a
// dedicated background thread rebuilds that shard's TreeIndex over
// (slice ∪ buffered rows) \ tombstones and republishes through
// ShardedIndex::WithShardReplaced + SearchService::Publish.
//
// Exactness invariant, held at every instant including mid-compaction:
// each generation's shard-s tree covers that shard's rows below a cut
// offset and its buffer view starts exactly at the cut, so every live
// row is answered by exactly one of tree or buffer, and every deleted
// row by neither (masked by the tombstone set until a compaction
// physically removes it). A compaction samples the buffer size as the
// new cut and the tombstone set as the delete view, rebuilds over the
// live rows of [0, cut), and publishes with the view advanced to cut —
// queries in flight on the old generation keep the old cut (old tree +
// wider buffer range) and still filter the excluded ids, because their
// tombstones are only purged once every generation published before the
// compaction has retired (the same weak-reference tracking that bounds
// buffer-chunk reclamation). Rows deleted *during* a rebuild may land in
// the new tree; they stay masked and are removed by that shard's next
// compaction.
//
// Durability (IngestConfig::wal_dir): every mutation is appended to the
// WAL *before* it becomes visible (see wal.h for framing, fsync batching
// and the crash-safety contract). After a restart, reconstruct the base
// generation exactly as at build time, attach a new Compactor with the
// same wal_dir, and call Recover() before serving traffic: it replays
// the retained records into buffers + tombstones and leaves the service
// answering bit-identically to the pre-crash process. Compaction does
// NOT truncate the log by itself — rebuilt trees are in-memory, so the
// log remains the only durable copy of the mutations; Checkpoint() is
// for embedders that persist the full collection state out of band.
//
// Still out of scope (ROADMAP follow-ons): summary-scheme retraining
// when the delta distribution drifts (rebuilt shards reuse the
// build-time scheme; exactness never depends on it, only pruning power
// does), and fanning the per-shard buffer scans into the executor
// scatter.

#ifndef SOFA_INGEST_COMPACTOR_H_
#define SOFA_INGEST_COMPACTOR_H_

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_set>
#include <vector>

#include "ingest/insert_buffer.h"
#include "ingest/tombstone_set.h"
#include "ingest/wal.h"
#include "service/search_service.h"
#include "service/snapshot.h"
#include "shard/sharded_index.h"

namespace sofa {
namespace ingest {

/// Outcome of one insert.
enum class InsertStatus {
  kOk,        // logged + buffered; visible to every query submitted after
  kRejected,  // admission bound hit — compaction is behind, retry later
  kInvalid,   // refused permanently: wrong row length, or the 32-bit
              // global-id space is exhausted
  kShutdown,  // compactor is stopping
  kIoError,   // WAL append failed — the row is NOT logged and NOT
              // visible; the caller may retry (disk may recover)
};

/// Outcome of one delete.
enum class DeleteStatus {
  kOk,              // logged + tombstoned; invisible to queries submitted
                    // after this returns
  kNotFound,        // no row with this id was ever inserted
  kAlreadyDeleted,  // id is already tombstoned or compacted away after a
                    // delete — nothing to do, nothing logged
  kShutdown,        // compactor is stopping
  kIoError,         // WAL append failed — the delete is NOT applied
};

struct IngestConfig {
  /// Pending work per shard that triggers a background rebuild of that
  /// shard: buffered (uncompacted) rows plus tombstoned rows not yet
  /// physically removed — so sustained deletes compact (and purge their
  /// tombstones) even with no inserts flowing.
  std::size_t compact_threshold = 1024;

  /// Admission bound: inserts are rejected while the total pending rows
  /// across all shards are at or beyond this (backpressure when
  /// compaction cannot keep up). 0 = 8 × compact_threshold × num_shards.
  std::size_t max_pending = 0;

  /// Rows per buffer chunk (storage granularity; chunks never move).
  std::size_t chunk_capacity = 1024;

  /// When false, no threshold-triggered compactions run — only Flush()
  /// compacts (deterministic stepping for tests and benches).
  bool auto_compact = true;

  /// When non-empty, open (or create) a write-ahead log in this
  /// directory; every accepted Insert/Delete is appended there before it
  /// becomes visible, and Recover() replays any records already present.
  /// Empty (default): mutations are in-memory only, as in PR 3.
  std::string wal_dir;

  /// WAL tuning (fsync batching, segment rotation); used only when
  /// wal_dir is set.
  WalConfig wal;

  /// When true, every compaction also writes a WAL checkpoint and
  /// truncates older segments. ONLY sound when the embedder durably
  /// persists the full collection state (all rows and the tombstone set)
  /// no later than each publish — e.g. a deployment whose publish hook
  /// snapshots generations to disk. With the default in-memory trees the
  /// log is the only durable copy of the mutations, so leave this off
  /// and let the log grow until an explicit Checkpoint().
  bool checkpoint_on_compact = false;
};

/// Point-in-time ingest counters.
struct IngestMetrics {
  std::uint64_t inserted = 0;     // rows accepted
  std::uint64_t rejected = 0;     // rows bounced at admission
  std::uint64_t invalid = 0;      // rows refused (length mismatch)
  std::uint64_t deleted = 0;      // deletes accepted (incl. recovered)
  std::uint64_t io_errors = 0;    // mutations refused on WAL failure
  std::uint64_t compactions = 0;  // shard rebuilds published
  std::size_t pending = 0;        // rows currently buffered, not yet in trees
  std::size_t tombstones = 0;     // deleted ids not yet purged by compaction
  std::size_t total_rows = 0;     // ids allocated: base + accepted inserts
                                  // (deleted rows included — the id space
                                  // never shrinks)
};

/// What Recover() replayed. `ok == false` means the log does not fit the
/// supplied base generation (a gap in the id sequence, a delete of an
/// unknown id, or a checkpoint claiming rows the base lacks); everything
/// applied up to the first inconsistency stays applied, records after it
/// are ignored.
struct RecoverStats {
  bool ok = true;
  std::uint64_t inserts_applied = 0;  // rows appended to buffers
  std::uint64_t inserts_skipped = 0;  // ids the base already covers
  std::uint64_t deletes_applied = 0;  // tombstones restored
  std::uint64_t checkpoints = 0;      // state resets replayed
  bool tail_truncated = false;        // replay stopped at a torn/corrupt
                                      // record (see WalReplayStats)
};

class Compactor {
 public:
  /// Attaches to `service`, which must currently serve (or be about to
  /// serve) `base`; the constructor publishes the initial ingesting
  /// generation (base trees + empty buffers + empty tombstones). While a
  /// Compactor is attached it must be the service's only publisher. Tree
  /// rebuilds run on `base`'s thread pool, competing with query scatter
  /// — compaction under live traffic by design. With config.wal_dir set
  /// the constructor opens the log (aborting via SOFA_CHECK when the
  /// directory cannot be created) but does not replay it — call
  /// Recover() before serving traffic if records may be present.
  Compactor(service::SearchService* service,
            std::shared_ptr<const shard::ShardedIndex> base,
            IngestConfig config = IngestConfig{});

  /// Stops the compaction thread and syncs/closes the WAL. The service
  /// keeps serving the last published generation — already-buffered rows
  /// stay visible, they are just never compacted further.
  ~Compactor();

  Compactor(const Compactor&) = delete;
  Compactor& operator=(const Compactor&) = delete;

  /// Inserts one row (`length` floats, z-normalized like the base
  /// collection). On kOk the row is logged (if a WAL is attached) and
  /// visible to every query submitted after this returns. Thread-safe;
  /// concurrent mutations serialize. With fsync batching a power failure
  /// may lose up to WalConfig::sync_every acknowledged rows — a process
  /// crash loses nothing.
  InsertStatus Insert(const float* row, std::size_t length);

  /// Deletes the row with global id `id` (a base row or an inserted
  /// one). On kOk the id is logged and masked from every query submitted
  /// after this returns; the row is physically removed by its shard's
  /// next compaction, which also purges the tombstone once no in-flight
  /// generation can still surface it. Re-deleting an id returns
  /// kAlreadyDeleted whether its tombstone is still live or long purged.
  /// Thread-safe.
  DeleteStatus Delete(std::uint32_t id);

  /// Replays the WAL into buffers + tombstones. Must be called before
  /// the first Insert/Delete (SOFA_CHECK-enforced) and, for coherent
  /// answers, before queries are admitted. `base` must be exactly the
  /// generation the log was written against (same rows [0, base size),
  /// same partition). No-op (ok, zero counts) without a WAL. Replayed
  /// records are NOT re-appended — the segments that hold them are
  /// retained until a checkpoint truncates them.
  RecoverStats Recover();

  /// Writes a WAL checkpoint (current id watermark + live tombstones)
  /// and truncates every older segment. Contract: the caller has durably
  /// persisted the full collection state — every row in [0, next id) and
  /// the tombstone set — somewhere the next recovery will rebuild its
  /// base generation from; after truncation the log can no longer
  /// re-create mutations from before the checkpoint. Returns false (log
  /// unchanged or partially rotated, never truncated) on I/O failure or
  /// without a WAL.
  bool Checkpoint();

  /// Blocks until every mutation pending at call time is folded into the
  /// trees and published: buffered rows compacted in, tombstoned rows
  /// compacted out (their purge may still wait on in-flight generations
  /// retiring — see Metrics().tombstones).
  void Flush();

  IngestMetrics Metrics() const;

  /// The latest generation this compactor derived (base trees + all
  /// published compactions).
  std::shared_ptr<const shard::ShardedIndex> current() const;

  /// Shard that global id `id` routes to: the build-time AssignShard
  /// partition, with inserted ids (>= the base collection size) extending
  /// the last shard under contiguous assignment.
  std::size_t RouteShard(std::uint32_t id) const;

 private:
  void CompactorLoop();
  void CompactShard(std::size_t s);
  std::size_t ShardWorkLocked(std::size_t s) const;
  bool HasMutationWorkLocked() const;
  std::shared_ptr<const service::ShardBuffers> MakeBuffers(
      const std::vector<std::size_t>& start) const;
  void PublishLocked(std::shared_ptr<const shard::ShardedIndex> sharded,
                     std::unique_lock<std::mutex>* lock,
                     std::vector<std::uint32_t> purgeable = {});
  void TrimRetiredLocked();

  service::SearchService* service_;
  IngestConfig config_;
  const std::size_t base_total_;  // collection size the partition was built at
  const std::size_t length_;
  const std::size_t num_shards_;
  const shard::ShardAssignment assignment_;

  mutable std::mutex mutex_;
  std::condition_variable work_cv_;   // compaction thread wakeups
  std::condition_variable flush_cv_;  // Flush() waiters
  std::shared_ptr<const shard::ShardedIndex> sharded_;  // latest generation
  std::vector<std::shared_ptr<InsertBuffer>> buffers_;  // one per shard
  std::shared_ptr<TombstoneSet> tombstones_;  // live, shared with snapshots
  // Every id ever deleted, purged or not — Delete() statuses must tell
  // "already deleted" from "never existed" even after the tombstone was
  // purged. Never shrinks (except to a checkpoint's set on recovery).
  std::unordered_set<std::uint32_t> deleted_ever_;
  std::unique_ptr<WriteAheadLog> wal_;        // null without wal_dir
  std::vector<std::size_t> tree_covered_;  // per shard: buffer rows in tree
  // Per shard: tombstoned ids not yet physically removed from that
  // shard's structures. Counts toward the compaction trigger, so a
  // delete-only workload still compacts, purges its tombstones, and
  // keeps the merge's k-widening bounded.
  std::vector<std::size_t> shard_tombstoned_;
  // Per shard: un-purged tombstones routed there — the query path's
  // per-shard k-widening (shared live with every snapshot via
  // ShardBuffers). Differs from shard_tombstoned_ in when it drops:
  // only at purge (when no live generation's tree can still hold the
  // row), not at compaction — an in-flight query on a pre-compaction
  // generation still needs the width. Incremented BEFORE the tombstone
  // is added (the TombstoneSet mutex then publishes it to any reader
  // whose view contains the id), decremented after the purge erases it.
  std::shared_ptr<std::vector<std::atomic<std::size_t>>>
      shard_tombstone_counts_;
  std::uint32_t next_id_;
  std::size_t pending_ = 0;
  std::uint64_t inserted_ = 0;
  std::uint64_t rejected_ = 0;
  std::uint64_t invalid_ = 0;
  std::uint64_t deleted_ = 0;
  std::uint64_t io_errors_ = 0;
  std::uint64_t compactions_ = 0;
  std::uint64_t publish_seq_ = 0;  // generations published, monotonic
  bool recovered_ = false;         // Recover() may run at most once
  bool flush_requested_ = false;
  bool stopping_ = false;

  // Published generations still possibly in flight (weak: expired entries
  // are pruned); per entry, the per-shard buffer starts it scans from and
  // its publish sequence number. The minimum start across live entries
  // bounds what TrimBelow may drop; the minimum sequence bounds which
  // queued tombstone purges may apply.
  struct LiveGeneration {
    std::weak_ptr<const service::IndexSnapshot> snapshot;
    std::vector<std::size_t> start;
    std::uint64_t seq = 0;
  };
  std::vector<LiveGeneration> live_;

  // Tombstones a compaction excluded from a rebuilt shard, purgeable
  // once every generation published before `seq` has retired.
  // `pending_purge_ids_` mirrors the queued ids as a set so CompactShard
  // can tell an already-queued tombstone from a phantom one.
  struct PendingPurge {
    std::uint64_t seq = 0;
    std::vector<std::uint32_t> ids;
  };
  std::vector<PendingPurge> pending_purges_;
  std::unordered_set<std::uint32_t> pending_purge_ids_;

  std::thread compaction_thread_;
};

}  // namespace ingest
}  // namespace sofa

#endif  // SOFA_INGEST_COMPACTOR_H_
