// The compaction half of the incremental ingest path: insert buffer →
// per-shard rebuild → WithShardReplaced republish, all under live
// traffic (ROADMAP: "per-shard incremental updates — the CoW plumbing
// exists, the insert path does not").
//
// A Compactor attaches to a SearchService serving a sharded generation
// and becomes its sole publisher. It owns one InsertBuffer per shard and
// an insert API with admission control: Insert() assigns the next global
// collection id, routes the row to its shard's buffer (contiguous
// assignment extends the last shard's range; hash assignment hashes the
// id as at build time) and publishes it to queries immediately through
// the live buffer — no snapshot republish per insert. Once a shard's
// pending rows reach `compact_threshold`, a dedicated background thread
// rebuilds that shard's TreeIndex over slice ∪ buffered rows and
// republishes through ShardedIndex::WithShardReplaced +
// SearchService::Publish.
//
// Exactness invariant, held at every instant including mid-compaction:
// each generation's shard-s tree covers that shard's rows below a cut
// offset and its buffer view starts exactly at the cut, so every row is
// answered by exactly one of tree or buffer. A compaction samples the
// buffer size as the new cut, rebuilds over [0, cut), and publishes with
// the view advanced to cut — queries in flight on the old generation
// keep the old cut (old tree + wider buffer range), queries on the new
// one get the new tree + narrower range; both cover every row once.
// Inserts that land during the rebuild stay above the new cut and remain
// buffer-visible in both generations. Buffer chunks below the smallest
// cut of any still-live generation are reclaimed (tracked via weak
// references to the published snapshots).
//
// Deliberate non-goals of this first cut (see ROADMAP follow-ons):
// deletes/tombstones, write-ahead logging (inserts are in-memory only —
// a restart reloads the base collection), and summary-scheme retraining
// (rebuilt shards reuse the build-time scheme; exactness never depends
// on it, only pruning power does).

#ifndef SOFA_INGEST_COMPACTOR_H_
#define SOFA_INGEST_COMPACTOR_H_

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "ingest/insert_buffer.h"
#include "service/search_service.h"
#include "service/snapshot.h"
#include "shard/sharded_index.h"

namespace sofa {
namespace ingest {

/// Outcome of one insert.
enum class InsertStatus {
  kOk,        // buffered; visible to every query submitted afterwards
  kRejected,  // admission bound hit — compaction is behind, retry later
  kInvalid,   // refused permanently: wrong row length, or the 32-bit
              // global-id space is exhausted
  kShutdown,  // compactor is stopping
};

struct IngestConfig {
  /// Pending (uncompacted) rows per shard that trigger a background
  /// rebuild of that shard.
  std::size_t compact_threshold = 1024;

  /// Admission bound: inserts are rejected while the total pending rows
  /// across all shards are at or beyond this (backpressure when
  /// compaction cannot keep up). 0 = 8 × compact_threshold × num_shards.
  std::size_t max_pending = 0;

  /// Rows per buffer chunk (storage granularity; chunks never move).
  std::size_t chunk_capacity = 1024;

  /// When false, no threshold-triggered compactions run — only Flush()
  /// compacts (deterministic stepping for tests and benches).
  bool auto_compact = true;
};

/// Point-in-time ingest counters.
struct IngestMetrics {
  std::uint64_t inserted = 0;     // rows accepted
  std::uint64_t rejected = 0;     // rows bounced at admission
  std::uint64_t invalid = 0;      // rows refused (length mismatch)
  std::uint64_t compactions = 0;  // shard rebuilds published
  std::size_t pending = 0;        // rows currently buffered, not yet in trees
  std::size_t total_rows = 0;     // base + accepted rows
};

class Compactor {
 public:
  /// Attaches to `service`, which must currently serve (or be about to
  /// serve) `base`; the constructor publishes the initial ingesting
  /// generation (base trees + empty buffers). While a Compactor is
  /// attached it must be the service's only publisher. Tree rebuilds run
  /// on `base`'s thread pool, competing with query scatter — compaction
  /// under live traffic by design.
  Compactor(service::SearchService* service,
            std::shared_ptr<const shard::ShardedIndex> base,
            IngestConfig config = IngestConfig{});

  /// Stops the compaction thread. The service keeps serving the last
  /// published generation — already-buffered rows stay visible, they are
  /// just never compacted further.
  ~Compactor();

  Compactor(const Compactor&) = delete;
  Compactor& operator=(const Compactor&) = delete;

  /// Inserts one row (`length` floats, z-normalized like the base
  /// collection). On kOk the row is visible to every query submitted
  /// after this returns. Thread-safe; concurrent inserts serialize.
  InsertStatus Insert(const float* row, std::size_t length);

  /// Blocks until every row pending at call time is compacted into its
  /// shard's tree and the resulting generations are published.
  void Flush();

  IngestMetrics Metrics() const;

  /// The latest generation this compactor derived (base trees + all
  /// published compactions).
  std::shared_ptr<const shard::ShardedIndex> current() const;

  /// Shard that global id `id` routes to: the build-time AssignShard
  /// partition, with inserted ids (>= the base collection size) extending
  /// the last shard under contiguous assignment.
  std::size_t RouteShard(std::uint32_t id) const;

 private:
  void CompactorLoop();
  void CompactShard(std::size_t s);
  std::shared_ptr<const service::ShardBuffers> MakeBuffers(
      const std::vector<std::size_t>& start) const;
  void PublishLocked(std::shared_ptr<const shard::ShardedIndex> sharded,
                     std::unique_lock<std::mutex>* lock);
  void TrimRetiredLocked();

  service::SearchService* service_;
  IngestConfig config_;
  const std::size_t base_total_;  // collection size the partition was built at
  const std::size_t length_;
  const std::size_t num_shards_;
  const shard::ShardAssignment assignment_;

  mutable std::mutex mutex_;
  std::condition_variable work_cv_;   // compaction thread wakeups
  std::condition_variable flush_cv_;  // Flush() waiters
  std::shared_ptr<const shard::ShardedIndex> sharded_;  // latest generation
  std::vector<std::shared_ptr<InsertBuffer>> buffers_;  // one per shard
  std::vector<std::size_t> tree_covered_;  // per shard: buffer rows in tree
  std::uint32_t next_id_;
  std::size_t pending_ = 0;
  std::uint64_t inserted_ = 0;
  std::uint64_t rejected_ = 0;
  std::uint64_t invalid_ = 0;
  std::uint64_t compactions_ = 0;
  bool flush_requested_ = false;
  bool stopping_ = false;

  // Published generations still possibly in flight (weak: expired entries
  // are pruned); per entry, the per-shard buffer starts it scans from.
  // The minimum start across live entries bounds what TrimBelow may drop.
  struct LiveGeneration {
    std::weak_ptr<const service::IndexSnapshot> snapshot;
    std::vector<std::size_t> start;
  };
  std::vector<LiveGeneration> live_;

  std::thread compaction_thread_;
};

}  // namespace ingest
}  // namespace sofa

#endif  // SOFA_INGEST_COMPACTOR_H_
