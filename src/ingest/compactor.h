// The mutation front end of the incremental ingest path: inserts and
// deletes → per-shard buffers + tombstones → background rebuild →
// WithShardReplaced republish, all under live traffic, with an optional
// write-ahead log making every accepted mutation survive a restart and
// an optional generation store making the *compacted* state itself
// durable — so restart cost is the WAL tail since the last compaction,
// not the full mutation history.
//
// A Compactor attaches to a SearchService serving a sharded generation
// and becomes its sole publisher. It owns one InsertBuffer per shard, a
// TombstoneSet of deleted ids, and (when IngestConfig::wal_dir is set) a
// WriteAheadLog. Insert() assigns the next global collection id, logs
// the row, routes it to its shard's buffer (contiguous assignment
// extends the last shard's range; hash assignment hashes the id as at
// build time) and publishes it to queries immediately through the live
// buffer — no snapshot republish per insert. Delete() logs and
// tombstones the id; queries mask tombstoned ids out of buffer scans and
// the gather merge immediately, whether the row lives in a tree or a
// buffer. Once a shard's pending rows reach `compact_threshold`, a
// dedicated background thread rebuilds that shard's TreeIndex over
// (slice ∪ buffered rows) \ tombstones and republishes through
// ShardedIndex::WithShardReplaced + SearchService::Publish.
//
// Exactness invariant, held at every instant including mid-compaction:
// each generation's shard-s tree covers that shard's rows below a cut
// offset and its buffer view starts exactly at the cut, so every live
// row is answered by exactly one of tree or buffer, and every deleted
// row by neither (masked by the tombstone set until a compaction
// physically removes it). A compaction samples the buffer size as the
// new cut and the tombstone set as the delete view, rebuilds over the
// live rows of [0, cut), and publishes with the view advanced to cut —
// queries in flight on the old generation keep the old cut (old tree +
// wider buffer range) and still filter the excluded ids, because their
// tombstones are only purged once every generation published before the
// compaction has retired (the same weak-reference tracking that bounds
// buffer-chunk reclamation). Rows deleted *during* a rebuild may land in
// the new tree; they stay masked and are removed by that shard's next
// compaction.
//
// Durability (IngestConfig::wal_dir): every mutation is appended to the
// WAL *before* it becomes visible (see wal.h for framing and the
// crash-safety contract). Concurrent mutations group-commit: each
// staged mutation joins a commit queue under the mutation lock, and one
// caller — the leader — writes every queued record as a single frame
// batch with one fflush and at most one fsync, then applies the whole
// batch to buffers + tombstones in staged (id) order. Followers just
// wait for their record's fate. A failed batch rolls the log back to
// the last durable boundary, refuses every staged-but-unwritten
// mutation behind it and releases their ids for reuse, so a refused
// record can never replay.
//
// Persistence (IngestConfig::store): after each compaction publish the
// Compactor snapshots the full collection state — the published sharded
// generation, each shard's buffered tail, the live tombstones, the id
// watermark — at a WAL fold point (the commit queue drained, the log
// rotated), persists it as an atomic generation directory, and only
// after that commit truncates the WAL below the rotation. Recovery
// (persist::GenerationStore::LoadLatest → MakeRecoveredBase → this
// constructor → Recover()) reassembles the generation and replays ONLY
// records past the manifest's fold point; a torn commit falls back to
// the previous generation, whose longer WAL tail is still intact
// because truncation never precedes the commit. Superseded generation
// directories are garbage-collected gated on the same publish-seq
// retirement logic that bounds buffer-chunk reclamation, and never past
// the newest committed generation.
//
// Still out of scope (ROADMAP follow-ons): summary-scheme retraining
// when the delta distribution drifts (rebuilt shards reuse the
// build-time scheme; exactness never depends on it, only pruning power
// does).

#ifndef SOFA_INGEST_COMPACTOR_H_
#define SOFA_INGEST_COMPACTOR_H_

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_set>
#include <vector>

#include "ingest/insert_buffer.h"
#include "ingest/tombstone_set.h"
#include "ingest/wal.h"
#include "obs/registry.h"
#include "persist/generation_store.h"
#include "service/search_service.h"
#include "service/snapshot.h"
#include "shard/sharded_index.h"
#include "util/status.h"

namespace sofa {
namespace ingest {

// Mutation outcomes use the library-wide StatusCode taxonomy
// (util/status.h) — the same vocabulary the query path and the wire
// protocol report. For Insert: kOk (logged + buffered; visible to every
// query submitted after), kRejected (admission bound hit — compaction is
// behind, retry later), kInvalidArgument (refused permanently: wrong row
// length, or the 32-bit global-id space is exhausted), kShutdown,
// kIoError (WAL append failed — the row is NOT logged and NOT visible;
// the caller may retry). For Delete: kOk, kNotFound (no row with this id
// was ever inserted), kAlreadyDeleted (nothing to do, nothing logged),
// kShutdown, kIoError.

struct IngestConfig {
  /// Pending work per shard that triggers a background rebuild of that
  /// shard: buffered (uncompacted) rows plus tombstoned rows not yet
  /// physically removed — so sustained deletes compact (and purge their
  /// tombstones) even with no inserts flowing.
  std::size_t compact_threshold = 1024;

  /// Admission bound: inserts are rejected while the total pending rows
  /// across all shards (staged-for-commit ones included) are at or
  /// beyond this (backpressure when compaction cannot keep up).
  /// 0 = 8 × compact_threshold × num_shards.
  std::size_t max_pending = 0;

  /// Rows per buffer chunk (storage granularity; chunks never move).
  std::size_t chunk_capacity = 1024;

  /// When false, no threshold-triggered compactions run — only Flush()
  /// compacts (deterministic stepping for tests and benches).
  bool auto_compact = true;

  /// When non-empty, open (or create) a write-ahead log in this
  /// directory; every accepted Insert/Delete is appended there before it
  /// becomes visible, and Recover() replays any records already present.
  /// Empty (default): mutations are in-memory only, as in PR 3.
  std::string wal_dir;

  /// WAL tuning (fsync batching, segment rotation); used only when
  /// wal_dir is set.
  WalConfig wal;

  /// When non-null, every compaction publish is persisted to this
  /// generation store and the WAL is truncated to the post-fold tail
  /// (see the class comment). The store must outlive the Compactor and
  /// have this Compactor as its only writer. Without a WAL the store
  /// still persists generations, but mutations between publishes do not
  /// survive a crash.
  persist::GenerationStore* store = nullptr;

  /// When true (and `store` is null), every compaction also writes a
  /// WAL checkpoint *record* and truncates older segments. ONLY sound
  /// when the embedder durably persists the full collection state out
  /// of band no later than each publish. With `store` set this flag is
  /// ignored — the store's fold-point truncation supersedes it.
  bool checkpoint_on_compact = false;

  /// Metrics registry the compactor mirrors its counters into (as
  /// sofa_ingest_* instruments, refreshed on every Collect). Also passed
  /// through to the WAL (WalConfig::registry) unless that is set
  /// explicitly. Null (default): Metrics() is the only readout.
  obs::Registry* registry = nullptr;
};

/// Point-in-time ingest counters.
struct IngestMetrics {
  std::uint64_t inserted = 0;     // rows accepted
  std::uint64_t rejected = 0;     // rows bounced at admission
  std::uint64_t invalid = 0;      // rows refused (length mismatch)
  std::uint64_t deleted = 0;      // deletes accepted (incl. recovered)
  std::uint64_t io_errors = 0;    // mutations refused on WAL failure
  std::uint64_t compactions = 0;  // shard rebuilds published
  std::uint64_t persisted = 0;          // generation directories committed
  std::uint64_t persist_failures = 0;   // failed Persist() attempts
  std::size_t pending = 0;        // rows currently buffered, not yet in trees
  std::size_t tombstones = 0;     // deleted ids not yet purged by compaction
  std::size_t total_rows = 0;     // ids allocated: base + accepted inserts
                                  // (deleted rows included — the id space
                                  // never shrinks)
};

/// What Recover() replayed. `ok == false` means the log does not fit the
/// supplied base generation — a gap in the id sequence, a broken record
/// seqno chain (interior segment loss), a delete of an unknown id, or a
/// checkpoint claiming rows the base lacks; everything applied up to the
/// first inconsistency stays applied, records after it are ignored, and
/// the embedder must refuse to serve.
struct RecoverStats {
  bool ok = true;
  std::uint64_t inserts_applied = 0;  // rows appended to buffers
  std::uint64_t inserts_skipped = 0;  // ids the base already covers
  std::uint64_t deletes_applied = 0;  // tombstones restored
  std::uint64_t checkpoints = 0;      // state resets replayed
  std::uint64_t records_skipped = 0;  // records at or below the recovered
                                      // fold point (already in the base)
  std::uint64_t last_seqno = 0;       // highest record seqno on disk
  bool tail_truncated = false;        // replay stopped at a torn/corrupt
                                      // record (see WalReplayStats)
  bool sequence_gap = false;          // interior records are gone (ok is
                                      // forced false)
};

/// The bootstrap state of a Compactor resuming from a persisted
/// generation (persist::GenerationStore::LoadLatest): everything the
/// manifest recorded beyond the reassembled index itself. Build with
/// MakeRecoveredBase and pass alongside the loaded generation's sharded
/// index; then call Recover() to replay the WAL tail.
struct RecoveredBase {
  std::uint64_t generation_seq = 0;  // publish seqs resume after this
  std::size_t route_total = 0;       // build-time partition total (routing)
  std::uint32_t next_id = 0;         // first unallocated global id
  std::uint64_t wal_last_seqno = 0;  // WAL records ≤ this are folded in
  std::vector<std::uint32_t> tombstones;
  // Per shard: rows already durable in the generation directory but not
  // in its trees — seeded into the insert buffers before tail replay.
  std::vector<std::shared_ptr<const Dataset>> buffer_rows;
  std::vector<std::vector<std::uint32_t>> buffer_ids;
};

/// The manifest-side half of resuming from disk.
RecoveredBase MakeRecoveredBase(const persist::LoadedGeneration& loaded);

class Compactor {
 public:
  /// Attaches to `service`, which must currently serve (or be about to
  /// serve) `base`; the constructor publishes the initial ingesting
  /// generation (base trees + buffers + tombstones — empty on a fresh
  /// start, seeded from `recovered` when resuming from a persisted
  /// generation). While a Compactor is attached it must be the service's
  /// only publisher. Tree rebuilds run on `base`'s thread pool,
  /// competing with query scatter — compaction under live traffic by
  /// design. With config.wal_dir set the constructor opens the log
  /// (aborting via SOFA_CHECK when the directory cannot be created) but
  /// does not replay it — call Recover() before serving traffic if
  /// records may be present. `recovered`, when given, must describe the
  /// exact generation `base` was loaded from (MakeRecoveredBase).
  Compactor(service::SearchService* service,
            std::shared_ptr<const shard::ShardedIndex> base,
            IngestConfig config = IngestConfig{},
            const RecoveredBase* recovered = nullptr);

  /// Stops the compaction thread and syncs/closes the WAL. The service
  /// keeps serving the last published generation — already-buffered rows
  /// stay visible, they are just never compacted further.
  ~Compactor();

  Compactor(const Compactor&) = delete;
  Compactor& operator=(const Compactor&) = delete;

  /// Inserts one row (`length` floats, z-normalized like the base
  /// collection). On kOk the row is logged (if a WAL is attached) and
  /// visible to every query submitted after this returns. Thread-safe;
  /// concurrent mutations group-commit through a shared WAL batch (one
  /// frame write + fsync for the whole batch). With fsync batching a
  /// power failure may lose up to WalConfig::sync_every acknowledged
  /// rows — a process crash loses nothing. On success the value is the
  /// assigned global collection id (usable in a later Delete()).
  StatusOr<std::uint32_t> Insert(const float* row, std::size_t length);

  /// Deletes the row with global id `id` (a base row or an inserted
  /// one). On kOk the id is logged and masked from every query submitted
  /// after this returns; the row is physically removed by its shard's
  /// next compaction, which also purges the tombstone once no in-flight
  /// generation can still surface it. Re-deleting an id returns
  /// kAlreadyDeleted whether its tombstone is still live or long purged.
  /// Thread-safe.
  Status Delete(std::uint32_t id);

  /// Replays the WAL into buffers + tombstones. Must be called before
  /// the first Insert/Delete (SOFA_CHECK-enforced) and, for coherent
  /// answers, before queries are admitted. `base` must be exactly the
  /// generation the log was written against. When the Compactor was
  /// constructed with a RecoveredBase, records at or below the fold
  /// point are skipped and the retained tail must start no later than
  /// fold+1 (a hole there flips `sequence_gap` and fails the recovery).
  /// No-op (ok, zero counts) without a WAL. Replayed records are NOT
  /// re-appended — the segments that hold them are retained until a
  /// persist (or checkpoint) truncates them.
  RecoverStats Recover();

  /// Writes a WAL checkpoint (current id watermark + live tombstones)
  /// and truncates every older segment. Contract: the caller has durably
  /// persisted the full collection state — every row in [0, next id) and
  /// the tombstone set — somewhere the next recovery will rebuild its
  /// base generation from; after truncation the log can no longer
  /// re-create mutations from before the checkpoint. Returns kIoError
  /// (log unchanged or partially rotated, never truncated) on I/O
  /// failure, kUnavailable without a WAL. Embedders with
  /// IngestConfig::store use PersistNow() instead — the store IS that
  /// durable copy.
  Status Checkpoint();

  /// Persists the current collection state to IngestConfig::store right
  /// now (same fold-point protocol as the per-compaction persist) and
  /// truncates the WAL to the new tail. The bootstrap call of a fresh
  /// deployment — persist the base generation once so restarts need only
  /// the store + WAL. Returns kUnavailable without a store, kShutdown
  /// while stopping, kIoError on I/O failure (the WAL is then left
  /// untruncated; nothing is lost).
  Status PersistNow();

  /// Blocks until every mutation pending at call time is folded into the
  /// trees and published: buffered rows compacted in, tombstoned rows
  /// compacted out (their purge may still wait on in-flight generations
  /// retiring — see Metrics().tombstones).
  void Flush();

  IngestMetrics Metrics() const;

  /// The latest generation this compactor derived (base trees + all
  /// published compactions).
  std::shared_ptr<const shard::ShardedIndex> current() const;

  /// Shard that global id `id` routes to: the build-time AssignShard
  /// partition, with inserted ids (>= the build-time collection total)
  /// extending the last shard under contiguous assignment.
  std::size_t RouteShard(std::uint32_t id) const;

 private:
  // One mutation staged for group commit: its WAL payload source, its
  // routing, and the caller's result slot (the commit leader resolves
  // `done`/`ok` for every record of its batch).
  struct StagedMutation {
    bool is_insert = true;
    std::uint32_t id = 0;
    std::size_t shard = 0;
    std::vector<float> row;  // inserts only
    bool done = false;
    bool ok = false;
  };

  void CompactorLoop();
  void CompactShard(std::size_t s);
  std::size_t ShardWorkLocked(std::size_t s) const;
  bool HasMutationWorkLocked() const;
  std::shared_ptr<const service::ShardBuffers> MakeBuffers(
      const std::vector<std::size_t>& start) const;
  void PublishLocked(std::shared_ptr<const shard::ShardedIndex> sharded,
                     std::unique_lock<std::mutex>* lock,
                     std::vector<std::uint32_t> purgeable = {});
  void TrimRetiredLocked();
  std::uint64_t MinLiveSeqLocked() const;
  // Group commit (see the class comment). CommitStaged blocks until
  // `entry` is resolved, becoming the batch leader when none is active;
  // LeaderCommitLocked writes and applies (or fails) one whole batch;
  // DrainCommitQueueLocked retires every staged mutation (the persist
  // path's barrier step).
  bool CommitStaged(std::unique_lock<std::mutex>* lock,
                    const std::shared_ptr<StagedMutation>& entry);
  void LeaderCommitLocked(std::unique_lock<std::mutex>* lock);
  void ApplyDeleteLocked(std::uint32_t id, std::size_t s);
  void DrainCommitQueueLocked(std::unique_lock<std::mutex>* lock);
  bool PersistLocked(std::unique_lock<std::mutex>* lock);
  // Mirrors the locked counters into the registry instruments; runs as a
  // registry collect hook (outside the registry mutex — see Registry).
  void SyncRegistry();

  service::SearchService* service_;
  IngestConfig config_;
  const std::size_t base_total_;  // collection size the partition was built at
  const std::size_t length_;
  const std::size_t num_shards_;
  const shard::ShardAssignment assignment_;

  mutable std::mutex mutex_;
  std::condition_variable work_cv_;   // compaction thread wakeups
  std::condition_variable flush_cv_;  // Flush() waiters
  std::condition_variable commit_cv_;  // group-commit followers + barrier
  std::shared_ptr<const shard::ShardedIndex> sharded_;  // latest generation
  std::vector<std::shared_ptr<InsertBuffer>> buffers_;  // one per shard
  std::shared_ptr<TombstoneSet> tombstones_;  // live, shared with snapshots
  // Every id ever deleted, purged or not — Delete() statuses must tell
  // "already deleted" from "never existed" even after the tombstone was
  // purged. Never shrinks (except to a checkpoint's set on recovery).
  std::unordered_set<std::uint32_t> deleted_ever_;
  std::unique_ptr<WriteAheadLog> wal_;        // null without wal_dir
  std::vector<std::size_t> tree_covered_;  // per shard: buffer rows in tree
  // Per shard: tombstoned ids not yet physically removed from that
  // shard's structures. Counts toward the compaction trigger, so a
  // delete-only workload still compacts, purges its tombstones, and
  // keeps the merge's k-widening bounded.
  std::vector<std::size_t> shard_tombstoned_;
  // Per shard: un-purged tombstones routed there — the query path's
  // per-shard k-widening (shared live with every snapshot via
  // ShardBuffers). Differs from shard_tombstoned_ in when it drops:
  // only at purge (when no live generation's tree can still hold the
  // row), not at compaction — an in-flight query on a pre-compaction
  // generation still needs the width. Incremented BEFORE the tombstone
  // is added (the TombstoneSet mutex then publishes it to any reader
  // whose view contains the id), decremented after the purge erases it.
  std::shared_ptr<std::vector<std::atomic<std::size_t>>>
      shard_tombstone_counts_;
  // Group-commit state: staged mutations awaiting a leader, whether a
  // leader is mid-write, staged-insert count (admission accounting), and
  // the persist barrier that pauses staging while a fold point is taken.
  std::deque<std::shared_ptr<StagedMutation>> commit_queue_;
  bool commit_leader_active_ = false;
  std::size_t staged_inserts_ = 0;
  bool persist_barrier_ = false;
  // One persist at a time: PersistLocked releases the lock for the heavy
  // store I/O, and a concurrent PersistNow() (or the compaction thread)
  // must not start a second fold/commit meanwhile.
  bool persist_in_flight_ = false;
  // The fold point last committed: a PersistNow() with nothing new since
  // (same publish, same WAL position) is a no-op, not a directory churn.
  std::uint64_t persisted_seq_ = 0;
  std::uint64_t persisted_wal_seqno_ = 0;
  std::uint32_t next_id_;
  std::uint32_t id_base_;          // initial next_id (metrics, checkpoints)
  bool from_recovered_ = false;    // bootstrapped from a RecoveredBase
  std::uint64_t wal_skip_seqno_ = 0;  // Recover() skips records ≤ this
  std::size_t pending_ = 0;
  std::uint64_t inserted_ = 0;
  std::uint64_t rejected_ = 0;
  std::uint64_t invalid_ = 0;
  std::uint64_t deleted_ = 0;
  std::uint64_t io_errors_ = 0;
  std::uint64_t compactions_ = 0;
  std::uint64_t persisted_ = 0;
  std::uint64_t persist_failures_ = 0;
  std::uint64_t publish_seq_ = 0;  // generations published, monotonic
  bool recovered_ = false;         // Recover() may run at most once
  bool flush_requested_ = false;
  bool stopping_ = false;

  // Published generations still possibly in flight (weak: expired entries
  // are pruned); per entry, the per-shard buffer starts it scans from and
  // its publish sequence number. The minimum start across live entries
  // bounds what TrimBelow may drop; the minimum sequence bounds which
  // queued tombstone purges may apply — and which persisted generation
  // directories GC may remove.
  struct LiveGeneration {
    std::weak_ptr<const service::IndexSnapshot> snapshot;
    std::vector<std::size_t> start;
    std::uint64_t seq = 0;
  };
  std::vector<LiveGeneration> live_;

  // Tombstones a compaction excluded from a rebuilt shard, purgeable
  // once every generation published before `seq` has retired.
  // `pending_purge_ids_` mirrors the queued ids as a set so CompactShard
  // can tell an already-queued tombstone from a phantom one.
  struct PendingPurge {
    std::uint64_t seq = 0;
    std::vector<std::uint32_t> ids;
  };
  std::vector<PendingPurge> pending_purges_;
  std::unordered_set<std::uint32_t> pending_purge_ids_;

  // sofa_ingest_* instruments (null without IngestConfig::registry).
  // Counters are Set(), not Add()ed, from the locked counters above —
  // checkpoint replay *assigns* (e.g. deleted_ = tombstones.size()), so
  // mirroring is the only faithful mapping.
  obs::Counter* ing_counters_[8] = {nullptr, nullptr, nullptr, nullptr,
                                    nullptr, nullptr, nullptr, nullptr};
  obs::Gauge* ing_pending_ = nullptr;
  obs::Gauge* ing_tombstones_ = nullptr;
  obs::Gauge* ing_total_rows_ = nullptr;
  std::uint64_t collect_hook_id_ = 0;
  bool collect_hook_registered_ = false;

  std::thread compaction_thread_;
};

}  // namespace ingest
}  // namespace sofa

#endif  // SOFA_INGEST_COMPACTOR_H_
