// The delete half of the incremental ingest path: the set of global ids
// that have been deleted but whose rows still exist somewhere a query
// can reach them — a base or compacted shard tree, or an insert-buffer
// range. Queries filter these ids out of every answer (the merge layer
// consults the set for tree candidates, the InsertBuffer scan masks
// deleted rows directly), so a delete is visible to every query
// submitted after Compactor::Delete returns, without a republish —
// exactly mirroring how inserts become visible through the live buffers.
//
// The set only ever *grows* between compactions, which is what makes one
// live set shared by every published generation sound: filtering an id
// whose row a given generation no longer holds is a no-op (ids are never
// reused), whereas failing to filter an id whose row an *older*
// generation still holds would resurrect it. For the same reason a
// tombstone may only be purged once no live generation can still surface
// its row — the Compactor defers each compaction's purge until every
// generation published before that compaction has retired (the same
// weak-reference tracking that bounds buffer-chunk reclamation).
//
// Thread-safety: all methods are safe to call concurrently. Readers take
// a copy-on-write snapshot via view() — one mutex acquisition, then
// lock-free membership tests for the rest of the query. The snapshot is
// rebuilt lazily after a mutation, so the per-query cost is a pointer
// copy in the steady state and one O(|set|) copy after each mutation
// burst; compaction keeps |set| small (tombstones are purged once their
// rows are compacted away), so this stays cheap even under delete-heavy
// workloads.

#ifndef SOFA_INGEST_TOMBSTONE_SET_H_
#define SOFA_INGEST_TOMBSTONE_SET_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_set>
#include <vector>

namespace sofa {
namespace ingest {

class TombstoneSet {
 public:
  TombstoneSet() = default;
  TombstoneSet(const TombstoneSet&) = delete;
  TombstoneSet& operator=(const TombstoneSet&) = delete;

  /// Marks `id` deleted. Returns false (and changes nothing) if it
  /// already was.
  bool Add(std::uint32_t id);

  /// True while `id` is tombstoned (deleted and not yet purged).
  bool Contains(std::uint32_t id) const;

  /// Purges `ids` — a compaction has removed their rows from every index
  /// structure any live generation can still scan. Ids not present are
  /// ignored.
  void Erase(const std::vector<std::uint32_t>& ids);

  /// Replaces the whole set — the WAL-recovery path restoring the
  /// tombstone state a checkpoint record captured.
  void ResetTo(const std::vector<std::uint32_t>& ids);

  /// Current number of tombstoned ids.
  std::size_t size() const;

  /// The tombstoned ids, ascending (checkpoint serialization).
  std::vector<std::uint32_t> SortedIds() const;

  /// An immutable point-in-time snapshot of the set; never null. The
  /// caller keeps it for the duration of one query and probes it without
  /// further synchronization. Mutations after the call do not alter the
  /// returned snapshot.
  std::shared_ptr<const std::unordered_set<std::uint32_t>> view() const;

 private:
  mutable std::mutex mutex_;
  std::unordered_set<std::uint32_t> ids_;
  // Lazily rebuilt copy handed to readers; reset to null by mutations.
  mutable std::shared_ptr<const std::unordered_set<std::uint32_t>> cache_;
};

}  // namespace ingest
}  // namespace sofa

#endif  // SOFA_INGEST_TOMBSTONE_SET_H_
