#include "ingest/tombstone_set.h"

#include <algorithm>

namespace sofa {
namespace ingest {

bool TombstoneSet::Add(std::uint32_t id) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!ids_.insert(id).second) {
    return false;
  }
  cache_.reset();
  return true;
}

bool TombstoneSet::Contains(std::uint32_t id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return ids_.count(id) != 0;
}

void TombstoneSet::Erase(const std::vector<std::uint32_t>& ids) {
  if (ids.empty()) {
    return;
  }
  std::lock_guard<std::mutex> lock(mutex_);
  bool changed = false;
  for (const std::uint32_t id : ids) {
    changed = (ids_.erase(id) != 0) || changed;
  }
  if (changed) {
    cache_.reset();
  }
}

void TombstoneSet::ResetTo(const std::vector<std::uint32_t>& ids) {
  std::lock_guard<std::mutex> lock(mutex_);
  ids_.clear();
  ids_.insert(ids.begin(), ids.end());
  cache_.reset();
}

std::size_t TombstoneSet::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return ids_.size();
}

std::vector<std::uint32_t> TombstoneSet::SortedIds() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::uint32_t> sorted(ids_.begin(), ids_.end());
  std::sort(sorted.begin(), sorted.end());
  return sorted;
}

std::shared_ptr<const std::unordered_set<std::uint32_t>> TombstoneSet::view()
    const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (cache_ == nullptr) {
    cache_ = std::make_shared<const std::unordered_set<std::uint32_t>>(ids_);
  }
  return cache_;
}

}  // namespace ingest
}  // namespace sofa
