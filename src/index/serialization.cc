#include "index/serialization.h"

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>
#include <vector>

#include "sax/sax_scheme.h"
#include "sfa/sfa_scheme.h"

namespace sofa {
namespace index {
namespace {

constexpr char kMagic[8] = {'S', 'O', 'F', 'A', 'I', 'D', 'X', '1'};
constexpr std::uint8_t kSchemeSax = 0;
constexpr std::uint8_t kSchemeSfa = 1;

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) {
      std::fclose(f);
    }
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

// ------------------------------------------------------------- writing

class Writer {
 public:
  explicit Writer(std::FILE* file) : file_(file) {}

  bool ok() const { return ok_; }

  void Bytes(const void* data, std::size_t size) {
    if (ok_ && std::fwrite(data, 1, size, file_) != size) {
      ok_ = false;
    }
  }

  template <typename T>
  void Pod(const T& value) {
    static_assert(std::is_trivially_copyable_v<T>);
    Bytes(&value, sizeof(T));
  }

  void U64(std::uint64_t v) { Pod(v); }
  void U8(std::uint8_t v) { Pod(v); }

  void String(const std::string& s) {
    U64(s.size());
    Bytes(s.data(), s.size());
  }

 private:
  std::FILE* file_;
  bool ok_ = true;
};

void WriteNode(Writer* w, const Node& node) {
  w->U8(node.is_leaf() ? 1 : 0);
  w->Bytes(node.prefixes.data(), node.prefixes.size());
  w->Bytes(node.cards.data(), node.cards.size());
  w->Pod(static_cast<std::uint16_t>(node.split_dim));
  if (node.is_leaf()) {
    w->U64(node.leaf_size());
    w->Bytes(node.series_ids.data(),
             node.series_ids.size() * sizeof(std::uint32_t));
    w->Bytes(node.words.data(), node.words.size());
    return;
  }
  WriteNode(w, *node.left);
  WriteNode(w, *node.right);
}

// ------------------------------------------------------------- reading

class Reader {
 public:
  explicit Reader(std::FILE* file) : file_(file) {}

  bool ok() const { return ok_; }

  bool Bytes(void* out, std::size_t size) {
    if (ok_ && std::fread(out, 1, size, file_) != size) {
      ok_ = false;
    }
    return ok_;
  }

  template <typename T>
  T Pod() {
    T value{};
    Bytes(&value, sizeof(T));
    return value;
  }

  std::uint64_t U64() { return Pod<std::uint64_t>(); }
  std::uint8_t U8() { return Pod<std::uint8_t>(); }

  std::string String(std::size_t max_size = 1 << 20) {
    const std::uint64_t size = U64();
    if (size > max_size) {
      ok_ = false;
      return {};
    }
    std::string s(size, '\0');
    Bytes(s.data(), size);
    return s;
  }

 private:
  std::FILE* file_;
  bool ok_ = true;
};

std::unique_ptr<Node> ReadNode(Reader* r, std::size_t word_length,
                               std::size_t data_size, int depth) {
  if (!r->ok() || depth > 200) {  // depth bound guards corrupted files
    return nullptr;
  }
  const bool is_leaf = r->U8() != 0;
  auto node = std::make_unique<Node>(word_length);
  r->Bytes(node->prefixes.data(), word_length);
  r->Bytes(node->cards.data(), word_length);
  node->split_dim = r->Pod<std::uint16_t>();
  if (is_leaf) {
    const std::uint64_t count = r->U64();
    if (count > data_size) {
      return nullptr;
    }
    node->series_ids.resize(count);
    node->words.resize(count * word_length);
    r->Bytes(node->series_ids.data(), count * sizeof(std::uint32_t));
    r->Bytes(node->words.data(), count * word_length);
    if (!r->ok()) {
      return nullptr;
    }
    for (std::size_t i = 0; i < count; ++i) {
      if (node->series_ids[i] >= data_size) {
        return nullptr;
      }
    }
    return node;
  }
  node->left = ReadNode(r, word_length, data_size, depth + 1);
  node->right = ReadNode(r, word_length, data_size, depth + 1);
  if (node->left == nullptr || node->right == nullptr ||
      node->split_dim >= word_length) {
    return nullptr;
  }
  return node;
}

}  // namespace

bool SaveIndex(const TreeIndex& index, const std::string& path) {
  FilePtr file(std::fopen(path.c_str(), "wb"));
  if (file == nullptr) {
    return false;
  }
  Writer w(file.get());
  w.Bytes(kMagic, sizeof(kMagic));

  // Scheme.
  const quant::SummaryScheme& scheme = index.scheme();
  if (const auto* sfa = dynamic_cast<const sfa::SfaScheme*>(&scheme)) {
    w.U8(kSchemeSfa);
    w.U64(sfa->series_length());
    w.U64(sfa->alphabet());
    w.U64(sfa->word_length());
    w.String(sfa->name());
    for (const auto ref : sfa->selected_values()) {
      w.Pod(static_cast<std::uint16_t>(ref.coeff));
      w.U8(ref.imag ? 1 : 0);
    }
    // Interior edges come back out of the padded bound arrays.
    for (std::size_t d = 0; d < sfa->word_length(); ++d) {
      for (std::size_t s = 1; s < sfa->alphabet(); ++s) {
        w.Pod(sfa->table().lower_bounds()[d * sfa->alphabet() + s]);
      }
    }
  } else if (dynamic_cast<const sax::SaxScheme*>(&scheme) != nullptr) {
    w.U8(kSchemeSax);
    w.U64(scheme.series_length());
    w.U64(scheme.word_length());
    w.U64(scheme.alphabet());
  } else {
    return false;  // unknown scheme type
  }

  // Config + shape.
  const IndexConfig& config = index.config();
  w.U64(config.leaf_capacity);
  w.U8(config.split_policy == SplitPolicy::kBestBalance ? 0 : 1);
  w.U64(index.root_bits());
  w.U64(index.data().size());
  w.U64(index.data().length());

  // Forest.
  w.U64(index.subtrees().size());
  for (const auto& [key, node] : index.subtrees()) {
    w.Pod(key);
    WriteNode(&w, *node);
  }
  return w.ok();
}

std::optional<LoadedIndex> LoadIndex(const std::string& path,
                                     const Dataset* data, ThreadPool* pool) {
  if (data == nullptr || pool == nullptr) {
    return std::nullopt;
  }
  FilePtr file(std::fopen(path.c_str(), "rb"));
  if (file == nullptr) {
    return std::nullopt;
  }
  Reader r(file.get());
  char magic[8];
  if (!r.Bytes(magic, sizeof(magic)) ||
      std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return std::nullopt;
  }

  LoadedIndex result;
  const std::uint8_t scheme_kind = r.U8();
  if (scheme_kind == kSchemeSfa) {
    sfa::SfaSpec spec;
    spec.series_length = r.U64();
    spec.alphabet = r.U64();
    const std::uint64_t word_length = r.U64();
    if (!r.ok() || word_length == 0 || word_length > 4096 ||
        spec.alphabet < 2 || spec.alphabet > 256) {
      return std::nullopt;
    }
    spec.name = r.String();
    for (std::uint64_t d = 0; d < word_length; ++d) {
      sfa::ValueRef ref;
      ref.coeff = r.Pod<std::uint16_t>();
      ref.imag = r.U8() != 0;
      spec.selected.push_back(ref);
    }
    for (std::uint64_t d = 0; d < word_length; ++d) {
      std::vector<float> edges(spec.alphabet - 1);
      r.Bytes(edges.data(), edges.size() * sizeof(float));
      spec.edges.push_back(std::move(edges));
    }
    if (!r.ok() || spec.series_length != data->length()) {
      return std::nullopt;
    }
    result.scheme = std::make_unique<sfa::SfaScheme>(spec);
  } else if (scheme_kind == kSchemeSax) {
    const std::uint64_t series_length = r.U64();
    const std::uint64_t word_length = r.U64();
    const std::uint64_t alphabet = r.U64();
    if (!r.ok() || series_length != data->length() || word_length == 0 ||
        word_length > series_length || alphabet < 2 || alphabet > 256) {
      return std::nullopt;
    }
    result.scheme =
        std::make_unique<sax::SaxScheme>(series_length, word_length,
                                         alphabet);
  } else {
    return std::nullopt;
  }

  IndexConfig config;
  config.leaf_capacity = r.U64();
  config.split_policy =
      r.U8() == 0 ? SplitPolicy::kBestBalance : SplitPolicy::kRoundRobin;
  const std::uint64_t root_bits = r.U64();
  const std::uint64_t data_size = r.U64();
  const std::uint64_t data_length = r.U64();
  if (!r.ok() || root_bits == 0 || root_bits > 16 ||
      data_size != data->size() || data_length != data->length()) {
    return std::nullopt;
  }
  config.root_bits = root_bits;

  const std::size_t word_length = result.scheme->word_length();
  std::vector<std::unique_ptr<Node>> root_children(std::size_t{1}
                                                   << root_bits);
  const std::uint64_t num_subtrees = r.U64();
  if (!r.ok() || num_subtrees > root_children.size()) {
    return std::nullopt;
  }
  for (std::uint64_t s = 0; s < num_subtrees; ++s) {
    const std::uint32_t key = r.Pod<std::uint32_t>();
    if (!r.ok() || key >= root_children.size() ||
        root_children[key] != nullptr) {
      return std::nullopt;
    }
    root_children[key] = ReadNode(&r, word_length, data->size(), 0);
    if (root_children[key] == nullptr) {
      return std::nullopt;
    }
  }

  result.tree = TreeIndex::FromParts(data, result.scheme.get(), config, pool,
                                     std::move(root_children), root_bits);
  return result;
}

}  // namespace index
}  // namespace sofa
